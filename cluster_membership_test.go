package dtse

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/memo"
	"repro/internal/obs"
)

// obsOpts builds nodes with a live Observer so the handoff counters the
// tests assert on actually count (a nil Observer no-ops them).
func obsOpts(int) ServeOptions { return ServeOptions{Obs: obs.New()} }

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout: " + msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// movedSpecs generates deterministic spec bodies whose routing fingerprint
// is owned by `to` under next but not under cur — the keys that must move
// (and be handed off) when the topology changes from cur to next.
func movedSpecs(t *testing.T, cur, next *cluster.Ring, to string, want int) []string {
	t.Helper()
	var out []string
	for seed := int64(0); seed < 200 && len(out) < want; seed++ {
		body := randClusterSpec(t, seed)
		p, err := parseExplore(strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		key := routeKey(p)
		if next.Owner(key) == to && (cur == nil || cur.Owner(key) != to) {
			out = append(out, body)
		}
	}
	if len(out) == 0 {
		t.Fatal("no generated spec moves to the target node; widen the seed range")
	}
	return out
}

// TestClusterJoinMidRunByteIdentical is the tentpole e2e: a third node
// joins a live 2-node cluster via a seed handshake; membership converges
// on every node, the old owners stream the moved shard to the joiner, and
// the joiner then answers the moved requests byte-identically to the solo
// baseline — serving them from its disk tier, which only handoff could
// have populated (counter-asserted, so the assertion cannot pass
// vacuously).
func TestClusterJoinMidRunByteIdentical(t *testing.T) {
	solo := NewServer(ServeOptions{})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	defer solo.Abort()

	tc := newTestCluster(t, 2, obsOpts, ClusterOptions{
		GossipInterval: 50 * time.Millisecond,
	})

	// The joiner exists (its URL is fixed) but has not joined yet. It gets
	// a disk tier, so the handed-off records land durably and the re-posts
	// below surface as disk-tier hits.
	disk, err := memo.OpenDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	joiner := NewServer(ServeOptions{Disk: disk, Obs: obs.New()})
	joinTS := httptest.NewServer(joiner.Handler())
	defer joinTS.Close()
	defer joiner.Abort()

	curRing := cluster.NewRing([]string{tc.urls[0], tc.urls[1]})
	nextRing := cluster.NewRing([]string{tc.urls[0], tc.urls[1], joinTS.URL})
	bodies := movedSpecs(t, curRing, nextRing, joinTS.URL, 3)

	// Compute the moved specs on the live 2-node cluster: each is cached
	// at its current owner. Pin the baseline against the solo node.
	refs := make([][]byte, len(bodies))
	for i, body := range bodies {
		_, sref := postURL(t, soloTS.URL, "/v1/explore", body)
		resp, ref := postURL(t, tc.urls[0], "/v1/explore", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-join explore %d: status %d: %s", i, resp.StatusCode, ref)
		}
		if !bytes.Equal(ref, sref) {
			t.Fatalf("pre-join response %d differs from solo", i)
		}
		refs[i] = ref
	}

	// Join mid-run, knowing only seed A.
	if err := joiner.JoinCluster(ClusterOptions{
		Self:           joinTS.URL,
		Seeds:          []string{tc.urls[0]},
		GossipInterval: 50 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := joiner.JoinSeeds(context.Background(), []string{tc.urls[0]}); err != nil {
		t.Fatal(err)
	}
	all := append([]*Server{joiner}, tc.servers...)
	waitUntil(t, 10*time.Second, func() bool {
		for _, s := range all {
			if len(s.cluster.router.Members()) != 3 {
				return false
			}
		}
		return true
	}, "membership never converged to 3 nodes")

	// Handoff: every moved record reaches the joiner's disk tier.
	waitUntil(t, 10*time.Second, func() bool {
		return joiner.obs.Counter("cluster.handoff_entries").Value() >= int64(len(bodies)) &&
			disk.Len(memo.Requests) >= len(bodies)
	}, "handoff records never reached the joiner's disk tier")

	// The joiner now owns the moved keys and serves them byte-identically,
	// from the handed-off records (disk hits prove it: nothing else ever
	// wrote this node's disk tier).
	preHits := disk.Stats().Hits
	for i, body := range bodies {
		resp, got := postURL(t, joinTS.URL, "/v1/explore", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-join explore %d: status %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, refs[i]) {
			t.Fatalf("post-join response %d differs:\nref: %s\ngot: %s", i, refs[i], got)
		}
	}
	if hits := disk.Stats().Hits - preHits; hits < 1 {
		t.Fatalf("joiner served %d disk-tier hits, want >= 1 (handoff was vacuous)", hits)
	}
	if n := joiner.obs.Counter("cluster.handoff_entries").Value(); n < int64(len(bodies)) {
		t.Fatalf("handoff_entries = %d, want >= %d", n, len(bodies))
	}
	if imp := disk.Stats().Imported; imp < int64(len(bodies)) {
		t.Fatalf("disk Imported = %d, want >= %d", imp, len(bodies))
	}
}

// TestClusterLeaveMidRunByteIdentical: a member of a live 3-node cluster
// leaves gracefully; the survivors merge the goodbye before the leaver
// stops serving, receive its shard via handoff, and keep answering the
// moved requests byte-identically with zero failed requests.
func TestClusterLeaveMidRunByteIdentical(t *testing.T) {
	solo := NewServer(ServeOptions{})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	defer solo.Abort()

	tc := newTestCluster(t, 3, obsOpts, ClusterOptions{
		GossipInterval: 50 * time.Millisecond,
	})
	leaver := tc.urls[2]
	ring3 := cluster.NewRing(tc.urls)
	bodies := movedSpecs(t, nil, ring3, leaver, 3) // specs the leaver owns now

	refs := make([][]byte, len(bodies))
	for i, body := range bodies {
		_, sref := postURL(t, soloTS.URL, "/v1/explore", body)
		resp, ref := postURL(t, tc.urls[0], "/v1/explore", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-leave explore %d: status %d: %s", i, resp.StatusCode, ref)
		}
		if !bytes.Equal(ref, sref) {
			t.Fatalf("pre-leave response %d differs from solo", i)
		}
		refs[i] = ref
	}

	// Graceful leave: announce, hand the shard over, wait for the streams.
	if err := tc.servers[2].LeaveCluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, func() bool {
		return len(tc.servers[0].cluster.router.Members()) == 2 &&
			len(tc.servers[1].cluster.router.Members()) == 2
	}, "survivors never saw the leave")
	waitUntil(t, 10*time.Second, func() bool {
		got := tc.servers[0].obs.Counter("cluster.handoff_entries").Value() +
			tc.servers[1].obs.Counter("cluster.handoff_entries").Value()
		return got >= int64(len(bodies))
	}, "survivors never received the leaver's shard")

	// Every moved request keeps its exact bytes through both survivors —
	// zero failures, served from the handed-off cache.
	for i, body := range bodies {
		for ni := 0; ni < 2; ni++ {
			resp, got := postURL(t, tc.urls[ni], "/v1/explore", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-leave explore %d via node %d: status %d: %s", i, ni, resp.StatusCode, got)
			}
			if !bytes.Equal(got, refs[i]) {
				t.Fatalf("post-leave response %d via node %d differs", i, ni)
			}
		}
	}
	// Non-vacuous: at least one survivor answered from the handed-off
	// session cache rather than recomputing.
	hits := tc.servers[0].memo.Stats(memo.Requests).Hits + tc.servers[1].memo.Stats(memo.Requests).Hits
	if hits < 1 {
		t.Fatalf("no survivor served a memo hit after handoff (hits=%d)", hits)
	}
}

// TestWarmIndexRefusesSeedsAfterLiveRingChange wires the warm index to a
// real Router's live ring (exactly as JoinCluster does) and checks the
// satellite property: a fingerprint recorded while owned goes silent the
// moment a membership change moves its ownership away, and wakes up when
// ownership returns.
func TestWarmIndexRefusesSeedsAfterLiveRingChange(t *testing.T) {
	router, err := cluster.New(cluster.Config{Self: "http://self.test"})
	if err != nil {
		t.Fatal(err)
	}
	wi := newWarmIndex()
	wi.setOwns(func(c string) bool { return router.Owns(memo.Fingerprint64(c)) })

	canon := `{"name":"probe"}`
	wi.record(canon, map[string]int{"g": 0})
	if wi.lookup(canon) == nil {
		t.Fatal("sole member must own and serve its own fingerprint")
	}

	// Find a peer whose arrival takes ownership of canon.
	fp := memo.Fingerprint64(canon)
	peer := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("http://peer-%d.test", i)
		if cluster.NewRing([]string{"http://self.test", cand}).Owner(fp) == cand {
			peer = cand
			break
		}
	}
	if peer == "" {
		t.Fatal("no candidate peer takes ownership; vnode layout changed?")
	}

	router.SetMembers([]string{peer})
	if got := wi.lookup(canon); got != nil {
		t.Fatalf("lookup served a seed for a fingerprint that moved away: %v", got)
	}
	wi.record(canon, map[string]int{"g": 1}) // recording is refused too
	router.SetMembers(nil)                   // peer leaves; ownership returns
	got := wi.lookup(canon)
	if got == nil || got["g"] != 0 {
		t.Fatalf("seed must wake up unchanged when ownership returns, got %v", got)
	}
}
