package dtse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
)

// serviceSpec is a small but non-trivial pruned specification for the
// serving tests: two dependent accesses per iteration over one frame-sized
// array.
func serviceSpec(t *testing.T) (*Spec, []byte, uint64) {
	t.Helper()
	b := NewSpec("svc")
	b.Group("frame", 4096, 8)
	b.Loop("body", 4096)
	r := b.Read("frame", 1)
	b.Write("frame", 1, r)
	s := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteSpecJSON(s, &buf); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes(), 3 * 4096
}

func postExplore(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func specBody(specJSON []byte, budget uint64, extra string) string {
	if extra != "" {
		extra = ", " + extra
	}
	return fmt.Sprintf(`{"spec": %s, "budget": %d%s}`, specJSON, budget, extra)
}

// TestServerSpecExplore: the happy path — a spec-mode request returns the
// same organization the library's Explore produces, with a trace ID header.
func TestServerSpecExplore(t *testing.T) {
	s, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postExplore(t, ts, specBody(specJSON, budget, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("response missing X-Trace-Id")
	}
	var env struct {
		Variant *core.VariantWire `json:"variant"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if env.Variant == nil {
		t.Fatalf("no variant in response: %s", body)
	}

	want, err := Explore(s, budget, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	v := env.Variant
	if v.Cost.OnChipAreaMM2 != want.Cost.OnChipArea ||
		v.Cost.OnChipPowerMW != want.Cost.OnChipPower ||
		v.Cost.OffChipPowerMW != want.Cost.OffChipPower {
		t.Fatalf("served cost %+v != library cost %+v", v.Cost, want.Cost)
	}
	if !v.Optimal || v.Degraded {
		t.Fatalf("unconstrained exploration served best-effort: optimal=%v degraded=%v", v.Optimal, v.Degraded)
	}
	if v.BudgetUsed != want.Dist.Used || v.ExtraCycles != want.Dist.ExtraCycles() {
		t.Fatalf("budget accounting differs: served used=%d extra=%d, library used=%d extra=%d",
			v.BudgetUsed, v.ExtraCycles, want.Dist.Used, want.Dist.ExtraCycles())
	}
	if len(v.OnChip)+len(v.OffChip) == 0 {
		t.Fatal("no memory bindings in response")
	}
}

// TestServerBadRequests: malformed bodies are 400 with a client-readable
// error, never a panic or a hang.
func TestServerBadRequests(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := map[string]string{
		"not json":            `{`,
		"empty":               `{}`,
		"spec without budget": fmt.Sprintf(`{"spec": %s}`, specJSON),
		"spec and demo":       fmt.Sprintf(`{"spec": %s, "budget": %d, "demo": {"size": 64}}`, specJSON, budget),
		"unknown field":       `{"demo": {"size": 64}, "bogus": 1}`,
		"invalid spec":        `{"spec": {"name": "x", "loops": [{"name": "l", "iterations": 1, "accesses": [{"group": "missing", "count": 1}]}]}, "budget": 100}`,
		"negative timeout":    `{"demo": {"size": 64}, "timeout_ms": -5}`,
		"demo with params":    `{"demo": {"size": 64}, "params": {"onchip": 2}}`,
		"bad params":          specBody(specJSON, budget, `"params": {"onchip": -1}`),
		"oversized demo":      `{"demo": {"size": 100000}}`,
	}
	for name, body := range cases {
		resp, b := postExplore(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, b)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body unreadable: %s", name, b)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/explore"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explore: %v, want 405", err)
	}

	// An infeasible exploration (budget below the weighted MACP) is the
	// client's problem, not the server's.
	resp, _ := postExplore(t, ts, specBody(specJSON, 1, ""))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible budget: status %d, want 422", resp.StatusCode)
	}
}

// TestServerOverload: with every exploration slot taken and the admission
// queue full, the server answers 429 with a Retry-After hint instead of
// queueing unboundedly.
func TestServerOverload(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single exploration slot and the single queue seat
	// directly — deterministic, no timing games.
	srv.sem <- struct{}{}
	srv.queued.Add(1)
	defer func() { <-srv.sem; srv.queued.Add(-1) }()

	resp, body := postExplore(t, ts, specBody(specJSON, budget, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestServerTimeoutHonoredAndNotCached is the serving-layer pin of the
// cache-poisoning fix: a tight-deadline request degrades to best-effort,
// and an identical unlimited request afterwards must be answered with the
// full result — byte-identical to an uncached server's — not with the
// cached degraded one.
func TestServerTimeoutHonoredAndNotCached(t *testing.T) {
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	demo := `{"demo": {"size": 64}}`

	// 1. Tight deadline: still 200, flagged best-effort.
	resp, degraded := postExplore(t, ts, `{"demo": {"size": 64}, "timeout_ms": 1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", resp.StatusCode, degraded)
	}
	var denv struct {
		Results *core.ResultsWire `json:"results"`
	}
	if err := json.Unmarshal(degraded, &denv); err != nil || denv.Results == nil {
		t.Fatalf("degraded response unreadable: %v\n%s", err, degraded)
	}
	if denv.Results.Final.Optimal && !denv.Results.Final.Degraded {
		t.Fatal("1ms deadline produced a proven-optimal, non-degraded result — deadline not honored")
	}

	// 2. Unlimited request on the same session.
	resp, warm := postExplore(t, ts, demo)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp.StatusCode, warm)
	}

	// 3. Reference: a cache-disabled server.
	plainSrv := NewServer(ServeOptions{NoCache: true})
	tsPlain := httptest.NewServer(plainSrv.Handler())
	defer tsPlain.Close()
	resp, plain := postExplore(t, tsPlain, demo)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncached request: status %d: %s", resp.StatusCode, plain)
	}

	if !bytes.Equal(warm, plain) {
		t.Fatalf("degraded response poisoned the session: warm body differs from uncached body\nwarm:\n%s\nuncached:\n%s", warm, plain)
	}
}

// TestServerDemoConcurrentMatchesCmd is the acceptance criterion: four
// concurrent demo requests (run under -race in CI) return tables
// byte-for-byte identical to what cmd/dtse renders for the same inputs,
// and identical to each other (deduplicated through the session).
func TestServerDemoConcurrentMatchesCmd(t *testing.T) {
	srv := NewServer(ServeOptions{MaxConcurrent: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/explore", "application/json",
				strings.NewReader(`{"demo": {"size": 64}}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("concurrent identical requests returned different bodies (client 0 vs %d)", i)
		}
	}

	var env struct {
		Results *core.ResultsWire `json:"results"`
	}
	if err := json.Unmarshal(bodies[0], &env); err != nil || env.Results == nil {
		t.Fatalf("demo response unreadable: %v", err)
	}

	// cmd/dtse prints res.TableN().Render() from RunAll with the default
	// parameters — exactly what the server must serve.
	res, err := core.RunAll(core.DemoConfig{Size: 64}, core.DefaultEvalParams())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"table1":  res.Table1().Render(),
		"table2":  res.Table2().Render(),
		"table3":  res.Table3().Render(),
		"table4":  res.Table4().Render(),
		"figure1": res.Figure1(),
		"figure2": res.Figure2(),
		"figure3": res.Figure3(),
	}
	for name, w := range want {
		got, ok := env.Results.Tables[name]
		if !ok {
			got, ok = env.Results.Figures[name]
		}
		if !ok {
			t.Errorf("response missing %s", name)
			continue
		}
		if got != w {
			t.Errorf("%s differs from the cmd/dtse render:\nserved:\n%s\nlocal:\n%s", name, got, w)
		}
	}

	// The four identical in-flight requests must have shared one
	// exploration (singleflight): exactly one miss in the request keyspace.
	if st := srv.memo.Stats(memo.Requests); st.Misses != 1 {
		t.Errorf("request keyspace misses = %d, want 1 (concurrent duplicates must singleflight)", st.Misses)
	}
}

// TestServerConcurrentObserverSafety: many concurrent explorations sharing
// one Observer with a JSONL sink must produce only well-formed JSONL
// records, and concurrent /metrics snapshots must not race with them.
// (Run with -race; the assertions here catch corruption, the detector
// catches the races.)
func TestServerConcurrentObserverSafety(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	var buf syncBuffer
	observer := NewObserver(NewJSONLSink(&buf))
	srv := NewServer(ServeOptions{Obs: observer})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct budgets defeat deduplication: every request runs a
			// real exploration concurrently with the others.
			resp, body := postExploreRaw(ts.URL, specBody(specJSON, budget+uint64(i), ""))
			if resp == nil || resp.StatusCode != http.StatusOK {
				t.Errorf("client %d failed: %s", i, body)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := http.Get(ts.URL + "/metrics.json")
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if err := observer.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) < n {
		t.Fatalf("only %d JSONL records for %d explorations", len(lines), n)
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("corrupt JSONL record %d: %v\n%q", i, err, line)
		}
	}
}

func postExploreRaw(url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// syncBuffer is a mutex-guarded bytes.Buffer: the JSONL sink serializes its
// own writes, but the test also reads the buffer afterwards, and -race has
// no way to know those phases don't overlap without the lock.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestServerDedupAndMetrics: a repeated identical request is answered from
// the session (dedup hit), and /metrics reports the request counters and
// latency percentiles.
func TestServerDedupAndMetrics(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := specBody(specJSON, budget, "")
	_, first := postExplore(t, ts, body)
	_, second := postExplore(t, ts, body)
	if !bytes.Equal(first, second) {
		t.Fatal("identical requests returned different bodies")
	}
	// Whitespace and field order must not defeat deduplication: the same
	// request reserialized still hits.
	var loose map[string]any
	if err := json.Unmarshal([]byte(body), &loose); err != nil {
		t.Fatal(err)
	}
	reser, _ := json.Marshal(loose)
	_, third := postExplore(t, ts, string(reser))
	if !bytes.Equal(first, third) {
		t.Fatal("reserialized identical request returned a different body")
	}

	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Server struct {
			Requests     int64 `json:"requests_total"`
			OK           int64 `json:"responses_2xx"`
			LatencyCount int64 `json:"latency_count"`
			LatencyP50US int64 `json:"latency_p50_us"`
			LatencyP99US int64 `json:"latency_p99_us"`
		} `json:"server"`
		Obs struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"obs"`
		Memo map[string]struct {
			Hits   int64 `json:"Hits"`
			Misses int64 `json:"Misses"`
		} `json:"memo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Server.Requests != 3 || m.Server.OK != 3 {
		t.Fatalf("metrics counted %d requests / %d 2xx, want 3/3", m.Server.Requests, m.Server.OK)
	}
	if m.Server.LatencyCount != 3 || m.Server.LatencyP99US < m.Server.LatencyP50US {
		t.Fatalf("latency accounting wrong: %+v", m.Server)
	}
	req := m.Memo["requests"]
	if req.Hits < 2 || req.Misses != 1 {
		t.Fatalf("request keyspace: %d hits / %d misses, want >=2 / 1", req.Hits, req.Misses)
	}
}

// TestServerDrainAndAbort: draining flips /healthz to 503 and refuses new
// explorations; Abort degrades an in-flight exploration, whose response
// still completes.
func TestServerDrainAndAbort(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp, err)
	}

	// An in-flight demo exploration to drain across. Size 256 is slow
	// enough to still be running when Abort fires.
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, body := postExploreRaw(ts.URL, `{"demo": {"size": 256}}`)
		if resp == nil {
			done <- result{0, body}
			return
		}
		done <- result{resp.StatusCode, body}
	}()
	for i := 0; srv.Inflight() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if srv.Inflight() == 0 {
		t.Fatal("exploration never became in-flight")
	}

	srv.BeginDrain()
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %v %v", resp, err)
	}
	if resp, body := postExplore(t, ts, specBody(specJSON, budget, "")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explore during drain: status %d: %s", resp.StatusCode, body)
	}

	srv.Abort()
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("aborted exploration: status %d: %s", r.status, r.body)
		}
		var env struct {
			Results *core.ResultsWire `json:"results"`
		}
		if err := json.Unmarshal(r.body, &env); err != nil || env.Results == nil {
			t.Fatalf("aborted response unreadable: %v", err)
		}
		if env.Results.Final.Optimal && !env.Results.Final.Degraded {
			t.Fatal("aborted exploration served a proven-optimal, non-degraded result")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("aborted exploration never completed")
	}
}
