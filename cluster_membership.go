package dtse

// Dynamic cluster membership and shard handoff.
//
// PR 9's ring was frozen at startup (-peers). Here the member set is a
// SWIM-lite table (internal/cluster.Membership): nodes join by handshaking
// a seed over POST /v1/internal/join, every node gossips its full digest to
// a peer each interval over POST /v1/internal/gossip, an unreachable member
// is suspected and only removed after a suspicion timeout, and incarnation
// numbers let a live member refute stale claims about itself — a flapping
// node cannot be erased by one dropped probe.
//
// On any ring change the node re-derives ownership and runs shard handoff:
// for every cached record whose route fingerprint this node owned under the
// old ring but not the new one, it streams the record (and the matching
// warm-index seeds) to the new owner over POST /v1/internal/handoff. The
// receiver gates every import on its own live ring — it only accepts keys
// it owns right now — so a racing topology change degrades to a dropped
// warm-up, never a mis-sharded cache. The gossip exchange doubles as the
// health prober: a reachable member revives its Router ejection state
// (PeerOK), an unreachable one feeds it (PeerFail), which is what rejoins a
// recovered peer now that the serving path's half-open probe admits only
// one caller.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/memo"
)

// digestWire is the join/gossip exchange body in both directions: the
// sender's identity plus its full membership digest.
type digestWire struct {
	From   string                `json:"from"`
	Digest []cluster.MemberEntry `json:"digest"`
}

// maxDigestBody bounds a membership digest read (thousands of members fit).
const maxDigestBody = 1 << 20

// routeKeyOfCacheKey recovers the routing fingerprint from a Requests
// dedup key: spec keys route by their canonical spec JSON (budget/knob
// variants co-locate), demo keys by the full key — exactly routeKey's rule.
func routeKeyOfCacheKey(key string) uint64 {
	if canon, ok := canonOfKey(key); ok {
		return memo.Fingerprint64(canon)
	}
	return memo.Fingerprint64(key)
}

// handleClusterJoin admits a joining node: merge its digest (which contains
// at least itself, alive, at a fresh incarnation) and answer with ours. The
// joiner learns the full member set from the response; everyone else learns
// about the joiner from gossip.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	s.handleDigestExchange(w, r, "cluster.joins")
}

// handleClusterGossip is one push-pull gossip round: merge the caller's
// digest, answer with ours.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	s.handleDigestExchange(w, r, "")
}

func (s *Server) handleDigestExchange(w http.ResponseWriter, r *http.Request, joinCounter string) {
	cs := s.cluster
	if cs == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in digestWire
	if err := json.NewDecoder(io.LimitReader(r.Body, maxDigestBody)).Decode(&in); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid digest body: "+err.Error())
		return
	}
	if joinCounter != "" {
		s.obs.Counter(joinCounter).Add(1)
	}
	if cs.members.Merge(in.Digest) {
		s.syncMembership()
	}
	// A digest from a member is proof of life, whatever the table said.
	if in.From != "" && in.From != cs.router.Self() {
		cs.members.Confirm(in.From)
	}
	body := mustMarshal(digestWire{From: cs.router.Self(), Digest: cs.members.Digest()})
	s.writeResponse(w, &servedResponse{status: http.StatusOK, body: append(body, '\n')})
}

// JoinSeeds handshakes each configured seed once: push our digest, merge
// the response. One reachable seed is enough; with none reachable the node
// keeps its static view and gossip keeps retrying reachable members.
func (s *Server) JoinSeeds(ctx context.Context, seeds []string) error {
	cs := s.cluster
	if cs == nil {
		return errors.New("cluster: not joined")
	}
	var lastErr error
	joined := false
	for _, seed := range seeds {
		if seed == "" || seed == cs.router.Self() {
			continue
		}
		digest, err := s.exchangeDigest(ctx, seed, "/v1/internal/join")
		if err != nil {
			lastErr = err
			continue
		}
		joined = true
		if cs.members.Merge(digest) {
			s.syncMembership()
		}
	}
	if !joined && lastErr != nil {
		return fmt.Errorf("cluster: no seed reachable: %w", lastErr)
	}
	return nil
}

// exchangeDigest POSTs our digest to one member and returns its digest.
func (s *Server) exchangeDigest(ctx context.Context, member, path string) ([]cluster.MemberEntry, error) {
	cs := s.cluster
	body := mustMarshal(digestWire{From: cs.router.Self(), Digest: cs.members.Digest()})
	rctx, cancel := context.WithTimeout(ctx, gossipRequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, member+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = internalHeaders("")
	resp, err := cs.router.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxDigestBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", member, resp.StatusCode)
	}
	var out digestWire
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return out.Digest, nil
}

// gossipLoop is the membership heartbeat: each tick, exchange digests with
// every other ring member (suspects included — that is their chance to
// refute), feed the outcome to both the membership table and the Router's
// ejection state, then expire suspicions that outlived the timeout. Small
// clusters gossip with everyone; the per-tick fanout is fine below
// O(hundreds) of members.
func (s *Server) gossipLoop() {
	cs := s.cluster
	tick := time.NewTicker(cs.gossipEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
		}
		for _, m := range cs.members.Alive() {
			if m == cs.router.Self() {
				continue
			}
			start := time.Now()
			digest, err := s.exchangeDigest(s.baseCtx, m, "/v1/internal/gossip")
			if err != nil {
				if s.baseCtx.Err() != nil {
					return
				}
				s.obs.Counter("cluster.gossip_failed").Add(1)
				cs.router.PeerFail(m)
				if cs.members.Suspect(m) {
					s.obs.Counter("cluster.suspected").Add(1)
				}
				continue
			}
			s.obs.Counter("cluster.gossip_rounds").Add(1)
			cs.router.PeerOK(m, time.Since(start))
			cs.members.Confirm(m)
			if cs.members.Merge(digest) {
				s.syncMembership()
			}
		}
		if dead := cs.members.Tick(cs.suspectFor, tombstoneTTLPerSuspicion*cs.suspectFor); len(dead) > 0 {
			s.obs.Counter("cluster.deaths").Add(int64(len(dead)))
			s.syncMembership()
		}
	}
}

// syncMembership aligns the ring with the membership table and, when
// ownership moved, launches shard handoff for the keys this node stopped
// owning. Serialized by topoMu so concurrent digests cannot interleave
// ring swaps and handoffs out of order.
func (s *Server) syncMembership() {
	cs := s.cluster
	cs.topoMu.Lock()
	defer cs.topoMu.Unlock()
	oldRing := cs.router.Ring()
	added, removed := cs.router.SetMembers(cs.members.Alive())
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	newRing := cs.router.Ring()
	s.obs.Counter("cluster.member_joins").Add(int64(len(added)))
	s.obs.Counter("cluster.member_leaves").Add(int64(len(removed)))
	s.obs.Counter("cluster.ring_changes").Add(1)
	cs.handoffs.Add(1)
	go func() {
		defer cs.handoffs.Done()
		s.runHandoff(oldRing, newRing)
	}()
}

// --- shard handoff ---

// handoffRec is one cached record on the wire ([]byte marshals as base64).
type handoffRec struct {
	Key string `json:"key"`
	Val []byte `json:"val"`
}

type handoffSeed struct {
	Canon  string         `json:"canon"`
	Assign map[string]int `json:"assign"`
}

// handoffWire is the POST /v1/internal/handoff body: the records and
// warm-index seeds one departing/demoted owner streams to one new owner.
type handoffWire struct {
	From    string        `json:"from"`
	Records []handoffRec  `json:"records,omitempty"`
	Seeds   []handoffSeed `json:"seeds,omitempty"`
}

// maxHandoffBody bounds a handoff read on the receiving side.
const maxHandoffBody = 256 << 20

// runHandoff streams every cached record and warm seed whose route
// fingerprint this node owned under old but does not own under new to the
// key's new owner. Purely best-effort warm-up: a failed stream costs the
// receiver cache misses, never correctness.
func (s *Server) runHandoff(old, next *cluster.Ring) {
	self := s.cluster.router.Self()
	moved := func(key uint64) (string, bool) {
		if old.Owner(key) != self {
			return "", false // never ours: its owner streams it, not us
		}
		if o := next.Owner(key); o != self {
			return o, true
		}
		return "", false
	}
	byTarget := make(map[string]*handoffWire)
	wireFor := func(target string) *handoffWire {
		w := byTarget[target]
		if w == nil {
			w = &handoffWire{From: self}
			byTarget[target] = w
		}
		return w
	}
	// Cached responses: from the disk tier when there is one (the durable
	// superset), else from the memory tier.
	if s.opts.Disk != nil {
		s.opts.Disk.Export(memo.Requests, func(key string) bool {
			_, ok := moved(routeKeyOfCacheKey(key))
			return ok
		}, func(key string, val []byte) bool {
			target, _ := moved(routeKeyOfCacheKey(key))
			w := wireFor(target)
			w.Records = append(w.Records, handoffRec{Key: key, Val: append([]byte(nil), val...)})
			return true
		})
	} else if s.memo != nil {
		s.memo.Range(memo.Requests, func(key string, val any) bool {
			target, ok := moved(routeKeyOfCacheKey(key))
			if !ok {
				return true
			}
			enc, ok := encodeServed(val)
			if !ok {
				return true
			}
			w := wireFor(target)
			w.Records = append(w.Records, handoffRec{Key: key, Val: enc})
			return true
		})
	}
	// Warm-index seeds for moved canonical fingerprints.
	s.warm.rangeSeeds(func(canon string, assign map[string]int) bool {
		target, ok := moved(memo.Fingerprint64(canon))
		if !ok {
			return true
		}
		w := wireFor(target)
		w.Seeds = append(w.Seeds, handoffSeed{Canon: canon, Assign: assign})
		return true
	})
	for target, wire := range byTarget {
		s.sendHandoff(target, wire)
	}
}

// sendHandoff ships one new owner's records. Best-effort with one retry:
// the likeliest failure is a joiner whose listener is a beat behind its
// join handshake.
func (s *Server) sendHandoff(target string, wire *handoffWire) {
	body := mustMarshal(wire)
	for attempt := 0; attempt < 2; attempt++ {
		ctx, cancel := context.WithTimeout(s.baseCtx, handoffRequestTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/internal/handoff", bytes.NewReader(body))
		if err != nil {
			cancel()
			break
		}
		req.Header = internalHeaders("")
		resp, err := s.cluster.router.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			cancel()
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent {
				s.obs.Counter("cluster.handoff_sent").Add(1)
				return
			}
		} else {
			cancel()
		}
		if s.baseCtx.Err() != nil {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	s.obs.Counter("cluster.handoff_failed").Add(1)
}

// handleHandoff imports a departing owner's records. Every key is gated on
// the live ring — only keys this node owns right now are accepted — so a
// stale or misdirected stream cannot pollute the wrong shard. Records go
// to the disk tier when there is one (misses promote them to memory on
// first touch, counted as disk hits), else straight into the memory tier;
// seeds go through the warm index's own ownership gate.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	if cs == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var wire handoffWire
	if err := json.NewDecoder(io.LimitReader(r.Body, maxHandoffBody)).Decode(&wire); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid handoff body: "+err.Error())
		return
	}
	var entries, seeds, refused int64
	for _, rec := range wire.Records {
		if !cs.router.Owns(routeKeyOfCacheKey(rec.Key)) {
			refused++
			continue
		}
		imported := false
		if s.opts.Disk != nil {
			imported = s.opts.Disk.Import(memo.Requests, rec.Key, rec.Val)
		} else if s.memo != nil {
			if v, ok := decodeServed(rec.Val); ok {
				imported = s.memo.Seed(memo.Requests, rec.Key, v)
			}
		}
		if imported {
			entries++
		}
	}
	for _, sd := range wire.Seeds {
		if !cs.router.Owns(memo.Fingerprint64(sd.Canon)) {
			refused++
			continue
		}
		if s.warm != nil {
			s.warm.record(sd.Canon, sd.Assign)
			seeds++
		}
	}
	s.obs.Counter("cluster.handoff_received").Add(1)
	s.obs.Counter("cluster.handoff_entries").Add(entries)
	s.obs.Counter("cluster.handoff_seeds").Add(seeds)
	if refused > 0 {
		s.obs.Counter("cluster.handoff_refused").Add(refused)
	}
	w.WriteHeader(http.StatusNoContent)
	s.countStatus(http.StatusNoContent)
}

// LeaveCluster announces a graceful departure and hands this node's shard
// to the survivors: bump our incarnation to Left, push the goodbye digest
// to every alive peer (so ownership moves before we stop serving), then
// stream every owned record to its new owner and wait for the streams.
// Call before BeginDrain, so requests arriving during the announcement
// window still get served here while peers re-route.
func (s *Server) LeaveCluster(ctx context.Context) error {
	cs := s.cluster
	if cs == nil {
		return errors.New("cluster: not joined")
	}
	goodbye := cs.members.Leave()
	body := mustMarshal(digestWire{From: cs.router.Self(), Digest: goodbye})
	peers := cs.router.AlivePeers()
	announced := 0
	for _, p := range peers {
		rctx, cancel := context.WithTimeout(ctx, gossipRequestTimeout)
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, p.ID()+"/v1/internal/gossip", bytes.NewReader(body))
		if err == nil {
			req.Header = internalHeaders("")
			if resp, err := cs.router.Client().Do(req); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, maxDigestBody))
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					announced++
				}
			}
		}
		cancel()
	}
	s.obs.Counter("cluster.leaves").Add(1)
	// Hand the shard over: old ring includes self, new ring is the
	// survivors. Skipped when no peer heard the goodbye — with nobody to
	// own the keys, streaming them would only be refused.
	if announced > 0 {
		oldRing := cs.router.Ring()
		survivors := make([]string, 0, len(oldRing.Members()))
		for _, m := range oldRing.Members() {
			if m != cs.router.Self() {
				survivors = append(survivors, m)
			}
		}
		if len(survivors) > 0 {
			s.runHandoff(oldRing, cluster.NewRing(survivors))
		}
	}
	cs.handoffs.Wait()
	return nil
}
