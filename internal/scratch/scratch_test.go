package scratch

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestGrabsAreZeroedAndDisjoint(t *testing.T) {
	a := new(Arena)
	x := a.Ints(8)
	y := a.Ints(8)
	for i := range x {
		x[i] = i + 1
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %d, want 0 (grabs must not alias)", i, v)
		}
	}
	// Appending to a grab must not bleed into its neighbour.
	x = append(x[:0], -1)
	_ = x
	if y[0] != 0 {
		t.Fatalf("append through x clobbered y[0] = %d", y[0])
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	var a *Arena
	if got := a.Ints(4); len(got) != 4 {
		t.Fatalf("nil arena Ints: len %d, want 4", len(got))
	}
	if got := a.Float64s(3); len(got) != 3 {
		t.Fatalf("nil arena Float64s: len %d, want 3", len(got))
	}
	if got := a.Buf(16); len(got) != 0 || cap(got) < 16 {
		t.Fatalf("nil arena Buf: len %d cap %d", len(got), cap(got))
	}
	a.Reset()  // must not panic
	a.Poison() // must not panic
	Put(nil)   // must not panic
}

// TestPoisonedRecycledArenaIsReset is the reuse-safety property test: an
// arena whose backing memory is deliberately corrupted (every element
// bit-flipped to a sentinel) and then recycled must hand out fully zeroed
// grabs of random sizes — no stale state can ever leak between users.
func TestPoisonedRecycledArenaIsReset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := new(Arena)
	for round := 0; round < 50; round++ {
		// Use the arena with arbitrary grab patterns and scribble on them.
		for g := 0; g < 1+rng.Intn(8); g++ {
			n := 1 + rng.Intn(3000)
			switch rng.Intn(4) {
			case 0:
				s := a.Ints(n)
				for i := range s {
					s[i] = rng.Int()
				}
			case 1:
				s := a.Float64s(n)
				for i := range s {
					s[i] = rng.NormFloat64()
				}
			case 2:
				s := a.Bytes(n)
				rng.Read(s)
			case 3:
				s := a.Strings(n)
				for i := range s {
					s[i] = "garbage"
				}
			}
		}
		// Corrupt everything the arena holds, then recycle it.
		a.Poison()
		a.Reset()
		// Every post-recycle grab must be zero in every element.
		n := 1 + rng.Intn(3000)
		for i, v := range a.Ints(n) {
			if v != 0 {
				t.Fatalf("round %d: recycled Ints[%d] = %#x, want 0", round, i, v)
			}
		}
		for i, v := range a.Float64s(n) {
			if v != 0 || math.Signbit(v) {
				t.Fatalf("round %d: recycled Float64s[%d] = %v, want +0", round, i, v)
			}
		}
		for i, v := range a.Bytes(n) {
			if v != 0 {
				t.Fatalf("round %d: recycled Bytes[%d] = %#x, want 0", round, i, v)
			}
		}
		for i, v := range a.Strings(n) {
			if v != "" {
				t.Fatalf("round %d: recycled Strings[%d] = %q, want empty", round, i, v)
			}
		}
		a.Reset()
	}
}

// TestPoolRoundTrip checks Get/Put recycling through the package pool: a
// poisoned arena Put back and re-Got must still produce zeroed grabs.
func TestPoolRoundTrip(t *testing.T) {
	a := Get()
	s := a.Ints(256)
	for i := range s {
		s[i] = 7
	}
	a.Poison()
	Put(a)
	b := Get() // may or may not be the same arena; both must be clean
	for i, v := range b.Ints(256) {
		if v != 0 {
			t.Fatalf("pooled arena grab[%d] = %d, want 0", i, v)
		}
	}
	Put(b)
}

// TestConcurrentArenasDoNotAlias has many goroutines hammer Get/Put while
// writing goroutine-unique values into their grabs and verifying them after
// a pass — run under -race this also proves pool handoff is properly
// synchronized.
func TestConcurrentArenasDoNotAlias(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				a := Get()
				x := a.Ints(128)
				f := a.Float64s(64)
				for i := range x {
					x[i] = tag
				}
				for i := range f {
					f[i] = float64(tag)
				}
				for i := range x {
					if x[i] != tag {
						t.Errorf("worker %d: x[%d] = %d", tag, i, x[i])
						break
					}
				}
				for i := range f {
					if f[i] != float64(tag) {
						t.Errorf("worker %d: f[%d] = %v", tag, i, f[i])
						break
					}
				}
				Put(a)
			}
		}(w + 1)
	}
	wg.Wait()
}

func TestChunkGrowthAndOversizeGrabs(t *testing.T) {
	a := new(Arena)
	big := a.Ints(3 * minChunk) // forces a doubled chunk
	if len(big) != 3*minChunk {
		t.Fatalf("oversize grab len %d", len(big))
	}
	small := a.Ints(4) // must still work after the oversize chunk
	small[0] = 1
	a.Reset()
	// After reset the same memory is reissued zeroed.
	if v := a.Ints(3 * minChunk)[0]; v != 0 {
		t.Fatalf("recycled oversize grab not zeroed: %d", v)
	}
}

func BenchmarkArenaGrab(b *testing.B) {
	a := Get()
	defer Put(a)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Ints(256)
		_ = a.Float64s(64)
		_ = a.Buf(128)
		a.Reset()
	}
}
