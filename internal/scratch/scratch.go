// Package scratch provides pooled, typed arena scratch memory for the
// evaluation hot path.
//
// The exploration loop builds and tears down the same short-lived working
// state millions of times per sweep: schedulers' dense occupancy tables,
// ASAP/ALAP windows, topological orders, fingerprint key buffers. Allocating
// those from the garbage-collected heap made memory traffic the dominant
// cost of an exploration (BENCH_5: ~603k allocs and ~106 MB churned per
// run). An Arena instead carves typed slices out of reusable backing chunks:
// a grab is a bump-pointer slice plus a memclr, a Reset recycles everything
// at once, and a sync.Pool keeps one warm arena per worker.
//
// Safety model: every grab returns a zeroed slice, unconditionally — the
// zeroing happens at grab time, not at Reset time, so a recycled arena whose
// memory still holds a previous evaluation's state (or deliberate garbage;
// see Poison) can never leak values into the next user. Grabs are valid
// until the arena is Reset or Put; they must not be retained beyond that,
// and must never be returned to callers outside the arena's scope. An Arena
// is single-goroutine state: share nothing, Get one per worker.
package scratch

import (
	"math"
	"sync"
)

// minChunk is the smallest backing chunk, in elements. Chunks double until
// a grab fits, so pathological grab sizes cost O(log n) chunks.
const minChunk = 1024

// chunked is a bump allocator over a list of backing chunks of one type.
// Chunks are retained across resets, so a warmed-up arena allocates nothing.
type chunked[T any] struct {
	chunks [][]T
	ci     int // index of the chunk grabs come from
	off    int // used prefix of the current chunk
}

// grab returns a zeroed slice of length and capacity n. The full-capacity
// slice expression keeps neighbouring grabs from aliasing through append.
func (c *chunked[T]) grab(n int) []T {
	if n == 0 {
		return nil
	}
	for {
		if c.ci < len(c.chunks) {
			ch := c.chunks[c.ci]
			if c.off+n <= len(ch) {
				s := ch[c.off : c.off+n : c.off+n]
				c.off += n
				clear(s)
				return s
			}
			// The current chunk's tail is too small: leave it and move on
			// (the waste is bounded by one grab per chunk).
			c.ci++
			c.off = 0
			continue
		}
		size := minChunk
		for size < n {
			size *= 2
		}
		c.chunks = append(c.chunks, make([]T, size))
	}
}

// reset makes all backing chunks reusable. Previously grabbed slices keep
// their memory (nothing is freed) but will be handed out again: the arena
// owner must not use them past this point.
func (c *chunked[T]) reset() {
	c.ci, c.off = 0, 0
}

// poison overwrites every backing chunk with the given sentinel.
func (c *chunked[T]) poison(v T) {
	for _, ch := range c.chunks {
		for i := range ch {
			ch[i] = v
		}
	}
}

// Arena hands out zeroed typed scratch slices and recycles all of them at
// once on Reset. The zero Arena is ready to use. All methods are safe on a
// nil *Arena: they fall back to plain heap allocation, so arena-aware code
// paths need no branching at call sites.
type Arena struct {
	ints  chunked[int]
	f64s  chunked[float64]
	bytes chunked[byte]
	strs  chunked[string]
}

// Ints returns a zeroed []int of length n, valid until Reset.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.grab(n)
}

// Float64s returns a zeroed []float64 of length n, valid until Reset.
func (a *Arena) Float64s(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64s.grab(n)
}

// Bytes returns a zeroed []byte of length n, valid until Reset.
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	return a.bytes.grab(n)
}

// Buf returns an empty []byte with capacity at least n, for append-style
// key building. Unlike Bytes, the backing memory is not zeroed: the
// contract is that a Buf is only ever written through append before being
// read, so stale contents are unobservable. Appends beyond the capacity
// fall back to the heap as usual — correct, just not recycled.
func (a *Arena) Buf(n int) []byte {
	if a == nil {
		return make([]byte, 0, n)
	}
	b := a.bytes.grab(n)
	return b[:0]
}

// Strings returns a zeroed []string of length n, valid until Reset.
func (a *Arena) Strings(n int) []string {
	if a == nil {
		return make([]string, n)
	}
	return a.strs.grab(n)
}

// Reset recycles all backing memory: every slice previously handed out is
// invalidated and will be reissued (zeroed) by later grabs.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.ints.reset()
	a.f64s.reset()
	a.bytes.reset()
	a.strs.reset()
}

// Poison fills all backing memory with non-zero garbage (without resetting
// the cursors). It exists for tests: a poisoned, Reset arena must still hand
// out fully zeroed grabs, proving that no stale state can survive recycling.
func (a *Arena) Poison() {
	if a == nil {
		return
	}
	a.ints.poison(-0x5a5a5a5a)
	a.f64s.poison(math.NaN())
	a.bytes.poison(0xa5)
	a.strs.poison("POISON")
}

// pool keeps warm arenas for reuse across evaluations. sync.Pool is already
// per-P sharded, so Get/Put from many workers do not contend, and idle
// arenas are released to the GC under memory pressure.
var pool = sync.Pool{New: func() any { return new(Arena) }}

// Get returns a ready arena, warm when one is available. The caller owns it
// exclusively until Put.
func Get() *Arena {
	return pool.Get().(*Arena)
}

// Put resets the arena and makes it available for reuse. The caller must
// not touch the arena or any slice grabbed from it afterwards.
func Put(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	pool.Put(a)
}
