package pareto

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Point{"a", 1, 1, 1}
	b := Point{"b", 2, 2, 2}
	c := Point{"c", 1, 3, 0}
	if !Dominates(a, b) {
		t.Error("a should dominate b")
	}
	if Dominates(b, a) {
		t.Error("b should not dominate a")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("a and c are incomparable")
	}
	if Dominates(a, a) {
		t.Error("a point must not dominate itself (no strict improvement)")
	}
}

func TestFrontBasic(t *testing.T) {
	pts := []Point{
		{"good", 1, 5, 0},
		{"alsoGood", 5, 1, 0},
		{"bad", 6, 6, 0},
		{"mid", 3, 3, 0},
	}
	f := Front(pts)
	if len(f) != 3 {
		t.Fatalf("front size %d, want 3: %v", len(f), f)
	}
	for _, p := range f {
		if p.Label == "bad" {
			t.Fatal("dominated point in front")
		}
	}
	// Deterministic ordering by area.
	if f[0].Label != "good" || f[2].Label != "alsoGood" {
		t.Fatalf("unexpected order: %v", f)
	}
}

func TestFrontKeepsDuplicates(t *testing.T) {
	pts := []Point{{"x", 1, 1, 1}, {"y", 1, 1, 1}}
	if f := Front(pts); len(f) != 2 {
		t.Fatalf("duplicate cost vectors filtered: %v", f)
	}
}

func TestFrontEmpty(t *testing.T) {
	if f := Front(nil); f != nil {
		t.Fatalf("Front(nil) = %v", f)
	}
}

func TestBest(t *testing.T) {
	pts := []Point{
		{"powerHog", 1, 100, 0},
		{"balanced", 10, 10, 0},
	}
	b, ok := Best(pts, 1, 1, 0)
	if !ok || b.Label != "balanced" {
		t.Fatalf("Best = %+v", b)
	}
	b, _ = Best(pts, 1, 0, 0) // area only
	if b.Label != "powerHog" {
		t.Fatalf("area-weighted Best = %+v", b)
	}
	if _, ok := Best(nil, 1, 1, 1); ok {
		t.Fatal("Best of empty set reported ok")
	}
}

func TestBestTieBreaksOnLabel(t *testing.T) {
	pts := []Point{{"zeta", 1, 1, 1}, {"alpha", 1, 1, 1}}
	b, _ := Best(pts, 1, 1, 1)
	if b.Label != "alpha" {
		t.Fatalf("tie break chose %q", b.Label)
	}
}

func TestString(t *testing.T) {
	s := String([]Point{{"v1", 1.5, 2.5, 100}})
	if !strings.Contains(s, "v1") || !strings.Contains(s, "1.5") {
		t.Fatalf("String output %q", s)
	}
}

// Property: no front member dominates another; every non-front point is
// dominated by some front member.
func TestQuickFrontCorrect(t *testing.T) {
	f := func(raw []uint8) bool {
		var pts []Point
		for i := 0; i+2 < len(raw); i += 3 {
			pts = append(pts, Point{
				Label: string(rune('a' + i%26)),
				Area:  float64(raw[i] % 8),
				Power: float64(raw[i+1] % 8),
				Time:  float64(raw[i+2] % 8),
			})
		}
		front := Front(pts)
		inFront := func(p Point) bool {
			for _, q := range front {
				if q == p {
					return true
				}
			}
			return false
		}
		for i, p := range front {
			for j, q := range front {
				if i != j && Dominates(p, q) {
					return false
				}
			}
		}
		for _, p := range pts {
			if inFront(p) {
				continue
			}
			dominated := false
			for _, q := range front {
				if Dominates(q, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
