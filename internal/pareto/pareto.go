// Package pareto provides area/time/power cost points and Pareto-front
// filtering for the exploration results. The paper's methodology evaluates
// several alternatives per step and keeps the interesting trade-off points;
// this package formalizes "interesting".
package pareto

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one evaluated design alternative. All three objectives are
// minimized. Time is typically the used storage cycles (or zero when the
// alternatives share a budget).
type Point struct {
	Label string
	Area  float64 // mm²
	Power float64 // mW
	Time  float64 // cycles (or seconds; any consistent unit)
}

// Dominates reports whether a is at least as good as b in every objective
// and strictly better in at least one.
func Dominates(a, b Point) bool {
	if a.Area > b.Area || a.Power > b.Power || a.Time > b.Time {
		return false
	}
	return a.Area < b.Area || a.Power < b.Power || a.Time < b.Time
}

// Front returns the Pareto-optimal subset of points, in a deterministic
// order (sorted by area, then power, then time, then label). Duplicate
// cost vectors are all kept (they are distinct alternatives).
func Front(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		switch {
		case a.Area != b.Area:
			return a.Area < b.Area
		case a.Power != b.Power:
			return a.Power < b.Power
		case a.Time != b.Time:
			return a.Time < b.Time
		default:
			return a.Label < b.Label
		}
	})
	return front
}

// Best returns the point minimizing the weighted sum wA·Area + wP·Power +
// wT·Time; ties break on label for determinism.
func Best(points []Point, wA, wP, wT float64) (Point, bool) {
	if len(points) == 0 {
		return Point{}, false
	}
	best := points[0]
	bestV := wA*best.Area + wP*best.Power + wT*best.Time
	for _, p := range points[1:] {
		v := wA*p.Area + wP*p.Power + wT*p.Time
		if v < bestV || (v == bestV && p.Label < best.Label) {
			best, bestV = p, v
		}
	}
	return best, true
}

// String renders a compact summary of a point set.
func String(points []Point) string {
	var b strings.Builder
	for _, p := range points {
		fmt.Fprintf(&b, "%-28s area %8.1f mm²  power %8.1f mW  time %12.0f\n",
			p.Label, p.Area, p.Power, p.Time)
	}
	return b.String()
}
