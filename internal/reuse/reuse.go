// Package reuse implements the data-reuse analysis and the custom memory
// hierarchy transformation of the paper's memory hierarchy decision step
// (§4.4, Figure 3).
//
// The analysis computes exact LRU stack distances of a profiled read
// address trace (Fenwick-tree algorithm, O(n log n)); the miss ratio of any
// candidate layer size then follows from the distance histogram, and by
// LRU's inclusion property a stack of layers is analyzed with the same
// histogram.
//
// The transformation rewrites a specification for a chosen hierarchy: read
// sites of the target array are redirected to the innermost copy layer, and
// explicit copy transfers between adjacent layers are added with profiled
// (fractional) counts. This mirrors the paper's fully custom model: "every
// memory access can be explicitly directed to one specific memory hierarchy
// layer, and all copies from one layer to another can be expressed at
// compile time in the source code".
package reuse

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/spec"
)

// Profile is the reuse-distance histogram of a read address trace.
type Profile struct {
	// hist[d] counts accesses with stack distance d (1 = re-access with no
	// distinct intervening address). Index 0 is unused.
	hist  []uint64
	cold  uint64 // first-touch accesses (infinite distance)
	far   uint64 // distances beyond the tracked cap
	total uint64
	cap   int
}

// maxTracked caps the histogram; candidate layers larger than this are not
// meaningful on-chip copy layers anyway.
const maxTracked = 1 << 17

// AnalyzeObserved is Analyze with telemetry: it wraps the stack-distance
// computation in a "reuse.analyze" span under parent, recording the trace
// length and cold-miss count. A nil parent reduces to plain Analyze.
func AnalyzeObserved(addrs []int32, parent *obs.Span) *Profile {
	return AnalyzeObservedContext(context.Background(), addrs, parent)
}

// AnalyzeObservedContext is AnalyzeObserved with cancellation support (see
// AnalyzeContext for the truncation semantics).
func AnalyzeObservedContext(ctx context.Context, addrs []int32, parent *obs.Span) *Profile {
	sp := parent.Child("reuse.analyze")
	defer sp.End()
	p := AnalyzeContext(ctx, addrs)
	if sp != nil {
		sp.SetInt("trace_len", int64(len(addrs)))
		sp.SetInt("cold", int64(p.cold))
		sp.SetInt("far", int64(p.far))
		if p.total < uint64(len(addrs)) {
			sp.SetInt("truncated_at", int64(p.total))
		}
		sp.Observer().Counter("reuse.analyzed_accesses").Add(int64(p.total))
	}
	return p
}

// analyzeCheckInterval is the cancellation-poll stride of the stack-distance
// loop: with ~100 ns per position, 64Ki positions keep the deadline honored
// within ~10 ms while the uncancelled path pays one mask per position.
const analyzeCheckInterval = 64 * 1024

// Analyze computes the reuse profile of a read address trace.
func Analyze(addrs []int32) *Profile {
	return AnalyzeContext(context.Background(), addrs)
}

// AnalyzeContext is Analyze with cancellation support: when ctx expires
// mid-trace, the profile of the prefix processed so far is returned (Total
// reports the truncated length, so miss ratios stay consistent). Stack
// distances are a property of the trace prefix, so a truncated profile is a
// valid — just lower-confidence — reuse estimate.
func AnalyzeContext(ctx context.Context, addrs []int32) *Profile {
	p := &Profile{hist: make([]uint64, 1), cap: maxTracked, total: uint64(len(addrs))}
	if len(addrs) == 0 {
		return p
	}
	n := len(addrs)
	// Fenwick tree over trace positions; a 1 marks the most recent
	// occurrence of each distinct address.
	bit := make([]int32, n+1)
	add := func(i int, v int32) {
		for i++; i <= n; i += i & (-i) {
			bit[i] += v
		}
	}
	sum := func(i int) int32 { // prefix sum over [0, i]
		var s int32
		for i++; i > 0; i -= i & (-i) {
			s += bit[i]
		}
		return s
	}
	done := ctx.Done()
	last := make(map[int32]int, 1024)
	for t, a := range addrs {
		if done != nil && t > 0 && t%analyzeCheckInterval == 0 {
			select {
			case <-done:
				p.total = uint64(t) // profile of the processed prefix
				return p
			default:
			}
		}
		if lt, seen := last[a]; seen {
			// Distinct addresses touched strictly between lt and t, plus
			// the element's own stack slot.
			d := int(sum(t-1)-sum(lt)) + 1
			p.record(d)
			add(lt, -1)
		} else {
			p.cold++
		}
		add(t, 1)
		last[a] = t
	}
	return p
}

func (p *Profile) record(d int) {
	if d > p.cap {
		p.far++
		return
	}
	for len(p.hist) <= d {
		p.hist = append(p.hist, 0)
	}
	p.hist[d]++
}

// Total returns the number of accesses in the trace.
func (p *Profile) Total() uint64 { return p.total }

// Cold returns the number of first-touch accesses.
func (p *Profile) Cold() uint64 { return p.cold }

// MissRatio returns the fraction of accesses that miss an LRU buffer of the
// given size (in words). Sizes beyond the tracked cap are clamped to it.
func (p *Profile) MissRatio(size int64) float64 {
	if p.total == 0 {
		return 0
	}
	if size <= 0 {
		return 1
	}
	if size > int64(p.cap) {
		size = int64(p.cap)
	}
	misses := p.cold + p.far
	for d := int(size) + 1; d < len(p.hist); d++ {
		misses += p.hist[d]
	}
	return float64(misses) / float64(p.total)
}

// Layer is one candidate copy layer, innermost (closest to the datapath)
// first.
type Layer struct {
	Name  string
	Words int64
}

// Hierarchy is a chosen memory hierarchy for one array: the evaluated
// variant the exploration step compares.
type Hierarchy struct {
	Array  string
	Layers []Layer // innermost first; empty = no hierarchy
	// MissRatios[i] is the fraction of the original reads that miss layer i
	// (and must be fetched from layer i+1 or the backing array).
	MissRatios []float64
}

// PlanObserved is Plan with telemetry: a "reuse.plan" span under parent
// records the array, the candidate layer count, and the innermost miss
// ratio. A nil parent reduces to plain Plan.
func PlanObserved(array string, layers []Layer, prof *Profile, parent *obs.Span) (*Hierarchy, error) {
	sp := parent.Child("reuse.plan")
	defer sp.End()
	h, err := Plan(array, layers, prof)
	if sp != nil {
		sp.SetStr("array", array)
		sp.SetInt("layers", int64(len(layers)))
		if err == nil && len(h.MissRatios) > 0 {
			sp.SetFloat("inner_miss_ratio", h.MissRatios[0])
		}
		sp.Observer().Counter("reuse.plans").Add(1)
	}
	return h, err
}

// Plan derives a Hierarchy (with miss ratios) from a profile.
func Plan(array string, layers []Layer, prof *Profile) (*Hierarchy, error) {
	h := &Hierarchy{Array: array, Layers: layers}
	prev := int64(0)
	for _, l := range layers {
		if l.Words <= prev {
			return nil, fmt.Errorf("reuse: layer %q (%d words) not larger than inner layer (%d words)",
				l.Name, l.Words, prev)
		}
		prev = l.Words
		h.MissRatios = append(h.MissRatios, prof.MissRatio(l.Words))
	}
	return h, nil
}

// Apply rewrites the specification for the hierarchy: every read site of
// the array (in every loop) is redirected to the innermost layer, and copy
// traffic is added per loop with counts proportional to the redirected
// reads. Writes to the backing array are left in place (write-through; the
// BTPC image array is read-dominated).
func Apply(s *spec.Spec, h *Hierarchy, bits int) (*spec.Spec, error) {
	if len(h.Layers) == 0 {
		return s.Clone(), nil
	}
	if _, ok := s.Group(h.Array); !ok {
		return nil, fmt.Errorf("reuse: unknown array %q", h.Array)
	}
	for _, l := range h.Layers {
		if _, exists := s.Group(l.Name); exists {
			return nil, fmt.Errorf("reuse: layer name %q collides with an existing group", l.Name)
		}
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s+hier(%s:%d)", s.Name, h.Array, len(h.Layers))
	for _, l := range h.Layers {
		out.Groups = append(out.Groups, spec.BasicGroup{Name: l.Name, Words: l.Words, Bits: bits})
	}
	inner := h.Layers[0].Name
	for li := range out.Loops {
		l := &out.Loops[li]
		// Total redirected read count in this loop body.
		var redirected float64
		for i := range l.Accesses {
			a := &l.Accesses[i]
			if a.Group == h.Array && !a.Write {
				a.Group = inner
				redirected += a.Count
			}
		}
		if redirected == 0 {
			continue
		}
		// Copy traffic between adjacent layers: layer i is filled from
		// layer i+1 (or the backing array) at the miss rate of layer i.
		// Copies are prefetch-style: ordered read->write, no dependence to
		// the consumer sites.
		for i := range h.Layers {
			src := h.Array
			if i+1 < len(h.Layers) {
				src = h.Layers[i+1].Name
			}
			cnt := redirected * h.MissRatios[i]
			if cnt <= 0 {
				continue
			}
			rd := spec.Access{
				ID:    len(l.Accesses),
				Group: src,
				Count: cnt,
				Site:  fmt.Sprintf("copy:%s<-%s", h.Layers[i].Name, src),
			}
			l.Accesses = append(l.Accesses, rd)
			wr := spec.Access{
				ID:    len(l.Accesses),
				Group: h.Layers[i].Name,
				Write: true,
				Count: cnt,
				Deps:  []int{rd.ID},
				Site:  rd.Site,
			}
			l.Accesses = append(l.Accesses, wr)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("reuse: hierarchy produced invalid spec: %w", err)
	}
	return out, nil
}

// Describe renders the hierarchy as a one-line summary (used in reports).
func (h *Hierarchy) Describe() string {
	if len(h.Layers) == 0 {
		return fmt.Sprintf("%s: no hierarchy", h.Array)
	}
	parts := make([]string, 0, len(h.Layers))
	for i, l := range h.Layers {
		parts = append(parts, fmt.Sprintf("%s(%dw, miss %.1f%%)", l.Name, l.Words, 100*h.MissRatios[i]))
	}
	return fmt.Sprintf("%s <- %s", h.Array, joinArrow(parts))
}

func joinArrow(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " <- "
		}
		out += p
	}
	return out
}
