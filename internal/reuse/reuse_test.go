package reuse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.Total() != 0 || p.MissRatio(16) != 0 {
		t.Fatalf("empty trace profile: total %d miss %.2f", p.Total(), p.MissRatio(16))
	}
}

func TestCyclicTraceMissBoundary(t *testing.T) {
	// Cyclic access over k distinct addresses: every non-cold access has
	// stack distance exactly k, so an LRU of size >= k hits and any
	// smaller LRU misses — the classic boundary case.
	const k = 8
	var addrs []int32
	for rep := 0; rep < 50; rep++ {
		for a := int32(0); a < k; a++ {
			addrs = append(addrs, a)
		}
	}
	p := Analyze(addrs)
	if p.Cold() != k {
		t.Fatalf("cold = %d, want %d", p.Cold(), k)
	}
	coldFrac := float64(k) / float64(len(addrs))
	if got := p.MissRatio(k); math.Abs(got-coldFrac) > 1e-9 {
		t.Fatalf("MissRatio(%d) = %v, want only cold misses %v", k, got, coldFrac)
	}
	if got := p.MissRatio(k - 1); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("MissRatio(%d) = %v, want 1.0", k-1, got)
	}
}

func TestImmediateReuse(t *testing.T) {
	addrs := []int32{5, 5, 5, 5}
	p := Analyze(addrs)
	if got := p.MissRatio(1); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("MissRatio(1) = %v, want 0.25 (one cold access)", got)
	}
}

func TestSequentialStreamAlwaysMisses(t *testing.T) {
	addrs := make([]int32, 1000)
	for i := range addrs {
		addrs[i] = int32(i)
	}
	p := Analyze(addrs)
	if got := p.MissRatio(64); got != 1.0 {
		t.Fatalf("streaming MissRatio = %v, want 1.0", got)
	}
}

func TestMissRatioMonotone(t *testing.T) {
	// Sliding-window trace: each access reuses a mix of near and far
	// history; miss ratio must be non-increasing in size.
	var addrs []int32
	for i := 0; i < 2000; i++ {
		addrs = append(addrs, int32(i), int32(i/2), int32(i%37))
	}
	p := Analyze(addrs)
	prev := 2.0
	for _, s := range []int64{1, 2, 4, 8, 16, 64, 256, 1024, 4096} {
		m := p.MissRatio(s)
		if m > prev+1e-12 {
			t.Fatalf("miss ratio increased at size %d: %v -> %v", s, prev, m)
		}
		if m < 0 || m > 1 {
			t.Fatalf("miss ratio %v out of range", m)
		}
		prev = m
	}
}

func TestMissRatioEdgeSizes(t *testing.T) {
	p := Analyze([]int32{1, 2, 1, 2})
	if p.MissRatio(0) != 1.0 {
		t.Fatal("size 0 should always miss")
	}
	if p.MissRatio(1<<30) > p.MissRatio(2) {
		t.Fatal("clamped huge size worse than small size")
	}
}

// naiveStackDistance recomputes miss counts with an O(n²) reference LRU.
func naiveMissRatio(addrs []int32, size int) float64 {
	if len(addrs) == 0 {
		return 0
	}
	var lru []int32
	misses := 0
	for _, a := range addrs {
		found := -1
		for i, v := range lru {
			if v == a {
				found = i
				break
			}
		}
		if found < 0 || found >= size {
			misses++
		}
		if found >= 0 {
			lru = append(lru[:found], lru[found+1:]...)
		}
		lru = append([]int32{a}, lru...)
	}
	return float64(misses) / float64(len(addrs))
}

// Property: the Fenwick analysis agrees with a naive LRU simulation.
func TestQuickMatchesNaiveLRU(t *testing.T) {
	f := func(raw []byte, sizeSeed uint8) bool {
		addrs := make([]int32, len(raw))
		for i, b := range raw {
			addrs[i] = int32(b % 16)
		}
		size := int(sizeSeed)%12 + 1
		p := Analyze(addrs)
		got := p.MissRatio(int64(size))
		want := naiveMissRatio(addrs, size)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func imageSpec(t *testing.T) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("img")
	b.Group("image", 1024*1024, 8)
	b.Group("small", 256, 8)
	b.Loop("body", 1000)
	r1 := b.Read("image", 1)
	r2 := b.Read("image", 1)
	r3 := b.Read("image", 0.5)
	b.Read("small", 1, r1, r2, r3)
	b.Loop("input", 1)
	b.Write("image", 1024*1024)
	return b.MustBuild()
}

func TestPlanAndApplyTwoLayers(t *testing.T) {
	s := imageSpec(t)
	// Synthetic profile: cyclic over 64 addresses gives miss boundary 64.
	var addrs []int32
	for rep := 0; rep < 100; rep++ {
		for a := int32(0); a < 64; a++ {
			addrs = append(addrs, a)
		}
	}
	prof := Analyze(addrs)
	h, err := Plan("image", []Layer{{"ylocal", 12}, {"yhier", 128}}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if h.MissRatios[0] <= h.MissRatios[1] {
		t.Fatalf("inner layer should miss more: %v", h.MissRatios)
	}
	out, err := Apply(s, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reads redirected: ylocal carries the original 2.5 reads/iter.
	if got := out.AccessesPerFrame("ylocal"); got == 0 {
		t.Fatal("no accesses on inner layer")
	}
	ylocalReads := float64(out.AccessesPerFrame("ylocal"))
	// ylocal gets 2.5 redirected reads + copy writes at miss(12)=1.0:
	// 2.5 + 2.5 = 5 per iter → 5000.
	if math.Abs(ylocalReads-5000) > 1 {
		t.Fatalf("ylocal accesses = %v, want ~5000", ylocalReads)
	}
	// Backing image: input writes + copy reads at miss(128 -> clamp 64
	// boundary): miss(128) counts only cold ≈ 64/6400 = 1%.
	imgAcc := float64(out.AccessesPerFrame("image"))
	want := 1024*1024 + 2.5*0.01*1000
	if math.Abs(imgAcc-want)/want > 0.05 {
		t.Fatalf("image accesses = %v, want ~%v", imgAcc, want)
	}
	// Original spec untouched.
	if _, ok := s.Group("ylocal"); ok {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplySingleLayer(t *testing.T) {
	s := imageSpec(t)
	var addrs []int32
	for rep := 0; rep < 10; rep++ {
		for a := int32(0); a < 16; a++ {
			addrs = append(addrs, a)
		}
	}
	prof := Analyze(addrs)
	h, err := Plan("image", []Layer{{"buf", 32}}, prof)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(s, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := out.Group("buf")
	if !ok || g.Words != 32 || g.Bits != 8 {
		t.Fatalf("buf group = %+v, %v", g, ok)
	}
	// miss(32) on a 16-cycle trace = cold only = 16/160 = 10%.
	// image copy reads = 2.5 × 0.1 × 1000 = 250 + 1M input writes.
	imgAcc := out.AccessesPerFrame("image")
	if imgAcc < 1024*1024+200 || imgAcc > 1024*1024+300 {
		t.Fatalf("image accesses = %d, want 1M + ~250", imgAcc)
	}
}

func TestApplyNoHierarchyIsClone(t *testing.T) {
	s := imageSpec(t)
	h := &Hierarchy{Array: "image"}
	out, err := Apply(s, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("no-hierarchy apply changed the spec")
	}
}

func TestPlanErrors(t *testing.T) {
	prof := Analyze([]int32{1, 2, 3})
	if _, err := Plan("x", []Layer{{"a", 64}, {"b", 32}}, prof); err == nil {
		t.Fatal("non-increasing layer sizes accepted")
	}
}

func TestApplyErrors(t *testing.T) {
	s := imageSpec(t)
	prof := Analyze([]int32{1, 2, 3})
	h, err := Plan("ghost", []Layer{{"a", 64}}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(s, h, 8); err == nil {
		t.Fatal("unknown array accepted")
	}
	h2, _ := Plan("image", []Layer{{"small", 64}}, prof)
	if _, err := Apply(s, h2, 8); err == nil {
		t.Fatal("layer name collision accepted")
	}
}

func TestDescribe(t *testing.T) {
	h := &Hierarchy{Array: "image"}
	if h.Describe() != "image: no hierarchy" {
		t.Fatalf("Describe = %q", h.Describe())
	}
	h2 := &Hierarchy{
		Array:      "image",
		Layers:     []Layer{{"ylocal", 12}, {"yhier", 5120}},
		MissRatios: []float64{0.4, 0.05},
	}
	d := h2.Describe()
	if d == "" || d == "image: no hierarchy" {
		t.Fatalf("Describe = %q", d)
	}
}
