package spec

import (
	"bytes"
	"strings"
	"testing"
)

// handWrittenJSON is the minimal designer-authored specification from
// TestJSONHandWrittenSpec — the natural seed for the fuzz corpus.
const handWrittenJSON = `{
  "name": "hand",
  "groups": [{"name": "buf", "words": 1024, "bits": 12}],
  "loops": [
    {"name": "main", "iterations": 5000, "accesses": [
      {"group": "buf", "count": 2},
      {"group": "buf", "write": true, "count": 1, "deps": [0]}
    ]}
  ]
}`

// specEqual compares two specifications semantically: nil and empty Deps
// slices are the same dependence set (the JSON form omits empty deps, so a
// byte-level round trip can legally turn [] into nil).
func specEqual(a, b *Spec) bool {
	if a.Name != b.Name || len(a.Groups) != len(b.Groups) || len(a.Loops) != len(b.Loops) {
		return false
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	for i := range a.Loops {
		la, lb := a.Loops[i], b.Loops[i]
		if la.Name != lb.Name || la.Iterations != lb.Iterations || len(la.Accesses) != len(lb.Accesses) {
			return false
		}
		for j := range la.Accesses {
			x, y := la.Accesses[j], lb.Accesses[j]
			if x.ID != y.ID || x.Group != y.Group || x.Write != y.Write ||
				x.Count != y.Count || x.Site != y.Site || x.Branch != y.Branch {
				return false
			}
			if len(x.Deps) != len(y.Deps) {
				return false
			}
			for k := range x.Deps {
				if x.Deps[k] != y.Deps[k] {
					return false
				}
			}
		}
	}
	return true
}

// FuzzSpecJSONRoundTrip feeds arbitrary bytes to ReadJSON: it must either
// error cleanly or produce a specification that validates and survives a
// WriteJSON → ReadJSON round trip unchanged.
func FuzzSpecJSONRoundTrip(f *testing.F) {
	f.Add([]byte(handWrittenJSON))
	f.Add([]byte(`{"name":"empty","groups":[],"loops":[]}`))
	f.Add([]byte(`{"name":"x","groups":[{"name":"g","words":1,"bits":1}],"loops":[{"name":"l","iterations":1,"accesses":[{"group":"g","count":0.5,"site":"s","branch":"b"}]}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"name":"bad","groups":[{"name":"g","words":-3,"bits":99}],"loops":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is fine; panics are the bug class
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted a spec that does not validate: %v", err)
		}
		var buf strings.Builder
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON failed on an accepted spec: %v", err)
		}
		back, err := ReadJSON(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected WriteJSON output: %v\n%s", err, buf.String())
		}
		if !specEqual(s, back) {
			t.Fatalf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", s, back)
		}
	})
}
