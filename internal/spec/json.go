package spec

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON form of a specification, for persisting pruned specifications
// and exchanging them between the profiling and exploration tools. The
// format mirrors the in-memory structures with lower-case field names and
// omits empty fields, so hand-written specifications stay readable.

type jsonSpec struct {
	Name   string      `json:"name"`
	Groups []jsonGroup `json:"groups"`
	Loops  []jsonLoop  `json:"loops"`
}

type jsonGroup struct {
	Name  string `json:"name"`
	Words int64  `json:"words"`
	Bits  int    `json:"bits"`
}

type jsonLoop struct {
	Name       string       `json:"name"`
	Iterations uint64       `json:"iterations"`
	Accesses   []jsonAccess `json:"accesses"`
}

type jsonAccess struct {
	Group  string  `json:"group"`
	Write  bool    `json:"write,omitempty"`
	Count  float64 `json:"count"`
	Deps   []int   `json:"deps,omitempty"`
	Site   string  `json:"site,omitempty"`
	Branch string  `json:"branch,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Spec) MarshalJSON() ([]byte, error) {
	js := jsonSpec{Name: s.Name}
	for _, g := range s.Groups {
		js.Groups = append(js.Groups, jsonGroup(g))
	}
	for _, l := range s.Loops {
		jl := jsonLoop{Name: l.Name, Iterations: l.Iterations}
		for _, a := range l.Accesses {
			jl.Accesses = append(jl.Accesses, jsonAccess{
				Group: a.Group, Write: a.Write, Count: a.Count,
				Deps: a.Deps, Site: a.Site, Branch: a.Branch,
			})
		}
		js.Loops = append(js.Loops, jl)
	}
	return json.Marshal(js)
}

// UnmarshalJSON implements json.Unmarshaler. Access IDs are assigned from
// the array order; the result is validated.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var js jsonSpec
	if err := json.Unmarshal(data, &js); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	out := Spec{Name: js.Name}
	for _, g := range js.Groups {
		out.Groups = append(out.Groups, BasicGroup(g))
	}
	for _, jl := range js.Loops {
		l := Loop{Name: jl.Name, Iterations: jl.Iterations}
		for i, ja := range jl.Accesses {
			l.Accesses = append(l.Accesses, Access{
				ID: i, Group: ja.Group, Write: ja.Write, Count: ja.Count,
				Deps: ja.Deps, Site: ja.Site, Branch: ja.Branch,
			})
		}
		out.Loops = append(out.Loops, l)
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// WriteJSON serializes the specification with indentation.
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses and validates a specification.
func ReadJSON(r io.Reader) (*Spec, error) {
	var s Spec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
