package spec

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Spec {
	t.Helper()
	b := NewBuilder("small")
	b.Group("a", 1024, 8).Group("b", 256, 16)
	b.Loop("main", 1000)
	r1 := b.Read("a", 1)
	r2 := b.Read("b", 0.5)
	b.Write("a", 1, r1, r2)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuilderBasics(t *testing.T) {
	s := buildSmall(t)
	if len(s.Groups) != 2 || len(s.Loops) != 1 {
		t.Fatalf("groups %d loops %d", len(s.Groups), len(s.Loops))
	}
	g, ok := s.Group("b")
	if !ok || g.Words != 256 || g.Bits != 16 {
		t.Fatalf("Group(b) = %+v, %v", g, ok)
	}
	if _, ok := s.Group("zzz"); ok {
		t.Fatal("unknown group found")
	}
	if g.BitSize() != 256*16 {
		t.Fatalf("BitSize = %d", g.BitSize())
	}
}

func TestAccessesPerFrame(t *testing.T) {
	s := buildSmall(t)
	if got := s.AccessesPerFrame("a"); got != 2000 {
		t.Fatalf("a accesses = %d, want 2000", got)
	}
	if got := s.AccessesPerFrame("b"); got != 500 {
		t.Fatalf("b accesses = %d, want 500", got)
	}
	if got := s.TotalAccesses(); got != 2500 {
		t.Fatalf("total = %d, want 2500", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := buildSmall(t)
	c := s.Clone()
	c.Groups[0].Bits = 32
	c.Loops[0].Accesses[0].Count = 99
	c.Loops[0].Accesses[2].Deps[0] = 1
	if s.Groups[0].Bits == 32 || s.Loops[0].Accesses[0].Count == 99 {
		t.Fatal("clone shares group/access storage")
	}
	if s.Loops[0].Accesses[2].Deps[0] != 0 {
		t.Fatal("clone shares dep slices")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func(mut func(*Spec)) error {
		s := buildSmall(t).Clone()
		mut(s)
		return s.Validate()
	}
	cases := map[string]func(*Spec){
		"dup group":     func(s *Spec) { s.Groups = append(s.Groups, BasicGroup{Name: "a", Words: 1, Bits: 1}) },
		"empty name":    func(s *Spec) { s.Groups[0].Name = "" },
		"zero words":    func(s *Spec) { s.Groups[0].Words = 0 },
		"bad bits":      func(s *Spec) { s.Groups[0].Bits = 65 },
		"zero iters":    func(s *Spec) { s.Loops[0].Iterations = 0 },
		"unknown group": func(s *Spec) { s.Loops[0].Accesses[0].Group = "ghost" },
		"sparse IDs":    func(s *Spec) { s.Loops[0].Accesses[1].ID = 7 },
		"neg count":     func(s *Spec) { s.Loops[0].Accesses[0].Count = -1 },
		"dep range":     func(s *Spec) { s.Loops[0].Accesses[2].Deps = []int{9} },
		"self dep":      func(s *Spec) { s.Loops[0].Accesses[2].Deps = []int{2} },
		"dep cycle":     func(s *Spec) { s.Loops[0].Accesses[0].Deps = []int{2} },
	}
	for name, mut := range cases {
		if err := mk(mut); err == nil {
			t.Errorf("%s: Validate accepted a broken spec", name)
		}
	}
}

func TestBuilderAccessOutsideLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("x").Group("a", 1, 1).Read("a", 1)
}

func TestRemoveGroup(t *testing.T) {
	s := buildSmall(t)
	s.RemoveGroup("b")
	if _, ok := s.Group("b"); ok {
		t.Fatal("b still present")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("spec invalid after RemoveGroup: %v", err)
	}
	for _, a := range s.Loops[0].Accesses {
		if a.Group == "b" {
			t.Fatal("access to removed group survived")
		}
	}
	// The write depended on both reads; the dependence on the surviving
	// read must remain.
	w := s.Loops[0].Accesses[1]
	if !w.Write || len(w.Deps) != 1 || w.Deps[0] != 0 {
		t.Fatalf("rewired write access = %+v", w)
	}
}

func TestFilterAccessesRewiresTransitively(t *testing.T) {
	b := NewBuilder("chain")
	b.Group("a", 16, 8).Group("tmp", 16, 8)
	b.Loop("l", 10)
	r := b.Read("a", 1)
	m := b.Write("tmp", 1, r)
	m2 := b.Read("tmp", 1, m)
	b.Write("a", 1, m2)
	s := b.MustBuild()
	// Drop the tmp accesses: the final write must now depend on the first
	// read via the collapsed chain.
	s.FilterAccesses(func(_ string, a Access) bool { return a.Group != "tmp" })
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Loops[0].Accesses) != 2 {
		t.Fatalf("%d accesses left, want 2", len(s.Loops[0].Accesses))
	}
	w := s.Loops[0].Accesses[1]
	if len(w.Deps) != 1 || w.Deps[0] != 0 {
		t.Fatalf("transitive rewiring failed: %+v", w)
	}
}

func TestGroupNamesOrder(t *testing.T) {
	s := buildSmall(t)
	names := s.GroupNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("GroupNames = %v", names)
	}
}

func TestAccessesPerIteration(t *testing.T) {
	s := buildSmall(t)
	if got := s.Loops[0].AccessesPerIteration(); got != 2.5 {
		t.Fatalf("AccessesPerIteration = %v, want 2.5", got)
	}
}

func TestValidateErrorMentionsLocation(t *testing.T) {
	s := buildSmall(t)
	s.Loops[0].Accesses[0].Group = "ghost"
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "main") || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// Property: Clone is always equal in totals and survives Validate whenever
// the original does.
func TestQuickCloneFaithful(t *testing.T) {
	f := func(counts []uint8, iters uint16) bool {
		b := NewBuilder("q")
		b.Group("g", 128, 8)
		b.Loop("l", uint64(iters)+1)
		prev := -1
		for _, c := range counts {
			var id int
			if prev >= 0 && c%2 == 0 {
				id = b.Read("g", float64(c), prev)
			} else {
				id = b.Write("g", float64(c))
			}
			prev = id
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		c := s.Clone()
		return c.Validate() == nil &&
			c.TotalAccesses() == s.TotalAccesses() &&
			c.AccessesPerFrame("g") == s.AccessesPerFrame("g")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FilterAccesses never breaks validity or creates cycles.
func TestQuickFilterKeepsValidity(t *testing.T) {
	f := func(keepMask uint16) bool {
		b := NewBuilder("q")
		b.Group("a", 16, 8).Group("b", 16, 8)
		b.Loop("l", 5)
		ids := make([]int, 8)
		for i := range ids {
			grp := "a"
			if i%2 == 1 {
				grp = "b"
			}
			var deps []int
			if i >= 2 {
				deps = []int{ids[i-1], ids[i-2]}
			} else if i == 1 {
				deps = []int{ids[0]}
			}
			ids[i] = b.Read(grp, 1, deps...)
		}
		s := b.MustBuild()
		s.FilterAccesses(func(_ string, a Access) bool {
			return keepMask&(1<<uint(a.ID)) != 0
		})
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
