// Package spec defines the pruned application specification that the
// paper's exploration steps operate on (§4.1).
//
// After pruning, an application is reduced to what matters for the memory
// organization: the basic groups (arrays treated as atomic units of storage
// and assignment), and the loop bodies with their memory accesses,
// dependence relations and profiled execution counts. Scalar processing and
// loops that "hardly contribute to the total cycle count" are not
// represented — exactly the abstraction the paper prescribes.
package spec

import (
	"fmt"
	"math"
	"sort"
)

// BasicGroup is an atomic unit of storage: it is ordered and stored
// independently of every other basic group, and always assigned to a memory
// as a whole (§4.1).
type BasicGroup struct {
	Name  string
	Words int64 // number of addressable words
	Bits  int   // width of one word
}

// BitSize returns the total payload size in bits.
func (g BasicGroup) BitSize() int64 { return g.Words * int64(g.Bits) }

// Access is one memory access site inside a loop body.
type Access struct {
	ID    int     // unique within the loop body, dense from 0
	Group string  // accessed basic group
	Write bool    // write access (false = read)
	Count float64 // average executions per body iteration (profiled;
	// data-dependent conditionals make this fractional)
	Deps []int // IDs of same-body accesses that must complete first
	// Site optionally tags the source location. Accesses of different
	// groups carrying the same site tag are co-indexed (same index
	// expression at the same statement) — the information basic group
	// merging needs (§4.3).
	Site string
	// Branch optionally names the conditional branch the access executes
	// under. Accesses with different non-empty Branch tags are mutually
	// exclusive: they may share storage cycles without conflicting, and
	// never demand simultaneous memory ports. Data-dependent conditionals
	// (e.g. BTPC's six alternative Huffman coders) are modeled this way.
	Branch string
}

// Loop is one loop body after flattening: Iterations is the total number of
// body executions per frame (nesting folded in), which is the granularity
// at which the paper's storage-cycle-budget distribution works.
type Loop struct {
	Name       string
	Iterations uint64
	Accesses   []Access
}

// AccessesPerIteration returns the expected number of access executions in
// one body iteration.
func (l *Loop) AccessesPerIteration() float64 {
	var s float64
	for _, a := range l.Accesses {
		s += a.Count
	}
	return s
}

// Spec is a pruned application specification.
type Spec struct {
	Name   string
	Groups []BasicGroup
	Loops  []Loop
}

// Group returns the named basic group.
func (s *Spec) Group(name string) (BasicGroup, bool) {
	for _, g := range s.Groups {
		if g.Name == name {
			return g, true
		}
	}
	return BasicGroup{}, false
}

// GroupNames returns the basic group names in declaration order.
func (s *Spec) GroupNames() []string {
	names := make([]string, len(s.Groups))
	for i, g := range s.Groups {
		names[i] = g.Name
	}
	return names
}

// AccessesPerFrame returns the expected number of accesses to the named
// group over one frame (the quantity power estimation needs).
func (s *Spec) AccessesPerFrame(group string) uint64 {
	var total float64
	for _, l := range s.Loops {
		for _, a := range l.Accesses {
			if a.Group == group {
				total += a.Count * float64(l.Iterations)
			}
		}
	}
	return uint64(math.Round(total))
}

// TotalAccesses returns the expected accesses per frame across all groups.
func (s *Spec) TotalAccesses() uint64 {
	var total float64
	for _, l := range s.Loops {
		total += l.AccessesPerIteration() * float64(l.Iterations)
	}
	return uint64(math.Round(total))
}

// Clone returns a deep copy; transformations operate on copies so that
// exploration branches stay independent.
func (s *Spec) Clone() *Spec {
	c := &Spec{Name: s.Name}
	c.Groups = append([]BasicGroup(nil), s.Groups...)
	c.Loops = make([]Loop, len(s.Loops))
	for i, l := range s.Loops {
		cl := Loop{Name: l.Name, Iterations: l.Iterations}
		cl.Accesses = make([]Access, len(l.Accesses))
		for j, a := range l.Accesses {
			ca := a
			ca.Deps = append([]int(nil), a.Deps...)
			cl.Accesses[j] = ca
		}
		c.Loops[i] = cl
	}
	return c
}

// Validate checks referential and structural integrity: group references
// resolve, access IDs are dense and unique, dependences are acyclic and
// in-range, and counts are sane.
func (s *Spec) Validate() error {
	groups := make(map[string]bool, len(s.Groups))
	for _, g := range s.Groups {
		if g.Name == "" {
			return fmt.Errorf("spec %s: basic group with empty name", s.Name)
		}
		if groups[g.Name] {
			return fmt.Errorf("spec %s: duplicate basic group %q", s.Name, g.Name)
		}
		if g.Words <= 0 {
			return fmt.Errorf("spec %s: group %q has %d words", s.Name, g.Name, g.Words)
		}
		if g.Bits <= 0 || g.Bits > 64 {
			return fmt.Errorf("spec %s: group %q has width %d", s.Name, g.Name, g.Bits)
		}
		groups[g.Name] = true
	}
	for li := range s.Loops {
		l := &s.Loops[li]
		if l.Iterations == 0 {
			return fmt.Errorf("spec %s: loop %q has zero iterations", s.Name, l.Name)
		}
		for i, a := range l.Accesses {
			if a.ID != i {
				return fmt.Errorf("spec %s: loop %q access %d has ID %d (must be dense)",
					s.Name, l.Name, i, a.ID)
			}
			if !groups[a.Group] {
				return fmt.Errorf("spec %s: loop %q access %d references unknown group %q",
					s.Name, l.Name, i, a.Group)
			}
			if a.Count < 0 || a.Count > float64(1<<40) || math.IsNaN(a.Count) {
				return fmt.Errorf("spec %s: loop %q access %d has count %v",
					s.Name, l.Name, i, a.Count)
			}
			for _, d := range a.Deps {
				if d < 0 || d >= len(l.Accesses) {
					return fmt.Errorf("spec %s: loop %q access %d dep %d out of range",
						s.Name, l.Name, i, d)
				}
				if d == a.ID {
					return fmt.Errorf("spec %s: loop %q access %d depends on itself",
						s.Name, l.Name, i)
				}
			}
		}
		if hasCycle(l) {
			return fmt.Errorf("spec %s: loop %q has a dependence cycle", s.Name, l.Name)
		}
	}
	return nil
}

func hasCycle(l *Loop) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(l.Accesses))
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, d := range l.Accesses[i].Deps {
			switch color[d] {
			case gray:
				return true
			case white:
				if visit(d) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := range l.Accesses {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}

// RemoveGroup deletes a basic group and every access to it. It is the
// mechanical half of transformations that fold one group into another.
func (s *Spec) RemoveGroup(name string) {
	out := s.Groups[:0]
	for _, g := range s.Groups {
		if g.Name != name {
			out = append(out, g)
		}
	}
	s.Groups = out
	for li := range s.Loops {
		s.filterAccesses(li, func(a Access) bool { return a.Group != name })
	}
}

// filterAccesses keeps only accesses satisfying keep, remapping IDs and
// dependence edges. Dependences of removed accesses are transitively
// re-attached to their predecessors so the ordering constraints survive.
func (s *Spec) filterAccesses(li int, keep func(Access) bool) {
	l := &s.Loops[li]
	// Transitive predecessor sets for removed nodes.
	removed := make(map[int]bool)
	for _, a := range l.Accesses {
		if !keep(a) {
			removed[a.ID] = true
		}
	}
	if len(removed) == 0 {
		return
	}
	// Rewire: replace a dep on a removed node with that node's deps,
	// repeated to fixpoint (the DAG is small).
	resolve := func(deps []int) []int {
		seen := make(map[int]bool)
		var out []int
		var expand func(d int)
		expand = func(d int) {
			if removed[d] {
				for _, dd := range l.Accesses[d].Deps {
					expand(dd)
				}
				return
			}
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
		for _, d := range deps {
			expand(d)
		}
		sort.Ints(out)
		return out
	}
	var kept []Access
	remap := make(map[int]int)
	for _, a := range l.Accesses {
		if removed[a.ID] {
			continue
		}
		a.Deps = resolve(a.Deps)
		remap[a.ID] = len(kept)
		kept = append(kept, a)
	}
	for i := range kept {
		kept[i].ID = remap[kept[i].ID]
		for j, d := range kept[i].Deps {
			kept[i].Deps[j] = remap[d]
		}
		sort.Ints(kept[i].Deps)
	}
	l.Accesses = kept
}

// FilterAccesses applies keep to every loop body (exported wrapper used by
// the transformation packages).
func (s *Spec) FilterAccesses(keep func(loop string, a Access) bool) {
	for li := range s.Loops {
		name := s.Loops[li].Name
		s.filterAccesses(li, func(a Access) bool { return keep(name, a) })
	}
}

// Builder assembles a Spec with dense access IDs and early validation.
type Builder struct {
	s      *Spec
	loop   *Loop
	branch string
}

// Branch sets the conditional-branch tag applied to subsequent accesses;
// pass "" to return to unconditional code.
func (b *Builder) Branch(tag string) *Builder {
	b.branch = tag
	return b
}

// NewBuilder starts a specification with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{s: &Spec{Name: name}}
}

// Group declares a basic group.
func (b *Builder) Group(name string, words int64, bits int) *Builder {
	b.s.Groups = append(b.s.Groups, BasicGroup{Name: name, Words: words, Bits: bits})
	return b
}

// Loop starts a new loop body executed iterations times per frame.
func (b *Builder) Loop(name string, iterations uint64) *Builder {
	b.flushLoop()
	b.loop = &Loop{Name: name, Iterations: iterations}
	return b
}

// Read adds a read access to the current loop; deps are IDs returned by
// earlier Read/Write calls in the same loop.
func (b *Builder) Read(group string, count float64, deps ...int) int {
	return b.access(group, "", false, count, deps)
}

// Write adds a write access to the current loop.
func (b *Builder) Write(group string, count float64, deps ...int) int {
	return b.access(group, "", true, count, deps)
}

// ReadSite adds a read access tagged with a co-indexing site.
func (b *Builder) ReadSite(group, site string, count float64, deps ...int) int {
	return b.access(group, site, false, count, deps)
}

// WriteSite adds a write access tagged with a co-indexing site.
func (b *Builder) WriteSite(group, site string, count float64, deps ...int) int {
	return b.access(group, site, true, count, deps)
}

func (b *Builder) access(group, site string, write bool, count float64, deps []int) int {
	if b.loop == nil {
		panic("spec: access added outside a loop")
	}
	id := len(b.loop.Accesses)
	ds := append([]int(nil), deps...)
	sort.Ints(ds)
	b.loop.Accesses = append(b.loop.Accesses, Access{
		ID: id, Group: group, Write: write, Count: count, Deps: ds, Site: site,
		Branch: b.branch,
	})
	return id
}

func (b *Builder) flushLoop() {
	if b.loop != nil {
		b.s.Loops = append(b.s.Loops, *b.loop)
		b.loop = nil
	}
}

// Build validates and returns the specification.
func (b *Builder) Build() (*Spec, error) {
	b.flushLoop()
	if err := b.s.Validate(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// MustBuild is Build for specifications constructed from trusted code.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
