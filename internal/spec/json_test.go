package spec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func specForJSON(t *testing.T) *Spec {
	t.Helper()
	b := NewBuilder("jsontest")
	b.Group("big", 1<<20, 8).Group("small", 256, 20)
	b.Loop("body", 300_000)
	r := b.ReadSite("big", "nbr", 0.75)
	b.Branch("alt0")
	x := b.Read("small", 0.5, r)
	b.Write("small", 0.5, x)
	b.Branch("")
	b.WriteSite("big", "store", 1, r)
	return b.MustBuild()
}

func TestJSONRoundTrip(t *testing.T) {
	s := specForJSON(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Groups) != len(s.Groups) || len(got.Loops) != len(s.Loops) {
		t.Fatalf("structure lost: %+v", got)
	}
	for li := range s.Loops {
		if len(got.Loops[li].Accesses) != len(s.Loops[li].Accesses) {
			t.Fatalf("loop %d access count changed", li)
		}
		for ai, a := range s.Loops[li].Accesses {
			ga := got.Loops[li].Accesses[ai]
			if ga.Group != a.Group || ga.Write != a.Write || ga.Count != a.Count ||
				ga.Site != a.Site || ga.Branch != a.Branch || len(ga.Deps) != len(a.Deps) {
				t.Fatalf("access %d/%d changed: %+v vs %+v", li, ai, ga, a)
			}
		}
	}
	if got.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("totals changed through JSON")
	}
}

func TestJSONOmitsEmptyFields(t *testing.T) {
	b := NewBuilder("min")
	b.Group("g", 4, 8)
	b.Loop("l", 1)
	b.Read("g", 1)
	s := b.MustBuild()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"site", "branch", "write", "deps"} {
		if strings.Contains(string(data), `"`+absent+`"`) {
			t.Fatalf("empty field %q serialized: %s", absent, data)
		}
	}
}

func TestJSONRejectsInvalidSpec(t *testing.T) {
	bad := []string{
		`{"name":"x","groups":[{"name":"g","words":0,"bits":8}],"loops":[]}`,
		`{"name":"x","groups":[{"name":"g","words":4,"bits":8}],
		  "loops":[{"name":"l","iterations":0,"accesses":[{"group":"g","count":1}]}]}`,
		`{"name":"x","groups":[],"loops":[{"name":"l","iterations":1,
		  "accesses":[{"group":"ghost","count":1}]}]}`,
		`{"name":"x","groups":[{"name":"g","words":4,"bits":8}],
		  "loops":[{"name":"l","iterations":1,
		  "accesses":[{"group":"g","count":1,"deps":[5]}]}]}`,
		`not json at all`,
	}
	for i, in := range bad {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: invalid JSON spec accepted", i)
		}
	}
}

func TestJSONHandWrittenSpec(t *testing.T) {
	in := `{
	  "name": "hand",
	  "groups": [{"name": "buf", "words": 1024, "bits": 12}],
	  "loops": [{
	    "name": "main", "iterations": 5000,
	    "accesses": [
	      {"group": "buf", "count": 2},
	      {"group": "buf", "write": true, "count": 1, "deps": [0]}
	    ]
	  }]
	}`
	s, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.AccessesPerFrame("buf") != 15000 {
		t.Fatalf("accesses = %d, want 15000", s.AccessesPerFrame("buf"))
	}
	if !s.Loops[0].Accesses[1].Write {
		t.Fatal("write flag lost")
	}
}
