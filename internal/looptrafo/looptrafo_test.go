package looptrafo

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/spec"
)

// chainSpec builds a loop with an n-deep accumulation chain on "acc" plus
// a producer and a consumer around it.
func chainSpec(t testing.TB, n int) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("chain")
	b.Group("in", 1024, 8).Group("acc", 256, 20).Group("out", 1024, 8)
	b.Loop("body", 1000)
	p := b.Read("in", 1)
	prev := b.Read("acc", 1, p)
	for i := 1; i < n; i++ {
		prev = b.Read("acc", 1, prev)
	}
	b.Write("out", 1, prev)
	return b.MustBuild()
}

func TestChainTreeifyShortensCP(t *testing.T) {
	s := chainSpec(t, 8)
	before := dfg.CriticalPath(&s.Loops[0]) // 1 + 8 + 1 = 10
	if before != 10 {
		t.Fatalf("setup: CP = %d, want 10", before)
	}
	out, err := ChainTreeify(s, "body", "acc")
	if err != nil {
		t.Fatal(err)
	}
	after := dfg.CriticalPath(&out.Loops[0])
	// Heap of 8 nodes has depth 4; plus producer and consumer = 6.
	if after != 6 {
		t.Fatalf("CP after treeify = %d, want 6", after)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Access counts unchanged.
	if out.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("treeify changed access counts")
	}
	// Consumer still depends on the reduction result (the tree root).
	consumer := out.Loops[0].Accesses[len(out.Loops[0].Accesses)-1]
	if !consumer.Write || len(consumer.Deps) == 0 {
		t.Fatalf("consumer lost its dependences: %+v", consumer)
	}
	// Input spec untouched.
	if dfg.CriticalPath(&s.Loops[0]) != before {
		t.Fatal("ChainTreeify mutated its input")
	}
}

func TestChainTreeifyPreservesExternalDeps(t *testing.T) {
	s := chainSpec(t, 5)
	out, err := ChainTreeify(s, "body", "acc")
	if err != nil {
		t.Fatal(err)
	}
	l := out.Loops[0]
	// Every acc access must (transitively) depend on the producer read.
	producerID := 0
	for _, a := range l.Accesses {
		if a.Group != "acc" {
			continue
		}
		if !dependsTransitively(&l, a.ID, producerID) {
			t.Fatalf("acc access %d lost the producer dependence", a.ID)
		}
	}
}

func dependsTransitively(l *spec.Loop, from, to int) bool {
	seen := make(map[int]bool)
	var walk func(id int) bool
	walk = func(id int) bool {
		if id == to {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, d := range l.Accesses[id].Deps {
			if walk(d) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestChainTreeifyErrors(t *testing.T) {
	s := chainSpec(t, 5)
	if _, err := ChainTreeify(s, "ghost", "acc"); err == nil {
		t.Error("unknown loop accepted")
	}
	if _, err := ChainTreeify(s, "body", "in"); err == nil {
		t.Error("chain of length 1 accepted")
	}
	short := chainSpec(t, 2)
	if _, err := ChainTreeify(short, "body", "acc"); err == nil {
		t.Error("chain of length 2 accepted")
	}
}

func TestSplitLoop(t *testing.T) {
	s := chainSpec(t, 4)
	// First half: producer + first two acc reads (IDs 0,1,2).
	out, err := SplitLoop(s, "body", []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.Loops) != 2 {
		t.Fatalf("%d loops after split, want 2", len(out.Loops))
	}
	if out.Loops[0].Name != "body.a" || out.Loops[1].Name != "body.b" {
		t.Fatalf("loop names %q, %q", out.Loops[0].Name, out.Loops[1].Name)
	}
	if len(out.Loops[0].Accesses) != 3 || len(out.Loops[1].Accesses) != 3 {
		t.Fatalf("split sizes %d/%d, want 3/3",
			len(out.Loops[0].Accesses), len(out.Loops[1].Accesses))
	}
	if out.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("split changed access counts")
	}
	// Splitting shortens the per-body CP (its purpose for distribution
	// granularity).
	if cp := dfg.CriticalPath(&out.Loops[0]); cp >= dfg.CriticalPath(&s.Loops[0]) {
		t.Fatalf("first half CP %d not below original", cp)
	}
}

func TestSplitLoopRejectsNonClosedCut(t *testing.T) {
	s := chainSpec(t, 4)
	// ID 2 depends on 1; putting 2 without 1 in the first half is invalid.
	if _, err := SplitLoop(s, "body", []int{0, 2}); err == nil {
		t.Fatal("non-dependence-closed cut accepted")
	}
	if _, err := SplitLoop(s, "body", nil); err == nil {
		t.Fatal("empty cut accepted")
	}
	all := []int{0, 1, 2, 3, 4, 5}
	if _, err := SplitLoop(s, "body", all); err == nil {
		t.Fatal("total cut accepted")
	}
	if _, err := SplitLoop(s, "body", []int{99}); err == nil {
		t.Fatal("out-of-range ID accepted")
	}
}

func TestFuseLoops(t *testing.T) {
	b := spec.NewBuilder("two")
	b.Group("a", 64, 8).Group("b", 64, 8)
	b.Loop("l1", 500)
	r := b.Read("a", 1)
	b.Write("a", 1, r)
	b.Loop("l2", 500)
	r2 := b.Read("b", 1)
	b.Write("b", 1, r2)
	s := b.MustBuild()

	out, err := FuseLoops(s, "l1", "l2", "fused")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.Loops) != 1 || out.Loops[0].Name != "fused" {
		t.Fatalf("loops after fusion: %+v", out.Loops)
	}
	if len(out.Loops[0].Accesses) != 4 {
		t.Fatalf("%d accesses after fusion, want 4", len(out.Loops[0].Accesses))
	}
	if out.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("fusion changed access counts")
	}
	// The fused CP is the max of the parts, not the sum: fusion enables
	// overlap.
	if cp := dfg.CriticalPath(&out.Loops[0]); cp != 2 {
		t.Fatalf("fused CP = %d, want 2", cp)
	}
}

func TestFuseLoopsErrors(t *testing.T) {
	b := spec.NewBuilder("two")
	b.Group("a", 64, 8)
	b.Loop("l1", 500)
	b.Read("a", 1)
	b.Loop("l2", 100) // different iteration count
	b.Read("a", 1)
	s := b.MustBuild()
	if _, err := FuseLoops(s, "l1", "l2", "f"); err == nil {
		t.Error("iteration mismatch accepted")
	}
	if _, err := FuseLoops(s, "l1", "l1", "f"); err == nil {
		t.Error("self fusion accepted")
	}
	if _, err := FuseLoops(s, "ghost", "l2", "f"); err == nil {
		t.Error("unknown loop accepted")
	}
}

func TestReduceMACPReachesTarget(t *testing.T) {
	s := chainSpec(t, 16) // CP 18, MACP 18000
	target := uint64(9000)
	out, log, err := ReduceMACP(s, target)
	if err != nil {
		t.Fatalf("err %v (log %v)", err, log)
	}
	if got := dfg.MACP(out); got > target {
		t.Fatalf("MACP %d above target %d", got, target)
	}
	if len(log) == 0 {
		t.Fatal("no transformations logged")
	}
	if !strings.Contains(log[0], "treeify") {
		t.Fatalf("unexpected log entry %q", log[0])
	}
}

func TestReduceMACPImpossible(t *testing.T) {
	s := chainSpec(t, 4)
	// Target below what any rebalancing can reach.
	if _, _, err := ReduceMACP(s, 1000); err == nil {
		t.Fatal("impossible target reported success")
	}
}

func TestReduceMACPNoopWhenFeasible(t *testing.T) {
	s := chainSpec(t, 4)
	out, log, err := ReduceMACP(s, dfg.MACP(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("transformations applied unnecessarily: %v", log)
	}
	if out.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("noop reduction changed the spec")
	}
}

// Property: treeify always preserves validity, access totals, and yields
// CP <= original, for random chain lengths.
func TestQuickTreeifyInvariants(t *testing.T) {
	f := func(nSeed uint8) bool {
		n := int(nSeed)%30 + 3
		s := chainSpec(t, n)
		before := dfg.CriticalPath(&s.Loops[0])
		out, err := ChainTreeify(s, "body", "acc")
		if err != nil {
			return false
		}
		after := dfg.CriticalPath(&out.Loops[0])
		return out.Validate() == nil &&
			out.TotalAccesses() == s.TotalAccesses() &&
			after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
