// Package looptrafo implements the global data-flow and loop
// transformations of the methodology's critical-path reduction step (§4.2).
// The paper applies them when the memory access critical path (MACP) is too
// long for the real-time constraint ("In this case, the loop
// transformations are essential") and cites the strategies of De Greef et
// al. and the DTSE book's chapter 8; BTPC itself did not need them, so the
// paper treats them as a preceding, separately-published step. This package
// provides the three workhorses on the pruned-specification level:
//
//   - ChainTreeify: rebalance a sequential chain of accesses (an
//     accumulation) into a logarithmic-depth tree — the classic
//     associativity-based data-flow transformation that shortens the MACP.
//   - SplitLoop: split one loop body into two sequential bodies at a
//     dependence frontier, giving the storage-cycle-budget distributor
//     finer allocation granularity.
//   - FuseLoops: fuse two adjacent loops with equal iteration counts,
//     letting the balancer overlap their accesses in one body.
//
// All transformations return modified clones and preserve per-frame access
// counts exactly; only the dependence structure (and hence the critical
// path) changes.
package looptrafo

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/spec"
)

// findLoop returns the index of the named loop.
func findLoop(s *spec.Spec, name string) (int, error) {
	for i := range s.Loops {
		if s.Loops[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("looptrafo: unknown loop %q", name)
}

// ChainTreeify rebalances the longest dependence chain of same-group
// accesses to group inside the named loop into a binary reduction tree.
// The caller asserts the chained operation is associative (an accumulation,
// a max-reduction, …) — the designer's judgement, as in the paper. The
// access set is unchanged; only dependence edges move.
func ChainTreeify(s *spec.Spec, loopName, group string) (*spec.Spec, error) {
	li, err := findLoop(s, loopName)
	if err != nil {
		return nil, err
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s+treeify(%s,%s)", s.Name, loopName, group)
	l := &out.Loops[li]

	chain := longestChain(l, group)
	if len(chain) < 3 {
		return nil, fmt.Errorf("looptrafo: no chain of %q accesses longer than 2 in loop %q",
			group, loopName)
	}
	// External dependences: whatever the chain head depended on becomes the
	// dependence set of every tree node; whatever depended on any chain
	// member now depends on the tree root (the completed reduction).
	inChain := make(map[int]bool, len(chain))
	for _, id := range chain {
		inChain[id] = true
	}
	headDeps := filterOut(l.Accesses[chain[0]].Deps, inChain)

	// Heap-shaped balanced reduction: chain member k combines members
	// 2k+1 and 2k+2, so member 0 is the root and the depth drops from n
	// to ⌈log₂(n+1)⌉.
	for k, id := range chain {
		deps := append([]int(nil), headDeps...)
		if 2*k+1 < len(chain) {
			deps = append(deps, chain[2*k+1])
		}
		if 2*k+2 < len(chain) {
			deps = append(deps, chain[2*k+2])
		}
		sort.Ints(deps)
		l.Accesses[id].Deps = dedupe(deps)
	}
	root := chain[0]
	for ai := range l.Accesses {
		if inChain[ai] {
			continue
		}
		changed := false
		deps := l.Accesses[ai].Deps
		for di, d := range deps {
			if inChain[d] {
				deps[di] = root
				changed = true
			}
		}
		if changed {
			sort.Ints(deps)
			l.Accesses[ai].Deps = dedupe(deps)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("looptrafo: treeify produced invalid spec: %w", err)
	}
	return out, nil
}

// longestChain returns the IDs (in order) of the longest path consisting
// solely of accesses to group linked by direct dependences.
func longestChain(l *spec.Loop, group string) []int {
	best := []int{}
	memo := make(map[int][]int)
	var chainFrom func(id int) []int
	chainFrom = func(id int) []int {
		if c, ok := memo[id]; ok {
			return c
		}
		var bestTail []int
		for _, a := range l.Accesses {
			if a.Group != group {
				continue
			}
			for _, d := range a.Deps {
				if d == id {
					if t := chainFrom(a.ID); len(t) > len(bestTail) {
						bestTail = t
					}
				}
			}
		}
		c := append([]int{id}, bestTail...)
		memo[id] = c
		return c
	}
	for _, a := range l.Accesses {
		if a.Group != group {
			continue
		}
		if c := chainFrom(a.ID); len(c) > len(best) {
			best = c
		}
	}
	return best
}

func filterOut(deps []int, drop map[int]bool) []int {
	var out []int
	for _, d := range deps {
		if !drop[d] {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// SplitLoop splits the named loop into two sequential loops: the accesses
// whose IDs are in firstHalf (which must be dependence-closed: no member
// may depend on a non-member) stay in "<name>.a", the rest move to
// "<name>.b" with cross dependences dropped (the bodies execute in
// sequence, so the ordering is preserved by construction).
func SplitLoop(s *spec.Spec, loopName string, firstHalf []int) (*spec.Spec, error) {
	li, err := findLoop(s, loopName)
	if err != nil {
		return nil, err
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s+split(%s)", s.Name, loopName)
	l := out.Loops[li]

	inFirst := make(map[int]bool, len(firstHalf))
	for _, id := range firstHalf {
		if id < 0 || id >= len(l.Accesses) {
			return nil, fmt.Errorf("looptrafo: split ID %d out of range", id)
		}
		inFirst[id] = true
	}
	if len(inFirst) == 0 || len(inFirst) == len(l.Accesses) {
		return nil, fmt.Errorf("looptrafo: split of %q must be proper (got %d of %d accesses)",
			loopName, len(inFirst), len(l.Accesses))
	}
	for _, a := range l.Accesses {
		if !inFirst[a.ID] {
			continue
		}
		for _, d := range a.Deps {
			if !inFirst[d] {
				return nil, fmt.Errorf(
					"looptrafo: access %d in the first half depends on %d in the second", a.ID, d)
			}
		}
	}
	mk := func(keep func(id int) bool, suffix string) spec.Loop {
		nl := spec.Loop{Name: l.Name + suffix, Iterations: l.Iterations}
		remap := make(map[int]int)
		for _, a := range l.Accesses {
			if !keep(a.ID) {
				continue
			}
			na := a
			na.Deps = nil
			for _, d := range a.Deps {
				if keep(d) {
					na.Deps = append(na.Deps, d)
				}
			}
			remap[a.ID] = len(nl.Accesses)
			na.ID = len(nl.Accesses)
			nl.Accesses = append(nl.Accesses, na)
		}
		for i := range nl.Accesses {
			for di, d := range nl.Accesses[i].Deps {
				nl.Accesses[i].Deps[di] = remap[d]
			}
			sort.Ints(nl.Accesses[i].Deps)
		}
		return nl
	}
	first := mk(func(id int) bool { return inFirst[id] }, ".a")
	second := mk(func(id int) bool { return !inFirst[id] }, ".b")

	out.Loops = append(out.Loops[:li], append([]spec.Loop{first, second}, out.Loops[li+1:]...)...)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("looptrafo: split produced invalid spec: %w", err)
	}
	return out, nil
}

// FuseLoops fuses two loops with identical iteration counts into one body
// named fused. Accesses of b are appended after a's with their dependence
// IDs offset; an artificial ordering edge is NOT added — the balancer may
// overlap the two phases, which is the point of fusion.
func FuseLoops(s *spec.Spec, aName, bName, fused string) (*spec.Spec, error) {
	ai, err := findLoop(s, aName)
	if err != nil {
		return nil, err
	}
	bi, err := findLoop(s, bName)
	if err != nil {
		return nil, err
	}
	if ai == bi {
		return nil, fmt.Errorf("looptrafo: cannot fuse %q with itself", aName)
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s+fuse(%s,%s)", s.Name, aName, bName)
	la, lb := out.Loops[ai], out.Loops[bi]
	if la.Iterations != lb.Iterations {
		return nil, fmt.Errorf("looptrafo: iteration mismatch %d vs %d", la.Iterations, lb.Iterations)
	}
	nl := spec.Loop{Name: fused, Iterations: la.Iterations}
	nl.Accesses = append(nl.Accesses, la.Accesses...)
	off := len(la.Accesses)
	for _, a := range lb.Accesses {
		na := a
		na.ID += off
		na.Deps = append([]int(nil), a.Deps...)
		for i := range na.Deps {
			na.Deps[i] += off
		}
		nl.Accesses = append(nl.Accesses, na)
	}
	// Replace a by the fused loop, delete b.
	out.Loops[ai] = nl
	out.Loops = append(out.Loops[:bi], out.Loops[bi+1:]...)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("looptrafo: fusion produced invalid spec: %w", err)
	}
	return out, nil
}

// ReduceMACP greedily applies ChainTreeify to the loops dominating the MACP
// until the unit critical path fits the target or no chain remains. A
// transformation is accepted whenever it shortens its group's chain — the
// loop's critical path may only drop after *every* parallel branch has been
// rebalanced, so chain progress (not CP progress) is the acceptance test.
// It returns the transformed spec and a log of the transformations applied.
func ReduceMACP(s *spec.Spec, target uint64) (*spec.Spec, []string, error) {
	cur := s.Clone()
	var log []string
	tried := make(map[string]bool) // loop|group pairs already rebalanced
	for dfg.MACP(cur) > target {
		// Loops ordered by decreasing CP × iterations contribution.
		order := make([]int, len(cur.Loops))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			sa := uint64(dfg.CriticalPath(&cur.Loops[order[a]])) * cur.Loops[order[a]].Iterations
			sb := uint64(dfg.CriticalPath(&cur.Loops[order[b]])) * cur.Loops[order[b]].Iterations
			return sa > sb
		})
		applied := false
		for _, li := range order {
			l := &cur.Loops[li]
			seen := make(map[string]bool)
			for _, a := range l.Accesses {
				g := a.Group
				if seen[g] {
					continue
				}
				seen[g] = true
				key := l.Name + "|" + g
				if tried[key] {
					continue
				}
				before := len(longestChain(l, g))
				if before < 3 {
					continue
				}
				next, err := ChainTreeify(cur, l.Name, g)
				tried[key] = true
				if err != nil {
					continue
				}
				after := len(longestChain(&next.Loops[li], g))
				if after >= before {
					continue
				}
				log = append(log, fmt.Sprintf("treeify %s in %s: chain %d -> %d (CP %d -> %d)",
					g, l.Name, before, after,
					dfg.CriticalPath(l), dfg.CriticalPath(&next.Loops[li])))
				cur = next
				applied = true
				break
			}
			if applied {
				break
			}
		}
		if !applied {
			break // nothing left to rebalance
		}
	}
	if dfg.MACP(cur) > target {
		return cur, log, fmt.Errorf("looptrafo: MACP %d still above target %d after %d transformations",
			dfg.MACP(cur), target, len(log))
	}
	return cur, log, nil
}
