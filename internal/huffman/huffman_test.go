package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

// encodeAll encodes syms with a fresh coder and returns the bit stream.
func encodeAll(t *testing.T, n int, syms []int) []byte {
	t.Helper()
	c := New(n)
	w := bitio.NewWriter()
	for _, s := range syms {
		c.Encode(s, w)
	}
	return w.Bytes()
}

// decodeAll decodes len(want) symbols with a fresh coder.
func decodeAll(t *testing.T, n int, buf []byte, count int) []int {
	t.Helper()
	c := New(n)
	r := bitio.NewReader(buf)
	out := make([]int, count)
	for i := range out {
		s, err := c.Decode(r)
		if err != nil {
			t.Fatalf("decode symbol %d: %v", i, err)
		}
		out[i] = s
	}
	return out
}

func TestRoundTripSmall(t *testing.T) {
	syms := []int{3, 3, 3, 1, 0, 3, 2, 2, 1, 3, 0, 0, 0, 0, 3}
	buf := encodeAll(t, 4, syms)
	got := decodeAll(t, 4, buf, len(syms))
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}
}

func TestRoundTripSingleSymbolAlphabet(t *testing.T) {
	syms := []int{0, 0, 0, 0, 0}
	buf := encodeAll(t, 1, syms)
	got := decodeAll(t, 1, buf, len(syms))
	for i := range syms {
		if got[i] != 0 {
			t.Fatalf("symbol %d: got %d want 0", i, got[i])
		}
	}
}

func TestRoundTripAllSymbolsOnce(t *testing.T) {
	const n = 64
	syms := make([]int, n)
	for i := range syms {
		syms[i] = i
	}
	buf := encodeAll(t, n, syms)
	got := decodeAll(t, n, buf, len(syms))
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}
}

func TestInvariantsAfterEveryUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New(17)
	w := bitio.NewWriter()
	for i := 0; i < 5000; i++ {
		// Zipf-ish skew: low symbols much more frequent.
		s := rng.Intn(17)
		if rng.Intn(3) > 0 {
			s = rng.Intn(3)
		}
		c.Encode(s, w)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("after %d symbols: %v", i+1, err)
		}
	}
}

func TestDecoderInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]int, 2000)
	for i := range syms {
		syms[i] = rng.Intn(9)
	}
	buf := encodeAll(t, 9, syms)
	c := New(9)
	r := bitio.NewReader(buf)
	for i := range syms {
		s, err := c.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if s != syms[i] {
			t.Fatalf("decode %d: got %d want %d", i, s, syms[i])
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("decoder invariants after %d: %v", i+1, err)
		}
	}
}

func TestCompressionBeatsFixedWidthOnSkewedData(t *testing.T) {
	// 90% symbol 0 out of a 256-symbol alphabet: adaptive Huffman must get
	// well under the 8 bits/symbol of a fixed code.
	rng := rand.New(rand.NewSource(3))
	const count = 20000
	syms := make([]int, count)
	for i := range syms {
		if rng.Float64() < 0.9 {
			syms[i] = 0
		} else {
			syms[i] = rng.Intn(256)
		}
	}
	buf := encodeAll(t, 256, syms)
	bitsPerSym := float64(len(buf)*8) / count
	if bitsPerSym > 4.0 {
		t.Fatalf("bits/symbol = %.2f, want <= 4.0 on 90%%-skewed data", bitsPerSym)
	}
}

func TestCodeLenShrinksForFrequentSymbol(t *testing.T) {
	c := New(32)
	w := bitio.NewWriter()
	for i := 0; i < 32; i++ {
		c.Encode(i, w) // all symbols once
	}
	before := c.CodeLen(7)
	for i := 0; i < 200; i++ {
		c.Encode(7, w)
	}
	after := c.CodeLen(7)
	if after >= before {
		t.Fatalf("CodeLen(7) went %d -> %d, want a decrease", before, after)
	}
	if after != 1 {
		t.Fatalf("dominant symbol code length = %d, want 1", after)
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	buf := encodeAll(t, 16, []int{5, 5, 9, 3})
	c := New(16)
	// Feed only the first byte: at some point decoding must fail cleanly.
	r := bitio.NewReader(buf[:1])
	for i := 0; i < 10; i++ {
		if _, err := c.Decode(r); err != nil {
			if err != ErrCorrupt {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			return
		}
	}
	t.Fatal("decoding a truncated stream never failed")
}

func TestDecodeEmptyStream(t *testing.T) {
	c := New(8)
	if _, err := c.Decode(bitio.NewReader(nil)); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestEncodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range symbol")
		}
	}()
	New(4).Encode(4, bitio.NewWriter())
}

func TestNewZeroAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty alphabet")
		}
	}()
	New(0)
}

func TestReset(t *testing.T) {
	c := New(8)
	w := bitio.NewWriter()
	for i := 0; i < 8; i++ {
		c.Encode(i, w)
	}
	c.Reset()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after Reset: %v", err)
	}
	// A reset coder must exactly mirror a fresh one.
	w2 := bitio.NewWriter()
	c.Encode(3, w2)
	fresh := New(8)
	w3 := bitio.NewWriter()
	fresh.Encode(3, w3)
	a, b := w2.Bytes(), w3.Bytes()
	if len(a) != len(b) || (len(a) > 0 && a[0] != b[0]) {
		t.Fatalf("reset coder output %x differs from fresh coder %x", a, b)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{256, 8}, {257, 9}, {512, 9}, {513, 10},
	}
	for _, tc := range cases {
		if got := int(bitsFor(tc.n)); got != tc.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// Property: any symbol sequence over any alphabet round-trips, and both
// sides keep their invariants.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, alphaSeed uint8) bool {
		n := int(alphaSeed)%300 + 1
		syms := make([]int, len(raw))
		for i, b := range raw {
			syms[i] = int(b) % n
		}
		enc := New(n)
		w := bitio.NewWriter()
		for _, s := range syms {
			enc.Encode(s, w)
		}
		if enc.CheckInvariants() != nil {
			return false
		}
		dec := New(n)
		r := bitio.NewReader(w.Bytes())
		for _, want := range syms {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return dec.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type countingMeter struct {
	treeR, treeW, wR, wW int
}

func (m *countingMeter) TreeRead(n int)    { m.treeR += n }
func (m *countingMeter) TreeWrite(n int)   { m.treeW += n }
func (m *countingMeter) WeightRead(n int)  { m.wR += n }
func (m *countingMeter) WeightWrite(n int) { m.wW += n }

func TestMeterSeesAccesses(t *testing.T) {
	c := New(16)
	m := &countingMeter{}
	c.Instrument(m)
	w := bitio.NewWriter()
	for i := 0; i < 100; i++ {
		c.Encode(i%16, w)
	}
	if m.treeR == 0 || m.treeW == 0 || m.wR == 0 || m.wW == 0 {
		t.Fatalf("meter missed accesses: %+v", *m)
	}
	// Every symbol triggers at least one weight increment on the walk.
	if m.wW < 100 {
		t.Fatalf("weight writes = %d, want >= 100", m.wW)
	}
	// Decoder side must also meter.
	d := New(16)
	dm := &countingMeter{}
	d.Instrument(dm)
	r := bitio.NewReader(w.Bytes())
	for i := 0; i < 100; i++ {
		if _, err := d.Decode(r); err != nil {
			t.Fatal(err)
		}
	}
	if dm.treeR == 0 || dm.wW < 100 {
		t.Fatalf("decoder meter missed accesses: %+v", *dm)
	}
}

func TestMeterDoesNotChangeBits(t *testing.T) {
	plain := New(8)
	metered := New(8)
	metered.Instrument(&countingMeter{})
	w1, w2 := bitio.NewWriter(), bitio.NewWriter()
	for i := 0; i < 200; i++ {
		plain.Encode(i%8, w1)
		metered.Encode(i%8, w2)
	}
	a, b := w1.Bytes(), w2.Bytes()
	if len(a) != len(b) {
		t.Fatalf("metered output length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metered output differs at byte %d", i)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	syms := make([]int, 4096)
	for i := range syms {
		syms[i] = rng.Intn(64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(64)
		w := bitio.NewWriter()
		for _, s := range syms {
			c.Encode(s, w)
		}
	}
}
