package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// Static is a canonical (two-pass) Huffman code: the baseline the adaptive
// coder is measured against. A static code needs the symbol statistics up
// front and must transmit its code lengths; the adaptive coder needs
// neither, which is why Robinson's BTPC uses it.
type Static struct {
	n       int
	lengths []uint8  // code length per symbol (0 = absent)
	codes   []uint32 // canonical code bits per symbol
	// decode table: (length, firstCode, firstIndex) per length
	sorted []int // symbols ordered by (length, symbol)
	first  [maxCodeLen + 2]uint32
	offset [maxCodeLen + 2]int
}

const maxCodeLen = 32

type hNode struct {
	weight      uint64
	symbol      int // -1 internal
	left, right *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].symbol < h[j].symbol // deterministic tie-break
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BuildStatic constructs the optimal prefix code for the given frequency
// table (length = alphabet size). Symbols with zero frequency get no code.
func BuildStatic(freqs []uint64) (*Static, error) {
	n := len(freqs)
	if n < 1 {
		return nil, errors.New("huffman: empty frequency table")
	}
	var h hHeap
	for sym, f := range freqs {
		if f > 0 {
			heap.Push(&h, &hNode{weight: f, symbol: sym})
		}
	}
	if h.Len() == 0 {
		return nil, errors.New("huffman: all frequencies zero")
	}
	lengths := make([]uint8, n)
	if h.Len() == 1 {
		lengths[h[0].symbol] = 1 // degenerate: one symbol, one bit
	} else {
		heap.Init(&h)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*hNode)
			b := heap.Pop(&h).(*hNode)
			heap.Push(&h, &hNode{weight: a.weight + b.weight, symbol: -1, left: a, right: b})
		}
		var walk func(node *hNode, depth uint8)
		walk = func(node *hNode, depth uint8) {
			if node.symbol >= 0 {
				lengths[node.symbol] = depth
				return
			}
			walk(node.left, depth+1)
			walk(node.right, depth+1)
		}
		walk(h[0], 0)
	}
	return NewStaticFromLengths(lengths)
}

// NewStaticFromLengths builds the canonical code from per-symbol lengths —
// the form a decoder reconstructs after reading the transmitted lengths.
func NewStaticFromLengths(lengths []uint8) (*Static, error) {
	n := len(lengths)
	s := &Static{n: n, lengths: append([]uint8(nil), lengths...), codes: make([]uint32, n)}
	// Kraft check.
	kraft := 0.0
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxCodeLen {
			return nil, fmt.Errorf("huffman: symbol %d length %d exceeds %d", sym, l, maxCodeLen)
		}
		kraft += 1 / float64(uint64(1)<<l)
	}
	if kraft > 1+1e-9 {
		return nil, errors.New("huffman: lengths violate the Kraft inequality")
	}
	// Canonical assignment: symbols sorted by (length, symbol).
	for sym, l := range lengths {
		if l > 0 {
			s.sorted = append(s.sorted, sym)
		}
	}
	sort.Slice(s.sorted, func(i, j int) bool {
		a, b := s.sorted[i], s.sorted[j]
		if lengths[a] != lengths[b] {
			return lengths[a] < lengths[b]
		}
		return a < b
	})
	code := uint32(0)
	prevLen := uint8(0)
	for idx, sym := range s.sorted {
		l := lengths[sym]
		code <<= (l - prevLen)
		if prevLen == 0 {
			s.first[l] = code
			s.offset[l] = idx
		} else if l != prevLen {
			s.first[l] = code
			s.offset[l] = idx
		}
		s.codes[sym] = code
		code++
		prevLen = l
	}
	return s, nil
}

// Lengths returns the per-symbol code lengths (what a stream header would
// transmit).
func (s *Static) Lengths() []uint8 { return append([]uint8(nil), s.lengths...) }

// HeaderBits returns the cost of transmitting the code table (a plain
// fixed-width length field per symbol, the simple scheme BTPC-era coders
// used).
func (s *Static) HeaderBits() int { return s.n * 6 }

// Encode appends the code for sym.
func (s *Static) Encode(sym int, w *bitio.Writer) error {
	if sym < 0 || sym >= s.n || s.lengths[sym] == 0 {
		return fmt.Errorf("huffman: symbol %d has no static code", sym)
	}
	w.WriteBits(uint64(s.codes[sym]), uint(s.lengths[sym]))
	return nil
}

// Decode reads one symbol.
func (s *Static) Decode(r *bitio.Reader) (int, error) {
	code := uint32(0)
	for l := uint8(1); l <= maxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, ErrCorrupt
		}
		code = code<<1 | uint32(b)
		// Within length l, valid codes are [first[l], first[l]+count).
		idx := s.offset[l] + int(code-s.first[l])
		if idx >= 0 && idx < len(s.sorted) && s.lengths[s.sorted[idx]] == l && code >= s.first[l] {
			return s.sorted[idx], nil
		}
	}
	return 0, ErrCorrupt
}

// CodeLen returns the code length for sym (0 if absent).
func (s *Static) CodeLen(sym int) int { return int(s.lengths[sym]) }
