// Package huffman implements adaptive Huffman coding (the FGK algorithm:
// Faller–Gallager–Knuth). The BTPC demonstrator application uses six
// independent adaptive coders, one per neighbourhood-pattern class, exactly
// as in Robinson's original coder.
//
// An adaptive coder maintains a Huffman tree that satisfies Gallager's
// sibling property and updates it after every symbol. Encoder and decoder
// apply the identical update procedure, so they stay synchronized without
// transmitting the code table.
package huffman

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
)

// ErrCorrupt is returned by Decode when the bit stream does not resolve to
// a leaf (truncated or damaged input).
var ErrCorrupt = errors.New("huffman: corrupt or truncated stream")

const (
	symInternal = -1 // marker for internal nodes
	symNYT      = -2 // marker for the not-yet-transmitted node
)

type node struct {
	parent int // index into Coder.nodes; -1 for the root
	left   int // -1 for leaves
	right  int
	weight uint64
	symbol int // >= 0: leaf for that symbol; symInternal; symNYT
}

// Coder is an adaptive Huffman coder over the alphabet {0, …, n-1}.
//
// The node slice is kept ordered so that index 0 is the root and weights are
// non-increasing with index (the mirror image of the classic FGK node
// numbering, where the root carries the highest number). The block leader of
// a node is therefore the lowest index holding the same weight.
type Coder struct {
	n      int
	escBit uint // bit width used for raw symbols after an NYT escape
	nodes  []node
	leaf   []int // symbol -> node index, -1 until first seen
	nyt    int   // index of the NYT node
	meter  Meter // optional memory-access meter; nil disables metering
}

// Meter receives the coder's memory-access pattern in terms of its two
// backing arrays: the tree-structure array (parent/child links and symbols)
// and the weight array. The BTPC application implements this with
// trace.Handle pairs so that the Huffman coders' internal arrays show up as
// basic groups in the profiled specification, exactly like the hand-written
// instrumentation the paper describes.
type Meter interface {
	TreeRead(n int)
	TreeWrite(n int)
	WeightRead(n int)
	WeightWrite(n int)
}

// Instrument attaches a Meter (nil detaches). Metering approximates each
// logical tree/weight array touch with one counted access.
func (c *Coder) Instrument(m Meter) { c.meter = m }

// New returns a Coder for the alphabet {0, …, n-1}, n >= 1.
func New(n int) *Coder {
	if n < 1 {
		panic(fmt.Sprintf("huffman: alphabet size %d out of range", n))
	}
	c := &Coder{n: n, escBit: bitsFor(n)}
	c.Reset()
	return c
}

// bitsFor returns the number of bits needed to represent values in [0, n).
func bitsFor(n int) uint {
	b := uint(0)
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// N returns the alphabet size.
func (c *Coder) N() int { return c.n }

// Reset restores the coder to its initial state (only the NYT node).
func (c *Coder) Reset() {
	c.nodes = c.nodes[:0]
	c.nodes = append(c.nodes, node{parent: -1, left: -1, right: -1, symbol: symNYT})
	c.nyt = 0
	if c.leaf == nil {
		c.leaf = make([]int, c.n)
	}
	for i := range c.leaf {
		c.leaf[i] = -1
	}
}

// Encode appends the code for sym to w and updates the model.
func (c *Coder) Encode(sym int, w *bitio.Writer) {
	if sym < 0 || sym >= c.n {
		panic(fmt.Sprintf("huffman: symbol %d outside alphabet [0,%d)", sym, c.n))
	}
	if idx := c.leaf[sym]; idx >= 0 {
		c.emitPath(idx, w)
		c.update(idx)
		return
	}
	// First occurrence: emit the NYT path followed by the raw symbol.
	c.emitPath(c.nyt, w)
	w.WriteBits(uint64(sym), c.escBit)
	c.update(c.spawn(sym))
}

// Decode reads one symbol from r and updates the model.
func (c *Coder) Decode(r *bitio.Reader) (int, error) {
	idx := 0 // root
	steps := 0
	for c.nodes[idx].symbol == symInternal {
		b, err := r.ReadBit()
		if err != nil {
			return 0, ErrCorrupt
		}
		if b == 0 {
			idx = c.nodes[idx].left
		} else {
			idx = c.nodes[idx].right
		}
		steps++
	}
	if c.meter != nil {
		c.meter.TreeRead(steps + 1)
	}
	if c.nodes[idx].symbol == symNYT {
		raw, err := r.ReadBits(c.escBit)
		if err != nil {
			return 0, ErrCorrupt
		}
		sym := int(raw)
		if sym >= c.n {
			return 0, ErrCorrupt
		}
		if c.leaf[sym] >= 0 {
			return 0, ErrCorrupt // escape for an already-known symbol
		}
		c.update(c.spawn(sym))
		return sym, nil
	}
	sym := c.nodes[idx].symbol
	c.update(idx)
	return sym, nil
}

// emitPath writes the root-to-node path of idx (0 = left, 1 = right).
func (c *Coder) emitPath(idx int, w *bitio.Writer) {
	// Collect bits leaf-to-root, then emit reversed.
	var bits [64]int
	n := 0
	for p := c.nodes[idx].parent; p != -1; idx, p = p, c.nodes[p].parent {
		if c.nodes[p].right == idx {
			bits[n] = 1
		}
		n++
		if n == len(bits) {
			// Tree depth is bounded by the node count; an alphabet this
			// large is outside the coder's intended use.
			panic("huffman: code length exceeds 64 bits")
		}
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(bits[i])
	}
	if c.meter != nil {
		c.meter.TreeRead(n + 1)
	}
}

// spawn splits the NYT node into (leaf for sym, new NYT) and returns the
// index of the new leaf. The leaf is appended before the new NYT so that the
// weight ordering (leaf will be incremented first) is preserved.
func (c *Coder) spawn(sym int) int {
	old := c.nyt
	leafIdx := len(c.nodes)
	nytIdx := leafIdx + 1
	c.nodes = append(c.nodes,
		node{parent: old, left: -1, right: -1, symbol: sym},
		node{parent: old, left: -1, right: -1, symbol: symNYT},
	)
	c.nodes[old].symbol = symInternal
	c.nodes[old].left = leafIdx // leaf gets the 0 branch
	c.nodes[old].right = nytIdx
	c.nyt = nytIdx
	c.leaf[sym] = leafIdx
	if c.meter != nil {
		c.meter.TreeWrite(3)
	}
	return leafIdx
}

// blockLeader returns the lowest index whose weight equals idx's weight.
// The ordering invariant makes equal-weight nodes contiguous.
func (c *Coder) blockLeader(idx int) int {
	w := c.nodes[idx].weight
	start := idx
	for idx > 0 && c.nodes[idx-1].weight == w {
		idx--
	}
	if c.meter != nil {
		c.meter.WeightRead(start - idx + 2)
	}
	return idx
}

// update performs the FGK increment walk from idx to the root, swapping each
// node with its block leader (unless the leader is its parent) before
// incrementing its weight.
func (c *Coder) update(idx int) {
	for idx != -1 {
		if leader := c.blockLeader(idx); leader != idx && leader != c.nodes[idx].parent {
			c.swapNodes(idx, leader)
			idx = leader
		}
		c.nodes[idx].weight++
		if c.meter != nil {
			c.meter.WeightWrite(1)
			c.meter.TreeRead(1) // parent-link read for the walk
		}
		idx = c.nodes[idx].parent
	}
}

// swapNodes exchanges the subtrees rooted at slice positions i and j
// (equivalently: swaps their FGK node numbers).
func (c *Coder) swapNodes(i, j int) {
	// Re-point the children of both nodes at their new parent positions.
	for _, ch := range [2]int{c.nodes[i].left, c.nodes[i].right} {
		if ch >= 0 {
			c.nodes[ch].parent = j
		}
	}
	for _, ch := range [2]int{c.nodes[j].left, c.nodes[j].right} {
		if ch >= 0 {
			c.nodes[ch].parent = i
		}
	}
	c.nodes[i], c.nodes[j] = c.nodes[j], c.nodes[i]
	// Each subtree keeps the parent that owns its new position.
	c.nodes[i].parent, c.nodes[j].parent = c.nodes[j].parent, c.nodes[i].parent
	for _, k := range [2]int{i, j} {
		switch s := c.nodes[k].symbol; {
		case s >= 0:
			c.leaf[s] = k
		case s == symNYT:
			c.nyt = k
		}
	}
	if c.meter != nil {
		c.meter.TreeRead(2)
		c.meter.TreeWrite(2)
	}
}

// CheckInvariants verifies the structural invariants of the coder and
// returns a descriptive error on the first violation. It is exported for
// use by tests (including property-based tests in dependent packages).
func (c *Coder) CheckInvariants() error {
	// Weight ordering: non-increasing by index.
	for i := 1; i < len(c.nodes); i++ {
		if c.nodes[i].weight > c.nodes[i-1].weight {
			return fmt.Errorf("huffman: weight ordering violated at %d (%d > %d)",
				i, c.nodes[i].weight, c.nodes[i-1].weight)
		}
	}
	seenNYT := 0
	for i, n := range c.nodes {
		switch {
		case n.symbol == symInternal:
			if n.left < 0 || n.right < 0 {
				return fmt.Errorf("huffman: internal node %d missing child", i)
			}
			if sum := c.nodes[n.left].weight + c.nodes[n.right].weight; sum != n.weight {
				return fmt.Errorf("huffman: node %d weight %d != children sum %d", i, n.weight, sum)
			}
			if c.nodes[n.left].parent != i || c.nodes[n.right].parent != i {
				return fmt.Errorf("huffman: node %d children disown it", i)
			}
		case n.symbol == symNYT:
			seenNYT++
			if i != c.nyt {
				return fmt.Errorf("huffman: NYT index cache %d, found at %d", c.nyt, i)
			}
			if n.weight != 0 {
				return fmt.Errorf("huffman: NYT weight %d != 0", n.weight)
			}
		default:
			if c.leaf[n.symbol] != i {
				return fmt.Errorf("huffman: leaf cache for symbol %d is %d, found at %d",
					n.symbol, c.leaf[n.symbol], i)
			}
			if n.weight == 0 {
				return fmt.Errorf("huffman: leaf %d (symbol %d) has zero weight", i, n.symbol)
			}
		}
		if i == 0 {
			if n.parent != -1 {
				return errors.New("huffman: root has a parent")
			}
		} else if n.parent < 0 || n.parent >= len(c.nodes) {
			return fmt.Errorf("huffman: node %d parent %d out of range", i, n.parent)
		}
	}
	if seenNYT != 1 {
		return fmt.Errorf("huffman: %d NYT nodes, want exactly 1", seenNYT)
	}
	return nil
}

// CodeLen returns the current code length in bits for sym, or the escape
// length if sym has not been seen yet. Useful for rate estimation.
func (c *Coder) CodeLen(sym int) int {
	idx := c.leaf[sym]
	if idx < 0 {
		return c.depth(c.nyt) + int(c.escBit)
	}
	return c.depth(idx)
}

func (c *Coder) depth(idx int) int {
	d := 0
	for p := c.nodes[idx].parent; p != -1; p = c.nodes[p].parent {
		d++
	}
	return d
}
