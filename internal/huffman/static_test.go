package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestStaticRoundTrip(t *testing.T) {
	freqs := []uint64{50, 30, 10, 5, 3, 1, 1}
	s, err := BuildStatic(freqs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var syms []int
	for i := 0; i < 2000; i++ {
		syms = append(syms, rng.Intn(len(freqs)))
	}
	w := bitio.NewWriter()
	for _, sym := range syms {
		if err := s.Encode(sym, w); err != nil {
			t.Fatal(err)
		}
	}
	// Decode with a code rebuilt from the transmitted lengths.
	d, err := NewStaticFromLengths(s.Lengths())
	if err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := d.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestStaticOptimalityWithinEntropyBound(t *testing.T) {
	// Huffman codes are within 1 bit/symbol of the entropy.
	freqs := []uint64{1000, 500, 250, 125, 60, 30, 20, 15}
	s, err := BuildStatic(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, f := range freqs {
		total += f
	}
	entropy, avgLen := 0.0, 0.0
	for sym, f := range freqs {
		p := float64(f) / float64(total)
		entropy += -p * math.Log2(p)
		avgLen += p * float64(s.CodeLen(sym))
	}
	if avgLen < entropy-1e-9 {
		t.Fatalf("average length %.3f below entropy %.3f (impossible)", avgLen, entropy)
	}
	if avgLen > entropy+1 {
		t.Fatalf("average length %.3f exceeds entropy %.3f + 1", avgLen, entropy)
	}
}

func TestStaticDegenerateSingleSymbol(t *testing.T) {
	s, err := BuildStatic([]uint64{0, 42, 0})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter()
	for i := 0; i < 5; i++ {
		if err := s.Encode(1, w); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i := 0; i < 5; i++ {
		sym, err := s.Decode(r)
		if err != nil || sym != 1 {
			t.Fatalf("decode %d: %d, %v", i, sym, err)
		}
	}
	if err := s.Encode(0, w); err == nil {
		t.Fatal("absent symbol encoded")
	}
}

func TestStaticErrors(t *testing.T) {
	if _, err := BuildStatic(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := BuildStatic([]uint64{0, 0}); err == nil {
		t.Error("all-zero table accepted")
	}
	if _, err := NewStaticFromLengths([]uint8{1, 1, 1}); err == nil {
		t.Error("Kraft-violating lengths accepted")
	}
	if _, err := NewStaticFromLengths([]uint8{40}); err == nil {
		t.Error("overlong code accepted")
	}
	s, _ := BuildStatic([]uint64{3, 2, 1})
	if _, err := s.Decode(bitio.NewReader(nil)); err != ErrCorrupt {
		t.Error("empty stream decode should fail")
	}
}

// TestAdaptiveApproachesStatic: the adaptive coder (which needs neither a
// first pass nor a transmitted table) must come close to the two-pass
// static optimum — the property that justifies BTPC's choice.
func TestAdaptiveApproachesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 64
	freqs := make([]uint64, n)
	var syms []int
	for i := 0; i < 30000; i++ {
		s := rng.Intn(4)
		if rng.Intn(4) == 0 {
			s = rng.Intn(n)
		}
		syms = append(syms, s)
		freqs[s]++
	}
	st, err := BuildStatic(freqs)
	if err != nil {
		t.Fatal(err)
	}
	ws := bitio.NewWriter()
	for _, s := range syms {
		if err := st.Encode(s, ws); err != nil {
			t.Fatal(err)
		}
	}
	staticBits := ws.Len() + st.HeaderBits()

	ad := New(n)
	wa := bitio.NewWriter()
	for _, s := range syms {
		ad.Encode(s, wa)
	}
	adaptiveBits := wa.Len()

	ratio := float64(adaptiveBits) / float64(staticBits)
	if ratio > 1.06 {
		t.Fatalf("adaptive %d bits is %.1f%% worse than static %d bits",
			adaptiveBits, 100*(ratio-1), staticBits)
	}
}

// Property: any non-degenerate frequency table yields a decodable code.
func TestQuickStaticRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw)%20 + 2
		freqs := make([]uint64, n)
		var syms []int
		for _, b := range raw {
			s := int(b) % n
			freqs[s]++
			syms = append(syms, s)
		}
		st, err := BuildStatic(freqs)
		if err != nil {
			return false
		}
		w := bitio.NewWriter()
		for _, s := range syms {
			if st.Encode(s, w) != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		for _, want := range syms {
			got, err := st.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
