// Package img provides the grayscale image substrate for the BTPC
// demonstrator: an 8-bit image type, binary PGM (P5) encoding/decoding, and
// deterministic synthetic image generators.
//
// The original paper profiles the coder on real pictures; those are not
// available here, so the generators synthesize images with the structures
// BTPC's predictor classes react to (flat regions, horizontal/vertical
// edges, diagonal ridges, texture) plus noise, driven by a seeded xorshift
// PRNG so every run is reproducible.
package img

import (
	"errors"
	"fmt"
	"strconv"
)

// Gray is an 8-bit grayscale image with row-major pixel storage.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H
}

// New returns a zeroed W×H image.
func New(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). Panics if out of bounds (bounds are the
// caller's responsibility, as with a raw array in the C specification).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y).
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	c := New(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// Equal reports whether two images have identical dimensions and pixels.
func (g *Gray) Equal(o *Gray) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i, p := range g.Pix {
		if p != o.Pix[i] {
			return false
		}
	}
	return true
}

// MSE returns the mean squared error between two images of equal size.
func (g *Gray) MSE(o *Gray) (float64, error) {
	if g.W != o.W || g.H != o.H {
		return 0, fmt.Errorf("img: size mismatch %dx%d vs %dx%d", g.W, g.H, o.W, o.H)
	}
	var sum float64
	for i := range g.Pix {
		d := float64(g.Pix[i]) - float64(o.Pix[i])
		sum += d * d
	}
	return sum / float64(len(g.Pix)), nil
}

// EncodePGM serializes the image as binary PGM (P5, maxval 255).
func (g *Gray) EncodePGM() []byte {
	hdr := fmt.Sprintf("P5\n%d %d\n255\n", g.W, g.H)
	out := make([]byte, 0, len(hdr)+len(g.Pix))
	out = append(out, hdr...)
	return append(out, g.Pix...)
}

// DecodePGM parses a binary PGM (P5) image with maxval <= 255.
func DecodePGM(data []byte) (*Gray, error) {
	pos := 0
	token := func() (string, error) {
		// Skip whitespace and '#' comments.
		for pos < len(data) {
			switch c := data[pos]; {
			case c == '#':
				for pos < len(data) && data[pos] != '\n' {
					pos++
				}
			case c == ' ' || c == '\t' || c == '\n' || c == '\r':
				pos++
			default:
				start := pos
				for pos < len(data) && !isSpace(data[pos]) {
					pos++
				}
				return string(data[start:pos]), nil
			}
		}
		return "", errors.New("img: truncated PGM header")
	}
	magic, err := token()
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("img: not a binary PGM (magic %q)", magic)
	}
	var dims [3]int
	for i := range dims {
		tok, err := token()
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("img: bad PGM header field %q", tok)
		}
		dims[i] = v
	}
	w, h, maxval := dims[0], dims[1], dims[2]
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("img: invalid PGM dimensions %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("img: unsupported PGM maxval %d", maxval)
	}
	pos++ // single whitespace after maxval
	if len(data)-pos < w*h {
		return nil, errors.New("img: truncated PGM pixel data")
	}
	g := New(w, h)
	copy(g.Pix, data[pos:pos+w*h])
	return g, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// RNG is a 64-bit xorshift* PRNG. It is deliberately tiny and deterministic
// so synthetic workloads are reproducible across runs and platforms.
type RNG struct{ s uint64 }

// NewRNG seeds an RNG; a zero seed is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("img: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Synthetic builds a deterministic test image combining the structures the
// BTPC predictor distinguishes: a smooth background gradient, rectangular
// flat patches, hard horizontal/vertical edges, a diagonal ridge, a textured
// band and mild sensor-like noise.
func Synthetic(w, h int, seed uint64) *Gray {
	g := New(w, h)
	rng := NewRNG(seed)
	// Smooth diagonal gradient background.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8((x*160/w+y*96/h)&0xFF))
		}
	}
	// Flat rectangular patches (objects).
	for i := 0; i < 6; i++ {
		px, py := rng.Intn(w), rng.Intn(h)
		pw, ph := w/8+rng.Intn(w/4+1), h/8+rng.Intn(h/4+1)
		val := uint8(rng.Intn(256))
		for y := py; y < py+ph && y < h; y++ {
			for x := px; x < px+pw && x < w; x++ {
				g.Set(x, y, val)
			}
		}
	}
	// A hard vertical and horizontal edge.
	for y := 0; y < h; y++ {
		for x := w / 3; x < w/3+2 && x < w; x++ {
			g.Set(x, y, 255)
		}
	}
	for x := 0; x < w; x++ {
		for y := 2 * h / 3; y < 2*h/3+2 && y < h; y++ {
			g.Set(x, y, 0)
		}
	}
	// Diagonal ridge.
	for d := 0; d < w && d < h; d++ {
		g.Set(d, d, 230)
		if d+1 < w {
			g.Set(d+1, d, 210)
		}
	}
	// Textured band: high-frequency checkering in the lower quarter.
	for y := 3 * h / 4; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x^y)&1 == 1 {
				v := int(g.At(x, y)) + 40
				if v > 255 {
					v = 255
				}
				g.Set(x, y, uint8(v))
			}
		}
	}
	// Mild noise on 10% of the pixels.
	for i := 0; i < w*h/10; i++ {
		x, y := rng.Intn(w), rng.Intn(h)
		v := int(g.At(x, y)) + rng.Intn(17) - 8
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		g.Set(x, y, uint8(v))
	}
	return g
}

// Gradient returns a pure diagonal gradient (highly predictable content).
func Gradient(w, h int) *Gray {
	g := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8((x+y)*255/(w+h-2+1)))
		}
	}
	return g
}

// Noise returns uniform random pixels (incompressible content).
func Noise(w, h int, seed uint64) *Gray {
	g := New(w, h)
	rng := NewRNG(seed)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

// Flat returns a constant-valued image.
func Flat(w, h int, v uint8) *Gray {
	g := New(w, h)
	for i := range g.Pix {
		g.Pix[i] = v
	}
	return g
}
