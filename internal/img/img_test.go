package img

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	g := New(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("New(4,3) = %dx%d len %d", g.W, g.H, len(g.Pix))
	}
	g.Set(2, 1, 77)
	if g.At(2, 1) != 77 {
		t.Fatalf("At(2,1) = %d, want 77", g.At(2, 1))
	}
	if g.Pix[1*4+2] != 77 {
		t.Fatal("Set wrote to the wrong row-major index")
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x0 image")
		}
	}()
	New(0, 5)
}

func TestCloneIsDeep(t *testing.T) {
	g := Synthetic(16, 16, 1)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone differs from original")
	}
	c.Set(0, 0, g.At(0, 0)+1)
	if g.Equal(c) {
		t.Fatal("mutating clone affected original")
	}
}

func TestEqualSizeMismatch(t *testing.T) {
	if New(2, 2).Equal(New(2, 3)) {
		t.Fatal("images of different size reported equal")
	}
}

func TestMSE(t *testing.T) {
	a := Flat(4, 4, 10)
	b := Flat(4, 4, 13)
	mse, err := a.MSE(b)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 9 {
		t.Fatalf("MSE = %v, want 9", mse)
	}
	if _, err := a.MSE(New(3, 4)); err == nil {
		t.Fatal("size-mismatched MSE did not error")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := Synthetic(37, 23, 42) // odd sizes on purpose
	got, err := DecodePGM(g.EncodePGM())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Fatal("PGM round trip lost data")
	}
}

func TestDecodePGMWithComments(t *testing.T) {
	data := []byte("P5\n# a comment\n2 2\n# another\n255\n\x01\x02\x03\x04")
	g, err := DecodePGM(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 2 || g.H != 2 || g.At(1, 1) != 4 {
		t.Fatalf("bad decode: %dx%d last=%d", g.W, g.H, g.At(1, 1))
	}
}

func TestDecodePGMErrors(t *testing.T) {
	cases := map[string][]byte{
		"wrong magic":     []byte("P6\n2 2\n255\n\x00\x00\x00\x00"),
		"truncated pix":   []byte("P5\n2 2\n255\n\x00\x00"),
		"bad field":       []byte("P5\nx 2\n255\n"),
		"empty":           nil,
		"zero width":      []byte("P5\n0 2\n255\n"),
		"maxval too big":  []byte("P5\n1 1\n65535\n\x00\x00"),
		"missing header":  []byte("P5\n2"),
		"negative height": []byte("P5\n2 -1\n255\n"),
	}
	for name, data := range cases {
		if _, err := DecodePGM(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero-seeded RNG is stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 64, 99)
	b := Synthetic(64, 64, 99)
	if !a.Equal(b) {
		t.Fatal("Synthetic not deterministic for equal seeds")
	}
	c := Synthetic(64, 64, 100)
	if a.Equal(c) {
		t.Fatal("Synthetic identical for different seeds")
	}
}

func TestSyntheticHasStructure(t *testing.T) {
	g := Synthetic(64, 64, 5)
	// Must contain the hard vertical edge (value 255 column at w/3).
	found := false
	for y := 0; y < g.H; y++ {
		if g.At(g.W/3, y) == 255 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("synthetic image lacks the vertical edge")
	}
	// Histogram should span a reasonable dynamic range.
	var hist [256]int
	for _, p := range g.Pix {
		hist[p]++
	}
	distinct := 0
	for _, c := range hist {
		if c > 0 {
			distinct++
		}
	}
	if distinct < 32 {
		t.Fatalf("only %d distinct gray levels, want >= 32", distinct)
	}
}

func TestGradientMonotone(t *testing.T) {
	g := Gradient(32, 32)
	for y := 0; y < g.H; y++ {
		for x := 1; x < g.W; x++ {
			if g.At(x, y) < g.At(x-1, y) {
				t.Fatalf("gradient not monotone at (%d,%d)", x, y)
			}
		}
	}
}

func TestFlat(t *testing.T) {
	g := Flat(8, 8, 42)
	for _, p := range g.Pix {
		if p != 42 {
			t.Fatalf("flat image has pixel %d", p)
		}
	}
}

func TestNoiseUsesFullRangeIsh(t *testing.T) {
	g := Noise(64, 64, 11)
	var hist [256]int
	for _, p := range g.Pix {
		hist[p]++
	}
	distinct := 0
	for _, c := range hist {
		if c > 0 {
			distinct++
		}
	}
	if distinct < 200 {
		t.Fatalf("noise image has only %d distinct levels", distinct)
	}
}

// Property: PGM round-trip is the identity for arbitrary pixel content.
func TestQuickPGMRoundTrip(t *testing.T) {
	f := func(pix []byte, wSeed uint8) bool {
		w := int(wSeed)%16 + 1
		h := len(pix) / w
		if h == 0 {
			return true
		}
		g := New(w, h)
		copy(g.Pix, pix)
		got, err := DecodePGM(g.EncodePGM())
		return err == nil && g.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePGMHeader(t *testing.T) {
	g := New(5, 7)
	enc := string(g.EncodePGM())
	if !strings.HasPrefix(enc, "P5\n5 7\n255\n") {
		t.Fatalf("unexpected PGM header: %q", enc[:20])
	}
}
