package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestForEachRunsAllItems: every index runs exactly once, at any width.
func TestForEachRunsAllItems(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		p := New(w)
		const n = 100
		ran := make([]atomic.Int64, n)
		p.ForEach(context.Background(), n, func(i int) { ran[i].Add(1) })
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", w, i, got)
			}
		}
	}
}

// TestSingleWorkerIsSequential: a 1-wide pool spawns no goroutines and runs
// items in submission order on the caller.
func TestSingleWorkerIsSequential(t *testing.T) {
	p := New(1)
	var order []int
	p.ForEach(context.Background(), 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("1-wide pool ran out of order: %v", order)
		}
	}
	spawns, inline := p.Stats()
	if spawns != 0 {
		t.Fatalf("1-wide pool spawned %d helpers", spawns)
	}
	if inline != 10 {
		t.Fatalf("inline count = %d, want 10", inline)
	}
}

// TestConcurrencyBounded: at no instant do more than Workers() goroutines
// execute work simultaneously, even with nested ForEach calls. Work happens
// at the leaves (the outer items only fan out and then block in Wait), so
// leaf-level concurrency is the pool's true parallelism.
func TestConcurrencyBounded(t *testing.T) {
	const w = 4
	p := New(w)
	var cur, peak atomic.Int64
	p.ForEach(context.Background(), 32, func(i int) {
		// Nest a second fan-out inside each item.
		p.ForEach(context.Background(), 8, func(j int) {
			c := cur.Add(1)
			defer cur.Add(-1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			runtime.Gosched()
		})
	})
	if pk := peak.Load(); pk > w {
		t.Fatalf("peak concurrency %d exceeds pool width %d", pk, w)
	}
}

// TestNestingDoesNotDeadlock: deep nesting under saturation completes (the
// inline fallback guarantees progress).
func TestNestingDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			total.Add(1)
			return
		}
		p.ForEach(context.Background(), 3, func(int) { rec(depth - 1) })
	}
	rec(5) // 3^5 leaf items through a 2-wide pool
	if got := total.Load(); got != 243 {
		t.Fatalf("ran %d leaf items, want 243", got)
	}
}

// TestCancellationSkipsLaunches: once the context is canceled, item 0 has
// run but no item after the cancellation point is launched.
func TestCancellationSkipsLaunches(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 50
	ran := make([]atomic.Int64, n)
	p.ForEach(ctx, n, func(i int) { ran[i].Add(1) })
	if ran[0].Load() != 1 {
		t.Fatal("item 0 must always run (the sweep's reference point)")
	}
	for i := 1; i < n; i++ {
		if ran[i].Load() != 0 {
			t.Fatalf("item %d launched under a canceled context", i)
		}
	}
}

// TestNilPoolSequential: a nil pool runs inline with the same cancellation
// contract.
func TestNilPoolSequential(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool width = %d, want 1", p.Workers())
	}
	var ran []int
	p.ForEach(context.Background(), 5, func(i int) { ran = append(ran, i) })
	if len(ran) != 5 {
		t.Fatalf("nil pool ran %d items, want 5", len(ran))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran = nil
	p.ForEach(ctx, 5, func(i int) { ran = append(ran, i) })
	if len(ran) != 1 || ran[0] != 0 {
		t.Fatalf("nil pool under canceled ctx ran %v, want [0]", ran)
	}
	if s, in := p.Stats(); s != 0 || in != 0 {
		t.Fatal("nil pool reported stats")
	}
	p.Publish(nil) // must not panic
}

// TestDefaultWidth: New(0) picks GOMAXPROCS.
func TestDefaultWidth(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
}

// TestPublish: counters surface as gauges on the observer.
func TestPublish(t *testing.T) {
	p := New(3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.ForEach(context.Background(), 20, func(int) { runtime.Gosched() }) }()
	wg.Wait()
	o := obs.New()
	p.Publish(o)
	got := o.Counters()
	if got["pool.workers"] != 3 {
		t.Fatalf("pool.workers gauge = %d, want 3", got["pool.workers"])
	}
	spawns, inline := p.Stats()
	if got["pool.spawns"] != spawns || got["pool.inline_runs"] != inline {
		t.Fatalf("published %v, stats (%d, %d)", got, spawns, inline)
	}
	if spawns+inline != 20 {
		t.Fatalf("spawns %d + inline %d != 20 items", spawns, inline)
	}
}
