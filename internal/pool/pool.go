// Package pool provides the session-wide bounded worker pool of the
// exploration engine.
//
// The exploration pipeline parallelizes at several nesting levels at once:
// the hierarchy/budget/allocation sweeps fan out over their candidates, and
// each candidate's branch-and-bound fans out over search subtrees. Spawning
// one goroutine per item at every level multiplies — a budget sweep of 11
// points, each retrying up to 7 allocations, each splitting its search 32
// ways would burst into thousands of goroutines on a machine with 8 cores.
// The pool caps the whole session at a fixed number of workers instead and
// stays safe under nesting by construction: a task that cannot get a worker
// slot runs inline on the goroutine that submitted it, so saturation can
// never deadlock and the caller always makes progress.
//
// The caller counts as one of the workers: a pool of W workers hands out at
// most W-1 helper slots, so -workers=1 means strictly sequential execution
// with zero goroutines spawned. Results are always collected by item index,
// never by completion order, so every use of the pool is deterministic at
// any worker count.
//
// A nil *Pool is valid everywhere and runs everything inline, the same
// idiom as the nil obs.Observer and nil memo.Cache.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool is a bounded worker pool. The zero value is not usable; construct
// with New.
type Pool struct {
	sem     chan struct{} // helper slots: capacity workers-1
	workers int

	spawns atomic.Int64 // items handed to a helper goroutine
	inline atomic.Int64 // items run on the submitting goroutine (saturation or single-item fast path)

	// hist, when set by Observe, records each ForEach item's duration
	// (pool.task). Opt-in so bare library use pays nothing.
	hist *obs.Histogram
}

// New returns a pool of the given total width. Non-positive workers selects
// runtime.GOMAXPROCS(0), the machine's available parallelism.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1), workers: workers}
}

// Workers returns the pool's total width, counting the submitting
// goroutine. A nil pool has width 1 (everything inline).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Stats returns how many items ran on helper goroutines and how many ran
// inline on the submitting goroutine — because the pool was saturated (the
// nesting-safety fallback) or because a ForEach had a single item. Every
// ForEach item lands in exactly one of the two counters.
func (p *Pool) Stats() (spawns, inline int64) {
	if p == nil {
		return 0, 0
	}
	return p.spawns.Load(), p.inline.Load()
}

// ForEach runs f(0), ..., f(n-1), each item either on a pooled helper
// goroutine or inline on the caller when no helper slot is free, and
// returns when all launched items finished. Items must communicate results
// through index-addressed slots; ForEach guarantees nothing about execution
// order.
//
// Cancellation propagates at launch time, preserving the sweep contract of
// the exploration steps: item 0 always runs — it is each sweep's reference
// point — and once ctx is done no further item is launched (already-running
// items are waited for; they degrade internally through the same ctx).
func (p *Pool) ForEach(ctx context.Context, n int, f func(i int)) {
	done := ctx.Done()
	if p != nil && p.hist != nil {
		h, inner := p.hist, f
		f = func(i int) {
			start := time.Now()
			inner(i)
			h.Observe(time.Since(start))
		}
	}
	if n == 1 {
		// Single item: both branches below would run f(0) unconditionally on
		// the caller (item 0 is never gated on ctx), so skip the WaitGroup and
		// slot machinery entirely. Still counted, so Stats covers every item.
		if p != nil {
			p.inline.Add(1)
		}
		f(0)
		return
	}
	if p == nil {
		for i := 0; i < n; i++ {
			if i > 0 && done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i > 0 && done != nil {
			select {
			case <-done:
				wg.Wait()
				return
			default:
			}
		}
		select {
		case p.sem <- struct{}{}:
			p.spawns.Add(1)
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				f(i)
			}(i)
		default:
			// Saturated: run on the submitting goroutine. This is what makes
			// nested ForEach calls deadlock-free — the caller never blocks
			// waiting for a slot another ForEach might be holding.
			p.inline.Add(1)
			f(i)
		}
	}
	wg.Wait()
}

// Observe enables the per-task duration histogram on the observer
// (pool.task): every ForEach item records how long it ran, whether on a
// helper goroutine or inline. Call before the pool is used concurrently
// (NewServer wires it at construction); safe on a nil Pool or Observer.
func (p *Pool) Observe(o *obs.Observer) {
	if p == nil || o == nil {
		return
	}
	p.hist = o.Histogram("pool.task")
}

// Publish snapshots the pool counters into the observer as gauges
// (pool.workers, pool.spawns, pool.inline_runs). Safe on a nil Pool or nil
// Observer; idempotent.
func (p *Pool) Publish(o *obs.Observer) {
	if p == nil || o == nil {
		return
	}
	spawns, inline := p.Stats()
	o.Gauge("pool.workers").Set(int64(p.workers))
	o.Gauge("pool.spawns").Set(spawns)
	o.Gauge("pool.inline_runs").Set(inline)
}
