package assign

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/memlib"
	"repro/internal/pool"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// inProcessDistributor simulates a cluster: it splits the job's prefix
// frontier into `nodes` contiguous ranges and solves each with a fresh
// SolveSubtree — each range rebuilds the problem from the wire-level
// (spec, patterns, job) triple exactly as a remote peer would.
func inProcessDistributor(t *testing.T, tech *memlib.Tech, nodes, workers int) DistributeFunc {
	return func(ctx context.Context, s *spec.Spec, pats []sbd.Pattern, job SubtreeJob) ([]SubtreeResult, bool) {
		n := nodes
		if job.NumPrefixes < n {
			n = job.NumPrefixes
		}
		results := make([]SubtreeResult, n)
		per, rem, at := job.NumPrefixes/n, job.NumPrefixes%n, 0
		for i := 0; i < n; i++ {
			sz := per
			if i < rem {
				sz++
			}
			res, err := SolveSubtree(ctx, s, pats, tech, Params{Workers: pool.New(workers)}, job, at, at+sz)
			if err != nil {
				t.Fatalf("SolveSubtree[%d,%d): %v", at, at+sz, err)
			}
			results[i] = res
			at += sz
		}
		return results, true
	}
}

// TestDistributedMatchesLocal is the determinism-at-any-node-count
// property at the search layer: over random instances, a search whose
// subtree ranges are solved by independent problem rebuilds (as remote
// peers would) returns results deeply equal to the plain local search.
func TestDistributedMatchesLocal(t *testing.T) {
	tech := memlib.Default()
	for seed := int64(0); seed < 10; seed++ {
		s, pats := randomInstance(seed)
		for _, count := range []int{2, 3} {
			ref, refErr := Assign(s, pats, tech, count, Params{})
			for _, nodes := range []int{2, 3} {
				p := Params{
					Distribute:      inProcessDistributor(t, tech, nodes, 2),
					DistributeWidth: nodes,
				}
				got, err := Assign(s, pats, tech, count, p)
				if (refErr == nil) != (err == nil) {
					t.Fatalf("seed %d count %d nodes %d: err %v, local err %v", seed, count, nodes, err, refErr)
				}
				if refErr != nil {
					continue
				}
				if !ref.Optimal || !got.Optimal {
					t.Fatalf("seed %d count %d nodes %d: incomplete search (ref %v, got %v)",
						seed, count, nodes, ref.Optimal, got.Optimal)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("seed %d count %d nodes %d: distributed result diverged\n got: %+v\nwant: %+v",
						seed, count, nodes, got, ref)
				}
			}
		}
	}
}

// TestDistributeDeclineFallsBack: a hook that always declines must leave
// the search identical to having no hook at all.
func TestDistributeDeclineFallsBack(t *testing.T) {
	tech := memlib.Default()
	s, pats := randomInstance(1)
	ref, err := Assign(s, pats, tech, 2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	decline := func(context.Context, *spec.Spec, []sbd.Pattern, SubtreeJob) ([]SubtreeResult, bool) {
		return nil, false
	}
	got, err := Assign(s, pats, tech, 2, Params{Distribute: decline, DistributeWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("declined distribution diverged from local:\n got: %+v\nwant: %+v", got, ref)
	}
}

// recordingShare captures the minimum cost bits published by a search.
type recordingShare struct {
	mu  sync.Mutex
	min uint64
	has bool
}

func (r *recordingShare) Best(string) (uint64, bool) { return 0, false }
func (r *recordingShare) Publish(_ string, bits uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.has || bits < r.min {
		r.min, r.has = bits, true
	}
}

// staticShare answers every Best with a fixed external bound and swallows
// publishes — the adversarial "peer already knows the optimum" case.
type staticShare struct{ bits uint64 }

func (s staticShare) Best(string) (uint64, bool) { return s.bits, true }
func (s staticShare) Publish(string, uint64)     {}

// TestShareExternalOptimalBoundKeepsResults is the co-optimality safety
// property of cross-node incumbent sharing: an external bound equal to the
// true optimal cost (the tightest bound a correct peer can ever publish)
// must not change a completed search's result in any way — external bounds
// prune strictly worse subtrees only.
func TestShareExternalOptimalBoundKeepsResults(t *testing.T) {
	tech := memlib.Default()
	for seed := int64(0); seed < 8; seed++ {
		s, pats := randomInstance(seed)
		for _, count := range []int{2, 3} {
			ref, refErr := Assign(s, pats, tech, count, Params{})
			if refErr != nil || !ref.Optimal {
				continue
			}
			// Capture the search-internal optimal cost via the publishes of a
			// plain run.
			rec := &recordingShare{}
			if _, err := Assign(s, pats, tech, count, Params{Share: rec, ShareKey: "t"}); err != nil {
				t.Fatal(err)
			}
			if !rec.has {
				t.Fatalf("seed %d count %d: search published no incumbent", seed, count)
			}
			for _, workers := range []int{1, 4} {
				p := Params{Share: staticShare{rec.min}, ShareKey: "t", Workers: pool.New(workers)}
				got, err := Assign(s, pats, tech, count, p)
				if err != nil {
					t.Fatalf("seed %d count %d workers %d: %v", seed, count, workers, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("seed %d count %d workers %d: external optimal bound changed the result\n got: %+v\nwant: %+v",
						seed, count, workers, got, ref)
				}
			}
		}
	}
}

// TestSolveSubtreeRejectsFrontierMismatch: a job whose NumPrefixes does not
// match the canonically re-derived frontier must error, not silently solve
// a different split.
func TestSolveSubtreeRejectsFrontierMismatch(t *testing.T) {
	tech := memlib.Default()
	s, pats := randomInstance(0)
	var job SubtreeJob
	probe := func(_ context.Context, _ *spec.Spec, _ []sbd.Pattern, j SubtreeJob) ([]SubtreeResult, bool) {
		job = j
		return nil, false // decline; we only wanted the job description
	}
	if _, err := Assign(s, pats, tech, 2, Params{Distribute: probe, DistributeWidth: 3}); err != nil {
		t.Fatal(err)
	}
	if job.NumPrefixes < 2 {
		t.Skip("instance produced no distributable frontier")
	}
	bad := job
	bad.NumPrefixes++
	if _, err := SolveSubtree(context.Background(), s, pats, tech, Params{}, bad, 0, 1); err == nil {
		t.Fatal("SolveSubtree accepted a mismatched frontier")
	}
	// And the honest job solves.
	res, err := SolveSubtree(context.Background(), s, pats, tech, Params{}, job, 0, job.NumPrefixes)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("full-range subtree solve should complete under the default budget")
	}
}
