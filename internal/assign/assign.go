// Package assign implements the memory allocation and signal-to-memory
// assignment step (§4.6), following the published formulation (Slock,
// Wuytack, Catthoor, de Jong, ISSS 1997).
//
// Allocation fixes the number of on-chip memories; assignment maps every
// basic group to one memory such that the conflict patterns produced by the
// storage-cycle-budget distribution remain satisfiable: a memory must have
// at least as many ports as the maximum number of simultaneous accesses its
// member groups ever make in one storage cycle. The optimizer is an exact
// branch-and-bound with a greedy incumbent (the greedy solution doubles as
// the paper's manual-designer baseline); cost models come from memlib.
//
// Bitwidth waste is modeled exactly as the paper describes: a memory is as
// wide as its widest member group, so narrow groups stored with wide ones
// waste the upper bits in both area and access energy.
package assign

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/inplace"
	"repro/internal/memlib"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// cancelCheckInterval is the amortization stride of the cancellation checks
// in the search hot loops: the context is polled once every this many nodes
// (or partitions), so the uncancelled path pays one integer mask per node
// and the deadline is still honored within a fraction of a millisecond.
const cancelCheckInterval = 1024

// Params configures the assignment.
type Params struct {
	// OnChipMaxWords separates on-chip from off-chip groups. Must match the
	// threshold used for the SCBD step. Default 64Ki.
	OnChipMaxWords int64
	// MaxPorts caps the ports of any single memory. Default 8 (tiny register
	// files legitimately take many ports; the cost model prices them).
	MaxPorts int
	// NodeBudget caps branch-and-bound nodes; on exhaustion the best
	// solution found so far (at worst the greedy incumbent) is returned.
	// Default 2e6.
	NodeBudget int
	// InPlace enables the in-place mapping extension: basic groups with
	// disjoint lifetimes assigned to the same memory share storage, so a
	// memory is sized by its peak live words rather than their sum.
	InPlace bool
	// Obs is the parent telemetry span Assign attaches its span and search
	// counters to; nil disables instrumentation at near-zero cost.
	Obs *obs.Span
	// Progress, when non-nil, receives live search position (nodes expanded,
	// incumbent cost, root lower bound) for the serving layer's introspection
	// endpoints. The search never reads it back, so results are identical
	// with or without it.
	Progress *obs.Progress
	// Workers is the session's bounded worker pool. When it is wider than
	// one worker, the branch-and-bound and the off-chip partition scan split
	// their search trees into independent subproblems solved in parallel
	// with a shared incumbent bound; results are byte-identical at any
	// width. Nil (or a 1-wide pool) runs the sequential search.
	Workers *pool.Pool
	// Seed is an optional warm-start hint: a feasible on-chip assignment of
	// a neighbouring problem, as group name -> memory slot. It is re-priced
	// on *this* problem before use (a feasible solution's cost is always an
	// upper bound on the optimum), so a stale or foreign seed can only fail
	// to engage — it can never change which organization a completed search
	// returns, only tighten the initial incumbent. Seeds that do not cover
	// every on-chip group, use a different memory count, or violate a port
	// constraint here are rejected (counted as assign.seed_rejected).
	Seed map[string]int
	// Share, together with ShareKey, exchanges incumbent costs with
	// concurrent searches of the same keyed problem — hedged duplicates on
	// other cluster nodes, distributed subtree ranges. External bounds
	// prune with strict > only (the shared-bound rule of parallel.go), so
	// the exchange tightens searches without ever changing which
	// organization a completed search returns. Nil disables it.
	Share BoundShare
	// ShareKey namespaces the Share exchange, typically the serving
	// layer's canonical request key; the search appends its own problem
	// discriminators (see problem.shareKey). Empty disables the exchange.
	ShareKey string
	// Distribute, when set, offers large branch-and-bound searches to the
	// serving layer for cross-node subtree distribution (see subtree.go).
	// The hook may decline; the search then runs locally. Results of
	// completed searches are byte-identical either way.
	Distribute DistributeFunc
	// DistributeWidth is the node count Distribute can spread over, sizing
	// the split frontier (~4 subproblems per node). < 2 disables
	// distribution.
	DistributeWidth int
}

func (p *Params) normalize() {
	if p.OnChipMaxWords == 0 {
		p.OnChipMaxWords = 64 * 1024
	}
	if p.MaxPorts == 0 {
		p.MaxPorts = 8
	}
	if p.NodeBudget == 0 {
		p.NodeBudget = 2_000_000
	}
}

// Cost is the memory-organization cost triple the paper's tables report.
type Cost struct {
	OnChipArea   float64 // mm²
	OnChipPower  float64 // mW
	OffChipPower float64 // mW
}

// TotalPower returns on-chip + off-chip power.
func (c Cost) TotalPower() float64 { return c.OnChipPower + c.OffChipPower }

// Binding is one allocated memory with its assigned basic groups.
type Binding struct {
	Mem    memlib.Memory
	Groups []string
	Power  float64 // mW contribution
	Area   float64 // mm² contribution (0 for off-chip)
}

// Assignment is a complete memory organization.
type Assignment struct {
	OnChip   []Binding
	OffChip  []Binding
	GroupMem map[string]string // group -> memory name
	Cost     Cost
	// Optimal is true when the exact search ran to completion: the
	// organization is proven cheapest. It is false when the node budget,
	// a deadline, or a cancellation stopped the search early — the result
	// is then the best incumbent found so far (at worst the greedy
	// first-fit solution), valid but not proven optimal.
	Optimal bool
}

// problem is the shared precomputed state.
type problem struct {
	tech   *memlib.Tech
	p      Params
	s      *spec.Spec    // source spec, kept for the Distribute hook's wire format
	pats   []sbd.Pattern // source patterns, same reason
	groups []spec.BasicGroup // the groups being partitioned
	acc    []uint64          // accesses per frame, per group
	patVec [][]int           // group -> per-pattern multiplicity
	patIdx [][]int           // group -> indices of its nonzero patterns
	patVal [][]int           // group -> multiplicities at those indices
	patW   []uint64          // pattern weights (unused in cost, kept for reports)
	nPat   int
	nLoops int                // for in-place live-word profiles
	life   []inplace.Interval // per group; valid when p.InPlace
}

func buildProblem(s *spec.Spec, groups []spec.BasicGroup, pats []sbd.Pattern, tech *memlib.Tech, p Params) *problem {
	pr := &problem{tech: tech, p: p, s: s, pats: pats, groups: groups, nPat: len(pats), nLoops: len(s.Loops)}
	pr.acc = make([]uint64, len(groups))
	pr.patVec = make([][]int, len(groups))
	pr.patIdx = make([][]int, len(groups))
	pr.patVal = make([][]int, len(groups))
	pr.patW = make([]uint64, len(pats))
	for i, pt := range pats {
		pr.patW[i] = pt.Weight
	}
	var lifetimes map[string]inplace.Interval
	if p.InPlace {
		lifetimes = inplace.Lifetimes(s)
		pr.life = make([]inplace.Interval, len(groups))
	}
	// One flat multiplicity matrix plus one flat nonzero store back every
	// group's columns: three allocations total instead of three per group.
	vecs := make([]int, len(groups)*len(pats))
	nz := 0
	for gi, g := range groups {
		pr.acc[gi] = s.AccessesPerFrame(g.Name)
		vec := vecs[gi*len(pats) : (gi+1)*len(pats) : (gi+1)*len(pats)]
		for pi, pt := range pats {
			vec[pi] = pt.Access[g.Name]
			if vec[pi] != 0 {
				nz++
			}
		}
		pr.patVec[gi] = vec
		if p.InPlace {
			pr.life[gi] = lifetimes[g.Name]
		}
	}
	idxBuf := make([]int, 0, nz)
	valBuf := make([]int, 0, nz)
	for gi := range groups {
		start := len(idxBuf)
		for pi, v := range pr.patVec[gi] {
			if v != 0 {
				idxBuf = append(idxBuf, pi)
				valBuf = append(valBuf, v)
			}
		}
		pr.patIdx[gi] = idxBuf[start:len(idxBuf):len(idxBuf)]
		pr.patVal[gi] = valBuf[start:len(valBuf):len(valBuf)]
	}
	return pr
}

// selfPorts returns the minimum port count any memory holding group gi can
// have: the group's own worst same-cycle multiplicity.
func (pr *problem) selfPorts(gi int) int {
	k := 1
	for _, v := range pr.patVal[gi] {
		if v > k {
			k = v
		}
	}
	return k
}

// memState tracks one memory's member aggregate during search.
type memState struct {
	words   int64
	bits    int
	acc     uint64
	vec     []int // per-pattern multiplicity sum
	ports   int
	nGroups int
	live    []int64 // per-loop live words (in-place mode only)
}

// reset clears the aggregate for reuse, keeping the vec/live backing — the
// allocation-free counterpart of `*m = memState{}` for states handed out by
// newMemStates.
func (m *memState) reset() {
	clear(m.vec)
	clear(m.live)
	m.words, m.bits, m.ports, m.acc, m.nGroups = 0, 0, 0, 0, 0
}

// newMemStates allocates the per-search memory aggregates as one block —
// a single memState array, one flat multiplicity matrix and (in in-place
// mode) one flat live-words matrix — instead of two to three heap objects
// per memory per restart. Callers reuse the states across restarts via
// reset; the full slice expressions keep neighbouring rows from bleeding
// into each other under append.
func newMemStates(pr *problem, maxMem int) []*memState {
	mems := make([]*memState, maxMem)
	states := make([]memState, maxMem)
	vecs := make([]int, maxMem*pr.nPat)
	var lives []int64
	if pr.p.InPlace {
		lives = make([]int64, maxMem*pr.nLoops)
	}
	for i := range mems {
		states[i].vec = vecs[i*pr.nPat : (i+1)*pr.nPat : (i+1)*pr.nPat]
		if lives != nil {
			states[i].live = lives[i*pr.nLoops : (i+1)*pr.nLoops : (i+1)*pr.nLoops]
		}
		mems[i] = &states[i]
	}
	return mems
}

// memUndo captures the scalar fields of a memState before one push. The
// vector fields (vec, live) are additive, so pop reverses them by
// subtraction; the scalars are running maxima and must be restored.
type memUndo struct {
	words   int64
	bits    int
	ports   int
	acc     uint64
	nGroups int
}

// push adds group gi to the memory in place and returns the undo record.
// Together with pop it makes node evaluation incremental: the search
// mutates one aggregate per candidate instead of copying and rebuilding
// the member state at every node.
func (m *memState) push(pr *problem, gi int) memUndo {
	u := memUndo{words: m.words, bits: m.bits, ports: m.ports, acc: m.acc, nGroups: m.nGroups}
	g := pr.groups[gi]
	if pr.p.InPlace {
		if m.live == nil {
			m.live = make([]int64, pr.nLoops)
		}
		iv := pr.life[gi]
		peak := int64(0)
		for li := iv.First; li <= iv.Last && li < pr.nLoops; li++ {
			m.live[li] += g.Words
			if m.live[li] > peak {
				peak = m.live[li]
			}
		}
		if peak > m.words {
			m.words = peak
		}
	} else {
		m.words += g.Words
	}
	if g.Bits > m.bits {
		m.bits = g.Bits
	}
	m.acc += pr.acc[gi]
	if m.vec == nil {
		m.vec = make([]int, pr.nPat)
	}
	ports := m.ports
	idx, val := pr.patIdx[gi], pr.patVal[gi]
	for i, pi := range idx {
		m.vec[pi] += val[i]
		if m.vec[pi] > ports {
			ports = m.vec[pi]
		}
	}
	if ports < 1 {
		ports = 1
	}
	m.ports = ports
	m.nGroups++
	return u
}

// pop removes group gi again, restoring the state push saved.
func (m *memState) pop(pr *problem, gi int, u memUndo) {
	idx, val := pr.patIdx[gi], pr.patVal[gi]
	for i, pi := range idx {
		m.vec[pi] -= val[i]
	}
	if pr.p.InPlace {
		g := pr.groups[gi]
		iv := pr.life[gi]
		for li := iv.First; li <= iv.Last && li < pr.nLoops; li++ {
			m.live[li] -= g.Words
		}
	}
	m.words, m.bits, m.ports, m.acc, m.nGroups = u.words, u.bits, u.ports, u.acc, u.nGroups
}

func (m *memState) add(pr *problem, gi int) { m.push(pr, gi) }

// recompute rebuilds the aggregate from scratch for the given member set
// (used on removal; simpler and safe for the small sizes involved).
func (m *memState) recompute(pr *problem, members []int) {
	m.reset()
	for _, gi := range members {
		m.add(pr, gi)
	}
}

// onChipCost prices one on-chip memory state.
func (pr *problem) onChipCost(m *memState) (area, power float64, err error) {
	if m.nGroups == 0 {
		return 0, 0, nil
	}
	if m.ports > pr.p.MaxPorts {
		return 0, 0, fmt.Errorf("assign: memory needs %d ports (max %d)", m.ports, pr.p.MaxPorts)
	}
	if m.words > pr.tech.SRAM.MaxWords {
		return 0, 0, fmt.Errorf("assign: on-chip memory of %d words exceeds generator limit", m.words)
	}
	ports := m.ports
	if ports < 1 {
		ports = 1
	}
	area = pr.tech.SRAM.Area(m.words, m.bits, ports)
	rate := float64(m.acc) / pr.tech.FramePeriod
	power = pr.tech.SRAM.Power(m.words, m.bits, ports, rate)
	return area, power, nil
}

// offChipCost prices one off-chip memory state.
func (pr *problem) offChipCost(m *memState) (power float64, err error) {
	if m.nGroups == 0 {
		return 0, nil
	}
	ports := m.ports
	if ports < 1 {
		ports = 1
	}
	if ports > pr.p.MaxPorts {
		return 0, fmt.Errorf("assign: off-chip memory needs %d ports (max %d)", ports, pr.p.MaxPorts)
	}
	return pr.tech.DRAM.Power(m.words, memlib.CatalogWidth(m.bits), ports,
		float64(m.acc)/pr.tech.FramePeriod)
}

// partition splits the spec's groups by the on/off-chip threshold.
func partition(s *spec.Spec, p Params) (on, off []spec.BasicGroup) {
	for _, g := range s.Groups {
		if s.AccessesPerFrame(g.Name) == 0 {
			continue // pruned away: never accessed
		}
		if g.Words > p.OnChipMaxWords {
			off = append(off, g)
		} else {
			on = append(on, g)
		}
	}
	return on, off
}

// Assign computes a full memory organization with the given number of
// on-chip memories. Off-chip groups are packed into catalog devices by
// exhaustive partition search (there are only a few large groups).
func Assign(s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, onChipCount int, p Params) (*Assignment, error) {
	return AssignContext(context.Background(), s, pats, tech, onChipCount, p)
}

// AssignContext is Assign with deadline and cancellation support. The search
// is *anytime*: when ctx expires or is canceled, the best incumbent found so
// far is returned (the greedy first-fit incumbent guarantees one exists for
// every feasible problem) with Optimal=false, never an error. Cancellation
// is polled every cancelCheckInterval search nodes, so an uncancellable
// context costs nothing in the hot loop.
func AssignContext(ctx context.Context, s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, onChipCount int, p Params) (*Assignment, error) {
	p.normalize()
	if onChipCount < 1 {
		return nil, fmt.Errorf("assign: on-chip count %d out of range", onChipCount)
	}
	sp := p.Obs.Child("assign")
	defer sp.End()
	p.Progress.SetStage("assign")
	onG, offG := partition(s, p)
	sp.SetInt("count", int64(onChipCount))
	sp.SetInt("groups_onchip", int64(len(onG)))
	sp.SetInt("groups_offchip", int64(len(offG)))
	a := &Assignment{GroupMem: make(map[string]string)}

	// Off-chip: exhaustive partition search over the (few) large groups.
	offPr := buildProblem(s, offG, pats, tech, p)
	offBind, offPower, offOptimal, err := bestOffChip(ctx, offPr, sp)
	if err != nil {
		return nil, err
	}
	a.OffChip = offBind
	a.Cost.OffChipPower = offPower

	// On-chip: branch and bound.
	onPr := buildProblem(s, onG, pats, tech, p)
	bind, area, power, onOptimal, err := branchAndBound(ctx, onPr, onChipCount, sp)
	if err != nil {
		return nil, err
	}
	a.OnChip = bind
	a.Cost.OnChipArea = area
	a.Cost.OnChipPower = power
	a.Optimal = onOptimal && offOptimal
	if o := sp.Observer(); o != nil {
		o.Counter(obs.Label("assign.result", "optimal", strconv.FormatBool(a.Optimal))).Add(1)
	}

	// Interconnect extension: its cost depends only on the allocation size
	// and the total on-chip traffic, so it is added after the search rather
	// than inside the assignment objective.
	if tech.Bus.Enabled() {
		var onAcc uint64
		for gi := range onG {
			onAcc += s.AccessesPerFrame(onG[gi].Name)
		}
		n := len(a.OnChip)
		a.Cost.OnChipArea += tech.Bus.Area(n)
		a.Cost.OnChipPower += tech.Bus.Power(n, float64(onAcc)/tech.FramePeriod)
	}

	for _, b := range a.OnChip {
		for _, g := range b.Groups {
			a.GroupMem[g] = b.Mem.Name
		}
	}
	for _, b := range a.OffChip {
		for _, g := range b.Groups {
			a.GroupMem[g] = b.Mem.Name
		}
	}
	return a, nil
}

// bestOffChip searches all set partitions of the off-chip groups (at most a
// handful) for the cheapest feasible device packing. When ctx is done, the
// search stops at the best feasible packing found so far (it keeps running
// until one exists, so a feasible problem always yields a result) and the
// returned optimal flag is false.
func bestOffChip(ctx context.Context, pr *problem, sp *obs.Span) ([]Binding, float64, bool, error) {
	n := len(pr.groups)
	if n == 0 {
		return nil, 0, true, nil
	}
	if n > 8 {
		return nil, 0, false, fmt.Errorf("assign: %d off-chip groups exceed the partition-search limit", n)
	}
	if wp := pr.p.Workers; wp.Workers() > 1 && n >= minParallelOffChip {
		return bestOffChipParallel(ctx, pr, sp, wp)
	}
	bestPower := math.Inf(1)
	var bestParts [][]int
	partitions := 0
	done := ctx.Done()
	cancelChecks := 0
	stopped := false
	assignTo := make([]int, n)
	var rec func(i, used int)
	rec = func(i, used int) {
		if stopped {
			return
		}
		if i == n {
			partitions++
			if done != nil && partitions%cancelCheckInterval == 0 && bestParts != nil {
				cancelChecks++
				select {
				case <-done:
					stopped = true
					return
				default:
				}
			}
			parts, total, feasible := pr.partitionPower(assignTo[:n], used)
			if !feasible {
				return
			}
			if total < bestPower {
				bestPower = total
				bestParts = make([][]int, len(parts))
				for i := range parts {
					bestParts[i] = append([]int(nil), parts[i]...)
				}
			}
			return
		}
		for m := 0; m <= used && m < n; m++ {
			assignTo[i] = m
			nu := used
			if m == used {
				nu++
			}
			rec(i+1, nu)
		}
	}
	rec(0, 0)
	sp.SetInt("offchip_partitions", int64(partitions))
	if o := sp.Observer(); o != nil && cancelChecks > 0 {
		o.Counter("assign.cancel_points").Add(int64(cancelChecks))
		if stopped {
			o.Counter("assign.deadline_fallbacks").Add(1)
		}
	}
	if math.IsInf(bestPower, 1) {
		return nil, 0, false, fmt.Errorf("assign: no feasible off-chip packing (port demand exceeds %d)", pr.p.MaxPorts)
	}
	binds, err := offChipBinds(pr, bestParts)
	if err != nil {
		return nil, 0, false, err
	}
	return binds, bestPower, !stopped, nil
}

// partitionPower prices one complete partition (assignTo maps each group to
// a memory in [0,used)), returning the member lists and total power.
// feasible is false when any part's port demand exceeds the cap. Both
// off-chip search modes price partitions through this one function, so the
// accumulation order — and the float result — is identical.
func (pr *problem) partitionPower(assignTo []int, used int) (parts [][]int, total float64, feasible bool) {
	parts = make([][]int, used)
	for gi, m := range assignTo {
		parts[m] = append(parts[m], gi)
	}
	var st memState
	for _, members := range parts {
		st.recompute(pr, members)
		pw, err := pr.offChipCost(&st)
		if err != nil {
			return nil, 0, false
		}
		total += pw
	}
	return parts, total, true
}

// offChipBinds materializes the winning off-chip partition into catalog
// device bindings.
func offChipBinds(pr *problem, bestParts [][]int) ([]Binding, error) {
	var binds []Binding
	for i, members := range bestParts {
		var st memState
		st.recompute(pr, members)
		pw, err := pr.offChipCost(&st)
		if err != nil {
			return nil, err
		}
		entry, err := pr.tech.DRAM.Select(st.words, memlib.CatalogWidth(st.bits))
		if err != nil {
			return nil, err
		}
		ports := st.ports
		if ports < 1 {
			ports = 1
		}
		b := Binding{
			Mem: memlib.Memory{
				Name:  fmt.Sprintf("offchip%d(%s)", i, entry.Name),
				Kind:  memlib.OffChip,
				Words: st.words,
				Bits:  memlib.CatalogWidth(st.bits),
				Ports: ports,
			},
			Power: pw,
		}
		for _, gi := range members {
			b.Groups = append(b.Groups, pr.groups[gi].Name)
		}
		sort.Strings(b.Groups)
		binds = append(binds, b)
	}
	return binds, nil
}

// areaWeight is the mm²-to-mW exchange rate of the assignment objective:
// the optimizer minimizes power + areaWeight·area. Power carries the larger
// weight, as in the paper's low-power-oriented tool; the reports keep the
// components separate.
const areaWeight = 0.3

// bbPre is the search-independent precomputation shared by the sequential
// and parallel branch-and-bound: the decision order, the admissible
// lower-bound tail sums, and the per-empty-memory bound term. Both search
// modes derive it from the same code so their float arithmetic — and hence
// their pruning decisions and costs — is bitwise identical.
type bbPre struct {
	order     []int     // decision order: group indices, decreasing weight
	lbTail    []float64 // lbTail[i]: lower bound of groups order[i:]
	emptyTerm float64   // bound contribution of each still-empty memory
}

// bbPrecompute builds the shared precomputation.
//
// Groups are ordered by decreasing weight (accesses × width): decide the
// expensive groups first for stronger pruning.
//
// The per-group optimistic marginal cost is the admissible lower bound of
// the search: whatever memory ends up holding a group is at least as large
// as the group itself, at least as wide, and has at least as many ports
// as the group's own worst same-cycle multiplicity forces (selfPorts).
// Energy and area are monotone in all three, so pricing the group at
// exactly its own size/width/self-ports underestimates every real
// placement. The dedicated-cell area term is dropped in in-place mode:
// members with disjoint lifetimes share storage there, so a memory's
// cells are not the sum of its members' — only the power floor remains
// admissible.
func (pr *problem) bbPrecompute() bbPre {
	n := len(pr.groups)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa := float64(pr.acc[order[a]]) * float64(pr.groups[order[a]].Bits)
		wb := float64(pr.acc[order[b]]) * float64(pr.groups[order[b]].Bits)
		return wa > wb
	})

	lbTail := make([]float64, n+1)
	lbOf := func(gi int) float64 {
		g := pr.groups[gi]
		k := pr.selfPorts(gi)
		e := pr.tech.SRAM.EnergyPerAccess(g.Words, g.Bits, k)
		v := e * (float64(pr.acc[gi]) / pr.tech.FramePeriod) * 1e-6 // nJ × 1/s → mW
		if !pr.p.InPlace {
			portF := 1 + pr.tech.SRAM.PortArea*float64(k-1)
			v += areaWeight * pr.tech.SRAM.CellArea * float64(g.BitSize()) * portF
		}
		return v
	}
	for i := n - 1; i >= 0; i-- {
		lbTail[i] = lbTail[i+1] + lbOf(order[i])
	}
	// Every still-empty memory must end up used (mustOpen enforces it), and
	// its future members pay its instance overhead on top of their floors.
	emptyTerm := pr.tech.SRAM.StaticPower + areaWeight*pr.tech.SRAM.FixedArea
	return bbPre{order: order, lbTail: lbTail, emptyTerm: emptyTerm}
}

// greedyIncumbent runs the greedy first-fit assignment: each group (in
// decision order) goes to the memory with the minimal marginal cost, forced
// to leave room so every allocated memory ends up used. It returns the
// assignment (group index -> memory) and its cost; ok is false when greedy
// finds no feasible placement. Both search modes seed their incumbent from
// this one function, so the baseline cost is bitwise identical.
func greedyIncumbent(pr *problem, maxMem int, pre *bbPre) (assign []int, cost float64, ok bool) {
	n := len(pr.groups)
	mems := newMemStates(pr, maxMem)
	memCost := make([]float64, maxMem)
	var curCost float64
	emptyCnt := maxMem
	curAssign := make([]int, n)
	for step, gi := range pre.order {
		remaining := n - step
		mustOpen := remaining <= emptyCnt
		bestM, bestDelta := -1, math.Inf(1)
		for m := 0; m < maxMem; m++ {
			if mems[m].nGroups == 0 && m > 0 && mems[m-1].nGroups == 0 {
				break // symmetry: only the first empty memory matters
			}
			if mustOpen && mems[m].nGroups > 0 {
				continue
			}
			u := mems[m].push(pr, gi)
			area, power, err := pr.onChipCost(mems[m])
			delta := power + areaWeight*area - memCost[m]
			mems[m].pop(pr, gi, u)
			if err == nil && delta < bestDelta {
				bestM, bestDelta = m, delta
			}
		}
		if bestM < 0 {
			return nil, 0, false
		}
		if mems[bestM].nGroups == 0 {
			emptyCnt--
		}
		mems[bestM].push(pr, gi)
		a, p2, _ := pr.onChipCost(mems[bestM])
		curCost += p2 + areaWeight*a - memCost[bestM]
		memCost[bestM] = p2 + areaWeight*a
		curAssign[gi] = bestM
	}
	return curAssign, curCost, true
}

// seedIncumbent re-prices the warm-start seed (Params.Seed, a neighbouring
// problem's assignment by group name) on this problem. The seed must cover
// every on-chip group and, after renumbering its slots by first appearance
// in decision order (the search's symmetry-breaking canonical form), use
// exactly maxMem memories — the mustOpen rule makes every feasible search
// leaf do the same, so a seed using fewer could undercut every real leaf
// and would be an unsound bound.
//
// The cost is computed by replaying the assignment along pre.order with
// the same push/onChipCost/delta statements as the DFS itself, so the
// returned float is bitwise the cost of that exact search leaf. That makes
// adopting it as the incumbent anytime-correct: seedCost >= the true
// optimum in the DFS's own arithmetic, and the caller opens the bound by
// one ulp (Nextafter) so a leaf that ties the seed still wins — a
// completed search returns byte-identical results with or without a seed.
func seedIncumbent(pr *problem, maxMem int, pre *bbPre) (assign []int, cost float64, ok bool) {
	seed := pr.p.Seed
	n := len(pr.groups)
	if len(seed) == 0 || n == 0 {
		return nil, 0, false
	}
	slotOf := make([]int, n)
	for gi := range pr.groups {
		s, covered := seed[pr.groups[gi].Name]
		if !covered {
			return nil, 0, false
		}
		slotOf[gi] = s
	}
	renum := make(map[int]int, maxMem)
	assignTo := make([]int, n)
	for _, gi := range pre.order {
		m, seen := renum[slotOf[gi]]
		if !seen {
			m = len(renum)
			if m >= maxMem {
				return nil, 0, false
			}
			renum[slotOf[gi]] = m
		}
		assignTo[gi] = m
	}
	if len(renum) != maxMem {
		return nil, 0, false
	}
	mems := newMemStates(pr, maxMem)
	memCost := make([]float64, maxMem)
	var curCost float64
	for _, gi := range pre.order {
		m := assignTo[gi]
		mems[m].push(pr, gi)
		area, power, err := pr.onChipCost(mems[m])
		if err != nil {
			return nil, 0, false // infeasible here (ports/words): reject
		}
		oldCost := memCost[m]
		memCost[m] = power + areaWeight*area
		curCost += memCost[m] - oldCost
	}
	return assignTo, curCost, true
}

// branchAndBound finds the cheapest assignment of pr.groups into exactly
// maxMem on-chip memories (clamped to the group count: the designer
// allocated them, the tool uses them — Table 4's sweep axis).
//
// The search is anytime: the greedy first-fit incumbent is computed before
// the exact search starts, so when ctx is already done the exact search is
// skipped entirely, and when ctx expires mid-search (polled every
// cancelCheckInterval nodes) the best incumbent found so far is returned.
// Both cases report optimal=false.
//
// With a worker pool wider than one, a large enough problem is handed to
// branchAndBoundParallel, which splits the search tree into independent
// subproblems and returns byte-identical results for completed searches.
func branchAndBound(ctx context.Context, pr *problem, maxMem int, sp *obs.Span) ([]Binding, float64, float64, bool, error) {
	n := len(pr.groups)
	if n == 0 {
		return nil, 0, 0, true, nil
	}
	if maxMem > n {
		maxMem = n
	}
	if pr.p.Distribute != nil && n >= minParallelGroups && pr.p.NodeBudget >= minParallelBudget {
		if binds, area, power, optimal, handled, err := branchAndBoundDistributed(ctx, pr, maxMem, sp); handled {
			return binds, area, power, optimal, err
		}
	}
	if wp := pr.p.Workers; wp.Workers() > 1 && n >= minParallelGroups && pr.p.NodeBudget >= minParallelBudget {
		return branchAndBoundParallel(ctx, pr, maxMem, sp, wp)
	}
	pre := pr.bbPrecompute()
	order, lbTail, emptyTerm := pre.order, pre.lbTail, pre.emptyTerm
	prog := pr.p.Progress
	prog.SetBound(lbTail[0] + float64(maxMem)*pre.emptyTerm)

	mems := newMemStates(pr, maxMem)
	// members[m] grows one entry per descent level; total membership never
	// exceeds n, so one flat n-per-memory backing absorbs every append.
	members := make([][]int, maxMem)
	memberBuf := make([]int, maxMem*n)
	for i := range members {
		members[i] = memberBuf[i*n : i*n : (i+1)*n]
	}
	memCost := make([]float64, maxMem) // area+power of each memory
	var curCost float64
	emptyCnt := maxMem // memories with no member yet, maintained incrementally

	bestCost := math.Inf(1)
	bestAssign := make([]int, n) // group index -> memory
	curAssign := make([]int, n)

	// Cross-search incumbent exchange (cluster mode): publish the feasible
	// costs this search finds, prune with strict > against the best cost any
	// concurrent search of the same keyed problem published. Strict > keeps
	// completed results byte-identical (see parallel.go rule 2); the
	// exchange only shrinks the visited node count.
	shareKey := ""
	if pr.p.Share != nil {
		shareKey = pr.shareKey(maxMem)
	}
	extBound := math.Inf(1)
	refreshExt := func() {
		if shareKey == "" {
			return
		}
		if bits, ok := pr.p.Share.Best(shareKey); ok {
			if v := math.Float64frombits(bits); v < extBound {
				extBound = v
			}
		}
	}
	publish := func(c float64) {
		if shareKey != "" {
			pr.p.Share.Publish(shareKey, math.Float64bits(c))
		}
	}

	if gAssign, gCost, ok := greedyIncumbent(pr, maxMem, &pre); ok {
		bestCost = gCost
		copy(bestAssign, gAssign)
		prog.SetIncumbent(gCost)
		publish(gCost)
	}
	seeded := false
	if pr.p.Seed != nil {
		if sAssign, sCost, ok := seedIncumbent(pr, maxMem, &pre); ok {
			// Adopt one ulp above the seed's own cost: the bound prunes with
			// >=, so the canonical leaf that ties the seed still updates the
			// incumbent and a completed search stays byte-identical to cold.
			if sb := math.Nextafter(sCost, math.Inf(1)); sb < bestCost {
				bestCost = sb
				copy(bestAssign, sAssign)
				seeded = true
				prog.SetIncumbent(sCost)
				publish(sCost)
			}
		}
	}
	refreshExt()

	// Search-effort counters: plain locals inside the hot loop, emitted once
	// at the end so the instrumented search runs at full speed.
	nodes := 0
	prunedLB := 0
	prunedExt := 0
	portRejects := 0
	exhausted := false
	stopped := false // ctx deadline/cancellation hit (vs. node-budget exhaustion)
	done := ctx.Done()
	cancelChecks := 0
	if done != nil {
		// Entry check: an already-expired context skips the exact search
		// entirely and returns the greedy incumbent.
		cancelChecks++
		select {
		case <-done:
			stopped = true
		default:
		}
	}
	var dfs func(step int)
	dfs = func(step int) {
		if exhausted || stopped {
			return
		}
		nodes++
		if nodes > pr.p.NodeBudget {
			exhausted = true
			return
		}
		if nodes%cancelCheckInterval == 0 {
			prog.AddNodes(cancelCheckInterval)
			refreshExt()
			if done != nil {
				cancelChecks++
				select {
				case <-done:
					stopped = true
					return
				default:
				}
			}
		}
		if step == n {
			if curCost < bestCost {
				bestCost = curCost
				copy(bestAssign, curAssign)
				prog.SetIncumbent(bestCost)
				publish(curCost)
			}
			return
		}
		v := curCost + lbTail[step] + float64(emptyCnt)*emptyTerm
		if v >= bestCost {
			prunedLB++
			return
		}
		if v > extBound {
			prunedExt++
			return
		}
		gi := order[step]
		mustOpen := n-step <= emptyCnt
		for m := 0; m < maxMem; m++ {
			if mems[m].nGroups == 0 && m > 0 && mems[m-1].nGroups == 0 {
				break // symmetry breaking: open memories left to right
			}
			if mustOpen && mems[m].nGroups > 0 {
				continue // every allocated memory must end up used
			}
			wasEmpty := mems[m].nGroups == 0
			u := mems[m].push(pr, gi)
			area, power, err := pr.onChipCost(mems[m])
			if err == nil {
				if wasEmpty {
					emptyCnt--
				}
				oldCost := memCost[m]
				memCost[m] = power + areaWeight*area
				curCost += memCost[m] - oldCost
				curAssign[gi] = m
				members[m] = append(members[m], gi)
				dfs(step + 1)
				members[m] = members[m][:len(members[m])-1]
				curCost -= memCost[m] - oldCost
				memCost[m] = oldCost
				if wasEmpty {
					emptyCnt++
				}
			} else {
				portRejects++
			}
			mems[m].pop(pr, gi, u)
		}
	}
	if !stopped {
		dfs(0)
	}
	prog.AddNodes(int64(nodes % cancelCheckInterval))
	if sp != nil {
		sp.SetInt("nodes", int64(nodes))
		sp.SetInt("pruned_bound", int64(prunedLB))
		sp.SetInt("port_rejections", int64(portRejects))
		opt := int64(1)
		if exhausted || stopped {
			opt = 0
		}
		sp.SetInt("optimal", opt)
		o := sp.Observer()
		o.Counter("assign.nodes").Add(int64(nodes))
		o.Counter("assign.pruned_bound").Add(int64(prunedLB))
		o.Counter("assign.port_rejections").Add(int64(portRejects))
		if prunedExt > 0 {
			o.Counter("assign.pruned_external").Add(int64(prunedExt))
		}
		if cancelChecks > 0 {
			o.Counter("assign.cancel_points").Add(int64(cancelChecks))
		}
		if stopped {
			o.Counter("assign.deadline_fallbacks").Add(1)
		}
		if pr.p.Seed != nil {
			if seeded {
				o.Counter("assign.incumbent_seeded").Add(1)
			} else {
				o.Counter("assign.seed_rejected").Add(1)
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, 0, 0, false, fmt.Errorf(
			"assign: no feasible on-chip assignment with %d memories (conflicts demand more)", maxMem)
	}

	binds, totalArea, totalPower, err := materializeOnChip(pr, maxMem, bestAssign)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return binds, totalArea, totalPower, !exhausted && !stopped, nil
}

// materializeOnChip turns the winning assignment vector into memory
// bindings, re-deriving each memory's aggregate and price from scratch.
func materializeOnChip(pr *problem, maxMem int, bestAssign []int) ([]Binding, float64, float64, error) {
	finalMembers := make([][]int, maxMem)
	for gi, m := range bestAssign {
		finalMembers[m] = append(finalMembers[m], gi)
	}
	binds := make([]Binding, 0, maxMem)
	var totalArea, totalPower float64
	var st memState
	idx := 0
	for m := 0; m < maxMem; m++ {
		if len(finalMembers[m]) == 0 {
			continue
		}
		st.recompute(pr, finalMembers[m])
		area, power, err := pr.onChipCost(&st)
		if err != nil {
			return nil, 0, 0, err
		}
		ports := st.ports
		if ports < 1 {
			ports = 1
		}
		b := Binding{
			Mem: memlib.Memory{
				Name:  fmt.Sprintf("sram%d", idx),
				Kind:  memlib.OnChip,
				Words: st.words,
				Bits:  st.bits,
				Ports: ports,
			},
			Area:  area,
			Power: power,
		}
		for _, gi := range finalMembers[m] {
			b.Groups = append(b.Groups, pr.groups[gi].Name)
		}
		sort.Strings(b.Groups)
		binds = append(binds, b)
		totalArea += area
		totalPower += power
		idx++
	}
	return binds, totalArea, totalPower, nil
}

// Greedy returns the greedy-only assignment (the baseline a designer
// without the optimizing tool would reach by first-fit reasoning).
func Greedy(s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, onChipCount int, p Params) (*Assignment, error) {
	p.normalize()
	saveNB := p.NodeBudget
	p.NodeBudget = 1 // force the search to stop immediately after greedy
	a, err := Assign(s, pats, tech, onChipCount, p)
	p.NodeBudget = saveNB
	if err != nil {
		return nil, err
	}
	a.Optimal = false
	return a, nil
}

// Sweep evaluates a range of on-chip allocation sizes (Table 4's axis) and
// returns one assignment per count, skipping infeasible counts.
func Sweep(s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, counts []int, p Params) ([]*Assignment, []int, error) {
	return SweepContext(context.Background(), s, pats, tech, counts, p)
}

// SweepContext is Sweep with deadline and cancellation support: once the
// context is done and at least one count has been evaluated, no further
// counts are launched (each evaluated count itself degrades to its greedy
// incumbent under an expired context, so the sweep drains quickly).
func SweepContext(ctx context.Context, s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, counts []int, p Params) ([]*Assignment, []int, error) {
	var out []*Assignment
	var okCounts []int
	for _, c := range counts {
		if len(out) > 0 && ctx.Err() != nil {
			break
		}
		a, err := AssignContext(ctx, s, pats, tech, c, p)
		if err != nil {
			continue
		}
		out = append(out, a)
		okCounts = append(okCounts, c)
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("assign: no feasible allocation in sweep %v", counts)
	}
	return out, okCounts, nil
}
