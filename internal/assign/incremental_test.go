package assign

import (
	"math/rand"
	"testing"

	"repro/internal/memlib"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// conflictSpec builds a spec with enough groups, patterns, and lifetime
// structure to exercise every field the incremental push/pop maintains.
func conflictSpec(t *testing.T) (*spec.Spec, []sbd.Pattern) {
	t.Helper()
	b := spec.NewBuilder("inc")
	b.Group("a", 1024, 8)
	b.Group("b", 512, 16)
	b.Group("c", 2048, 4)
	b.Group("d", 256, 12)
	b.Group("e", 128, 24)
	b.Loop("l1", 1000)
	b.Read("a", 2)
	b.Read("b", 1)
	b.Write("c", 1)
	b.Loop("l2", 500)
	b.Read("d", 1)
	b.Read("e", 2)
	b.Loop("l3", 200)
	b.Read("a", 1)
	b.Write("e", 1)
	s := b.MustBuild()
	pats := []sbd.Pattern{
		{Access: map[string]int{"a": 2, "b": 1}, Weight: 1000},
		{Access: map[string]int{"c": 1, "d": 1}, Weight: 500},
		{Access: map[string]int{"e": 2}, Weight: 500},
		{Access: map[string]int{"a": 1, "e": 1}, Weight: 200},
	}
	return s, pats
}

// TestPushPopMatchesRecompute drives a memState through a pseudo-random
// push/pop sequence and checks after every step that the incrementally
// maintained aggregate is identical to a from-scratch recompute of the
// current member set — in both normal and in-place mode.
func TestPushPopMatchesRecompute(t *testing.T) {
	s, pats := conflictSpec(t)
	for _, inPlace := range []bool{false, true} {
		p := Params{InPlace: inPlace}
		p.normalize()
		onG, _ := partition(s, p)
		pr := buildProblem(s, onG, pats, memlib.Default(), p)

		var m memState
		var members []int
		var undos []memUndo
		rng := rand.New(rand.NewSource(42))
		for step := 0; step < 500; step++ {
			if len(members) == 0 || (len(members) < len(onG) && rng.Intn(2) == 0) {
				gi := rng.Intn(len(onG))
				undos = append(undos, m.push(pr, gi))
				members = append(members, gi)
			} else {
				last := len(members) - 1
				m.pop(pr, members[last], undos[last])
				members, undos = members[:last], undos[:last]
			}
			var ref memState
			ref.recompute(pr, members)
			if m.words != ref.words || m.bits != ref.bits || m.ports != ref.ports ||
				m.acc != ref.acc || m.nGroups != ref.nGroups {
				t.Fatalf("inPlace=%v step %d members %v: incremental %+v != recompute %+v",
					inPlace, step, members, m, ref)
			}
			for pi := range pats {
				want := 0
				if ref.vec != nil {
					want = ref.vec[pi]
				}
				if m.vec[pi] != want {
					t.Fatalf("inPlace=%v step %d: vec[%d] = %d, want %d",
						inPlace, step, pi, m.vec[pi], want)
				}
			}
			if inPlace {
				for li := range m.live {
					want := int64(0)
					if ref.live != nil {
						want = ref.live[li]
					}
					if m.live[li] != want {
						t.Fatalf("inPlace=%v step %d: live[%d] = %d, want %d",
							inPlace, step, li, m.live[li], want)
					}
				}
			}
		}
	}
}

// TestSelfPortsFloor pins the per-group port floor the lower bound uses.
func TestSelfPortsFloor(t *testing.T) {
	s, pats := conflictSpec(t)
	p := Params{}
	p.normalize()
	onG, _ := partition(s, p)
	pr := buildProblem(s, onG, pats, memlib.Default(), p)
	want := map[string]int{"a": 2, "b": 1, "c": 1, "d": 1, "e": 2}
	for gi, g := range onG {
		if got := pr.selfPorts(gi); got != want[g.Name] {
			t.Fatalf("selfPorts(%s) = %d, want %d", g.Name, got, want[g.Name])
		}
	}
}
