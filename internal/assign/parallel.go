// Multicore search: the parallel branch-and-bound and the parallel
// off-chip partition scan.
//
// Both searches split their tree at the top levels into independent
// subproblems — the depth-k frontier of the *sequential* search tree, in
// canonical DFS order — and let pool workers pull subproblems from a shared
// counter. Determinism at any worker count rests on three rules:
//
//  1. A worker's own incumbent (localBest) is updated with strict <, and
//     its subtree is pruned with >= localBest — exactly the sequential
//     rules, so within one subproblem the recorded solution is the
//     DFS-first cheapest one.
//  2. The shared incumbent bound only ever prunes with strict >, so a
//     subtree that could still contain a solution of globally minimal cost
//     is never cut by another worker's progress; racing on the bound can
//     only change how much work is done, never which solution wins.
//  3. The merge picks the minimum cost, breaking float ties by the lowest
//     subproblem index (the greedy incumbent sits at index -1). Because a
//     worker drains subproblem indices in increasing order, the candidate
//     it records for the lowest optimum-bearing subproblem is exactly the
//     solution the sequential DFS would have kept.
//
// Cost floats compare bitwise-equal across modes because every path
// accumulates its cost through the same code in the same order
// (bbPrecompute, greedyIncumbent, push/onChipCost, partitionPower are all
// shared with the sequential search). Under cancellation or node-budget
// exhaustion the search stays anytime — the best incumbent so far is
// returned with Optimal=false — but the visiting order is then
// timing-dependent, so byte-identical results are guaranteed only for
// completed searches (Optimal=true), in either mode.
package assign

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pool"
)

const (
	// minParallelGroups gates the parallel branch-and-bound: below this many
	// groups the sequential search finishes in microseconds and splitting
	// costs more than it saves.
	minParallelGroups = 4
	// minParallelBudget keeps tiny node budgets on the sequential path,
	// whose per-node budget check is exact (Greedy passes budget 1 to stop
	// the exact search immediately); the parallel workers check the shared
	// budget only in batches and would overshoot such budgets.
	minParallelBudget = 4096
	// minParallelOffChip gates the parallel off-chip partition scan.
	minParallelOffChip = 4
	// nodeFlushBatch is how many nodes a worker explores between flushes of
	// its node count into the shared budget counter (and checks of the
	// shared stop state). The budget can be overshot by at most
	// workers×nodeFlushBatch nodes — anytime semantics absorb that.
	nodeFlushBatch = 256
	// maxSubproblems caps the split frontier; beyond ~4 subproblems per
	// worker the scheduling overhead buys no extra load balance.
	maxSubproblems = 1024
)

// Shared stop state bits (bbShared.state).
const (
	stopBit      = 1 << 0 // ctx deadline/cancellation hit
	exhaustedBit = 1 << 1 // shared node budget exceeded
)

// bbShared is the state the branch-and-bound workers race on.
type bbShared struct {
	// bound holds math.Float64bits of the incumbent cost. For non-negative
	// floats the bit pattern orders like the value, so tightening the bound
	// is a single-word CAS-min.
	bound   atomic.Uint64
	races   atomic.Int64 // CAS retries while tightening (incumbent races)
	nodes   atomic.Int64 // nodes visited session-wide, flushed in batches
	state   atomic.Uint32
	nextSub atomic.Int64 // next subproblem index to hand out

	// share/key, when set, connect this search to the cross-node incumbent
	// exchange: global improvements are published, and external bounds fold
	// into bound at the flush points. bound already prunes with strict >
	// only, so external costs obey the same determinism rule as every other
	// worker's progress.
	share BoundShare
	key   string
}

// setState ORs a stop bit into the shared state (CAS loop; the atomic Or
// method needs a newer language version than this module targets).
func (sh *bbShared) setState(bit uint32) {
	for {
		cur := sh.state.Load()
		if cur&bit != 0 {
			return
		}
		if sh.state.CompareAndSwap(cur, cur|bit) {
			return
		}
	}
}

// tighten lowers the shared incumbent bound to c if c is smaller, counting
// the CAS retries lost to concurrent improvements. It reports whether this
// call improved the bound (the publish trigger of the cross-node exchange).
func (sh *bbShared) tighten(c float64) bool {
	bits := math.Float64bits(c)
	for {
		cur := sh.bound.Load()
		if bits >= cur {
			return false
		}
		if sh.bound.CompareAndSwap(cur, bits) {
			return true
		}
		sh.races.Add(1)
	}
}

// refreshExternal folds the exchange's best known cost into the shared
// bound. Called at worker flush points; a no-op without a share.
func (sh *bbShared) refreshExternal() {
	if sh.share == nil {
		return
	}
	bits, ok := sh.share.Best(sh.key)
	if !ok {
		return
	}
	for {
		cur := sh.bound.Load()
		if bits >= cur {
			return
		}
		if sh.bound.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// bbPrefixes enumerates the depth-k frontier of the sequential search tree:
// every way to assign the first k groups (in decision order) to memories,
// applying the same symmetry-breaking, must-open, port-feasibility, and
// lower-bound rules the sequential dfs applies, with bound (the greedy
// incumbent) as the pruning incumbent. Prefixes come out in canonical DFS
// order; visited counts the nodes expanded.
func bbPrefixes(pr *problem, maxMem, k int, pre *bbPre, bound float64, mems []*memState) (prefixes [][]int16, visited int) {
	n := len(pr.groups)
	for i := range mems {
		mems[i].reset()
	}
	memCost := make([]float64, maxMem)
	var curCost float64
	emptyCnt := maxMem
	cur := make([]int16, k)
	var rec func(step int)
	rec = func(step int) {
		visited++
		if curCost+pre.lbTail[step]+float64(emptyCnt)*pre.emptyTerm >= bound {
			return
		}
		if step == k {
			prefixes = append(prefixes, append([]int16(nil), cur...))
			return
		}
		gi := pre.order[step]
		mustOpen := n-step <= emptyCnt
		for m := 0; m < maxMem; m++ {
			if mems[m].nGroups == 0 && m > 0 && mems[m-1].nGroups == 0 {
				break // symmetry breaking: open memories left to right
			}
			if mustOpen && mems[m].nGroups > 0 {
				continue
			}
			wasEmpty := mems[m].nGroups == 0
			u := mems[m].push(pr, gi)
			area, power, err := pr.onChipCost(mems[m])
			if err == nil {
				if wasEmpty {
					emptyCnt--
				}
				oldCost := memCost[m]
				memCost[m] = power + areaWeight*area
				curCost += memCost[m] - oldCost
				cur[step] = int16(m)
				rec(step + 1)
				curCost -= memCost[m] - oldCost
				memCost[m] = oldCost
				if wasEmpty {
					emptyCnt++
				}
			}
			mems[m].pop(pr, gi, u)
		}
	}
	rec(0)
	return prefixes, visited
}

// chooseSplit deepens the split frontier until there are enough subproblems
// to keep the pool busy (~4 per worker), leaving at least one undecided
// level for the workers.
func chooseSplit(pr *problem, maxMem int, pre *bbPre, bound float64, workers int) (prefixes [][]int16, depth, visited int) {
	n := len(pr.groups)
	target := 4 * workers
	if target > maxSubproblems {
		target = maxSubproblems
	}
	mems := newMemStates(pr, maxMem)
	for k := 1; k <= n-1; k++ {
		p, v := bbPrefixes(pr, maxMem, k, pre, bound, mems)
		visited += v
		prefixes, depth = p, k
		if len(p) == 0 || len(p) >= target {
			break
		}
	}
	return prefixes, depth, visited
}

// bbWorker is one pool worker's private search state: its own memory
// aggregates, undo-free replay buffers, incumbent, and counters. Nothing
// here is shared; workers meet only at bbShared.
type bbWorker struct {
	pr     *problem
	pre    *bbPre
	sh     *bbShared
	maxMem int
	n      int
	budget int64
	done   <-chan struct{}
	prog   *obs.Progress

	mems      []*memState
	memCost   []float64
	curAssign []int
	curCost   float64
	emptyCnt  int

	found      bool
	bestCost   float64 // localBest: seeded with the greedy cost
	bestAssign []int
	bestSub    int // subproblem index of the recorded best

	nodes        int64
	unflushed    int64
	prunedLB     int64
	portRejects  int64
	cancelChecks int64
	halted       bool
}

func newBBWorker(pr *problem, pre *bbPre, sh *bbShared, maxMem int, seed float64, done <-chan struct{}) *bbWorker {
	n := len(pr.groups)
	return &bbWorker{
		pr: pr, pre: pre, sh: sh, maxMem: maxMem, n: n,
		budget:     int64(pr.p.NodeBudget),
		done:       done,
		prog:       pr.p.Progress,
		mems:       newMemStates(pr, maxMem),
		memCost:    make([]float64, maxMem),
		curAssign:  make([]int, n),
		bestCost:   seed,
		bestAssign: make([]int, n),
		bestSub:    math.MaxInt,
	}
}

// run drains subproblem indices from the shared counter until the frontier
// is empty or the search is stopped. Indices arrive in increasing order per
// worker — the property the deterministic merge relies on.
func (w *bbWorker) run(prefixes [][]int16) {
	for !w.halted {
		if w.sh.state.Load() != 0 {
			return
		}
		idx := int(w.sh.nextSub.Add(1)) - 1
		if idx >= len(prefixes) {
			return
		}
		w.solve(idx, prefixes[idx])
	}
}

// solve replays one prefix onto fresh state and searches its subtree. The
// replay goes through the same push/onChipCost sequence as the sequential
// descent, so curCost at depth k is bitwise identical to the sequential
// curCost at the same node.
func (w *bbWorker) solve(idx int, prefix []int16) {
	for i := range w.mems {
		w.mems[i].reset()
		w.memCost[i] = 0
	}
	w.curCost = 0
	w.emptyCnt = w.maxMem
	for step, m16 := range prefix {
		m := int(m16)
		gi := w.pre.order[step]
		wasEmpty := w.mems[m].nGroups == 0
		w.mems[m].push(w.pr, gi)
		area, power, err := w.pr.onChipCost(w.mems[m])
		if err != nil {
			return // unreachable: the frontier only contains feasible prefixes
		}
		if wasEmpty {
			w.emptyCnt--
		}
		oldCost := w.memCost[m]
		w.memCost[m] = power + areaWeight*area
		w.curCost += w.memCost[m] - oldCost
		w.curAssign[gi] = m
	}
	w.dfs(len(prefix), idx)
}

// dfs is the sequential dfs with the incumbent split in two: the local best
// prunes with >= (DFS-first semantics), the shared bound with strict > (so
// no other worker's progress can cut a potential co-optimal solution).
func (w *bbWorker) dfs(step, subIdx int) {
	if w.halted {
		return
	}
	w.nodes++
	w.unflushed++
	if w.unflushed >= nodeFlushBatch {
		if w.sh.nodes.Add(w.unflushed) > w.budget {
			w.sh.setState(exhaustedBit)
		}
		w.prog.AddNodes(w.unflushed)
		w.unflushed = 0
		w.sh.refreshExternal()
		if w.sh.state.Load() != 0 {
			w.halted = true
			return
		}
	}
	if w.done != nil && w.nodes%cancelCheckInterval == 0 {
		w.cancelChecks++
		select {
		case <-w.done:
			w.sh.setState(stopBit)
			w.halted = true
			return
		default:
		}
	}
	if step == w.n {
		if w.curCost < w.bestCost {
			w.bestCost = w.curCost
			copy(w.bestAssign, w.curAssign)
			w.bestSub = subIdx
			w.found = true
			if w.sh.tighten(w.curCost) && w.sh.share != nil {
				w.sh.share.Publish(w.sh.key, math.Float64bits(w.curCost))
			}
			w.prog.SetIncumbent(math.Float64frombits(w.sh.bound.Load()))
		}
		return
	}
	v := w.curCost + w.pre.lbTail[step] + float64(w.emptyCnt)*w.pre.emptyTerm
	if v >= w.bestCost || v > math.Float64frombits(w.sh.bound.Load()) {
		w.prunedLB++
		return
	}
	gi := w.pre.order[step]
	mustOpen := w.n-step <= w.emptyCnt
	for m := 0; m < w.maxMem; m++ {
		if w.mems[m].nGroups == 0 && m > 0 && w.mems[m-1].nGroups == 0 {
			break // symmetry breaking: open memories left to right
		}
		if mustOpen && w.mems[m].nGroups > 0 {
			continue // every allocated memory must end up used
		}
		wasEmpty := w.mems[m].nGroups == 0
		u := w.mems[m].push(w.pr, gi)
		area, power, err := w.pr.onChipCost(w.mems[m])
		if err == nil {
			if wasEmpty {
				w.emptyCnt--
			}
			oldCost := w.memCost[m]
			w.memCost[m] = power + areaWeight*area
			w.curCost += w.memCost[m] - oldCost
			w.curAssign[gi] = m
			w.dfs(step+1, subIdx)
			w.curCost -= w.memCost[m] - oldCost
			w.memCost[m] = oldCost
			if wasEmpty {
				w.emptyCnt++
			}
		} else {
			w.portRejects++
		}
		w.mems[m].pop(w.pr, gi, u)
	}
}

// branchAndBoundParallel is branchAndBound split over the worker pool:
// subproblems are the depth-k frontier of the sequential tree, the
// incumbent bound is shared through a CAS-min atomic, and the merge is
// deterministic by (cost, canonical subproblem index). Completed searches
// return byte-identical results to the sequential path at any worker count.
func branchAndBoundParallel(ctx context.Context, pr *problem, maxMem int, sp *obs.Span, wp *pool.Pool) ([]Binding, float64, float64, bool, error) {
	pre := pr.bbPrecompute()
	prog := pr.p.Progress
	prog.SetBound(pre.lbTail[0] + float64(maxMem)*pre.emptyTerm)
	gAssign, gCost, gOK := greedyIncumbent(pr, maxMem, &pre)
	seed := math.Inf(1)
	if gOK {
		seed = gCost
		prog.SetIncumbent(gCost)
	}
	// Warm start: the re-priced neighbour assignment, one ulp above its own
	// cost (see seedIncumbent), feeds the split bound, every worker's local
	// incumbent and the shared CAS bound — the same places the greedy cost
	// already flows — so determinism is unchanged.
	warmed := false
	warmCost := math.Inf(1)
	var wAssign []int
	if pr.p.Seed != nil {
		if a, sCost, ok := seedIncumbent(pr, maxMem, &pre); ok {
			if sb := math.Nextafter(sCost, math.Inf(1)); sb < seed {
				seed, wAssign, warmed = sb, a, true
				warmCost = sCost
				prog.SetIncumbent(sCost)
			}
		}
	}

	stopped := false
	done := ctx.Done()
	var cancelChecks int64
	if done != nil {
		// Entry check: an already-expired context skips the exact search
		// entirely and returns the greedy incumbent.
		cancelChecks++
		select {
		case <-done:
			stopped = true
		default:
		}
	}

	var prefixes [][]int16
	depth, visited := 0, 0
	if !stopped {
		prefixes, depth, visited = chooseSplit(pr, maxMem, &pre, seed, wp.Workers())
	}

	sh := &bbShared{}
	sh.bound.Store(math.Float64bits(seed))
	sh.nodes.Store(int64(visited))
	if pr.p.Share != nil {
		if k := pr.shareKey(maxMem); k != "" {
			sh.share, sh.key = pr.p.Share, k
			// Seed the exchange with this search's entry incumbents (both
			// are feasible costs of the keyed problem), then fold in
			// whatever concurrent searches already published.
			if gOK {
				sh.share.Publish(k, math.Float64bits(gCost))
			}
			if warmed {
				sh.share.Publish(k, math.Float64bits(warmCost))
			}
			sh.refreshExternal()
		}
	}
	exhausted := visited > pr.p.NodeBudget
	nw := wp.Workers()
	if nw > len(prefixes) {
		nw = len(prefixes)
	}
	workers := make([]*bbWorker, nw)
	if nw > 0 && !stopped && !exhausted {
		for i := range workers {
			workers[i] = newBBWorker(pr, &pre, sh, maxMem, seed, done)
		}
		wp.ForEach(ctx, nw, func(i int) { workers[i].run(prefixes) })
	}

	// Deterministic merge: minimum cost, float ties broken by the lowest
	// canonical subproblem index; the greedy incumbent sits at index -1
	// (workers record only strict improvements over it).
	bestCost := math.Inf(1)
	var bestAssign []int
	bestSub := math.MaxInt
	if gOK {
		bestCost, bestAssign, bestSub = gCost, gAssign, -1
	}
	if warmed {
		// Workers only record strict improvements below the seed bound, so
		// any worker candidate beats this by cost alone; the index never
		// breaks a tie against it.
		bestCost, bestAssign, bestSub = seed, wAssign, math.MaxInt
	}
	nodes := int64(visited)
	prog.AddNodes(int64(visited))
	var prunedLB, portRejects int64
	for _, w := range workers {
		if w == nil {
			continue
		}
		nodes += w.nodes
		prog.AddNodes(w.unflushed)
		prunedLB += w.prunedLB
		portRejects += w.portRejects
		cancelChecks += w.cancelChecks
		if w.found && (w.bestCost < bestCost || (w.bestCost == bestCost && w.bestSub < bestSub)) {
			bestCost, bestAssign, bestSub = w.bestCost, w.bestAssign, w.bestSub
		}
	}
	st := sh.state.Load()
	exhausted = exhausted || st&exhaustedBit != 0
	stopped = stopped || st&stopBit != 0

	if sp != nil {
		sp.SetInt("nodes", nodes)
		sp.SetInt("pruned_bound", prunedLB)
		sp.SetInt("port_rejections", portRejects)
		sp.SetInt("subtree_splits", int64(len(prefixes)))
		sp.SetInt("split_depth", int64(depth))
		opt := int64(1)
		if exhausted || stopped {
			opt = 0
		}
		sp.SetInt("optimal", opt)
		o := sp.Observer()
		o.Counter("assign.nodes").Add(nodes)
		o.Counter("assign.pruned_bound").Add(prunedLB)
		o.Counter("assign.port_rejections").Add(portRejects)
		o.Counter("assign.subtree_splits").Add(int64(len(prefixes)))
		if r := sh.races.Load(); r > 0 {
			o.Counter("assign.incumbent_races").Add(r)
		}
		if cancelChecks > 0 {
			o.Counter("assign.cancel_points").Add(cancelChecks)
		}
		if stopped {
			o.Counter("assign.deadline_fallbacks").Add(1)
		}
		if pr.p.Seed != nil {
			if warmed {
				o.Counter("assign.incumbent_seeded").Add(1)
			} else {
				o.Counter("assign.seed_rejected").Add(1)
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, 0, 0, false, fmt.Errorf(
			"assign: no feasible on-chip assignment with %d memories (conflicts demand more)", maxMem)
	}
	binds, totalArea, totalPower, err := materializeOnChip(pr, maxMem, bestAssign)
	if err != nil {
		return nil, 0, 0, false, err
	}
	return binds, totalArea, totalPower, !exhausted && !stopped, nil
}

// offShared is the state the off-chip partition workers share.
type offShared struct {
	nextSub atomic.Int64
	found   atomic.Bool // some worker holds a feasible packing
	stop    atomic.Bool // ctx done observed (only honored once found)
}

// offWorker is one worker of the parallel set-partition scan.
type offWorker struct {
	pr   *problem
	n    int
	sh   *offShared
	done <-chan struct{}

	assignTo []int
	curSub   int

	found     bool
	bestPower float64
	bestParts [][]int
	bestSub   int

	partitions   int64
	cancelChecks int64
	halted       bool
}

// rgsPrefixes enumerates all restricted-growth prefixes of the given depth
// — the depth-d frontier of the sequential partition enumeration, in
// canonical order.
func rgsPrefixes(n, depth int) [][]int16 {
	var out [][]int16
	cur := make([]int16, depth)
	var rec func(i int, used int16)
	rec = func(i int, used int16) {
		if i == depth {
			out = append(out, append([]int16(nil), cur...))
			return
		}
		for m := int16(0); m <= used && int(m) < n; m++ {
			cur[i] = m
			nu := used
			if m == used {
				nu++
			}
			rec(i+1, nu)
		}
	}
	rec(0, 0)
	return out
}

func (w *offWorker) run(prefixes [][]int16) {
	for !w.halted && !w.sh.stop.Load() {
		idx := int(w.sh.nextSub.Add(1)) - 1
		if idx >= len(prefixes) {
			return
		}
		w.solve(idx, prefixes[idx])
	}
}

func (w *offWorker) solve(idx int, prefix []int16) {
	used := 0
	for i, m := range prefix {
		w.assignTo[i] = int(m)
		if int(m) == used {
			used++
		}
	}
	w.curSub = idx
	w.rec(len(prefix), used)
}

// rec completes the partition from position i, pricing each complete
// partition exactly as the sequential scan does. Cancellation is honored
// only once a feasible packing exists somewhere (the sequential contract:
// a feasible problem always yields a result).
func (w *offWorker) rec(i, used int) {
	if w.halted {
		return
	}
	if i == w.n {
		w.partitions++
		if w.partitions%cancelCheckInterval == 0 {
			if w.sh.stop.Load() {
				w.halted = true
				return
			}
			if w.done != nil && (w.found || w.sh.found.Load()) {
				w.cancelChecks++
				select {
				case <-w.done:
					w.sh.stop.Store(true)
					w.halted = true
					return
				default:
				}
			}
		}
		parts, total, feasible := w.pr.partitionPower(w.assignTo, used)
		if !feasible {
			return
		}
		if total < w.bestPower {
			w.bestPower = total
			w.bestParts = parts
			w.bestSub = w.curSub
			w.found = true
			w.sh.found.Store(true)
		}
		return
	}
	for m := 0; m <= used && m < w.n; m++ {
		w.assignTo[i] = m
		nu := used
		if m == used {
			nu++
		}
		w.rec(i+1, nu)
	}
}

// bestOffChipParallel splits the set-partition scan over the worker pool at
// a restricted-growth-string prefix frontier. There is nothing to prune in
// this exhaustive scan, so workers share only the subproblem counter and
// the stop state; the merge is deterministic by (power, prefix index).
func bestOffChipParallel(ctx context.Context, pr *problem, sp *obs.Span, wp *pool.Pool) ([]Binding, float64, bool, error) {
	n := len(pr.groups)
	depth := 1
	prefixes := rgsPrefixes(n, depth)
	for len(prefixes) < 2*wp.Workers() && depth < n-1 {
		depth++
		prefixes = rgsPrefixes(n, depth)
	}
	nw := wp.Workers()
	if nw > len(prefixes) {
		nw = len(prefixes)
	}
	sh := &offShared{}
	ws := make([]*offWorker, nw)
	for i := range ws {
		ws[i] = &offWorker{
			pr: pr, n: n, sh: sh, done: ctx.Done(),
			assignTo:  make([]int, n),
			bestPower: math.Inf(1),
			bestSub:   math.MaxInt,
		}
	}
	wp.ForEach(ctx, nw, func(i int) { ws[i].run(prefixes) })

	bestPower := math.Inf(1)
	var bestParts [][]int
	bestSub := math.MaxInt
	var partitions, cancelChecks int64
	for _, w := range ws {
		partitions += w.partitions
		cancelChecks += w.cancelChecks
		if w.found && (w.bestPower < bestPower || (w.bestPower == bestPower && w.bestSub < bestSub)) {
			bestPower, bestParts, bestSub = w.bestPower, w.bestParts, w.bestSub
		}
	}
	stopped := sh.stop.Load()
	sp.SetInt("offchip_partitions", partitions)
	sp.SetInt("offchip_splits", int64(len(prefixes)))
	if o := sp.Observer(); o != nil {
		o.Counter("assign.subtree_splits").Add(int64(len(prefixes)))
		if cancelChecks > 0 {
			o.Counter("assign.cancel_points").Add(cancelChecks)
		}
		if stopped {
			o.Counter("assign.deadline_fallbacks").Add(1)
		}
	}
	if math.IsInf(bestPower, 1) {
		return nil, 0, false, fmt.Errorf("assign: no feasible off-chip packing (port demand exceeds %d)", pr.p.MaxPorts)
	}
	binds, err := offChipBinds(pr, bestParts)
	if err != nil {
		return nil, 0, false, err
	}
	return binds, bestPower, !stopped, nil
}
