package assign

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/memlib"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// randomInstance builds a random assignment problem: 4..8 on-chip groups
// and 0/4/5 off-chip groups with varied sizes, widths, access
// multiplicities, and random conflict patterns. Deterministic per seed.
func randomInstance(seed int64) (*spec.Spec, []sbd.Pattern) {
	rng := rand.New(rand.NewSource(seed))
	b := spec.NewBuilder(fmt.Sprintf("rand%d", seed))
	nOn := 4 + rng.Intn(5)
	nOff := []int{0, 4, 5}[rng.Intn(3)]
	var names []string
	for i := 0; i < nOn; i++ {
		name := fmt.Sprintf("on%d", i)
		names = append(names, name)
		b.Group(name, int64(64<<uint(rng.Intn(5))), 2+2*rng.Intn(12))
	}
	for i := 0; i < nOff; i++ {
		name := fmt.Sprintf("off%d", i)
		names = append(names, name)
		b.Group(name, offWords<<uint(rng.Intn(2)), 4+4*rng.Intn(6))
	}
	b.Loop("l", 50_000+uint64(rng.Intn(100_000)))
	for _, name := range names {
		b.Read(name, float64(1+rng.Intn(4)))
		if rng.Intn(2) == 0 {
			b.Write(name, float64(1+rng.Intn(2)))
		}
	}
	var pats []sbd.Pattern
	for p := rng.Intn(3); p > 0; p-- {
		acc := map[string]int{}
		for _, name := range names {
			if rng.Intn(3) == 0 {
				acc[name] = 1 + rng.Intn(2)
			}
		}
		if len(acc) >= 2 {
			pats = append(pats, sbd.Pattern{Access: acc, Weight: uint64(100 + rng.Intn(2000))})
		}
	}
	return b.MustBuild(), pats
}

// TestParallelAssignMatchesSequential is the determinism property test of
// the tentpole: over random instances, the parallel search at every worker
// count returns results deeply equal — bindings, costs (exact float
// equality), group map, and the Optimal flag — to the sequential search.
func TestParallelAssignMatchesSequential(t *testing.T) {
	tech := memlib.Default()
	for seed := int64(0); seed < 12; seed++ {
		s, pats := randomInstance(seed)
		for _, count := range []int{1, 2, 3} {
			ref, refErr := Assign(s, pats, tech, count, Params{})
			for _, workers := range []int{1, 2, 8} {
				p := Params{Workers: pool.New(workers)}
				got, err := Assign(s, pats, tech, count, p)
				if (refErr == nil) != (err == nil) {
					t.Fatalf("seed %d count %d workers %d: err %v, sequential err %v",
						seed, count, workers, err, refErr)
				}
				if refErr != nil {
					continue
				}
				if !ref.Optimal || !got.Optimal {
					t.Fatalf("seed %d count %d workers %d: search did not complete (ref %v, got %v)",
						seed, count, workers, ref.Optimal, got.Optimal)
				}
				if got.Cost != ref.Cost {
					t.Fatalf("seed %d count %d workers %d: cost %+v != sequential %+v",
						seed, count, workers, got.Cost, ref.Cost)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("seed %d count %d workers %d: assignment diverged\n got: %+v\nwant: %+v",
						seed, count, workers, got, ref)
				}
			}
		}
	}
}

// TestParallelAssignAnytimeCancellation: an already-canceled context still
// yields the greedy incumbent (never an error) from the parallel path, with
// Optimal=false — the same anytime contract as the sequential search.
func TestParallelAssignAnytimeCancellation(t *testing.T) {
	s := mixedSpec(t)
	tech := memlib.Default()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := AssignContext(ctx, s, nil, tech, 2, Params{Workers: pool.New(8)})
	if err != nil {
		t.Fatalf("canceled parallel assign errored: %v", err)
	}
	if a.Optimal {
		t.Fatal("canceled search claims optimality")
	}
	if len(a.GroupMem) == 0 {
		t.Fatal("canceled search returned no incumbent")
	}
}

// TestParallelAssignCounters: the parallel path reports its split and
// search counters through the observer.
func TestParallelAssignCounters(t *testing.T) {
	s, pats := randomInstance(1)
	tech := memlib.Default()
	o := obs.New()
	sp := o.Start("test")
	_, err := Assign(s, pats, tech, 2, Params{Workers: pool.New(8), Obs: sp})
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	got := o.Counters()
	if got["assign.subtree_splits"] <= 0 {
		t.Fatalf("assign.subtree_splits = %d, want > 0 (counters: %v)",
			got["assign.subtree_splits"], got)
	}
	if got["assign.nodes"] <= 0 {
		t.Fatalf("assign.nodes = %d, want > 0", got["assign.nodes"])
	}
}

// TestParallelMatchesBruteForce reruns the brute-force cross-check through
// the parallel path: the shared-bound pruning must not cut the optimum.
func TestParallelMatchesBruteForce(t *testing.T) {
	tech := memlib.Default()
	for seed := 0; seed < 4; seed++ {
		b := spec.NewBuilder("bf")
		widths := []int{20, 4, 8, 12, 16, 2}
		for i, w := range widths {
			b.Group(groupName(i), int64(128<<uint(i%3)), w)
		}
		b.Loop("l", 100_000)
		for i := range widths {
			b.Read(groupName(i), float64(1+(i+seed)%3))
		}
		s := b.MustBuild()
		var pats []sbd.Pattern
		if seed%2 == 1 {
			pats = []sbd.Pattern{{
				Access: map[string]int{groupName(seed % 4): 1, groupName((seed + 1) % 4): 1},
				Weight: 1000,
			}}
		}
		for _, mem := range []int{2, 3} {
			want, feasible := bruteForceOnChip(t, s, pats, tech, mem, Params{})
			a, err := Assign(s, pats, tech, mem, Params{Workers: pool.New(8)})
			if !feasible {
				if err == nil {
					t.Fatalf("seed %d mem %d: brute force infeasible but Assign succeeded", seed, mem)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d mem %d: %v", seed, mem, err)
			}
			got := a.Cost.OnChipPower + areaWeight*a.Cost.OnChipArea
			if got > want+1e-6 || got < want-1e-6 {
				t.Fatalf("seed %d mem %d: parallel B&B %.6f != brute force %.6f", seed, mem, got, want)
			}
		}
	}
}
