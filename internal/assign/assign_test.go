package assign

import (
	"strings"
	"testing"

	"repro/internal/memlib"
	"repro/internal/sbd"
	"repro/internal/spec"
)

const offWords = 1024 * 1024

// mixedSpec: two off-chip groups and several on-chip groups with varied
// widths and access counts.
func mixedSpec(t *testing.T) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("mixed")
	b.Group("big1", offWords, 8)
	b.Group("big2", offWords, 2)
	b.Group("t20", 512, 20)
	b.Group("t10", 512, 10)
	b.Group("t8", 256, 8)
	b.Group("t2", 256, 2)
	b.Loop("l", 100_000)
	b.Read("big1", 2)
	b.Write("big1", 1)
	b.Read("big2", 1)
	b.Read("t20", 4)
	b.Write("t20", 2)
	b.Read("t10", 3)
	b.Read("t8", 1)
	b.Read("t2", 1)
	return b.MustBuild()
}

func TestAssignBasic(t *testing.T) {
	s := mixedSpec(t)
	tech := memlib.Default()
	a, err := Assign(s, nil, tech, 2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Optimal {
		t.Fatal("small problem not solved to optimality")
	}
	if len(a.OnChip) == 0 || len(a.OnChip) > 2 {
		t.Fatalf("%d on-chip memories, want 1..2", len(a.OnChip))
	}
	if len(a.OffChip) == 0 {
		t.Fatal("no off-chip memories for 1M-word groups")
	}
	// Every accessed group must be mapped.
	for _, g := range []string{"big1", "big2", "t20", "t10", "t8", "t2"} {
		if a.GroupMem[g] == "" {
			t.Errorf("group %s unmapped", g)
		}
	}
	if a.Cost.OnChipArea <= 0 || a.Cost.OnChipPower <= 0 || a.Cost.OffChipPower <= 0 {
		t.Fatalf("degenerate cost: %+v", a.Cost)
	}
	if a.Cost.TotalPower() != a.Cost.OnChipPower+a.Cost.OffChipPower {
		t.Fatal("TotalPower inconsistent")
	}
}

func TestOptimalNotWorseThanGreedy(t *testing.T) {
	s := mixedSpec(t)
	tech := memlib.Default()
	for _, n := range []int{1, 2, 3, 4} {
		opt, err := Assign(s, nil, tech, n, Params{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		gr, err := Greedy(s, nil, tech, n, Params{})
		if err != nil {
			t.Fatalf("n=%d greedy: %v", n, err)
		}
		optSum := opt.Cost.OnChipPower + areaWeight*opt.Cost.OnChipArea
		grSum := gr.Cost.OnChipPower + areaWeight*gr.Cost.OnChipArea
		if optSum > grSum+1e-9 {
			t.Fatalf("n=%d: optimal %.3f worse than greedy %.3f", n, optSum, grSum)
		}
	}
}

func TestBitwidthWasteSeparation(t *testing.T) {
	// Two groups, 20-bit and 2-bit, equal accesses. With 2 memories the
	// optimizer must separate them (avoiding 18 wasted bits on the narrow
	// group); the 1-memory cost must exceed the 2-memory cost in power.
	b := spec.NewBuilder("waste")
	b.Group("wide", 4096, 20)
	b.Group("narrow", 4096, 2)
	b.Loop("l", 1_000_000)
	b.Read("wide", 1)
	b.Read("narrow", 1)
	s := b.MustBuild()
	tech := memlib.Default()

	one, err := Assign(s, nil, tech, 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Assign(s, nil, tech, 2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(two.OnChip) != 2 {
		t.Fatalf("2-memory allocation used %d memories", len(two.OnChip))
	}
	if two.Cost.OnChipPower >= one.Cost.OnChipPower {
		t.Fatalf("separation did not cut power: %.3f vs %.3f",
			two.Cost.OnChipPower, one.Cost.OnChipPower)
	}
	// The wide and narrow group must not share a memory.
	if two.GroupMem["wide"] == two.GroupMem["narrow"] {
		t.Fatal("optimizer co-located 20-bit and 2-bit groups despite 2 memories")
	}
}

func TestConflictsForceSeparation(t *testing.T) {
	// Two on-chip groups accessed simultaneously: with MaxPorts 1 they
	// cannot share a memory.
	b := spec.NewBuilder("conf")
	b.Group("a", 256, 8)
	b.Group("b", 256, 8)
	b.Loop("l", 1000)
	b.Read("a", 1)
	b.Read("b", 1)
	s := b.MustBuild()
	pats := []sbd.Pattern{{Access: map[string]int{"a": 1, "b": 1}, Weight: 1000}}
	tech := memlib.Default()

	a2, err := Assign(s, pats, tech, 2, Params{MaxPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a2.GroupMem["a"] == a2.GroupMem["b"] {
		t.Fatal("conflicting groups share a 1-port memory")
	}
	if _, err := Assign(s, pats, tech, 1, Params{MaxPorts: 1}); err == nil {
		t.Fatal("1 memory with MaxPorts 1 should be infeasible")
	}
	// With 2 ports allowed, one memory becomes feasible but dual-ported.
	a1, err := Assign(s, pats, tech, 1, Params{MaxPorts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a1.OnChip[0].Mem.Ports != 2 {
		t.Fatalf("shared memory has %d ports, want 2", a1.OnChip[0].Mem.Ports)
	}
}

func TestSelfConflictForcesMultiport(t *testing.T) {
	b := spec.NewBuilder("self")
	b.Group("a", 256, 8)
	b.Loop("l", 1000)
	b.Read("a", 1)
	b.Read("a", 1)
	s := b.MustBuild()
	pats := []sbd.Pattern{{Access: map[string]int{"a": 2}, Weight: 1000}}
	a, err := Assign(s, pats, memlib.Default(), 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if a.OnChip[0].Mem.Ports != 2 {
		t.Fatalf("self-conflicting group got %d ports, want 2", a.OnChip[0].Mem.Ports)
	}
}

func TestOffChipMergedWidthRounding(t *testing.T) {
	// A 10-bit off-chip group must land in a 16-bit catalog device — the
	// paper's merged ridge+pyr observation.
	b := spec.NewBuilder("width")
	b.Group("merged", offWords, 10)
	b.Loop("l", 1000)
	b.Read("merged", 1)
	s := b.MustBuild()
	a, err := Assign(s, nil, memlib.Default(), 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.OffChip) != 1 || a.OffChip[0].Mem.Bits != 16 {
		t.Fatalf("off-chip binding = %+v, want one 16-bit device", a.OffChip)
	}
}

func TestOffChipPortPenalty(t *testing.T) {
	// The same group with and without a self-conflict pattern: the 2-port
	// version must cost much more off-chip power (Table 2's "no hierarchy"
	// effect).
	b := spec.NewBuilder("ports")
	b.Group("img", offWords, 8)
	b.Loop("l", 1_000_000)
	b.Read("img", 5)
	s := b.MustBuild()
	tech := memlib.Default()
	p1, err := Assign(s, nil, tech, 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	pats := []sbd.Pattern{{Access: map[string]int{"img": 2}, Weight: 1_000_000}}
	p2, err := Assign(s, pats, tech, 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Cost.OffChipPower < 1.5*p1.Cost.OffChipPower {
		t.Fatalf("2-port off-chip power %.1f not >= 1.5x 1-port %.1f",
			p2.Cost.OffChipPower, p1.Cost.OffChipPower)
	}
}

func TestSweepShapes(t *testing.T) {
	// Build a spec with many same-ish small groups: the allocation sweep
	// must show monotone non-increasing power, and area that eventually
	// rises again (per-memory overhead), with off-chip power constant.
	b := spec.NewBuilder("sweep")
	widths := []int{20, 20, 16, 12, 10, 8, 8, 6, 4, 2}
	for i, w := range widths {
		b.Group(groupName(i), 512, w)
	}
	b.Group("big", offWords, 8)
	b.Loop("l", 500_000)
	for i := range widths {
		b.Read(groupName(i), 1)
	}
	b.Read("big", 1)
	s := b.MustBuild()
	tech := memlib.Default()

	counts := []int{1, 2, 4, 6, 8, 10}
	as, ok, err := Sweep(s, nil, tech, counts, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != len(counts) {
		t.Fatalf("sweep dropped counts: %v", ok)
	}
	for i := 1; i < len(as); i++ {
		if as[i].Cost.OnChipPower > as[i-1].Cost.OnChipPower+1e-6 {
			t.Fatalf("power not non-increasing at %d memories: %.3f -> %.3f",
				ok[i], as[i-1].Cost.OnChipPower, as[i].Cost.OnChipPower)
		}
		if as[i].Cost.OffChipPower != as[0].Cost.OffChipPower {
			t.Fatalf("off-chip power changed during on-chip sweep")
		}
	}
	// Area at the largest allocation must exceed the area minimum
	// (overhead eventually wins).
	minArea := as[0].Cost.OnChipArea
	for _, a := range as {
		if a.Cost.OnChipArea < minArea {
			minArea = a.Cost.OnChipArea
		}
	}
	if last := as[len(as)-1].Cost.OnChipArea; last <= minArea {
		t.Fatalf("area at max allocation %.3f not above minimum %.3f", last, minArea)
	}
}

func groupName(i int) string {
	return "g" + string(rune('a'+i))
}

func TestAssignInvalidCount(t *testing.T) {
	s := mixedSpec(t)
	if _, err := Assign(s, nil, memlib.Default(), 0, Params{}); err == nil {
		t.Fatal("zero on-chip count accepted")
	}
}

func TestUnaccessedGroupIgnored(t *testing.T) {
	b := spec.NewBuilder("dead")
	b.Group("live", 256, 8)
	b.Group("dead", 256, 8)
	b.Loop("l", 10)
	b.Read("live", 1)
	s := b.MustBuild()
	a, err := Assign(s, nil, memlib.Default(), 4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, mapped := a.GroupMem["dead"]; mapped {
		t.Fatal("never-accessed group was allocated storage")
	}
	if len(a.OnChip) != 1 {
		t.Fatalf("%d memories allocated for one live group", len(a.OnChip))
	}
}

func TestNodeBudgetFallsBackToGreedy(t *testing.T) {
	s := mixedSpec(t)
	a, err := Assign(s, nil, memlib.Default(), 3, Params{NodeBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Optimal {
		t.Fatal("budget-capped search claims optimality")
	}
	if len(a.OnChip) == 0 {
		t.Fatal("no solution despite greedy incumbent")
	}
}

func TestInPlaceSharesStorage(t *testing.T) {
	// Two equal groups with disjoint lifetimes: with in-place mapping one
	// memory holds both in the space of one.
	b := spec.NewBuilder("staged")
	b.Group("early", 4096, 8)
	b.Group("late", 4096, 8)
	b.Loop("phase1", 1000)
	b.Write("early", 1)
	b.Read("early", 1)
	b.Loop("phase2", 1000)
	b.Write("late", 1)
	b.Read("late", 1)
	s := b.MustBuild()
	tech := memlib.Default()

	plain, err := Assign(s, nil, tech, 1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Assign(s, nil, tech, 1, Params{InPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.OnChip[0].Mem.Words != 8192 {
		t.Fatalf("plain memory words = %d, want 8192", plain.OnChip[0].Mem.Words)
	}
	if ip.OnChip[0].Mem.Words != 4096 {
		t.Fatalf("in-place memory words = %d, want 4096", ip.OnChip[0].Mem.Words)
	}
	if ip.Cost.OnChipArea >= plain.Cost.OnChipArea {
		t.Fatalf("in-place area %.2f not below plain %.2f",
			ip.Cost.OnChipArea, plain.Cost.OnChipArea)
	}
	if ip.Cost.OnChipPower >= plain.Cost.OnChipPower {
		t.Fatalf("in-place power %.2f not below plain %.2f (smaller memory, cheaper accesses)",
			ip.Cost.OnChipPower, plain.Cost.OnChipPower)
	}
}

func TestInPlaceOverlappingLifetimesNoSharing(t *testing.T) {
	// Overlapping lifetimes must not share storage.
	b := spec.NewBuilder("overlap")
	b.Group("x", 2048, 8)
	b.Group("y", 2048, 8)
	b.Loop("l", 1000)
	b.Read("x", 1)
	b.Read("y", 1)
	s := b.MustBuild()
	ip, err := Assign(s, nil, memlib.Default(), 1, Params{InPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if ip.OnChip[0].Mem.Words != 4096 {
		t.Fatalf("overlapping groups shared storage: %d words", ip.OnChip[0].Mem.Words)
	}
}

func TestInPlaceSearchStateRestoration(t *testing.T) {
	// The branch-and-bound must not corrupt live-word profiles across
	// backtracking: results with and without the exact search must agree
	// for a config where greedy is already optimal.
	b := spec.NewBuilder("bt")
	b.Group("a", 1024, 8)
	b.Group("b", 1024, 8)
	b.Group("c", 512, 16)
	b.Loop("p1", 100)
	b.Read("a", 1)
	b.Loop("p2", 100)
	b.Read("b", 1)
	b.Loop("p3", 100)
	b.Read("c", 1)
	s := b.MustBuild()
	full, err := Assign(s, nil, memlib.Default(), 2, Params{InPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute each memory's words from scratch and compare.
	for _, bind := range full.OnChip {
		var st memState
		pr := buildProblem(s, onGroups(s, bind.Groups), nil, memlib.Default(), Params{InPlace: true, OnChipMaxWords: 64 * 1024, MaxPorts: 8, NodeBudget: 1000})
		members := make([]int, len(bind.Groups))
		for i := range members {
			members[i] = i
		}
		st.recompute(pr, members)
		if st.words != bind.Mem.Words {
			t.Fatalf("memory %s words %d inconsistent with recompute %d",
				bind.Mem.Name, bind.Mem.Words, st.words)
		}
	}
}

func onGroups(s *spec.Spec, names []string) []spec.BasicGroup {
	var out []spec.BasicGroup
	for _, n := range names {
		g, _ := s.Group(n)
		out = append(out, g)
	}
	return out
}

// bruteForceOnChip enumerates every partition of the on-chip groups into
// exactly maxMem memories and returns the minimal objective, as a reference
// for the branch-and-bound.
func bruteForceOnChip(t *testing.T, s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, maxMem int, p Params) (float64, bool) {
	t.Helper()
	p.normalize()
	onG, _ := partition(s, p)
	if maxMem > len(onG) {
		maxMem = len(onG)
	}
	pr := buildProblem(s, onG, pats, tech, p)
	n := len(onG)
	assignTo := make([]int, n)
	best := -1.0
	found := false
	var rec func(i, used int)
	rec = func(i, used int) {
		if i == n {
			if used != maxMem {
				return
			}
			members := make([][]int, maxMem)
			for gi, m := range assignTo {
				members[m] = append(members[m], gi)
			}
			total := 0.0
			for _, ms := range members {
				var st memState
				st.recompute(pr, ms)
				area, power, err := pr.onChipCost(&st)
				if err != nil {
					return
				}
				total += power + areaWeight*area
			}
			if !found || total < best {
				best, found = total, true
			}
			return
		}
		for m := 0; m <= used && m < maxMem; m++ {
			assignTo[i] = m
			nu := used
			if m == used {
				nu++
			}
			rec(i+1, nu)
		}
	}
	rec(0, 0)
	return best, found
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	tech := memlib.Default()
	// Several small instances with varied widths, access weights and
	// conflict patterns.
	for seed := 0; seed < 6; seed++ {
		b := spec.NewBuilder("bf")
		widths := []int{20, 4, 8, 12, 16, 2}
		for i, w := range widths {
			b.Group(groupName(i), int64(128<<uint(i%3)), w)
		}
		b.Loop("l", 100_000)
		var ids []int
		for i := range widths {
			ids = append(ids, b.Read(groupName(i), float64(1+(i+seed)%3)))
		}
		_ = ids
		s := b.MustBuild()
		var pats []sbd.Pattern
		if seed%2 == 1 {
			pats = []sbd.Pattern{{
				Access: map[string]int{groupName(seed % 4): 1, groupName((seed + 1) % 4): 1},
				Weight: 1000,
			}}
		}
		for _, mem := range []int{1, 2, 3} {
			want, feasible := bruteForceOnChip(t, s, pats, tech, mem, Params{})
			a, err := Assign(s, pats, tech, mem, Params{})
			if !feasible {
				if err == nil {
					t.Fatalf("seed %d mem %d: brute force infeasible but Assign succeeded", seed, mem)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d mem %d: %v", seed, mem, err)
			}
			got := a.Cost.OnChipPower + areaWeight*a.Cost.OnChipArea
			if got > want+1e-6 {
				t.Fatalf("seed %d mem %d: B&B %.4f worse than brute force %.4f",
					seed, mem, got, want)
			}
			if got < want-1e-6 {
				t.Fatalf("seed %d mem %d: B&B %.4f below brute force %.4f (reference broken)",
					seed, mem, got, want)
			}
		}
	}
}

func TestInterconnectMakesPowerMinimumInterior(t *testing.T) {
	// With the bus model enabled, the Table-4 sweep's power must rise again
	// at large allocations — the effect the paper predicts but does not
	// model ("the power consumption will also rise again due to the
	// interconnect-related power").
	b := spec.NewBuilder("sweep")
	widths := []int{20, 20, 16, 12, 10, 8, 8, 6, 4, 2, 14, 18}
	for i, w := range widths {
		b.Group(groupName(i), 512, w)
	}
	b.Loop("l", 1_000_000)
	for i := range widths {
		b.Read(groupName(i), 1)
	}
	s := b.MustBuild()
	tech := memlib.Default().WithInterconnect()

	counts := []int{1, 2, 4, 6, 8, 10, 12}
	as, ok, err := Sweep(s, nil, tech, counts, Params{})
	if err != nil {
		t.Fatal(err)
	}
	minIdx := 0
	for i, a := range as {
		if a.Cost.OnChipPower < as[minIdx].Cost.OnChipPower {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(as)-1 {
		powers := make([]float64, len(as))
		for i, a := range as {
			powers[i] = a.Cost.OnChipPower
		}
		t.Fatalf("power minimum at boundary (count %d): %v over %v", ok[minIdx], powers, ok)
	}
	// Without the bus model the same sweep is monotone to the end.
	plain, _, err := Sweep(s, nil, memlib.Default(), counts, Params{})
	if err != nil {
		t.Fatal(err)
	}
	last := len(plain) - 1
	if plain[last].Cost.OnChipPower > plain[0].Cost.OnChipPower {
		t.Fatal("plain sweep should favor many memories")
	}
}

func TestBusModel(t *testing.T) {
	var off memlib.BusModel
	if off.Enabled() {
		t.Fatal("zero bus model enabled")
	}
	if off.Area(5) != 0 || off.Power(5, 1e6) != 0 {
		t.Fatal("zero bus model has cost")
	}
	bus := memlib.Default().WithInterconnect().Bus
	if !bus.Enabled() {
		t.Fatal("WithInterconnect bus disabled")
	}
	if bus.Power(8, 1e6) <= bus.Power(2, 1e6) {
		t.Fatal("bus power not increasing with memory count")
	}
	if bus.Power(0, 1e6) != 0 {
		t.Fatal("bus power with zero memories")
	}
}

func TestBindingNames(t *testing.T) {
	s := mixedSpec(t)
	a, err := Assign(s, nil, memlib.Default(), 2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range a.OnChip {
		if !strings.HasPrefix(b.Mem.Name, "sram") {
			t.Errorf("on-chip name %q", b.Mem.Name)
		}
	}
	for _, b := range a.OffChip {
		if !strings.Contains(b.Mem.Name, "EDO") {
			t.Errorf("off-chip name %q lacks device", b.Mem.Name)
		}
	}
}
