package assign

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/memlib"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// feasibleInstance scans randomInstance seeds for one that completes at the
// given memory count (and, when minOnChip > 0, whose optimum uses at least
// that many on-chip memories), returning the instance with its cold result.
func feasibleInstance(t *testing.T, tech *memlib.Tech, count, minOnChip int) (*spec.Spec, []sbd.Pattern, *Assignment) {
	t.Helper()
	for seed := int64(0); seed < 50; seed++ {
		s, pats := randomInstance(seed)
		ref, err := Assign(s, pats, tech, count, Params{})
		if err != nil || !ref.Optimal || len(ref.OnChip) < minOnChip {
			continue
		}
		return s, pats, ref
	}
	t.Fatalf("no feasible random instance at count %d", count)
	return nil, nil, nil
}

// seedFrom flattens a completed assignment's on-chip bindings into the
// Params.Seed shape (group name -> memory slot), the same way the server
// builds warm-start seeds from cached responses.
func seedFrom(a *Assignment) map[string]int {
	seed := make(map[string]int)
	for mi, b := range a.OnChip {
		for _, g := range b.Groups {
			seed[g] = mi
		}
	}
	return seed
}

// TestWarmSeedMatchesCold is the warm-start equivalence pin: over random
// instances, a completed search returns results deeply equal to the cold
// search no matter what seed it was given — its own optimum (the tightest
// possible bound, where ties must still resolve identically), a perturbed
// assignment, and a nonsense seed. Sequential and parallel paths both.
func TestWarmSeedMatchesCold(t *testing.T) {
	tech := memlib.Default()
	engagedTotal := int64(0)
	for seed := int64(0); seed < 12; seed++ {
		s, pats := randomInstance(seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		for _, count := range []int{2, 3} {
			ref, refErr := Assign(s, pats, tech, count, Params{})
			if refErr != nil {
				continue
			}
			if !ref.Optimal {
				t.Fatalf("seed %d count %d: cold search did not complete", seed, count)
			}

			// Candidate seeds: the optimum itself, a perturbation of it, and
			// one that cannot be feasible (all groups in one slot when the
			// search uses several). Each may engage or be rejected — the
			// completed result must be identical either way.
			perfect := seedFrom(ref)
			perturbed := seedFrom(ref)
			for g := range perturbed {
				if rng.Intn(3) == 0 {
					perturbed[g] = rng.Intn(count)
				}
			}
			collapsed := make(map[string]int)
			for g := range perfect {
				collapsed[g] = 0
			}
			for name, sd := range map[string]map[string]int{
				"perfect": perfect, "perturbed": perturbed, "collapsed": collapsed,
			} {
				for _, workers := range []int{1, 4} {
					o := obs.New()
					span := o.Start("test")
					p := Params{Seed: sd, Obs: span}
					if workers > 1 {
						p.Workers = pool.New(workers)
					}
					got, err := Assign(s, pats, tech, count, p)
					span.End()
					if err != nil {
						t.Fatalf("seed %d count %d %s workers %d: %v", seed, count, name, workers, err)
					}
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("seed %d count %d %s workers %d: warmed result diverged\n got: %+v\nwant: %+v",
							seed, count, name, workers, got, ref)
					}
					c := o.Counters()
					engaged, rejected := c["assign.incumbent_seeded"], c["assign.seed_rejected"]
					if engaged+rejected == 0 {
						t.Fatalf("seed %d count %d %s workers %d: neither incumbent_seeded nor seed_rejected fired (%v)",
							seed, count, name, workers, c)
					}
					engagedTotal += engaged
				}
			}
		}
	}
	// A seed only engages when it beats the greedy incumbent — on easy
	// instances greedy is already optimal and the perfect seed is redundant.
	// Across the whole sweep at least some instances must be hard enough
	// that the seed actually tightened the bound, or warm starts do nothing.
	if engagedTotal == 0 {
		t.Fatal("no seed engaged across the sweep; warm starts never tighten the incumbent")
	}
}

// TestWarmSeedForeignProblem: a seed from a structurally different problem
// (wrong group names) is rejected, never crashes, and leaves the result
// untouched.
func TestWarmSeedForeignProblem(t *testing.T) {
	tech := memlib.Default()
	s, pats, ref := feasibleInstance(t, tech, 2, 0)
	foreign := map[string]int{"no-such-group": 0, "also-missing": 1}
	o := obs.New()
	span := o.Start("test")
	got, err := Assign(s, pats, tech, 2, Params{Seed: foreign, Obs: span})
	span.End()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("foreign seed changed the result\n got: %+v\nwant: %+v", got, ref)
	}
	c := o.Counters()
	if c["assign.seed_rejected"] == 0 {
		t.Fatalf("foreign seed was not counted as rejected (%v)", c)
	}
	if c["assign.incumbent_seeded"] != 0 {
		t.Fatalf("foreign seed claimed to engage (%v)", c)
	}
}

// TestWarmSeedRejectedOnSlotCountMismatch: a seed that maps every group
// into fewer distinct slots than the allocation count could undercut every
// real search leaf (the mustOpen rule makes each leaf use all memories), so
// it must be rejected rather than adopted as an unsound bound.
func TestWarmSeedRejectedOnSlotCountMismatch(t *testing.T) {
	tech := memlib.Default()
	s, pats, ref := feasibleInstance(t, tech, 3, 3)
	under := seedFrom(ref)
	for g := range under {
		under[g] = 0 // one slot for everything
	}
	o := obs.New()
	span := o.Start("test")
	got, err := Assign(s, pats, tech, 3, Params{Seed: under, Obs: span})
	span.End()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("undercutting seed changed the result")
	}
	if c := o.Counters(); c["assign.seed_rejected"] == 0 {
		t.Fatalf("single-slot seed for a 3-memory search was not rejected (%v)", c)
	}
}

// TestWarmSeedPartialCoverage: a seed missing one on-chip group is
// rejected.
func TestWarmSeedPartialCoverage(t *testing.T) {
	tech := memlib.Default()
	s, pats, ref := feasibleInstance(t, tech, 2, 0)
	partial := seedFrom(ref)
	for g := range partial {
		delete(partial, g)
		break
	}
	if len(partial) == len(seedFrom(ref)) {
		t.Fatal("could not build a partial seed")
	}
	o := obs.New()
	span := o.Start("test")
	got, err := Assign(s, pats, tech, 2, Params{Seed: partial, Obs: span})
	span.End()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("partial seed changed the result")
	}
	if c := o.Counters(); c["assign.seed_rejected"] == 0 {
		t.Fatalf("partial seed was not rejected (%v)", c)
	}
}

// TestWarmSeedCrossInstance mimics the server's actual warm path: the seed
// comes from a *neighbouring* problem (same structure, different seed of
// the generator), not from this problem's own optimum.
func TestWarmSeedCrossInstance(t *testing.T) {
	tech := memlib.Default()
	pairs := 0
	for seed := int64(0); seed < 10; seed += 2 {
		sa, pa := randomInstance(seed)
		sb, pb := randomInstance(seed + 1)
		donor, err := Assign(sa, pa, tech, 2, Params{})
		if err != nil {
			continue
		}
		ref, err := Assign(sb, pb, tech, 2, Params{})
		if err != nil {
			continue
		}
		got, err := Assign(sb, pb, tech, 2, Params{Seed: seedFrom(donor)})
		if err != nil {
			t.Fatalf("pair %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("pair %d: neighbour seed changed the result\n got: %+v\nwant: %+v", seed, got, ref)
		}
		pairs++
	}
	if pairs == 0 {
		t.Fatal("no usable instance pair")
	}
}
