// Cross-node search distribution: the branch-and-bound's canonical depth-k
// subtree splits (see parallel.go) are deterministic functions of the
// problem, so a split is shippable as (depth, index range, seed bound) —
// the receiving node re-derives the identical frontier and solves its range
// with the same worker rules. The merge is the same (cost, lowest canonical
// subproblem index) rule as the in-process parallel merge, which extends
// PR 4's determinism-at-any-worker-count invariant to any node count:
// completed searches return byte-identical results whether the ranges ran
// on one node or many.
//
// The incumbent exchange (BoundShare) is layered the same way the shared
// in-process bound is: external costs prune with strict > only, so a
// subtree that could contain a co-optimal solution is never cut by another
// node's progress — a lost or delayed broadcast costs pruning power, never
// correctness.
package assign

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/memlib"
	"repro/internal/obs"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// BoundShare is an incumbent-cost exchange between searches of the same
// keyed problem (hedged duplicates on other nodes, distributed subtree
// ranges). Costs travel as math.Float64bits — non-negative costs order
// like their bit patterns, so merging is a monotone CAS-min.
//
// Best may return a stale or missing bound at any time; Publish may be
// lossy. Consumers prune with strict > against Best's value and publish
// only costs of feasible solutions of the keyed problem (or upper bounds
// derived from one), which is what keeps the exchange sound.
type BoundShare interface {
	Best(key string) (bits uint64, ok bool)
	Publish(key string, bits uint64)
}

// SubtreeJob describes one branch-and-bound ready for distributed
// execution. The frontier itself is not shipped: it is the canonical
// depth-Depth prefix enumeration under the SeedBits bound, which any node
// re-derives identically from the same problem (NumPrefixes lets the
// receiver verify the reconstruction before solving).
type SubtreeJob struct {
	OnChipCount int    // memory count of the search, already clamped
	Depth       int    // split depth of the prefix frontier
	NumPrefixes int    // expected frontier size
	SeedBits    uint64 // entry incumbent bound (greedy/warm), as Float64bits
	NodeBudget  int    // per-range node budget
	ShareKey    string // BoundShare key; empty disables the exchange
}

// SubtreeResult is the outcome of solving one contiguous prefix range.
// Assign is group index -> memory for the range's best leaf (empty when
// Found is false); BestSub is the canonical subproblem index that leaf was
// found under, the deterministic tie-breaker of the merge.
type SubtreeResult struct {
	Found    bool
	CostBits uint64
	BestSub  int
	Assign   []int
	Nodes    int64
	Optimal  bool
}

// DistributeFunc farms a job's prefix ranges out to peer nodes. The
// callback must return results covering every index in [0, NumPrefixes)
// (recomputing failed ranges itself, e.g. locally via SolveSubtree), or
// ok=false — the search then falls back to the local path. The spec and
// patterns are the problem identity a peer needs to rebuild the search.
type DistributeFunc func(ctx context.Context, s *spec.Spec, pats []sbd.Pattern, job SubtreeJob) ([]SubtreeResult, bool)

// shareKey derives the full BoundShare key of this search: the caller's
// namespace (Params.ShareKey, typically the serving layer's canonical
// request key) plus everything that distinguishes this branch-and-bound
// within the request — the memory count, the group set with its access
// counts, and the conflict-pattern columns. Costs published under one key
// must be feasible costs of exactly this problem; keying by the full
// discriminator string (never a hash of it) is what rules out a collision
// pruning the true optimum.
func (pr *problem) shareKey(maxMem int) string {
	base := pr.p.ShareKey
	if base == "" || pr.p.Share == nil {
		return ""
	}
	var sb strings.Builder
	sb.Grow(len(base) + 64*len(pr.groups))
	sb.WriteString(base)
	sb.WriteString("|bb|")
	sb.WriteString(strconv.Itoa(maxMem))
	for gi := range pr.groups {
		g := &pr.groups[gi]
		sb.WriteByte('|')
		sb.WriteString(g.Name)
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(g.Words, 10))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(g.Bits))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(pr.acc[gi], 10))
		for k, pi := range pr.patIdx[gi] {
			sb.WriteByte(',')
			sb.WriteString(strconv.Itoa(pi))
			sb.WriteByte('x')
			sb.WriteString(strconv.Itoa(pr.patVal[gi][k]))
		}
		if pr.p.InPlace {
			iv := pr.life[gi]
			sb.WriteString(",L")
			sb.WriteString(strconv.Itoa(iv.First))
			sb.WriteByte('-')
			sb.WriteString(strconv.Itoa(iv.Last))
		}
	}
	return sb.String()
}

// branchAndBoundDistributed runs the on-chip search through the Distribute
// hook. handled=false means the hook declined (too small a frontier, dead
// context, peer failure) and the caller should run the local path instead —
// distribution is an optimization layer, never a correctness dependency.
func branchAndBoundDistributed(ctx context.Context, pr *problem, maxMem int, sp *obs.Span) (binds []Binding, area, power float64, optimal, handled bool, err error) {
	d := pr.p.Distribute
	if d == nil || pr.p.DistributeWidth < 2 || pr.s == nil {
		return nil, 0, 0, false, false, nil
	}
	// Entry state: bitwise identical to the local searches — shared
	// precomputation, greedy incumbent, optional warm-start seed.
	pre := pr.bbPrecompute()
	prog := pr.p.Progress
	prog.SetBound(pre.lbTail[0] + float64(maxMem)*pre.emptyTerm)
	gAssign, gCost, gOK := greedyIncumbent(pr, maxMem, &pre)
	seed := math.Inf(1)
	if gOK {
		seed = gCost
		prog.SetIncumbent(gCost)
	}
	warmed := false
	var wAssign []int
	if pr.p.Seed != nil {
		if a, sCost, ok := seedIncumbent(pr, maxMem, &pre); ok {
			if sb := math.Nextafter(sCost, math.Inf(1)); sb < seed {
				seed, wAssign, warmed = sb, a, true
				prog.SetIncumbent(sCost)
			}
		}
	}
	select {
	case <-ctx.Done():
		// An already-expired deadline wants the local anytime path, which
		// returns the greedy incumbent immediately.
		return nil, 0, 0, false, false, nil
	default:
	}
	prefixes, depth, visited := chooseSplit(pr, maxMem, &pre, seed, pr.p.DistributeWidth)
	if len(prefixes) < 2 {
		return nil, 0, 0, false, false, nil
	}
	key := pr.shareKey(maxMem)
	if key != "" && gOK {
		// Seed the exchange with the entry bound so peers start tight.
		pr.p.Share.Publish(key, math.Float64bits(seed))
	}
	job := SubtreeJob{
		OnChipCount: maxMem,
		Depth:       depth,
		NumPrefixes: len(prefixes),
		SeedBits:    math.Float64bits(seed),
		NodeBudget:  pr.p.NodeBudget,
		ShareKey:    key,
	}
	results, ok := d(ctx, pr.s, pr.pats, job)
	if !ok {
		return nil, 0, 0, false, false, nil
	}

	// Deterministic merge: same rule as the in-process parallel merge —
	// minimum cost, ties by lowest canonical subproblem index, greedy at
	// -1, the warm seed at MaxInt (ranges record only strict improvements
	// below the seed bound, so any range candidate beats it on cost alone).
	bestCost := math.Inf(1)
	var bestAssign []int
	bestSub := math.MaxInt
	if gOK {
		bestCost, bestAssign, bestSub = gCost, gAssign, -1
	}
	if warmed {
		bestCost, bestAssign, bestSub = seed, wAssign, math.MaxInt
	}
	optimal = true
	nodes := int64(visited)
	prog.AddNodes(int64(visited))
	for i := range results {
		r := &results[i]
		nodes += r.Nodes
		if !r.Optimal {
			optimal = false
		}
		if !r.Found {
			continue
		}
		if len(r.Assign) != len(pr.groups) {
			return nil, 0, 0, false, false, nil // malformed result: fall back to local
		}
		c := math.Float64frombits(r.CostBits)
		if c < bestCost || (c == bestCost && r.BestSub < bestSub) {
			bestCost, bestAssign, bestSub = c, r.Assign, r.BestSub
		}
	}
	if sp != nil {
		sp.SetInt("nodes", nodes)
		sp.SetInt("subtree_splits", int64(len(prefixes)))
		sp.SetInt("split_depth", int64(depth))
		sp.SetInt("distributed", 1)
		opt := int64(0)
		if optimal {
			opt = 1
		}
		sp.SetInt("optimal", opt)
		o := sp.Observer()
		o.Counter("assign.nodes").Add(nodes)
		o.Counter("assign.subtree_splits").Add(int64(len(prefixes)))
		o.Counter("assign.distributed_searches").Add(1)
		if pr.p.Seed != nil {
			if warmed {
				o.Counter("assign.incumbent_seeded").Add(1)
			} else {
				o.Counter("assign.seed_rejected").Add(1)
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		return nil, 0, 0, false, true, fmt.Errorf(
			"assign: no feasible on-chip assignment with %d memories (conflicts demand more)", maxMem)
	}
	binds, area, power, err = materializeOnChip(pr, maxMem, bestAssign)
	if err != nil {
		return nil, 0, 0, false, true, err
	}
	return binds, area, power, optimal, true, nil
}

// SolveSubtree solves the contiguous prefix range [from, to) of a
// distributed branch-and-bound on this node: it rebuilds the problem from
// the spec/patterns/tech triple, re-derives the canonical depth-Depth
// frontier under the job's seed bound (verifying it matches NumPrefixes),
// and runs the standard subtree workers over the range. The result merges
// into the front node's search under the deterministic (cost, index) rule.
//
// p carries the same knobs the front node's Params did (threshold, ports,
// in-place, worker pool, BoundShare); NodeBudget is taken from the job.
func SolveSubtree(ctx context.Context, s *spec.Spec, pats []sbd.Pattern, tech *memlib.Tech, p Params, job SubtreeJob, from, to int) (SubtreeResult, error) {
	p.normalize()
	p.NodeBudget = job.NodeBudget
	onG, _ := partition(s, p)
	pr := buildProblem(s, onG, pats, tech, p)
	n := len(pr.groups)
	maxMem := job.OnChipCount
	if n == 0 || maxMem < 1 || maxMem > n {
		return SubtreeResult{}, fmt.Errorf("assign: subtree job count %d infeasible for %d on-chip groups", maxMem, n)
	}
	if job.Depth < 1 || job.Depth >= n {
		return SubtreeResult{}, fmt.Errorf("assign: subtree depth %d out of range for %d groups", job.Depth, n)
	}
	pre := pr.bbPrecompute()
	seed := math.Float64frombits(job.SeedBits)
	mems := newMemStates(pr, maxMem)
	prefixes, visited := bbPrefixes(pr, maxMem, job.Depth, &pre, seed, mems)
	if len(prefixes) != job.NumPrefixes {
		return SubtreeResult{}, fmt.Errorf(
			"assign: frontier mismatch: rebuilt %d prefixes, job expects %d (diverged problem state)",
			len(prefixes), job.NumPrefixes)
	}
	if from < 0 || to > len(prefixes) || from >= to {
		return SubtreeResult{}, fmt.Errorf("assign: subtree range [%d,%d) out of [0,%d)", from, to, len(prefixes))
	}

	sh := &bbShared{}
	sh.bound.Store(job.SeedBits)
	sh.nodes.Store(int64(visited))
	sh.nextSub.Store(int64(from))
	if p.Share != nil && job.ShareKey != "" {
		sh.share, sh.key = p.Share, job.ShareKey
		sh.refreshExternal()
	}
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return SubtreeResult{Nodes: int64(visited)}, nil // anytime: nothing found, not optimal
		default:
		}
	}
	nw := 1
	if wp := p.Workers; wp.Workers() > 1 {
		nw = wp.Workers()
	}
	if nw > to-from {
		nw = to - from
	}
	workers := make([]*bbWorker, nw)
	for i := range workers {
		workers[i] = newBBWorker(pr, &pre, sh, maxMem, seed, done)
	}
	ranged := prefixes[:to]
	if nw > 1 {
		p.Workers.ForEach(ctx, nw, func(i int) { workers[i].run(ranged) })
	} else {
		workers[0].run(ranged)
	}

	res := SubtreeResult{CostBits: math.Float64bits(math.Inf(1)), BestSub: math.MaxInt}
	nodes := int64(visited)
	bestCost := math.Inf(1)
	for _, w := range workers {
		nodes += w.nodes
		if w.found && (w.bestCost < bestCost || (w.bestCost == bestCost && w.bestSub < res.BestSub)) {
			bestCost = w.bestCost
			res.Found = true
			res.CostBits = math.Float64bits(w.bestCost)
			res.BestSub = w.bestSub
			res.Assign = w.bestAssign
		}
	}
	res.Nodes = nodes
	res.Optimal = sh.state.Load() == 0
	return res, nil
}
