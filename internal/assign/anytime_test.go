package assign

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/memlib"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// anytimeProblem is a randomly generated on-chip-only assignment problem.
// Keeping every group under the threshold isolates the anytime property to
// the branch-and-bound: Greedy runs the full off-chip partition search, so
// mixing in off-chip groups would compare different off-chip organizations.
type anytimeProblem struct {
	spec  *spec.Spec
	pats  []sbd.Pattern
	count int
}

// genProblem derives a problem from a random source: 3..10 on-chip groups
// with varied widths and access counts, an optional conflict pattern, and a
// 1..4 memory allocation.
func genProblem(r *rand.Rand) anytimeProblem {
	n := 3 + r.Intn(8)
	b := spec.NewBuilder("anytime")
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("g%d", i)
		words := int64(16 << r.Intn(9)) // 16 .. 4096 words: always on-chip
		bits := 1 + r.Intn(24)
		b.Group(names[i], words, bits)
	}
	b.Loop("l", uint64(1000+r.Intn(1_000_000)))
	for i := 0; i < n; i++ {
		b.Read(names[i], float64(1+r.Intn(6)))
		if r.Intn(2) == 0 {
			b.Write(names[i], float64(1+r.Intn(3)))
		}
	}
	s := b.MustBuild()

	var pats []sbd.Pattern
	if r.Intn(2) == 0 {
		// One random simultaneity pattern over a pair of groups: forces a
		// port constraint the assignment must respect.
		acc := map[string]int{
			names[r.Intn(n)]: 1 + r.Intn(2),
			names[r.Intn(n)]: 1 + r.Intn(2),
		}
		pats = append(pats, sbd.Pattern{Access: acc, Weight: 1000})
	}
	return anytimeProblem{spec: s, pats: pats, count: 1 + r.Intn(4)}
}

// checkValid asserts structural validity of an assignment: every accessed
// group mapped to exactly one memory, the allocation bound respected, and
// every memory's ports within the configured cap.
func checkValid(t *testing.T, p anytimeProblem, a *Assignment) {
	t.Helper()
	if a == nil {
		t.Fatal("nil assignment")
	}
	if len(a.OnChip) > p.count {
		t.Fatalf("%d on-chip memories, allocated %d", len(a.OnChip), p.count)
	}
	for _, g := range p.spec.Groups {
		if p.spec.AccessesPerFrame(g.Name) == 0 {
			continue
		}
		if a.GroupMem[g.Name] == "" {
			t.Fatalf("group %s unmapped", g.Name)
		}
	}
	pp := Params{}
	pp.normalize()
	for _, bind := range a.OnChip {
		if bind.Mem.Ports < 1 || bind.Mem.Ports > pp.MaxPorts {
			t.Fatalf("memory %s has %d ports (cap %d)", bind.Mem.Name, bind.Mem.Ports, pp.MaxPorts)
		}
		// The memory's port count must cover the worst simultaneity its
		// members see in any conflict pattern.
		for _, pt := range p.pats {
			demand := 0
			for _, g := range bind.Groups {
				demand += pt.Access[g]
			}
			if demand > bind.Mem.Ports {
				t.Fatalf("memory %s: pattern demands %d ports, has %d",
					bind.Mem.Name, demand, bind.Mem.Ports)
			}
		}
	}
}

// TestAnytimeAssignProperty is the testing/quick property of the anytime
// path: under an already-canceled context, AssignContext must return a
// valid assignment no costlier than the greedy baseline, flagged
// Optimal=false — never a panic, an error, or nil.
func TestAnytimeAssignProperty(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	tech := memlib.Default()

	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := genProblem(r)
		a, err := AssignContext(canceled, p.spec, p.pats, tech, p.count, Params{})
		if err != nil {
			t.Logf("seed %d: error: %v", seed, err)
			return false
		}
		if a.Optimal {
			t.Logf("seed %d: canceled search claims optimality", seed)
			return false
		}
		checkValid(t, p, a)
		gr, err := Greedy(p.spec, p.pats, tech, p.count, Params{})
		if err != nil {
			t.Logf("seed %d: greedy: %v", seed, err)
			return false
		}
		got := a.Cost.OnChipPower + areaWeight*a.Cost.OnChipArea
		base := gr.Cost.OnChipPower + areaWeight*gr.Cost.OnChipArea
		if got > base+1e-9 {
			t.Logf("seed %d: anytime %.4f costlier than greedy %.4f", seed, got, base)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAnytimeAssignRandomDeadlines exercises mid-search expiry: random
// tight deadlines must still yield valid assignments, optimal or not.
func TestAnytimeAssignRandomDeadlines(t *testing.T) {
	tech := memlib.Default()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		p := genProblem(r)
		d := time.Duration(r.Intn(200)) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), d)
		a, err := AssignContext(ctx, p.spec, p.pats, tech, p.count, Params{})
		cancel()
		if err != nil {
			t.Fatalf("iter %d (deadline %v): %v", i, d, err)
		}
		checkValid(t, p, a)
	}
}

// TestAssignContextAlreadyCanceledIsFast is the ~100ms acceptance bound:
// an expired context must return the greedy incumbent immediately, even on
// a problem sized to make the exact search expensive.
func TestAssignContextAlreadyCanceledIsFast(t *testing.T) {
	b := spec.NewBuilder("wide")
	for i := 0; i < 14; i++ {
		b.Group(fmt.Sprintf("g%d", i), int64(64<<(i%6)), 2+i)
	}
	b.Loop("l", 500_000)
	for i := 0; i < 14; i++ {
		b.Read(fmt.Sprintf("g%d", i), float64(1+i%4))
	}
	s := b.MustBuild()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	a, err := AssignContext(ctx, s, nil, memlib.Default(), 6, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("canceled assignment took %v, want < 100ms", el)
	}
	if a.Optimal {
		t.Fatal("canceled search claims optimality")
	}
	if len(a.OnChip) == 0 {
		t.Fatal("no on-chip memories in incumbent")
	}
}

// TestSweepContextStopsLaunching: once the context is canceled, the sweep
// keeps its first feasible row and stops evaluating further counts.
func TestSweepContextStopsLaunching(t *testing.T) {
	s := mixedSpec(t)
	tech := memlib.Default()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	asgns, counts, err := SweepContext(ctx, s, nil, tech, []int{1, 2, 3, 4}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(asgns) != 1 || len(counts) != 1 || counts[0] != 1 {
		t.Fatalf("canceled sweep returned counts %v, want just the first", counts)
	}
}
