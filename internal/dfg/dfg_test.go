package dfg

import (
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// chainLoop builds g0 -> g1 -> ... -> g{n-1} (a pure dependence chain).
func chainLoop(t *testing.T, n int, iters uint64) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("chain")
	b.Group("g", 64, 8)
	b.Loop("l", iters)
	prev := -1
	for i := 0; i < n; i++ {
		if prev < 0 {
			prev = b.Read("g", 1)
		} else {
			prev = b.Read("g", 1, prev)
		}
	}
	return b.MustBuild()
}

// diamondLoop builds a -> {b, c} -> d.
func diamondLoop(t *testing.T) *spec.Spec {
	t.Helper()
	bd := spec.NewBuilder("diamond")
	bd.Group("g", 64, 8)
	bd.Loop("l", 10)
	a := bd.Read("g", 1)
	b := bd.Read("g", 1, a)
	c := bd.Read("g", 1, a)
	bd.Write("g", 1, b, c)
	return bd.MustBuild()
}

func TestCriticalPathChain(t *testing.T) {
	s := chainLoop(t, 5, 1)
	if cp := CriticalPath(&s.Loops[0]); cp != 5 {
		t.Fatalf("chain CP = %d, want 5", cp)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	s := diamondLoop(t)
	if cp := CriticalPath(&s.Loops[0]); cp != 3 {
		t.Fatalf("diamond CP = %d, want 3", cp)
	}
}

func TestCriticalPathIndependent(t *testing.T) {
	b := spec.NewBuilder("par")
	b.Group("g", 64, 8)
	b.Loop("l", 1)
	for i := 0; i < 7; i++ {
		b.Read("g", 1)
	}
	s := b.MustBuild()
	if cp := CriticalPath(&s.Loops[0]); cp != 1 {
		t.Fatalf("independent CP = %d, want 1", cp)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	l := &spec.Loop{Name: "empty", Iterations: 1}
	if cp := CriticalPath(l); cp != 0 {
		t.Fatalf("empty CP = %d, want 0", cp)
	}
}

func TestMACPSumsLoops(t *testing.T) {
	b := spec.NewBuilder("two")
	b.Group("g", 64, 8)
	b.Loop("l1", 100)
	r := b.Read("g", 1)
	b.Write("g", 1, r)
	b.Loop("l2", 10)
	b.Read("g", 1)
	s := b.MustBuild()
	if m := MACP(s); m != 100*2+10*1 {
		t.Fatalf("MACP = %d, want 210", m)
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	s := diamondLoop(t)
	order := TopoOrder(&s.Loops[0])
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, a := range s.Loops[0].Accesses {
		for _, d := range a.Deps {
			if pos[d] >= pos[a.ID] {
				t.Fatalf("dep %d not before %d in %v", d, a.ID, order)
			}
		}
	}
	if len(order) != 4 {
		t.Fatalf("order has %d entries", len(order))
	}
}

func TestWindowsTightBudget(t *testing.T) {
	s := diamondLoop(t)
	win, err := Windows(&s.Loops[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	// At a budget equal to the CP, every node is on a tight schedule.
	want := []Window{{0, 0}, {1, 1}, {1, 1}, {2, 2}}
	for i, w := range want {
		if win[i] != w {
			t.Fatalf("window[%d] = %+v, want %+v", i, win[i], w)
		}
	}
}

func TestWindowsRelaxedBudget(t *testing.T) {
	s := diamondLoop(t)
	win, err := Windows(&s.Loops[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if win[0].ASAP != 0 || win[0].ALAP != 2 {
		t.Fatalf("source window = %+v, want {0 2}", win[0])
	}
	if win[3].ASAP != 2 || win[3].ALAP != 4 {
		t.Fatalf("sink window = %+v, want {2 4}", win[3])
	}
}

func TestWindowsBudgetBelowCP(t *testing.T) {
	s := diamondLoop(t)
	if _, err := Windows(&s.Loops[0], 2); err == nil {
		t.Fatal("budget below CP accepted")
	}
}

func TestSlackGrowsWithBudget(t *testing.T) {
	s := diamondLoop(t)
	l := &s.Loops[0]
	s3, err := Slack(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	s6, err := Slack(l, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 0 {
		t.Fatalf("slack at CP = %d, want 0", s3)
	}
	if s6 <= s3 {
		t.Fatalf("slack did not grow: %d -> %d", s3, s6)
	}
}

// Property: windows are consistent (ASAP <= ALAP, deps separated) for
// random DAGs and any feasible budget.
func TestQuickWindowConsistency(t *testing.T) {
	f := func(edges []uint16, extra uint8) bool {
		const n = 10
		b := spec.NewBuilder("q")
		b.Group("g", 64, 8)
		b.Loop("l", 1)
		ids := make([]int, n)
		depsOf := make([][]int, n)
		for _, e := range edges {
			from := int(e) % n
			to := int(e>>4) % n
			if from < to {
				depsOf[to] = append(depsOf[to], from)
			}
		}
		for i := 0; i < n; i++ {
			ids[i] = b.Read("g", 1, depsOf[i]...)
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		l := &s.Loops[0]
		budget := CriticalPath(l) + int(extra)%5
		win, err := Windows(l, budget)
		if err != nil {
			return false
		}
		for _, a := range l.Accesses {
			w := win[a.ID]
			if w.ASAP > w.ALAP || w.ASAP < 0 || w.ALAP >= budget {
				return false
			}
			for _, d := range a.Deps {
				if win[d].ASAP >= w.ALAP && !(win[d].ASAP < w.ALAP || win[d].ALAP < w.ALAP) {
					return false
				}
				if win[d].ALAP >= w.ALAP { // dep must be schedulable strictly before
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
