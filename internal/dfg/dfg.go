// Package dfg provides the flow-graph analysis underlying the paper's
// critical-path step (§4.2) and the storage-cycle-budget distribution
// (§4.5): topological ordering, the memory access critical path (MACP), and
// ASAP/ALAP scheduling windows for the accesses of a loop body.
//
// The model follows the paper's abstraction: every memory access occupies
// one storage cycle, dependences between accesses of the same body demand
// sequentialism, and the minimal chain of dependences limits the achievable
// execution speed — "this is called the memory access critical path".
package dfg

import (
	"fmt"

	"repro/internal/scratch"
	"repro/internal/spec"
)

// TopoOrder returns the access IDs of l in a topological order of the
// dependence DAG. The spec is assumed validated (acyclic).
func TopoOrder(l *spec.Loop) []int {
	return TopoOrderScratch(l, nil)
}

// TopoOrderScratch is TopoOrder with all working state (and the returned
// order itself) carved from the arena, so the budget-distribution inner
// loop — which re-derives orders constantly — allocates nothing. The
// returned slice is only valid until the arena is reset; pass a nil arena
// for plain heap allocation. The successor lists are built in flat CSR form
// (one edge array plus offsets) instead of per-node slices.
func TopoOrderScratch(l *spec.Loop, a *scratch.Arena) []int {
	n := len(l.Accesses)
	edges := 0
	for i := range l.Accesses {
		edges += len(l.Accesses[i].Deps)
	}
	indeg := a.Ints(n)
	off := a.Ints(n + 1)
	flat := a.Ints(edges)
	cur := a.Ints(n)
	for i := range l.Accesses {
		for _, d := range l.Accesses[i].Deps {
			cur[d]++
		}
	}
	sum := 0
	for i := 0; i < n; i++ {
		off[i] = sum
		sum += cur[i]
		cur[i] = off[i]
	}
	off[n] = sum
	for i := range l.Accesses {
		id := l.Accesses[i].ID
		for _, d := range l.Accesses[i].Deps {
			flat[cur[d]] = id
			cur[d]++
			indeg[id]++
		}
	}
	order := a.Ints(n)[:0]
	queue := a.Ints(n)
	head, tail := 0, 0
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue[tail] = i
			tail++
		}
	}
	for head < tail {
		v := queue[head]
		head++
		order = append(order, v)
		for _, s := range flat[off[v]:off[v+1]] {
			if indeg[s]--; indeg[s] == 0 {
				queue[tail] = s
				tail++
			}
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("dfg: loop %q has a dependence cycle", l.Name))
	}
	return order
}

// CriticalPath returns the length (in storage cycles) of the longest
// dependence chain in the loop body: the minimum per-iteration cycle
// budget for which a feasible access ordering exists.
func CriticalPath(l *spec.Loop) int {
	if len(l.Accesses) == 0 {
		return 0
	}
	a := scratch.Get()
	defer scratch.Put(a)
	depth := a.Ints(len(l.Accesses))
	longest := 0
	for _, id := range TopoOrderScratch(l, a) {
		d := 1
		for _, dep := range l.Accesses[id].Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[id] = d
		if d > longest {
			longest = d
		}
	}
	return longest
}

// MACP returns the memory access critical path of the whole specification:
// the minimum number of storage cycles per frame, obtained by executing
// every loop body at its per-iteration critical path.
func MACP(s *spec.Spec) uint64 {
	var total uint64
	for i := range s.Loops {
		total += uint64(CriticalPath(&s.Loops[i])) * s.Loops[i].Iterations
	}
	return total
}

// MinBudget returns the smallest per-iteration cycle budget of the loop:
// identical to CriticalPath, exported under the budget vocabulary used by
// the SCBD step.
func MinBudget(l *spec.Loop) int { return CriticalPath(l) }

// Window is the feasible cycle interval of one access under a body budget.
type Window struct {
	ASAP int // earliest feasible cycle (0-based)
	ALAP int // latest feasible cycle
}

// Windows computes the ASAP/ALAP windows of every access of l for the given
// per-iteration cycle budget. It fails if the budget is below the critical
// path.
func Windows(l *spec.Loop, budget int) ([]Window, error) {
	cp := CriticalPath(l)
	if budget < cp {
		return nil, fmt.Errorf("dfg: loop %q: budget %d below critical path %d",
			l.Name, budget, cp)
	}
	n := len(l.Accesses)
	win := make([]Window, n)
	order := TopoOrder(l)
	// ASAP forward pass.
	for _, id := range order {
		asap := 0
		for _, dep := range l.Accesses[id].Deps {
			if win[dep].ASAP+1 > asap {
				asap = win[dep].ASAP + 1
			}
		}
		win[id].ASAP = asap
	}
	// ALAP backward pass.
	succ := make([][]int, n)
	for _, a := range l.Accesses {
		for _, d := range a.Deps {
			succ[d] = append(succ[d], a.ID)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		alap := budget - 1
		for _, s := range succ[id] {
			if win[s].ALAP-1 < alap {
				alap = win[s].ALAP - 1
			}
		}
		win[id].ALAP = alap
	}
	return win, nil
}

// Slack returns the total scheduling freedom (Σ ALAP−ASAP) of the loop at
// the given budget: a measure of how much room the balancer has to avoid
// conflicts.
func Slack(l *spec.Loop, budget int) (int, error) {
	win, err := Windows(l, budget)
	if err != nil {
		return 0, err
	}
	s := 0
	for _, w := range win {
		s += w.ALAP - w.ASAP
	}
	return s, nil
}
