// Package dfg provides the flow-graph analysis underlying the paper's
// critical-path step (§4.2) and the storage-cycle-budget distribution
// (§4.5): topological ordering, the memory access critical path (MACP), and
// ASAP/ALAP scheduling windows for the accesses of a loop body.
//
// The model follows the paper's abstraction: every memory access occupies
// one storage cycle, dependences between accesses of the same body demand
// sequentialism, and the minimal chain of dependences limits the achievable
// execution speed — "this is called the memory access critical path".
package dfg

import (
	"fmt"

	"repro/internal/spec"
)

// TopoOrder returns the access IDs of l in a topological order of the
// dependence DAG. The spec is assumed validated (acyclic).
func TopoOrder(l *spec.Loop) []int {
	n := len(l.Accesses)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, a := range l.Accesses {
		for _, d := range a.Deps {
			succ[d] = append(succ[d], a.ID)
			indeg[a.ID]++
		}
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range succ[v] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("dfg: loop %q has a dependence cycle", l.Name))
	}
	return order
}

// CriticalPath returns the length (in storage cycles) of the longest
// dependence chain in the loop body: the minimum per-iteration cycle
// budget for which a feasible access ordering exists.
func CriticalPath(l *spec.Loop) int {
	if len(l.Accesses) == 0 {
		return 0
	}
	depth := make([]int, len(l.Accesses))
	longest := 0
	for _, id := range TopoOrder(l) {
		d := 1
		for _, dep := range l.Accesses[id].Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[id] = d
		if d > longest {
			longest = d
		}
	}
	return longest
}

// MACP returns the memory access critical path of the whole specification:
// the minimum number of storage cycles per frame, obtained by executing
// every loop body at its per-iteration critical path.
func MACP(s *spec.Spec) uint64 {
	var total uint64
	for i := range s.Loops {
		total += uint64(CriticalPath(&s.Loops[i])) * s.Loops[i].Iterations
	}
	return total
}

// MinBudget returns the smallest per-iteration cycle budget of the loop:
// identical to CriticalPath, exported under the budget vocabulary used by
// the SCBD step.
func MinBudget(l *spec.Loop) int { return CriticalPath(l) }

// Window is the feasible cycle interval of one access under a body budget.
type Window struct {
	ASAP int // earliest feasible cycle (0-based)
	ALAP int // latest feasible cycle
}

// Windows computes the ASAP/ALAP windows of every access of l for the given
// per-iteration cycle budget. It fails if the budget is below the critical
// path.
func Windows(l *spec.Loop, budget int) ([]Window, error) {
	cp := CriticalPath(l)
	if budget < cp {
		return nil, fmt.Errorf("dfg: loop %q: budget %d below critical path %d",
			l.Name, budget, cp)
	}
	n := len(l.Accesses)
	win := make([]Window, n)
	order := TopoOrder(l)
	// ASAP forward pass.
	for _, id := range order {
		asap := 0
		for _, dep := range l.Accesses[id].Deps {
			if win[dep].ASAP+1 > asap {
				asap = win[dep].ASAP + 1
			}
		}
		win[id].ASAP = asap
	}
	// ALAP backward pass.
	succ := make([][]int, n)
	for _, a := range l.Accesses {
		for _, d := range a.Deps {
			succ[d] = append(succ[d], a.ID)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		alap := budget - 1
		for _, s := range succ[id] {
			if win[s].ALAP-1 < alap {
				alap = win[s].ALAP - 1
			}
		}
		win[id].ALAP = alap
	}
	return win, nil
}

// Slack returns the total scheduling freedom (Σ ALAP−ASAP) of the loop at
// the given budget: a measure of how much room the balancer has to avoid
// conflicts.
func Slack(l *spec.Loop, budget int) (int, error) {
	win, err := Windows(l, budget)
	if err != nil {
		return 0, err
	}
	s := 0
	for _, w := range win {
		s += w.ALAP - w.ASAP
	}
	return s, nil
}
