// Package report renders the exploration results in the shapes the paper
// presents them: cost tables (Tables 1–4), the memory hierarchy diagram
// (Figure 3), the basic-group structuring schematic (Figure 2), and the
// stepwise-refinement exploration tree (Figure 1).
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"repro/internal/assign"
	"repro/internal/reuse"
)

// Table is a simple fixed-width ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string

	err error // first arity mismatch seen by AddRow
}

// AddRow appends one row. A row that does not match the header width is
// still appended (Render pads or widens), but the mismatch is recorded and
// reported by Err — library code must not panic in a serving path, and the
// render itself stays total.
func (t *Table) AddRow(cells ...string) {
	if t.err == nil && len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		t.err = fmt.Errorf("report: row %d has %d cells, table has %d columns",
			len(t.Rows), len(cells), len(t.Headers))
	}
	t.Rows = append(t.Rows, cells)
}

// Err returns the first arity mismatch recorded by AddRow, or nil when every
// row matched the header width.
func (t *Table) Err() error { return t.err }

// cellWidth measures a cell in runes, not bytes: unit strings like "µJ" or
// "mm²" are multi-byte but single-column, and byte-measured widths misalign
// every row below them.
func cellWidth(c string) int { return utf8.RuneCountInString(c) }

// pad writes c left-aligned in a field of the given rune width.
func pad(b *strings.Builder, c string, width int) {
	b.WriteString(c)
	for n := cellWidth(c); n < width; n++ {
		b.WriteByte(' ')
	}
}

// Render returns the formatted table.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if w := cellWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			pad(&b, c, widths[i])
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// RenderStrict is Render for serving paths: it fails instead of quietly
// rendering a malformed table when any row mismatched the header width.
func (t *Table) RenderStrict() (string, error) {
	if t.err != nil {
		return "", t.err
	}
	return t.Render(), nil
}

// CostRow formats the paper's three cost columns for one variant.
func CostRow(label string, c assign.Cost) []string {
	return []string{
		label,
		fmt.Sprintf("%.1f", c.OnChipArea),
		fmt.Sprintf("%.1f", c.OnChipPower),
		fmt.Sprintf("%.1f", c.OffChipPower),
	}
}

// CostTable builds a paper-style cost table.
func CostTable(title string, firstColumn string) *Table {
	return &Table{
		Title:   title,
		Headers: []string{firstColumn, "on-chip area [mm2]", "on-chip power [mW]", "off-chip power [mW]"},
	}
}

// HierarchyDiagram renders the Figure 3 style layer picture for a chosen
// hierarchy and the port counts the assignment gave each layer.
func HierarchyDiagram(h *reuse.Hierarchy, ports map[string]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory hierarchy for the %s array\n", h.Array)
	// Render outermost (backing) first, like the paper's Figure 3.
	write := func(layer string, words int64, miss float64, last bool) {
		p := ports[layer]
		if p == 0 {
			p = 1
		}
		fmt.Fprintf(&b, "  [%s: %s, %d-port]", layer, humanWords(words), p)
		if miss >= 0 {
			fmt.Fprintf(&b, " (miss %.1f%%)", 100*miss)
		}
		if !last {
			b.WriteString(" <---copies--- ")
		}
	}
	if len(h.Layers) == 0 {
		fmt.Fprintf(&b, "  [%s] directly serves the data-paths (no hierarchy)\n", h.Array)
		return b.String()
	}
	write(h.Array, -1, -1, false)
	for i := len(h.Layers) - 1; i >= 0; i-- {
		write(h.Layers[i].Name, h.Layers[i].Words, h.MissRatios[i], i == 0)
	}
	b.WriteString(" ---> data-paths\n")
	return b.String()
}

func humanWords(w int64) string {
	switch {
	case w < 0:
		return "backing"
	case w >= 1<<20 && w%(1<<20) == 0:
		return fmt.Sprintf("%dM", w>>20)
	case w >= 1<<10 && w%(1<<10) == 0:
		return fmt.Sprintf("%dK", w>>10)
	default:
		return fmt.Sprintf("%d", w)
	}
}

// TreeNode is one decision stage of the Figure 1 exploration tree.
type TreeNode struct {
	Stage    string
	Options  []string
	Chosen   string
	Children []*TreeNode
}

// RenderTree renders the stepwise refinement tree with the explored options
// per stage and the decision taken.
func RenderTree(root *TreeNode) string {
	var b strings.Builder
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s:\n", indent, n.Stage)
		for _, o := range n.Options {
			marker := " "
			if o == n.Chosen {
				marker = "*"
			}
			fmt.Fprintf(&b, "%s  %s %s\n", indent, marker, o)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// StructuringDiagram renders the Figure 2 schematic for compaction and
// merging in ASCII.
func StructuringDiagram() string {
	return strings.Join([]string{
		"(a) basic group compaction: k narrow words -> 1 wide word",
		"      |a0|a1|a2|  ...   =>   |a0 a1 a2| ...",
		"      reads/writes coalesce by k; writes add a fetch read",
		"(b) basic group merging: two arrays -> one array of records",
		"      |a0|a1|...  +  |b0|b1|...   =>   |a0 b0|a1 b1|...",
		"      co-indexed accesses collapse; single-field writes fetch first",
	}, "\n") + "\n"
}
