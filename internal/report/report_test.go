package report

import (
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/reuse"
)

func TestTableRender(t *testing.T) {
	tb := CostTable("Table X", "Version")
	tb.AddRow(CostRow("no structuring", assign.Cost{OnChipArea: 85.0, OnChipPower: 47.3, OffChipPower: 208.0})...)
	tb.AddRow(CostRow("merged", assign.Cost{OnChipArea: 65.4, OnChipPower: 39.4, OffChipPower: 130.2})...)
	out := tb.Render()
	for _, want := range []string{"Table X", "Version", "85.0", "130.2", "on-chip area"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Column alignment: header separator line present.
	if !strings.Contains(out, "---") {
		t.Fatal("missing separator")
	}
}

func TestTableRowWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("only one")
}

func TestTableNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.Render()
	if !strings.Contains(out, "x") || strings.Contains(out, "---") {
		t.Fatalf("headerless render wrong:\n%s", out)
	}
}

func TestHierarchyDiagram(t *testing.T) {
	h := &reuse.Hierarchy{
		Array:      "image",
		Layers:     []reuse.Layer{{Name: "ylocal", Words: 12}, {Name: "yhier", Words: 5120}},
		MissRatios: []float64{0.4, 0.05},
	}
	out := HierarchyDiagram(h, map[string]int{"yhier": 2, "image": 1, "ylocal": 1})
	for _, want := range []string{"image", "yhier: 5K, 2-port", "ylocal: 12, 1-port", "data-paths", "copies"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diagram missing %q:\n%s", want, out)
		}
	}
	// Outermost layer must appear before the innermost.
	if strings.Index(out, "yhier") > strings.Index(out, "ylocal") {
		t.Fatalf("layer order wrong:\n%s", out)
	}
}

func TestHierarchyDiagramNoHierarchy(t *testing.T) {
	h := &reuse.Hierarchy{Array: "image"}
	out := HierarchyDiagram(h, nil)
	if !strings.Contains(out, "no hierarchy") {
		t.Fatalf("diagram: %s", out)
	}
}

func TestRenderTree(t *testing.T) {
	root := &TreeNode{
		Stage:   "BG structuring",
		Options: []string{"none", "compact", "merge"},
		Chosen:  "merge",
		Children: []*TreeNode{{
			Stage:   "Memory hierarchy",
			Options: []string{"none", "layer0"},
			Chosen:  "layer0",
		}},
	}
	out := RenderTree(root)
	if !strings.Contains(out, "* merge") || !strings.Contains(out, "  none") {
		t.Fatalf("tree render:\n%s", out)
	}
	if strings.Index(out, "BG structuring") > strings.Index(out, "Memory hierarchy") {
		t.Fatal("child rendered before parent")
	}
}

func TestStructuringDiagram(t *testing.T) {
	out := StructuringDiagram()
	if !strings.Contains(out, "compaction") || !strings.Contains(out, "merging") {
		t.Fatalf("diagram:\n%s", out)
	}
}

func TestHumanWords(t *testing.T) {
	cases := map[int64]string{
		12:      "12",
		1024:    "1K",
		5120:    "5K",
		1 << 20: "1M",
		3 << 20: "3M",
		1000:    "1000",
		-1:      "backing",
	}
	for in, want := range cases {
		if got := humanWords(in); got != want {
			t.Errorf("humanWords(%d) = %q, want %q", in, got, want)
		}
	}
}
