package report

import (
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/reuse"
)

func TestTableRender(t *testing.T) {
	tb := CostTable("Table X", "Version")
	tb.AddRow(CostRow("no structuring", assign.Cost{OnChipArea: 85.0, OnChipPower: 47.3, OffChipPower: 208.0})...)
	tb.AddRow(CostRow("merged", assign.Cost{OnChipArea: 65.4, OnChipPower: 39.4, OffChipPower: 130.2})...)
	out := tb.Render()
	for _, want := range []string{"Table X", "Version", "85.0", "130.2", "on-chip area"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Column alignment: header separator line present.
	if !strings.Contains(out, "---") {
		t.Fatal("missing separator")
	}
}

func TestTableRowWidthMismatchIsError(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("only one")
	if tb.Err() == nil {
		t.Fatal("arity mismatch not recorded")
	}
	// The render path must stay total: no panic, short row padded.
	out := tb.Render()
	if !strings.Contains(out, "only one") {
		t.Fatalf("mismatched row dropped from render:\n%s", out)
	}
	if _, err := tb.RenderStrict(); err == nil {
		t.Fatal("RenderStrict ignored the recorded mismatch")
	}
	ok := &Table{Headers: []string{"a", "b"}}
	ok.AddRow("x", "y")
	if ok.Err() != nil {
		t.Fatalf("well-formed table reports error: %v", ok.Err())
	}
	if _, err := ok.RenderStrict(); err != nil {
		t.Fatalf("RenderStrict on well-formed table: %v", err)
	}
}

// TestTableRuneWidths: multi-byte unit strings (µJ, mm²) are single-column
// characters; width math in bytes misaligns every row below them.
func TestTableRuneWidths(t *testing.T) {
	tb := &Table{
		Headers: []string{"Version", "energy [µJ]", "area [mm²]"},
	}
	tb.AddRow("baseline", "aaaaaaaaaaa", "bbbbbbbbbb")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header+separator+row, got %d lines:\n%s", len(lines), out)
	}
	header, row := lines[0], lines[2]
	// The data cells are exactly as wide as the headers, so with rune-correct
	// widths the columns start at the same visual offset in both lines.
	hcols := []int{
		strings.Index(header, "energy"),
		strings.Index(header, "area"),
	}
	rcols := []int{
		strings.Index(row, "aaaaaaaaaaa"),
		strings.Index(row, "bbbbbbbbbb"),
	}
	// Compare offsets in runes, the visual unit.
	runeOff := func(s string, byteOff int) int { return len([]rune(s[:byteOff])) }
	for i := range hcols {
		ho, ro := runeOff(header, hcols[i]), runeOff(row, rcols[i])
		if ho != ro {
			t.Fatalf("column %d misaligned: header rune-offset %d, row rune-offset %d\n%s", i, ho, ro, out)
		}
	}
	// The separator spans the rune width of the table, not its byte width.
	sep := lines[1]
	wantSep := len([]rune(header))
	if len(sep) != wantSep {
		t.Fatalf("separator %d chars, want %d (rune width of header line)\n%s", len(sep), wantSep, out)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.Render()
	if !strings.Contains(out, "x") || strings.Contains(out, "---") {
		t.Fatalf("headerless render wrong:\n%s", out)
	}
}

func TestHierarchyDiagram(t *testing.T) {
	h := &reuse.Hierarchy{
		Array:      "image",
		Layers:     []reuse.Layer{{Name: "ylocal", Words: 12}, {Name: "yhier", Words: 5120}},
		MissRatios: []float64{0.4, 0.05},
	}
	out := HierarchyDiagram(h, map[string]int{"yhier": 2, "image": 1, "ylocal": 1})
	for _, want := range []string{"image", "yhier: 5K, 2-port", "ylocal: 12, 1-port", "data-paths", "copies"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diagram missing %q:\n%s", want, out)
		}
	}
	// Outermost layer must appear before the innermost.
	if strings.Index(out, "yhier") > strings.Index(out, "ylocal") {
		t.Fatalf("layer order wrong:\n%s", out)
	}
}

func TestHierarchyDiagramNoHierarchy(t *testing.T) {
	h := &reuse.Hierarchy{Array: "image"}
	out := HierarchyDiagram(h, nil)
	if !strings.Contains(out, "no hierarchy") {
		t.Fatalf("diagram: %s", out)
	}
}

func TestRenderTree(t *testing.T) {
	root := &TreeNode{
		Stage:   "BG structuring",
		Options: []string{"none", "compact", "merge"},
		Chosen:  "merge",
		Children: []*TreeNode{{
			Stage:   "Memory hierarchy",
			Options: []string{"none", "layer0"},
			Chosen:  "layer0",
		}},
	}
	out := RenderTree(root)
	if !strings.Contains(out, "* merge") || !strings.Contains(out, "  none") {
		t.Fatalf("tree render:\n%s", out)
	}
	if strings.Index(out, "BG structuring") > strings.Index(out, "Memory hierarchy") {
		t.Fatal("child rendered before parent")
	}
}

func TestStructuringDiagram(t *testing.T) {
	out := StructuringDiagram()
	if !strings.Contains(out, "compaction") || !strings.Contains(out, "merging") {
		t.Fatalf("diagram:\n%s", out)
	}
}

func TestHumanWords(t *testing.T) {
	cases := map[int64]string{
		12:      "12",
		1024:    "1K",
		5120:    "5K",
		1 << 20: "1M",
		3 << 20: "3M",
		1000:    "1000",
		-1:      "backing",
	}
	for in, want := range cases {
		if got := humanWords(in); got != want {
			t.Errorf("humanWords(%d) = %q, want %q", in, got, want)
		}
	}
}
