package btpc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/img"
	"repro/internal/trace"
)

func TestLosslessRoundTripSynthetic(t *testing.T) {
	for _, size := range []struct{ w, h int }{
		{64, 64}, {63, 61}, {128, 32}, {16, 16}, {1, 1}, {5, 3}, {256, 7},
	} {
		src := img.Synthetic(size.w, size.h, 7)
		data, stats, err := Encode(src, Params{}, nil)
		if err != nil {
			t.Fatalf("%dx%d: encode: %v", size.w, size.h, err)
		}
		got, err := Decode(data, nil)
		if err != nil {
			t.Fatalf("%dx%d: decode: %v", size.w, size.h, err)
		}
		if !src.Equal(got) {
			t.Fatalf("%dx%d: lossless round trip not identical", size.w, size.h)
		}
		if stats.BitsTotal != len(data)*8 && stats.BitsTotal > len(data)*8 {
			t.Fatalf("%dx%d: stats bits %d inconsistent with %d bytes",
				size.w, size.h, stats.BitsTotal, len(data))
		}
	}
}

func TestLosslessRoundTripContentTypes(t *testing.T) {
	cases := map[string]*img.Gray{
		"gradient": img.Gradient(96, 96),
		"noise":    img.Noise(96, 96, 3),
		"flat":     img.Flat(96, 96, 200),
		"zero":     img.Flat(96, 96, 0),
		"max":      img.Flat(96, 96, 255),
	}
	for name, src := range cases {
		data, _, err := Encode(src, Params{}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Decode(data, nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !src.Equal(got) {
			t.Fatalf("%s: round trip not identical", name)
		}
	}
}

func TestCompressionOnStructuredContent(t *testing.T) {
	src := img.Gradient(128, 128)
	data, stats, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bpp := float64(len(data)*8) / float64(128*128)
	if bpp > 4.0 {
		t.Fatalf("gradient compresses to %.2f bpp, want <= 4", bpp)
	}
	if stats.BitsPerPixel() > 4.0 {
		t.Fatalf("stats bpp %.2f inconsistent", stats.BitsPerPixel())
	}
}

func TestNoiseDoesNotExplode(t *testing.T) {
	src := img.Noise(64, 64, 9)
	data, _, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bpp := float64(len(data)*8) / float64(64*64)
	// Incompressible content may expand slightly but must stay bounded.
	if bpp > 11.0 {
		t.Fatalf("noise coded at %.2f bpp, want <= 11", bpp)
	}
}

func TestLossyQualityAndDeterminism(t *testing.T) {
	src := img.Synthetic(96, 96, 21)
	var prevMSE float64 = -1
	for _, q := range []int{2, 4, 8, 16} {
		data, _, err := Encode(src, Params{Quant: q}, nil)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		got, err := Decode(data, nil)
		if err != nil {
			t.Fatalf("q=%d: decode: %v", q, err)
		}
		mse, err := src.MSE(got)
		if err != nil {
			t.Fatal(err)
		}
		// Quantization error per pixel is bounded by ~(q/2)^2 at prediction
		// sites; allow slack for error propagation through predictions.
		bound := float64(q*q) * 2
		if mse > bound {
			t.Fatalf("q=%d: MSE %.1f exceeds bound %.1f", q, mse, bound)
		}
		if mse < prevMSE {
			t.Logf("q=%d: MSE %.2f below previous %.2f (allowed but notable)", q, mse, prevMSE)
		}
		prevMSE = mse
	}
}

func TestLossyBeatsLosslessRate(t *testing.T) {
	src := img.Synthetic(128, 128, 5)
	lossless, _, err := Encode(src, Params{Quant: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lossy, _, err := Encode(src, Params{Quant: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lossy) >= len(lossless) {
		t.Fatalf("lossy (%d bytes) not smaller than lossless (%d bytes)",
			len(lossy), len(lossless))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	src := img.Synthetic(64, 64, 13)
	a, _, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic encode length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic encode at byte %d", i)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	src := img.Flat(8, 8, 1)
	if _, _, err := Encode(src, Params{Quant: -1}, nil); err == nil {
		t.Error("negative quant accepted")
	}
	if _, _, err := Encode(src, Params{Quant: 65}, nil); err == nil {
		t.Error("huge quant accepted")
	}
	if _, _, err := Encode(src, Params{TopMin: -2}, nil); err == nil {
		t.Error("negative TopMin accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	src := img.Synthetic(32, 32, 1)
	data, _, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte{'X', 'Y'}, data[2:]...),
		"header only": data[:4],
		"truncated":   data[:len(data)/2],
	}
	for name, d := range cases {
		if _, err := Decode(d, nil); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	src := img.Synthetic(64, 64, 2)
	_, stats, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var coded uint64
	for _, c := range stats.SymbolsPerCtx {
		coded += c
	}
	want := uint64(64*64 - stats.TopPixels)
	if coded != want {
		t.Fatalf("coded symbols %d, want %d (pixels minus top)", coded, want)
	}
	if stats.TopLevel <= 0 {
		t.Fatalf("TopLevel = %d, want > 0 for a 64x64 image", stats.TopLevel)
	}
	// The synthetic image has flat regions, edges and texture: several
	// contexts must actually be used.
	used := 0
	for _, c := range stats.SymbolsPerCtx {
		if c > 0 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("only %d contexts used, want >= 3", used)
	}
}

func TestLatticeCoversEveryPixelOnce(t *testing.T) {
	for _, dims := range []struct{ w, h int }{{16, 16}, {13, 9}, {32, 17}} {
		w, h := dims.w, dims.h
		tt := topT(w, h, 4)
		seen := make([]int, w*h)
		step := 1 << tt
		for y := 0; y < h; y += step {
			for x := 0; x < w; x += step {
				seen[y*w+x]++
			}
		}
		for k := 2*tt - 1; k >= 0; k-- {
			forEachLatticePixel(w, h, k, func(x, y int) { seen[y*w+x]++ })
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%dx%d: pixel %d visited %d times", w, h, i, c)
			}
		}
	}
}

func TestTopT(t *testing.T) {
	cases := []struct{ w, h, topMin, want int }{
		{1024, 1024, 4, 8},
		{64, 64, 4, 4},
		{16, 16, 4, 2},
		{4, 4, 4, 0},
		{3, 3, 4, 0},
		{1024, 16, 4, 2}, // limited by the short dimension
	}
	for _, c := range cases {
		if got := topT(c.w, c.h, c.topMin); got != c.want {
			t.Errorf("topT(%d,%d,%d) = %d, want %d", c.w, c.h, c.topMin, got, c.want)
		}
	}
}

func TestLevelSizesSumToImage(t *testing.T) {
	for _, d := range []struct{ w, h int }{{64, 64}, {33, 17}, {128, 96}} {
		top, levels := LevelSizes(d.w, d.h, 4)
		sum := top
		for _, n := range levels {
			sum += n
		}
		if sum != d.w*d.h {
			t.Fatalf("%dx%d: top %d + levels %v = %d, want %d",
				d.w, d.h, top, levels, sum, d.w*d.h)
		}
		// Finer levels hold more pixels (roughly doubling).
		for k := 0; k+1 < len(levels); k++ {
			if levels[k] < levels[k+1] {
				t.Fatalf("%dx%d: level %d (%d px) smaller than level %d (%d px)",
					d.w, d.h, k, levels[k], k+1, levels[k+1])
			}
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	for q := -255; q <= 255; q++ {
		s := zigzag(q)
		if s < 0 || s >= maxErrIdx {
			t.Fatalf("zigzag(%d) = %d out of range", q, s)
		}
		if got := unzigzag(s); got != q {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", q, got)
		}
	}
}

func TestZigzagIsBijection(t *testing.T) {
	seen := make(map[int]bool)
	for q := -255; q <= 255; q++ {
		s := zigzag(q)
		if seen[s] {
			t.Fatalf("zigzag collision at symbol %d", s)
		}
		seen[s] = true
	}
}

func TestProfiledBasicGroups(t *testing.T) {
	rec := trace.NewRecorder()
	src := img.Synthetic(64, 64, 4)
	if _, _, err := Encode(src, Params{}, rec); err != nil {
		t.Fatal(err)
	}
	// The paper's 18 basic groups must all appear in the profile.
	want := []string{"image", "pyr", "ridge", "qtab", "iqtab", "hist"}
	for i := 0; i < NumContexts; i++ {
		want = append(want, fmt.Sprintf("htree%d", i), fmt.Sprintf("hweight%d", i))
	}
	if len(want) != 18 {
		t.Fatalf("test setup: %d groups listed, want 18", len(want))
	}
	for _, name := range want {
		if rec.Array(name).Total() == 0 {
			t.Errorf("basic group %q has no recorded accesses", name)
		}
	}
	n := uint64(64 * 64)
	im := rec.Array("image")
	// image: 1 write per pixel at load, ~1 read per pixel for the actual
	// value, plus up to 4 neighbour reads for every predicted pixel.
	if im.Writes != n {
		t.Errorf("image writes = %d, want %d", im.Writes, n)
	}
	if im.Reads < 3*n || im.Reads > 6*n {
		t.Errorf("image reads = %d, want within [3n, 6n] = [%d, %d]", im.Reads, 3*n, 6*n)
	}
	// pyr and ridge: 1 write per pixel and ~1 read per predicted pixel.
	for _, name := range []string{"pyr", "ridge"} {
		c := rec.Array(name)
		if c.Writes != n {
			t.Errorf("%s writes = %d, want %d", name, c.Writes, n)
		}
		if c.Reads == 0 || c.Reads > 2*n {
			t.Errorf("%s reads = %d, want within (0, 2n]", name, c.Reads)
		}
	}
	// The image array must dominate, as the paper's Table 2 step assumes.
	if im.Total() <= rec.Array("pyr").Total() {
		t.Errorf("image accesses (%d) do not dominate pyr (%d)",
			im.Total(), rec.Array("pyr").Total())
	}
}

func TestProfileScopes(t *testing.T) {
	rec := trace.NewRecorder()
	src := img.Synthetic(32, 32, 4)
	if _, _, err := Encode(src, Params{}, rec); err != nil {
		t.Fatal(err)
	}
	if c := rec.ArrayScope("image", "input"); c.Writes != 32*32 {
		t.Fatalf("input-scope image writes = %d, want %d", c.Writes, 32*32)
	}
	if c := rec.ArrayScope("image", "enc/level0"); c.Reads == 0 {
		t.Fatal("no image reads attributed to enc/level0")
	}
	if c := rec.ArrayScope("image", "enc/top"); c.Reads == 0 {
		t.Fatal("no image reads attributed to enc/top")
	}
}

func TestLossyRoundTripWithProfiling(t *testing.T) {
	// Profiling must not alter the bit stream.
	src := img.Synthetic(48, 48, 6)
	plain, _, err := Encode(src, Params{Quant: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	profiled, _, err := Encode(src, Params{Quant: 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(profiled) {
		t.Fatalf("profiled stream length differs: %d vs %d", len(plain), len(profiled))
	}
	for i := range plain {
		if plain[i] != profiled[i] {
			t.Fatalf("profiled stream differs at byte %d", i)
		}
	}
	// And the decoder accepts it with a recorder attached.
	if _, err := Decode(profiled, trace.NewRecorder()); err != nil {
		t.Fatal(err)
	}
}

func TestOversizeImageRejected(t *testing.T) {
	// Construct a header-level failure without allocating a 65536-wide
	// image: Encode checks dimensions before anything else.
	g := &img.Gray{W: 70000, H: 1, Pix: make([]uint8, 70000)}
	if _, _, err := Encode(g, Params{}, nil); err == nil {
		t.Fatal("oversize image accepted")
	}
}

func TestProgressiveDecodeQualityLadder(t *testing.T) {
	src := img.Synthetic(128, 128, 9)
	data, stats, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// stopLevel 0 must match the full decode exactly.
	full, err := Decode(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := DecodeProgressive(data, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Equal(p0) {
		t.Fatal("DecodeProgressive(0) differs from Decode")
	}
	// Decoding fewer levels must degrade quality monotonically (allowing
	// tiny non-monotonic noise between adjacent levels).
	prevMSE := -1.0
	for stop := 0; stop <= stats.TopLevel; stop += 2 {
		g, err := DecodeProgressive(data, stop, nil)
		if err != nil {
			t.Fatalf("stop %d: %v", stop, err)
		}
		mse, err := src.MSE(g)
		if err != nil {
			t.Fatal(err)
		}
		if mse < prevMSE-1.0 {
			t.Fatalf("quality improved with fewer levels: stop %d MSE %.1f < %.1f",
				stop, mse, prevMSE)
		}
		prevMSE = mse
	}
	if prevMSE <= 0 {
		t.Fatal("coarsest progressive decode should not be exact")
	}
	// Even the coarsest reconstruction must be a plausible image, not noise.
	coarse, err := DecodeProgressive(data, stats.TopLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := src.MSE(coarse)
	if mse > 6000 {
		t.Fatalf("top-only reconstruction MSE %.0f is implausibly bad", mse)
	}
}

func TestProgressiveDecodeNegativeLevel(t *testing.T) {
	if _, err := DecodeProgressive(nil, -1, nil); err == nil {
		t.Fatal("negative stop level accepted")
	}
}

func TestProgressiveBeyondTopIsTopOnly(t *testing.T) {
	src := img.Synthetic(64, 64, 3)
	data, stats, err := Encode(src, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeProgressive(data, stats.TopLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeProgressive(data, stats.TopLevel+5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("stop levels beyond the pyramid top should behave like top-only")
	}
}

// Property: lossless round trip holds for arbitrary small images.
func TestQuickLosslessRoundTrip(t *testing.T) {
	f := func(pix []byte, wSeed uint8) bool {
		w := int(wSeed)%24 + 1
		h := len(pix) / w
		if h == 0 {
			return true
		}
		if h > 24 {
			h = 24
		}
		g := img.New(w, h)
		copy(g.Pix, pix[:w*h])
		data, _, err := Encode(g, Params{}, nil)
		if err != nil {
			return false
		}
		got, err := Decode(data, nil)
		return err == nil && g.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode256(b *testing.B) {
	src := img.Synthetic(256, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(src, Params{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeProfiled256(b *testing.B) {
	src := img.Synthetic(256, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(src, Params{}, trace.NewRecorder()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode256(b *testing.B) {
	src := img.Synthetic(256, 256, 1)
	data, _, err := Encode(src, Params{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, nil); err != nil {
			b.Fatal(err)
		}
	}
}
