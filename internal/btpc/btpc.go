// Package btpc implements Binary Tree Predictive Coding (Robinson, IEEE
// Trans. Image Processing 1997), the industrial demonstrator application of
// the paper. BTPC is a lossless/lossy multiresolution image coder:
//
//   - The image is decomposed into a quincunx binary pyramid. Each level
//     keeps half the pixels of the level below (alternating diamond and
//     square lattices), so successive levels form the paper's
//     "high-resolution image and low-resolution quarter-image" split.
//   - Every pixel that is new at a level is predicted from its four
//     already-known neighbours (axial on even levels, diagonal on odd
//     levels). A neighbourhood-pattern classifier selects one of six
//     adaptive Huffman coders for the prediction error, and stores a 2-bit
//     activity class in the `ridge` array.
//   - For lossy operation the prediction errors are quantized before
//     entropy coding, with the encoder tracking the decoder's
//     reconstruction so both stay synchronized.
//
// The encoder is instrumented with package trace. It exposes exactly the
// 18 basic groups the paper's exploration works with: the three large
// 1-Mword arrays `image` (8 bit), `pyr` (8 bit) and `ridge` (2 bit), the
// per-context Huffman tree and weight arrays (`htree0..5`, ~10 bit;
// `hweight0..5`, 20 bit — the paper's "largest needs twenty bits"), and the
// small lookup/statistics arrays `qtab`, `iqtab` and `hist`.
package btpc

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/img"
	"repro/internal/trace"
)

// NumContexts is the number of neighbourhood-pattern classes and therefore
// the number of independent adaptive Huffman coders ("Six different Huffman
// coders are used, depending on the neighbourhood pattern").
const NumContexts = 6

// Context identifiers. CtxFlat..CtxTexture order the classes by increasing
// local activity.
const (
	CtxFlat    = 0 // all neighbours nearly equal
	CtxSmooth  = 1 // small dynamic range (also used near borders)
	CtxEdge1   = 2 // edge aligned with the first neighbour pair
	CtxEdge2   = 3 // edge aligned with the second neighbour pair
	CtxRidge   = 4 // the two pair means diverge: a ridge through the pixel
	CtxTexture = 5 // incoherent neighbourhood
)

const (
	directSyms = 128 // symbols coded directly by the Huffman coders
	escapeSym  = directSyms
	alphabet   = directSyms + 1
	escapeBits = 9   // raw bits after an escape (symbols reach 510)
	maxErrIdx  = 511 // error index range: e+255 for e in [-255,255]
)

// Params configures the encoder.
type Params struct {
	// Quant is the quantization step for prediction errors. 1 (or 0)
	// selects lossless operation.
	Quant int
	// TopMin is the minimum top-lattice dimension; the pyramid stops
	// splitting when the coarse lattice would drop below it. Default 4.
	TopMin int
}

func (p *Params) normalize() error {
	if p.Quant == 0 {
		p.Quant = 1
	}
	if p.Quant < 0 || p.Quant > 64 {
		return fmt.Errorf("btpc: quantization step %d out of range [1,64]", p.Quant)
	}
	if p.TopMin == 0 {
		p.TopMin = 4
	}
	if p.TopMin < 1 {
		return fmt.Errorf("btpc: TopMin %d out of range", p.TopMin)
	}
	return nil
}

// Stats summarizes one encode run.
type Stats struct {
	W, H          int
	TopLevel      int // number of predicted levels (pyramid height)
	TopPixels     int // pixels transmitted raw at the top
	BitsTotal     int // total output bits
	SymbolsPerCtx [NumContexts]uint64
	Escapes       uint64 // symbols that needed the escape path
}

// BitsPerPixel returns the achieved rate.
func (s *Stats) BitsPerPixel() float64 {
	return float64(s.BitsTotal) / float64(s.W*s.H)
}

var errHeader = errors.New("btpc: bad or truncated header")

// topT returns the lattice exponent t (top level L = 2t) for a w×h image.
func topT(w, h, topMin int) int {
	t := 0
	for {
		s := 1 << (t + 1)
		if (w+s-1)/s < topMin || (h+s-1)/s < topMin {
			return t
		}
		t++
		if t >= 14 { // 2^14 spacing covers any sane image
			return t
		}
	}
}

// zigzag maps a signed quantized error to a non-negative symbol.
func zigzag(q int) int {
	if q <= 0 {
		return -2 * q
	}
	return 2*q - 1
}

// unzigzag inverts zigzag.
func unzigzag(s int) int {
	if s&1 == 0 {
		return -(s / 2)
	}
	return (s + 1) / 2
}

// coderMeter routes a Huffman coder's internal accesses to two trace
// handles, making the coder's tree and weight arrays visible as basic
// groups.
type coderMeter struct {
	tree, weight *trace.Handle
}

func (m *coderMeter) TreeRead(n int)    { m.tree.Read(uint64(n)) }
func (m *coderMeter) TreeWrite(n int)   { m.tree.Write(uint64(n)) }
func (m *coderMeter) WeightRead(n int)  { m.weight.Read(uint64(n)) }
func (m *coderMeter) WeightWrite(n int) { m.weight.Write(uint64(n)) }

// pipeline bundles the state shared by encoder and decoder: the pyramid
// arrays, lookup tables and the six context coders. Keeping one definition
// guarantees model synchronization.
type pipeline struct {
	w, h   int
	quant  int
	t      int            // top lattice exponent; top level L = 2t
	src    *trace.Array2D // image (encoder) / out (decoder): pixel values
	pyr    *trace.Array2D // per-pixel coded-error magnitude (8 bit)
	ridge  *trace.Array2D // per-pixel 2-bit activity class
	qtab   *trace.Array1D // error -> symbol lookup (encoder only)
	iqtab  *trace.Array1D // symbol -> reconstructed error lookup
	hist   *trace.Array1D // symbol histogram (rate statistics)
	coders [NumContexts]*huffman.Coder
}

func newPipeline(rec *trace.Recorder, srcName string, w, h, quant, t int) *pipeline {
	p := &pipeline{
		w: w, h: h, quant: quant, t: t,
		src:   trace.NewArray2D(rec, srcName, w, h),
		pyr:   trace.NewArray2D(rec, "pyr", w, h),
		ridge: trace.NewArray2D(rec, "ridge", w, h),
		qtab:  trace.NewArray1D(rec, "qtab", maxErrIdx),
		iqtab: trace.NewArray1D(rec, "iqtab", maxErrIdx),
		hist:  trace.NewArray1D(rec, "hist", maxErrIdx),
	}
	// Build the quantization lookup tables. Table initialization is part of
	// the setup phase, not the pixel loops; the paper prunes such code, so
	// the writes are recorded in a dedicated scope.
	rec.Push("tabinit")
	for e := -255; e <= 255; e++ {
		q := e / quant
		if r := e % quant; r*2 >= quant {
			q++
		} else if r*2 <= -quant {
			q--
		}
		p.qtab.Set(e+255, int32(zigzag(q)))
	}
	for s := 0; s < maxErrIdx; s++ {
		p.iqtab.Set(s, int32(unzigzag(s)*quant))
	}
	rec.Pop()
	for i := range p.coders {
		p.coders[i] = huffman.New(alphabet)
		if rec != nil {
			p.coders[i].Instrument(&coderMeter{
				tree:   rec.NewHandle(fmt.Sprintf("htree%d", i)),
				weight: rec.NewHandle(fmt.Sprintf("hweight%d", i)),
			})
		}
	}
	return p
}

// neighborhood holds the classification result for one pixel.
type neighborhood struct {
	ctx        int
	pred       int
	ridgeClass int32
}

// classify inspects the four (or fewer, at borders) known neighbours of
// (x, y) at level k and selects the context, predictor and 2-bit activity
// class. Both encoder and decoder call it with identical state.
func (p *pipeline) classify(x, y, k int) neighborhood {
	s := 1 << (k >> 1)
	var nx, ny [4]int
	if k&1 == 0 {
		// Axial neighbours: W, E, N, S. Pair 1 = (W,E), pair 2 = (N,S).
		nx = [4]int{x - s, x + s, x, x}
		ny = [4]int{y, y, y - s, y + s}
	} else {
		// Diagonal neighbours: NW, SE, NE, SW. Pair 1 = (NW,SE).
		nx = [4]int{x - s, x + s, x + s, x - s}
		ny = [4]int{y - s, y + s, y - s, y + s}
	}
	var v [4]int
	var have [4]bool
	n, sum := 0, 0
	minV, maxV := 256, -1
	firstIdx := -1
	for i := 0; i < 4; i++ {
		if nx[i] < 0 || nx[i] >= p.w || ny[i] < 0 || ny[i] >= p.h {
			continue
		}
		val := int(p.src.Get(nx[i], ny[i]))
		v[i], have[i] = val, true
		n++
		sum += val
		if val < minV {
			minV = val
		}
		if val > maxV {
			maxV = val
		}
		if firstIdx < 0 {
			firstIdx = i
		}
	}
	if n == 0 {
		return neighborhood{ctx: CtxSmooth, pred: 128, ridgeClass: 1}
	}
	mean := (sum + n/2) / n
	// Local-activity feedback: the coded-error magnitude and activity class
	// of the first known neighbour tighten or relax the flatness thresholds.
	// This is the site where pyr and ridge are read together at the same
	// index — the access pattern that makes them the paper's merging
	// candidates.
	a0 := int(p.pyr.Get(nx[firstIdx], ny[firstIdx]))
	r0 := p.ridge.Get(nx[firstIdx], ny[firstIdx])
	busy := r0 >= 2 || a0 > 12
	t1, t2 := 5, 16
	if busy {
		t1, t2 = 3, 10
	}
	rng := maxV - minV
	switch {
	case n < 4:
		if rng <= t2 {
			return neighborhood{ctx: CtxSmooth, pred: mean, ridgeClass: 1}
		}
		return neighborhood{ctx: CtxTexture, pred: mean, ridgeClass: 3}
	case rng <= t1:
		return neighborhood{ctx: CtxFlat, pred: mean, ridgeClass: 0}
	case rng <= t2:
		return neighborhood{ctx: CtxSmooth, pred: mean, ridgeClass: 1}
	}
	d1 := abs(v[0] - v[1])
	d2 := abs(v[2] - v[3])
	m1 := (v[0] + v[1]) / 2
	m2 := (v[2] + v[3]) / 2
	switch {
	case d2 >= 2*d1+8:
		// Variation sits across pair 2: an edge aligned with pair 1.
		return neighborhood{ctx: CtxEdge1, pred: m1, ridgeClass: 2}
	case d1 >= 2*d2+8:
		return neighborhood{ctx: CtxEdge2, pred: m2, ridgeClass: 2}
	case abs(m1-m2) >= 24:
		// Both pairs are internally consistent but disagree: a ridge.
		return neighborhood{ctx: CtxRidge, pred: median4(v), ridgeClass: 3}
	default:
		return neighborhood{ctx: CtxTexture, pred: mean, ridgeClass: 3}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// median4 returns the mean of the two middle values of exactly four values.
func median4(v [4]int) int {
	a := v
	for i := 1; i < 4; i++ { // insertion sort
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
	return (a[1] + a[2]) / 2
}

// LevelSizes returns the pixel counts of the pyramid for a w×h image: the
// number of raw-coded top-lattice pixels and, for each predicted level k
// (index k, finest level 0), the number of pixels that are new at k. The
// pruned-specification builder uses these as loop iteration counts.
func LevelSizes(w, h, topMin int) (top int, levels []int) {
	if topMin == 0 {
		topMin = 4
	}
	t := topT(w, h, topMin)
	step := 1 << t
	for y := 0; y < h; y += step {
		for x := 0; x < w; x += step {
			top++
		}
	}
	levels = make([]int, 2*t)
	for k := 0; k < 2*t; k++ {
		n := 0
		forEachLatticePixel(w, h, k, func(x, y int) { n++ })
		levels[k] = n
	}
	return top, levels
}

// forEachLatticePixel visits the pixels that are new at level k in raster
// order. t is the top lattice exponent.
func forEachLatticePixel(w, h, k int, fn func(x, y int)) {
	t := k >> 1
	step := 1 << t
	odd := k&1 == 1
	for y := 0; y < h; y += step {
		for x := 0; x < w; x += step {
			xi, yi := x>>t, y>>t
			if odd {
				if xi&1 == 1 && yi&1 == 1 {
					fn(x, y)
				}
			} else if (xi+yi)&1 == 1 {
				fn(x, y)
			}
		}
	}
}

// Encode compresses src with the given parameters, recording memory
// accesses into rec (nil disables profiling). It returns the bit stream and
// encoding statistics.
func Encode(src *img.Gray, params Params, rec *trace.Recorder) ([]byte, *Stats, error) {
	if err := params.normalize(); err != nil {
		return nil, nil, err
	}
	w, h := src.W, src.H
	if w > 0xFFFF || h > 0xFFFF {
		return nil, nil, fmt.Errorf("btpc: image %dx%d exceeds 16-bit dimensions", w, h)
	}
	t := topT(w, h, params.TopMin)
	p := newPipeline(rec, "image", w, h, params.Quant, t)

	// Load phase: the input image arrives in the image array.
	rec.Push("input")
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p.src.Set(x, y, int32(src.At(x, y)))
		}
	}
	rec.Pop()

	bw := bitio.NewWriter()
	bw.WriteBits(uint64('B'), 8)
	bw.WriteBits(uint64('T'), 8)
	bw.WriteBits(uint64(params.Quant), 8)
	bw.WriteBits(uint64(w), 16)
	bw.WriteBits(uint64(h), 16)
	bw.WriteBits(uint64(t), 8)

	stats := &Stats{W: w, H: h, TopLevel: 2 * t}

	rec.Push("enc")
	// Top lattice: transmit raw.
	rec.Push("top")
	step := 1 << t
	for y := 0; y < h; y += step {
		for x := 0; x < w; x += step {
			v := p.src.Get(x, y)
			bw.WriteBits(uint64(v), 8)
			p.pyr.Set(x, y, 0)
			p.ridge.Set(x, y, 1)
			stats.TopPixels++
		}
	}
	rec.Pop()

	// Predicted levels, coarse to fine.
	for k := 2*t - 1; k >= 0; k-- {
		rec.Push(fmt.Sprintf("level%d", k))
		forEachLatticePixel(w, h, k, func(x, y int) {
			nb := p.classify(x, y, k)
			actual := int(p.src.Get(x, y))
			e := actual - nb.pred
			sym := int(p.qtab.Get(e + 255))
			eq := int(p.iqtab.Get(sym))
			recon := clamp255(nb.pred + eq)
			if p.quant > 1 {
				// Lossy: later predictions must see the decoder's values.
				p.src.Set(x, y, int32(recon))
			}
			p.hist.Set(sym, p.hist.Get(sym)+1)
			c := p.coders[nb.ctx]
			if sym < directSyms {
				c.Encode(sym, bw)
			} else {
				c.Encode(escapeSym, bw)
				bw.WriteBits(uint64(sym), escapeBits)
				stats.Escapes++
			}
			stats.SymbolsPerCtx[nb.ctx]++
			p.pyr.Set(x, y, int32(clamp255(abs(eq))))
			p.ridge.Set(x, y, nb.ridgeClass)
		})
		rec.Pop()
	}
	rec.Pop()

	stats.BitsTotal = bw.Len()
	return bw.Bytes(), stats, nil
}

func clamp255(v int) int {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Decode reconstructs an image from an Encode bit stream. For lossless
// streams (quant 1) the result is pixel-identical to the encoder input.
func Decode(data []byte, rec *trace.Recorder) (*img.Gray, error) {
	return decode(data, rec, 0)
}

// DecodeProgressive reconstructs an image from a prefix of the pyramid:
// entropy-coded levels are decoded down to (and including) stopLevel, and
// the remaining finer pixels are filled by prediction alone. BTPC's
// multiresolution structure makes this progressive-transmission mode free
// (Robinson 1997 §V); stopLevel 0 is identical to Decode.
func DecodeProgressive(data []byte, stopLevel int, rec *trace.Recorder) (*img.Gray, error) {
	if stopLevel < 0 {
		return nil, fmt.Errorf("btpc: negative stop level %d", stopLevel)
	}
	return decode(data, rec, stopLevel)
}

func decode(data []byte, rec *trace.Recorder, stopLevel int) (*img.Gray, error) {
	br := bitio.NewReader(data)
	hdr, err := br.ReadBits(16)
	if err != nil || hdr != uint64('B')<<8|uint64('T') {
		return nil, errHeader
	}
	quantU, err := br.ReadBits(8)
	if err != nil {
		return nil, errHeader
	}
	wU, err := br.ReadBits(16)
	if err != nil {
		return nil, errHeader
	}
	hU, err := br.ReadBits(16)
	if err != nil {
		return nil, errHeader
	}
	tU, err := br.ReadBits(8)
	if err != nil {
		return nil, errHeader
	}
	w, h, t, quant := int(wU), int(hU), int(tU), int(quantU)
	if w == 0 || h == 0 || quant == 0 || quant > 64 || t > 14 {
		return nil, errHeader
	}
	if stopLevel > 2*t {
		stopLevel = 2 * t // beyond the pyramid top: decode the top only
	}
	p := newPipeline(rec, "out", w, h, quant, t)

	rec.Push("dec")
	rec.Push("top")
	step := 1 << t
	for y := 0; y < h; y += step {
		for x := 0; x < w; x += step {
			v, err := br.ReadBits(8)
			if err != nil {
				rec.Pop()
				rec.Pop()
				return nil, fmt.Errorf("btpc: truncated top lattice: %w", err)
			}
			p.src.Set(x, y, int32(v))
			p.pyr.Set(x, y, 0)
			p.ridge.Set(x, y, 1)
		}
	}
	rec.Pop()

	var decodeErr error
	for k := 2*t - 1; k >= stopLevel && decodeErr == nil; k-- {
		rec.Push(fmt.Sprintf("level%d", k))
		forEachLatticePixel(w, h, k, func(x, y int) {
			if decodeErr != nil {
				return
			}
			nb := p.classify(x, y, k)
			c := p.coders[nb.ctx]
			sym, err := c.Decode(br)
			if err != nil {
				decodeErr = fmt.Errorf("btpc: level %d at (%d,%d): %w", k, x, y, err)
				return
			}
			if sym == escapeSym {
				raw, err := br.ReadBits(escapeBits)
				if err != nil {
					decodeErr = fmt.Errorf("btpc: truncated escape: %w", err)
					return
				}
				sym = int(raw)
				if sym >= maxErrIdx {
					decodeErr = fmt.Errorf("btpc: escape symbol %d out of range", sym)
					return
				}
			}
			eq := int(p.iqtab.Get(sym))
			recon := clamp255(nb.pred + eq)
			p.src.Set(x, y, int32(recon))
			p.hist.Set(sym, p.hist.Get(sym)+1)
			p.pyr.Set(x, y, int32(clamp255(abs(eq))))
			p.ridge.Set(x, y, nb.ridgeClass)
		})
		rec.Pop()
	}
	// Progressive mode: the undecoded finer levels are filled by prediction
	// alone (zero residual), in the same coarse-to-fine order.
	for k := stopLevel - 1; k >= 0 && decodeErr == nil; k-- {
		rec.Push(fmt.Sprintf("interp%d", k))
		forEachLatticePixel(w, h, k, func(x, y int) {
			nb := p.classify(x, y, k)
			p.src.Set(x, y, int32(clamp255(nb.pred)))
			p.pyr.Set(x, y, 0)
			p.ridge.Set(x, y, nb.ridgeClass)
		})
		rec.Pop()
	}
	rec.Pop()
	if decodeErr != nil {
		return nil, decodeErr
	}

	out := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Set(x, y, uint8(p.src.Peek(x, y)))
		}
	}
	return out, nil
}
