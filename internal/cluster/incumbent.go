package cluster

import (
	"math"
	"sync"
)

// Board is the cross-node incumbent exchange: the best known feasible cost
// per search key, as math.Float64bits (non-negative costs order like their
// bit patterns, so merging is a monotone min). It implements
// assign.BoundShare.
//
// The exchange is best-effort and loss-tolerant by design: a missing or
// stale entry only costs pruning power, never correctness, because
// consumers prune with strict > against it — a bound that is a real
// feasible cost of the same keyed problem can never cut a co-optimal
// subtree (see internal/assign). Entries are keyed by the full canonical
// problem string, not a hash of it, so a collision can never smuggle a
// foreign problem's cost into a search.
type Board struct {
	mu    sync.Mutex
	best  map[string]uint64
	order []string // FIFO eviction order
	cap   int

	// notify, when set, is called (outside the lock) for every local
	// Publish that improved the board — the server's broadcast hook.
	notify func(key string, bits uint64)
}

// defaultBoardCap bounds the board; a hint store, sized like the warm
// index.
const defaultBoardCap = 1024

// NewBoard builds a Board. capacity <= 0 uses the default; notify may be
// nil.
func NewBoard(capacity int, notify func(key string, bits uint64)) *Board {
	if capacity <= 0 {
		capacity = defaultBoardCap
	}
	return &Board{best: make(map[string]uint64), cap: capacity, notify: notify}
}

// Len reports how many incumbents the board currently holds.
func (b *Board) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.best)
}

// Best returns the best known cost bits for key.
func (b *Board) Best(key string) (uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bits, ok := b.best[key]
	return bits, ok
}

// merge lowers key's entry to bits if smaller, reporting improvement.
func (b *Board) merge(key string, bits uint64) bool {
	if math.IsNaN(math.Float64frombits(bits)) {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.best[key]
	if ok && cur <= bits {
		return false
	}
	if !ok {
		if len(b.order) >= b.cap {
			delete(b.best, b.order[0])
			b.order = b.order[1:]
		}
		b.order = append(b.order, key)
	}
	b.best[key] = bits
	return true
}

// Publish records a locally-found incumbent cost and, when it improves the
// board, notifies the broadcast hook. Called from the search hot path only
// on global incumbent improvements, which are rare.
func (b *Board) Publish(key string, bits uint64) {
	if b.merge(key, bits) && b.notify != nil {
		b.notify(key, bits)
	}
}

// Merge records a peer-broadcast incumbent cost without re-broadcasting
// (the origin node already fanned it out; re-notifying would echo forever).
// It reports whether the entry improved.
func (b *Board) Merge(key string, bits uint64) bool {
	return b.merge(key, bits)
}
