package cluster

import (
	"fmt"
	"testing"
)

// buildViews constructs one Router per member, each initialised with the
// same full member list (self + everyone else), i.e. a consistent view.
func buildViews(t *testing.T, members []string) map[string]*Router {
	t.Helper()
	views := make(map[string]*Router, len(members))
	for _, self := range members {
		var peers []string
		for _, m := range members {
			if m != self {
				peers = append(peers, m)
			}
		}
		r, err := New(Config{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		views[self] = r
	}
	return views
}

// TestAtMostOneOwnerAcrossConsistentViews is the ownership safety
// property behind shard handoff: as long as every node holds the same
// membership view, exactly one node reports Owns()==true for any key —
// before and after membership churn applied to all views.
func TestAtMostOneOwnerAcrossConsistentViews(t *testing.T) {
	members := []string{
		"http://n1.test", "http://n2.test", "http://n3.test",
		"http://n4.test", "http://n5.test",
	}
	views := buildViews(t, members)

	check := func(stage string) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			key := uint64(i) * 0x9e3779b97f4a7c15
			owners := 0
			for _, r := range views {
				if r.Owns(key) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("%s: key %#x has %d owners, want exactly 1", stage, key, owners)
			}
		}
	}
	check("initial 5-node view")

	// Churn: n3 leaves, n6 joins. Every surviving view applies the same
	// SetMembers; the departed node's view is discarded, the newcomer's is
	// built fresh — exactly what syncMembership does on each node.
	next := []string{
		"http://n1.test", "http://n2.test",
		"http://n4.test", "http://n5.test", "http://n6.test",
	}
	delete(views, "http://n3.test")
	for self, r := range views {
		var rest []string
		for _, m := range next {
			if m != self {
				rest = append(rest, m)
			}
		}
		r.SetMembers(rest)
	}
	joined, err := New(Config{Self: "http://n6.test", Peers: next[:4]})
	if err != nil {
		t.Fatal(err)
	}
	views["http://n6.test"] = joined
	check("post-churn view (leave + join)")

	// Sanity: all views agree on the ring itself, not just ownership.
	var want string
	for self, r := range views {
		got := fmt.Sprintf("%v", r.Ring().Members())
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("view %s has ring %s, others have %s", self, got, want)
		}
	}
}
