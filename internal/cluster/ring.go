// Package cluster implements the multi-node serving layer: a consistent-hash
// ring that shards request keys across dtsed nodes, a router that forwards
// requests to their ring owner with hedged retries and health-gated peer
// ejection, and a bounded incumbent board for best-effort cross-node
// branch-and-bound bound sharing.
//
// The ring hashes with memo.Fingerprint64, the same FNV-1a the session cache
// shards with, so a key's ring owner is also the node whose session/disk
// cache and warm-start index stay hot for that key's neighbourhood.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/memo"
)

// ringVnodes is the virtual-node count per member: enough that a 3-node
// ring splits the key space within a few percent of evenly, cheap enough
// that ring construction stays trivial.
const ringVnodes = 128

// mix64 is a 64-bit avalanche finalizer (the MurmurHash3 fmix64 constants)
// applied to every ring position. FNV-1a mixes its high bits weakly on
// short inputs — vnode labels like "host#7" — and ring arithmetic compares
// full 64-bit positions, so without the finalizer arc lengths skew badly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Ring is an immutable consistent-hash ring over a fixed member set.
// Membership is fixed at construction (dtsed clusters are configured, not
// discovered); liveness changes are layered on top by the Router, which
// skips ejected members during the ring walk.
type Ring struct {
	members []string // sorted unique
	vnodes  []vnode  // sorted by hash
}

type vnode struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given members (duplicates collapsed,
// order irrelevant: two nodes constructing a ring from the same set in any
// order agree on every owner).
func NewRing(members []string) *Ring {
	set := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m != "" && !set[m] {
			set[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for mi, m := range uniq {
		for v := 0; v < ringVnodes; v++ {
			r.vnodes = append(r.vnodes, vnode{
				hash:   mix64(memo.Fingerprint64(fmt.Sprintf("%s#%d", m, v))),
				member: mi,
			})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // total order even on (vanishing) hash ties
	})
	return r
}

// Members returns the sorted member set.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key: the first vnode clockwise from the
// key's hash position.
func (r *Ring) Owner(key uint64) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	pos := mix64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= pos })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.members[r.vnodes[i].member]
}

// Walk returns every member in ring order starting at key's owner: the
// owner first, then each distinct member in the order their vnodes appear
// clockwise. This is the hedge/failover preference order — when the owner
// is down, the next member in the walk inherits the key, on every node
// that shares the ring.
func (r *Ring) Walk(key uint64) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	pos := mix64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= pos })
	if start == len(r.vnodes) {
		start = 0
	}
	seen := make([]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for i := 0; i < len(r.vnodes) && len(out) < len(r.members); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.member] {
			seen[v.member] = true
			out = append(out, r.members[v.member])
		}
	}
	return out
}
