package cluster

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Membership state machine, SWIM-flavoured: every member carries an
// incarnation number and a state (alive / suspect / left), digests of the
// full table piggyback on gossip exchanges, and conflicting claims resolve
// by incarnation first, then by state precedence. A member suspected of
// being down is only removed after a suspicion timeout — and a live member
// that sees itself suspected refutes by bumping its own incarnation, so a
// flapping node cannot be erased by one stale digest.

// MemberState is a member's lifecycle state in the digest.
type MemberState int

const (
	// StateAlive members are in the ring.
	StateAlive MemberState = iota
	// StateSuspect members are still in the ring (ownership must not flap
	// on one missed probe) but are on a removal timer.
	StateSuspect
	// StateLeft members are out of the ring; the tombstone is kept for a
	// while so late digests cannot resurrect them at the same incarnation.
	StateLeft
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateLeft:
		return "left"
	default:
		return "state(" + strconv.Itoa(int(s)) + ")"
	}
}

// MemberEntry is one row of the membership digest as gossiped on the wire.
// Incarnation is serialized as a string so a uint64 above 2^53 survives
// JSON number handling in non-Go readers.
type MemberEntry struct {
	ID          string      `json:"id"`
	Incarnation uint64      `json:"inc,string"`
	State       MemberState `json:"state"`
}

type memberRow struct {
	inc     uint64
	state   MemberState
	changed time.Time // when the row last transitioned (suspicion/tombstone clock)
}

// Membership is one node's view of the cluster member table.
type Membership struct {
	self string

	mu   sync.Mutex
	rows map[string]*memberRow
}

// NewMembership builds a table containing self (alive, incarnation 1) and
// any seed members (alive, incarnation 0 — a real digest from them wins
// immediately).
func NewMembership(self string, seeds []string) *Membership {
	m := &Membership{
		self: self,
		rows: map[string]*memberRow{
			self: {inc: 1, state: StateAlive, changed: time.Now()},
		},
	}
	for _, s := range seeds {
		if s == "" || s == self {
			continue
		}
		m.rows[s] = &memberRow{inc: 0, state: StateAlive, changed: time.Now()}
	}
	return m
}

// Self returns this node's member URL.
func (m *Membership) Self() string { return m.self }

// Digest returns the full table sorted by id — the gossip payload.
func (m *Membership) Digest() []MemberEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberEntry, 0, len(m.rows))
	for id, r := range m.rows {
		out = append(out, MemberEntry{ID: id, Incarnation: r.inc, State: r.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive returns the members currently in the ring (alive or suspect),
// sorted. Suspects stay in the ring: the health layer already routes
// around them, and removal waits for the suspicion timeout so one dropped
// gossip round cannot reshuffle ownership.
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.rows))
	for id, r := range m.rows {
		if r.state != StateLeft {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// stateRank orders states for equal-incarnation conflicts: a departure
// claim beats a suspicion beats liveness. (Alive at a *higher* incarnation
// beats everything — that is the refutation path.)
func stateRank(s MemberState) int {
	switch s {
	case StateLeft:
		return 2
	case StateSuspect:
		return 1
	default:
		return 0
	}
}

// Merge folds a remote digest into the table. Returns true when the set of
// ring members (or self's incarnation) changed in a way the caller should
// react to — rebuild the ring, kick handoff, re-gossip.
func (m *Membership) Merge(entries []MemberEntry) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	now := time.Now()
	for _, e := range entries {
		if e.ID == "" {
			continue
		}
		if e.ID == m.self {
			// Refutation: if anyone claims we are suspect or gone, outbid
			// them. Our own row is the one row only we may advance.
			r := m.rows[m.self]
			if e.State != StateAlive && e.Incarnation >= r.inc {
				r.inc = e.Incarnation + 1
				r.changed = now
				changed = true
			}
			continue
		}
		r, ok := m.rows[e.ID]
		if !ok {
			m.rows[e.ID] = &memberRow{inc: e.Incarnation, state: e.State, changed: now}
			if e.State != StateLeft {
				changed = true
			}
			continue
		}
		if e.Incarnation < r.inc {
			continue
		}
		if e.Incarnation == r.inc && stateRank(e.State) <= stateRank(r.state) {
			continue
		}
		inRing := r.state != StateLeft
		r.inc = e.Incarnation
		r.state = e.State
		r.changed = now
		if (e.State != StateLeft) != inRing {
			changed = true
		}
	}
	return changed
}

// Suspect marks id as suspect at its current incarnation (a failed probe).
// No-op for unknown, already-suspect, or departed members; never self.
func (m *Membership) Suspect(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.self {
		return false
	}
	r, ok := m.rows[id]
	if !ok || r.state != StateAlive {
		return false
	}
	r.state = StateSuspect
	r.changed = time.Now()
	return true
}

// Confirm marks id alive at its current incarnation (a successful probe
// clears suspicion). Never resurrects a departed member — that requires a
// higher incarnation via Merge.
func (m *Membership) Confirm(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.rows[id]
	if !ok || r.state != StateSuspect {
		return false
	}
	r.state = StateAlive
	r.changed = time.Now()
	return true
}

// Leave marks self as departed at a bumped incarnation, so the claim beats
// any alive row other nodes hold. The returned digest is the goodbye
// announcement.
func (m *Membership) Leave() []MemberEntry {
	m.mu.Lock()
	r := m.rows[m.self]
	r.inc++
	r.state = StateLeft
	r.changed = time.Now()
	m.mu.Unlock()
	return m.Digest()
}

// Tick expires suspicions into departures and drops old tombstones.
// Returns the members confirmed dead this tick (ring change when non-empty).
func (m *Membership) Tick(suspicionTimeout, tombstoneTTL time.Duration) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	var dead []string
	for id, r := range m.rows {
		if id == m.self {
			continue
		}
		switch r.state {
		case StateSuspect:
			if now.Sub(r.changed) >= suspicionTimeout {
				r.state = StateLeft
				r.changed = now
				dead = append(dead, id)
			}
		case StateLeft:
			if tombstoneTTL > 0 && now.Sub(r.changed) >= tombstoneTTL {
				delete(m.rows, id)
			}
		}
	}
	sort.Strings(dead)
	return dead
}
