package cluster

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

func entryFor(d []MemberEntry, id string) (MemberEntry, bool) {
	for _, e := range d {
		if e.ID == id {
			return e, true
		}
	}
	return MemberEntry{}, false
}

func TestMembershipJoinViaMerge(t *testing.T) {
	a := NewMembership("A", nil)
	b := NewMembership("B", []string{"A"})
	if !a.Merge(b.Digest()) {
		t.Fatal("A should see B's join as a ring change")
	}
	got := a.Alive()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("A's ring view = %v, want [A B]", got)
	}
	// Re-merging the same digest is idempotent.
	if a.Merge(b.Digest()) {
		t.Fatal("re-merging an unchanged digest must not report a ring change")
	}
}

func TestMembershipHigherIncarnationWins(t *testing.T) {
	a := NewMembership("A", nil)
	a.Merge([]MemberEntry{{ID: "B", Incarnation: 3, State: StateAlive}})
	// A stale lower-incarnation departure claim loses.
	a.Merge([]MemberEntry{{ID: "B", Incarnation: 2, State: StateLeft}})
	if got := a.Alive(); len(got) != 2 {
		t.Fatalf("stale departure must not remove B: %v", got)
	}
	// Same incarnation: Left outranks Alive.
	a.Merge([]MemberEntry{{ID: "B", Incarnation: 3, State: StateLeft}})
	if got := a.Alive(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("equal-incarnation departure should remove B: %v", got)
	}
	// Alive at a higher incarnation resurrects (rejoin after leave).
	a.Merge([]MemberEntry{{ID: "B", Incarnation: 4, State: StateAlive}})
	if got := a.Alive(); len(got) != 2 {
		t.Fatalf("higher-incarnation alive should resurrect B: %v", got)
	}
}

func TestMembershipSelfRefutation(t *testing.T) {
	a := NewMembership("A", nil)
	d, _ := entryFor(a.Digest(), "A")
	// Someone gossips that A is suspect at A's current incarnation.
	if !a.Merge([]MemberEntry{{ID: "A", Incarnation: d.Incarnation, State: StateSuspect}}) {
		t.Fatal("a suspicion about self must trigger a refutation")
	}
	d2, _ := entryFor(a.Digest(), "A")
	if d2.Incarnation <= d.Incarnation {
		t.Fatalf("refutation must bump incarnation: %d -> %d", d.Incarnation, d2.Incarnation)
	}
	if d2.State != StateAlive {
		t.Fatalf("self must stay alive after refutation, got %v", d2.State)
	}
	// Even a Left claim about self is refuted — a flapping node cannot be
	// erased while it is running.
	if !a.Merge([]MemberEntry{{ID: "A", Incarnation: d2.Incarnation + 5, State: StateLeft}}) {
		t.Fatal("a departure claim about a live self must be refuted")
	}
	d3, _ := entryFor(a.Digest(), "A")
	if d3.State != StateAlive || d3.Incarnation <= d2.Incarnation+5 {
		t.Fatalf("refutation must outbid the claim: %+v", d3)
	}
}

func TestMembershipSuspicionLifecycle(t *testing.T) {
	a := NewMembership("A", []string{"B"})
	if !a.Suspect("B") {
		t.Fatal("suspecting an alive member should succeed")
	}
	if a.Suspect("B") {
		t.Fatal("suspecting twice should be a no-op")
	}
	// Suspect members remain ring members until the timeout.
	if got := a.Alive(); len(got) != 2 {
		t.Fatalf("suspects must stay in the ring: %v", got)
	}
	// A successful probe clears suspicion.
	if !a.Confirm("B") {
		t.Fatal("confirming a suspect should succeed")
	}
	if dead := a.Tick(0, 0); len(dead) != 0 {
		t.Fatalf("confirmed member must not expire: %v", dead)
	}
	// Suspect again; this time let it expire.
	a.Suspect("B")
	dead := a.Tick(0, 0)
	if len(dead) != 1 || dead[0] != "B" {
		t.Fatalf("expired suspicion should confirm death: %v", dead)
	}
	if got := a.Alive(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("dead member must leave the ring: %v", got)
	}
	// Confirm on a departed member must not resurrect it.
	if a.Confirm("B") {
		t.Fatal("confirm must not resurrect a departed member")
	}
}

func TestMembershipLeaveAndTombstoneTTL(t *testing.T) {
	a := NewMembership("A", []string{"B"})
	b := NewMembership("B", []string{"A"})
	a.Merge(b.Digest())
	goodbye := b.Leave()
	if !a.Merge(goodbye) {
		t.Fatal("a goodbye digest should change A's ring view")
	}
	if got := a.Alive(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("left member must be out of the ring: %v", got)
	}
	// The tombstone blocks resurrection at the same incarnation...
	gb, _ := entryFor(goodbye, "B")
	a.Merge([]MemberEntry{{ID: "B", Incarnation: gb.Incarnation, State: StateAlive}})
	if got := a.Alive(); len(got) != 1 {
		t.Fatalf("same-incarnation alive must not resurrect a tombstone: %v", got)
	}
	// ...until the TTL drops it.
	time.Sleep(2 * time.Millisecond)
	a.Tick(time.Hour, time.Millisecond)
	if _, ok := entryFor(a.Digest(), "B"); ok {
		t.Fatal("tombstone should be garbage-collected after the TTL")
	}
}

func TestMembershipDigestWireRoundTrip(t *testing.T) {
	a := NewMembership("A", []string{"B"})
	a.Suspect("B")
	a.Merge([]MemberEntry{{ID: "C", Incarnation: 1 << 60, State: StateAlive}})
	raw, err := json.Marshal(a.Digest())
	if err != nil {
		t.Fatal(err)
	}
	var back []MemberEntry
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	c, ok := entryFor(back, "C")
	if !ok || c.Incarnation != 1<<60 {
		t.Fatalf("large incarnation must round-trip exactly, got %+v", c)
	}
	bEnt, _ := entryFor(back, "B")
	if bEnt.State != StateSuspect {
		t.Fatalf("state must round-trip, got %v", bEnt.State)
	}
}

// TestMembershipConvergence gossips random pairs until every node's ring
// view matches, in the presence of one leave and one rejoin.
func TestMembershipConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := []string{"A", "B", "C", "D", "E"}
	nodes := make(map[string]*Membership, len(ids))
	for _, id := range ids {
		nodes[id] = NewMembership(id, []string{"A"})
	}
	gossip := func(rounds int) {
		for i := 0; i < rounds; i++ {
			x := ids[rng.Intn(len(ids))]
			y := ids[rng.Intn(len(ids))]
			if x == y {
				continue
			}
			nodes[x].Merge(nodes[y].Digest())
			nodes[y].Merge(nodes[x].Digest())
		}
	}
	gossip(200)
	for _, id := range ids {
		if got := nodes[id].Alive(); len(got) != len(ids) {
			t.Fatalf("node %s did not converge: %v", id, got)
		}
	}
	// E leaves; everyone must converge on the 4-member view.
	goodbye := nodes["E"].Leave()
	nodes["A"].Merge(goodbye)
	ids = ids[:4]
	gossip(200)
	for _, id := range ids {
		if got := nodes[id].Alive(); len(got) != 4 {
			t.Fatalf("node %s did not see E leave: %v", id, got)
		}
	}
	// E rejoins with a fresh table; its self-refutation outbids the
	// tombstone once it hears the old gossip.
	nodes["E"] = NewMembership("E", []string{"A"})
	nodes["E"].Merge(nodes["A"].Digest())
	nodes["A"].Merge(nodes["E"].Digest())
	ids = append(ids, "E")
	gossip(200)
	for _, id := range ids {
		if got := nodes[id].Alive(); len(got) != 5 {
			t.Fatalf("node %s did not see E rejoin: %v", id, got)
		}
	}
}
