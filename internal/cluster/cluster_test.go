package cluster

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memo"
)

// --- ring ---

func TestRingAgreementAcrossMemberOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n2", "n1"}) // shuffled, with a duplicate
	for i := 0; i < 1000; i++ {
		key := memo.Fingerprint64(fmt.Sprintf("key-%d", i))
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("ring views disagree for key %d: %q vs %q", key, ao, bo)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(memo.Fingerprint64(fmt.Sprintf("key-%d", i)))]++
	}
	for _, m := range r.Members() {
		if frac := float64(counts[m]) / n; frac < 0.20 || frac > 0.47 {
			t.Fatalf("member %s owns %.1f%% of keys; want a roughly even split", m, 100*frac)
		}
	}
}

func TestRingWalkProperties(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"})
	for i := 0; i < 200; i++ {
		key := memo.Fingerprint64(fmt.Sprintf("key-%d", i))
		walk := r.Walk(key)
		if len(walk) != 4 {
			t.Fatalf("walk has %d members, want 4", len(walk))
		}
		if walk[0] != r.Owner(key) {
			t.Fatalf("walk starts at %q, owner is %q", walk[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range walk {
			if seen[m] {
				t.Fatalf("walk repeats member %q", m)
			}
			seen[m] = true
		}
	}
}

// --- router helpers ---

// keyOwnedBy finds a key whose ring walk starts at member with every other
// remote peer also preceding self (so failover stays remote in tests).
func keyOwnedBy(t *testing.T, r *Router, member string) uint64 {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := memo.Fingerprint64(fmt.Sprintf("probe-%d", i))
		cands := r.candidates(key)
		if len(cands) == len(r.peers) && cands[0].id == member {
			return key
		}
	}
	t.Fatalf("no key owned by %s found", member)
	return 0
}

func newTestRouter(t *testing.T, peers []string, cfg Config) *Router {
	t.Helper()
	cfg.Self = "http://self.invalid"
	cfg.Peers = peers
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestForwardRoutesToOwner(t *testing.T) {
	var hitA, hitB atomic.Int64
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitA.Add(1)
		w.Write([]byte("from-a"))
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitB.Add(1)
		w.Write([]byte("from-b"))
	}))
	defer b.Close()
	r := newTestRouter(t, []string{a.URL, b.URL}, Config{})
	key := keyOwnedBy(t, r, a.URL)
	res, ok := r.Forward(context.Background(), key, http.MethodPost, "/x", []byte("{}"), nil)
	if !ok {
		t.Fatal("forward failed")
	}
	if res.Peer != a.URL || string(res.Body) != "from-a" || res.Hedged {
		t.Fatalf("got peer=%s body=%q hedged=%v; want the owner a, unhedged", res.Peer, res.Body, res.Hedged)
	}
	if hitB.Load() != 0 {
		t.Fatalf("non-owner served %d requests", hitB.Load())
	}
}

func TestForwardHedgesSlowPeer(t *testing.T) {
	release := make(chan struct{})
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // the owner hangs until the test ends
		w.Write([]byte("from-a"))
	}))
	defer a.Close()
	defer close(release)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("from-b"))
	}))
	defer b.Close()
	r := newTestRouter(t, []string{a.URL, b.URL}, Config{HedgeDelay: 10 * time.Millisecond})
	key := keyOwnedBy(t, r, a.URL)
	res, ok := r.Forward(context.Background(), key, http.MethodPost, "/x", []byte("{}"), nil)
	if !ok {
		t.Fatal("forward failed")
	}
	if res.Peer != b.URL || !res.Hedged {
		t.Fatalf("got peer=%s hedged=%v; want the hedge target b", res.Peer, res.Hedged)
	}
}

func TestForwardFailsOverAndEjects(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("from-b"))
	}))
	defer b.Close()
	r := newTestRouter(t, []string{a.URL, b.URL}, Config{EjectAfter: 3, EjectFor: time.Hour})
	key := keyOwnedBy(t, r, a.URL)
	for i := 0; i < 3; i++ {
		res, ok := r.Forward(context.Background(), key, http.MethodPost, "/x", []byte("{}"), nil)
		if !ok || res.Peer != b.URL {
			t.Fatalf("attempt %d: ok=%v peer=%v; want failover to b", i, ok, res)
		}
	}
	if r.peers[a.URL].alive(time.Now()) {
		t.Fatal("peer a should be ejected after 3 consecutive failures")
	}
	// An ejected owner's keys fall through the walk without contacting it.
	res, ok := r.Forward(context.Background(), key, http.MethodPost, "/x", []byte("{}"), nil)
	if !ok || res.Hedged {
		t.Fatalf("post-ejection forward: ok=%v res=%+v; want a direct (unhedged) answer from b", ok, res)
	}
}

func TestPeerRejoinsAfterWindow(t *testing.T) {
	p := &Peer{id: "x"}
	now := time.Now()
	for i := 0; i < 3; i++ {
		p.fail(3, 50*time.Millisecond, now)
	}
	if p.alive(now) {
		t.Fatal("peer should be down right after ejection")
	}
	after := now.Add(100 * time.Millisecond)
	if p.alive(after) {
		t.Fatal("an expired window must not read as alive until a probe succeeds")
	}
	if !p.probeAlive(after) {
		t.Fatal("the first caller after the window should win the half-open probe")
	}
	if p.probeAlive(after) {
		t.Fatal("a second caller must not get a concurrent probe")
	}
	p.ok(time.Millisecond)
	if !p.alive(now) {
		t.Fatal("a successful probe should fully revive the peer")
	}
	if !p.probeAlive(now) {
		t.Fatal("a revived peer should be freely routable")
	}
}

// TestHalfOpenSingleProbe is the concurrency regression for the probing
// flag: after the ejection window expires, exactly one of N concurrent
// callers may contact the peer; the rest keep treating it as down. On the
// pre-fix Router every caller flipped alive at once (a rejoin stampede).
func TestHalfOpenSingleProbe(t *testing.T) {
	p := &Peer{id: "x"}
	now := time.Now()
	p.fail(1, 10*time.Millisecond, now)
	after := now.Add(20 * time.Millisecond)

	const callers = 64
	var wg sync.WaitGroup
	var won int64
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if p.probeAlive(after) {
				atomic.AddInt64(&won, 1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if won != 1 {
		t.Fatalf("exactly one caller should win the half-open probe, got %d", won)
	}

	// A failed probe re-ejects; the slot is only re-winnable after the
	// new window, and again by exactly one caller.
	p.fail(1, 10*time.Millisecond, after)
	if p.probeAlive(after.Add(time.Millisecond)) {
		t.Fatal("peer should be fully down again after a failed probe")
	}
	later := after.Add(20 * time.Millisecond)
	if !p.probeAlive(later) {
		t.Fatal("next window should re-open a probe slot")
	}
	if p.probeAlive(later) {
		t.Fatal("second probe in the same window should be refused")
	}

	// ok() clears the flag and fully revives.
	p.ok(time.Millisecond)
	var aliveN int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.probeAlive(later) {
				atomic.AddInt64(&aliveN, 1)
			}
		}()
	}
	wg.Wait()
	if aliveN != callers {
		t.Fatalf("a revived peer should admit everyone, got %d/%d", aliveN, callers)
	}
}

// TestHalfOpenStaleProbeExpires pins that an abandoned probe claim (winner
// never reported back) does not wedge the peer down forever.
func TestHalfOpenStaleProbeExpires(t *testing.T) {
	p := &Peer{id: "x"}
	now := time.Now()
	p.fail(1, 10*time.Millisecond, now)
	after := now.Add(20 * time.Millisecond)
	if !p.probeAlive(after) {
		t.Fatal("first caller should win the probe")
	}
	if p.probeAlive(after.Add(5 * time.Millisecond)) {
		t.Fatal("probe slot should still be held within the window")
	}
	if !p.probeAlive(after.Add(15 * time.Millisecond)) {
		t.Fatal("a stale probe claim should expire and be re-winnable")
	}
}

// TestRouterHalfOpenNoStampede drives the same property through the
// Router's forwarding path: a down peer whose window has expired shows up
// in at most one concurrent caller's candidate list.
func TestRouterHalfOpenNoStampede(t *testing.T) {
	r := newTestRouter(t, []string{"http://a.invalid"}, Config{EjectAfter: 1, EjectFor: 5 * time.Millisecond})
	key := keyOwnedBy(t, r, "http://a.invalid")
	r.peer("http://a.invalid").fail(1, 5*time.Millisecond, time.Now())
	time.Sleep(20 * time.Millisecond) // let the ejection window expire

	const callers = 32
	var wg sync.WaitGroup
	var sawPeer int64
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if len(r.candidates(key)) > 0 {
				atomic.AddInt64(&sawPeer, 1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if sawPeer != 1 {
		t.Fatalf("exactly one caller should see the half-open peer as a candidate, got %d", sawPeer)
	}
	if r.Owns(key) != true {
		t.Fatal("Owns must keep reading the peer as down while the probe is out")
	}
}

func TestSetMembersReentrant(t *testing.T) {
	r := newTestRouter(t, []string{"http://a.invalid"}, Config{EjectAfter: 1, EjectFor: time.Hour})
	pa := r.peer("http://a.invalid")
	if pa == nil {
		t.Fatal("initial peer missing")
	}
	// Eject a, then remove it from the membership.
	pa.fail(1, time.Hour, time.Now())
	added, removed := r.SetMembers([]string{r.Self()})
	if len(added) != 0 || len(removed) != 1 || removed[0] != "http://a.invalid" {
		t.Fatalf("unexpected membership delta: added=%v removed=%v", added, removed)
	}
	if r.peer("http://a.invalid") != nil {
		t.Fatal("removed peer should be dropped from the peer map")
	}
	// The member returns (new incarnation): it must come back with fresh
	// health state, not the stale ejection.
	added, removed = r.SetMembers([]string{"http://a.invalid"})
	if len(added) != 1 || len(removed) != 0 {
		t.Fatalf("unexpected rejoin delta: added=%v removed=%v", added, removed)
	}
	back := r.peer("http://a.invalid")
	if back == nil || !back.alive(time.Now()) {
		t.Fatal("rejoined member must start alive, not inherit downUntil")
	}
	if back == pa {
		t.Fatal("rejoined member should get fresh Peer state")
	}
	// Same set again is a no-op.
	added, removed = r.SetMembers([]string{"http://a.invalid"})
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("idempotent SetMembers should report no delta, got added=%v removed=%v", added, removed)
	}
	// Retained members keep health state across unrelated changes.
	back.fail(1, time.Hour, time.Now())
	r.SetMembers([]string{"http://a.invalid", "http://b.invalid"})
	if r.peer("http://a.invalid") != back {
		t.Fatal("retained member should keep its Peer state across a ring change")
	}
	if back.alive(time.Now()) {
		t.Fatal("retained member's ejection must survive the ring change")
	}
}

func TestPeersReturnsCopy(t *testing.T) {
	r := newTestRouter(t, []string{"http://a.invalid"}, Config{})
	m := r.Peers()
	delete(m, "http://a.invalid")
	m["http://z.invalid"] = &Peer{id: "http://z.invalid"}
	if r.peer("http://a.invalid") == nil {
		t.Fatal("mutating the returned map must not affect the router")
	}
	if r.peer("http://z.invalid") != nil {
		t.Fatal("mutating the returned map must not affect the router")
	}
}

func TestOwnershipShiftsWithLiveness(t *testing.T) {
	r := newTestRouter(t, []string{"http://a.invalid", "http://b.invalid"}, Config{EjectAfter: 1, EjectFor: time.Hour})
	key := keyOwnedBy(t, r, "http://a.invalid")
	if r.Owns(key) {
		t.Fatal("self should not own a peer's key while the peer is up")
	}
	now := time.Now()
	r.peers["http://a.invalid"].fail(1, time.Hour, now)
	r.peers["http://b.invalid"].fail(1, time.Hour, now)
	if !r.Owns(key) {
		t.Fatal("self should inherit the key once every preceding walk member is down")
	}
}

// --- board ---

func TestBoardMonotoneMerge(t *testing.T) {
	b := NewBoard(0, nil)
	key := "k"
	if !b.Merge(key, math.Float64bits(10)) {
		t.Fatal("first merge should improve")
	}
	if b.Merge(key, math.Float64bits(11)) {
		t.Fatal("a worse cost should not improve the board")
	}
	if !b.Merge(key, math.Float64bits(9)) {
		t.Fatal("a better cost should improve the board")
	}
	bits, ok := b.Best(key)
	if !ok || math.Float64frombits(bits) != 9 {
		t.Fatalf("best = %v,%v; want 9", math.Float64frombits(bits), ok)
	}
	if b.Merge(key, math.Float64bits(math.NaN())) {
		t.Fatal("NaN must be rejected")
	}
}

func TestBoardNotifyOnPublishOnly(t *testing.T) {
	var notified atomic.Int64
	b := NewBoard(0, func(string, uint64) { notified.Add(1) })
	b.Publish("k", math.Float64bits(5))
	if notified.Load() != 1 {
		t.Fatalf("publish notified %d times, want 1", notified.Load())
	}
	b.Publish("k", math.Float64bits(6)) // no improvement: no notify
	b.Merge("k", math.Float64bits(1))   // remote merge: never notifies (no echo)
	if notified.Load() != 1 {
		t.Fatalf("notified %d times total, want 1", notified.Load())
	}
}

func TestBoardBounded(t *testing.T) {
	b := NewBoard(4, nil)
	for i := 0; i < 10; i++ {
		b.Merge(fmt.Sprintf("k%d", i), math.Float64bits(float64(i+1)))
	}
	if len(b.best) != 4 || len(b.order) != 4 {
		t.Fatalf("board holds %d/%d entries, want 4", len(b.best), len(b.order))
	}
	if _, ok := b.Best("k0"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := b.Best("k9"); !ok {
		t.Fatal("newest entry should be present")
	}
}
