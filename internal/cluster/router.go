package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults for the health/hedging policy. All are overridable via Config.
const (
	// defaultHedgeDelay is the hedge floor/fallback: with too few latency
	// samples for a p99 the router hedges after this long.
	defaultHedgeDelay = 50 * time.Millisecond
	// maxHedgeDelay caps the p99-derived hedge delay so one pathological
	// request cannot disable hedging for the rest of the run.
	maxHedgeDelay = 2 * time.Second
	// hedgeMinSamples is the per-peer sample count below which the p99 is
	// noise and the configured floor is used instead.
	hedgeMinSamples = 16
	// defaultEjectAfter consecutive failures mark a peer down.
	defaultEjectAfter = 3
	// defaultEjectFor is how long a down peer stays out of the ring walk
	// before a half-open probe may rejoin it.
	defaultEjectFor = 2 * time.Second
	// maxPeerResponse bounds a forwarded response body read.
	maxPeerResponse = 32 << 20
)

// Config configures a Router.
type Config struct {
	// Self is this node's advertised base URL (scheme://host:port).
	Self string
	// Peers is the full cluster membership, self included or not (it is
	// added). Every node must be configured with the same set.
	Peers []string
	// HedgeDelay is the hedge floor and small-sample fallback; 0 means
	// defaultHedgeDelay. The live delay per peer is max(HedgeDelay,
	// that peer's observed p99), capped at maxHedgeDelay.
	HedgeDelay time.Duration
	// EjectAfter / EjectFor tune health-gated ejection; 0 means defaults.
	EjectAfter int
	EjectFor   time.Duration
	// Obs receives the dtse_cluster_* counters and per-peer latency
	// histograms; nil disables that telemetry.
	Obs *obs.Observer
	// Client is the forwarding HTTP client; nil uses a default with
	// connection pooling.
	Client *http.Client
}

// Peer is one remote member's health and latency state.
type Peer struct {
	id   string
	hist *obs.Histogram // forwarded-request RTT, microseconds

	mu        sync.Mutex
	fails     int // consecutive failures
	downUntil time.Time
	probing   bool // one half-open probe in flight
}

// ID returns the peer's member URL.
func (p *Peer) ID() string { return p.id }

// alive reports whether the peer is in the ring walk. A down peer whose
// ejection window has passed is half-open: the first caller to ask gets it
// back (as a probe); success resets it, failure re-ejects it.
func (p *Peer) alive(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.downUntil.IsZero() || now.After(p.downUntil) {
		return true
	}
	return false
}

func (p *Peer) ok(rtt time.Duration) {
	p.hist.ObserveUS(rtt.Microseconds())
	p.mu.Lock()
	p.fails = 0
	p.downUntil = time.Time{}
	p.mu.Unlock()
}

// fail records one failure; it returns true when this failure ejected the
// peer (crossed the threshold while previously alive).
func (p *Peer) fail(after int, window time.Duration, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	if p.fails >= after {
		wasUp := p.downUntil.IsZero() || now.After(p.downUntil)
		p.downUntil = now.Add(window)
		return wasUp
	}
	return false
}

// hedgeDelay derives the peer's hedge delay from its observed p99, clamped
// to [floor, maxHedgeDelay]. Few samples → floor.
func (p *Peer) hedgeDelay(floor time.Duration) time.Duration {
	snap := p.hist.Snapshot()
	if snap.Count < hedgeMinSamples {
		return floor
	}
	d := time.Duration(snap.P99US) * time.Microsecond
	if d < floor {
		d = floor
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// Router owns the ring view plus per-peer health, and forwards requests to
// their owners with hedged retries.
type Router struct {
	cfg    Config
	ring   *Ring
	self   string
	peers  map[string]*Peer // remote members only
	obs    *obs.Observer
	client *http.Client
}

// New builds a Router. Self must be non-empty; the member set is
// peers ∪ {self} and must contain at least self.
func New(cfg Config) (*Router, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: self URL must be set")
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = defaultHedgeDelay
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = defaultEjectAfter
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = defaultEjectFor
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(members),
		self:   cfg.Self,
		peers:  make(map[string]*Peer),
		obs:    cfg.Obs,
		client: cfg.Client,
	}
	if r.client == nil {
		r.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	for _, m := range r.ring.Members() {
		if m == cfg.Self {
			continue
		}
		p := &Peer{id: m}
		if r.obs != nil {
			p.hist = r.obs.Histogram(obs.Label("cluster.peer_rtt", "peer", m))
		} else {
			p.hist = obs.NewHistogram()
		}
		r.peers[m] = p
	}
	return r, nil
}

// Self returns this node's member URL.
func (r *Router) Self() string { return r.self }

// Members returns the full sorted member set (self included).
func (r *Router) Members() []string { return r.ring.Members() }

// Peers returns the remote peers keyed by member URL.
func (r *Router) Peers() map[string]*Peer { return r.peers }

// Owns reports whether this node should serve key right now: self is the
// first *alive* member in the key's ring walk. Liveness shifts ownership —
// when a peer is ejected its keys fall through to the next walk member —
// and shifts it back on rejoin, which is exactly the predicate the warm
// index uses to refuse seeds from fingerprints it no longer owns.
func (r *Router) Owns(key uint64) bool {
	now := time.Now()
	for _, m := range r.ring.Walk(key) {
		if m == r.self {
			return true
		}
		if p := r.peers[m]; p != nil && p.alive(now) {
			return false
		}
	}
	return true
}

// candidates returns the alive remote peers preceding self in key's ring
// walk — the forwarding preference order. Empty means self owns the key
// (or every preceding peer is down and the key fell through to self).
func (r *Router) candidates(key uint64) []*Peer {
	now := time.Now()
	var out []*Peer
	for _, m := range r.ring.Walk(key) {
		if m == r.self {
			break
		}
		if p := r.peers[m]; p != nil && p.alive(now) {
			out = append(out, p)
		}
	}
	return out
}

// PeerResult is one successful forwarded exchange.
type PeerResult struct {
	Status int
	Body   []byte
	Peer   string // member URL that answered
	Hedged bool   // a hedge or retry fired before this answer
}

// counter bumps a cluster counter when telemetry is wired.
func (r *Router) counter(name string, n int64) {
	if r.obs != nil {
		r.obs.Counter(name).Add(n)
	}
}

// Forward sends the request to key's owner with hedged retries down the
// ring walk: the preferred peer first, the next ring node when the peer is
// slower than its p99-derived hedge delay, the next again on transport
// errors or 5xx/429, until a peer answers or the candidate list is
// exhausted. ok=false means no peer could answer — the caller falls back
// to running the request locally, so a fully-dead peer set degrades to
// single-node behaviour instead of failing requests.
//
// A response with status < 500 (other than 429) is an answer: 4xx from a
// peer is the deterministic response to a bad request, not a peer failure.
func (r *Router) Forward(ctx context.Context, key uint64, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	cands := r.candidates(key)
	if len(cands) == 0 {
		return nil, false
	}
	return r.forwardCands(ctx, cands, method, path, body, hdr)
}

// forwardCands runs the hedged attempt loop over an explicit candidate
// order.
func (r *Router) forwardCands(ctx context.Context, cands []*Peer, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	type attempt struct {
		peer  *Peer
		res   *PeerResult
		err   error
		start time.Time
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel() // kill the losing attempts
	ch := make(chan attempt, len(cands))
	launched := 0
	launch := func(p *Peer) {
		launched++
		go func() {
			start := time.Now()
			req, err := http.NewRequestWithContext(actx, method, p.id+path, bytes.NewReader(body))
			if err != nil {
				ch <- attempt{peer: p, err: err, start: start}
				return
			}
			for k, vs := range hdr {
				req.Header[k] = vs
			}
			resp, err := r.client.Do(req)
			if err != nil {
				ch <- attempt{peer: p, err: err, start: start}
				return
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
			resp.Body.Close()
			if err != nil {
				ch <- attempt{peer: p, err: err, start: start}
				return
			}
			if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
				ch <- attempt{peer: p, err: fmt.Errorf("peer status %d", resp.StatusCode), start: start}
				return
			}
			ch <- attempt{peer: p, res: &PeerResult{Status: resp.StatusCode, Body: b, Peer: p.id}, start: start}
		}()
	}
	launch(cands[0])
	timer := time.NewTimer(cands[0].hedgeDelay(r.cfg.HedgeDelay))
	defer timer.Stop()
	hedged := false
	for done := 0; done < launched || launched < len(cands); {
		select {
		case <-ctx.Done():
			return nil, false
		case <-timer.C:
			if launched < len(cands) {
				hedged = true
				r.counter("cluster.hedged", 1)
				next := cands[launched]
				launch(next)
				timer.Reset(next.hedgeDelay(r.cfg.HedgeDelay))
				continue
			}
			// The candidate list ends where self enters the ring walk, so
			// the hedge past the last candidate is a hedge to self: give up
			// on forwarding (canceling the stragglers) and let the caller
			// run the request locally. This is what guarantees completion
			// when every preceding peer is gray-failed — accepting
			// connections but never answering — which ejection alone cannot
			// detect.
			r.counter("cluster.hedged", 1)
			return nil, false
		case a := <-ch:
			done++
			if a.err == nil {
				a.peer.ok(time.Since(a.start))
				a.res.Hedged = hedged
				return a.res, true
			}
			if ctx.Err() != nil {
				return nil, false
			}
			r.counter("cluster.peer_errors", 1)
			if a.peer.fail(r.cfg.EjectAfter, r.cfg.EjectFor, time.Now()) {
				r.counter("cluster.ejected", 1)
			}
			if launched < len(cands) {
				hedged = true
				next := cands[launched]
				launch(next)
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(next.hedgeDelay(r.cfg.HedgeDelay))
			} else if done == launched {
				return nil, false
			}
		}
	}
	return nil, false
}

// PreferredPeer returns the first alive remote peer in key's ring walk
// before self, if any — the batch planner's grouping key.
func (r *Router) PreferredPeer(key uint64) (string, bool) {
	c := r.candidates(key)
	if len(c) == 0 {
		return "", false
	}
	return c[0].id, true
}

// ForwardAny forwards to primary first, hedging across every other alive
// peer in id order. Any node can serve any request — ownership only
// optimizes cache affinity — so batch sub-groups and subtree jobs may fail
// over to an arbitrary peer rather than walking the ring.
func (r *Router) ForwardAny(ctx context.Context, primary, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	cands := make([]*Peer, 0, len(r.peers))
	if p := r.peers[primary]; p != nil {
		cands = append(cands, p)
	}
	ids := make([]string, 0, len(r.peers))
	for id := range r.peers {
		if id != primary {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		cands = append(cands, r.peers[id])
	}
	return r.forwardList(ctx, cands, method, path, body, hdr)
}

// AlivePeers returns the alive remote peers in id order.
func (r *Router) AlivePeers() []*Peer {
	now := time.Now()
	ids := make([]string, 0, len(r.peers))
	for id, p := range r.peers {
		if p.alive(now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*Peer, len(ids))
	for i, id := range ids {
		out[i] = r.peers[id]
	}
	return out
}

// Client exposes the pooled forwarding client for auxiliary traffic
// (incumbent broadcasts).
func (r *Router) Client() *http.Client { return r.client }

func (r *Router) forwardList(ctx context.Context, cands []*Peer, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	// Deduplicate while preserving order; drop dead peers.
	now := time.Now()
	seen := make(map[*Peer]bool, len(cands))
	var live []*Peer
	for _, p := range cands {
		if p == nil || seen[p] || !p.alive(now) {
			continue
		}
		seen[p] = true
		live = append(live, p)
	}
	if len(live) == 0 {
		return nil, false
	}
	return r.forwardCands(ctx, live, method, path, body, hdr)
}
