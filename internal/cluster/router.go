package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Defaults for the health/hedging policy. All are overridable via Config.
const (
	// defaultHedgeDelay is the hedge floor/fallback: with too few latency
	// samples for a p99 the router hedges after this long.
	defaultHedgeDelay = 50 * time.Millisecond
	// maxHedgeDelay caps the p99-derived hedge delay so one pathological
	// request cannot disable hedging for the rest of the run.
	maxHedgeDelay = 2 * time.Second
	// hedgeMinSamples is the per-peer sample count below which the p99 is
	// noise and the configured floor is used instead.
	hedgeMinSamples = 16
	// defaultEjectAfter consecutive failures mark a peer down.
	defaultEjectAfter = 3
	// defaultEjectFor is how long a down peer stays out of the ring walk
	// before a half-open probe may rejoin it.
	defaultEjectFor = 2 * time.Second
	// maxPeerResponse bounds a forwarded response body read.
	maxPeerResponse = 32 << 20
)

// Config configures a Router.
type Config struct {
	// Self is this node's advertised base URL (scheme://host:port).
	Self string
	// Peers is the full cluster membership, self included or not (it is
	// added). Every node must be configured with the same set.
	Peers []string
	// HedgeDelay is the hedge floor and small-sample fallback; 0 means
	// defaultHedgeDelay. The live delay per peer is max(HedgeDelay,
	// that peer's observed p99), capped at maxHedgeDelay.
	HedgeDelay time.Duration
	// EjectAfter / EjectFor tune health-gated ejection; 0 means defaults.
	EjectAfter int
	EjectFor   time.Duration
	// Obs receives the dtse_cluster_* counters and per-peer latency
	// histograms; nil disables that telemetry.
	Obs *obs.Observer
	// Client is the forwarding HTTP client; nil uses a default with
	// connection pooling.
	Client *http.Client
}

// Peer is one remote member's health and latency state.
type Peer struct {
	id   string
	hist *obs.Histogram // forwarded-request RTT, microseconds

	mu        sync.Mutex
	fails     int // consecutive failures
	downUntil time.Time
	window    time.Duration // last ejection window (bounds probe staleness)
	probing   bool          // one half-open probe in flight
	probeAt   time.Time     // when the in-flight probe was claimed
}

// ID returns the peer's member URL.
func (p *Peer) ID() string { return p.id }

// alive reports whether the peer is routable without claiming a probe: up,
// or fully revived by a successful probe. A peer whose ejection window has
// passed but whose half-open probe has not yet succeeded still reads as
// down here — every caller keeps treating it as sick until the one probe
// in flight (claimed via probeAlive) comes back ok. This is what prevents
// a rejoin stampede onto a still-sick peer.
func (p *Peer) alive(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.downUntil.IsZero()
}

// probeAlive is alive for callers about to contact the peer: when the
// ejection window has expired it lets exactly one caller through as the
// half-open probe (probing is set until ok or fail clears it) and keeps
// everyone else out. A probe whose owner never reports back — claimed but
// the request was never launched — goes stale after the ejection window
// and the slot can be re-won.
func (p *Peer) probeAlive(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.downUntil.IsZero() {
		return true
	}
	if !now.After(p.downUntil) {
		return false
	}
	window := p.window
	if window <= 0 {
		window = defaultEjectFor
	}
	if p.probing && now.Before(p.probeAt.Add(window)) {
		return false // someone else holds the half-open probe
	}
	p.probing = true
	p.probeAt = now
	return true
}

func (p *Peer) ok(rtt time.Duration) {
	p.hist.ObserveUS(rtt.Microseconds())
	p.mu.Lock()
	p.fails = 0
	p.downUntil = time.Time{}
	p.probing = false
	p.mu.Unlock()
}

// fail records one failure; it returns true when this failure ejected the
// peer (crossed the threshold while previously alive).
func (p *Peer) fail(after int, window time.Duration, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probing = false // a failed probe re-ejects; the next window may re-probe
	p.fails++
	if p.fails >= after {
		wasUp := p.downUntil.IsZero() || now.After(p.downUntil)
		p.downUntil = now.Add(window)
		p.window = window
		return wasUp
	}
	return false
}

// hedgeDelay derives the peer's hedge delay from its observed p99, clamped
// to [floor, maxHedgeDelay]. Few samples → floor.
func (p *Peer) hedgeDelay(floor time.Duration) time.Duration {
	snap := p.hist.Snapshot()
	if snap.Count < hedgeMinSamples {
		return floor
	}
	d := time.Duration(snap.P99US) * time.Microsecond
	if d < floor {
		d = floor
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// Router owns the ring view plus per-peer health, and forwards requests to
// their owners with hedged retries. The ring and peer map mutate under mu
// when membership changes; Peer health state is independently locked.
type Router struct {
	cfg    Config
	self   string
	obs    *obs.Observer
	client *http.Client

	mu    sync.RWMutex
	ring  *Ring
	peers map[string]*Peer // remote members only
}

// New builds a Router. Self must be non-empty; the member set is
// peers ∪ {self} and must contain at least self.
func New(cfg Config) (*Router, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: self URL must be set")
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = defaultHedgeDelay
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = defaultEjectAfter
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = defaultEjectFor
	}
	r := &Router{
		cfg:    cfg,
		self:   cfg.Self,
		peers:  make(map[string]*Peer),
		obs:    cfg.Obs,
		client: cfg.Client,
	}
	if r.client == nil {
		r.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	r.SetMembers(append([]string{cfg.Self}, cfg.Peers...))
	return r, nil
}

// newPeer builds fresh health state for member m. The latency histogram is
// resolved by name through the observer, so a member that leaves and rejoins
// reuses the same labelled series instead of leaking a duplicate.
func (r *Router) newPeer(m string) *Peer {
	p := &Peer{id: m}
	if r.obs != nil {
		p.hist = r.obs.Histogram(obs.Label("cluster.peer_rtt", "peer", m))
	} else {
		p.hist = obs.NewHistogram()
	}
	return p
}

// SetMembers replaces the member set (self is always included) and rebuilds
// the ring. Retained peers keep their health state; removed peers are
// dropped entirely, so a member that returns later — e.g. with a new
// incarnation — starts with fresh fails/downUntil rather than inheriting a
// stale ejection. Re-entrant: calling with the current set is a no-op.
// Returns the members added and removed, self excluded.
func (r *Router) SetMembers(members []string) (added, removed []string) {
	ring := NewRing(append([]string{r.self}, members...))
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[string]*Peer, len(ring.Members()))
	for _, m := range ring.Members() {
		if m == r.self {
			continue
		}
		if p, ok := r.peers[m]; ok {
			next[m] = p
			continue
		}
		next[m] = r.newPeer(m)
		added = append(added, m)
	}
	for m := range r.peers {
		if _, ok := next[m]; !ok {
			removed = append(removed, m)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	r.ring = ring
	r.peers = next
	return added, removed
}

// Ring returns the current ring snapshot (immutable once built).
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// snapshot returns the current ring and peer map under the read lock. The
// map must not be mutated by callers; membership changes swap in a new map.
func (r *Router) snapshot() (*Ring, map[string]*Peer) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring, r.peers
}

// peer returns the health state for member id, nil when unknown or self.
func (r *Router) peer(id string) *Peer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peers[id]
}

// Self returns this node's member URL.
func (r *Router) Self() string { return r.self }

// Members returns the full sorted member set (self included).
func (r *Router) Members() []string { return r.Ring().Members() }

// Peers returns a copy of the remote peer map keyed by member URL. The
// *Peer values are live (their health state keeps updating); the map itself
// is the caller's to keep, safe across concurrent membership changes.
func (r *Router) Peers() map[string]*Peer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]*Peer, len(r.peers))
	for id, p := range r.peers {
		out[id] = p
	}
	return out
}

// PeerOK records an out-of-band successful exchange with member id (the
// gossip loop doubles as the half-open prober). Unknown ids are ignored.
func (r *Router) PeerOK(id string, rtt time.Duration) {
	if p := r.peer(id); p != nil {
		p.ok(rtt)
	}
}

// PeerFail records an out-of-band failed exchange with member id, feeding
// the same ejection policy as forwarded requests.
func (r *Router) PeerFail(id string) {
	if p := r.peer(id); p != nil {
		if p.fail(r.cfg.EjectAfter, r.cfg.EjectFor, time.Now()) {
			r.counter("cluster.ejected", 1)
		}
	}
}

// ProbeAllowed reports whether a caller about to contact member id may do
// so: true for an up peer, and true exactly once per window for a down peer
// whose ejection has expired (the caller then holds the half-open probe and
// must report the outcome via PeerOK/PeerFail). Unknown ids are allowed.
func (r *Router) ProbeAllowed(id string) bool {
	p := r.peer(id)
	if p == nil {
		return true
	}
	return p.probeAlive(time.Now())
}

// Owns reports whether this node should serve key right now: self is the
// first *alive* member in the key's ring walk. Liveness shifts ownership —
// when a peer is ejected its keys fall through to the next walk member —
// and shifts it back on rejoin, which is exactly the predicate the warm
// index uses to refuse seeds from fingerprints it no longer owns.
func (r *Router) Owns(key uint64) bool {
	ring, peers := r.snapshot()
	now := time.Now()
	for _, m := range ring.Walk(key) {
		if m == r.self {
			return true
		}
		if p := peers[m]; p != nil && p.alive(now) {
			return false
		}
	}
	return true
}

// candidates returns the remote peers preceding self in key's ring walk
// that may be contacted right now — the forwarding preference order. This
// uses probeAlive, so a down peer whose window expired is included for at
// most one concurrent caller (the half-open probe); everyone else skips it.
// Empty means self owns the key (or every preceding peer is down and the
// key fell through to self).
func (r *Router) candidates(key uint64) []*Peer {
	ring, peers := r.snapshot()
	now := time.Now()
	var out []*Peer
	for _, m := range ring.Walk(key) {
		if m == r.self {
			break
		}
		if p := peers[m]; p != nil && p.probeAlive(now) {
			out = append(out, p)
		}
	}
	return out
}

// PeerResult is one successful forwarded exchange.
type PeerResult struct {
	Status int
	Body   []byte
	Peer   string // member URL that answered
	Hedged bool   // a hedge or retry fired before this answer
}

// counter bumps a cluster counter when telemetry is wired.
func (r *Router) counter(name string, n int64) {
	if r.obs != nil {
		r.obs.Counter(name).Add(n)
	}
}

// Forward sends the request to key's owner with hedged retries down the
// ring walk: the preferred peer first, the next ring node when the peer is
// slower than its p99-derived hedge delay, the next again on transport
// errors or 5xx/429, until a peer answers or the candidate list is
// exhausted. ok=false means no peer could answer — the caller falls back
// to running the request locally, so a fully-dead peer set degrades to
// single-node behaviour instead of failing requests.
//
// A response with status < 500 (other than 429) is an answer: 4xx from a
// peer is the deterministic response to a bad request, not a peer failure.
func (r *Router) Forward(ctx context.Context, key uint64, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	cands := r.candidates(key)
	if len(cands) == 0 {
		return nil, false
	}
	return r.forwardCands(ctx, cands, method, path, body, hdr)
}

// forwardCands runs the hedged attempt loop over an explicit candidate
// order.
func (r *Router) forwardCands(ctx context.Context, cands []*Peer, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	type attempt struct {
		peer  *Peer
		res   *PeerResult
		err   error
		start time.Time
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel() // kill the losing attempts
	ch := make(chan attempt, len(cands))
	launched := 0
	launch := func(p *Peer) {
		launched++
		go func() {
			start := time.Now()
			req, err := http.NewRequestWithContext(actx, method, p.id+path, bytes.NewReader(body))
			if err != nil {
				ch <- attempt{peer: p, err: err, start: start}
				return
			}
			for k, vs := range hdr {
				req.Header[k] = vs
			}
			resp, err := r.client.Do(req)
			if err != nil {
				ch <- attempt{peer: p, err: err, start: start}
				return
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
			resp.Body.Close()
			if err != nil {
				ch <- attempt{peer: p, err: err, start: start}
				return
			}
			if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
				ch <- attempt{peer: p, err: fmt.Errorf("peer status %d", resp.StatusCode), start: start}
				return
			}
			ch <- attempt{peer: p, res: &PeerResult{Status: resp.StatusCode, Body: b, Peer: p.id}, start: start}
		}()
	}
	launch(cands[0])
	timer := time.NewTimer(cands[0].hedgeDelay(r.cfg.HedgeDelay))
	defer timer.Stop()
	hedged := false
	for done := 0; done < launched || launched < len(cands); {
		select {
		case <-ctx.Done():
			return nil, false
		case <-timer.C:
			if launched < len(cands) {
				hedged = true
				r.counter("cluster.hedged", 1)
				next := cands[launched]
				launch(next)
				timer.Reset(next.hedgeDelay(r.cfg.HedgeDelay))
				continue
			}
			// The candidate list ends where self enters the ring walk, so
			// the hedge past the last candidate is a hedge to self: give up
			// on forwarding (canceling the stragglers) and let the caller
			// run the request locally. This is what guarantees completion
			// when every preceding peer is gray-failed — accepting
			// connections but never answering — which ejection alone cannot
			// detect.
			r.counter("cluster.hedged", 1)
			return nil, false
		case a := <-ch:
			done++
			if a.err == nil {
				a.peer.ok(time.Since(a.start))
				a.res.Hedged = hedged
				return a.res, true
			}
			if ctx.Err() != nil {
				return nil, false
			}
			r.counter("cluster.peer_errors", 1)
			if a.peer.fail(r.cfg.EjectAfter, r.cfg.EjectFor, time.Now()) {
				r.counter("cluster.ejected", 1)
			}
			if launched < len(cands) {
				hedged = true
				next := cands[launched]
				launch(next)
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(next.hedgeDelay(r.cfg.HedgeDelay))
			} else if done == launched {
				return nil, false
			}
		}
	}
	return nil, false
}

// PreferredPeer returns the first alive remote peer in key's ring walk
// before self, if any — the batch planner's grouping key.
func (r *Router) PreferredPeer(key uint64) (string, bool) {
	c := r.candidates(key)
	if len(c) == 0 {
		return "", false
	}
	return c[0].id, true
}

// ForwardAny forwards to primary first, hedging across every other alive
// peer in id order. Any node can serve any request — ownership only
// optimizes cache affinity — so batch sub-groups and subtree jobs may fail
// over to an arbitrary peer rather than walking the ring.
func (r *Router) ForwardAny(ctx context.Context, primary, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	_, peers := r.snapshot()
	cands := make([]*Peer, 0, len(peers))
	if p := peers[primary]; p != nil {
		cands = append(cands, p)
	}
	ids := make([]string, 0, len(peers))
	for id := range peers {
		if id != primary {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		cands = append(cands, peers[id])
	}
	return r.forwardList(ctx, cands, method, path, body, hdr)
}

// AlivePeers returns the alive remote peers in id order.
func (r *Router) AlivePeers() []*Peer {
	_, peers := r.snapshot()
	now := time.Now()
	ids := make([]string, 0, len(peers))
	for id, p := range peers {
		if p.alive(now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*Peer, len(ids))
	for i, id := range ids {
		out[i] = peers[id]
	}
	return out
}

// Client exposes the pooled forwarding client for auxiliary traffic
// (incumbent broadcasts).
func (r *Router) Client() *http.Client { return r.client }

func (r *Router) forwardList(ctx context.Context, cands []*Peer, method, path string, body []byte, hdr http.Header) (*PeerResult, bool) {
	// Deduplicate while preserving order; drop dead peers. probeAlive lets
	// one caller carry the half-open probe to an expired-window peer.
	now := time.Now()
	seen := make(map[*Peer]bool, len(cands))
	var live []*Peer
	for _, p := range cands {
		if p == nil || seen[p] || !p.probeAlive(now) {
			continue
		}
		seen[p] = true
		live = append(live, p)
	}
	if len(live) == 0 {
		return nil, false
	}
	return r.forwardCands(ctx, live, method, path, body, hdr)
}
