// Package workloads provides parameterized pruned-specification generators
// for classic data-dominated multimedia kernels — the application domain
// the paper targets. They serve as exploration subjects beyond the BTPC
// demonstrator: regression workloads for the physical-memory-management
// substrate and realistic inputs for the examples and benchmarks.
//
// Every generator returns a validated specification plus the real-time
// context (cycle budget, frame period, on/off-chip threshold) that makes
// exploring it meaningful.
package workloads

import (
	"fmt"

	"repro/internal/spec"
)

// Context is the real-time setting a workload is explored under.
type Context struct {
	CycleBudget    uint64
	FramePeriod    float64 // seconds per frame
	OnChipMaxWords int64
}

// MotionEstimation builds a full-search block-matching motion estimator:
// for every B×B block of the current frame, all (2R+1)² candidate
// positions in the reference frame are evaluated by accumulating absolute
// differences. The reference-window traffic dominates — the canonical
// data-reuse exploration subject.
func MotionEstimation(w, h, block, searchRange int) (*spec.Spec, Context, error) {
	if w <= 0 || h <= 0 || block <= 0 || searchRange <= 0 || w%block != 0 || h%block != 0 {
		return nil, Context{}, fmt.Errorf("workloads: invalid motion-estimation geometry %dx%d/%d/%d",
			w, h, block, searchRange)
	}
	blocks := uint64((w / block) * (h / block))
	cands := uint64((2*searchRange + 1) * (2*searchRange + 1))
	frame := int64(w) * int64(h)

	b := spec.NewBuilder(fmt.Sprintf("me-%dx%d-b%d-r%d", w, h, block, searchRange))
	b.Group("cur", frame, 8)
	b.Group("ref", frame, 8)
	b.Group("sad", 64, 20) // per-candidate accumulators
	b.Group("mv", int64(blocks), 12)
	b.Group("best", 16, 20)

	b.Loop("input", uint64(frame))
	b.Write("cur", 1)

	// Hot body: one candidate evaluation. The designer prunes the B²-deep
	// pixel loop to representative parallel read pairs plus the SAD
	// accumulation chain (its depth models the per-candidate accumulation).
	perCand := float64(block * block)
	b.Loop("candidate", blocks*cands)
	var pairs []int
	const sites = 4
	for i := 0; i < sites; i++ {
		c := b.ReadSite("cur", fmt.Sprintf("c%d", i), perCand/sites)
		r := b.ReadSite("ref", fmt.Sprintf("r%d", i), perCand/sites)
		pairs = append(pairs, c, r)
	}
	s1 := b.Read("sad", 1, pairs...)
	s2 := b.Write("sad", 1, s1)
	bb := b.Read("best", 1, s2)
	b.Write("best", 1, bb)

	// Per block: pick the winner.
	b.Loop("select", blocks)
	sb := b.Read("best", 1)
	b.Write("mv", 1, sb)

	s, err := b.Build()
	if err != nil {
		return nil, Context{}, err
	}
	ctx := Context{
		// Real-time: ~12 storage cycles per candidate evaluation.
		CycleBudget:    12 * blocks * cands,
		FramePeriod:    float64(frame) / 1e6,
		OnChipMaxWords: frame / 8,
	}
	return s, ctx, nil
}

// Wavelet builds an in-place 5/3 lifting wavelet transform over `levels`
// decomposition levels: per level the image rows/columns are read and
// rewritten, with a line buffer holding the lifting neighbourhood.
func Wavelet(w, h, levels int) (*spec.Spec, Context, error) {
	if w <= 0 || h <= 0 || levels <= 0 || levels > 10 {
		return nil, Context{}, fmt.Errorf("workloads: invalid wavelet geometry %dx%d/%d", w, h, levels)
	}
	frame := int64(w) * int64(h)
	b := spec.NewBuilder(fmt.Sprintf("wavelet-%dx%d-l%d", w, h, levels))
	b.Group("img", frame, 16) // lifting grows the dynamic range
	b.Group("line", int64(2*w), 16)
	b.Group("ltap", 8, 12)

	b.Loop("input", uint64(frame))
	b.Write("img", 1)

	pixels := uint64(frame)
	total := uint64(0)
	for l := 0; l < levels; l++ {
		iters := pixels >> uint(2*l)
		if iters == 0 {
			break
		}
		total += iters
		b.Loop(fmt.Sprintf("level%d", l), iters)
		// Predict step: read the two lifting neighbours and the centre.
		n1 := b.ReadSite("img", "n1", 1)
		n2 := b.ReadSite("img", "n2", 1)
		c := b.ReadSite("img", "centre", 1)
		t := b.Read("ltap", 1)
		lb := b.Read("line", 1, n1, n2, c, t)
		b.Write("line", 1, lb)
		// Update step: write the coefficient back in place.
		b.WriteSite("img", "coef", 1, lb)
	}
	s, err := b.Build()
	if err != nil {
		return nil, Context{}, err
	}
	ctx := Context{
		CycleBudget:    14*total + 2*uint64(frame),
		FramePeriod:    float64(frame) / 1e6,
		OnChipMaxWords: frame / 8,
	}
	return s, ctx, nil
}

// FIRFilter builds an n-sample, T-tap FIR filter over a circular delay
// line: the small-kernel, table-dominated end of the domain.
func FIRFilter(samples, taps int) (*spec.Spec, Context, error) {
	if samples <= 0 || taps <= 1 || taps > 512 {
		return nil, Context{}, fmt.Errorf("workloads: invalid FIR %d/%d", samples, taps)
	}
	b := spec.NewBuilder(fmt.Sprintf("fir-%d-t%d", samples, taps))
	b.Group("x", int64(samples), 16)
	b.Group("dline", int64(taps), 16)
	b.Group("coef", int64(taps), 16)
	b.Group("y", int64(samples), 16)

	b.Loop("sample", uint64(samples))
	in := b.Read("x", 1)
	dw := b.Write("dline", 1, in)
	// The multiply-accumulate sweep over the taps, pruned to a short chain
	// of alternating delay-line/coefficient reads.
	const sites = 4
	prev := dw
	for i := 0; i < sites; i++ {
		d := b.Read("dline", float64(taps)/sites, prev)
		prev = b.Read("coef", float64(taps)/sites, d)
	}
	b.Write("y", 1, prev)

	s, err := b.Build()
	if err != nil {
		return nil, Context{}, err
	}
	ctx := Context{
		CycleBudget:    uint64(samples) * uint64(2*taps+8),
		FramePeriod:    float64(samples) / 48_000, // audio rate
		OnChipMaxWords: 64 * 1024,
	}
	return s, ctx, nil
}
