package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/reuse"
)

// explore runs the full physical-memory-management stage on a workload.
func explore(t *testing.T, s interface {
	Validate() error
}, run func() (*core.Variant, error)) *core.Variant {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	v, err := run()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func paramsFor(ctx Context) core.EvalParams {
	ep := core.DefaultEvalParams()
	tech := *ep.Tech
	tech.OnChipMaxWords = ctx.OnChipMaxWords
	tech.FramePeriod = ctx.FramePeriod
	ep.Tech = &tech
	ep.SBD.OnChipMaxWords = ctx.OnChipMaxWords
	ep.Assign.OnChipMaxWords = ctx.OnChipMaxWords
	return ep
}

func TestMotionEstimationExplores(t *testing.T) {
	s, ctx, err := MotionEstimation(176, 144, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ep := paramsFor(ctx)
	v := explore(t, s, func() (*core.Variant, error) {
		return core.Evaluate(s, ctx.CycleBudget, s.Name, ep)
	})
	// Frames off-chip, tables on-chip.
	foundOff := false
	for _, b := range v.Asgn.OffChip {
		for _, g := range b.Groups {
			if g == "cur" || g == "ref" {
				foundOff = true
			}
		}
	}
	if !foundOff {
		t.Fatal("frame arrays not off-chip")
	}
	if v.Cost.OffChipPower <= 0 {
		t.Fatal("no off-chip power for a frame-dominated workload")
	}
	// MACP must be feasible but not trivial.
	if m := dfg.MACP(s); m == 0 || m > ctx.CycleBudget {
		t.Fatalf("MACP %d vs budget %d", m, ctx.CycleBudget)
	}
}

func TestMotionEstimationHierarchyHelps(t *testing.T) {
	// A search-window copy layer in front of the reference frame must cut
	// the off-chip power — the classic ME data-reuse result.
	s, ctx, err := MotionEstimation(176, 144, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ep := paramsFor(ctx)
	base, err := core.Evaluate(s, ctx.CycleBudget, "base", ep)
	if err != nil {
		t.Fatal(err)
	}
	// Window reuse: candidate evaluations of one block revisit almost the
	// same reference pixels; model the profile with a synthetic trace that
	// cycles over one search window per block.
	windowWords := (16 + 2*7) * (16 + 2*7)
	var addrs []int32
	for blk := 0; blk < 20; blk++ {
		base32 := int32(blk * 10_000)
		for rep := 0; rep < 10; rep++ {
			for o := 0; o < windowWords; o++ {
				addrs = append(addrs, base32+int32(o))
			}
		}
	}
	prof := reuse.Analyze(addrs)
	h, err := reuse.Plan("ref", []reuse.Layer{{Name: "window", Words: int64(windowWords)}}, prof)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := reuse.Apply(s, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	withWin, err := core.Evaluate(applied, ctx.CycleBudget, "window", ep)
	if err != nil {
		t.Fatal(err)
	}
	if withWin.Cost.OffChipPower >= base.Cost.OffChipPower*0.6 {
		t.Fatalf("search window did not cut off-chip power: %.1f -> %.1f",
			base.Cost.OffChipPower, withWin.Cost.OffChipPower)
	}
}

func TestMotionEstimationValidation(t *testing.T) {
	if _, _, err := MotionEstimation(100, 144, 16, 7); err == nil {
		t.Error("non-divisible width accepted")
	}
	if _, _, err := MotionEstimation(176, 144, 0, 7); err == nil {
		t.Error("zero block accepted")
	}
}

func TestWaveletExplores(t *testing.T) {
	s, ctx, err := Wavelet(256, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One loop per level plus the input loop.
	if len(s.Loops) != 4 {
		t.Fatalf("%d loops, want 4", len(s.Loops))
	}
	// Level loops shrink by 4x.
	if s.Loops[1].Iterations != 4*s.Loops[2].Iterations {
		t.Fatalf("level iterations %d vs %d", s.Loops[1].Iterations, s.Loops[2].Iterations)
	}
	ep := paramsFor(ctx)
	v, err := core.Evaluate(s, ctx.CycleBudget, s.Name, ep)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cost.TotalPower() <= 0 {
		t.Fatal("degenerate wavelet evaluation")
	}
}

func TestWaveletValidation(t *testing.T) {
	if _, _, err := Wavelet(0, 10, 2); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := Wavelet(64, 64, 11); err == nil {
		t.Error("11 levels accepted")
	}
}

func TestFIRExplores(t *testing.T) {
	s, ctx, err := FIRFilter(48_000, 64)
	if err != nil {
		t.Fatal(err)
	}
	ep := paramsFor(ctx)
	v, err := core.Evaluate(s, ctx.CycleBudget, s.Name, ep)
	if err != nil {
		t.Fatal(err)
	}
	// All arrays are small: a fully on-chip organization.
	if len(v.Asgn.OffChip) != 0 {
		t.Fatalf("FIR arrays ended up off-chip: %+v", v.Asgn.OffChip)
	}
	if v.Cost.OffChipPower != 0 {
		t.Fatalf("off-chip power %.2f for an on-chip workload", v.Cost.OffChipPower)
	}
}

func TestFIRValidation(t *testing.T) {
	if _, _, err := FIRFilter(100, 1); err == nil {
		t.Error("single tap accepted")
	}
	if _, _, err := FIRFilter(0, 8); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestWorkloadAccessArithmetic(t *testing.T) {
	s, _, err := MotionEstimation(64, 64, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	blocks := uint64((64 / 16) * (64 / 16))
	cands := uint64(7 * 7)
	// cur traffic: input writes + per-candidate reads (block² per cand).
	wantCur := uint64(64*64) + blocks*cands*256
	if got := s.AccessesPerFrame("cur"); got != wantCur {
		t.Fatalf("cur accesses = %d, want %d", got, wantCur)
	}
	if got := s.AccessesPerFrame("mv"); got != blocks {
		t.Fatalf("mv accesses = %d, want %d", got, blocks)
	}
}
