// Package core implements the paper's contribution: the stepwise,
// system-level feedback methodology (§4, Figure 1). It drives the whole
// flow on the BTPC demonstrator:
//
//  1. pruning and basic-group analysis — the pruned specification is
//     generated from a profiled run of the real BTPC encoder (§4.1);
//  2. critical-path analysis (§4.2);
//  3. basic group structuring exploration (§4.3, Table 1);
//  4. memory hierarchy exploration with trace-driven reuse analysis
//     (§4.4, Table 2, Figure 3);
//  5. storage cycle budget exploration (§4.5, Table 3);
//  6. memory allocation exploration (§4.6, Table 4).
//
// Every evaluation runs the actual physical-memory-management substrate
// (sbd + assign + memlib), so the feedback the steps act on is the same
// accurate cost estimate the paper's tools provide.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/btpc"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/reuse"
	"repro/internal/spec"
	"repro/internal/trace"
)

// CyclesPerPixel is the storage cycle budget per pixel implied by the
// paper's constraints: 20 M cycles for a 1 Mpixel image at 1 Mpixel/s.
const CyclesPerPixel = 20

// DemoConfig configures the demonstrator construction.
type DemoConfig struct {
	Size  int    // image side; default 1024 (the paper's constraint size)
	Seed  uint64 // synthetic-image seed; default 1
	Quant int    // BTPC quantizer; default 1 (lossless)
}

func (c *DemoConfig) normalize() {
	if c.Size == 0 {
		c.Size = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Quant == 0 {
		c.Quant = 1
	}
}

// Demonstrator bundles the profiled BTPC application: the pruned
// specification, the reuse profile of the image array, and the real-time
// cycle budget.
type Demonstrator struct {
	Config       DemoConfig
	Spec         *spec.Spec
	ImageProfile *reuse.Profile // read-reuse profile of the image array
	Rec          *trace.Recorder
	Stats        *btpc.Stats
	CycleBudget  uint64
}

// BuildDemonstrator profiles the real BTPC encoder on a synthetic image and
// derives the pruned specification from the measured access counts —
// exactly the paper's §4.1 flow (manual pruning skeleton + automatic
// instrumentation counts).
func BuildDemonstrator(cfg DemoConfig) (*Demonstrator, error) {
	return buildDemonstratorObs(cfg, nil)
}

// buildDemonstratorObs is BuildDemonstrator with telemetry: the profiling
// encode, the reuse analysis, and the spec derivation each get a child span
// under parent (nil parent disables all of it).
func buildDemonstratorObs(cfg DemoConfig, parent *obs.Span) (*Demonstrator, error) {
	return buildDemonstratorObsContext(context.Background(), cfg, parent)
}

// buildDemonstratorObsContext adds cancellation support: the reuse analysis
// truncates its trace when ctx expires. The profiling encode itself is not
// cancelable (the codec has no cancellation points); use small image sizes
// when operating under tight deadlines.
func buildDemonstratorObsContext(ctx context.Context, cfg DemoConfig, parent *obs.Span) (*Demonstrator, error) {
	cfg.normalize()
	rec := trace.NewRecorder()
	rec.EnableAddressTrace("image")
	src := img.Synthetic(cfg.Size, cfg.Size, cfg.Seed)
	esp := parent.Child("profile.encode")
	_, stats, err := btpc.Encode(src, btpc.Params{Quant: cfg.Quant}, rec)
	if esp != nil {
		esp.SetInt("size", int64(cfg.Size))
		esp.SetInt("accesses", int64(rec.TotalAccesses()))
	}
	esp.End()
	if err != nil {
		return nil, fmt.Errorf("core: profiling encode failed: %w", err)
	}
	prof := reuse.AnalyzeObservedContext(ctx, rec.Addresses("image"), parent)
	ssp := parent.Child("profile.spec")
	s, err := buildPrunedSpec(cfg, rec, stats)
	if err != nil {
		ssp.End()
		return nil, err
	}
	if ssp != nil {
		ssp.SetInt("groups", int64(len(s.Groups)))
		ssp.SetInt("loops", int64(len(s.Loops)))
	}
	ssp.End()
	return &Demonstrator{
		Config:       cfg,
		Spec:         s,
		ImageProfile: prof,
		Rec:          rec,
		Stats:        stats,
		CycleBudget:  uint64(CyclesPerPixel) * uint64(cfg.Size) * uint64(cfg.Size),
	}, nil
}

// buildPrunedSpec writes down the designer's pruned loop skeleton of the
// BTPC encoder and fills in the profiled access counts per loop scope.
func buildPrunedSpec(cfg DemoConfig, rec *trace.Recorder, stats *btpc.Stats) (*spec.Spec, error) {
	n := int64(cfg.Size) * int64(cfg.Size)
	b := spec.NewBuilder(fmt.Sprintf("btpc-%d", cfg.Size))

	// The paper's 18 basic groups: three large image-sized arrays, the
	// lookup/statistics tables, and the six Huffman coders' tree and
	// weight arrays ("the largest needs twenty bits" — the weights).
	b.Group("image", n, 8)
	b.Group("pyr", n, 8)
	b.Group("ridge", n, 2)
	b.Group("qtab", 511, 9)
	b.Group("iqtab", 511, 9)
	b.Group("hist", 511, 20)
	for i := 0; i < btpc.NumContexts; i++ {
		b.Group(fmt.Sprintf("htree%d", i), 259, 10)
		b.Group(fmt.Sprintf("hweight%d", i), 259, 20)
	}

	// Global context-usage fractions (which coder a pixel lands in is
	// data-dependent; the profile supplies the distribution).
	var totalSyms uint64
	for _, c := range stats.SymbolsPerCtx {
		totalSyms += c
	}
	ctxFrac := [btpc.NumContexts]float64{}
	for i, c := range stats.SymbolsPerCtx {
		if totalSyms > 0 {
			ctxFrac[i] = float64(c) / float64(totalSyms)
		}
	}

	// input: the image arrives from the sensor/file into the image array.
	b.Loop("input", uint64(n))
	b.Write("image", perIter(rec, "image", "input", true, uint64(n)))

	// tabinit: quantization table setup (pruned to its access behaviour).
	b.Loop("tabinit", 511)
	b.Write("qtab", perIter(rec, "qtab", "tabinit", true, 511))
	b.Write("iqtab", perIter(rec, "iqtab", "tabinit", true, 511))

	// top: raw transmission of the coarsest lattice.
	top := uint64(stats.TopPixels)
	b.Loop("top", top)
	tr := b.Read("image", perIter(rec, "image", "enc/top", false, top))
	b.Write("pyr", perIter(rec, "pyr", "enc/top", true, top), tr)
	b.Write("ridge", perIter(rec, "ridge", "enc/top", true, top), tr)

	// One loop per predicted pyramid level, finest last.
	_, levels := btpc.LevelSizes(cfg.Size, cfg.Size, 0)
	for k := len(levels) - 1; k >= 0; k-- {
		iters := uint64(levels[k])
		if iters == 0 {
			continue
		}
		scope := fmt.Sprintf("enc/level%d", k)
		b.Loop(fmt.Sprintf("level%d", k), iters)

		// Neighbourhood fetch: four neighbour reads plus the actual pixel.
		imgReads := perIter(rec, "image", scope, false, iters)
		nbrCount := (imgReads - 1) / 4
		if nbrCount < 0 {
			nbrCount = 0
		}
		var fetch []int
		for j := 0; j < 4; j++ {
			fetch = append(fetch, b.ReadSite("image", fmt.Sprintf("nbr%d", j), nbrCount))
		}
		fetch = append(fetch, b.ReadSite("image", "actual", 1))
		// Context read: pyr and ridge at the first neighbour's index —
		// the co-indexed pair that makes them merging candidates.
		pc := b.ReadSite("pyr", "ctx", perIter(rec, "pyr", scope, false, iters))
		rc := b.ReadSite("ridge", "ctx", perIter(rec, "ridge", scope, false, iters))
		classifyDeps := append(append([]int(nil), fetch...), pc, rc)

		// Symbol mapping and reconstruction lookups.
		q := b.Read("qtab", perIter(rec, "qtab", scope, false, iters), classifyDeps...)
		iq := b.Read("iqtab", perIter(rec, "iqtab", scope, false, iters), q)

		// Entropy coding: each context's tree walk is a sequential chain.
		// The six coders are the alternatives of a data-dependent
		// conditional — exactly one executes per pixel — so the chains are
		// mutually exclusive branches: they may share storage cycles
		// without conflicting, and the critical path sees the longest.
		for i := 0; i < btpc.NumContexts; i++ {
			tg := fmt.Sprintf("htree%d", i)
			wg := fmt.Sprintf("hweight%d", i)
			treeReads := perIter(rec, tg, scope, false, iters)
			treeWrites := perIter(rec, tg, scope, true, iters)
			wReads := perIter(rec, wg, scope, false, iters)
			wWrites := perIter(rec, wg, scope, true, iters)
			if treeReads == 0 && wWrites == 0 {
				continue
			}
			b.Branch(fmt.Sprintf("coder%d", i))
			chain := walkLength(treeReads, ctxFrac[i])
			prev := q
			for step := 0; step < chain; step++ {
				prev = b.Read(tg, treeReads/float64(chain), prev)
			}
			if treeWrites > 0 {
				prev = b.Write(tg, treeWrites, prev)
			}
			if wReads > 0 {
				prev = b.Read(wg, wReads, prev)
			}
			if wWrites > 0 {
				b.Write(wg, wWrites, prev)
			}
			b.Branch("")
		}

		// Rate statistics: histogram read-modify-write.
		hr := b.Read("hist", perIter(rec, "hist", scope, false, iters), q)
		b.Write("hist", perIter(rec, "hist", scope, true, iters), hr)

		// Store the coded-error magnitude and the activity class — the
		// co-indexed pyr/ridge write pair.
		b.WriteSite("pyr", "store", perIter(rec, "pyr", scope, true, iters), iq)
		b.WriteSite("ridge", "store", perIter(rec, "ridge", scope, true, iters), q)
	}
	return b.Build()
}

// BuildDecoderDemonstrator profiles the BTPC *decoder* and derives its
// pruned specification — the other half of the codec system. The paper
// designs the encoder; the decoder's memory behaviour is similar but
// lighter (no neighbourhood prefetch of an input array: predictions read
// the reconstruction in place), so its exploration is a natural extension.
func BuildDecoderDemonstrator(cfg DemoConfig) (*Demonstrator, error) {
	cfg.normalize()
	src := img.Synthetic(cfg.Size, cfg.Size, cfg.Seed)
	data, stats, err := btpc.Encode(src, btpc.Params{Quant: cfg.Quant}, nil)
	if err != nil {
		return nil, fmt.Errorf("core: encode for decoder profiling failed: %w", err)
	}
	rec := trace.NewRecorder()
	rec.EnableAddressTrace("out")
	if _, err := btpc.Decode(data, rec); err != nil {
		return nil, fmt.Errorf("core: profiling decode failed: %w", err)
	}
	prof := reuse.Analyze(rec.Addresses("out"))
	s, err := buildDecoderSpec(cfg, rec, stats)
	if err != nil {
		return nil, err
	}
	return &Demonstrator{
		Config:       cfg,
		Spec:         s,
		ImageProfile: prof,
		Rec:          rec,
		Stats:        stats,
		CycleBudget:  uint64(CyclesPerPixel) * uint64(cfg.Size) * uint64(cfg.Size),
	}, nil
}

// buildDecoderSpec is the decoder's pruned loop skeleton: the reconstructed
// image plays the image array's role (named "out"), there is no qtab, and
// the Huffman walks run on the decode side.
func buildDecoderSpec(cfg DemoConfig, rec *trace.Recorder, stats *btpc.Stats) (*spec.Spec, error) {
	n := int64(cfg.Size) * int64(cfg.Size)
	b := spec.NewBuilder(fmt.Sprintf("btpc-dec-%d", cfg.Size))
	b.Group("out", n, 8)
	b.Group("pyr", n, 8)
	b.Group("ridge", n, 2)
	b.Group("iqtab", 511, 9)
	b.Group("hist", 511, 20)
	for i := 0; i < btpc.NumContexts; i++ {
		b.Group(fmt.Sprintf("htree%d", i), 259, 10)
		b.Group(fmt.Sprintf("hweight%d", i), 259, 20)
	}
	var totalSyms uint64
	for _, c := range stats.SymbolsPerCtx {
		totalSyms += c
	}
	ctxFrac := [btpc.NumContexts]float64{}
	for i, c := range stats.SymbolsPerCtx {
		if totalSyms > 0 {
			ctxFrac[i] = float64(c) / float64(totalSyms)
		}
	}

	b.Loop("tabinit", 511)
	b.Write("iqtab", perIter(rec, "iqtab", "tabinit", true, 511))

	top := uint64(stats.TopPixels)
	b.Loop("top", top)
	tw := b.Write("out", perIter(rec, "out", "dec/top", true, top))
	b.Write("pyr", perIter(rec, "pyr", "dec/top", true, top), tw)
	b.Write("ridge", perIter(rec, "ridge", "dec/top", true, top), tw)

	_, levels := btpc.LevelSizes(cfg.Size, cfg.Size, 0)
	for k := len(levels) - 1; k >= 0; k-- {
		iters := uint64(levels[k])
		if iters == 0 {
			continue
		}
		scope := fmt.Sprintf("dec/level%d", k)
		b.Loop(fmt.Sprintf("level%d", k), iters)
		// Neighbourhood reads come from the reconstruction itself.
		outReads := perIter(rec, "out", scope, false, iters)
		var fetch []int
		for j := 0; j < 4; j++ {
			fetch = append(fetch, b.ReadSite("out", fmt.Sprintf("nbr%d", j), outReads/4))
		}
		pc := b.ReadSite("pyr", "ctx", perIter(rec, "pyr", scope, false, iters))
		rc := b.ReadSite("ridge", "ctx", perIter(rec, "ridge", scope, false, iters))
		classifyDeps := append(append([]int(nil), fetch...), pc, rc)
		// Entropy decoding precedes the reconstruction lookup.
		var sym int
		first := true
		for i := 0; i < btpc.NumContexts; i++ {
			tg := fmt.Sprintf("htree%d", i)
			wg := fmt.Sprintf("hweight%d", i)
			treeReads := perIter(rec, tg, scope, false, iters)
			wWrites := perIter(rec, wg, scope, true, iters)
			if treeReads == 0 && wWrites == 0 {
				continue
			}
			b.Branch(fmt.Sprintf("coder%d", i))
			chain := walkLength(treeReads, ctxFrac[i])
			prev := b.Read(tg, treeReads/float64(chain), classifyDeps...)
			for step := 1; step < chain; step++ {
				prev = b.Read(tg, treeReads/float64(chain), prev)
			}
			if tw := perIter(rec, tg, scope, true, iters); tw > 0 {
				prev = b.Write(tg, tw, prev)
			}
			if wr := perIter(rec, wg, scope, false, iters); wr > 0 {
				prev = b.Read(wg, wr, prev)
			}
			if wWrites > 0 {
				prev = b.Write(wg, wWrites, prev)
			}
			if first {
				sym = prev
				first = false
			}
			b.Branch("")
		}
		iq := b.Read("iqtab", perIter(rec, "iqtab", scope, false, iters), sym)
		hr := b.Read("hist", perIter(rec, "hist", scope, false, iters), iq)
		b.Write("hist", perIter(rec, "hist", scope, true, iters), hr)
		b.WriteSite("out", "store", perIter(rec, "out", scope, true, iters), iq)
		b.WriteSite("pyr", "store", perIter(rec, "pyr", scope, true, iters), iq)
		b.WriteSite("ridge", "store", perIter(rec, "ridge", scope, true, iters), iq)
	}
	return b.Build()
}

// perIter converts a profiled scope count into an average per-iteration
// access count.
func perIter(rec *trace.Recorder, group, scope string, write bool, iters uint64) float64 {
	c := rec.ArrayScope(group, scope)
	v := c.Reads
	if write {
		v = c.Writes
	}
	return float64(v) / float64(iters)
}

// walkLength estimates the sequential tree-walk depth of a coder from its
// per-iteration read count and the fraction of pixels it codes.
func walkLength(readsPerIter, frac float64) int {
	if frac <= 0 || readsPerIter <= 0 {
		return 1
	}
	l := int(math.Round(readsPerIter / frac))
	if l < 1 {
		l = 1
	}
	// The pruned model chains only the tree-walk path (the FGK update
	// accesses parallelize with the walk in hardware), clamped at the
	// typical adaptive-code depth; rare deep walks are averaged into the
	// per-site counts, which preserve the total access volume exactly.
	l = (l + 1) / 2
	if l > 6 {
		l = 6
	}
	if l < 1 {
		l = 1
	}
	return l
}
