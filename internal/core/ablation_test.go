package core

import (
	"strings"
	"sync"
	"testing"
)

var (
	ablDemoOnce sync.Once
	ablDemo     *Demonstrator
	ablErr      error
)

// ablationDemo shares a small-scale demonstrator across ablation tests.
func ablationDemo(t *testing.T) *Demonstrator {
	t.Helper()
	ablDemoOnce.Do(func() {
		ablDemo, ablErr = BuildDemonstrator(DemoConfig{Size: 128})
	})
	if ablErr != nil {
		t.Fatal(ablErr)
	}
	return ablDemo
}

func TestStripBranches(t *testing.T) {
	d := ablationDemo(t)
	s := StripBranches(d.Spec)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Loops {
		for _, a := range l.Accesses {
			if a.Branch != "" {
				t.Fatalf("branch tag %q survived stripping", a.Branch)
			}
		}
	}
	// Access volumes unchanged: stripping only removes exclusivity.
	if s.TotalAccesses() != d.Spec.TotalAccesses() {
		t.Fatal("stripping changed access counts")
	}
	// The original still has branches.
	found := false
	for _, l := range d.Spec.Loops {
		for _, a := range l.Accesses {
			if a.Branch != "" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("demonstrator spec has no branch tags at all")
	}
}

func TestAblationBranchExclusivityDirection(t *testing.T) {
	d := ablationDemo(t)
	ep := DefaultEvalParams().ScaleTo(128)
	res := AblationBranchExclusivity(d, ep)
	if res.With == nil {
		t.Fatalf("baseline failed: %v", res.WithoutErr)
	}
	// Without exclusivity the pipeline either fails outright (budget below
	// the inflated MACP / infeasible allocation) or costs strictly more.
	if res.WithoutErr != nil {
		t.Logf("ablated pipeline failed as expected: %v", res.WithoutErr)
		return
	}
	if res.Without.Cost.TotalPower() <= res.With.Cost.TotalPower() &&
		res.Without.Cost.OnChipArea <= res.With.Cost.OnChipArea {
		t.Fatalf("removing branch exclusivity did not hurt: with %+v without %+v",
			res.With.Cost, res.Without.Cost)
	}
}

func TestAblationStructuralCostDirection(t *testing.T) {
	d := ablationDemo(t)
	ep := DefaultEvalParams().ScaleTo(128)
	res := AblationStructuralCost(d, ep)
	if res.WithoutErr != nil {
		t.Fatalf("ablation failed: %v", res.WithoutErr)
	}
	withPorts := RequiredPortsOf(res.With)
	withoutPorts := RequiredPortsOf(res.Without)
	// Without the structural term, some group is allowed a higher port
	// demand (or at best the same — then power must not be better).
	worse := false
	for g, p := range withoutPorts {
		if p > withPorts[g] {
			worse = true
		}
	}
	if !worse && res.Without.Cost.TotalPower() < res.With.Cost.TotalPower()-1e-6 {
		t.Fatalf("structural cost made things worse: with %+v without %+v",
			res.With.Cost, res.Without.Cost)
	}
	// The headline: image must stay low-port with the term enabled.
	if withPorts["image"] > 2 {
		t.Fatalf("image needs %d ports even with the structural term", withPorts["image"])
	}
}

func TestAblationGreedyAssignment(t *testing.T) {
	d := ablationDemo(t)
	ep := DefaultEvalParams().ScaleTo(128)
	res, err := AblationGreedyAssignment(d, ep, 6)
	if err != nil {
		t.Fatal(err)
	}
	optObj := res.With.Cost.OnChipPower + 0.3*res.With.Cost.OnChipArea
	grObj := res.Without.Cost.OnChipPower + 0.3*res.Without.Cost.OnChipArea
	if optObj > grObj+1e-9 {
		t.Fatalf("optimal assignment (%.2f) worse than greedy (%.2f)", optObj, grObj)
	}
}

func TestAblationInPlaceOnBTPC(t *testing.T) {
	d := ablationDemo(t)
	ep := DefaultEvalParams().ScaleTo(128)
	res, err := AblationInPlace(d, ep)
	if err != nil {
		t.Fatal(err)
	}
	// In-place may only help, never hurt.
	if res.With.Cost.OnChipArea > res.Without.Cost.OnChipArea+1e-9 {
		t.Fatalf("in-place increased area: %.2f vs %.2f",
			res.With.Cost.OnChipArea, res.Without.Cost.OnChipArea)
	}
	// The honest expectation: BTPC's arrays are frame-long-lived, so the
	// savings are small (< 5% of area).
	delta := res.Without.Cost.OnChipArea - res.With.Cost.OnChipArea
	if delta > 0.05*res.Without.Cost.OnChipArea {
		t.Logf("note: in-place saved %.2f mm² on BTPC (more than expected)", delta)
	}
}

// TestOrderingsRobustToTechnologyScaling validates the paper's central
// methodological claim: the cost models "will only affect the absolute cost
// figures, and not the relative comparisons". We perturb the on-chip
// technology (process shrinks and a pessimistic bloat) and check that the
// Table 1 and Table 2 decisions survive.
func TestOrderingsRobustToTechnologyScaling(t *testing.T) {
	d := ablationDemo(t)
	for _, scale := range []struct {
		name         string
		area, energy float64
	}{
		{"shrink-0.5um", 0.5, 0.6},
		{"shrink-0.35um", 0.25, 0.4},
		{"bloat", 1.6, 1.4},
	} {
		ep := DefaultEvalParams()
		ep.Tech = ep.Tech.Scale(scale.area, scale.energy)
		ep = ep.ScaleTo(128)

		sv, err := ExploreStructuring(d, ep)
		if err != nil {
			t.Fatalf("%s: %v", scale.name, err)
		}
		if !(sv[2].Cost.OffChipPower < sv[1].Cost.OffChipPower &&
			sv[1].Cost.OffChipPower < sv[0].Cost.OffChipPower) {
			t.Errorf("%s: Table 1 ordering broke: %.1f / %.1f / %.1f", scale.name,
				sv[0].Cost.OffChipPower, sv[1].Cost.OffChipPower, sv[2].Cost.OffChipPower)
		}

		hv, _, err := ExploreHierarchy(sv[2].Spec, d, ep)
		if err != nil {
			t.Fatalf("%s: %v", scale.name, err)
		}
		for i := 1; i < 4; i++ {
			if hv[i].Cost.OffChipPower >= hv[0].Cost.OffChipPower {
				t.Errorf("%s: hierarchy variant %d no longer cuts off-chip power", scale.name, i)
			}
		}
	}
}

// TestPipelinedSweepShowsOffChipJump: the paper's Table 3 shows the
// off-chip organization getting more expensive at the tightest budget
// (98.1 -> 138.7 mW). That regime needs cross-iteration overlap; with the
// software-pipelining extension enabled, the jump reproduces.
func TestPipelinedSweepShowsOffChipJump(t *testing.T) {
	if testing.Short() {
		t.Skip("pipelined sweep skipped in -short mode")
	}
	d := ablationDemo(t)
	ep := DefaultEvalParams().ScaleTo(128)
	sv, err := ExploreStructuring(d, ep)
	if err != nil {
		t.Fatal(err)
	}
	hv, _, err := ExploreHierarchy(sv[2].Spec, d, ep)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ExploreBudgetsPipelined(hv[2].Spec, d.CycleBudget, ep)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("only %d pipelined rows", len(pts))
	}
	first := pts[0].Cost
	last := pts[len(pts)-1].Cost
	if last.OffChipPower <= first.OffChipPower*1.1 {
		t.Fatalf("no off-chip jump at the tightest interval: %.1f -> %.1f",
			first.OffChipPower, last.OffChipPower)
	}
	if last.OnChipPower <= first.OnChipPower {
		t.Fatalf("on-chip cost did not climb when tightening: %.1f -> %.1f",
			first.OnChipPower, last.OnChipPower)
	}
	// Monotone off-chip power as the interval tightens.
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost.OffChipPower < pts[i-1].Cost.OffChipPower-1e-6 {
			t.Fatalf("off-chip power dropped when tightening: %.1f -> %.1f",
				pts[i-1].Cost.OffChipPower, pts[i].Cost.OffChipPower)
		}
	}
}

// TestShapesRobustToInputSeed: the profiled counts are data-dependent, so
// the qualitative conclusions must survive different input images.
func TestShapesRobustToInputSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []uint64{2, 3} {
		d, err := BuildDemonstrator(DemoConfig{Size: 128, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ep := DefaultEvalParams().ScaleTo(128)
		sv, err := ExploreStructuring(d, ep)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !(sv[2].Cost.OffChipPower < sv[0].Cost.OffChipPower) {
			t.Errorf("seed %d: merging no longer wins off-chip (%.1f vs %.1f)",
				seed, sv[2].Cost.OffChipPower, sv[0].Cost.OffChipPower)
		}
		hv, _, err := ExploreHierarchy(sv[2].Spec, d, ep)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 1; i < 4; i++ {
			if hv[i].Cost.OffChipPower >= hv[0].Cost.OffChipPower {
				t.Errorf("seed %d: hierarchy %d no longer cuts off-chip power", seed, i)
			}
		}
	}
}

// TestLossyProfileExplores: the methodology also runs on a lossy-configured
// demonstrator (different data-dependent access counts).
func TestLossyProfileExplores(t *testing.T) {
	d, err := BuildDemonstrator(DemoConfig{Size: 128, Quant: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ep := DefaultEvalParams().ScaleTo(128)
	v, err := Evaluate(d.Spec, d.CycleBudget, "lossy", ep)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cost.TotalPower() <= 0 {
		t.Fatal("degenerate lossy evaluation")
	}
}

func TestDecoderDemonstratorExplores(t *testing.T) {
	d, err := BuildDecoderDemonstrator(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// 17 basic groups: the encoder's 18 minus qtab (the decoder only
	// inverts symbols).
	if got := len(d.Spec.Groups); got != 17 {
		t.Fatalf("decoder spec has %d groups, want 17", got)
	}
	// Spec totals must reproduce the decoder profile.
	for _, g := range d.Spec.GroupNames() {
		prof := d.Rec.Array(g).Total()
		if prof == 0 {
			t.Errorf("%s: no profiled accesses", g)
			continue
		}
		ratio := float64(d.Spec.AccessesPerFrame(g)) / float64(prof)
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s: spec/profile ratio %.3f", g, ratio)
		}
	}
	ep := DefaultEvalParams().ScaleTo(128)
	v, err := Evaluate(d.Spec, d.CycleBudget, "decoder", ep)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cost.OffChipPower <= 0 {
		t.Fatal("decoder exploration found no off-chip cost")
	}
	// The decoder is lighter than the encoder (no input-array prefetch).
	enc := ablationDemo(t)
	if d.Spec.TotalAccesses() >= enc.Spec.TotalAccesses() {
		t.Fatalf("decoder accesses %d not below encoder %d",
			d.Spec.TotalAccesses(), enc.Spec.TotalAccesses())
	}
}

// TestRunAllDeterministic: the whole exploration (including the parallel
// sweeps) must be byte-for-byte reproducible — the property EXPERIMENTS.md
// relies on.
func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double full run skipped in -short mode")
	}
	a, err := RunAll(DemoConfig{Size: 128}, DefaultEvalParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAll(DemoConfig{Size: 128}, DefaultEvalParams())
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]string{
		"Table1":  {a.Table1().Render(), b.Table1().Render()},
		"Table2":  {a.Table2().Render(), b.Table2().Render()},
		"Table3":  {a.Table3().Render(), b.Table3().Render()},
		"Table4":  {a.Table4().Render(), b.Table4().Render()},
		"Figure1": {a.Figure1(), b.Figure1()},
		"Figure3": {a.Figure3(), b.Figure3()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differs between identical runs:\n%s\nvs\n%s", name, pair[0], pair[1])
		}
	}
}

func TestInPlaceReportRenders(t *testing.T) {
	d := ablationDemo(t)
	r := InPlaceReport(d.Spec)
	for _, w := range []string{"image", "birth", "death"} {
		if !strings.Contains(r, w) {
			t.Fatalf("lifetime report missing %q", w)
		}
	}
}
