package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/spec"
)

// spanCounter counts finished spans by name.
type spanCounter struct {
	mu sync.Mutex
	n  map[string]int
}

func newSpanCounter() *spanCounter { return &spanCounter{n: make(map[string]int)} }

func (c *spanCounter) Span(r *obs.SpanRecord) {
	c.mu.Lock()
	c.n[r.Name]++
	c.mu.Unlock()
}
func (c *spanCounter) Flush(map[string]int64) error { return nil }

func (c *spanCounter) count(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[name]
}

// infeasibleSpec is unassignable at any allocation: nine dependence-free
// accesses to one group with exactly one storage cycle per iteration force
// a nine-port memory, above the default MaxPorts of eight.
func infeasibleSpec() (*spec.Spec, uint64) {
	b := spec.NewBuilder("infeasible")
	b.Group("g", 64, 8)
	b.Loop("l", 8)
	for i := 0; i < 9; i++ {
		b.Read("g", 1)
	}
	return b.MustBuild(), 8 // total budget = iterations × 1 cycle
}

// TestAllocationRetryInfeasible: with a live context, an infeasible
// allocation is retried at larger counts (the documented +6 window) before
// giving up.
func TestAllocationRetryInfeasible(t *testing.T) {
	s, budget := infeasibleSpec()
	sink := newSpanCounter()
	ep := DefaultEvalParams()
	ep.Obs = obs.New(sink)
	_, err := EvaluateContext(context.Background(), s, budget, "live", ep)
	if err == nil {
		t.Fatal("expected allocation failure for the 9-port spec")
	}
	if got := sink.count("assign"); got != 7 {
		t.Fatalf("live context made %d assign attempts, want 7 (count..count+6)", got)
	}
}

// TestAllocationRetryStopsOnDeadContext: a canceled context cannot be
// helped by a larger allocation — the retry loop must classify the error
// and make exactly one attempt.
func TestAllocationRetryStopsOnDeadContext(t *testing.T) {
	s, budget := infeasibleSpec()
	sink := newSpanCounter()
	ep := DefaultEvalParams()
	ep.Obs = obs.New(sink)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateContext(ctx, s, budget, "dead", ep)
	if err == nil {
		t.Fatal("expected allocation failure for the 9-port spec")
	}
	if got := sink.count("assign"); got != 1 {
		t.Fatalf("canceled context made %d assign attempts, want exactly 1", got)
	}
}

// TestCachedRunMatchesUncached: the session cache must only remove
// redundant work. A cached and an uncached full methodology run must render
// byte-identical tables and figures.
func TestCachedRunMatchesUncached(t *testing.T) {
	epCached := DefaultEvalParams().ScaleTo(64)
	if epCached.Memo == nil {
		t.Fatal("DefaultEvalParams did not attach a session cache")
	}
	cached, err := RunAll(DemoConfig{Size: 64}, epCached)
	if err != nil {
		t.Fatal(err)
	}
	st := epCached.Memo.Stats(memo.Schedule)
	if st.Hits == 0 {
		t.Fatalf("cached run never hit the schedule cache: %+v", st)
	}

	epPlain := DefaultEvalParams().ScaleTo(64)
	epPlain.Memo = nil
	plain, err := RunAll(DemoConfig{Size: 64}, epPlain)
	if err != nil {
		t.Fatal(err)
	}

	renders := []struct {
		name             string
		cached, uncached string
	}{
		{"Table1", cached.Table1().Render(), plain.Table1().Render()},
		{"Table2", cached.Table2().Render(), plain.Table2().Render()},
		{"Table3", cached.Table3().Render(), plain.Table3().Render()},
		{"Table4", cached.Table4().Render(), plain.Table4().Render()},
		{"Figure1", cached.Figure1(), plain.Figure1()},
		{"Figure2", cached.Figure2(), plain.Figure2()},
		{"Figure3", cached.Figure3(), plain.Figure3()},
	}
	for _, r := range renders {
		if r.cached != r.uncached {
			t.Errorf("%s differs between cached and uncached runs:\ncached:\n%s\nuncached:\n%s",
				r.name, r.cached, r.uncached)
		}
	}
	// The proven-optimality flags must agree too (the cache must not turn a
	// proven-optimal search into a best-effort one or vice versa).
	if cached.Final.Asgn.Optimal != plain.Final.Asgn.Optimal {
		t.Errorf("final Optimal flag differs: cached=%v uncached=%v",
			cached.Final.Asgn.Optimal, plain.Final.Asgn.Optimal)
	}
}

// TestBoundedCacheRunMatchesUnbounded: capping the session cache (with a
// cap tight enough to force real evictions) must only change what stays
// resident — a bounded, an unbounded, and a cache-disabled full run render
// byte-identical tables and figures.
func TestBoundedCacheRunMatchesUnbounded(t *testing.T) {
	epBounded := DefaultEvalParams().ScaleTo(64)
	if epBounded.Memo == nil {
		t.Fatal("DefaultEvalParams did not attach a session cache")
	}
	const cap = 16 << 10 // tight: the demo workload far exceeds 16 KiB of entries
	for sp := memo.Space(0); sp <= memo.Requests; sp++ {
		epBounded.Memo.Bound(sp, cap)
	}
	bounded, err := RunAll(DemoConfig{Size: 64}, epBounded)
	if err != nil {
		t.Fatal(err)
	}
	evictions, held := int64(0), int64(0)
	for sp := memo.Space(0); sp <= memo.Requests; sp++ {
		st := epBounded.Memo.Stats(sp)
		evictions += st.Evictions
		if st.BytesHeld > held {
			held = st.BytesHeld
		}
		if st.BytesHeld > cap {
			t.Fatalf("space %v holds %d bytes over its %d cap", sp, st.BytesHeld, cap)
		}
	}
	if evictions == 0 {
		t.Fatal("the 16 KiB cap caused no evictions; the bound was not exercised")
	}

	epPlain := DefaultEvalParams().ScaleTo(64)
	epPlain.Memo = nil
	plain, err := RunAll(DemoConfig{Size: 64}, epPlain)
	if err != nil {
		t.Fatal(err)
	}
	epFree := DefaultEvalParams().ScaleTo(64)
	free, err := RunAll(DemoConfig{Size: 64}, epFree)
	if err != nil {
		t.Fatal(err)
	}

	wantRenders := renderAll(plain)
	for name, got := range renderAll(bounded) {
		if got != wantRenders[name] {
			t.Errorf("bounded cache changed results: %s differs from the uncached run", name)
		}
	}
	for name, got := range renderAll(free) {
		if got != wantRenders[name] {
			t.Errorf("unbounded cache changed results: %s differs from the uncached run", name)
		}
	}
	if bounded.Final.Asgn.Optimal != plain.Final.Asgn.Optimal {
		t.Errorf("final Optimal flag differs: bounded=%v uncached=%v",
			bounded.Final.Asgn.Optimal, plain.Final.Asgn.Optimal)
	}
}

// renderAll renders every table and figure of a Results for byte-comparison.
func renderAll(r *Results) map[string]string {
	return map[string]string{
		"Table1":  r.Table1().Render(),
		"Table2":  r.Table2().Render(),
		"Table3":  r.Table3().Render(),
		"Table4":  r.Table4().Render(),
		"Figure1": r.Figure1(),
		"Figure2": r.Figure2(),
		"Figure3": r.Figure3(),
	}
}

// TestDegradedRunDoesNotPoisonSessionCache is the serving-path regression
// the exploration service depends on: a deadline-degraded exploration and a
// full-budget exploration share one session cache (ep.Memo), and the
// full-budget run must render byte-identical tables and figures to an
// entirely uncached run — best-effort schedules must never be served to a
// later request from the cache.
func TestDegradedRunDoesNotPoisonSessionCache(t *testing.T) {
	ep := DefaultEvalParams().ScaleTo(64)

	// 1. Tight-timeout explore on the shared session (context expired before
	// the exploration even starts — maximal degradation).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	degraded, err := RunAllContext(ctx, DemoConfig{Size: 64}, ep)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Final == nil {
		t.Fatal("degraded run returned no final organization")
	}

	// 2. Unlimited explore on the SAME session.
	warm, err := RunAll(DemoConfig{Size: 64}, ep)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Reference: an uncached run.
	epPlain := DefaultEvalParams().ScaleTo(64)
	epPlain.Memo = nil
	plain, err := RunAll(DemoConfig{Size: 64}, epPlain)
	if err != nil {
		t.Fatal(err)
	}

	wantRenders := renderAll(plain)
	for name, got := range renderAll(warm) {
		if got != wantRenders[name] {
			t.Errorf("session poisoned by the degraded run: %s differs\nwarm:\n%s\nuncached:\n%s",
				name, got, wantRenders[name])
		}
	}
	if warm.Final.Asgn.Optimal != plain.Final.Asgn.Optimal {
		t.Errorf("final Optimal flag differs after a degraded run shared the session: warm=%v uncached=%v",
			warm.Final.Asgn.Optimal, plain.Final.Asgn.Optimal)
	}

	// Mid-flight expiry (not just dead-on-arrival): whatever prefix of the
	// pipeline a real deadline manages to complete, the next full run on the
	// session must still be byte-identical to the uncached reference.
	if !testing.Short() {
		for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 25 * time.Millisecond} {
			ep := DefaultEvalParams().ScaleTo(64)
			dctx, dcancel := context.WithTimeout(context.Background(), d)
			if _, err := RunAllContext(dctx, DemoConfig{Size: 64}, ep); err != nil {
				dcancel()
				t.Fatalf("deadline %v: %v", d, err)
			}
			dcancel()
			warm, err := RunAll(DemoConfig{Size: 64}, ep)
			if err != nil {
				t.Fatalf("deadline %v warm run: %v", d, err)
			}
			for name, got := range renderAll(warm) {
				if got != wantRenders[name] {
					t.Errorf("deadline %v poisoned the session: %s differs", d, name)
				}
			}
		}
	}
}

// TestParallelRunMatchesSerial: the worker pool must only change wall-clock
// time, never results. A strictly sequential run (workers=1) and a wide
// parallel run (workers=8) of the full methodology must render byte-identical
// tables and figures — with the session cache on and off.
func TestParallelRunMatchesSerial(t *testing.T) {
	run := func(workers int, cache bool) *Results {
		t.Helper()
		ep := DefaultEvalParams().ScaleTo(64)
		ep.Workers = pool.New(workers)
		if !cache {
			ep.Memo = nil
		}
		r, err := RunAll(DemoConfig{Size: 64}, ep)
		if err != nil {
			t.Fatalf("workers=%d cache=%v: %v", workers, cache, err)
		}
		return r
	}
	for _, cache := range []bool{true, false} {
		serial := run(1, cache)
		wide := run(8, cache)
		renders := []struct {
			name         string
			serial, wide string
		}{
			{"Table1", serial.Table1().Render(), wide.Table1().Render()},
			{"Table2", serial.Table2().Render(), wide.Table2().Render()},
			{"Table3", serial.Table3().Render(), wide.Table3().Render()},
			{"Table4", serial.Table4().Render(), wide.Table4().Render()},
			{"Figure1", serial.Figure1(), wide.Figure1()},
			{"Figure2", serial.Figure2(), wide.Figure2()},
			{"Figure3", serial.Figure3(), wide.Figure3()},
		}
		for _, r := range renders {
			if r.serial != r.wide {
				t.Errorf("cache=%v: %s differs between workers=1 and workers=8:\nserial:\n%s\nparallel:\n%s",
					cache, r.name, r.serial, r.wide)
			}
		}
		if serial.Final.Asgn.Optimal != wide.Final.Asgn.Optimal {
			t.Errorf("cache=%v: final Optimal flag differs: serial=%v parallel=%v",
				cache, serial.Final.Asgn.Optimal, wide.Final.Asgn.Optimal)
		}
	}
}
