package core

import (
	"context"
	"fmt"

	"repro/internal/assign"
	"repro/internal/bgstruct"
	"repro/internal/dfg"
	"repro/internal/memlib"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/reuse"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// EvalParams bundles the technology and tool parameters shared by all
// evaluation calls of one exploration session.
type EvalParams struct {
	Tech        *memlib.Tech
	SBD         sbd.Params
	Assign      assign.Params
	OnChipCount int // allocation used for steps 1-3; Table 4 sweeps it

	// Obs is the telemetry session; nil (the default) disables all
	// instrumentation at near-zero cost. Span is the current parent span the
	// step functions hang their spans off; EvalParams is passed by value, so
	// each nesting level carries its own parent without races.
	Obs  *obs.Observer
	Span *obs.Span

	// Progress is the live-introspection side channel of this evaluation:
	// the stages publish their position into it (current stage, search nodes,
	// incumbent, bound) and the serving layer reads it concurrently. Strictly
	// write-only for the pipeline, so results are identical with or without
	// it. Nil disables it.
	Progress *obs.Progress

	// Memo is the session's cross-variant evaluation cache: loop schedules
	// and conflict-pattern derivations are memoized by canonical
	// fingerprints, so sweeps that re-evaluate nearly identical subproblems
	// (structuring and hierarchy variants that leave most loops untouched,
	// budget points that clamp a loop to its minimum) pay for each distinct
	// subproblem once. DefaultEvalParams attaches a fresh cache; set to nil
	// to disable caching (the -cache=off path). Results are byte-identical
	// either way — the cache only removes redundant work.
	Memo *memo.Cache

	// Workers is the session-wide bounded worker pool shared by every
	// parallel stage: the hierarchy/budget/allocation sweeps fan their
	// candidates out on it, and the assignment search splits its
	// branch-and-bound subtrees on it. One pool bounds the whole session's
	// concurrency, and its inline-run fallback keeps the nesting
	// deadlock-free. DefaultEvalParams attaches a GOMAXPROCS-wide pool; nil
	// (or a 1-wide pool) runs everything sequentially. Results are
	// byte-identical at any width — the sweeps collect by index and the
	// search merges deterministically.
	Workers *pool.Pool
}

// startSpan opens a telemetry span for one pipeline stage: a child of the
// current parent when one is set, else a root span on the observer. The
// returned EvalParams copy carries the new span as parent, so nested
// Evaluate calls nest their spans underneath. Nil-safe throughout.
func (ep EvalParams) startSpan(name string) (*obs.Span, EvalParams) {
	var sp *obs.Span
	if ep.Span != nil {
		sp = ep.Span.Child(name)
	} else {
		sp = ep.Obs.Start(name)
	}
	ep.Span = sp
	// Best-effort stage reporting: parallel sweeps publish concurrently, so
	// introspection sees the most recent stage entered, which is what a
	// "where is this request now" endpoint wants.
	ep.Progress.SetStage(name)
	return sp, ep
}

// DefaultEvalParams returns the calibrated defaults used throughout the
// reproduction (thresholds kept consistent between the SCBD and assignment
// steps).
func DefaultEvalParams() EvalParams {
	tech := memlib.Default()
	return EvalParams{
		Tech:        tech,
		SBD:         sbd.Params{OnChipMaxWords: tech.OnChipMaxWords},
		Assign:      assign.Params{OnChipMaxWords: tech.OnChipMaxWords},
		OnChipCount: 4,
		Memo:        memo.New(),
		Workers:     pool.New(0),
	}
}

// ScaleTo adapts the on/off-chip size threshold to the profiled image size
// so that scaled-down demonstrators keep the paper's memory structure: the
// three image-sized arrays always live off-chip, the copy layers and tables
// on-chip. At the paper's 1024×1024 size this is the 64Ki generator limit.
func (ep EvalParams) ScaleTo(size int) EvalParams {
	th := int64(size) * int64(size) / 8
	if th > 64*1024 {
		th = 64 * 1024
	}
	if th < 1024 {
		th = 1024
	}
	tech := *ep.Tech
	tech.OnChipMaxWords = th
	// The real-time constraint is 1 Mpixel/s, so the frame period scales
	// with the pixel count and access rates stay size-independent.
	tech.FramePeriod = float64(size) * float64(size) / 1e6
	ep.Tech = &tech
	ep.SBD.OnChipMaxWords = th
	ep.Assign.OnChipMaxWords = th
	return ep
}

// Variant is one fully evaluated design alternative: the specification
// after the decision under study, its budget distribution, and the memory
// organization the physical-memory-management stage derived — with the
// accurate cost feedback the methodology runs on.
type Variant struct {
	Label string
	Spec  *spec.Spec
	Dist  *sbd.Distribution
	Asgn  *assign.Assignment
	Cost  assign.Cost
}

// Evaluate runs the physical memory management stage on a specification:
// storage cycle budget distribution followed by allocation and assignment.
// If the requested allocation is infeasible (the conflict structure demands
// more memories), nearby larger allocations are tried.
func Evaluate(s *spec.Spec, budget uint64, label string, ep EvalParams) (*Variant, error) {
	return EvaluateContext(context.Background(), s, budget, label, ep)
}

// EvaluateContext is Evaluate with deadline and cancellation support. The
// evaluation is *anytime*: under an expired context both stages degrade
// (sbd commits minimum-budget schedules, assign returns its greedy
// incumbent with Optimal=false) rather than erroring, so a feasible
// specification always yields a valid — if conservative — cost estimate.
func EvaluateContext(ctx context.Context, s *spec.Spec, budget uint64, label string, ep EvalParams) (*Variant, error) {
	sp, ep := ep.startSpan("evaluate")
	defer sp.End()
	if sp != nil {
		sp.SetStr("label", label)
		sp.SetInt("budget", int64(budget))
		sp.Observer().Counter("core.evaluations").Add(1)
	}
	sbdP := ep.SBD
	sbdP.Obs = ep.Span
	sbdP.Memo = ep.Memo
	sbdP.Progress = ep.Progress
	dist, err := sbd.DistributeContext(ctx, s, budget, sbdP)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", label, err)
	}
	pats := sbd.PrunePatternsCached(ep.Memo, dist.Patterns)
	if sp != nil {
		sp.SetInt("patterns", int64(len(dist.Patterns)))
		sp.SetInt("patterns_pruned", int64(len(dist.Patterns)-len(pats)))
	}
	asgnP := ep.Assign
	asgnP.Obs = ep.Span
	asgnP.Workers = ep.Workers
	asgnP.Progress = ep.Progress
	var asgn *assign.Assignment
	retries := 0
	for count := ep.OnChipCount; count <= ep.OnChipCount+6; count++ {
		asgn, err = assign.AssignContext(ctx, s, pats, ep.Tech, count, asgnP)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			// A dead context cannot be helped by a larger allocation: the
			// search degraded to its incumbent and the failure means the
			// problem itself is infeasible — stop retrying.
			break
		}
		retries++
	}
	if retries > 0 && sp != nil {
		sp.SetInt("allocation_retries", int64(retries))
		sp.Observer().Counter("core.allocation_retries").Add(int64(retries))
	}
	if err != nil {
		return nil, fmt.Errorf("core: %s: allocation failed: %w", label, err)
	}
	return &Variant{Label: label, Spec: s, Dist: dist, Asgn: asgn, Cost: asgn.Cost}, nil
}

// ExploreStructuring evaluates the basic group structuring alternatives of
// §4.3 (Table 1): untouched, ridge compacted, and ridge+pyr merged.
func ExploreStructuring(d *Demonstrator, ep EvalParams) ([]*Variant, error) {
	return ExploreStructuringContext(context.Background(), d, ep)
}

// ExploreStructuringContext is ExploreStructuring with cancellation support:
// the untouched variant is always evaluated (it is the baseline every other
// step can fall back to); under an expired context the structured
// alternatives are skipped.
func ExploreStructuringContext(ctx context.Context, d *Demonstrator, ep EvalParams) ([]*Variant, error) {
	sp, ep := ep.startSpan("step.structuring")
	defer sp.End()
	out := make([]*Variant, 0, 3)
	v, err := EvaluateContext(ctx, d.Spec, d.CycleBudget, "No structuring", ep)
	if err != nil {
		return nil, err
	}
	out = append(out, v)

	if ctx.Err() == nil {
		compacted, err := bgstruct.Compact(d.Spec, "ridge", 3)
		if err != nil {
			return nil, err
		}
		v, err = EvaluateContext(ctx, compacted, d.CycleBudget, "ridge compacted", ep)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}

	if ctx.Err() == nil {
		merged, err := bgstruct.Merge(d.Spec, "ridge", "pyr", "pyrridge")
		if err != nil {
			return nil, err
		}
		v, err = EvaluateContext(ctx, merged, d.CycleBudget, "ridge and pyr merged", ep)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	sp.SetInt("variants", int64(len(out)))
	return out, nil
}

// HierarchyLayers returns the paper's candidate copy layers for the image
// array, scaled to the profiled image: ylocal is the 12-register window
// buffer, yhier the ~5K line buffer (Figure 3).
func HierarchyLayers(size int) (ylocal, yhier reuse.Layer) {
	words := int64(5 * size)
	if words < 64 {
		words = 64
	}
	return reuse.Layer{Name: "ylocal", Words: 12}, reuse.Layer{Name: "yhier", Words: words}
}

// ExploreHierarchy evaluates the four memory-hierarchy alternatives of
// §4.4 (Table 2) on the given (already structured) specification.
func ExploreHierarchy(s *spec.Spec, d *Demonstrator, ep EvalParams) ([]*Variant, []*reuse.Hierarchy, error) {
	return ExploreHierarchyContext(context.Background(), s, d, ep)
}

// ExploreHierarchyContext is ExploreHierarchy with cancellation support:
// candidates not launched before the context expired are dropped from the
// result (the no-hierarchy baseline is always evaluated).
func ExploreHierarchyContext(ctx context.Context, s *spec.Spec, d *Demonstrator, ep EvalParams) ([]*Variant, []*reuse.Hierarchy, error) {
	sp, ep := ep.startSpan("step.hierarchy")
	defer sp.End()
	ylocal, yhier := HierarchyLayers(d.Config.Size)
	type option struct {
		label  string
		layers []reuse.Layer
	}
	options := []option{
		{"No hierarchy", nil},
		{"Only layer 1 (yhier)", []reuse.Layer{yhier}},
		{"Only layer 0 (ylocal)", []reuse.Layer{ylocal}},
		{"2 layers (both)", []reuse.Layer{ylocal, yhier}},
	}
	variants := make([]*Variant, len(options))
	hierarchies := make([]*reuse.Hierarchy, len(options))
	errs := make([]error, len(options))
	sp.SetInt("candidates", int64(len(options)))
	ep.Workers.ForEach(ctx, len(options), func(i int) {
		h, err := reuse.PlanObserved("image", options[i].layers, d.ImageProfile, ep.Span)
		if err != nil {
			errs[i] = err
			return
		}
		applied, err := reuse.Apply(s, h, 8)
		if err != nil {
			errs[i] = err
			return
		}
		v, err := EvaluateContext(ctx, applied, d.CycleBudget, options[i].label, ep)
		if err != nil {
			errs[i] = err
			return
		}
		variants[i] = v
		hierarchies[i] = h
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	// Compact the candidates the pool never launched (expired context):
	// the launched ones all evaluated (or errored above), so nil means
	// skipped, and variants/hierarchies stay index-aligned.
	outV := variants[:0]
	outH := hierarchies[:0]
	for i, v := range variants {
		if v == nil {
			continue
		}
		outV = append(outV, v)
		outH = append(outH, hierarchies[i])
	}
	return outV, outH, nil
}

// BudgetPoint is one row of the cycle-budget exploration (Table 3).
type BudgetPoint struct {
	*Variant
	Budget uint64 // the offered storage cycle budget
	Extra  uint64 // cycles left for data-path scheduling (vs. the full budget)
}

// ExploreBudgets sweeps the storage cycle budget downward from the
// real-time maximum (§4.5, Table 3). The sweep stops when the budget drops
// below the weighted MACP.
func ExploreBudgets(s *spec.Spec, fullBudget uint64, ep EvalParams) ([]*BudgetPoint, error) {
	return ExploreBudgetsContext(context.Background(), s, fullBudget, ep)
}

// ExploreBudgetsContext is ExploreBudgets with cancellation support: budget
// points not launched before the context expired are dropped (the full
// budget — the sweep's reference row — is always evaluated).
func ExploreBudgetsContext(ctx context.Context, s *spec.Spec, fullBudget uint64, ep EvalParams) ([]*BudgetPoint, error) {
	fracs := []float64{1.0, 0.95, 0.90, 0.85, 0.82, 0.80, 0.78, 0.75, 0.72, 0.70, 0.68}
	return budgetSweep(ctx, s, fullBudget, fracs, ep)
}

// ExploreBudgetsPipelined extends the Table 3 sweep below the dependence
// critical path by enabling software pipelining: iterations overlap, so
// ever-tighter initiation intervals remain schedulable — at the price of
// off-chip access overlap, which is where the paper's off-chip power jump
// at the tightest budget comes from.
func ExploreBudgetsPipelined(s *spec.Spec, fullBudget uint64, ep EvalParams) ([]*BudgetPoint, error) {
	return ExploreBudgetsPipelinedContext(context.Background(), s, fullBudget, ep)
}

// ExploreBudgetsPipelinedContext is ExploreBudgetsPipelined with
// cancellation support (see ExploreBudgetsContext).
func ExploreBudgetsPipelinedContext(ctx context.Context, s *spec.Spec, fullBudget uint64, ep EvalParams) ([]*BudgetPoint, error) {
	ep.SBD.Pipelined = true
	fracs := []float64{0.68, 0.60, 0.52, 0.45, 0.40, 0.34, 0.30, 0.26, 0.22}
	return budgetSweep(ctx, s, fullBudget, fracs, ep)
}

func budgetSweep(ctx context.Context, s *spec.Spec, fullBudget uint64, fracs []float64, ep EvalParams) ([]*BudgetPoint, error) {
	sp, ep := ep.startSpan("step.budget")
	defer sp.End()
	if sp != nil {
		sp.SetInt("points", int64(len(fracs)))
		pipelined := int64(0)
		if ep.SBD.Pipelined {
			pipelined = 1
		}
		sp.SetInt("pipelined", pipelined)
	}
	variants := make([]*Variant, len(fracs))
	ep.Workers.ForEach(ctx, len(fracs), func(i int) {
		budget := uint64(float64(fullBudget) * fracs[i])
		v, err := EvaluateContext(ctx, s, budget, fmt.Sprintf("budget %.0f%%", 100*fracs[i]), ep)
		if err != nil {
			return // below MACP or infeasible allocation: not a row
		}
		variants[i] = v
	})
	out := make([]*BudgetPoint, 0, len(fracs))
	seenUsed := make(map[uint64]bool, len(fracs))
	for i, v := range variants {
		if v == nil || seenUsed[v.Dist.Used] {
			continue // infeasible, or same committed schedule: identical row
		}
		seenUsed[v.Dist.Used] = true
		out = append(out, &BudgetPoint{
			Variant: v,
			Budget:  uint64(float64(fullBudget) * fracs[i]),
			Extra:   fullBudget - v.Dist.Used,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no feasible budget in the sweep")
	}
	sp.SetInt("rows", int64(len(out)))
	return out, nil
}

// ChooseBudget applies the paper's designer rule: spare as many cycles for
// the data-path as possible "with little or no increase in the cost of the
// memory organization". Tolerances are relative to the most relaxed row.
func ChooseBudget(points []*BudgetPoint, powerTol, areaTol float64) *BudgetPoint {
	ref := points[0]
	best := ref
	for _, p := range points[1:] {
		if p.Cost.TotalPower() <= ref.Cost.TotalPower()*(1+powerTol) &&
			p.Cost.OnChipArea <= ref.Cost.OnChipArea*(1+areaTol) &&
			p.Extra > best.Extra {
			best = p
		}
	}
	return best
}

// ExploreAllocations sweeps the number of allocated on-chip memories
// (§4.6, Table 4) at a fixed budget distribution.
func ExploreAllocations(s *spec.Spec, dist *sbd.Distribution, counts []int, ep EvalParams) ([]*Variant, []int, error) {
	return ExploreAllocationsContext(context.Background(), s, dist, counts, ep)
}

// ExploreAllocationsContext is ExploreAllocations with cancellation support:
// counts not launched before the context expired are dropped (the first
// count is always evaluated).
func ExploreAllocationsContext(ctx context.Context, s *spec.Spec, dist *sbd.Distribution, counts []int, ep EvalParams) ([]*Variant, []int, error) {
	sp, ep := ep.startSpan("step.allocation")
	defer sp.End()
	sp.SetInt("counts", int64(len(counts)))
	// The budget step already pruned this distribution's patterns when it
	// evaluated the chosen point; the session cache turns this duplicate
	// derivation into a lookup.
	pats := sbd.PrunePatternsCached(ep.Memo, dist.Patterns)
	asgns := make([]*assign.Assignment, len(counts))
	ep.Workers.ForEach(ctx, len(counts), func(i int) {
		ap := ep.Assign
		ap.Obs = ep.Span
		ap.Workers = ep.Workers
		if a, err := assign.AssignContext(ctx, s, pats, ep.Tech, counts[i], ap); err == nil {
			asgns[i] = a
		}
	})
	out := make([]*Variant, 0, len(counts))
	okCounts := make([]int, 0, len(counts))
	for i, a := range asgns {
		if a == nil {
			continue
		}
		out = append(out, &Variant{
			Label: fmt.Sprintf("%d on-chip memories", counts[i]),
			Spec:  s,
			Dist:  dist,
			Asgn:  a,
			Cost:  a.Cost,
		})
		okCounts = append(okCounts, counts[i])
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("core: no feasible allocation in sweep %v", counts)
	}
	return out, okCounts, nil
}

// MACPReport summarizes the §4.2 critical-path analysis: the dependence-
// bound minimum cycles (unit accesses), the duration-weighted minimum, and
// the real-time budget they must fit under.
type MACPReport struct {
	UnitMACP     uint64 // each access one cycle
	WeightedMACP uint64 // off-chip accesses take several cycles
	CycleBudget  uint64
	Feasible     bool
}

// AnalyzeMACP computes the critical-path report for a specification.
func AnalyzeMACP(s *spec.Spec, budget uint64, ep EvalParams) MACPReport {
	groups := make(map[string]spec.BasicGroup, len(s.Groups))
	for _, g := range s.Groups {
		groups[g.Name] = g
	}
	var weighted uint64
	for i := range s.Loops {
		weighted += uint64(sbd.WeightedCP(&s.Loops[i], groups, ep.SBD)) * s.Loops[i].Iterations
	}
	return MACPReport{
		UnitMACP:     dfg.MACP(s),
		WeightedMACP: weighted,
		CycleBudget:  budget,
		Feasible:     weighted <= budget,
	}
}
