package core

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/inplace"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// This file quantifies the modeling decisions DESIGN.md calls out by
// re-running the pipeline with each decision disabled. The ablations are
// exercised by the benchmark harness (BenchmarkAblation*) and guarded by
// direction tests.

// StripBranches returns a clone of s with all conditional-branch tags
// removed: mutually exclusive alternatives are then treated as co-executing
// code, the modeling error the branch mechanism exists to avoid.
func StripBranches(s *spec.Spec) *spec.Spec {
	c := s.Clone()
	c.Name = s.Name + "+nobranch"
	for li := range c.Loops {
		for ai := range c.Loops[li].Accesses {
			c.Loops[li].Accesses[ai].Branch = ""
		}
	}
	return c
}

// AblationResult compares a baseline evaluation against the same evaluation
// with one modeling decision disabled.
type AblationResult struct {
	Name       string
	With       *Variant
	Without    *Variant
	Note       string
	WithoutErr error // set when the ablated pipeline cannot even complete
}

// AblationBranchExclusivity evaluates the demonstrator with the six-coder
// mutual exclusion removed: every coder chain is then scheduled as real
// parallel work, inflating the critical path and the conflict structure.
func AblationBranchExclusivity(d *Demonstrator, ep EvalParams) *AblationResult {
	res := &AblationResult{
		Name: "branch exclusivity",
		Note: "without mutual exclusion the six Huffman coders count as co-executing",
	}
	with, err := Evaluate(d.Spec, d.CycleBudget, "with branches", ep)
	if err != nil {
		res.WithoutErr = err
		return res
	}
	res.With = with
	stripped := StripBranches(d.Spec)
	without, err := Evaluate(stripped, d.CycleBudget, "without branches", ep)
	if err != nil {
		res.WithoutErr = err
		return res
	}
	res.Without = without
	return res
}

// AblationStructuralCost evaluates the demonstrator without the
// iteration-independent conflict term: cold loops are then free to force
// high port counts on shared memories.
func AblationStructuralCost(d *Demonstrator, ep EvalParams) *AblationResult {
	res := &AblationResult{
		Name: "structural conflict cost",
		Note: "without it, rarely-executed loops force multiport memories for free",
	}
	with, err := Evaluate(d.Spec, d.CycleBudget, "with structural", ep)
	if err != nil {
		res.WithoutErr = err
		return res
	}
	res.With = with
	ep.SBD.StructuralWeight = -1 // disabled
	without, err := Evaluate(d.Spec, d.CycleBudget, "without structural", ep)
	if err != nil {
		res.WithoutErr = err
		return res
	}
	res.Without = without
	return res
}

// AblationGreedyAssignment compares the exact branch-and-bound assignment
// against the greedy-only baseline (the organization a designer without the
// optimizing tool would reach) at the given allocation.
func AblationGreedyAssignment(d *Demonstrator, ep EvalParams, onChip int) (*AblationResult, error) {
	dist, err := sbd.Distribute(d.Spec, d.CycleBudget, ep.SBD)
	if err != nil {
		return nil, err
	}
	pats := sbd.PrunePatterns(dist.Patterns)
	opt, err := assign.Assign(d.Spec, pats, ep.Tech, onChip, ep.Assign)
	if err != nil {
		return nil, err
	}
	gr, err := assign.Greedy(d.Spec, pats, ep.Tech, onChip, ep.Assign)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:    fmt.Sprintf("optimal vs greedy assignment (%d memories)", onChip),
		With:    &Variant{Label: "optimal", Spec: d.Spec, Dist: dist, Asgn: opt, Cost: opt.Cost},
		Without: &Variant{Label: "greedy", Spec: d.Spec, Dist: dist, Asgn: gr, Cost: gr.Cost},
		Note:    "the greedy solution is the paper's manual-designer baseline",
	}, nil
}

// AblationInPlace compares assignments with and without the in-place
// mapping extension. For the BTPC demonstrator the honest expected result
// is ~zero savings: its large arrays live across the whole frame.
func AblationInPlace(d *Demonstrator, ep EvalParams) (*AblationResult, error) {
	with := ep
	with.Assign.InPlace = true
	v1, err := Evaluate(d.Spec, d.CycleBudget, "in-place", with)
	if err != nil {
		return nil, err
	}
	v0, err := Evaluate(d.Spec, d.CycleBudget, "plain", ep)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:    "in-place mapping",
		With:    v1,
		Without: v0,
		Note:    "BTPC's arrays live frame-long, so little sharing is expected",
	}, nil
}

// InPlaceReport renders the lifetime analysis of the demonstrator spec.
func InPlaceReport(s *spec.Spec) string { return inplace.Report(s) }
