package core

import (
	"context"
	"fmt"

	"repro/internal/pareto"
	"repro/internal/report"
	"repro/internal/reuse"
	"repro/internal/sbd"
)

// Results is the complete output of one methodology run: every explored
// alternative per step, the decisions taken, and the final organization.
type Results struct {
	Demo *Demonstrator
	MACP MACPReport

	Structuring  []*Variant // Table 1
	StructChoice *Variant

	Hierarchy   []*Variant // Table 2
	Hierarchies []*reuse.Hierarchy
	HierChoice  *Variant
	HierPlan    *reuse.Hierarchy

	Budgets      []*BudgetPoint // Table 3
	BudgetChoice *BudgetPoint

	Allocations []*Variant // Table 4
	AllocCounts []int
	AllocChoice *Variant

	Final *Variant
}

// RunAll executes the full stepwise feedback methodology on the BTPC
// demonstrator: profile → prune → structure → hierarchy → cycle budget →
// allocation, choosing at each step from the accurate cost feedback.
func RunAll(cfg DemoConfig, ep EvalParams) (*Results, error) {
	return RunAllContext(context.Background(), cfg, ep)
}

// RunAllContext is RunAll with deadline and cancellation support. The run is
// *anytime*: when ctx expires, every remaining step degrades (sweeps keep
// their reference row, searches return their incumbents flagged
// Optimal=false) and a complete, valid Results is still produced. The
// profiling encode itself is not cancelable; the context takes effect from
// the reuse analysis onward.
func RunAllContext(ctx context.Context, cfg DemoConfig, ep EvalParams) (*Results, error) {
	root, ep := ep.startSpan("run_all")
	defer root.End()

	psp := root.Child("profile")
	demo, err := buildDemonstratorObsContext(ctx, cfg, psp)
	psp.End()
	if err != nil {
		return nil, err
	}
	ep = ep.ScaleTo(demo.Config.Size)
	r := &Results{Demo: demo}

	msp := root.Child("step.macp")
	r.MACP = AnalyzeMACP(demo.Spec, demo.CycleBudget, ep)
	if msp != nil {
		msp.SetInt("unit_macp", int64(r.MACP.UnitMACP))
		msp.SetInt("weighted_macp", int64(r.MACP.WeightedMACP))
		msp.SetInt("cycle_budget", int64(r.MACP.CycleBudget))
	}
	msp.End()

	// Step 1: basic group structuring (Table 1). Decision: total power.
	r.Structuring, err = ExploreStructuringContext(ctx, demo, ep)
	if err != nil {
		return nil, err
	}
	r.StructChoice = minPower(r.Structuring)

	// Step 2: memory hierarchy (Table 2).
	r.Hierarchy, r.Hierarchies, err = ExploreHierarchyContext(ctx, r.StructChoice.Spec, demo, ep)
	if err != nil {
		return nil, err
	}
	r.HierChoice = minPower(r.Hierarchy)
	for i, v := range r.Hierarchy {
		if v == r.HierChoice {
			r.HierPlan = r.Hierarchies[i]
		}
	}

	// Step 3: storage cycle budget (Table 3). Decision: spare as many
	// data-path cycles as possible at little memory-organization cost.
	r.Budgets, err = ExploreBudgetsContext(ctx, r.HierChoice.Spec, demo.CycleBudget, ep)
	if err != nil {
		return nil, err
	}
	r.BudgetChoice = ChooseBudget(r.Budgets, 0.05, 0.10)

	// Step 4: allocation sweep (Table 4). Decision: weighted area/power.
	counts := []int{4, 5, 8, 10, 14}
	r.Allocations, r.AllocCounts, err = ExploreAllocationsContext(
		ctx, r.BudgetChoice.Spec, r.BudgetChoice.Dist, counts, ep)
	if err != nil {
		return nil, err
	}
	fsp := root.Child("step.final")
	pts := make([]pareto.Point, len(r.Allocations))
	for i, v := range r.Allocations {
		pts[i] = pareto.Point{Label: v.Label, Area: v.Cost.OnChipArea, Power: v.Cost.TotalPower()}
	}
	bestPt, _ := pareto.Best(pts, 0.5, 1, 0)
	for _, v := range r.Allocations {
		if v.Label == bestPt.Label {
			r.AllocChoice = v
		}
	}
	r.Final = r.AllocChoice
	if fsp != nil {
		fsp.SetStr("choice", r.Final.Label)
		fsp.SetFloat("total_power_mw", r.Final.Cost.TotalPower())
		fsp.SetFloat("onchip_area_mm2", r.Final.Cost.OnChipArea)
	}
	fsp.End()
	// Snapshot the session cache's hit rates and the worker pool's
	// spawn/inline counts into the telemetry session (memo.hits{space=...},
	// pool.spawns, ...), so traces and -stats report how much of the sweep
	// was answered from the cache and how the work was scheduled.
	ep.Memo.Publish(ep.Obs)
	ep.Workers.Publish(ep.Obs)
	return r, nil
}

func minPower(vs []*Variant) *Variant {
	best := vs[0]
	for _, v := range vs[1:] {
		if v.Cost.TotalPower() < best.Cost.TotalPower() {
			best = v
		}
	}
	return best
}

// costLabel is the table label of a variant: proven-optimal organizations
// show plain, best-effort ones (deadline, cancellation, or node-budget
// exhaustion stopped the exact search) are marked.
func costLabel(v *Variant) string {
	if v.Asgn != nil && !v.Asgn.Optimal {
		return v.Label + " (best-effort)"
	}
	return v.Label
}

// Table1 renders the basic group structuring costs (paper Table 1).
func (r *Results) Table1() *report.Table {
	t := report.CostTable("Table 1: Basic group structuring for the BTPC application", "Version")
	for _, v := range r.Structuring {
		t.AddRow(report.CostRow(costLabel(v), v.Cost)...)
	}
	return t
}

// Table2 renders the memory hierarchy decision costs (paper Table 2).
func (r *Results) Table2() *report.Table {
	t := report.CostTable("Table 2: Memory hierarchy decision for the BTPC application", "Version")
	for _, v := range r.Hierarchy {
		t.AddRow(report.CostRow(costLabel(v), v.Cost)...)
	}
	return t
}

// Table3 renders the cycle budget exploration (paper Table 3).
func (r *Results) Table3() *report.Table {
	t := &report.Table{
		Title: "Table 3: Different cycle budgets for the BTPC application",
		Headers: []string{"Extra cycles for data-path", "on-chip area [mm2]",
			"on-chip power [mW]", "off-chip power [mW]"},
	}
	for _, p := range r.Budgets {
		pct := 100 * float64(p.Extra) / float64(r.Demo.CycleBudget)
		t.AddRow(
			fmt.Sprintf("%d (%.1f%%)", p.Extra, pct),
			fmt.Sprintf("%.1f", p.Cost.OnChipArea),
			fmt.Sprintf("%.1f", p.Cost.OnChipPower),
			fmt.Sprintf("%.1f", p.Cost.OffChipPower),
		)
	}
	return t
}

// Table4 renders the allocation sweep (paper Table 4).
func (r *Results) Table4() *report.Table {
	t := report.CostTable("Table 4: Different memory allocations for the BTPC application", "Version")
	for _, v := range r.Allocations {
		t.AddRow(report.CostRow(costLabel(v), v.Cost)...)
	}
	return t
}

// Figure1 renders the stepwise-refinement exploration tree with the
// decisions taken (paper Figure 1).
func (r *Results) Figure1() string {
	labels := func(vs []*Variant) []string {
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = v.Label
		}
		return out
	}
	budgetLabels := make([]string, len(r.Budgets))
	for i, b := range r.Budgets {
		budgetLabels[i] = fmt.Sprintf("extra %d", b.Extra)
	}
	root := &report.TreeNode{
		Stage:   "Pruned system specification",
		Options: []string{fmt.Sprintf("%s (%d basic groups, %d loops)", r.Demo.Spec.Name, len(r.Demo.Spec.Groups), len(r.Demo.Spec.Loops))},
		Chosen:  "",
		Children: []*report.TreeNode{{
			Stage:   "Loop transformations (MACP)",
			Options: []string{fmt.Sprintf("none required (weighted MACP %d <= budget %d)", r.MACP.WeightedMACP, r.MACP.CycleBudget)},
			Children: []*report.TreeNode{{
				Stage:   "Basic group structuring",
				Options: labels(r.Structuring),
				Chosen:  r.StructChoice.Label,
				Children: []*report.TreeNode{{
					Stage:   "Memory hierarchy",
					Options: labels(r.Hierarchy),
					Chosen:  r.HierChoice.Label,
					Children: []*report.TreeNode{{
						Stage:   "Storage cycle budget distribution",
						Options: budgetLabels,
						Chosen:  fmt.Sprintf("extra %d", r.BudgetChoice.Extra),
						Children: []*report.TreeNode{{
							Stage:   "Memory allocation & assignment",
							Options: labels(r.Allocations),
							Chosen:  r.AllocChoice.Label,
						}},
					}},
				}},
			}},
		}},
	}
	return report.RenderTree(root)
}

// Figure2 renders the structuring schematic (paper Figure 2).
func (r *Results) Figure2() string { return report.StructuringDiagram() }

// Figure3 renders the image-array hierarchy possibilities (paper Figure 3
// shows the full two-layer candidate structure), annotated with the port
// counts the two-layer variant's assignment gave each layer.
func (r *Results) Figure3() string {
	full := r.Hierarchies[len(r.Hierarchies)-1] // the 2-layer candidate
	v := r.Hierarchy[len(r.Hierarchy)-1]
	return report.HierarchyDiagram(full, PortsOf(v))
}

// PortsOf exposes the per-group port map of a variant's assignment.
func PortsOf(v *Variant) map[string]int {
	ports := make(map[string]int)
	for _, bind := range v.Asgn.OnChip {
		for _, g := range bind.Groups {
			ports[g] = bind.Mem.Ports
		}
	}
	for _, bind := range v.Asgn.OffChip {
		for _, g := range bind.Groups {
			ports[g] = bind.Mem.Ports
		}
	}
	return ports
}

// RequiredPortsOf exposes the schedule-imposed minimum ports per group.
func RequiredPortsOf(v *Variant) map[string]int {
	return sbd.RequiredPorts(v.Dist.Patterns)
}
