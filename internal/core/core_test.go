package core

import (
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fullResults runs the complete methodology once at the paper's 1024×1024
// scale and shares the result across the shape tests.
var (
	fullOnce sync.Once
	fullRes  *Results
	fullErr  error
)

func paperScaleResults(t *testing.T) *Results {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale exploration skipped in -short mode")
	}
	fullOnce.Do(func() {
		fullRes, fullErr = RunAll(DemoConfig{Size: 1024}, DefaultEvalParams())
	})
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	return fullRes
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }

func TestBuildDemonstratorStructure(t *testing.T) {
	d, err := BuildDemonstrator(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's 18 basic groups.
	if got := len(d.Spec.Groups); got != 18 {
		t.Fatalf("spec has %d basic groups, want 18", got)
	}
	// Three large image-sized arrays, bitwidths 2..20.
	minBits, maxBits := 64, 0
	large := 0
	for _, g := range d.Spec.Groups {
		if g.Words == 128*128 {
			large++
		}
		if g.Bits < minBits {
			minBits = g.Bits
		}
		if g.Bits > maxBits {
			maxBits = g.Bits
		}
	}
	if large != 3 {
		t.Fatalf("%d image-sized groups, want 3", large)
	}
	if minBits != 2 || maxBits != 20 {
		t.Fatalf("bitwidth range [%d,%d], want [2,20]", minBits, maxBits)
	}
	if d.CycleBudget != 20*128*128 {
		t.Fatalf("cycle budget %d, want %d", d.CycleBudget, 20*128*128)
	}
	if d.ImageProfile.Total() == 0 {
		t.Fatal("no image read trace captured")
	}
}

func TestSpecCountsMatchProfile(t *testing.T) {
	d, err := BuildDemonstrator(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	// The pruned spec's per-frame access totals must reproduce the profiled
	// counts (within rounding of the per-iteration averages).
	for _, g := range d.Spec.GroupNames() {
		prof := d.Rec.Array(g).Total()
		specTotal := d.Spec.AccessesPerFrame(g)
		if prof == 0 {
			t.Errorf("%s: no profiled accesses", g)
			continue
		}
		ratio := float64(specTotal) / float64(prof)
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("%s: spec %d vs profile %d (ratio %.3f)", g, specTotal, prof, ratio)
		}
	}
}

func TestMACPFeasibleAtPaperConstraints(t *testing.T) {
	d, err := BuildDemonstrator(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	ep := DefaultEvalParams().ScaleTo(128)
	rep := AnalyzeMACP(d.Spec, d.CycleBudget, ep)
	if !rep.Feasible {
		t.Fatalf("MACP %d exceeds budget %d: the paper's 'no loop transformations required' does not hold",
			rep.WeightedMACP, rep.CycleBudget)
	}
	if rep.WeightedMACP < rep.UnitMACP {
		t.Fatal("weighted MACP below unit MACP")
	}
	// The constraint must be comfortably but not trivially met (the paper's
	// design tension: ~60-90% of the budget).
	frac := float64(rep.WeightedMACP) / float64(rep.CycleBudget)
	if frac < 0.4 || frac > 0.98 {
		t.Fatalf("weighted MACP is %.0f%% of the budget; the design tension is lost", 100*frac)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	d, err := BuildDemonstrator(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	ep := DefaultEvalParams().ScaleTo(128)
	a, err := Evaluate(d.Spec, d.CycleBudget, "a", ep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(d.Spec, d.CycleBudget, "b", ep)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("evaluation not deterministic: %+v vs %+v", a.Cost, b.Cost)
	}
}

// --- Paper-shape assertions (Tables 1-4, full scale) ---

func TestTable1Shape(t *testing.T) {
	r := paperScaleResults(t)
	if len(r.Structuring) != 3 {
		t.Fatalf("%d structuring variants, want 3", len(r.Structuring))
	}
	none, compacted, merged := r.Structuring[0].Cost, r.Structuring[1].Cost, r.Structuring[2].Cost
	// Off-chip power: merged < compacted < none; compaction's effect small,
	// merging's larger (the paper's qualitative finding).
	if !(merged.OffChipPower < compacted.OffChipPower && compacted.OffChipPower < none.OffChipPower) {
		t.Fatalf("off-chip ordering broken: %.1f / %.1f / %.1f",
			none.OffChipPower, compacted.OffChipPower, merged.OffChipPower)
	}
	gainCompact := none.OffChipPower - compacted.OffChipPower
	gainMerge := none.OffChipPower - merged.OffChipPower
	if gainMerge <= gainCompact {
		t.Fatalf("merging gain %.1f not above compaction gain %.1f", gainMerge, gainCompact)
	}
	// On-chip columns must not get worse.
	if merged.OnChipPower > none.OnChipPower+1e-6 || merged.OnChipArea > none.OnChipArea+1e-6 {
		t.Fatalf("merging worsened on-chip cost: %+v vs %+v", merged, none)
	}
	if r.StructChoice.Label != "ridge and pyr merged" {
		t.Fatalf("chosen structuring %q, want merging (the paper's decision)", r.StructChoice.Label)
	}
}

func TestTable2Shape(t *testing.T) {
	r := paperScaleResults(t)
	if len(r.Hierarchy) != 4 {
		t.Fatalf("%d hierarchy variants, want 4", len(r.Hierarchy))
	}
	none := r.Hierarchy[0].Cost
	yhier := r.Hierarchy[1].Cost
	ylocal := r.Hierarchy[2].Cost
	both := r.Hierarchy[3].Cost
	// Every hierarchy cuts off-chip power substantially.
	for i, c := range []struct {
		label string
		cost  float64
	}{{"yhier", yhier.OffChipPower}, {"ylocal", ylocal.OffChipPower}, {"both", both.OffChipPower}} {
		if c.cost >= none.OffChipPower*0.8 {
			t.Fatalf("variant %d (%s): off-chip %.1f not well below no-hierarchy %.1f",
				i, c.label, c.cost, none.OffChipPower)
		}
	}
	// Layer-0-only is the best hierarchy option in on-chip area, on-chip
	// power and total power — the paper's headline Table 2 result.
	if !(ylocal.OnChipArea < yhier.OnChipArea && ylocal.OnChipArea < both.OnChipArea) {
		t.Fatalf("ylocal area %.1f not minimal (yhier %.1f, both %.1f)",
			ylocal.OnChipArea, yhier.OnChipArea, both.OnChipArea)
	}
	if !(ylocal.OnChipPower < yhier.OnChipPower && ylocal.OnChipPower < both.OnChipPower) {
		t.Fatalf("ylocal on-chip power %.1f not minimal", ylocal.OnChipPower)
	}
	if !(ylocal.TotalPower() < yhier.TotalPower() && ylocal.TotalPower() < both.TotalPower() &&
		ylocal.TotalPower() < none.TotalPower()) {
		t.Fatalf("ylocal total power %.1f not minimal", ylocal.TotalPower())
	}
	// Adding layer 1 on top of layer 0 buys no off-chip power relative to
	// layer 1 alone (the paper: the extra copies nullify the gain).
	if both.OffChipPower > yhier.OffChipPower*1.05 || both.OffChipPower < yhier.OffChipPower*0.95 {
		t.Fatalf("2-layer off-chip %.1f should match yhier-only %.1f", both.OffChipPower, yhier.OffChipPower)
	}
	if r.HierChoice.Label != "Only layer 0 (ylocal)" {
		t.Fatalf("chosen hierarchy %q, want layer 0 only (the paper's decision)", r.HierChoice.Label)
	}
}

func TestTable3Shape(t *testing.T) {
	r := paperScaleResults(t)
	if len(r.Budgets) < 4 {
		t.Fatalf("only %d budget rows", len(r.Budgets))
	}
	// Extra cycles strictly increasing down the table; on-chip cost
	// non-decreasing; off-chip power never decreasing as budget tightens.
	for i := 1; i < len(r.Budgets); i++ {
		prev, cur := r.Budgets[i-1], r.Budgets[i]
		if cur.Extra <= prev.Extra {
			t.Fatalf("extra cycles not increasing: %d -> %d", prev.Extra, cur.Extra)
		}
		if cur.Cost.OnChipPower < prev.Cost.OnChipPower-1e-6 {
			t.Fatalf("on-chip power dropped when tightening: %.1f -> %.1f",
				prev.Cost.OnChipPower, cur.Cost.OnChipPower)
		}
		if cur.Cost.OffChipPower < prev.Cost.OffChipPower-1e-6 {
			t.Fatalf("off-chip power dropped when tightening: %.1f -> %.1f",
				prev.Cost.OffChipPower, cur.Cost.OffChipPower)
		}
	}
	// A substantial fraction of the budget (the paper: >10%) is sparable
	// with a modest cost increase.
	last := r.Budgets[len(r.Budgets)-1]
	first := r.Budgets[0]
	if frac := float64(last.Extra) / float64(r.Demo.CycleBudget); frac < 0.10 {
		t.Fatalf("only %.1f%% of the budget sparable, want >= 10%%", 100*frac)
	}
	if last.Cost.OnChipPower > first.Cost.OnChipPower*1.25 {
		t.Fatalf("tightening cost explosion: %.1f -> %.1f",
			first.Cost.OnChipPower, last.Cost.OnChipPower)
	}
	// Budget commitments move in whole-loop quanta: differences between
	// used budgets must be large (hundreds of thousands of cycles), not
	// single cycles.
	for i := 1; i < len(r.Budgets); i++ {
		if d := r.Budgets[i].Extra - r.Budgets[i-1].Extra; d > 0 && d < 10_000 {
			t.Fatalf("budget quantum only %d cycles; loop-level quantization lost", d)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	r := paperScaleResults(t)
	if len(r.Allocations) < 4 {
		t.Fatalf("only %d allocation rows", len(r.Allocations))
	}
	offRef := r.Allocations[0].Cost.OffChipPower
	minArea := r.Allocations[0].Cost.OnChipArea
	for i := 1; i < len(r.Allocations); i++ {
		prev, cur := r.Allocations[i-1].Cost, r.Allocations[i].Cost
		// On-chip power monotonically non-increasing with more memories.
		if cur.OnChipPower > prev.OnChipPower+1e-6 {
			t.Fatalf("on-chip power rose with more memories: %.1f -> %.1f",
				prev.OnChipPower, cur.OnChipPower)
		}
		// Off-chip power constant through the on-chip sweep.
		if cur.OffChipPower != offRef {
			t.Fatalf("off-chip power changed during allocation sweep: %.1f vs %.1f",
				cur.OffChipPower, offRef)
		}
		if cur.OnChipArea < minArea {
			minArea = cur.OnChipArea
		}
	}
	// Area eventually rises again: the largest allocation must sit above
	// the sweep's area minimum (per-memory overhead wins in the end).
	last := r.Allocations[len(r.Allocations)-1].Cost.OnChipArea
	if last <= minArea {
		t.Fatalf("area at max allocation %.1f not above sweep minimum %.1f", last, minArea)
	}
}

func TestDecisionPathMatchesPaper(t *testing.T) {
	r := paperScaleResults(t)
	if r.StructChoice.Label != "ridge and pyr merged" {
		t.Errorf("structuring decision %q", r.StructChoice.Label)
	}
	if r.HierChoice.Label != "Only layer 0 (ylocal)" {
		t.Errorf("hierarchy decision %q", r.HierChoice.Label)
	}
	if r.BudgetChoice.Extra == 0 {
		t.Error("no data-path cycles spared")
	}
	if r.Final == nil || len(r.Final.Asgn.OnChip) == 0 {
		t.Error("no final memory organization")
	}
}

func TestRenderings(t *testing.T) {
	r := paperScaleResults(t)
	for name, s := range map[string]string{
		"Table1":  r.Table1().Render(),
		"Table2":  r.Table2().Render(),
		"Table3":  r.Table3().Render(),
		"Table4":  r.Table4().Render(),
		"Figure1": r.Figure1(),
		"Figure2": r.Figure2(),
		"Figure3": r.Figure3(),
	} {
		if len(s) < 40 {
			t.Errorf("%s rendering suspiciously short: %q", name, s)
		}
	}
	if !strings.Contains(r.Figure3(), "ylocal") || !strings.Contains(r.Figure3(), "yhier") {
		t.Error("Figure 3 missing candidate layers")
	}
	if !strings.Contains(r.Figure1(), "Basic group structuring") {
		t.Error("Figure 1 missing stages")
	}
	if !strings.Contains(r.Table3().Render(), "%") {
		t.Error("Table 3 missing percentage column")
	}
}

func TestNoHierarchyNeedsMultiportImage(t *testing.T) {
	// The paper's Table 2 argument: without a hierarchy, the real-time
	// budget forces a multiport off-chip image memory.
	r := paperScaleResults(t)
	noneports := PortsOf(r.Hierarchy[0])
	if noneports["image"] < 2 {
		t.Fatalf("no-hierarchy image has %d ports, want >= 2", noneports["image"])
	}
	ylocalports := PortsOf(r.Hierarchy[2])
	if ylocalports["image"] != 1 {
		t.Fatalf("ylocal-hierarchy image has %d ports, want 1", ylocalports["image"])
	}
}

func TestHierarchyMissRatiosOrdered(t *testing.T) {
	r := paperScaleResults(t)
	full := r.Hierarchies[len(r.Hierarchies)-1]
	if len(full.MissRatios) != 2 {
		t.Fatalf("2-layer plan has %d miss ratios", len(full.MissRatios))
	}
	if full.MissRatios[0] <= full.MissRatios[1] {
		t.Fatalf("inner layer must miss more than outer: %v", full.MissRatios)
	}
	if full.MissRatios[1] > 0.6 {
		t.Fatalf("yhier miss ratio %.2f too high; line-buffer reuse lost", full.MissRatios[1])
	}
}

func TestChooseBudgetRespectsTolerance(t *testing.T) {
	r := paperScaleResults(t)
	ref := r.Budgets[0]
	choice := ChooseBudget(r.Budgets, 0.05, 0.10)
	if choice.Cost.TotalPower() > ref.Cost.TotalPower()*1.05+1e-9 {
		t.Fatalf("chosen budget power %.1f violates tolerance vs %.1f",
			choice.Cost.TotalPower(), ref.Cost.TotalPower())
	}
	// Zero tolerance must pick the reference row.
	strict := ChooseBudget(r.Budgets, 0, 0)
	if strict != ref && strict.Cost.TotalPower() > ref.Cost.TotalPower() {
		t.Fatal("zero-tolerance choice worse than reference")
	}
}

func TestHierarchyLayersScale(t *testing.T) {
	ylocal, yhier := HierarchyLayers(1024)
	if ylocal.Words != 12 {
		t.Fatalf("ylocal = %d words, want the paper's 12 registers", ylocal.Words)
	}
	if yhier.Words != 5120 {
		t.Fatalf("yhier = %d words, want the paper's ~5K", yhier.Words)
	}
	_, small := HierarchyLayers(8)
	if small.Words < 64 {
		t.Fatalf("tiny-image yhier = %d words, want clamped >= 64", small.Words)
	}
}

func TestWalkLength(t *testing.T) {
	if walkLength(0, 0.5) != 1 {
		t.Error("zero reads should give chain 1")
	}
	if walkLength(5, 0) != 1 {
		t.Error("zero fraction should give chain 1")
	}
	if got := walkLength(100, 0.01); got != 6 {
		t.Errorf("deep walk not clamped: %d", got)
	}
	if got := walkLength(2.0, 0.5); got != 2 {
		t.Errorf("walkLength(2, .5) = %d, want 2", got)
	}
}

// TestRunAllTelemetrySpans runs the full methodology with a collector
// observer and checks the span tree: one run_all root, the six methodology
// steps (plus the profiling stage) as direct children, engine spans
// (sbd/assign/reuse) underneath, counters populated, and the step wall
// times bounded by the end-to-end wall time.
func TestRunAllTelemetrySpans(t *testing.T) {
	c := obs.NewCollector()
	o := obs.New(c)
	ep := DefaultEvalParams()
	ep.Obs = o
	if _, err := RunAll(DemoConfig{Size: 128}, ep); err != nil {
		t.Fatal(err)
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}

	roots := c.Find("run_all")
	if len(roots) != 1 {
		t.Fatalf("got %d run_all roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Parent != 0 {
		t.Fatalf("run_all has parent %d", root.Parent)
	}

	steps := []string{"profile", "step.macp", "step.structuring",
		"step.hierarchy", "step.budget", "step.allocation", "step.final"}
	var stepsWallUS int64
	for _, name := range steps {
		recs := c.Find(name)
		if len(recs) != 1 {
			t.Fatalf("got %d %q spans, want 1", len(recs), name)
		}
		if recs[0].Parent != root.ID {
			t.Fatalf("%q is not a direct child of run_all", name)
		}
		stepsWallUS += recs[0].WallUS
	}
	// The steps partition the run: their wall times must not exceed the
	// end-to-end wall time (they run sequentially under the root).
	if stepsWallUS > root.WallUS {
		t.Fatalf("step wall sum %dus exceeds run_all wall %dus", stepsWallUS, root.WallUS)
	}

	// Engine spans must appear underneath the steps.
	for _, name := range []string{"evaluate", "sbd.distribute", "assign",
		"reuse.analyze", "reuse.plan", "profile.encode", "profile.spec"} {
		if len(c.Find(name)) == 0 {
			t.Fatalf("no %q spans recorded", name)
		}
	}
	// Every evaluate span owns one sbd.distribute and at least one assign.
	evals := c.Find("evaluate")
	byParent := make(map[uint64][]string)
	for _, r := range c.Records() {
		byParent[r.Parent] = append(byParent[r.Parent], r.Name)
	}
	for _, e := range evals {
		var nDist, nAsgn int
		for _, n := range byParent[e.ID] {
			switch n {
			case "sbd.distribute":
				nDist++
			case "assign":
				nAsgn++
			}
		}
		if nDist != 1 || nAsgn < 1 {
			t.Fatalf("evaluate span %d has %d sbd.distribute and %d assign children",
				e.ID, nDist, nAsgn)
		}
	}

	counters := c.Counters()
	for _, name := range []string{"core.evaluations", "assign.nodes",
		"sbd.balance_calls", "reuse.analyzed_accesses", "reuse.plans"} {
		if counters[name] <= 0 {
			t.Fatalf("counter %q = %d, want > 0 (have %v)", name, counters[name], counters)
		}
	}
	if got := counters["core.evaluations"]; got != int64(len(evals)) {
		t.Fatalf("core.evaluations = %d but %d evaluate spans", got, len(evals))
	}
}
