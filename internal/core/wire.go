package core

import (
	"repro/internal/assign"
	"repro/internal/report"
)

// Wire representations of exploration results for the serving path. The
// structs mirror what the CLI tools print — cost feedback, memory
// organization, budget headroom — as plain JSON instead of rendered text,
// so a client can consume the numbers without re-parsing tables. Rendered
// tables and figures still travel alongside (byte-identical to the cmd/dtse
// output) for human eyes and for byte-comparison tests.

// CostWire is the accurate cost feedback of one organization, units in the
// field names (the paper reports mm² and mW).
type CostWire struct {
	OnChipAreaMM2  float64 `json:"onchip_area_mm2"`
	OnChipPowerMW  float64 `json:"onchip_power_mw"`
	OffChipPowerMW float64 `json:"offchip_power_mw"`
	TotalPowerMW   float64 `json:"total_power_mw"`
}

func costWire(c assign.Cost) CostWire {
	return CostWire{
		OnChipAreaMM2:  c.OnChipArea,
		OnChipPowerMW:  c.OnChipPower,
		OffChipPowerMW: c.OffChipPower,
		TotalPowerMW:   c.TotalPower(),
	}
}

// BindingWire is one allocated memory with its assigned basic groups.
type BindingWire struct {
	Memory  string   `json:"memory"`
	Kind    string   `json:"kind"` // "on-chip" | "off-chip"
	Words   int64    `json:"words"`
	Bits    int      `json:"bits"`
	Ports   int      `json:"ports"`
	Groups  []string `json:"groups"`
	PowerMW float64  `json:"power_mw"`
	AreaMM2 float64  `json:"area_mm2"`
}

func bindingWires(bs []assign.Binding) []BindingWire {
	out := make([]BindingWire, len(bs))
	for i, b := range bs {
		out[i] = BindingWire{
			Memory:  b.Mem.Name,
			Kind:    b.Mem.Kind.String(),
			Words:   b.Mem.Words,
			Bits:    b.Mem.Bits,
			Ports:   b.Mem.Ports,
			Groups:  append([]string(nil), b.Groups...),
			PowerMW: b.Power,
			AreaMM2: b.Area,
		}
	}
	return out
}

// VariantWire is one fully evaluated design alternative on the wire.
type VariantWire struct {
	Label string   `json:"label"`
	Cost  CostWire `json:"cost"`

	OnChip  []BindingWire `json:"onchip,omitempty"`
	OffChip []BindingWire `json:"offchip,omitempty"`

	// Budget accounting from the storage-cycle-budget distribution: the
	// offered budget, the cycles the memory organization actually needs, and
	// the cycles left over for data-path scheduling (Table 3's quantity).
	BudgetTotal uint64 `json:"budget_total"`
	BudgetUsed  uint64 `json:"budget_used"`
	ExtraCycles uint64 `json:"extra_cycles"`

	// Optimal is the assignment's proven-optimality flag; Degraded reports
	// that a deadline or cancellation cut the budget exploration short. A
	// serving deadline that expires mid-run yields Optimal=false and/or
	// Degraded=true rather than an error.
	Optimal  bool `json:"optimal"`
	Degraded bool `json:"degraded"`
}

// Wire converts a Variant for JSON serving. Nil-safe on a nil Variant.
func (v *Variant) Wire() *VariantWire {
	if v == nil {
		return nil
	}
	w := &VariantWire{Label: v.Label, Cost: costWire(v.Cost)}
	if v.Asgn != nil {
		w.OnChip = bindingWires(v.Asgn.OnChip)
		w.OffChip = bindingWires(v.Asgn.OffChip)
		w.Optimal = v.Asgn.Optimal
	}
	if v.Dist != nil {
		w.BudgetTotal = v.Dist.TotalBudget
		w.BudgetUsed = v.Dist.Used
		w.ExtraCycles = v.Dist.ExtraCycles()
		w.Degraded = v.Dist.Degraded
	}
	return w
}

// ResultsWire is a full methodology run on the wire: the rendered tables
// and figures exactly as cmd/dtse prints them, the per-step decisions, and
// the final organization in structured form.
type ResultsWire struct {
	Spec        string `json:"spec"`
	CycleBudget uint64 `json:"cycle_budget"`

	// Tables and Figures hold the rendered artifacts keyed "table1".."table4"
	// and "figure1".."figure3", byte-identical to the cmd/dtse output.
	Tables  map[string]string `json:"tables"`
	Figures map[string]string `json:"figures"`

	// Decisions taken at each methodology step (the labels the tables mark).
	Structuring string `json:"structuring"`
	Hierarchy   string `json:"hierarchy"`
	ExtraCycles uint64 `json:"extra_cycles"`
	Allocation  string `json:"allocation"`

	Final *VariantWire `json:"final"`
}

// Wire converts a Results for JSON serving. Table rendering is strict: an
// arity bug in table assembly surfaces as an error here instead of shipping
// a silently misaligned artifact.
func (r *Results) Wire() (*ResultsWire, error) {
	w := &ResultsWire{
		Spec:        r.Demo.Spec.Name,
		CycleBudget: r.Demo.CycleBudget,
		Tables:      make(map[string]string, 4),
		Figures: map[string]string{
			"figure1": r.Figure1(),
			"figure2": r.Figure2(),
			"figure3": r.Figure3(),
		},
		Structuring: r.StructChoice.Label,
		Hierarchy:   r.HierChoice.Label,
		ExtraCycles: r.BudgetChoice.Extra,
		Allocation:  r.AllocChoice.Label,
		Final:       r.Final.Wire(),
	}
	for name, t := range map[string]*report.Table{
		"table1": r.Table1(),
		"table2": r.Table2(),
		"table3": r.Table3(),
		"table4": r.Table4(),
	} {
		s, err := t.RenderStrict()
		if err != nil {
			return nil, err
		}
		w.Tables[name] = s
	}
	return w, nil
}
