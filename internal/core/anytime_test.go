package core

import (
	"context"
	"testing"
	"time"
)

// TestEvaluateContextCanceled: a canceled context must still produce a
// complete variant — distribution, assignment, cost — flagged non-optimal.
func TestEvaluateContextCanceled(t *testing.T) {
	d, err := BuildDemonstrator(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := EvaluateContext(ctx, d.Spec, d.CycleBudget, "canceled", DefaultEvalParams().ScaleTo(128))
	if err != nil {
		t.Fatal(err)
	}
	if v.Dist == nil || v.Asgn == nil {
		t.Fatal("degraded variant missing distribution or assignment")
	}
	if !v.Dist.Degraded {
		t.Fatal("canceled distribution not flagged Degraded")
	}
	if v.Asgn.Optimal {
		t.Fatal("canceled assignment claims optimality")
	}
	if v.Cost.TotalPower() <= 0 {
		t.Fatalf("degraded variant has no cost: %+v", v.Cost)
	}
}

// TestRunAllContextCanceled runs the whole methodology under an
// already-canceled context: every step must degrade to a best-effort result
// rather than fail, and the final organization must be flagged non-optimal.
// The profiling encode is not cancelable, so the wall-clock bound covers
// everything after it.
func TestRunAllContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := RunAllContext(ctx, DemoConfig{Size: 64}, DefaultEvalParams().ScaleTo(64))
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("canceled RunAll took %v", el)
	}
	if res.Final == nil || res.Final.Asgn == nil {
		t.Fatal("degraded run has no final organization")
	}
	if res.Final.Asgn.Optimal {
		t.Fatal("canceled run claims a proven-optimal final organization")
	}
	// Each table must still have at least its reference row.
	if len(res.Structuring) == 0 || len(res.Hierarchy) == 0 ||
		len(res.Budgets) == 0 || len(res.Allocations) == 0 {
		t.Fatalf("degraded run dropped a whole table: %d/%d/%d/%d rows",
			len(res.Structuring), len(res.Hierarchy), len(res.Budgets), len(res.Allocations))
	}
	if res.StructChoice == nil || res.HierChoice == nil ||
		res.BudgetChoice == nil || res.AllocChoice == nil {
		t.Fatal("degraded run left a step without a choice")
	}
}

// TestRunAllContextUncanceledMatchesRunAll: threading a background context
// through must not change the result of an unconstrained run.
func TestRunAllContextUncanceledMatchesRunAll(t *testing.T) {
	ep := DefaultEvalParams().ScaleTo(64)
	a, err := RunAll(DemoConfig{Size: 64}, ep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllContext(context.Background(), DemoConfig{Size: 64}, ep)
	if err != nil {
		t.Fatal(err)
	}
	if a.Final.Cost != b.Final.Cost {
		t.Fatalf("context-threaded run diverged: %+v vs %+v", a.Final.Cost, b.Final.Cost)
	}
	if !a.Final.Asgn.Optimal || !b.Final.Asgn.Optimal {
		t.Fatal("unconstrained run not proven optimal")
	}
}
