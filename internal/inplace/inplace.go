// Package inplace implements a lifetime-based in-place mapping estimator —
// the stage the paper defers ("the precise dimensions are only known after
// the in-place mapping stage, which falls out of the scope of this paper";
// Catthoor et al., chapter 12). It decides how much storage basic groups
// assigned to the same memory can share.
//
// The model matches the specification granularity: loop bodies execute in
// declaration order, a basic group is live from its first access to its
// last, and two groups may occupy the same addresses iff their live
// intervals are disjoint. The words a memory really needs are therefore the
// peak, over time, of the total live words of its member groups — instead
// of the plain sum the allocation step otherwise uses.
package inplace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
)

// Interval is a live range in loop-sequence positions (inclusive).
type Interval struct {
	First, Last int
}

// Overlaps reports whether two live ranges intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.First <= o.Last && o.First <= iv.Last
}

// Lifetimes returns the live interval of every accessed basic group, in
// loop-sequence positions. Groups never accessed are absent.
func Lifetimes(s *spec.Spec) map[string]Interval {
	out := make(map[string]Interval)
	for li := range s.Loops {
		for _, a := range s.Loops[li].Accesses {
			if a.Count <= 0 {
				continue
			}
			iv, seen := out[a.Group]
			if !seen {
				out[a.Group] = Interval{First: li, Last: li}
				continue
			}
			if li > iv.Last {
				iv.Last = li
				out[a.Group] = iv
			}
		}
	}
	return out
}

// PeakWords returns the storage a single memory needs for the given member
// groups with in-place sharing: the maximum over time of the live words.
// Members that are never accessed contribute nothing.
func PeakWords(s *spec.Spec, members []string) int64 {
	lt := Lifetimes(s)
	sizes := make(map[string]int64, len(members))
	for _, g := range s.Groups {
		sizes[g.Name] = g.Words
	}
	var peak int64
	for li := range s.Loops {
		var live int64
		for _, m := range members {
			iv, ok := lt[m]
			if !ok {
				continue
			}
			if iv.First <= li && li <= iv.Last {
				live += sizes[m]
			}
		}
		if live > peak {
			peak = live
		}
	}
	return peak
}

// SumWords returns the storage without in-place sharing (the allocation
// step's default).
func SumWords(s *spec.Spec, members []string) int64 {
	lt := Lifetimes(s)
	var sum int64
	for _, g := range s.Groups {
		if _, accessed := lt[g.Name]; !accessed {
			continue
		}
		for _, m := range members {
			if m == g.Name {
				sum += g.Words
			}
		}
	}
	return sum
}

// Savings returns the words saved by in-place mapping for one member set.
func Savings(s *spec.Spec, members []string) int64 {
	return SumWords(s, members) - PeakWords(s, members)
}

// DisjointPairs lists the group pairs whose lifetimes do not overlap — the
// sharing opportunities a designer would inspect.
func DisjointPairs(s *spec.Spec) [][2]string {
	lt := Lifetimes(s)
	names := make([]string, 0, len(lt))
	for n := range lt {
		names = append(names, n)
	}
	sort.Strings(names)
	var out [][2]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if !lt[names[i]].Overlaps(lt[names[j]]) {
				out = append(out, [2]string{names[i], names[j]})
			}
		}
	}
	return out
}

// Report renders the lifetime table and sharing opportunities.
func Report(s *spec.Spec) string {
	lt := Lifetimes(s)
	names := make([]string, 0, len(lt))
	for n := range lt {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %8s %8s\n", "basic group", "words", "birth", "death")
	for _, n := range names {
		g, _ := s.Group(n)
		iv := lt[n]
		fmt.Fprintf(&b, "%-16s %10d %8s %8s\n", n, g.Words,
			s.Loops[iv.First].Name, s.Loops[iv.Last].Name)
	}
	pairs := DisjointPairs(s)
	if len(pairs) == 0 {
		fmt.Fprintf(&b, "no disjoint lifetimes: no inter-group in-place opportunity\n")
	} else {
		fmt.Fprintf(&b, "disjoint-lifetime pairs (may share storage):\n")
		for _, p := range pairs {
			fmt.Fprintf(&b, "  %s / %s\n", p[0], p[1])
		}
	}
	return b.String()
}
