package inplace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// stagedSpec: a (loops 0-1), b (loops 1-2), c (loop 3 only) — a and c are
// disjoint, b overlaps both a and c? b ends at 2, c starts at 3: disjoint.
func stagedSpec(t testing.TB) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("staged")
	b.Group("a", 1000, 8).Group("b", 500, 8).Group("c", 800, 8).Group("dead", 64, 8)
	b.Loop("l0", 10)
	b.Write("a", 1)
	b.Loop("l1", 10)
	x := b.Read("a", 1)
	b.Write("b", 1, x)
	b.Loop("l2", 10)
	b.Read("b", 1)
	b.Loop("l3", 10)
	b.Write("c", 1)
	b.Read("c", 1)
	return b.MustBuild()
}

func TestLifetimes(t *testing.T) {
	s := stagedSpec(t)
	lt := Lifetimes(s)
	want := map[string]Interval{
		"a": {0, 1},
		"b": {1, 2},
		"c": {3, 3},
	}
	for g, iv := range want {
		if lt[g] != iv {
			t.Errorf("%s lifetime = %+v, want %+v", g, lt[g], iv)
		}
	}
	if _, ok := lt["dead"]; ok {
		t.Error("never-accessed group has a lifetime")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 1}, Interval{1, 2}, true},
		{Interval{0, 1}, Interval{2, 3}, false},
		{Interval{2, 3}, Interval{0, 1}, false},
		{Interval{0, 5}, Interval{2, 3}, true},
		{Interval{3, 3}, Interval{3, 3}, true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPeakVsSum(t *testing.T) {
	s := stagedSpec(t)
	all := []string{"a", "b", "c"}
	sum := SumWords(s, all)
	if sum != 2300 {
		t.Fatalf("SumWords = %d, want 2300", sum)
	}
	// Peak: l1 has a+b live = 1500; l3 has only c = 800.
	peak := PeakWords(s, all)
	if peak != 1500 {
		t.Fatalf("PeakWords = %d, want 1500", peak)
	}
	if got := Savings(s, all); got != 800 {
		t.Fatalf("Savings = %d, want 800", got)
	}
}

func TestPeakSingleGroup(t *testing.T) {
	s := stagedSpec(t)
	if PeakWords(s, []string{"a"}) != 1000 {
		t.Fatal("single-group peak must equal its size")
	}
	if Savings(s, []string{"a"}) != 0 {
		t.Fatal("single group cannot save")
	}
}

func TestDeadGroupContributesNothing(t *testing.T) {
	s := stagedSpec(t)
	if PeakWords(s, []string{"dead"}) != 0 || SumWords(s, []string{"dead"}) != 0 {
		t.Fatal("dead group contributed storage")
	}
}

func TestDisjointPairs(t *testing.T) {
	s := stagedSpec(t)
	pairs := DisjointPairs(s)
	want := map[[2]string]bool{
		{"a", "c"}: true,
		{"b", "c"}: true,
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
}

func TestReport(t *testing.T) {
	s := stagedSpec(t)
	r := Report(s)
	for _, w := range []string{"a", "l0", "l1", "disjoint"} {
		if !strings.Contains(r, w) {
			t.Fatalf("report missing %q:\n%s", w, r)
		}
	}
}

func TestReportNoOpportunity(t *testing.T) {
	b := spec.NewBuilder("overlap")
	b.Group("x", 10, 8).Group("y", 10, 8)
	b.Loop("l", 5)
	b.Read("x", 1)
	b.Read("y", 1)
	s := b.MustBuild()
	if !strings.Contains(Report(s), "no inter-group in-place opportunity") {
		t.Fatal("report should state absence of opportunities")
	}
}

// Property: peak is never above sum, never below the largest member, and
// in-place savings are non-negative.
func TestQuickPeakBounds(t *testing.T) {
	f := func(sizes []uint16, spans []uint8) bool {
		n := len(sizes)
		if n == 0 || n > 8 {
			return true
		}
		b := spec.NewBuilder("q")
		const loops = 6
		for i := 0; i < n; i++ {
			b.Group(name(i), int64(sizes[i])+1, 8)
		}
		type iv struct{ first, last int }
		ivs := make([]iv, n)
		for i := 0; i < n; i++ {
			f0 := 0
			if i < len(spans) {
				f0 = int(spans[i]) % loops
			}
			l0 := f0
			if len(spans) > 0 {
				l0 = f0 + int(spans[(i+1)%len(spans)])%(loops-f0)
			}
			ivs[i] = iv{f0, l0}
		}
		for li := 0; li < loops; li++ {
			b.Loop(loopName(li), 3)
			for i := 0; i < n; i++ {
				if ivs[i].first <= li && li <= ivs[i].last {
					b.Read(name(i), 1)
				}
			}
		}
		// Some loop might have no accesses: pad with a dummy group access.
		s, err := b.Build()
		if err != nil {
			return true // zero-access loops are invalid specs; skip
		}
		var members []string
		var maxSize, sum int64
		for i := 0; i < n; i++ {
			members = append(members, name(i))
			sz := int64(sizes[i]) + 1
			sum += sz
			if sz > maxSize {
				maxSize = sz
			}
		}
		peak := PeakWords(s, members)
		return peak <= sum && peak >= maxSize && Savings(s, members) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string     { return string(rune('a' + i)) }
func loopName(i int) string { return "l" + string(rune('0'+i)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
