package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prom writes the Prometheus text exposition format (version 0.0.4). It
// translates the package's dotted metric names and Label brace syntax into
// Prometheus families: dots become underscores, a namespace prefix is
// applied, counters gain the _total suffix, histograms are exposed in
// seconds with the conventional _bucket/_sum/_count series. Samples of one
// family must be written consecutively (the exposition format requires it);
// the writer emits each family's # TYPE header when the family changes.
//
// All output is deterministic for a given metric state: callers feed it
// sorted name lists (WriteObserver does), so scrapes diff cleanly and the
// exposition golden test can pin the format.
type Prom struct {
	w          io.Writer
	ns         string
	err        error
	lastFamily string
}

// NewProm returns a writer emitting metrics under the given namespace
// prefix (e.g. "dtse").
func NewProm(w io.Writer, namespace string) *Prom {
	return &Prom{w: w, ns: namespace}
}

// Err returns the first write error encountered.
func (p *Prom) Err() error { return p.err }

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the # TYPE header if this family was not the previous one.
func (p *Prom) family(name, typ string) {
	if name == p.lastFamily {
		return
	}
	p.lastFamily = name
	p.printf("# TYPE %s %s\n", name, typ)
}

// promName maps a dotted metric name onto the Prometheus charset
// [a-zA-Z0-9_:].
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// splitName parses the Label brace syntax: "memo.hits{space=ports}" becomes
// base "memo.hits" and rendered labels `space="ports"`.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	base = name[:i]
	var b strings.Builder
	for j, pair := range strings.Split(name[i+1:len(name)-1], ",") {
		k, v, _ := strings.Cut(pair, "=")
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, promName(k), escapeLabel(v))
	}
	return base, b.String()
}

// seconds renders a microsecond quantity as seconds in the shortest exact
// float form.
func seconds(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

func brace(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Counter writes one counter sample. The name may carry Label braces; the
// family becomes <ns>_<base>_total.
func (p *Prom) Counter(name string, v int64) {
	base, labels := splitName(name)
	fam := p.ns + "_" + promName(base) + "_total"
	p.family(fam, "counter")
	p.printf("%s%s %d\n", fam, brace(labels), v)
}

// Gauge writes one gauge sample under family <ns>_<base>.
func (p *Prom) Gauge(name string, v int64) {
	base, labels := splitName(name)
	fam := p.ns + "_" + promName(base)
	p.family(fam, "gauge")
	p.printf("%s%s %d\n", fam, brace(labels), v)
}

// GaugeF writes one float gauge sample under family <ns>_<base>, in the
// shortest exact form (the runtime pause gauges are fractional seconds).
func (p *Prom) GaugeF(name string, v float64) {
	base, labels := splitName(name)
	fam := p.ns + "_" + promName(base)
	p.family(fam, "gauge")
	p.printf("%s%s %s\n", fam, brace(labels), strconv.FormatFloat(v, 'g', -1, 64))
}

// Histogram writes one histogram series under family <ns>_<base>_seconds,
// with any Label braces on the name becoming series labels.
func (p *Prom) Histogram(name string, s HistogramSnapshot) {
	base, labels := splitName(name)
	p.HistogramSeries(promName(base), labels, s)
}

// HistogramSeries writes one histogram series under family
// <ns>_<family>_seconds with the given pre-rendered labels (`k="v",...`,
// possibly empty). Bucket bounds are the histogram's power-of-two
// microsecond bounds converted to seconds.
func (p *Prom) HistogramSeries(family, labels string, s HistogramSnapshot) {
	fam := p.ns + "_" + family + "_seconds"
	p.family(fam, "histogram")
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, c := range s.Cumulative {
		p.printf("%s_bucket{%s%sle=\"%s\"} %d\n", fam, labels, sep, seconds(BucketBoundUS(i)), c)
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", fam, labels, sep, s.Count)
	p.printf("%s_sum%s %s\n", fam, brace(labels), seconds(s.SumUS))
	p.printf("%s_count%s %d\n", fam, brace(labels), s.Count)
}

// WriteObserver writes the observer's full metric state — counters, gauges,
// explicit histograms, and the per-stage span-duration histograms (as one
// <ns>_stage_duration_seconds family labeled by stage) — in sorted,
// deterministic order. skip, when non-nil, suppresses counters and gauges
// whose dotted name it matches (the server uses it to drop gauges that
// would duplicate families it exposes authoritatively). Safe on a nil
// Observer (writes nothing).
func (p *Prom) WriteObserver(o *Observer, skip func(name string) bool) {
	if o == nil {
		return
	}
	snap := o.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		if skip != nil && skip(name) {
			continue
		}
		p.Counter(name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if skip != nil && skip(name) {
			continue
		}
		p.Gauge(name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		p.Histogram(name, snap.Histograms[name])
	}
	for _, name := range sortedKeys(snap.Stages) {
		p.HistogramSeries("stage_duration", fmt.Sprintf(`stage="%s"`, escapeLabel(name)), snap.Stages[name])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
