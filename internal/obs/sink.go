package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// SpanRecord is a finished span as emitted to sinks. The JSON field names
// are the trace schema contract — the golden test pins them, and the
// README's jq recipes rely on them; do not rename casually.
type SpanRecord struct {
	ID         uint64         `json:"id"`
	Parent     uint64         `json:"parent,omitempty"` // 0 (omitted) = root span
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"` // µs since the observer was created
	WallUS     int64          `json:"wall_us"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Fields     map[string]any `json:"fields,omitempty"`
}

// Sink receives finished spans as they end, and the final counter snapshot
// on Flush. Implementations must be safe for concurrent Span calls: the
// parallel sweeps end spans from many goroutines.
type Sink interface {
	Span(rec *SpanRecord)
	Flush(counters map[string]int64) error
}

// jsonlLine is the envelope of one JSONL trace line.
type jsonlLine struct {
	Type string `json:"type"`
	*SpanRecord
	Counters map[string]int64 `json:"counters,omitempty"`
}

// JSONL writes one JSON object per finished span to w ("span" lines,
// parents after their children since spans emit on End), and the counter
// snapshot as a final "counters" line on Flush.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Span writes one span line.
func (j *JSONL) Span(rec *SpanRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.enc.Encode(jsonlLine{Type: "span", SpanRecord: rec})
}

// Flush writes the trailing counters line.
func (j *JSONL) Flush(counters map[string]int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(jsonlLine{Type: "counters", Counters: counters})
}

// Collector is an in-memory sink for tests and tooling (the -stats table
// is rendered from one).
type Collector struct {
	mu       sync.Mutex
	recs     []*SpanRecord
	counters map[string]int64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Span stores the record.
func (c *Collector) Span(rec *SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, rec)
}

// Flush stores the counter snapshot.
func (c *Collector) Flush(counters map[string]int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters = counters
	return nil
}

// Records returns the collected spans in emission (End) order.
func (c *Collector) Records() []*SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*SpanRecord(nil), c.recs...)
}

// Counters returns the snapshot stored by the last Flush (nil before).
func (c *Collector) Counters() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Find returns every collected span with the given name.
func (c *Collector) Find(name string) []*SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*SpanRecord
	for _, r := range c.recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}
