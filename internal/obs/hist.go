package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-layout latency histogram with power-of-two bucket
// bounds: bucket i counts observations in (2^(i-1), 2^i] microseconds, with
// bucket 0 absorbing everything at or below one microsecond and a final
// overflow bucket for observations beyond the largest finite bound (~34s).
// The fixed layout keeps the hot path a single shift-class computation and
// one atomic add — no locks, no allocation — and makes histograms from
// different processes mergeable bucket-for-bucket, which is what a
// Prometheus scrape needs.
//
// A nil *Histogram is valid and records nothing, the same idiom as the nil
// Counter and Gauge.
type Histogram struct {
	sum     atomic.Int64 // total observed microseconds
	max     atomic.Int64 // largest single observation, microseconds
	buckets [histBuckets + 1]atomic.Int64
}

// histBuckets is the number of finite buckets: bounds 2^0 .. 2^(histBuckets-1)
// microseconds. 36 finite bounds reach 2^35 µs ≈ 34.4 s, past any sane
// request deadline; the +1 slot in the array is the overflow (+Inf) bucket.
const histBuckets = 36

// NewHistogram returns an empty histogram, usable standalone (the server's
// request-latency histogram works even without an Observer).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us int64) int {
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // smallest i with 2^i >= us
	if i > histBuckets {
		return histBuckets // overflow bucket
	}
	return i
}

// BucketBoundUS returns the inclusive upper bound of finite bucket i in
// microseconds.
func BucketBoundUS(i int) int64 { return int64(1) << uint(i) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.ObserveUS(d.Microseconds())
}

// ObserveUS records one duration given in microseconds. Negative values
// clamp to zero. The write order (sum, then bucket) pairs with Snapshot's
// read order (buckets, then sum) so that a concurrent snapshot never shows
// a bucket population whose durations are missing from the sum.
func (h *Histogram) ObserveUS(us int64) {
	if h == nil {
		return
	}
	if us < 0 {
		us = 0
	}
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			break
		}
	}
	h.buckets[bucketIndex(us)].Add(1)
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// HistogramSnapshot is a point-in-time copy of a histogram, in the
// cumulative form Prometheus expects: Cumulative[i] counts observations at
// or below BucketBoundUS(i), and Count (the +Inf bucket) is the total. The
// quantile fields are bucket-bound upper estimates for human-facing views
// (-stats, /metrics.json); scrapers should aggregate the buckets instead.
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	SumUS      int64   `json:"sum_us"`
	MaxUS      int64   `json:"max_us"`
	P50US      int64   `json:"p50_us"`
	P90US      int64   `json:"p90_us"`
	P99US      int64   `json:"p99_us"`
	Cumulative []int64 `json:"-"` // finite buckets only; exposition detail
}

// Snapshot copies the histogram. Safe concurrently with ObserveUS: buckets
// are read before the sum, so the sum covers at least every observation
// present in the buckets, and cumulative counts are monotone by
// construction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Cumulative = make([]int64, histBuckets)
	var run int64
	for i := 0; i < histBuckets; i++ {
		run += h.buckets[i].Load()
		s.Cumulative[i] = run
	}
	s.Count = run + h.buckets[histBuckets].Load()
	s.SumUS = h.sum.Load()
	s.MaxUS = h.max.Load()
	s.P50US = s.quantileUS(0.50)
	s.P90US = s.quantileUS(0.90)
	s.P99US = s.quantileUS(0.99)
	return s
}

// quantileUS returns the upper bound of the bucket holding the q-quantile
// observation (nearest rank). Observations in the overflow bucket report
// the recorded maximum.
func (s *HistogramSnapshot) quantileUS(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	for i, c := range s.Cumulative {
		if c >= rank {
			return BucketBoundUS(i)
		}
	}
	return s.MaxUS
}

// Histogram returns the named histogram, creating it on first use. Safe on
// a nil Observer (returns nil, whose Observe is a no-op). Like Counter, hot
// loops should hoist the returned *Histogram: the lookup takes a mutex, the
// Observe is a few atomics.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.hists[name]
	if h == nil {
		h = &Histogram{}
		o.hists[name] = h
	}
	return h
}

// stageHistogram returns the per-span-name stage histogram, creating it on
// first use. Span names form a small closed set (the pipeline stages), so
// the registry stays bounded.
func (o *Observer) stageHistogram(name string) *Histogram {
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.stages[name]
	if h == nil {
		h = &Histogram{}
		o.stages[name] = h
	}
	return h
}

// snapshotHists copies a histogram registry under the observer lock.
func snapshotHists(m map[string]*Histogram) map[string]HistogramSnapshot {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(m))
	for n, h := range m {
		out[n] = h.Snapshot()
	}
	return out
}
