package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestPromCounterGaugeRendering(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b, "dtse")
	p.Counter("server.requests", 7)
	p.Counter(Label("memo.hits", "space", "ports"), 3)
	p.Counter(Label("memo.hits", "space", "schedule"), 5)
	p.Gauge("server.inflight", 2)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dtse_server_requests_total counter
dtse_server_requests_total 7
# TYPE dtse_memo_hits_total counter
dtse_memo_hits_total{space="ports"} 3
dtse_memo_hits_total{space="schedule"} 5
# TYPE dtse_server_inflight gauge
dtse_server_inflight 2
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestPromTypeHeaderOncePerFamily(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b, "x")
	p.Counter(Label("c", "k", "a"), 1)
	p.Counter(Label("c", "k", "b"), 2)
	if got := strings.Count(b.String(), "# TYPE"); got != 1 {
		t.Errorf("%d TYPE headers for one family, want 1:\n%s", got, b.String())
	}
}

func TestPromNameSanitation(t *testing.T) {
	cases := map[string]string{
		"server.requests": "server_requests",
		"a-b/c d":         "a_b_c_d",
		"ok_name:sub":     "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestPromHistogramSeries(t *testing.T) {
	h := NewHistogram()
	h.ObserveUS(1)       // bucket 0 (<= 1µs)
	h.ObserveUS(1000000) // 1s -> bucket 20 (2^20µs ≈ 1.05s)
	var b strings.Builder
	p := NewProm(&b, "dtse")
	p.HistogramSeries("request_duration", "", h.Snapshot())
	out := b.String()
	if !strings.HasPrefix(out, "# TYPE dtse_request_duration_seconds histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	for _, want := range []string{
		`dtse_request_duration_seconds_bucket{le="1e-06"} 1`,   // 1µs bound
		`dtse_request_duration_seconds_bucket{le="1.048576"} 2`, // 2^20µs bound
		`dtse_request_duration_seconds_bucket{le="+Inf"} 2`,
		`dtse_request_duration_seconds_sum 1.000001`,
		`dtse_request_duration_seconds_count 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket lines must be monotone non-decreasing in both bound and count.
	lines := strings.Split(out, "\n")
	prev := int64(-1)
	buckets := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "dtse_request_duration_seconds_bucket") {
			continue
		}
		buckets++
		c, err := strconv.ParseInt(l[strings.LastIndexByte(l, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable bucket line %q: %v", l, err)
		}
		if c < prev {
			t.Fatalf("bucket counts not monotone: %q after %d", l, prev)
		}
		prev = c
	}
	if buckets != histBuckets+1 {
		t.Errorf("%d bucket lines, want %d finite + Inf", buckets, histBuckets+1)
	}
}

func TestPromWriteObserverLabeledHistogramAndStages(t *testing.T) {
	o := New()
	o.Counter("server.requests").Add(2)
	o.Gauge(Label("memo.entries", "space", "ports")).Set(4)
	o.Histogram(Label("memo.lookup", "space", "ports")).ObserveUS(8)
	sp := o.Start("sbd")
	sp.End()

	var b strings.Builder
	p := NewProm(&b, "dtse")
	p.WriteObserver(o, func(name string) bool { return strings.HasPrefix(name, "memo.entries") })
	out := b.String()
	if !strings.Contains(out, "dtse_server_requests_total 2\n") {
		t.Errorf("counter missing:\n%s", out)
	}
	if strings.Contains(out, "dtse_memo_entries") {
		t.Errorf("skip filter did not suppress memo.entries:\n%s", out)
	}
	if !strings.Contains(out, `dtse_memo_lookup_seconds_count{space="ports"} 1`) {
		t.Errorf("labeled histogram missing:\n%s", out)
	}
	if !strings.Contains(out, `dtse_stage_duration_seconds_count{stage="sbd"} 1`) {
		t.Errorf("stage histogram missing:\n%s", out)
	}
	// Nil observer writes nothing.
	var nb strings.Builder
	NewProm(&nb, "dtse").WriteObserver(nil, nil)
	if nb.Len() != 0 {
		t.Errorf("nil observer produced output: %q", nb.String())
	}
}
