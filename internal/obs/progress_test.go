package obs

import (
	"sync"
	"testing"
)

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetStage("assign") // all no-ops, must not panic
	p.AddNodes(5)
	p.SetIncumbent(1.5)
	p.SetBound(1.0)
	if s := p.Snapshot(); s.Stage != "" || s.Nodes != 0 || s.Incumbent != nil || s.Bound != nil || s.Gap != nil {
		t.Errorf("nil progress snapshot not zero: %+v", s)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := &Progress{}
	if s := p.Snapshot(); s.Stage != "" || s.Incumbent != nil {
		t.Fatalf("fresh snapshot not empty: %+v", s)
	}
	p.SetStage("sbd")
	p.AddNodes(100)
	p.AddNodes(28)
	p.SetBound(10)
	p.SetIncumbent(14.5)
	s := p.Snapshot()
	if s.Stage != "sbd" || s.Nodes != 128 {
		t.Errorf("stage/nodes = %q/%d, want sbd/128", s.Stage, s.Nodes)
	}
	if s.Incumbent == nil || *s.Incumbent != 14.5 || s.Bound == nil || *s.Bound != 10 {
		t.Errorf("incumbent/bound wrong: %+v", s)
	}
	if s.Gap == nil || *s.Gap != 4.5 {
		t.Errorf("gap = %v, want 4.5", s.Gap)
	}
	// An incumbent at (or numerically below) the bound clamps the gap to 0:
	// the search is done, not negative.
	p.SetIncumbent(9)
	if s := p.Snapshot(); s.Gap == nil || *s.Gap != 0 {
		t.Errorf("gap below bound = %v, want 0", s.Gap)
	}
}

func TestProgressConcurrent(t *testing.T) {
	p := &Progress{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddNodes(1)
				p.SetIncumbent(float64(w + i))
				if i%100 == 0 {
					p.SetStage("assign")
				}
				_ = p.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if s := p.Snapshot(); s.Nodes != 4000 {
		t.Errorf("nodes = %d, want 4000", s.Nodes)
	}
}
