package obs

import "runtime"

// RuntimeStats is a point-in-time snapshot of the Go runtime's memory and
// GC state, read at scrape time by the serving layer and exposed as the
// dtse_go_* Prometheus families. Allocation counters paired with the
// request counters give allocs-per-request rates without a profiler
// attached; the pause gauges surface GC pressure on the serving path.
type RuntimeStats struct {
	HeapAllocBytes  uint64 // live heap bytes
	HeapSysBytes    uint64 // heap bytes obtained from the OS
	TotalAllocBytes uint64 // cumulative bytes allocated (monotone)
	Mallocs         uint64 // cumulative heap objects allocated (monotone)
	GCCycles        uint32 // completed GC cycles
	LastPauseNS     uint64 // most recent stop-the-world pause
	PauseTotalNS    uint64 // cumulative stop-the-world pause time
	Goroutines      int
}

// ReadRuntime snapshots the runtime state. runtime.ReadMemStats stops the
// world briefly, so this belongs on scrape paths, not in hot loops.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	last := uint64(0)
	if ms.NumGC > 0 {
		last = ms.PauseNs[(ms.NumGC+255)%256]
	}
	return RuntimeStats{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		GCCycles:        ms.NumGC,
		LastPauseNS:     last,
		PauseTotalNS:    ms.PauseTotalNs,
		Goroutines:      runtime.NumGoroutine(),
	}
}
