package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // bucket 0: <= 1µs
		{2, 1},                  // (1, 2]
		{3, 2}, {4, 2},          // (2, 4]
		{5, 3}, {8, 3},
		{1024, 10}, {1025, 11},
		{1 << 35, histBuckets - 1},      // largest finite bound, inclusive
		{1<<35 + 1, histBuckets},        // first overflow value
		{int64(1) << 40, histBuckets},   // deep overflow
	}
	for _, c := range cases {
		us := c.us
		if us < 0 {
			us = 0 // ObserveUS clamps before indexing
		}
		if got := bucketIndex(us); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", us, got, c.want)
		}
	}
	for i := 0; i < histBuckets; i++ {
		b := BucketBoundUS(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bound %d (bucket %d) indexed into bucket %d", b, i, got)
		}
		if got := bucketIndex(b + 1); got != i+1 {
			t.Errorf("bound+1 %d should fall in bucket %d, got %d", b+1, i+1, got)
		}
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	h := NewHistogram()
	for _, us := range []int64{1, 2, 3, 4} {
		h.ObserveUS(us)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.SumUS != 10 || s.MaxUS != 4 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 4/10/4", s.Count, s.SumUS, s.MaxUS)
	}
	// Nearest rank: p50 is the 2nd of 4 samples (value 2, bucket bound 2);
	// p99 is the 4th (value 3 or 4 -> bucket bound 4).
	if s.P50US != 2 {
		t.Errorf("p50 = %d, want 2", s.P50US)
	}
	if s.P99US != 4 {
		t.Errorf("p99 = %d, want 4", s.P99US)
	}
	if len(s.Cumulative) != histBuckets {
		t.Fatalf("cumulative length %d, want %d", len(s.Cumulative), histBuckets)
	}
	if s.Cumulative[0] != 1 || s.Cumulative[1] != 2 || s.Cumulative[2] != 4 {
		t.Errorf("cumulative prefix = %v", s.Cumulative[:3])
	}
	if s.Cumulative[histBuckets-1] != 4 {
		t.Errorf("last finite cumulative = %d, want 4", s.Cumulative[histBuckets-1])
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram()
	big := int64(1) << 40 // ~18 minutes, beyond the largest finite bound
	h.ObserveUS(big)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Cumulative[histBuckets-1] != 0 {
		t.Fatalf("overflow observation leaked into a finite bucket: %v", s.Cumulative)
	}
	// A quantile landing in the overflow bucket reports the recorded max,
	// the only honest upper bound available.
	if s.P99US != big {
		t.Errorf("overflow p99 = %d, want the max %d", s.P99US, big)
	}
}

func TestHistogramZeroValueAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	nilH.ObserveUS(5)
	if nilH.Count() != 0 {
		t.Error("nil histogram reported observations")
	}
	if s := nilH.Snapshot(); s.Count != 0 || s.Cumulative != nil {
		t.Errorf("nil snapshot not zero: %+v", s)
	}
	if s := NewHistogram().Snapshot(); s.Count != 0 || s.P99US != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(200, func() { h.ObserveUS(123) }); n != 0 {
		t.Errorf("ObserveUS allocates %.1f objects per call, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(200, func() { nilH.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("nil Observe allocates %.1f objects per call, want 0", n)
	}
}

// TestHistogramConcurrentSnapshots hammers one histogram from writers while
// readers snapshot, asserting the invariants the write/read ordering
// guarantees: cumulative counts monotone within a snapshot, total count
// monotone across snapshots, and the sum always covering at least the
// bucket-implied lower bound of every bucketed observation. Run with -race.
func TestHistogramConcurrentSnapshots(t *testing.T) {
	h := NewHistogram()
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for i := 0; i < perWriter; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.ObserveUS((v >> 33) & 0xffff) // 0..65535 µs
			}
		}(int64(w + 1))
	}
	var readErr error
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		var lastCount int64
		for {
			s := h.Snapshot()
			if s.Count < lastCount {
				readErr = fmt.Errorf("count regressed across snapshots: %d -> %d", lastCount, s.Count)
				return
			}
			lastCount = s.Count
			var lower int64
			prev := int64(0)
			for i, c := range s.Cumulative {
				if c < prev {
					readErr = fmt.Errorf("cumulative[%d] = %d below predecessor %d", i, c, prev)
					return
				}
				if i > 0 {
					lower += (c - prev) * BucketBoundUS(i-1)
				}
				prev = c
			}
			if s.SumUS < lower {
				readErr = fmt.Errorf("sum %dus below bucket-implied lower bound %dus", s.SumUS, lower)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	readWG.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("final count %d, want %d", got, writers*perWriter)
	}
}
