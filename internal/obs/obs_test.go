package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeCollector(t *testing.T) {
	c := NewCollector()
	o := New(c)
	root := o.Start("run")
	root.SetStr("cfg", "x")
	child := root.Child("step")
	child.SetInt("n", 7)
	grand := child.Child("inner")
	grand.End()
	child.End()
	root.End()

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Spans emit on End: innermost first, root last.
	if recs[0].Name != "inner" || recs[1].Name != "step" || recs[2].Name != "run" {
		t.Fatalf("emission order wrong: %s %s %s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	byName := map[string]*SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["run"].Parent != 0 {
		t.Fatalf("root has parent %d", byName["run"].Parent)
	}
	if byName["step"].Parent != byName["run"].ID {
		t.Fatal("step not a child of run")
	}
	if byName["inner"].Parent != byName["step"].ID {
		t.Fatal("inner not a child of step")
	}
	if byName["step"].Fields["n"] != any(int64(7)) {
		t.Fatalf("field n = %v", byName["step"].Fields["n"])
	}
	if byName["run"].WallUS < byName["step"].WallUS {
		t.Fatal("root wall time below its child's")
	}
	if got := c.Find("step"); len(got) != 1 {
		t.Fatalf("Find(step) = %d records", len(got))
	}
}

// TestJSONLGoldenSchema pins the JSONL trace schema: line envelope, field
// names, and parent/child nesting. Downstream jq recipes (README) and any
// future trace tooling depend on these exact keys.
func TestJSONLGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewJSONL(&buf))
	root := o.Start("run_all")
	child := root.Child("step.macp")
	child.SetInt("weighted_macp", 42)
	child.SetStr("note", "ok")
	child.SetFloat("frac", 0.5)
	child.End()
	root.End()
	o.Counter("core.evaluations").Add(3)
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (2 spans + counters)", len(lines))
	}

	keysOf := func(m map[string]any) string {
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return strings.Join(ks, ",")
	}
	// Child span: ends first, carries parent and fields.
	if got, want := keysOf(lines[0]), "alloc_bytes,fields,id,name,parent,start_us,type,wall_us"; got != want {
		t.Fatalf("child span keys = %s, want %s", got, want)
	}
	if lines[0]["type"] != "span" || lines[0]["name"] != "step.macp" {
		t.Fatalf("child line = %v", lines[0])
	}
	fields := lines[0]["fields"].(map[string]any)
	if fields["weighted_macp"] != float64(42) || fields["note"] != "ok" || fields["frac"] != 0.5 {
		t.Fatalf("fields = %v", fields)
	}
	// Root span: no parent key (omitempty), no fields.
	if got, want := keysOf(lines[1]), "alloc_bytes,id,name,start_us,type,wall_us"; got != want {
		t.Fatalf("root span keys = %s, want %s", got, want)
	}
	if lines[1]["name"] != "run_all" {
		t.Fatalf("root line = %v", lines[1])
	}
	if lines[0]["parent"] != lines[1]["id"] {
		t.Fatalf("child parent %v != root id %v", lines[0]["parent"], lines[1]["id"])
	}
	// Counters line.
	if got, want := keysOf(lines[2]), "counters,type"; got != want {
		t.Fatalf("counters keys = %s, want %s", got, want)
	}
	if lines[2]["type"] != "counters" {
		t.Fatalf("trailer type = %v", lines[2]["type"])
	}
	cs := lines[2]["counters"].(map[string]any)
	if cs["core.evaluations"] != float64(3) {
		t.Fatalf("counters = %v", cs)
	}
}

// TestNilObserverZeroAllocs asserts the no-op path costs nothing: with
// telemetry off, the instrumented pipeline must not allocate.
func TestNilObserverZeroAllocs(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(200, func() {
		sp := o.Start("root")
		ch := sp.Child("child")
		ch.SetInt("k", 1)
		ch.SetStr("s", "v")
		ch.SetFloat("f", 2.5)
		ch.End()
		sp.End()
		o.Counter("n").Add(1)
		o.Gauge("g").Set(2)
		_ = sp.Observer().Counter("m")
		_ = o.Counters()
		_ = o.Flush()
	})
	if allocs != 0 {
		t.Fatalf("nil-observer path allocates %.0f bytes/op, want 0", allocs)
	}
}

func TestCountersAndGauges(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := o.Counter("hits")
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	o.Gauge("depth").Set(5)
	o.Gauge("depth").Set(3)
	snap := o.Counters()
	if snap["hits"] != 8000 {
		t.Fatalf("hits = %d, want 8000", snap["hits"])
	}
	if snap["depth"] != 3 {
		t.Fatalf("depth = %d, want 3 (last value)", snap["depth"])
	}
	if o.Counter("hits").Value() != 8000 {
		t.Fatal("Value mismatch")
	}
}

func TestConcurrentChildSpans(t *testing.T) {
	c := NewCollector()
	o := New(c)
	root := o.Start("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Child("evaluate")
			sp.SetInt("i", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	recs := c.Records()
	if len(recs) != 17 {
		t.Fatalf("got %d records, want 17", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	c := NewCollector()
	o := New(c)
	sp := o.Start("x")
	sp.End()
	sp.End()
	if got := len(c.Records()); got != 1 {
		t.Fatalf("double End emitted %d records", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("a.b"); got != "a.b" {
		t.Fatalf("Label no-kv = %q", got)
	}
	if got := Label("a.b", "k", "v"); got != "a.b{k=v}" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("a", "k1", "v1", "k2", "v2"); got != "a{k1=v1,k2=v2}" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("a", "odd"); got != "a" {
		t.Fatalf("Label odd kv = %q", got)
	}
}

func TestStatsTable(t *testing.T) {
	c := NewCollector()
	o := New(c)
	root := o.Start("run_all")
	s1 := root.Child("step.structuring")
	e := s1.Child("evaluate")
	e.End()
	s1.End()
	s2 := root.Child("step.budget")
	s2.End()
	s2b := root.Child("step.budget")
	s2b.End()
	root.End()

	out := StatsTable(c.Records())
	for _, want := range []string{"step.structuring", "step.budget", "total (run_all)", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats table missing %q:\n%s", want, out)
		}
	}
	// The two step.budget spans merge into one row with calls=2.
	if n := strings.Count(out, "step.budget"); n != 1 {
		t.Fatalf("step.budget appears %d times, want merged row:\n%s", n, out)
	}
	if StatsTable(nil) != "(no spans recorded)\n" {
		t.Fatal("empty record set not handled")
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtBytes(512); got != "512B" {
		t.Fatalf("fmtBytes(512) = %q", got)
	}
	if got := fmtBytes(2 << 20); got != "2.0MB" {
		t.Fatalf("fmtBytes(2MB) = %q", got)
	}
	if got := fmtBytes(3 << 30); got != "3.0GB" {
		t.Fatalf("fmtBytes(3GB) = %q", got)
	}
	if got := fmtBytes(4 << 10); got != "4.0KB" {
		t.Fatalf("fmtBytes(4KB) = %q", got)
	}
}
