// Package obs provides exploration telemetry: hierarchical spans (wall
// time and heap-allocation deltas per pipeline stage), atomic counters and
// gauges, and pluggable sinks (JSONL writer, in-memory collector).
//
// The paper's premise is accurate feedback from the physical-memory-
// management stage; this package gives the exploration engine itself the
// same treatment, so a designer (or a benchmark harness) can see where
// cycles, allocations, and search effort go across the six methodology
// steps and the inner engines (sbd, assign, reuse).
//
// A nil *Observer — and every value derived from one: nil *Span, nil
// *Counter, nil *Gauge — is valid and records nothing, at the cost of a
// nil check per call and zero allocations. Instrumented hot paths therefore
// run at full speed when telemetry is off, the same idiom as the nil
// trace.Recorder.
package obs

import (
	"runtime/metrics"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// heapAllocs returns the cumulative heap allocation volume of the process.
// runtime/metrics is used instead of runtime.ReadMemStats because it does
// not stop the world, so concurrent spans (the parallel sweeps) stay cheap.
func heapAllocs() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// Observer is the root of one telemetry session: it issues span IDs, owns
// the counters and gauges, and fans finished spans out to its sinks.
type Observer struct {
	epoch  time.Time
	sinks  []Sink
	nextID atomic.Uint64

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   map[string]*Histogram // per-span-name wall-time histograms

	// Subtree captures: per-root-span collectors for the flight recorder.
	// capturing is the lock-free fast path — Span.End only takes capMu when
	// at least one capture is active.
	capturing atomic.Int64
	capMu     sync.Mutex
	captures  map[uint64]*Collector
}

// New returns an Observer emitting finished spans into the given sinks.
func New(sinks ...Sink) *Observer {
	return &Observer{
		epoch:    time.Now(),
		sinks:    sinks,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		stages:   make(map[string]*Histogram),
		captures: make(map[uint64]*Collector),
	}
}

// Start opens a root span. Safe on a nil Observer (returns nil).
func (o *Observer) Start(name string) *Span {
	if o == nil {
		return nil
	}
	return o.newSpan(name, 0, 0)
}

func (o *Observer) newSpan(name string, parent, root uint64) *Span {
	s := &Span{
		o:          o,
		id:         o.nextID.Add(1),
		parent:     parent,
		name:       name,
		start:      time.Now(),
		startAlloc: heapAllocs(),
	}
	if root == 0 {
		s.root = s.id
	} else {
		s.root = root
	}
	return s
}

// CaptureSubtree starts recording every span of root's tree (root itself
// and all descendants, as they End) into a private Collector, independent
// of the observer's sinks. The flight recorder uses this to keep a
// degraded request's full span tree. Safe on a nil Observer or Span
// (returns nil). Pair with ReleaseSubtree.
func (o *Observer) CaptureSubtree(root *Span) *Collector {
	if o == nil || root == nil {
		return nil
	}
	c := NewCollector()
	o.capMu.Lock()
	o.captures[root.id] = c
	o.capMu.Unlock()
	o.capturing.Add(1)
	return c
}

// ReleaseSubtree stops the capture started for root. The Collector handed
// out by CaptureSubtree stays readable.
func (o *Observer) ReleaseSubtree(root *Span) {
	if o == nil || root == nil {
		return
	}
	o.capMu.Lock()
	if _, ok := o.captures[root.id]; ok {
		delete(o.captures, root.id)
		o.capturing.Add(-1)
	}
	o.capMu.Unlock()
}

// captureSpan routes a finished span record to the collector capturing its
// root, if any.
func (o *Observer) captureSpan(root uint64, rec *SpanRecord) {
	o.capMu.Lock()
	c := o.captures[root]
	o.capMu.Unlock()
	if c != nil {
		c.Span(rec)
	}
}

// Counter returns the named counter, creating it on first use. Safe on a
// nil Observer (returns nil, whose Add is a no-op). Hot loops should hoist
// the returned *Counter out of the loop: the lookup takes a mutex, the Add
// is a single atomic.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.counters[name]
	if c == nil {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Safe on a nil
// Observer. Gauge and counter names share one namespace in Counters().
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g := o.gauges[name]
	if g == nil {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Counters returns a snapshot of every counter and gauge value.
func (o *Observer) Counters() map[string]int64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.counters)+len(o.gauges))
	for n, c := range o.counters {
		out[n] = c.v.Load()
	}
	for n, g := range o.gauges {
		out[n] = g.v.Load()
	}
	return out
}

// Snapshot is a point-in-time copy of a telemetry session's metric state,
// with counters and gauges kept apart (they share one name namespace in
// Counters, which loses the distinction a metrics endpoint wants to keep).
// The maps marshal directly to JSON; Go's encoder emits object keys sorted,
// so serialized snapshots are stable for diffing and goldens.
type Snapshot struct {
	UptimeUS   int64                        `json:"uptime_us"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     map[string]HistogramSnapshot `json:"stages,omitempty"`
}

// Snapshot returns the current metric state. Safe on a nil Observer (zero
// snapshot) and safe to call concurrently with running spans and counter
// updates — values are read atomically under the registry lock, so the
// snapshot is internally consistent per metric (not across metrics, which
// would require stopping the world).
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Snapshot{
		UptimeUS: time.Since(o.epoch).Microseconds(),
		Counters: make(map[string]int64, len(o.counters)),
		Gauges:   make(map[string]int64, len(o.gauges)),
	}
	for n, c := range o.counters {
		s.Counters[n] = c.v.Load()
	}
	for n, g := range o.gauges {
		s.Gauges[n] = g.v.Load()
	}
	s.Histograms = snapshotHists(o.hists)
	s.Stages = snapshotHists(o.stages)
	return s
}

// Flush pushes the final counter snapshot to every sink (the JSONL sink
// writes it as a trailing "counters" record). Call once, after the run.
func (o *Observer) Flush() error {
	if o == nil {
		return nil
	}
	snap := o.Counters()
	var first error
	for _, s := range o.sinks {
		if err := s.Flush(snap); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// valid and records nothing.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric. A nil *Gauge is valid.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Label formats a labeled metric name in the usual brace syntax:
// Label("sbd.balance", "pipelined", "true") = `sbd.balance{pipelined=true}`.
// kv is key, value, key, value, ...; a trailing odd key is dropped.
func Label(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Span is one timed region of the exploration. Spans form a tree via
// Child; a span is owned by the goroutine that created it (Set* and End
// must not race), but Child may be called concurrently from many
// goroutines — the parallel sweeps hang their evaluation spans off one
// shared step span. A nil *Span is valid everywhere and records nothing.
type Span struct {
	o          *Observer
	id, parent uint64
	root       uint64 // id of the tree's root span (== id for roots)
	name       string
	start      time.Time
	startAlloc uint64
	fields     []kv
	done       bool
}

type kv struct {
	k string
	v any
}

// Child opens a sub-span. Safe on a nil Span (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.o.newSpan(name, s.id, s.root)
}

// Observer returns the owning Observer (nil on a nil Span), the handle for
// reaching counters from code that only holds the current span.
func (s *Span) Observer() *Observer {
	if s == nil {
		return nil
	}
	return s.o
}

// The typed setters each nil-check before boxing the value into an
// interface: converting after the check keeps the nil path allocation-free.

// SetInt attaches an integer field to the span.
func (s *Span) SetInt(k string, v int64) {
	if s == nil {
		return
	}
	s.fields = append(s.fields, kv{k, v})
}

// SetFloat attaches a float field to the span.
func (s *Span) SetFloat(k string, v float64) {
	if s == nil {
		return
	}
	s.fields = append(s.fields, kv{k, v})
}

// SetStr attaches a string field to the span.
func (s *Span) SetStr(k, v string) {
	if s == nil {
		return
	}
	s.fields = append(s.fields, kv{k, v})
}

// End finishes the span, computes its wall time and allocation delta, and
// emits it to the observer's sinks. End is idempotent; later calls no-op.
// The allocation delta is process-global, so concurrently running spans
// each see the sum of everything allocated while they were open.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	now := time.Now()
	alloc := heapAllocs()
	if alloc >= s.startAlloc {
		alloc -= s.startAlloc
	} else {
		alloc = 0
	}
	rec := &SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		StartUS:    s.start.Sub(s.o.epoch).Microseconds(),
		WallUS:     now.Sub(s.start).Microseconds(),
		AllocBytes: alloc,
	}
	if len(s.fields) > 0 {
		rec.Fields = make(map[string]any, len(s.fields))
		for _, f := range s.fields {
			rec.Fields[f.k] = f.v
		}
	}
	for _, sink := range s.o.sinks {
		sink.Span(rec)
	}
	s.o.stageHistogram(s.name).ObserveUS(rec.WallUS)
	if s.o.capturing.Load() > 0 {
		s.o.captureSpan(s.root, rec)
	}
}
