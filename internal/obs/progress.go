package obs

import (
	"math"
	"sync/atomic"
)

// Progress is the live-introspection side channel of one exploration: the
// pipeline stages and the branch-and-bound engines publish their current
// position into it, and the serving layer reads it out concurrently for
// /debug/explorations and the SSE progress stream. It is strictly
// write-only for the engines — nothing in the search ever reads it back —
// so wiring a Progress in cannot change any exploration decision, which is
// what keeps instrumented runs byte-identical to bare ones.
//
// All fields are atomics; a nil *Progress is valid everywhere and records
// nothing, the same idiom as the nil Observer.
type Progress struct {
	stage     atomic.Value // string: current pipeline stage / span name
	nodes     atomic.Int64 // branch-and-bound nodes expanded so far
	incumbent atomic.Uint64
	incSet    atomic.Bool
	bound     atomic.Uint64
	boundSet  atomic.Bool
}

// SetStage publishes the stage the exploration is in.
func (p *Progress) SetStage(name string) {
	if p != nil {
		p.stage.Store(name)
	}
}

// AddNodes adds to the expanded-node total. The search engines flush in
// batches at their existing poll points, so this costs one atomic add per
// ~thousand nodes.
func (p *Progress) AddNodes(n int64) {
	if p != nil && n != 0 {
		p.nodes.Add(n)
	}
}

// SetIncumbent publishes the cost of the latest incumbent solution.
func (p *Progress) SetIncumbent(cost float64) {
	if p != nil {
		p.incumbent.Store(math.Float64bits(cost))
		p.incSet.Store(true)
	}
}

// SetBound publishes the root lower bound of the latest search, the
// optimistic cost no solution can beat. Together with the incumbent it
// gives the bound gap, a best-effort optimality estimate.
func (p *Progress) SetBound(bound float64) {
	if p != nil {
		p.bound.Store(math.Float64bits(bound))
		p.boundSet.Store(true)
	}
}

// ProgressSnapshot is a point-in-time copy of a Progress, shaped for JSON.
// Incumbent/Bound/Gap are nil until the corresponding search published
// them.
type ProgressSnapshot struct {
	Stage     string   `json:"stage,omitempty"`
	Nodes     int64    `json:"nodes"`
	Incumbent *float64 `json:"incumbent_cost,omitempty"`
	Bound     *float64 `json:"bound,omitempty"`
	Gap       *float64 `json:"bound_gap,omitempty"`
}

// Snapshot reads the current position. Safe on nil (zero snapshot) and
// concurrently with the publishing engine.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	var s ProgressSnapshot
	if v, ok := p.stage.Load().(string); ok {
		s.Stage = v
	}
	s.Nodes = p.nodes.Load()
	if p.incSet.Load() {
		v := math.Float64frombits(p.incumbent.Load())
		s.Incumbent = &v
	}
	if p.boundSet.Load() {
		v := math.Float64frombits(p.bound.Load())
		s.Bound = &v
	}
	if s.Incumbent != nil && s.Bound != nil {
		gap := *s.Incumbent - *s.Bound
		if gap < 0 {
			gap = 0
		}
		s.Gap = &gap
	}
	return s
}
