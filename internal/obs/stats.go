package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StatsTable renders the per-step summary of a span record set: the direct
// children of the longest root span, in execution order, with subtree span
// counts, wall time, share of the root, and allocation volume. Children
// with the same name (e.g. repeated evaluations) are merged into one row.
// This is what cmd/dtse -stats prints to stderr.
func StatsTable(recs []*SpanRecord) string {
	if len(recs) == 0 {
		return "(no spans recorded)\n"
	}
	var root *SpanRecord
	for _, r := range recs {
		if r.Parent == 0 && (root == nil || r.WallUS > root.WallUS) {
			root = r
		}
	}
	if root == nil {
		root = recs[0] // orphaned records: summarize around the first
	}
	children := make(map[uint64][]*SpanRecord)
	for _, r := range recs {
		children[r.Parent] = append(children[r.Parent], r)
	}
	var subtree func(id uint64) int
	subtree = func(id uint64) int {
		n := 1
		for _, c := range children[id] {
			n += subtree(c.ID)
		}
		return n
	}

	type row struct {
		name         string
		startUS      int64
		spans, count int
		wallUS       int64
		alloc        uint64
	}
	byName := make(map[string]*row)
	var rows []*row
	direct := append([]*SpanRecord(nil), children[root.ID]...)
	sort.Slice(direct, func(i, j int) bool { return direct[i].StartUS < direct[j].StartUS })
	for _, c := range direct {
		r := byName[c.Name]
		if r == nil {
			r = &row{name: c.Name, startUS: c.StartUS}
			byName[c.Name] = r
			rows = append(rows, r)
		}
		r.count++
		r.spans += subtree(c.ID)
		r.wallUS += c.WallUS
		r.alloc += c.AllocBytes
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %6s %6s %12s %7s %10s\n", "step", "calls", "spans", "wall", "%", "alloc")
	var sumUS int64
	for _, r := range rows {
		pct := 0.0
		if root.WallUS > 0 {
			pct = 100 * float64(r.wallUS) / float64(root.WallUS)
		}
		sumUS += r.wallUS
		fmt.Fprintf(&b, "%-20s %6d %6d %12s %6.1f%% %10s\n",
			r.name, r.count, r.spans, fmtUS(r.wallUS), pct, fmtBytes(r.alloc))
	}
	pct := 0.0
	if root.WallUS > 0 {
		pct = 100 * float64(sumUS) / float64(root.WallUS)
	}
	fmt.Fprintf(&b, "%-20s %6s %6d %12s %6.1f%% %10s\n",
		"total ("+root.Name+")", "", subtree(root.ID), fmtUS(root.WallUS), pct, fmtBytes(root.AllocBytes))
	return b.String()
}

// HistTable renders the histogram summary of a snapshot: the per-stage
// span-duration histograms and any explicit histograms (memo lookups, pool
// tasks), one row each with count, bucket-bound quantile estimates, max,
// and total time. The -stats companion to StatsTable for stages that run
// many times, where a single wall-time sum hides the distribution.
func HistTable(snap Snapshot) string {
	rows := make(map[string]HistogramSnapshot, len(snap.Stages)+len(snap.Histograms))
	for n, h := range snap.Stages {
		rows[n] = h
	}
	for n, h := range snap.Histograms {
		rows[n] = h
	}
	if len(rows) == 0 {
		return "(no histograms recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %8s %10s %10s %10s %10s %12s\n",
		"histogram", "count", "p50", "p90", "p99", "max", "total")
	for _, n := range sortedKeys(rows) {
		h := rows[n]
		fmt.Fprintf(&b, "%-36s %8d %10s %10s %10s %10s %12s\n",
			n, h.Count, fmtUS(h.P50US), fmtUS(h.P90US), fmtUS(h.P99US), fmtUS(h.MaxUS), fmtUS(h.SumUS))
	}
	return b.String()
}

func fmtUS(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
