package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReadWriteCounts(t *testing.T) {
	r := NewRecorder()
	r.Read("a")
	r.Read("a")
	r.Write("a")
	r.Write("b")
	if c := r.Array("a"); c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("a = %+v, want {2 1}", c)
	}
	if c := r.Array("b"); c.Reads != 0 || c.Writes != 1 {
		t.Fatalf("b = %+v, want {0 1}", c)
	}
	if c := r.Array("missing"); c.Total() != 0 {
		t.Fatalf("missing = %+v, want zero", c)
	}
	if r.TotalAccesses() != 4 {
		t.Fatalf("TotalAccesses = %d, want 4", r.TotalAccesses())
	}
}

func TestBulkCounts(t *testing.T) {
	r := NewRecorder()
	r.ReadN("x", 100)
	r.WriteN("x", 50)
	if c := r.Array("x"); c.Reads != 100 || c.Writes != 50 {
		t.Fatalf("x = %+v", c)
	}
}

func TestScopeAttribution(t *testing.T) {
	r := NewRecorder()
	r.Read("a") // root scope
	r.Push("outer")
	r.Read("a")
	r.Push("inner")
	r.Write("a")
	r.Pop()
	r.Read("a")
	r.Pop()
	if got := r.ArrayScope("a", ""); got.Reads != 1 || got.Writes != 0 {
		t.Fatalf("root scope = %+v", got)
	}
	if got := r.ArrayScope("a", "outer"); got.Reads != 2 {
		t.Fatalf("outer scope = %+v, want 2 reads", got)
	}
	if got := r.ArrayScope("a", "outer/inner"); got.Writes != 1 {
		t.Fatalf("inner scope = %+v, want 1 write", got)
	}
	if total := r.Array("a"); total.Reads != 3 || total.Writes != 1 {
		t.Fatalf("total = %+v, want {3 1}", total)
	}
}

func TestScopeNesting(t *testing.T) {
	r := NewRecorder()
	if r.Scope() != "" {
		t.Fatalf("root scope = %q", r.Scope())
	}
	r.Push("l1")
	r.Push("l2")
	if r.Scope() != "l1/l2" {
		t.Fatalf("scope = %q, want l1/l2", r.Scope())
	}
	r.Pop()
	if r.Scope() != "l1" {
		t.Fatalf("scope after pop = %q", r.Scope())
	}
}

func TestPopUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scope underflow")
		}
	}()
	NewRecorder().Pop()
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Push("x")
	r.Read("a")
	r.Write("a")
	r.ReadN("a", 5)
	r.WriteN("a", 5)
	r.Pop()
	if r.TotalAccesses() != 0 || r.Arrays() != nil {
		t.Fatal("nil recorder recorded something")
	}
	if r.Scope() != "" {
		t.Fatal("nil recorder has a scope")
	}
	if !strings.Contains(r.Report(), "disabled") {
		t.Fatal("nil recorder report should say disabled")
	}
}

func TestArraysSorted(t *testing.T) {
	r := NewRecorder()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Read(n)
	}
	got := r.Arrays()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Arrays() = %v, want %v", got, want)
		}
	}
}

func TestReportOrdersByTotal(t *testing.T) {
	r := NewRecorder()
	r.ReadN("small", 1)
	r.ReadN("big", 1000)
	rep := r.Report()
	if strings.Index(rep, "big") > strings.Index(rep, "small") {
		t.Fatalf("report does not order by total:\n%s", rep)
	}
	if !strings.Contains(rep, "TOTAL") {
		t.Fatal("report missing TOTAL line")
	}
}

func TestArray2D(t *testing.T) {
	r := NewRecorder()
	a := NewArray2D(r, "m", 3, 2)
	a.Set(2, 1, 42)
	if got := a.Get(2, 1); got != 42 {
		t.Fatalf("Get = %d, want 42", got)
	}
	if got := a.Peek(2, 1); got != 42 {
		t.Fatalf("Peek = %d, want 42", got)
	}
	// 1 write + 1 read recorded; Peek not recorded.
	if c := r.Array("m"); c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counts = %+v, want {1 1}", c)
	}
}

func TestArray1D(t *testing.T) {
	r := NewRecorder()
	a := NewArray1D(r, "v", 4)
	a.Set(3, -7)
	if a.Get(3) != -7 {
		t.Fatal("round trip failed")
	}
	if c := r.Array("v"); c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestArrayInvalidDimsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewArray2D(nil, "x", 0, 1) },
		func() { NewArray1D(nil, "x", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid dims")
				}
			}()
			f()
		}()
	}
}

func TestArraysWithNilRecorder(t *testing.T) {
	a := NewArray2D(nil, "m", 2, 2)
	a.Set(0, 0, 5)
	if a.Get(0, 0) != 5 {
		t.Fatal("nil-recorder array does not store values")
	}
}

func TestHandleMatchesDirectAPI(t *testing.T) {
	direct := NewRecorder()
	viaHandle := NewRecorder()
	h := viaHandle.NewHandle("a")

	direct.Read("a")
	h.Read(1)
	direct.Push("loop")
	viaHandle.Push("loop")
	direct.Write("a")
	direct.Write("a")
	h.Write(2)
	direct.Pop()
	viaHandle.Pop()
	direct.ReadN("a", 3)
	h.Read(3)

	if direct.Array("a") != viaHandle.Array("a") {
		t.Fatalf("totals differ: %+v vs %+v", direct.Array("a"), viaHandle.Array("a"))
	}
	for _, scope := range []string{"", "loop"} {
		if direct.ArrayScope("a", scope) != viaHandle.ArrayScope("a", scope) {
			t.Fatalf("scope %q differs: %+v vs %+v", scope,
				direct.ArrayScope("a", scope), viaHandle.ArrayScope("a", scope))
		}
	}
}

func TestHandleScopeCacheInvalidation(t *testing.T) {
	r := NewRecorder()
	h := r.NewHandle("x")
	h.Read(1) // root
	r.Push("a")
	h.Read(1) // scope a
	r.Pop()
	r.Push("a") // same label again: must still attribute correctly
	h.Read(1)
	r.Pop()
	h.Read(1) // back at root
	if c := r.ArrayScope("x", ""); c.Reads != 2 {
		t.Fatalf("root reads = %d, want 2", c.Reads)
	}
	if c := r.ArrayScope("x", "a"); c.Reads != 2 {
		t.Fatalf("scope-a reads = %d, want 2", c.Reads)
	}
}

func TestNilHandle(t *testing.T) {
	var r *Recorder
	h := r.NewHandle("x")
	if h != nil {
		t.Fatal("nil recorder should yield nil handle")
	}
	h.Read(5) // must not crash
	h.Write(5)
}

func TestAddressTrace(t *testing.T) {
	r := NewRecorder()
	r.EnableAddressTrace("m")
	r.EnableAddressTrace("m") // idempotent
	a := NewArray2D(r, "m", 4, 4)
	a.Set(1, 2, 7) // writes are not traced
	_ = a.Get(1, 2)
	_ = a.Get(3, 0)
	got := r.Addresses("m")
	want := []int32{2*4 + 1, 3}
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
	// Untraced arrays return nil.
	if r.Addresses("other") != nil {
		t.Fatal("untraced array has addresses")
	}
	// Arrays created before enabling are not traced.
	r2 := NewRecorder()
	b := NewArray2D(r2, "late", 2, 2)
	r2.EnableAddressTrace("late")
	_ = b.Get(0, 0)
	if len(r2.Addresses("late")) != 0 {
		t.Fatal("pre-enable array captured addresses")
	}
	// Nil recorder paths.
	var nr *Recorder
	nr.EnableAddressTrace("x")
	if nr.Addresses("x") != nil {
		t.Fatal("nil recorder has addresses")
	}
}

func TestArrayScopeMissingCases(t *testing.T) {
	r := NewRecorder()
	if c := r.ArrayScope("never", "s"); c.Total() != 0 {
		t.Fatal("missing array scope non-zero")
	}
	r.Read("a")
	if c := r.ArrayScope("a", "ghost-scope"); c.Total() != 0 {
		t.Fatal("missing scope non-zero")
	}
}

func TestArray1DPeek(t *testing.T) {
	r := NewRecorder()
	a := NewArray1D(r, "v", 2)
	a.Set(1, 9)
	before := r.Array("v")
	if a.Peek(1) != 9 {
		t.Fatal("peek value wrong")
	}
	if r.Array("v") != before {
		t.Fatal("Peek recorded an access")
	}
}

// Property: totals always equal the sum of per-scope counts.
func TestQuickScopeSumsMatchTotal(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRecorder()
		depth := 0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				r.Push("s")
				depth++
			case 1:
				if depth > 0 {
					r.Pop()
					depth--
				}
			case 2:
				r.Read("a")
			case 3:
				r.Write("a")
			case 4:
				r.ReadN("b", uint64(op))
			}
		}
		for _, name := range []string{"a", "b"} {
			var sum Counts
			s := r.arrays[name]
			if s == nil {
				continue
			}
			for _, c := range s.PerScope {
				sum.Add(*c)
			}
			if sum != s.Counts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAddressesReturnsCopy is a regression test: Addresses must hand out a
// copy of the capture buffer, not the live internal slice. Mutating the
// returned slice — or recording further reads — must not corrupt (or be
// visible through) an earlier snapshot.
func TestAddressesReturnsCopy(t *testing.T) {
	r := NewRecorder()
	r.EnableAddressTrace("img")
	a := NewArray2D(r, "img", 4, 4)
	a.Set(0, 0, 7)
	a.Get(0, 0)
	a.Get(1, 0)

	snap := r.Addresses("img")
	if len(snap) != 2 || snap[0] != 0 || snap[1] != 1 {
		t.Fatalf("trace = %v, want [0 1]", snap)
	}

	// Mutating the caller's slice must not reach the recorder.
	snap[0] = 99
	if got := r.Addresses("img"); got[0] != 0 {
		t.Fatalf("internal trace corrupted by caller mutation: %v", got)
	}

	// Further recording must not grow the earlier snapshot.
	a.Get(2, 0)
	if len(snap) != 2 {
		t.Fatalf("snapshot aliased the live buffer: len=%d", len(snap))
	}
	if got := r.Addresses("img"); len(got) != 3 || got[2] != 2 {
		t.Fatalf("post-mutation trace = %v, want [0 1 2]", got)
	}
}
