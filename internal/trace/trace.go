// Package trace implements memory-access profiling. The paper (§4.1) notes
// that for data-dependent applications the access counts needed by the cost
// estimators "can only be obtained by profiling" and that IMEC wrote
// software to automatically instrument the application; this package is
// that instrumentation layer.
//
// A Recorder counts reads and writes per named array (basic group),
// attributed to the innermost active scope (loop label). Instrumented array
// wrappers (Array1D, Array2D) make instrumenting an algorithm a mechanical
// substitution of indexing syntax.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Counts is a read/write tally.
type Counts struct {
	Reads  uint64
	Writes uint64
}

// Total returns reads + writes.
func (c Counts) Total() uint64 { return c.Reads + c.Writes }

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Reads += o.Reads
	c.Writes += o.Writes
}

// ArrayStats aggregates the accesses to one array.
type ArrayStats struct {
	Counts
	PerScope map[string]*Counts // scope label -> tally within that scope
}

// Recorder accumulates access counts. The zero value is not usable; call
// NewRecorder. A nil *Recorder is valid everywhere and records nothing,
// which lets instrumented code run at full speed when profiling is off.
type Recorder struct {
	arrays  map[string]*ArrayStats
	scopes  []string            // scope stack; attribution goes to the top element
	version uint64              // bumped on every Push/Pop; invalidates cached handles
	addrs   map[string]*[]int32 // arrays with read-address tracing enabled
}

// NewRecorder returns an empty Recorder with the root scope "" active.
func NewRecorder() *Recorder {
	return &Recorder{arrays: make(map[string]*ArrayStats), version: 1}
}

// EnableAddressTrace turns on read-address capture for the named array.
// It must be called before the instrumented array is created. Address
// traces feed the data-reuse analysis of the memory hierarchy step.
func (r *Recorder) EnableAddressTrace(array string) {
	if r == nil {
		return
	}
	if r.addrs == nil {
		r.addrs = make(map[string]*[]int32)
	}
	if r.addrs[array] == nil {
		buf := make([]int32, 0, 1024)
		r.addrs[array] = &buf
	}
}

// Addresses returns a copy of the captured read-address trace of the named
// array (nil when tracing was not enabled). Returning a copy keeps the
// caller from aliasing the live capture buffer, which continues to grow —
// and may be reallocated — as the instrumented application keeps running.
func (r *Recorder) Addresses(array string) []int32 {
	if r == nil || r.addrs == nil || r.addrs[array] == nil {
		return nil
	}
	return append([]int32(nil), *r.addrs[array]...)
}

// Push enters a scope (e.g. a loop label). Scope names nest with "/".
func (r *Recorder) Push(label string) {
	if r == nil {
		return
	}
	full := label
	if n := len(r.scopes); n > 0 {
		full = r.scopes[n-1] + "/" + label
	}
	r.scopes = append(r.scopes, full)
	r.version++
}

// Pop leaves the innermost scope. Popping the root is an error in the
// instrumentation and panics.
func (r *Recorder) Pop() {
	if r == nil {
		return
	}
	if len(r.scopes) == 0 {
		panic("trace: scope stack underflow")
	}
	r.scopes = r.scopes[:len(r.scopes)-1]
	r.version++
}

// Scope returns the full label of the innermost active scope ("" at root).
func (r *Recorder) Scope() string {
	if r == nil || len(r.scopes) == 0 {
		return ""
	}
	return r.scopes[len(r.scopes)-1]
}

func (r *Recorder) stats(array string) *ArrayStats {
	s := r.arrays[array]
	if s == nil {
		s = &ArrayStats{PerScope: make(map[string]*Counts)}
		r.arrays[array] = s
	}
	return s
}

func (r *Recorder) scopeCounts(s *ArrayStats) *Counts {
	label := r.Scope()
	c := s.PerScope[label]
	if c == nil {
		c = &Counts{}
		s.PerScope[label] = c
	}
	return c
}

// Read records one read of array.
func (r *Recorder) Read(array string) {
	if r == nil {
		return
	}
	s := r.stats(array)
	s.Reads++
	r.scopeCounts(s).Reads++
}

// Write records one write of array.
func (r *Recorder) Write(array string) {
	if r == nil {
		return
	}
	s := r.stats(array)
	s.Writes++
	r.scopeCounts(s).Writes++
}

// ReadN and WriteN record n accesses at once (bulk transfers).
func (r *Recorder) ReadN(array string, n uint64) {
	if r == nil {
		return
	}
	s := r.stats(array)
	s.Reads += n
	r.scopeCounts(s).Reads += n
}

// WriteN records n writes of array.
func (r *Recorder) WriteN(array string, n uint64) {
	if r == nil {
		return
	}
	s := r.stats(array)
	s.Writes += n
	r.scopeCounts(s).Writes += n
}

// Array returns the tally for one array (zero Counts if never accessed).
func (r *Recorder) Array(name string) Counts {
	if r == nil {
		return Counts{}
	}
	if s := r.arrays[name]; s != nil {
		return s.Counts
	}
	return Counts{}
}

// ArrayScope returns the tally for one array within one scope label.
func (r *Recorder) ArrayScope(name, scope string) Counts {
	if r == nil {
		return Counts{}
	}
	if s := r.arrays[name]; s != nil {
		if c := s.PerScope[scope]; c != nil {
			return *c
		}
	}
	return Counts{}
}

// Arrays returns the profiled array names, sorted.
func (r *Recorder) Arrays() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.arrays))
	for n := range r.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalAccesses returns the grand total across all arrays.
func (r *Recorder) TotalAccesses() uint64 {
	if r == nil {
		return 0
	}
	var t uint64
	for _, s := range r.arrays {
		t += s.Total()
	}
	return t
}

// Report renders a human-readable profile, arrays sorted by total accesses
// descending (the view a designer uses to find the dominant basic groups).
func (r *Recorder) Report() string {
	if r == nil {
		return "(profiling disabled)\n"
	}
	names := r.Arrays()
	sort.Slice(names, func(i, j int) bool {
		ti, tj := r.arrays[names[i]].Total(), r.arrays[names[j]].Total()
		if ti != tj {
			return ti > tj
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %14s\n", "array", "reads", "writes", "total")
	for _, n := range names {
		s := r.arrays[n]
		fmt.Fprintf(&b, "%-16s %14d %14d %14d\n", n, s.Reads, s.Writes, s.Total())
	}
	fmt.Fprintf(&b, "%-16s %44d\n", "TOTAL", r.TotalAccesses())
	return b.String()
}

// Handle is a cached, low-overhead recording channel for one array. It
// avoids the per-access map lookups of Recorder.Read/Write, which matters
// when instrumenting an application that makes tens of millions of accesses
// (the 1024×1024 BTPC profile). A nil *Handle records nothing.
type Handle struct {
	rec   *Recorder
	stats *ArrayStats
	sc    *Counts // scope tally cached for scVer
	scVer uint64
}

// NewHandle returns a recording handle for the named array, or nil when the
// Recorder is nil (profiling off).
func (r *Recorder) NewHandle(array string) *Handle {
	if r == nil {
		return nil
	}
	return &Handle{rec: r, stats: r.stats(array)}
}

func (h *Handle) scope() *Counts {
	if h.scVer != h.rec.version {
		h.sc = h.rec.scopeCounts(h.stats)
		h.scVer = h.rec.version
	}
	return h.sc
}

// Read records n reads.
func (h *Handle) Read(n uint64) {
	if h == nil {
		return
	}
	h.stats.Reads += n
	h.scope().Reads += n
}

// Write records n writes.
func (h *Handle) Write(n uint64) {
	if h == nil {
		return
	}
	h.stats.Writes += n
	h.scope().Writes += n
}

// Array2D is an instrumented 2-D integer array bound to a Recorder.
// Indexing is (x, y) with row-major storage, mirroring img.Gray.
type Array2D struct {
	Name string
	W, H int
	data []int32
	h    *Handle
	addr *[]int32 // read-address capture, nil unless enabled
}

// NewArray2D allocates an instrumented W×H array recording into rec
// (rec may be nil to disable profiling).
func NewArray2D(rec *Recorder, name string, w, h int) *Array2D {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("trace: invalid array dimensions %dx%d", w, h))
	}
	a := &Array2D{Name: name, W: w, H: h, data: make([]int32, w*h), h: rec.NewHandle(name)}
	if rec != nil && rec.addrs != nil {
		a.addr = rec.addrs[name]
	}
	return a
}

// Get reads element (x, y), recording one read access.
func (a *Array2D) Get(x, y int) int32 {
	a.h.Read(1)
	if a.addr != nil {
		*a.addr = append(*a.addr, int32(y*a.W+x))
	}
	return a.data[y*a.W+x]
}

// Set writes element (x, y), recording one write access.
func (a *Array2D) Set(x, y int, v int32) {
	a.h.Write(1)
	a.data[y*a.W+x] = v
}

// Peek reads without recording (for assertions and debugging only).
func (a *Array2D) Peek(x, y int) int32 { return a.data[y*a.W+x] }

// Array1D is an instrumented 1-D integer array bound to a Recorder.
type Array1D struct {
	Name string
	N    int
	data []int32
	h    *Handle
}

// NewArray1D allocates an instrumented length-n array recording into rec.
func NewArray1D(rec *Recorder, name string, n int) *Array1D {
	if n <= 0 {
		panic(fmt.Sprintf("trace: invalid array length %d", n))
	}
	return &Array1D{Name: name, N: n, data: make([]int32, n), h: rec.NewHandle(name)}
}

// Get reads element i, recording one read access.
func (a *Array1D) Get(i int) int32 {
	a.h.Read(1)
	return a.data[i]
}

// Set writes element i, recording one write access.
func (a *Array1D) Set(i int, v int32) {
	a.h.Write(1)
	a.data[i] = v
}

// Peek reads without recording.
func (a *Array1D) Peek(i int) int32 { return a.data[i] }
