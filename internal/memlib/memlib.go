// Package memlib models the memory technology libraries that the paper's
// physical-memory-management tools estimate costs with.
//
// The paper used two proprietary sources: a 0.7 µm on-chip SRAM module
// generator with vendor area/power functions, and the Siemens EDO DRAM
// datasheet series for off-chip components. Neither is available, so this
// package substitutes parametric models with the qualitative properties the
// paper's reasoning depends on (and states explicitly):
//
//   - on-chip energy per access grows sub-linearly with memory size, so
//     splitting memories reduces power (§4.6);
//   - every on-chip memory instance pays a fixed area overhead (address
//     decoder, sense amplifiers), so allocating many memories eventually
//     costs area (§4.6, Table 4);
//   - memory width is the maximum of its signals' widths, so mixing
//     bitwidths wastes area and energy (§4.3);
//   - multiport memories are disproportionately expensive (§4.4);
//   - off-chip access energy is an order of magnitude above on-chip, and
//     off-chip devices come in catalog widths only (8/16/32 bit).
//
// All estimates include address decoding and data buffering, but not the
// interconnect, mirroring the paper's stated model scope ("this
// simplification will only affect the absolute cost figures, and not the
// relative comparisons").
package memlib

import (
	"fmt"
	"math"
)

// Kind distinguishes on-chip SRAM from off-chip DRAM.
type Kind int

// Memory kinds.
const (
	OnChip Kind = iota
	OffChip
)

func (k Kind) String() string {
	switch k {
	case OnChip:
		return "on-chip"
	case OffChip:
		return "off-chip"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Memory describes one allocated memory instance.
type Memory struct {
	Name  string
	Kind  Kind
	Words int64
	Bits  int
	Ports int // simultaneous-access ports (1 = single port)
}

// Validate reports whether the memory parameters are in the modeled range.
func (m Memory) Validate() error {
	if m.Words <= 0 {
		return fmt.Errorf("memlib: %s: words %d out of range", m.Name, m.Words)
	}
	if m.Bits <= 0 || m.Bits > 64 {
		return fmt.Errorf("memlib: %s: bits %d out of range [1,64]", m.Name, m.Bits)
	}
	if m.Ports <= 0 || m.Ports > 8 {
		return fmt.Errorf("memlib: %s: ports %d out of range [1,8]", m.Name, m.Ports)
	}
	return nil
}

// SRAMModel is the parametric on-chip module-generator model.
// Area [mm²]: (FixedArea + CellArea·words·bits + PeriphArea·√(words·bits)) ·
// (1 + PortArea·(ports-1)). Energy per access [nJ]:
// (BaseEnergy + EnergySlope·√(words·bits)) · (1 + PortEnergy·(ports-1)).
type SRAMModel struct {
	FixedArea  float64 // mm² per instance (decoder, sense amps, routing ring)
	CellArea   float64 // mm² per bit cell
	PeriphArea float64 // mm² per √bit (wordlines/bitlines)
	PortArea   float64 // relative area increase per extra port

	BaseEnergy  float64 // nJ per access, size-independent part
	EnergySlope float64 // nJ per √bit
	PortEnergy  float64 // relative energy increase per extra port

	StaticPower float64 // mW leakage per instance
	MaxWords    int64   // generator limit; larger arrays must go off-chip
}

// Area returns the macro area in mm².
func (s *SRAMModel) Area(words int64, bits, ports int) float64 {
	size := float64(words) * float64(bits)
	base := s.FixedArea + s.CellArea*size + s.PeriphArea*math.Sqrt(size)
	return base * (1 + s.PortArea*float64(ports-1))
}

// EnergyPerAccess returns nJ per access.
func (s *SRAMModel) EnergyPerAccess(words int64, bits, ports int) float64 {
	size := float64(words) * float64(bits)
	base := s.BaseEnergy + s.EnergySlope*math.Sqrt(size)
	return base * (1 + s.PortEnergy*float64(ports-1))
}

// Power returns mW at the given access rate (accesses per second).
func (s *SRAMModel) Power(words int64, bits, ports int, rate float64) float64 {
	// nJ/access × accesses/s = nW; ×1e-6 = mW.
	return s.EnergyPerAccess(words, bits, ports)*rate*1e-6 + s.StaticPower
}

// DRAMEntry is one row of the off-chip datasheet table.
type DRAMEntry struct {
	Name         string
	Words        int64
	Bits         int
	EnergyAccess float64 // nJ per access (active power folded to energy)
	StaticPower  float64 // mW standby
}

// DRAMModel is a datasheet-style table of available off-chip devices plus
// the interleaving penalty used when more ports are required than a single
// device provides.
type DRAMModel struct {
	Entries []DRAMEntry
	// PortPowerFactor multiplies power per extra port: a P-port off-chip
	// "memory" is realized as interleaved devices with duplicated I/O.
	PortPowerFactor float64
}

// Select returns the cheapest catalog entry that fits words×bits, following
// the datasheet discipline: width is rounded up to a catalog width and
// depth to a catalog depth.
func (d *DRAMModel) Select(words int64, bits int) (DRAMEntry, error) {
	best := -1
	for i, e := range d.Entries {
		if e.Words >= words && e.Bits >= bits {
			if best < 0 || e.EnergyAccess < d.Entries[best].EnergyAccess ||
				(e.EnergyAccess == d.Entries[best].EnergyAccess && e.Words < d.Entries[best].Words) {
				best = i
			}
		}
	}
	if best < 0 {
		return DRAMEntry{}, fmt.Errorf("memlib: no off-chip device fits %d words × %d bits", words, bits)
	}
	return d.Entries[best], nil
}

// Power returns mW for an off-chip memory at the given access rate.
func (d *DRAMModel) Power(words int64, bits, ports int, rate float64) (float64, error) {
	e, err := d.Select(words, bits)
	if err != nil {
		return 0, err
	}
	p := e.EnergyAccess*rate*1e-6 + e.StaticPower
	if ports > 1 {
		p *= 1 + d.PortPowerFactor*float64(ports-1)
	}
	return p, nil
}

// Tech bundles the two technology models and the timing context needed to
// convert access counts into rates.
type Tech struct {
	SRAM SRAMModel
	DRAM DRAMModel
	// FramePeriod is the real-time period [s] over which the profiled
	// access counts are spent. The BTPC constraint (1 Mpixel/s on a
	// 1-Mpixel image) makes this 1 s.
	FramePeriod float64
	// OnChipMaxWords is the allocation threshold: basic groups larger than
	// this must live off-chip.
	OnChipMaxWords int64
	// Bus models the interconnect. The paper's estimators exclude it ("the
	// estimation models … don't include area and power cost of the
	// interconnections") but predict its effect: with many memories "the
	// power consumption will also rise again due to the interconnect-
	// related power". The zero value keeps the paper's scope; see
	// WithInterconnect.
	Bus BusModel
}

// BusModel prices the on-chip bus network as a function of how many
// memories hang off it.
type BusModel struct {
	AreaPerMemory float64 // mm² of routing per on-chip memory
	BaseEnergy    float64 // nJ added to every on-chip access
	EnergySlope   float64 // additional nJ per access per extra memory
}

// Enabled reports whether the bus model contributes any cost.
func (b BusModel) Enabled() bool {
	return b.AreaPerMemory != 0 || b.BaseEnergy != 0 || b.EnergySlope != 0
}

// Area returns the bus area for n on-chip memories.
func (b BusModel) Area(n int) float64 { return b.AreaPerMemory * float64(n) }

// Power returns the bus power in mW for n on-chip memories serving the
// given on-chip access rate.
func (b BusModel) Power(n int, rate float64) float64 {
	if n <= 0 {
		return 0
	}
	e := b.BaseEnergy + b.EnergySlope*float64(n-1)
	return e * rate * 1e-6
}

// WithInterconnect returns a copy of the technology with a calibrated bus
// model enabled — the extension that closes the paper's Table 4 loop
// (the power minimum becomes interior instead of asymptotic).
func (t *Tech) WithInterconnect() *Tech {
	c := *t
	c.Bus = BusModel{AreaPerMemory: 0.3, BaseEnergy: 0.05, EnergySlope: 0.3}
	return &c
}

// Default returns the calibrated technology used throughout the
// reproduction. The constants are fixed once, here; no per-experiment
// tuning happens anywhere else.
func Default() *Tech {
	return &Tech{
		SRAM: SRAMModel{
			FixedArea:   0.9,    // mm²: decoder + sense amps per instance
			CellArea:    0.0006, // mm² per bit (0.7 µm 6T cell + pitch)
			PeriphArea:  0.018,  // mm² per √bit
			PortArea:    0.7,    // a 2nd port nearly doubles the cell
			BaseEnergy:  0.1,    // nJ
			EnergySlope: 0.04,   // nJ per √bit (0.7 µm SRAMs: a 5K×8 macro
			// costs ~8 nJ/access, within a factor of a few of EDO DRAM,
			// which is what makes the paper's hierarchy trade-off real)
			PortEnergy:  0.25,
			StaticPower: 0.05, // mW
			MaxWords:    64 * 1024,
		},
		DRAM: DRAMModel{
			Entries: []DRAMEntry{
				{Name: "EDO-256Kx8", Words: 256 * 1024, Bits: 8, EnergyAccess: 16, StaticPower: 4},
				{Name: "EDO-256Kx16", Words: 256 * 1024, Bits: 16, EnergyAccess: 20, StaticPower: 6},
				{Name: "EDO-1Mx8", Words: 1024 * 1024, Bits: 8, EnergyAccess: 19, StaticPower: 5},
				{Name: "EDO-1Mx16", Words: 1024 * 1024, Bits: 16, EnergyAccess: 24, StaticPower: 8},
				{Name: "EDO-4Mx8", Words: 4 * 1024 * 1024, Bits: 8, EnergyAccess: 24, StaticPower: 7},
				{Name: "EDO-4Mx16", Words: 4 * 1024 * 1024, Bits: 16, EnergyAccess: 30, StaticPower: 11},
				{Name: "EDO-16Mx16", Words: 16 * 1024 * 1024, Bits: 16, EnergyAccess: 38, StaticPower: 16},
			},
			PortPowerFactor: 0.9,
		},
		FramePeriod:    1.0,
		OnChipMaxWords: 64 * 1024,
	}
}

// Scale returns a copy of the technology with on-chip area and energy
// scaled by the given factors — a crude process shrink (e.g. 0.5, 0.6 for a
// 0.7 µm → 0.5 µm move). The paper argues its conclusions rest only on
// relative comparisons; Scale lets tests validate that claim by re-running
// explorations under perturbed technologies.
func (t *Tech) Scale(areaF, energyF float64) *Tech {
	c := *t
	c.SRAM.FixedArea *= areaF
	c.SRAM.CellArea *= areaF
	c.SRAM.PeriphArea *= areaF
	c.SRAM.BaseEnergy *= energyF
	c.SRAM.EnergySlope *= energyF
	c.SRAM.StaticPower *= energyF
	c.DRAM.Entries = append([]DRAMEntry(nil), t.DRAM.Entries...)
	return &c
}

// Area returns the memory's area in mm². Off-chip devices report zero area
// (the paper reports no off-chip area either: the devices are catalog
// parts, not silicon the designer pays for).
func (t *Tech) Area(m Memory) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	switch m.Kind {
	case OnChip:
		if m.Words > t.SRAM.MaxWords {
			return 0, fmt.Errorf("memlib: %s: %d words exceeds on-chip generator limit %d",
				m.Name, m.Words, t.SRAM.MaxWords)
		}
		return t.SRAM.Area(m.Words, m.Bits, m.Ports), nil
	case OffChip:
		if _, err := t.DRAM.Select(m.Words, m.Bits); err != nil {
			return 0, err
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("memlib: unknown kind %v", m.Kind)
	}
}

// Power returns the memory's power in mW given the number of accesses it
// serves per frame.
func (t *Tech) Power(m Memory, accessesPerFrame uint64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	rate := float64(accessesPerFrame) / t.FramePeriod
	switch m.Kind {
	case OnChip:
		if m.Words > t.SRAM.MaxWords {
			return 0, fmt.Errorf("memlib: %s: %d words exceeds on-chip generator limit %d",
				m.Name, m.Words, t.SRAM.MaxWords)
		}
		return t.SRAM.Power(m.Words, m.Bits, m.Ports, rate), nil
	case OffChip:
		return t.DRAM.Power(m.Words, m.Bits, m.Ports, rate)
	default:
		return 0, fmt.Errorf("memlib: unknown kind %v", m.Kind)
	}
}

// CatalogWidth rounds a signal width up to an off-chip catalog width.
func CatalogWidth(bits int) int {
	switch {
	case bits <= 8:
		return 8
	case bits <= 16:
		return 16
	default:
		return 32
	}
}
