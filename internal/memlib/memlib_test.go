package memlib

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSRAMAreaMonotoneInSize(t *testing.T) {
	s := &Default().SRAM
	prev := 0.0
	for _, words := range []int64{64, 256, 1024, 4096, 16384, 65536} {
		a := s.Area(words, 8, 1)
		if a <= prev {
			t.Fatalf("area not monotone: %d words -> %.3f (prev %.3f)", words, a, prev)
		}
		prev = a
	}
}

func TestSRAMEnergySublinear(t *testing.T) {
	// Doubling the size must less-than-double the energy per access:
	// the property the paper's memory-splitting argument rests on.
	s := &Default().SRAM
	for _, words := range []int64{256, 1024, 8192} {
		e1 := s.EnergyPerAccess(words, 8, 1)
		e2 := s.EnergyPerAccess(2*words, 8, 1)
		if e2 >= 2*e1 {
			t.Fatalf("energy superlinear at %d words: %.4f -> %.4f", words, e1, e2)
		}
		if e2 <= e1 {
			t.Fatalf("energy not increasing at %d words: %.4f -> %.4f", words, e1, e2)
		}
	}
}

func TestSplittingReducesEnergy(t *testing.T) {
	// Two half-size memories must cost less energy per access than one big
	// one (at equal total accesses), but more area (fixed overhead twice).
	s := &Default().SRAM
	const words, bits = 8192, 16
	big := s.EnergyPerAccess(words, bits, 1)
	half := s.EnergyPerAccess(words/2, bits, 1)
	if half >= big {
		t.Fatalf("half-size memory not cheaper per access: %.4f vs %.4f", half, big)
	}
	bigArea := s.Area(words, bits, 1)
	splitArea := 2 * s.Area(words/2, bits, 1)
	if splitArea <= bigArea {
		t.Fatalf("splitting should cost area: %.3f vs %.3f", splitArea, bigArea)
	}
}

func TestMultiportPenalties(t *testing.T) {
	s := &Default().SRAM
	a1 := s.Area(1024, 8, 1)
	a2 := s.Area(1024, 8, 2)
	if a2 <= a1*1.3 {
		t.Fatalf("2-port area penalty too small: %.3f vs %.3f", a2, a1)
	}
	e1 := s.EnergyPerAccess(1024, 8, 1)
	e2 := s.EnergyPerAccess(1024, 8, 2)
	if e2 <= e1 {
		t.Fatalf("2-port energy penalty missing: %.4f vs %.4f", e2, e1)
	}
}

func TestDRAMSelect(t *testing.T) {
	d := &Default().DRAM
	e, err := d.Select(1024*1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bits < 10 || e.Words < 1024*1024 {
		t.Fatalf("selected %+v does not fit 1M x 10", e)
	}
	// A 10-bit signal must land in a 16-bit device (catalog widths).
	if e.Bits != 16 {
		t.Fatalf("selected width %d, want 16", e.Bits)
	}
	if _, err := d.Select(1<<40, 8); err == nil {
		t.Fatal("absurd size accepted")
	}
	if _, err := d.Select(1024, 33); err == nil {
		t.Fatal("33-bit off-chip width accepted")
	}
}

func TestDRAMSelectPrefersCheapest(t *testing.T) {
	d := &Default().DRAM
	small, err := d.Select(100*1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := d.Select(3*1024*1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if small.EnergyAccess >= big.EnergyAccess {
		t.Fatalf("small request (%+v) not cheaper than big (%+v)", small, big)
	}
}

func TestSixteenBitCostsMoreThanEight(t *testing.T) {
	// The paper: a 16-bit off-chip memory "consumes more power than an
	// 8-bit memory" at the same access rate.
	d := &Default().DRAM
	p8, err := d.Power(1024*1024, 8, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := d.Power(1024*1024, 16, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if p16 <= p8 {
		t.Fatalf("16-bit power %.2f not above 8-bit %.2f", p16, p8)
	}
}

func TestDRAMPortPenalty(t *testing.T) {
	d := &Default().DRAM
	p1, err := d.Power(1024*1024, 8, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Power(1024*1024, 8, 2, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < p1*1.5 {
		t.Fatalf("2-port off-chip power %.2f should be >= 1.5x 1-port %.2f", p2, p1)
	}
}

func TestTechAreaAndPower(t *testing.T) {
	tech := Default()
	m := Memory{Name: "buf", Kind: OnChip, Words: 5 * 1024, Bits: 8, Ports: 2}
	a, err := tech.Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || a > 200 {
		t.Fatalf("implausible area %.2f mm² for a 5K buffer", a)
	}
	p, err := tech.Power(m, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 500 {
		t.Fatalf("implausible power %.2f mW", p)
	}
	off := Memory{Name: "img", Kind: OffChip, Words: 1024 * 1024, Bits: 8, Ports: 1}
	a2, err := tech.Area(off)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != 0 {
		t.Fatalf("off-chip area %.2f, want 0 (not reported)", a2)
	}
}

func TestTechRejectsOversizedOnChip(t *testing.T) {
	tech := Default()
	m := Memory{Name: "huge", Kind: OnChip, Words: 1024 * 1024, Bits: 8, Ports: 1}
	if _, err := tech.Area(m); err == nil {
		t.Fatal("1M-word on-chip memory accepted")
	}
	if _, err := tech.Power(m, 1); err == nil {
		t.Fatal("1M-word on-chip power accepted")
	}
}

func TestMemoryValidate(t *testing.T) {
	bad := []Memory{
		{Name: "w0", Words: 0, Bits: 8, Ports: 1},
		{Name: "b0", Words: 10, Bits: 0, Ports: 1},
		{Name: "b65", Words: 10, Bits: 65, Ports: 1},
		{Name: "p0", Words: 10, Bits: 8, Ports: 0},
		{Name: "p9", Words: 10, Bits: 8, Ports: 9},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: invalid memory accepted", m.Name)
		}
	}
	good := Memory{Name: "ok", Words: 10, Bits: 8, Ports: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid memory rejected: %v", err)
	}
}

func TestCatalogWidth(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 8}, {2, 8}, {8, 8}, {9, 16}, {10, 16}, {16, 16}, {17, 32}, {20, 32},
	}
	for _, c := range cases {
		if got := CatalogWidth(c.in); got != c.want {
			t.Errorf("CatalogWidth(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if OnChip.String() != "on-chip" || OffChip.String() != "off-chip" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown Kind should still render")
	}
}

// Property: area and energy are monotone non-decreasing in words, bits and
// ports over the modeled range.
func TestQuickSRAMMonotone(t *testing.T) {
	s := &Default().SRAM
	f := func(w1, w2 uint16, bits1, bits2, ports1, ports2 uint8) bool {
		wa, wb := int64(w1)+1, int64(w2)+1
		if wa > wb {
			wa, wb = wb, wa
		}
		ba, bb := int(bits1)%32+1, int(bits2)%32+1
		if ba > bb {
			ba, bb = bb, ba
		}
		pa, pb := int(ports1)%4+1, int(ports2)%4+1
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Area(wa, ba, pa) <= s.Area(wb, bb, pb) &&
			s.EnergyPerAccess(wa, ba, pa) <= s.EnergyPerAccess(wb, bb, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DRAM Select result always fits the request.
func TestQuickDRAMSelectFits(t *testing.T) {
	d := &Default().DRAM
	f := func(words uint32, bits uint8) bool {
		w := int64(words)%(16*1024*1024) + 1
		b := int(bits)%16 + 1
		e, err := d.Select(w, b)
		if err != nil {
			return false
		}
		return e.Words >= w && e.Bits >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScalePreservesStructure(t *testing.T) {
	base := Default()
	shrunk := base.Scale(0.5, 0.6)
	// On-chip costs scale; DRAM catalog and thresholds are untouched.
	if a := shrunk.SRAM.Area(1024, 8, 1); a >= base.SRAM.Area(1024, 8, 1) {
		t.Fatal("area did not shrink")
	}
	if e := shrunk.SRAM.EnergyPerAccess(1024, 8, 1); e >= base.SRAM.EnergyPerAccess(1024, 8, 1) {
		t.Fatal("energy did not shrink")
	}
	if len(shrunk.DRAM.Entries) != len(base.DRAM.Entries) {
		t.Fatal("DRAM catalog changed")
	}
	if shrunk.OnChipMaxWords != base.OnChipMaxWords {
		t.Fatal("threshold changed")
	}
	// The original is untouched (deep copy of the catalog).
	shrunk.DRAM.Entries[0].EnergyAccess = 1
	if base.DRAM.Entries[0].EnergyAccess == 1 {
		t.Fatal("Scale shares the DRAM catalog")
	}
}

func TestTechPowerOffChip(t *testing.T) {
	tech := Default()
	m := Memory{Name: "x", Kind: OffChip, Words: 1024 * 1024, Bits: 8, Ports: 1}
	p, err := tech.Power(m, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatal("no off-chip power")
	}
	bad := Memory{Name: "y", Kind: OffChip, Words: 1 << 40, Bits: 8, Ports: 1}
	if _, err := tech.Power(bad, 1); err == nil {
		t.Fatal("uncatalogable device accepted")
	}
	if _, err := tech.Area(bad); err == nil {
		t.Fatal("uncatalogable device area accepted")
	}
	invalid := Memory{Name: "z", Kind: OffChip, Words: 0, Bits: 8, Ports: 1}
	if _, err := tech.Power(invalid, 1); err == nil {
		t.Fatal("invalid memory accepted")
	}
	unknown := Memory{Name: "k", Kind: Kind(7), Words: 8, Bits: 8, Ports: 1}
	if _, err := tech.Power(unknown, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := tech.Area(unknown); err == nil {
		t.Fatal("unknown kind area accepted")
	}
}

func TestWithInterconnectDoesNotMutate(t *testing.T) {
	base := Default()
	wi := base.WithInterconnect()
	if base.Bus.Enabled() {
		t.Fatal("WithInterconnect mutated the base tech")
	}
	if !wi.Bus.Enabled() {
		t.Fatal("bus not enabled")
	}
}

func TestPowerScalesWithRate(t *testing.T) {
	tech := Default()
	m := Memory{Name: "x", Kind: OnChip, Words: 1024, Bits: 8, Ports: 1}
	p1, _ := tech.Power(m, 1_000_000)
	p2, _ := tech.Power(m, 2_000_000)
	dynamic1 := p1 - tech.SRAM.StaticPower
	dynamic2 := p2 - tech.SRAM.StaticPower
	if math.Abs(dynamic2-2*dynamic1) > 1e-9 {
		t.Fatalf("dynamic power not linear in rate: %.6f vs %.6f", dynamic1, dynamic2)
	}
}
