// Package bgstruct implements basic group (re)structuring (§4.3): the two
// exploration axes of Figure 2.
//
//   - Compaction packs several words of one narrow array into one wider
//     word. Reads and writes coalesce by the packing factor, but every
//     compacted write needs an extra read first, "to make sure the old
//     value of the other words isn't overwritten".
//   - Merging combines two arrays into one array of records. Co-indexed
//     accesses (same site tag) collapse into single accesses; a write that
//     touches only one of the two fields becomes a read-modify-write.
//
// Both transforms return modified clones, so exploration branches stay
// independent; the physical-memory-management stages evaluate the variants
// and the cost feedback steers the decision.
package bgstruct

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// Compact packs factor words of the named group into one word. The result
// has ⌈words/factor⌉ words of bits×factor width.
func Compact(s *spec.Spec, group string, factor int) (*spec.Spec, error) {
	if factor < 2 {
		return nil, fmt.Errorf("bgstruct: compaction factor %d must be >= 2", factor)
	}
	g, ok := s.Group(group)
	if !ok {
		return nil, fmt.Errorf("bgstruct: unknown group %q", group)
	}
	if g.Bits*factor > 64 {
		return nil, fmt.Errorf("bgstruct: compacted width %d exceeds 64 bits", g.Bits*factor)
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s+compact(%s,%d)", s.Name, group, factor)
	for i := range out.Groups {
		if out.Groups[i].Name == group {
			out.Groups[i].Words = (g.Words + int64(factor) - 1) / int64(factor)
			out.Groups[i].Bits = g.Bits * factor
		}
	}
	f := float64(factor)
	for li := range out.Loops {
		l := &out.Loops[li]
		var rebuilt []spec.Access
		remap := make(map[int]int)
		for _, a := range l.Accesses {
			if a.Group != group {
				remap[a.ID] = len(rebuilt)
				rebuilt = append(rebuilt, a)
				continue
			}
			a.Count /= f
			if !a.Write {
				remap[a.ID] = len(rebuilt)
				rebuilt = append(rebuilt, a)
				continue
			}
			// Compacted write: read-modify-write of the compound word.
			rd := spec.Access{
				ID:     len(rebuilt),
				Group:  group,
				Count:  a.Count,
				Deps:   append([]int(nil), a.Deps...),
				Site:   a.Site,
				Branch: a.Branch,
			}
			rebuilt = append(rebuilt, rd)
			a.Deps = append(append([]int(nil), a.Deps...), -1-rd.ID) // marker: already-new ID
			remap[a.ID] = len(rebuilt)
			rebuilt = append(rebuilt, a)
		}
		finishRemap(l, rebuilt, remap)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("bgstruct: compaction produced invalid spec: %w", err)
	}
	return out, nil
}

// Merge combines groups a and b (equal word counts) into one group named
// merged, with the sum of the widths. Same-site accesses of a and b with
// the same direction collapse into one access; single-field writes become
// read-modify-writes.
func Merge(s *spec.Spec, a, b, merged string) (*spec.Spec, error) {
	ga, ok := s.Group(a)
	if !ok {
		return nil, fmt.Errorf("bgstruct: unknown group %q", a)
	}
	gb, ok := s.Group(b)
	if !ok {
		return nil, fmt.Errorf("bgstruct: unknown group %q", b)
	}
	if ga.Words != gb.Words {
		return nil, fmt.Errorf("bgstruct: cannot merge %q (%d words) with %q (%d words)",
			a, ga.Words, b, gb.Words)
	}
	if _, exists := s.Group(merged); exists {
		return nil, fmt.Errorf("bgstruct: merged group name %q already in use", merged)
	}
	if ga.Bits+gb.Bits > 64 {
		return nil, fmt.Errorf("bgstruct: merged width %d exceeds 64 bits", ga.Bits+gb.Bits)
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s+merge(%s,%s)", s.Name, a, b)
	// Replace the two groups by the merged one (at a's position).
	var gs []spec.BasicGroup
	for _, g := range out.Groups {
		switch g.Name {
		case a:
			gs = append(gs, spec.BasicGroup{Name: merged, Words: ga.Words, Bits: ga.Bits + gb.Bits})
		case b:
			// dropped
		default:
			gs = append(gs, g)
		}
	}
	out.Groups = gs

	for li := range out.Loops {
		l := &out.Loops[li]
		// Pair same-site, same-direction accesses of a and b.
		partner := make(map[int]int) // a-side ID -> b-side ID
		taken := make(map[int]bool)  // b-side IDs consumed by a pair
		for _, aa := range l.Accesses {
			if aa.Group != a || aa.Site == "" {
				continue
			}
			for _, ab := range l.Accesses {
				if ab.Group == b && ab.Site == aa.Site && ab.Write == aa.Write && !taken[ab.ID] {
					partner[aa.ID] = ab.ID
					taken[ab.ID] = true
					break
				}
			}
		}
		var rebuilt []spec.Access
		remap := make(map[int]int)
		for _, acc := range l.Accesses {
			if taken[acc.ID] {
				continue // b-side of a pair: folded into the a-side
			}
			switch {
			case acc.Group == a && hasPartner(partner, acc.ID):
				pb := l.Accesses[partner[acc.ID]]
				na := acc
				na.Group = merged
				na.Count = (acc.Count + pb.Count) / 2
				na.Deps = unionDeps(acc.Deps, pb.Deps)
				remap[acc.ID] = len(rebuilt)
				remap[pb.ID] = len(rebuilt)
				na.ID = len(rebuilt)
				rebuilt = append(rebuilt, na)
			case acc.Group == a || acc.Group == b:
				acc.Group = merged
				if acc.Write {
					// Single-field write: fetch the record first.
					rd := spec.Access{
						ID:     len(rebuilt),
						Group:  merged,
						Count:  acc.Count,
						Deps:   append([]int(nil), acc.Deps...),
						Site:   acc.Site,
						Branch: acc.Branch,
					}
					rebuilt = append(rebuilt, rd)
					acc.Deps = append(append([]int(nil), acc.Deps...), -1-rd.ID)
				}
				remap[acc.ID] = len(rebuilt)
				acc.ID = len(rebuilt)
				rebuilt = append(rebuilt, acc)
			default:
				remap[acc.ID] = len(rebuilt)
				acc.ID = len(rebuilt)
				rebuilt = append(rebuilt, acc)
			}
		}
		finishRemap(l, rebuilt, remap)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("bgstruct: merging produced invalid spec: %w", err)
	}
	return out, nil
}

func hasPartner(m map[int]int, id int) bool {
	_, ok := m[id]
	return ok
}

// finishRemap rewrites dependence edges of the rebuilt access list: plain
// IDs go through remap, negative markers (-1-newID) are already new IDs.
func finishRemap(l *spec.Loop, rebuilt []spec.Access, remap map[int]int) {
	for i := range rebuilt {
		seen := make(map[int]bool)
		var deps []int
		for _, d := range rebuilt[i].Deps {
			nd := d
			if d < 0 {
				nd = -1 - d
			} else {
				nd = remap[d]
			}
			if nd != i && !seen[nd] {
				seen[nd] = true
				deps = append(deps, nd)
			}
		}
		sort.Ints(deps)
		rebuilt[i].Deps = deps
		rebuilt[i].ID = i
	}
	l.Accesses = rebuilt
}

func unionDeps(a, b []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, d := range a {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, d := range b {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}
