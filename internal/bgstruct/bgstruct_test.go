package bgstruct

import (
	"math"
	"testing"

	"repro/internal/spec"
)

// ridgePyrSpec mimics the paper's situation: an 8-bit pyr and a 2-bit ridge
// array, read together at one site and written together at another, plus an
// extra ridge-only write site.
func ridgePyrSpec(t *testing.T) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("rp")
	b.Group("pyr", 1024, 8)
	b.Group("ridge", 1024, 2)
	b.Group("other", 64, 8)
	b.Loop("body", 1000)
	pr := b.ReadSite("pyr", "ctx", 1)
	rr := b.ReadSite("ridge", "ctx", 1)
	x := b.Read("other", 1, pr, rr)
	b.WriteSite("pyr", "store", 1, x)
	b.WriteSite("ridge", "store", 1, x)
	b.Write("ridge", 0.5, x) // ridge-only update site
	return b.MustBuild()
}

func TestMergeCollapsesPairs(t *testing.T) {
	s := ridgePyrSpec(t)
	m, err := Merge(s, "pyr", "ridge", "pyrridge")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g, ok := m.Group("pyrridge")
	if !ok {
		t.Fatal("merged group missing")
	}
	if g.Bits != 10 || g.Words != 1024 {
		t.Fatalf("merged group = %+v, want 1024x10", g)
	}
	if _, ok := m.Group("pyr"); ok {
		t.Fatal("pyr still present")
	}
	if _, ok := m.Group("ridge"); ok {
		t.Fatal("ridge still present")
	}
	// Before: pyr 2 accesses + ridge 2.5 accesses = 4.5 per iteration.
	// After: ctx pair -> 1 read; store pair -> 1 write; ridge-only write
	// 0.5 -> RMW 1.0. Total 3.0 per iteration.
	got := float64(m.AccessesPerFrame("pyrridge")) / 1000
	if math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("merged accesses/iter = %v, want 3.0", got)
	}
	// Merging must reduce total traffic here.
	if m.TotalAccesses() >= s.TotalAccesses() {
		t.Fatalf("merge did not reduce accesses: %d -> %d",
			s.TotalAccesses(), m.TotalAccesses())
	}
}

func TestMergePreservesOrderingConstraints(t *testing.T) {
	s := ridgePyrSpec(t)
	m, err := Merge(s, "pyr", "ridge", "pr")
	if err != nil {
		t.Fatal(err)
	}
	l := m.Loops[0]
	// Find the 'other' read: it must still depend on the merged ctx read.
	var ctxID = -1
	for _, a := range l.Accesses {
		if a.Site == "ctx" {
			ctxID = a.ID
		}
	}
	if ctxID < 0 {
		t.Fatal("merged ctx access missing")
	}
	found := false
	for _, a := range l.Accesses {
		if a.Group == "other" {
			for _, d := range a.Deps {
				if d == ctxID {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("dependence on merged access lost")
	}
}

func TestMergeErrors(t *testing.T) {
	s := ridgePyrSpec(t)
	if _, err := Merge(s, "pyr", "nope", "x"); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := Merge(s, "nope", "ridge", "x"); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := Merge(s, "pyr", "other", "x"); err == nil {
		t.Error("word-count mismatch accepted")
	}
	if _, err := Merge(s, "pyr", "ridge", "other"); err == nil {
		t.Error("name collision accepted")
	}
	b := spec.NewBuilder("wide")
	b.Group("a", 8, 40).Group("b", 8, 32)
	b.Loop("l", 1)
	b.Read("a", 1)
	b.Read("b", 1)
	ws := b.MustBuild()
	if _, err := Merge(ws, "a", "b", "ab"); err == nil {
		t.Error("72-bit merge accepted")
	}
}

func TestMergeLeavesOriginalUntouched(t *testing.T) {
	s := ridgePyrSpec(t)
	before := s.TotalAccesses()
	if _, err := Merge(s, "pyr", "ridge", "pr"); err != nil {
		t.Fatal(err)
	}
	if s.TotalAccesses() != before {
		t.Fatal("Merge mutated its input")
	}
	if _, ok := s.Group("pyr"); !ok {
		t.Fatal("input spec lost a group")
	}
}

func TestCompactReducesAccesses(t *testing.T) {
	s := ridgePyrSpec(t)
	c, err := Compact(s, "ridge", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	g, _ := c.Group("ridge")
	if g.Bits != 6 {
		t.Fatalf("compacted width = %d, want 6", g.Bits)
	}
	if g.Words != (1024+2)/3 {
		t.Fatalf("compacted words = %d, want %d", g.Words, (1024+2)/3)
	}
	// ridge before: 1 read + 1.5 writes = 2.5/iter.
	// After: reads 1/3; writes 1.5/3 = 0.5 with 0.5 extra reads -> 1.333.
	got := float64(c.AccessesPerFrame("ridge")) / 1000
	want := 1.0/3 + 0.5 + 0.5
	if math.Abs(got-want) > 1e-2 {
		t.Fatalf("compacted accesses/iter = %v, want %v", got, want)
	}
	if c.TotalAccesses() >= s.TotalAccesses() {
		t.Fatal("compaction did not reduce total accesses")
	}
}

func TestCompactWriteGetsReadModifyWrite(t *testing.T) {
	b := spec.NewBuilder("w")
	b.Group("n", 128, 2)
	b.Loop("l", 10)
	b.Write("n", 1)
	s := b.MustBuild()
	c, err := Compact(s, "n", 4)
	if err != nil {
		t.Fatal(err)
	}
	l := c.Loops[0]
	if len(l.Accesses) != 2 {
		t.Fatalf("%d accesses, want 2 (read + write)", len(l.Accesses))
	}
	var rd, wr *spec.Access
	for i := range l.Accesses {
		if l.Accesses[i].Write {
			wr = &l.Accesses[i]
		} else {
			rd = &l.Accesses[i]
		}
	}
	if rd == nil || wr == nil {
		t.Fatal("missing read or write")
	}
	hasDep := false
	for _, d := range wr.Deps {
		if d == rd.ID {
			hasDep = true
		}
	}
	if !hasDep {
		t.Fatal("compacted write does not depend on its fetch read")
	}
}

func TestCompactErrors(t *testing.T) {
	s := ridgePyrSpec(t)
	if _, err := Compact(s, "ridge", 1); err == nil {
		t.Error("factor 1 accepted")
	}
	if _, err := Compact(s, "ghost", 2); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := Compact(s, "pyr", 9); err == nil {
		t.Error("72-bit compaction accepted")
	}
}

func TestCompactPreservesOtherGroups(t *testing.T) {
	s := ridgePyrSpec(t)
	c, err := Compact(s, "ridge", 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.AccessesPerFrame("pyr") != s.AccessesPerFrame("pyr") {
		t.Fatal("compaction changed pyr accesses")
	}
	if c.AccessesPerFrame("other") != s.AccessesPerFrame("other") {
		t.Fatal("compaction changed other accesses")
	}
}

func TestMergeUnpairedReadsJustRetarget(t *testing.T) {
	b := spec.NewBuilder("u")
	b.Group("a", 64, 4).Group("b", 64, 4)
	b.Loop("l", 100)
	b.Read("a", 1) // no site: unpaired
	b.Read("b", 1)
	s := b.MustBuild()
	m, err := Merge(s, "a", "b", "ab")
	if err != nil {
		t.Fatal(err)
	}
	// Two unpaired reads: both retarget, no extra accesses.
	if got := m.AccessesPerFrame("ab"); got != 200 {
		t.Fatalf("merged accesses = %d, want 200", got)
	}
}
