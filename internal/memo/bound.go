package memo

// Bounded tier: per-keyspace byte caps with CLOCK (second-chance) eviction.
//
// An unbounded session cache OOMs a long-lived daemon under sustained
// diverse traffic — every distinct spec, budget point and schedule stays
// resident forever. Bound caps one keyspace at a byte budget; when a new
// cacheable result would push the space over its cap, resident entries are
// evicted (least-recently-referenced first, by CLOCK approximation) until
// it fits. Two invariants hold, both pinned by property tests:
//
//   - bytesHeld never exceeds capBytes, at any instant: room is made
//     *before* the new entry's bytes are accounted, and every increment
//     happens under evictMu.
//   - an in-flight singleflight entry is never evicted: the sweep skips
//     entries whose bytes are still 0 (bytes is written by retain, before
//     done is closed), so waiters can never lose the computation they are
//     blocked on.
//
// An unbounded space (the default) takes none of these paths: retain
// returns immediately and Do's hit path only checks capBytes.

// Sized lets cached values report their retained footprint for byte
// accounting. Values that do not implement Sized are estimated from their
// dynamic type (exact for []byte and string payloads, a flat guess
// otherwise — accounting only needs the same number added and removed).
type Sized interface {
	CacheBytes() int
}

// entryOverhead approximates the fixed per-entry cost: the map slot, the
// entry struct and its done channel.
const entryOverhead = 160

// defaultValueSize is the estimate for values that are neither Sized nor a
// byte/string payload (schedules, pattern sets, port maps).
const defaultValueSize = 256

func sizeOf(key string, val any) int64 {
	n := int64(len(key)) + entryOverhead
	switch v := val.(type) {
	case Sized:
		return n + int64(v.CacheBytes())
	case []byte:
		return n + int64(len(v))
	case string:
		return n + int64(len(v))
	}
	return n + defaultValueSize
}

// Bound caps the bytes one keyspace may retain; entries are evicted
// CLOCK-wise to stay under the cap. maxBytes <= 0 leaves the space
// unbounded. Call before the cache is used concurrently (like Observe);
// safe on a nil Cache.
func (c *Cache) Bound(sp Space, maxBytes int64) {
	if c == nil || maxBytes <= 0 {
		return
	}
	c.spaces[sp].capBytes = maxBytes
}

// touch marks an entry recently used (the CLOCK reference bit). Only
// bounded spaces pay the atomic store.
func (s *space) touch(e *entry) {
	if s.capBytes > 0 {
		e.ref.Store(true)
	}
}

// retain accounts a freshly computed (or disk-promoted) entry against the
// space's byte cap, evicting older entries first so bytesHeld never
// exceeds the cap. When room cannot be made — the value alone is larger
// than the cap, or everything resident is in flight — the entry is removed
// from the map instead: waiters still read its value (ok is true), later
// callers recompute. No-op for unbounded spaces.
func (s *space) retain(sh *shard, key string, e *entry) {
	if s.capBytes <= 0 {
		return
	}
	size := sizeOf(key, e.val)
	s.evictMu.Lock()
	if s.makeRoom(size) {
		e.bytes = size
		s.bytesHeld.Add(size)
		s.evictMu.Unlock()
		return
	}
	s.evictMu.Unlock()
	s.oversize.Add(1)
	s.lock(sh)
	if sh.m[key] == e {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// makeRoom evicts resident entries until need more bytes fit under the
// cap. Called under evictMu. The CLOCK sweep walks the shards from the
// hand; a set reference bit buys the entry one more pass, in-flight
// entries (bytes still 0) are never candidates. Three full passes bound
// the sweep: the first two give every resident entry its second chance,
// the third catches entries re-referenced mid-sweep. Returns false when
// the space still cannot fit need bytes (then the caller must not account
// the entry).
func (s *space) makeRoom(need int64) bool {
	if need > s.capBytes {
		return false
	}
	target := s.capBytes - need
	if s.bytesHeld.Load() <= target {
		return true
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < shardCount; i++ {
			sh := &s.shards[s.hand]
			s.hand = (s.hand + 1) % shardCount
			s.lock(sh)
			for k, e := range sh.m {
				if e.bytes == 0 {
					continue // in flight: never evict a singleflight target
				}
				if e.ref.CompareAndSwap(true, false) {
					continue // recently used: second chance
				}
				delete(sh.m, k)
				s.bytesHeld.Add(-e.bytes)
				s.evictions.Add(1)
				if s.bytesHeld.Load() <= target {
					sh.mu.Unlock()
					return true
				}
			}
			sh.mu.Unlock()
		}
		if s.bytesHeld.Load() <= target {
			return true
		}
	}
	return s.bytesHeld.Load() <= target
}
