package memo

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// --- the crash/corruption corpus ---
//
// testdata/cachecorpus holds committed log files covering every recovery
// class the replay path claims to handle: clean logs, duplicate keys, torn
// headers and payloads (what kill -9 mid-append leaves), flipped bits, an
// absurd length field, a foreign file. The files are generated — run
//
//	go test ./internal/memo -run TestRegenCacheCorpus -regen-corpus
//
// to rewrite them; TestCacheCorpusCommitted pins the committed bytes to the
// generators so the corpus cannot drift silently.

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite testdata/cachecorpus from the generators")

const corpusDir = "testdata/cachecorpus"

// corpusRecord builds one well-formed log record.
func corpusRecord(sp Space, key, val string) []byte {
	payload := make([]byte, payloadMin+len(key)+len(val))
	payload[0] = byte(sp)
	binary.LittleEndian.PutUint32(payload[1:payloadMin], uint32(len(key)))
	copy(payload[payloadMin:], key)
	copy(payload[payloadMin+len(key):], val)
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeader:], payload)
	return buf
}

// corpusCase is one committed log with its expected recovery outcome.
type corpusCase struct {
	data      []byte
	openErr   bool                        // OpenDiskTier must fail
	replayed  int64                       // records recovered
	truncated int64                       // torn/corrupt tail bytes dropped
	live      map[Space]map[string]string // expected index after replay
}

func corpusCases() map[string]corpusCase {
	r1 := corpusRecord(Schedule, "alpha", "value-alpha")
	r2 := corpusRecord(Requests, "beta", "value-beta")
	r3 := corpusRecord(Schedule, "gamma", string(bytes.Repeat([]byte{'g'}, 600)))
	valid := append([]byte(logMagic), r1...)
	valid = append(valid, r2...)
	valid = append(valid, r3...)
	validLive := map[Space]map[string]string{
		Schedule: {"alpha": "value-alpha", "gamma": string(bytes.Repeat([]byte{'g'}, 600))},
		Requests: {"beta": "value-beta"},
	}

	dup := append([]byte(logMagic), corpusRecord(Requests, "dup", "first")...)
	dup = append(dup, corpusRecord(Requests, "dup", "second")...)
	dup = append(dup, corpusRecord(Requests, "dup", "final")...)
	dup = append(dup, corpusRecord(Schedule, "other", "ok")...)

	tornHeader := append(append([]byte{}, valid...), 0x01, 0x02, 0x03, 0x04, 0x05)

	tornPayload := append([]byte{}, valid...)
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100) // claims 100 payload bytes...
	binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	tornPayload = append(tornPayload, hdr[:]...)
	tornPayload = append(tornPayload, bytes.Repeat([]byte{0xaa}, 40)...) // ...delivers 40

	flipTail := append([]byte{}, valid...)
	flipTail[len(flipTail)-300] ^= 0x01 // inside r3's payload: CRC must catch it

	flipMid := append([]byte{}, valid...)
	flipMid[len(logMagic)+len(r1)+recordHeader+payloadMin] ^= 0x01 // r2's key byte

	badLen := append([]byte(logMagic), r1...)
	var badHdr [recordHeader]byte
	binary.LittleEndian.PutUint32(badHdr[0:4], maxRecordSize+1)
	badLen = append(badLen, badHdr[:]...)
	badLen = append(badLen, bytes.Repeat([]byte{0xbb}, 10)...)

	return map[string]corpusCase{
		"valid.log": {data: valid, replayed: 3, live: validLive},
		"duplicates.log": {data: dup, replayed: 4, live: map[Space]map[string]string{
			Requests: {"dup": "final"},
			Schedule: {"other": "ok"},
		}},
		"torn_header.log":  {data: tornHeader, replayed: 3, truncated: 5, live: validLive},
		"torn_payload.log": {data: tornPayload, replayed: 3, truncated: recordHeader + 40, live: validLive},
		"bitflip_tail.log": {data: flipTail, replayed: 2, truncated: int64(len(r3)), live: map[Space]map[string]string{
			Schedule: {"alpha": "value-alpha"},
			Requests: {"beta": "value-beta"},
		}},
		"bitflip_mid.log": {data: flipMid, replayed: 1, truncated: int64(len(r2) + len(r3)), live: map[Space]map[string]string{
			Schedule: {"alpha": "value-alpha"},
		}},
		"badlen.log": {data: badLen, replayed: 1, truncated: recordHeader + 10, live: map[Space]map[string]string{
			Schedule: {"alpha": "value-alpha"},
		}},
		"magiconly.log": {data: []byte(logMagic)},
		"empty.log":     {data: []byte{}},
		"badmagic.log":  {data: []byte("NOTACACHELOG\n"), openErr: true},
	}
}

func TestRegenCacheCorpus(t *testing.T) {
	if !*regenCorpus {
		t.Skip("pass -regen-corpus to rewrite testdata/cachecorpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, c := range corpusCases() {
		if err := os.WriteFile(filepath.Join(corpusDir, name), c.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheCorpusCommitted pins the committed corpus files byte-for-byte to
// the generators, so an edit to either side fails loudly instead of testing
// stale bytes.
func TestCacheCorpusCommitted(t *testing.T) {
	cases := corpusCases()
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/memo -run TestRegenCacheCorpus -regen-corpus)", err)
	}
	for _, e := range entries {
		if _, ok := cases[e.Name()]; !ok {
			t.Errorf("unexpected corpus file %s (not generated by corpusCases)", e.Name())
		}
	}
	for name, c := range cases {
		got, err := os.ReadFile(filepath.Join(corpusDir, name))
		if err != nil {
			t.Fatalf("%v (run: go test ./internal/memo -run TestRegenCacheCorpus -regen-corpus)", err)
		}
		if !bytes.Equal(got, c.data) {
			t.Errorf("%s: committed bytes differ from generator (rerun -regen-corpus)", name)
		}
	}
}

// stageCorpus copies one corpus file into a fresh dir as the live log —
// replay truncates torn tails in place, and the committed testdata must
// never be mutated by a test run.
func stageCorpus(t *testing.T, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCacheCorpusReplay drives every corpus file through open/replay and
// checks the recovery contract: exactly the expected records survive, torn
// tails are truncated (not fatal), every survivor re-verifies on Get, and
// the recovered log accepts and persists new appends.
func TestCacheCorpusReplay(t *testing.T) {
	names := make([]string, 0)
	cases := corpusCases()
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cases[name]
		t.Run(name, func(t *testing.T) {
			dir := stageCorpus(t, c.data)
			d, err := OpenDiskTier(dir)
			if c.openErr {
				if err == nil {
					d.Close()
					t.Fatal("OpenDiskTier accepted a non-log file")
				}
				return
			}
			if err != nil {
				t.Fatalf("OpenDiskTier: %v", err)
			}
			st := d.Stats()
			if st.Replayed != c.replayed || st.Truncated != c.truncated {
				t.Fatalf("replayed %d truncated %d, want %d / %d",
					st.Replayed, st.Truncated, c.replayed, c.truncated)
			}
			wantLive := 0
			for sp, kv := range c.live {
				wantLive += len(kv)
				for key, val := range kv {
					got, ok := d.Get(sp, key)
					if !ok || string(got) != val {
						t.Fatalf("Get(%v, %q) = %q, %v; want %q", sp, key, got, ok, val)
					}
				}
			}
			if st.Records != wantLive {
				t.Fatalf("Records = %d, want %d", st.Records, wantLive)
			}
			// The recovered log stays appendable, and the append survives a
			// second replay alongside the recovered records.
			if !d.Put(Ports, "post-recovery", []byte("pr")) {
				t.Fatal("Put on recovered log refused")
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := OpenDiskTier(dir)
			if err != nil {
				t.Fatalf("reopen after recovery+append: %v", err)
			}
			defer d2.Close()
			if v, ok := d2.Get(Ports, "post-recovery"); !ok || string(v) != "pr" {
				t.Fatal("record appended after recovery was lost")
			}
			for sp, kv := range c.live {
				for key, val := range kv {
					if got, ok := d2.Get(sp, key); !ok || string(got) != val {
						t.Fatalf("after reopen: Get(%v, %q) = %q, %v; want %q", sp, key, got, ok, val)
					}
				}
			}
		})
	}
}

// --- tier behavior ---

func TestDiskTierPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if !d.Put(Requests, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("Put %d refused", i)
		}
	}
	d.Put(Requests, "k3", []byte("v3-rewritten")) // duplicate key: last wins
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 21 || st.Dropped != 0 {
		t.Fatalf("writes %d dropped %d, want 21 / 0", st.Writes, st.Dropped)
	}

	d2, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	st = d2.Stats()
	if st.Replayed != 21 || st.Records != 20 || st.Truncated != 0 {
		t.Fatalf("reopen stats %+v, want 21 replayed, 20 live, 0 truncated", st)
	}
	if v, ok := d2.Get(Requests, "k3"); !ok || string(v) != "v3-rewritten" {
		t.Fatalf("Get(k3) = %q, %v; want the last write", v, ok)
	}
	if v, ok := d2.Get(Requests, "k7"); !ok || string(v) != "v7" {
		t.Fatalf("Get(k7) = %q, %v", v, ok)
	}
	if _, ok := d2.Get(Schedule, "k7"); ok {
		t.Fatal("key leaked across keyspaces")
	}
}

// TestDiskTierReadTimeCorruptionIsAMiss: a bit flipped after replay (disk
// rot under a running daemon) is caught by the read-time CRC — the Get is a
// miss, the index entry is dropped, and no corrupt value escapes.
func TestDiskTierReadTimeCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(Requests, "key", []byte("pristine-value"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len(Requests) != 1 {
		t.Fatalf("Len = %d, want 1", d2.Len(Requests))
	}
	// Flip a value byte behind the tier's back.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	valOff := int64(len(logMagic) + recordHeader + payloadMin + len("key"))
	buf := []byte{0}
	if _, err := f.ReadAt(buf, valOff); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x04
	if _, err := f.WriteAt(buf, valOff); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if v, ok := d2.Get(Requests, "key"); ok {
		t.Fatalf("Get returned %q from a corrupted record", v)
	}
	st := d2.Stats()
	if st.ReadErrs != 1 || st.Records != 0 {
		t.Fatalf("stats %+v, want 1 read error and the record dropped", st)
	}
	if _, ok := d2.Get(Requests, "key"); ok {
		t.Fatal("dropped record came back")
	}
}

func TestDiskTierOversizeRecordDropped(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Put(Requests, "huge", make([]byte, maxRecordSize)) {
		t.Fatal("Put accepted a record beyond maxRecordSize")
	}
	if st := d.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestDiskTierNilSafe(t *testing.T) {
	var d *DiskTier
	if _, ok := d.Get(Schedule, "k"); ok {
		t.Fatal("nil Get hit")
	}
	if d.Put(Schedule, "k", nil) {
		t.Fatal("nil Put accepted")
	}
	d.Range(Schedule, func(string, []byte) bool { t.Fatal("nil Range called fn"); return false })
	if d.Len(Schedule) != 0 || d.Path() != "" {
		t.Fatal("nil Len/Path nonzero")
	}
	if (d.Stats() != DiskStats{}) {
		t.Fatal("nil Stats nonzero")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskTierCloseIdempotentAndPutAfterClose(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Put(Requests, "k", []byte("v")) {
		t.Fatal("Put accepted after Close")
	}
}

func TestDiskTierRange(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put(Requests, "a", []byte("1"))
	d.Put(Requests, "b", []byte("2"))
	d.Put(Schedule, "c", []byte("3"))
	// Writes are write-behind; poll until the background writer has indexed
	// them (bounded, so a stuck writer fails instead of hanging).
	deadline := time.Now().Add(5 * time.Second)
	for d.Len(Requests) < 2 || d.Len(Schedule) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("writer did not index the queued records")
		}
		time.Sleep(time.Millisecond)
	}
	got := map[string]string{}
	d.Range(Requests, func(k string, v []byte) bool { got[k] = string(v); return true })
	if len(got) != 2 || got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("Range(Requests) = %v", got)
	}
	n := 0
	d.Range(Requests, func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored fn returning false (visited %d)", n)
	}
}

// --- cache <-> disk integration ---

func byteCodec() (func(any) ([]byte, bool), func([]byte) (any, bool)) {
	enc := func(v any) ([]byte, bool) { b, ok := v.([]byte); return b, ok }
	dec := func(b []byte) (any, bool) { return b, true }
	return enc, dec
}

// TestAttachDiskPromotion: a fresh process's cache miss is answered from
// the disk tier without recomputing, the record is promoted into the memory
// tier, and the stats tell the story (DiskHits, then a plain memory hit).
func TestAttachDiskPromotion(t *testing.T) {
	dir := t.TempDir()
	enc, dec := byteCodec()

	d, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.AttachDisk(Ports, d, enc, dec)
	computes := 0
	v := c.Do(Ports, "k", func() (any, bool) { computes++; return []byte("hello"), true })
	if string(v.([]byte)) != "hello" || computes != 1 {
		t.Fatalf("first Do = %q (computes %d)", v, computes)
	}
	if st := c.Stats(Ports); st.DiskWrites != 1 {
		t.Fatalf("DiskWrites = %d, want 1", st.DiskWrites)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new cache over the same log.
	d2, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	c2 := New()
	c2.AttachDisk(Ports, d2, enc, dec)
	v2 := c2.Do(Ports, "k", func() (any, bool) {
		t.Error("compute ran despite a disk record")
		return nil, false
	})
	if string(v2.([]byte)) != "hello" {
		t.Fatalf("disk-tier Do = %q, want hello", v2)
	}
	st := c2.Stats(Ports)
	if st.DiskHits != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v, want 1 disk hit under 1 memory miss", st)
	}
	// Promoted: the next Do is a pure memory hit, no disk read.
	before := d2.Stats().Hits
	c2.Do(Ports, "k", func() (any, bool) { t.Error("recompute after promotion"); return nil, false })
	if st := c2.Stats(Ports); st.Hits != 1 {
		t.Fatalf("after promotion: Hits = %d, want 1", st.Hits)
	}
	if after := d2.Stats().Hits; after != before {
		t.Fatalf("promotion did not stick: disk hits %d -> %d", before, after)
	}
}

// TestAttachDiskEncDeclines: values the codec declines stay memory-only.
func TestAttachDiskEncDeclines(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := New()
	enc := func(any) ([]byte, bool) { return nil, false }
	_, dec := byteCodec()
	c.AttachDisk(Schedule, d, enc, dec)
	c.Do(Schedule, "k", func() (any, bool) { return []byte("v"), true })
	if st := c.Stats(Schedule); st.DiskWrites != 0 {
		t.Fatalf("DiskWrites = %d for a declined value", st.DiskWrites)
	}
}
