package memo

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCacheLogReplay feeds arbitrary bytes to the disk tier as a cache log.
// The recovery contract under fuzz: opening never panics, every record the
// replay accepts re-verifies on read (no checksum-failing record is ever
// served), and the recovered log remains appendable — a fresh append
// survives a second replay. The committed corpus doubles as the seed set.
func FuzzCacheLogReplay(f *testing.F) {
	for _, c := range corpusCases() {
		f.Add(c.data)
	}
	// A log whose last record's length field points past the written bytes.
	short := append([]byte(logMagic), corpusRecord(Schedule, "k", "v")...)
	f.Add(short[:len(short)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDiskTier(dir)
		if err != nil {
			return // rejecting a foreign file is fine; panicking is not
		}
		for sp := Space(0); sp < numSpaces; sp++ {
			d.Range(sp, func(key string, val []byte) bool {
				got, ok := d.Get(sp, key)
				if !ok {
					t.Fatalf("replayed record (space %v, key %q) fails re-verification", sp, key)
				}
				if string(got) != string(val) {
					t.Fatalf("Get(%v, %q) disagrees with Range", sp, key)
				}
				return true
			})
		}
		if !d.Put(Schedule, "fuzz-probe", []byte("probe-val")) {
			t.Fatal("Put refused on a recovered log")
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		d2, err := OpenDiskTier(dir)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer d2.Close()
		if v, ok := d2.Get(Schedule, "fuzz-probe"); !ok || string(v) != "probe-val" {
			t.Fatal("record appended after recovery was lost on replay")
		}
	})
}
