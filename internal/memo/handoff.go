package memo

// Shard handoff support: when cluster ownership of a fingerprint range
// moves (a node joins, leaves, or is confirmed dead), the old owner exports
// its records for the moved keys and the new owner imports them, so the
// receiving node starts hot instead of recomputing a shard's worth of
// cache. The memo layer stays cluster-agnostic: callers express "owned" as
// a key predicate.

// Export calls fn for every live record of one keyspace whose key satisfies
// pred (checksum-verified, last write per key, order unspecified) until fn
// returns false. Returns the number of records fn accepted. Safe on a nil
// tier.
func (d *DiskTier) Export(sp Space, pred func(key string) bool, fn func(key string, val []byte) bool) int {
	if d == nil {
		return 0
	}
	n := 0
	d.Range(sp, func(key string, val []byte) bool {
		if pred != nil && !pred(key) {
			return true
		}
		n++
		return fn(key, val)
	})
	return n
}

// Import appends one record received via shard handoff. Identical to Put on
// the log, but counted separately (DiskStats.Imported) so handoff
// effectiveness is observable apart from organic write traffic. Safe on a
// nil tier.
func (d *DiskTier) Import(sp Space, key string, val []byte) bool {
	if d == nil {
		return false
	}
	if !d.Put(sp, key, val) {
		return false
	}
	d.imported.Add(1)
	return true
}

// Seed inserts a completed, cacheable value into the memory tier when the
// key is absent — the no-disk receiving side of a handoff. An existing
// entry (completed or in flight) always wins: handoff must never clobber a
// fresher local result or break a singleflight in progress. The entry is
// byte-accounted like any computed result, so bounded spaces keep their
// cap. Returns true when the value was installed. Safe on a nil Cache.
func (c *Cache) Seed(sp Space, key string, val any) bool {
	if c == nil {
		return false
	}
	s := &c.spaces[sp]
	sh := s.shardFor(key)
	e := &entry{done: make(chan struct{}), val: val, ok: true}
	close(e.done)
	s.lock(sh)
	if _, exists := sh.m[key]; exists {
		sh.mu.Unlock()
		return false
	}
	sh.m[key] = e
	sh.mu.Unlock()
	s.touch(e)
	s.retain(sh, key, e)
	// retain deletes the entry instead of accounting it when it cannot fit
	// under the space's byte cap; report that as a declined seed.
	s.lock(sh)
	installed := sh.m[key] == e
	sh.mu.Unlock()
	return installed
}

// Range calls fn for every completed cacheable entry of one keyspace until
// fn returns false — the exporting side of a handoff for the memory tier.
// In-flight entries are skipped (their value does not exist yet); entries
// completing concurrently may or may not be seen. Values are shared and
// must be treated as immutable. Safe on a nil Cache.
func (c *Cache) Range(sp Space, fn func(key string, val any) bool) {
	if c == nil {
		return
	}
	s := &c.spaces[sp]
	for i := range s.shards {
		sh := &s.shards[i]
		s.lock(sh)
		keys := make([]string, 0, len(sh.m))
		entries := make([]*entry, 0, len(sh.m))
		for k, e := range sh.m {
			keys = append(keys, k)
			entries = append(entries, e)
		}
		sh.mu.Unlock()
		for j, e := range entries {
			select {
			case <-e.done:
			default:
				continue // in flight
			}
			if !e.ok {
				continue
			}
			if !fn(keys[j], e.val) {
				return
			}
		}
	}
}
