// Package memo provides the cross-variant evaluation cache of one
// exploration session.
//
// The paper's methodology lives on fast re-evaluation: the designer changes
// one decision (a structuring transform, a hierarchy layer, a budget point,
// an allocation count) and the physical-memory-management stage re-derives
// the cost feedback. Most of that work is identical between neighbouring
// variants — a loop untouched by the transform balances to the same
// schedule, a budget point that clamps a loop to its minimum re-derives the
// same curve, two steps prune the same conflict-pattern set. This package
// memoizes those subproblems in a per-session cache keyed by canonical
// fingerprints, so a sweep pays for each distinct subproblem once.
//
// The cache is concurrency-safe and deduplicates in-flight computations
// (singleflight): when the parallel sweep goroutines request the same key
// simultaneously, one computes and the others wait for its result instead
// of redoing the work. A nil *Cache is valid everywhere and disables
// caching: Do simply invokes compute, the same idiom as the nil
// obs.Observer.
package memo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Space is one keyspace of the cache. Keys from different spaces never
// collide even when their strings are equal.
type Space int

// The keyspaces of the exploration session cache.
const (
	// Schedule caches sbd.BalanceLoopContext results keyed by the loop's
	// structural fingerprint and the per-iteration budget.
	Schedule Space = iota
	// LoopPatterns caches the per-loop conflict-pattern contribution of a
	// committed schedule (the inner loop of sbd.PatternsOf).
	LoopPatterns
	// PrunedPatterns caches sbd.PrunePatterns results keyed by the pattern
	// multiset.
	PrunedPatterns
	// Ports caches sbd.RequiredPorts results keyed by the pattern multiset.
	Ports

	numSpaces
)

// String names the keyspace (used for telemetry labels).
func (s Space) String() string {
	switch s {
	case Schedule:
		return "schedule"
	case LoopPatterns:
		return "loop_patterns"
	case PrunedPatterns:
		return "pruned_patterns"
	case Ports:
		return "ports"
	default:
		return fmt.Sprintf("space%d", int(s))
	}
}

// Stats is the hit/miss/dedup accounting of one keyspace.
type Stats struct {
	Hits          int64 // Do calls answered from the cache
	Misses        int64 // Do calls that ran compute
	InflightWaits int64 // Do calls that waited for a concurrent compute
	Entries       int   // cached values currently held
}

// HitRate returns hits / (hits + misses), or 0 when the space is untouched.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one slot of a keyspace: done is closed when the computation
// finished, after val (and ok, the cacheable flag) were written — the
// close/receive pair orders the reads.
type entry struct {
	done chan struct{}
	val  any
	ok   bool
}

type space struct {
	mu sync.Mutex
	m  map[string]*entry

	hits, misses, waits atomic.Int64
}

// Cache is one exploration session's memoization state. Values stored in
// the cache are shared between callers and must be treated as immutable.
type Cache struct {
	spaces [numSpaces]space
}

// New returns an empty session cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.spaces {
		c.spaces[i].m = make(map[string]*entry)
	}
	return c
}

// Do returns the value for key in the given keyspace, running compute on a
// miss. compute returns the value and whether it may be cached: a result
// degraded by a canceled context must report false, so that later callers
// with a live context recompute it. Concurrent Do calls with the same key
// share one compute (singleflight); when that compute turns out
// uncacheable, its waiters fall back to computing for themselves.
//
// Safe on a nil Cache: compute runs unconditionally and nothing is
// recorded.
func (c *Cache) Do(sp Space, key string, compute func() (val any, cacheable bool)) any {
	if c == nil {
		v, _ := compute()
		return v
	}
	s := &c.spaces[sp]
	for {
		s.mu.Lock()
		if e, found := s.m[key]; found {
			select {
			case <-e.done: // finished: a plain hit
				s.mu.Unlock()
				s.hits.Add(1)
				return e.val
			default: // in flight: wait for the computing goroutine
			}
			s.mu.Unlock()
			s.waits.Add(1)
			<-e.done
			if e.ok {
				s.hits.Add(1)
				return e.val
			}
			continue // uncacheable result: compute for ourselves
		}
		e := &entry{done: make(chan struct{})}
		s.m[key] = e
		s.mu.Unlock()
		s.misses.Add(1)
		val, cacheable := compute()
		e.val, e.ok = val, cacheable
		if !cacheable {
			s.mu.Lock()
			delete(s.m, key)
			s.mu.Unlock()
		}
		close(e.done)
		return val
	}
}

// Stats returns the accounting of one keyspace.
func (c *Cache) Stats(sp Space) Stats {
	if c == nil {
		return Stats{}
	}
	s := &c.spaces[sp]
	s.mu.Lock()
	n := len(s.m)
	s.mu.Unlock()
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		InflightWaits: s.waits.Load(),
		Entries:       n,
	}
}

// Publish snapshots the per-keyspace counters into the observer as gauges
// (memo.hits{space=...}, memo.misses{...}, memo.inflight_waits{...},
// memo.entries{...}), so traces and -stats report the session's hit rates.
// Safe on a nil Cache or nil Observer; idempotent (gauges, not counters).
func (c *Cache) Publish(o *obs.Observer) {
	if c == nil || o == nil {
		return
	}
	for sp := Space(0); sp < numSpaces; sp++ {
		st := c.Stats(sp)
		if st.Hits+st.Misses == 0 {
			continue
		}
		name := sp.String()
		o.Gauge(obs.Label("memo.hits", "space", name)).Set(st.Hits)
		o.Gauge(obs.Label("memo.misses", "space", name)).Set(st.Misses)
		o.Gauge(obs.Label("memo.inflight_waits", "space", name)).Set(st.InflightWaits)
		o.Gauge(obs.Label("memo.entries", "space", name)).Set(int64(st.Entries))
	}
}

// StatsString renders a human-readable per-keyspace summary (the -stats
// view of the cache).
func (c *Cache) StatsString() string {
	if c == nil {
		return "(cache disabled)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %8s %8s\n",
		"keyspace", "hits", "misses", "waits", "entries", "hit-rate")
	names := make([]string, 0, int(numSpaces))
	for sp := Space(0); sp < numSpaces; sp++ {
		names = append(names, sp.String())
	}
	sort.Strings(names) // stable render independent of enum order
	for _, name := range names {
		var sp Space
		for s := Space(0); s < numSpaces; s++ {
			if s.String() == name {
				sp = s
			}
		}
		st := c.Stats(sp)
		fmt.Fprintf(&b, "%-16s %10d %10d %10d %8d %7.1f%%\n",
			name, st.Hits, st.Misses, st.InflightWaits, st.Entries, 100*st.HitRate())
	}
	return b.String()
}
