// Package memo provides the cross-variant evaluation cache of one
// exploration session.
//
// The paper's methodology lives on fast re-evaluation: the designer changes
// one decision (a structuring transform, a hierarchy layer, a budget point,
// an allocation count) and the physical-memory-management stage re-derives
// the cost feedback. Most of that work is identical between neighbouring
// variants — a loop untouched by the transform balances to the same
// schedule, a budget point that clamps a loop to its minimum re-derives the
// same curve, two steps prune the same conflict-pattern set. This package
// memoizes those subproblems in a per-session cache keyed by canonical
// fingerprints, so a sweep pays for each distinct subproblem once.
//
// The cache is concurrency-safe and deduplicates in-flight computations
// (singleflight): when the parallel sweep goroutines request the same key
// simultaneously, one computes and the others wait for its result instead
// of redoing the work. Each keyspace is sharded by key hash so that cache
// hits from many workers do not contend on a single mutex. A nil *Cache is
// valid everywhere and disables caching: Do simply invokes compute, the
// same idiom as the nil obs.Observer.
package memo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Space is one keyspace of the cache. Keys from different spaces never
// collide even when their strings are equal.
type Space int

// The keyspaces of the exploration session cache.
const (
	// Schedule caches sbd.BalanceLoopContext results keyed by the loop's
	// structural fingerprint and the per-iteration budget.
	Schedule Space = iota
	// LoopPatterns caches the per-loop conflict-pattern contribution of a
	// committed schedule (the inner loop of sbd.PatternsOf).
	LoopPatterns
	// PrunedPatterns caches sbd.PrunePatterns results keyed by the pattern
	// multiset.
	PrunedPatterns
	// Ports caches sbd.RequiredPorts results keyed by the pattern multiset.
	Ports
	// Requests caches whole serving-path responses (rendered tables and
	// figures, cost JSON) keyed by the canonical request body, so identical
	// concurrent requests singleflight through one exploration and identical
	// later requests are answered from the session. Only responses whose
	// exploration ran to completion (context never canceled) may be stored.
	Requests

	numSpaces
)

// String names the keyspace (used for telemetry labels).
func (s Space) String() string {
	switch s {
	case Schedule:
		return "schedule"
	case LoopPatterns:
		return "loop_patterns"
	case PrunedPatterns:
		return "pruned_patterns"
	case Ports:
		return "ports"
	case Requests:
		return "requests"
	default:
		return fmt.Sprintf("space%d", int(s))
	}
}

// Stats is the hit/miss/dedup accounting of one keyspace.
type Stats struct {
	Hits          int64 // Do calls answered from the cache
	Misses        int64 // Do calls that ran compute
	InflightWaits int64 // Do calls that waited for a concurrent compute
	Contended     int64 // shard-lock acquisitions that had to block
	Entries       int   // cached values currently held

	// Bounded-tier accounting (zero when the space is unbounded).
	Evictions     int64 // entries evicted to stay under the byte cap
	BytesHeld     int64 // bytes currently retained (never exceeds CapBytes)
	CapBytes      int64 // the byte cap set by Bound (0 = unbounded)
	OversizeDrops int64 // computed values not retained because room could not be made

	// Disk-tier accounting (zero when no disk tier is attached).
	DiskHits   int64 // misses answered from the disk tier instead of compute
	DiskWrites int64 // cacheable results queued to the disk tier
}

// HitRate returns hits / (hits + misses), or 0 when the space is untouched.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one slot of a keyspace shard: done is closed when the
// computation finished, after val (and ok, the cacheable flag) were written
// — the close/receive pair orders the reads.
//
// When a compute finishes uncacheable while callers are blocked on it, the
// computer installs a successor entry (next) in the map before closing
// done: exactly one waiter claims the successor (the claimed CAS) and
// becomes its computer; the rest re-singleflight onto it. This replaces the
// old behaviour where every waiter looped back through the map and raced to
// become the next computer.
type entry struct {
	done    chan struct{}
	val     any
	ok      bool
	next    *entry       // successor installed on uncacheable completion
	waiters atomic.Int64 // callers blocked on done (registered under lock)
	claimed atomic.Bool  // successor takeover: first CAS winner computes

	// Bounded-tier state: bytes is the accounted size, written by retain
	// before done is closed (0 marks the entry in flight or unaccounted —
	// the eviction sweep skips those); ref is the CLOCK reference bit, set
	// on every hit and cleared for a second chance before eviction.
	bytes int64
	ref   atomic.Bool
}

// shardCount is the number of map+mutex shards per keyspace. 64 shards keep
// the parallel search's cache hits from funnelling through one mutex; the
// power of two makes the hash fold a mask.
const shardCount = 64

type shard struct {
	mu sync.Mutex
	m  map[string]*entry
}

type space struct {
	id     Space
	shards [shardCount]shard

	hits, misses, waits, contended atomic.Int64

	// hist, when set by Cache.Observe, records every Do call's time-to-answer
	// (hits in nanoseconds, misses including their compute). Opt-in so bare
	// library use pays nothing.
	hist *obs.Histogram

	// Bounded tier (capBytes set by Cache.Bound before concurrent use;
	// 0 = unbounded, the default). All bytesHeld increments happen under
	// evictMu after room has been made, so bytesHeld never exceeds capBytes.
	capBytes  int64
	bytesHeld atomic.Int64
	evictions atomic.Int64
	oversize  atomic.Int64
	evictMu   sync.Mutex
	hand      int // CLOCK hand: next shard to sweep (guarded by evictMu)

	// Disk tier (set by Cache.AttachDisk before concurrent use; nil = none).
	disk                 *diskCodec
	diskHits, diskWrites atomic.Int64
}

// lock takes the shard mutex, counting acquisitions that had to block (the
// shard-contention telemetry).
func (s *space) lock(sh *shard) {
	if sh.mu.TryLock() {
		return
	}
	s.contended.Add(1)
	sh.mu.Lock()
}

// Fingerprint64 is the cache's canonical 64-bit key fingerprint: FNV-1a
// over the key bytes. It is the one hash behind shard addressing here and
// consistent-hash request routing in cluster mode — sharing it means a
// request's ring owner is also the node whose session/disk cache and
// warm-start index accumulate that key's neighbourhood. Generic over the
// key form so neither caller allocates a conversion.
func Fingerprint64[K ~string | ~[]byte](key K) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// shardIndex folds the fingerprint to the shard mask. Do (string keys) and
// DoKey (byte keys) must address the same shard for equal key bytes, or the
// singleflight/dedup guarantee between the two paths breaks.
func shardIndex[K ~string | ~[]byte](key K) uint64 {
	return Fingerprint64(key) & (shardCount - 1)
}

// shardFor picks the shard of a key (FNV-1a folded to the shard mask).
func (s *space) shardFor(key string) *shard {
	return &s.shards[shardIndex(key)]
}

// shardForBytes is shardFor over the byte form of a key: identical hash, so
// Do and DoKey with equal key bytes land on the same shard.
func (s *space) shardForBytes(key []byte) *shard {
	return &s.shards[shardIndex(key)]
}

// Cache is one exploration session's memoization state. Values stored in
// the cache are shared between callers and must be treated as immutable.
type Cache struct {
	spaces [numSpaces]space
}

// New returns an empty session cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.spaces {
		c.spaces[i].id = Space(i)
		for j := range c.spaces[i].shards {
			c.spaces[i].shards[j].m = make(map[string]*entry)
		}
	}
	return c
}

// Do returns the value for key in the given keyspace, running compute on a
// miss. compute returns the value and whether it may be cached: a result
// degraded by a canceled context must report false, so that later callers
// with a live context recompute it. Concurrent Do calls with the same key
// share one compute (singleflight); when that compute turns out
// uncacheable, exactly one waiter takes over as the next computer and the
// remaining waiters singleflight onto it.
//
// Safe on a nil Cache: compute runs unconditionally and nothing is
// recorded.
func (c *Cache) Do(sp Space, key string, compute func() (val any, cacheable bool)) any {
	if c == nil {
		v, _ := compute()
		return v
	}
	s := &c.spaces[sp]
	if h := s.hist; h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start)) }()
	}
	sh := s.shardFor(key)

	s.lock(sh)
	e, found := sh.m[key]
	if !found {
		e = &entry{done: make(chan struct{})}
		sh.m[key] = e
		sh.mu.Unlock()
		s.misses.Add(1)
		return s.runCompute(sh, key, e, compute)
	}
	select {
	case <-e.done: // finished: a plain hit, or an uncacheable chain to walk
		sh.mu.Unlock()
		if e.ok {
			s.hits.Add(1)
			s.touch(e)
			return e.val
		}
	default: // in flight: register as waiter before releasing the lock, so
		// the computer's handoff decision cannot miss us
		e.waiters.Add(1)
		sh.mu.Unlock()
		s.waits.Add(1)
	}
	return s.doSlow(sh, key, e, compute)
}

// DoKey is Do with the key passed as bytes. The evaluation hot paths build
// their canonical fingerprints into reusable scratch buffers; DoKey answers
// a hit without ever materializing a string (the m[string(key)] lookup is
// the compiler-recognized no-allocation form), and copies the bytes into a
// map key only when an entry must be created. Key bytes are not retained:
// the caller may reuse the buffer as soon as DoKey returns. Do and DoKey
// with equal key bytes address the same entry.
//
// Safe on a nil Cache, like Do.
func (c *Cache) DoKey(sp Space, key []byte, compute func() (val any, cacheable bool)) any {
	if c == nil {
		v, _ := compute()
		return v
	}
	s := &c.spaces[sp]
	if h := s.hist; h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start)) }()
	}
	sh := s.shardForBytes(key)

	s.lock(sh)
	e, found := sh.m[string(key)]
	if !found {
		e = &entry{done: make(chan struct{})}
		ks := string(key)
		sh.m[ks] = e
		sh.mu.Unlock()
		s.misses.Add(1)
		return s.runCompute(sh, ks, e, compute)
	}
	select {
	case <-e.done:
		sh.mu.Unlock()
		if e.ok {
			s.hits.Add(1)
			s.touch(e)
			return e.val
		}
	default:
		e.waiters.Add(1)
		sh.mu.Unlock()
		s.waits.Add(1)
	}
	return s.doSlow(sh, string(key), e, compute)
}

// doSlow resolves a Do call that could not be answered from the fast path:
// e is either finished-but-uncacheable (walk its successor chain) or in
// flight with this caller registered as a waiter.
func (s *space) doSlow(sh *shard, key string, e *entry, compute func() (val any, cacheable bool)) any {
	for {
		<-e.done
		if e.ok {
			s.hits.Add(1)
			s.touch(e)
			return e.val
		}
		if next := e.next; next != nil {
			// Uncacheable result with a successor: exactly one waiter takes
			// over the compute, the rest wait on the successor.
			if next.claimed.CompareAndSwap(false, true) {
				s.misses.Add(1)
				return s.runCompute(sh, key, next, compute)
			}
			next.waiters.Add(1)
			s.waits.Add(1)
			e = next
			continue
		}
		// Uncacheable with no successor (no waiter was registered when the
		// computer finished): re-enter through the map.
		s.lock(sh)
		e2, found := sh.m[key]
		if !found {
			e2 = &entry{done: make(chan struct{})}
			sh.m[key] = e2
			sh.mu.Unlock()
			s.misses.Add(1)
			return s.runCompute(sh, key, e2, compute)
		}
		select {
		case <-e2.done:
			sh.mu.Unlock()
		default:
			e2.waiters.Add(1)
			sh.mu.Unlock()
			s.waits.Add(1)
		}
		e = e2
	}
}

// runCompute executes compute as the owner of entry e and publishes the
// result. With a disk tier attached, the tier is consulted first: a decoded
// record is promoted into the memory tier without running compute. A
// cacheable result stays in the map (subject to the byte cap — see retain);
// an uncacheable one is removed, handing the slot to exactly one blocked
// waiter (via a successor entry) when any are registered.
func (s *space) runCompute(sh *shard, key string, e *entry, compute func() (any, bool)) any {
	if dc := s.disk; dc != nil {
		if b, ok := dc.tier.Get(s.id, key); ok {
			if v, ok := dc.dec(b); ok {
				s.diskHits.Add(1)
				e.val, e.ok = v, true
				s.retain(sh, key, e)
				close(e.done)
				return v
			}
		}
	}
	val, cacheable := compute()
	e.val, e.ok = val, cacheable
	if cacheable {
		s.retain(sh, key, e)
		if dc := s.disk; dc != nil {
			if b, ok := dc.enc(val); ok && dc.tier.Put(s.id, key, b) {
				s.diskWrites.Add(1)
			}
		}
	} else {
		s.lock(sh)
		if e.waiters.Load() > 0 {
			next := &entry{done: make(chan struct{})}
			e.next = next
			sh.m[key] = next
		} else if sh.m[key] == e {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
	}
	close(e.done)
	return val
}

// Stats returns the accounting of one keyspace.
func (c *Cache) Stats(sp Space) Stats {
	if c == nil {
		return Stats{}
	}
	s := &c.spaces[sp]
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		InflightWaits: s.waits.Load(),
		Contended:     s.contended.Load(),
		Entries:       n,
		Evictions:     s.evictions.Load(),
		BytesHeld:     s.bytesHeld.Load(),
		CapBytes:      s.capBytes,
		OversizeDrops: s.oversize.Load(),
		DiskHits:      s.diskHits.Load(),
		DiskWrites:    s.diskWrites.Load(),
	}
}

// Publish snapshots the per-keyspace counters into the observer as gauges
// (memo.hits{space=...}, memo.misses{...}, memo.inflight_waits{...},
// memo.contended{...}, memo.entries{...}), so traces and -stats report the
// session's hit rates and shard contention. Safe on a nil Cache or nil
// Observer; idempotent (gauges, not counters).
func (c *Cache) Publish(o *obs.Observer) {
	if c == nil || o == nil {
		return
	}
	for sp := Space(0); sp < numSpaces; sp++ {
		st := c.Stats(sp)
		if st.Hits+st.Misses == 0 {
			continue
		}
		name := sp.String()
		o.Gauge(obs.Label("memo.hits", "space", name)).Set(st.Hits)
		o.Gauge(obs.Label("memo.misses", "space", name)).Set(st.Misses)
		o.Gauge(obs.Label("memo.inflight_waits", "space", name)).Set(st.InflightWaits)
		o.Gauge(obs.Label("memo.contended", "space", name)).Set(st.Contended)
		o.Gauge(obs.Label("memo.entries", "space", name)).Set(int64(st.Entries))
		if st.CapBytes > 0 {
			o.Gauge(obs.Label("memo.evictions", "space", name)).Set(st.Evictions)
			o.Gauge(obs.Label("memo.bytes_held", "space", name)).Set(st.BytesHeld)
		}
		if st.DiskHits+st.DiskWrites > 0 {
			o.Gauge(obs.Label("memo.disk_hits", "space", name)).Set(st.DiskHits)
			o.Gauge(obs.Label("memo.disk_writes", "space", name)).Set(st.DiskWrites)
		}
	}
}

// Observe enables per-keyspace lookup-duration histograms on the observer
// (memo.lookup{space=...}): every Do call records its time-to-answer,
// which for misses includes the compute. Call before the cache is used
// concurrently (NewServer wires it at construction); safe on a nil Cache
// or Observer.
func (c *Cache) Observe(o *obs.Observer) {
	if c == nil || o == nil {
		return
	}
	for sp := Space(0); sp < numSpaces; sp++ {
		c.spaces[sp].hist = o.Histogram(obs.Label("memo.lookup", "space", sp.String()))
	}
}

// StatsString renders a human-readable per-keyspace summary (the -stats
// view of the cache).
func (c *Cache) StatsString() string {
	if c == nil {
		return "(cache disabled)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s %8s %8s %8s %10s\n",
		"keyspace", "hits", "misses", "waits", "contended", "entries", "hit-rate", "evict", "bytes")
	names := make([]string, 0, int(numSpaces))
	for sp := Space(0); sp < numSpaces; sp++ {
		names = append(names, sp.String())
	}
	sort.Strings(names) // stable render independent of enum order
	for _, name := range names {
		var sp Space
		for s := Space(0); s < numSpaces; s++ {
			if s.String() == name {
				sp = s
			}
		}
		st := c.Stats(sp)
		fmt.Fprintf(&b, "%-16s %10d %10d %10d %10d %8d %7.1f%% %8d %10d\n",
			name, st.Hits, st.Misses, st.InflightWaits, st.Contended, st.Entries, 100*st.HitRate(),
			st.Evictions, st.BytesHeld)
	}
	return b.String()
}
