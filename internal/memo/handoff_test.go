package memo

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDiskExportFiltersByPredicate(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 10; i++ {
		d.Put(Requests, fmt.Sprintf("owned-%d", i), []byte("v"))
		d.Put(Requests, fmt.Sprintf("other-%d", i), []byte("v"))
	}
	// Drain the write-behind queue so the index is populated.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDiskTier(d.dirOfPath())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var got []string
	n := d.Export(Requests, func(key string) bool { return strings.HasPrefix(key, "owned-") }, func(key string, val []byte) bool {
		got = append(got, key)
		return true
	})
	if n != 10 || len(got) != 10 {
		t.Fatalf("export matched %d records (callback saw %d), want 10", n, len(got))
	}
	for _, k := range got {
		if !strings.HasPrefix(k, "owned-") {
			t.Fatalf("export leaked unowned key %q", k)
		}
	}
	// Early stop: fn returning false halts the walk.
	n = d.Export(Requests, nil, func(key string, val []byte) bool { return false })
	if n != 1 {
		t.Fatalf("early-stopped export should count 1 accepted record, got %d", n)
	}
}

// dirOfPath recovers the tier directory from the log path (test helper).
func (d *DiskTier) dirOfPath() string {
	p := d.Path()
	i := strings.LastIndexByte(p, '/')
	return p[:i]
}

func TestDiskImportCounted(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put(Requests, "organic", []byte("a"))
	if !d.Import(Requests, "handoff", []byte("b")) {
		t.Fatal("import should succeed")
	}
	if got := d.Stats().Imported; got != 1 {
		t.Fatalf("Imported = %d, want 1", got)
	}
	// The append is write-behind; poll until the background writer lands it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := d.Get(Requests, "handoff"); ok {
			if string(v) != "b" {
				t.Fatalf("imported record = %q, want \"b\"", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("imported record never became readable")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheSeedAndRange(t *testing.T) {
	c := New()
	if !c.Seed(Requests, "k1", "v1") {
		t.Fatal("seeding an empty slot should succeed")
	}
	if c.Seed(Requests, "k1", "clobber") {
		t.Fatal("seeding over an existing entry must be refused")
	}
	// A seeded entry serves hits without recomputing.
	ran := false
	got := c.Do(Requests, "k1", func() (any, bool) { ran = true; return "computed", true })
	if ran || got != "v1" {
		t.Fatalf("seeded value must serve the hit: got %v ran=%v", got, ran)
	}
	// Seed must not break an in-flight singleflight.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan any)
	go func() {
		done <- c.Do(Requests, "k2", func() (any, bool) {
			close(started)
			<-release
			return "slow", true
		})
	}()
	<-started
	if c.Seed(Requests, "k2", "fast") {
		t.Fatal("seed must not replace an in-flight entry")
	}
	close(release)
	if got := <-done; got != "slow" {
		t.Fatalf("in-flight compute must win, got %v", got)
	}

	// Range sees both completed entries and no in-flight ones.
	seen := map[string]any{}
	c.Range(Requests, func(key string, val any) bool {
		seen[key] = val
		return true
	})
	if len(seen) != 2 || seen["k1"] != "v1" || seen["k2"] != "slow" {
		t.Fatalf("Range saw %v", seen)
	}
}

func TestCacheSeedRespectsBound(t *testing.T) {
	c := New()
	c.Bound(Requests, 1<<10)
	big := make([]byte, 1<<20)
	if c.Seed(Requests, "big", big) {
		t.Fatal("an over-cap seed should be declined by retain")
	}
	// The entry must not be resident afterwards.
	resident := 0
	c.Range(Requests, func(string, any) bool { resident++; return true })
	if resident != 0 {
		t.Fatalf("over-cap seed leaked %d resident entries", resident)
	}
}
