package memo

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestDoCachesPerSpaceAndKey(t *testing.T) {
	c := New()
	calls := 0
	compute := func() (any, bool) { calls++; return calls, true }

	if v := c.Do(Schedule, "k", compute); v != 1 {
		t.Fatalf("first Do = %v, want 1", v)
	}
	if v := c.Do(Schedule, "k", compute); v != 1 {
		t.Fatalf("second Do = %v, want cached 1", v)
	}
	// Same key in a different space is a distinct slot.
	if v := c.Do(Ports, "k", compute); v != 2 {
		t.Fatalf("other-space Do = %v, want fresh 2", v)
	}
	st := c.Stats(Schedule)
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("Schedule stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if r := st.HitRate(); r != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", r)
	}
}

func TestDoUncacheableIsNotStored(t *testing.T) {
	c := New()
	calls := 0
	uncacheable := func() (any, bool) { calls++; return calls, false }
	if v := c.Do(Schedule, "k", uncacheable); v != 1 {
		t.Fatalf("Do = %v, want 1", v)
	}
	if v := c.Do(Schedule, "k", uncacheable); v != 2 {
		t.Fatalf("Do after uncacheable = %v, want recomputed 2", v)
	}
	st := c.Stats(Schedule)
	if st.Hits != 0 || st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses / 0 entries", st)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New()
	const goroutines = 8
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(Schedule, "shared", func() (any, bool) {
				computes.Add(1)
				<-release // hold the computer until every waiter queued
				return "value", true
			})
		}(i)
	}
	// InflightWaits is bumped before a waiter blocks on the entry, so once
	// the count reaches goroutines-1 every other goroutine is provably on
	// the wait path of the single in-flight compute.
	for c.Stats(Schedule).InflightWaits < int64(goroutines-1) {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
	for i, r := range results {
		if r != "value" {
			t.Fatalf("goroutine %d got %v, want \"value\"", i, r)
		}
	}
	st := c.Stats(Schedule)
	if st.Misses != 1 || st.Hits != int64(goroutines-1) {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, goroutines-1)
	}
	if st.InflightWaits != int64(goroutines-1) {
		t.Fatalf("stats = %+v, want %d in-flight waits", st, goroutines-1)
	}
}

func TestDoSingleflightUncacheableWaitersRecompute(t *testing.T) {
	c := New()
	release := make(chan struct{})
	firstIn := make(chan struct{})
	var secondVal any
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Do(Schedule, "k", func() (any, bool) {
			close(firstIn)
			<-release
			return "degraded", false // e.g. canceled-context result
		})
	}()
	go func() {
		defer wg.Done()
		<-firstIn // guarantee we arrive while the first compute is in flight
		secondVal = c.Do(Schedule, "k", func() (any, bool) {
			return "fresh", true
		})
	}()
	// Give the second goroutine a chance to block on the in-flight entry,
	// then let the degraded compute finish.
	close(release)
	wg.Wait()
	if secondVal != "fresh" {
		t.Fatalf("waiter got %v, want recomputed \"fresh\"", secondVal)
	}
	// The fresh result must now be cached.
	v := c.Do(Schedule, "k", func() (any, bool) { return "wrong", true })
	if v != "fresh" {
		t.Fatalf("third Do = %v, want cached \"fresh\"", v)
	}
}

// TestDoUncacheableHandoffSingleTakeover pins the waiter-takeover compute
// count: when an in-flight compute finishes uncacheable with N waiters
// blocked on it, exactly one waiter becomes the next computer — total
// computes must be exactly 2 (the degraded original plus one takeover) and
// every waiter must observe the takeover's value.
func TestDoUncacheableHandoffSingleTakeover(t *testing.T) {
	c := New()
	const waiters = 8
	release := make(chan struct{})
	firstIn := make(chan struct{})
	var takeoverComputes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(Schedule, "k", func() (any, bool) {
			close(firstIn)
			<-release
			return "degraded", false
		})
	}()
	<-firstIn
	results := make([]any, waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(Schedule, "k", func() (any, bool) {
				takeoverComputes.Add(1)
				return "fresh", true
			})
		}(i)
	}
	// Every waiter registers (and bumps InflightWaits) before blocking, so
	// the poll guarantees all of them are queued on the in-flight entry.
	for c.Stats(Schedule).InflightWaits < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := takeoverComputes.Load(); n != 1 {
		t.Fatalf("takeover ran %d computes, want exactly 1 (one waiter takes over)", n)
	}
	for i, r := range results {
		if r != "fresh" {
			t.Fatalf("waiter %d got %v, want the takeover's \"fresh\"", i, r)
		}
	}
	// The takeover's cacheable result must now serve hits.
	if v := c.Do(Schedule, "k", func() (any, bool) { return "wrong", true }); v != "fresh" {
		t.Fatalf("post-handoff Do = %v, want cached \"fresh\"", v)
	}
}

// TestDoAllUncacheableChain: when every compute is uncacheable, the
// takeover chain drains one waiter per round — each caller computes at most
// once (no stampede, no lost caller) and nothing is left in the map.
func TestDoAllUncacheableChain(t *testing.T) {
	c := New()
	const callers = 8
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([]any, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(Schedule, "k", func() (any, bool) {
				computes.Add(1)
				runtime.Gosched()
				return i, false
			})
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n > callers {
		t.Fatalf("%d computes for %d callers (stampede)", n, callers)
	}
	for i, r := range results {
		if r != i {
			t.Fatalf("caller %d got %v, want its own uncacheable result %d", i, r, i)
		}
	}
	if st := c.Stats(Schedule); st.Entries != 0 {
		t.Fatalf("uncacheable chain left %d entries in the map", st.Entries)
	}
}

// TestShardDistribution: keys spread over multiple shards, and per-shard
// entries sum to the space's entry count.
func TestShardDistribution(t *testing.T) {
	c := New()
	const keys = 512
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		c.Do(Ports, k, func() (any, bool) { return i, true })
	}
	if st := c.Stats(Ports); st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
	s := &c.spaces[Ports]
	used := 0
	for i := range s.shards {
		if len(s.shards[i].m) > 0 {
			used++
		}
	}
	if used < shardCount/2 {
		t.Fatalf("%d keys landed in only %d/%d shards (bad hash spread)", keys, used, shardCount)
	}
}

// TestShardForMatchesShardForBytes: the string and byte key paths must
// address the same shard for equal key bytes, or Do and DoKey would not
// singleflight against each other.
func TestShardForMatchesShardForBytes(t *testing.T) {
	c := New()
	s := &c.spaces[Ports]
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if s.shardFor(string(b)) != s.shardForBytes(b) {
			t.Fatalf("key %q: shardFor and shardForBytes disagree", b)
		}
	}
}

func TestNilCacheRuns(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		if v := c.Do(Schedule, "k", func() (any, bool) { calls++; return calls, true }); v != i+1 {
			t.Fatalf("nil-cache Do #%d = %v, want %d", i, v, i+1)
		}
	}
	if st := c.Stats(Schedule); st != (Stats{}) {
		t.Fatalf("nil-cache stats = %+v, want zero", st)
	}
	c.Publish(nil)                                         // must not panic
	if s := c.StatsString(); !strings.Contains(s, "dis") { // "(cache disabled)"
		t.Fatalf("nil StatsString = %q", s)
	}
}

func TestPublishGauges(t *testing.T) {
	c := New()
	c.Do(Schedule, "a", func() (any, bool) { return 1, true })
	c.Do(Schedule, "a", func() (any, bool) { return 1, true })
	o := obs.New()
	c.Publish(o)
	snap := o.Counters()
	if snap["memo.hits{space=schedule}"] != 1 {
		t.Fatalf("hits gauge = %d, want 1 (snapshot: %v)", snap["memo.hits{space=schedule}"], snap)
	}
	if snap["memo.misses{space=schedule}"] != 1 {
		t.Fatalf("misses gauge = %d, want 1", snap["memo.misses{space=schedule}"])
	}
	// Untouched spaces are skipped.
	if _, ok := snap["memo.hits{space=ports}"]; ok {
		t.Fatal("untouched space published")
	}
	// Publishing twice must not double-count (gauges, not counters).
	c.Publish(o)
	snap = o.Counters()
	if snap["memo.hits{space=schedule}"] != 1 {
		t.Fatalf("hits gauge after re-publish = %d, want 1", snap["memo.hits{space=schedule}"])
	}
}

func TestStatsString(t *testing.T) {
	c := New()
	c.Do(PrunedPatterns, "a", func() (any, bool) { return 1, true })
	c.Do(PrunedPatterns, "a", func() (any, bool) { return 1, true })
	s := c.StatsString()
	for _, want := range []string{"schedule", "loop_patterns", "pruned_patterns", "ports", "50.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("StatsString missing %q:\n%s", want, s)
		}
	}
}

func TestSpaceString(t *testing.T) {
	names := map[Space]string{
		Schedule: "schedule", LoopPatterns: "loop_patterns",
		PrunedPatterns: "pruned_patterns", Ports: "ports",
	}
	for sp, want := range names {
		if got := sp.String(); got != want {
			t.Fatalf("Space(%d).String() = %q, want %q", sp, got, want)
		}
	}
	if got := Space(99).String(); got != "space99" {
		t.Fatalf("unknown space = %q", got)
	}
}
