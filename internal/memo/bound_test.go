package memo

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// --- byte accounting ---

func TestBoundAccountingExact(t *testing.T) {
	c := New()
	c.Bound(Schedule, 1<<20)
	want := int64(0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%03d", i)
		val := strings.Repeat("x", i)
		if got := c.Do(Schedule, key, func() (any, bool) { return val, true }); got != val {
			t.Fatalf("Do(%q) = %v, want %q", key, got, val)
		}
		want += sizeOf(key, val)
	}
	st := c.Stats(Schedule)
	if st.BytesHeld != want {
		t.Fatalf("BytesHeld = %d, want exact sum %d", st.BytesHeld, want)
	}
	if st.Entries != 100 || st.Evictions != 0 || st.OversizeDrops != 0 {
		t.Fatalf("stats = %+v, want 100 entries, no evictions, no drops", st)
	}
	if st.CapBytes != 1<<20 {
		t.Fatalf("CapBytes = %d, want %d", st.CapBytes, 1<<20)
	}
}

type sizedVal struct{ n int }

func (s sizedVal) CacheBytes() int { return s.n }

func TestBoundSizedValuesUseReportedBytes(t *testing.T) {
	c := New()
	c.Bound(Ports, 1<<20)
	c.Do(Ports, "k", func() (any, bool) { return sizedVal{n: 1000}, true })
	want := int64(len("k")) + entryOverhead + 1000
	if st := c.Stats(Ports); st.BytesHeld != want {
		t.Fatalf("BytesHeld = %d, want Sized-reported %d", st.BytesHeld, want)
	}
}

// TestBoundEvictionKeepsAccountingConsistent: after eviction under
// pressure, bytesHeld is exactly (entries x per-entry size) — every evicted
// entry gave back exactly what it charged — and the eviction counter
// matches the entries that left.
func TestBoundEvictionKeepsAccountingConsistent(t *testing.T) {
	c := New()
	key := func(i int) string { return fmt.Sprintf("key%04d", i) } // fixed-size keys
	val := make([]byte, 100)
	per := sizeOf(key(0), val)
	cap := 20 * per
	c.Bound(LoopPatterns, cap)
	const n = 200
	for i := 0; i < n; i++ {
		c.Do(LoopPatterns, key(i), func() (any, bool) { return val, true })
	}
	st := c.Stats(LoopPatterns)
	if st.BytesHeld > cap {
		t.Fatalf("BytesHeld %d exceeds cap %d", st.BytesHeld, cap)
	}
	if st.BytesHeld != int64(st.Entries)*per {
		t.Fatalf("BytesHeld %d != %d entries x %d bytes", st.BytesHeld, st.Entries, per)
	}
	if st.Evictions != int64(n-st.Entries) {
		t.Fatalf("Evictions = %d, want %d (inserted %d, resident %d)",
			st.Evictions, n-st.Entries, n, st.Entries)
	}
	if st.Entries == 0 {
		t.Fatal("everything was evicted; cap should hold ~20 entries")
	}
}

// --- the cap invariant, property-tested ---

// TestQuickBytesHeldNeverExceedsCap is the sequential property test: for
// any random insert workload and cap, bytes_held <= cap after every single
// operation.
func TestQuickBytesHeldNeverExceedsCap(t *testing.T) {
	f := func(capSeed uint16, ops []uint16) bool {
		cap := int64(capSeed)%8192 + 512
		c := New()
		c.Bound(Schedule, cap)
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%64)
			size := int(op) % 2048
			c.Do(Schedule, key, func() (any, bool) { return make([]byte, size), true })
			if held := c.Stats(Schedule).BytesHeld; held > cap {
				t.Logf("cap %d: bytes_held %d after inserting %d bytes under key %q",
					cap, held, size, key)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundCapHeldUnderConcurrency is the concurrent version: a sampler
// goroutine asserts the invariant at every instant while writers hammer the
// space. Room is made before bytes are accounted (all under evictMu), so no
// interleaving may show bytes_held > cap.
func TestBoundCapHeldUnderConcurrency(t *testing.T) {
	c := New()
	const cap = 8192
	c.Bound(Schedule, cap)
	stop := make(chan struct{})
	var violated atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if held := c.Stats(Schedule).BytesHeld; held > cap {
				violated.Store(held)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("g%dk%d", g, rng.Intn(200))
				size := rng.Intn(512)
				c.Do(Schedule, key, func() (any, bool) { return make([]byte, size), true })
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if v := violated.Load(); v != 0 {
		t.Fatalf("sampler saw bytes_held %d > cap %d", v, cap)
	}
	if st := c.Stats(Schedule); st.Evictions == 0 {
		t.Fatalf("workload caused no evictions (stats %+v); test is not exercising the sweep", st)
	}
}

// --- singleflight safety ---

// TestBoundEvictionNeverDropsInflight: an entry still being computed has no
// accounted bytes and must survive any eviction storm — its waiters would
// otherwise block forever on a channel nobody closes.
func TestBoundEvictionNeverDropsInflight(t *testing.T) {
	c := New()
	c.Bound(Schedule, 2048)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([]any, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(Schedule, "slow", func() (any, bool) {
				computes.Add(1)
				close(started)
				<-release
				return "slow-value", true
			})
		}(i)
	}
	<-started
	// Eviction storm while "slow" is in flight: far more bytes than the cap.
	for i := 0; i < 500; i++ {
		c.Do(Schedule, fmt.Sprintf("flood%d", i), func() (any, bool) { return make([]byte, 128), true })
	}
	if st := c.Stats(Schedule); st.Evictions == 0 {
		t.Fatalf("flood caused no evictions (stats %+v); test is not exercising the sweep", st)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (in-flight entry was dropped)", n)
	}
	for i, r := range results {
		if r != "slow-value" {
			t.Fatalf("caller %d got %v, want the singleflighted value", i, r)
		}
	}
}

// --- oversize values ---

func TestBoundOversizeValueServedButNotRetained(t *testing.T) {
	c := New()
	c.Bound(Ports, 512)
	calls := 0
	big := func() (any, bool) { calls++; return make([]byte, 4096), true }
	v := c.Do(Ports, "big", big)
	if b, ok := v.([]byte); !ok || len(b) != 4096 {
		t.Fatalf("oversize Do = %T(%v), want the 4096-byte value", v, v)
	}
	st := c.Stats(Ports)
	if st.OversizeDrops != 1 || st.Entries != 0 || st.BytesHeld != 0 {
		t.Fatalf("stats = %+v, want 1 oversize drop, nothing resident", st)
	}
	// Not retained: the next call recomputes.
	c.Do(Ports, "big", big)
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (oversize value must not be retained)", calls)
	}
}

// --- equivalence with the unbounded cache ---

// TestQuickBoundedMatchesUnbounded: bounding changes only what stays
// resident, never what Do returns — for any workload, a bounded cache and
// an unbounded one yield identical values call by call.
func TestQuickBoundedMatchesUnbounded(t *testing.T) {
	f := func(ops []uint8) bool {
		bounded, unbounded := New(), New()
		bounded.Bound(Schedule, 700) // tight: a few entries fit
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			mk := func() (any, bool) { return "v:" + key, true }
			if bounded.Do(Schedule, key, mk) != unbounded.Do(Schedule, key, mk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- configuration edge cases ---

func TestBoundNilAndNonPositiveAreNoOps(t *testing.T) {
	var nilCache *Cache
	nilCache.Bound(Schedule, 1024) // must not panic

	c := New()
	c.Bound(Schedule, 0)
	c.Bound(Ports, -1)
	for i := 0; i < 100; i++ {
		c.Do(Schedule, fmt.Sprintf("k%d", i), func() (any, bool) { return make([]byte, 1024), true })
	}
	st := c.Stats(Schedule)
	if st.CapBytes != 0 || st.Evictions != 0 || st.BytesHeld != 0 || st.Entries != 100 {
		t.Fatalf("unbounded space tracked bounded-tier state: %+v", st)
	}
}
