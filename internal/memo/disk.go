package memo

// Disk tier: an optional, durable second level under the session cache.
//
// The tier is a single append-only log (cache.log under the cache dir) of
// checksummed records keyed by the same canonical fingerprints as the
// memory tier. Recovery is truncation-tolerant: replay stops at the first
// torn or corrupt record (a kill -9 mid-append leaves exactly that) and
// truncates the file back to the last good byte, so the log stays
// appendable. Duplicate keys are legal — the last record wins, which is
// what sequential appends naturally produce.
//
// Writes are write-behind: Put only enqueues; a single background writer
// appends, coalesces whatever queued meanwhile, then fsyncs once — the
// serving hot path never blocks on disk. A full queue drops the write
// (counted) rather than stall; the memory tier still holds the value.
//
// Reads verify the CRC again at access time, so a bit flipped on disk
// yields a miss (and drops the index entry), never a corrupt value.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	logName  = "cache.log"
	logMagic = "dtsecl1\n"

	// maxRecordSize bounds one record's payload; a length beyond it during
	// replay is treated as corruption. 64 MiB is far above any rendered
	// response.
	maxRecordSize = 64 << 20

	// recordHeader is [4B payload length][4B CRC32-IEEE of payload]; the
	// payload is [1B space][4B key length][key][value].
	recordHeader = 8
	payloadMin   = 5

	// writeQueueLen is the write-behind queue depth; overflow drops the
	// write instead of blocking the hot path.
	writeQueueLen = 1024
)

// DiskStats is the accounting of one disk tier.
type DiskStats struct {
	Records   int   // live index entries (last record per key)
	Replayed  int64 // records recovered at open
	Truncated int64 // torn/corrupt tail bytes dropped at open
	Hits      int64 // Get calls that returned a verified record
	Misses    int64 // Get calls that found nothing usable
	Writes    int64 // records appended by the background writer
	Dropped   int64 // writes lost to a full queue or append failure
	ReadErrs  int64 // records dropped on read (CRC or IO failure)
	Imported  int64 // records received via shard handoff (subset of Writes)
}

type recordRef struct {
	off int64 // file offset of the record header
	n   int   // header + payload length
}

// DiskTier is a disk-backed cache level shared by the keyspaces attached
// to it. Safe for concurrent use; nil receivers are no-ops, the same idiom
// as the nil *Cache.
type DiskTier struct {
	path string
	f    *os.File

	mu    sync.RWMutex // guards index
	index [numSpaces]map[string]recordRef

	writeCh chan diskRecord
	writerD chan struct{} // closed when the background writer exits
	closeMu sync.Mutex    // serializes Put-enqueue against Close
	closed  bool

	end atomic.Int64 // append offset = bytes of verified log

	replayed, truncated, hits, misses, writes, dropped, readErrs, imported atomic.Int64
}

type diskRecord struct {
	sp  Space
	key string
	val []byte
}

// OpenDiskTier opens (creating if needed) the append-only cache log under
// dir, replays it into an in-memory index, truncates any torn tail, and
// starts the write-behind writer. The caller owns the tier and must Close
// it to flush queued writes.
func OpenDiskTier(dir string) (*DiskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: cache dir: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("memo: cache log: %w", err)
	}
	d := &DiskTier{path: path, f: f}
	for i := range d.index {
		d.index[i] = make(map[string]recordRef)
	}
	if err := d.replay(); err != nil {
		f.Close()
		return nil, err
	}
	d.writeCh = make(chan diskRecord, writeQueueLen)
	d.writerD = make(chan struct{})
	go d.writer()
	return d, nil
}

// replay scans the log sequentially, indexing every verified record (last
// write per key wins) and stopping at the first torn or corrupt one; the
// file is truncated back to the last good byte so appends stay readable.
func (d *DiskTier) replay() error {
	st, err := d.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if _, err := d.f.Write([]byte(logMagic)); err != nil {
			return err
		}
		d.end.Store(int64(len(logMagic)))
		return d.f.Sync()
	}
	r := bufio.NewReader(io.NewSectionReader(d.f, 0, st.Size()))
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != logMagic {
		return fmt.Errorf("memo: %s is not a cache log", d.path)
	}
	off := int64(len(logMagic))
	var hdr [recordHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean end of log, or a torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n < payloadMin || n > maxRecordSize {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or a torn rewrite: nothing after it is trusted
		}
		sp, key, _, ok := parsePayload(payload)
		if !ok {
			break
		}
		d.index[sp][key] = recordRef{off: off, n: recordHeader + int(n)}
		off += int64(recordHeader) + int64(n)
		d.replayed.Add(1)
	}
	d.end.Store(off)
	if off < st.Size() {
		d.truncated.Add(st.Size() - off)
		if err := d.f.Truncate(off); err != nil {
			return err
		}
	}
	return nil
}

func parsePayload(p []byte) (sp Space, key string, val []byte, ok bool) {
	if len(p) < payloadMin {
		return 0, "", nil, false
	}
	sp = Space(p[0])
	if sp < 0 || sp >= numSpaces {
		return 0, "", nil, false
	}
	kn := binary.LittleEndian.Uint32(p[1:payloadMin])
	if uint64(kn) > uint64(len(p)-payloadMin) {
		return 0, "", nil, false
	}
	return sp, string(p[payloadMin : payloadMin+kn]), p[payloadMin+kn:], true
}

// load reads and re-verifies one indexed record. A record that fails
// verification is dropped from the index (counted in ReadErrs) — the
// caller sees a plain miss.
func (d *DiskTier) load(sp Space, key string) ([]byte, bool) {
	d.mu.RLock()
	ref, ok := d.index[sp][key]
	d.mu.RUnlock()
	if !ok {
		return nil, false
	}
	buf := make([]byte, ref.n)
	if _, err := d.f.ReadAt(buf, ref.off); err != nil {
		d.dropRef(sp, key, ref)
		return nil, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if int(n) != len(buf)-recordHeader || crc32.ChecksumIEEE(buf[recordHeader:]) != sum {
		d.dropRef(sp, key, ref)
		return nil, false
	}
	rsp, rkey, val, ok := parsePayload(buf[recordHeader:])
	if !ok || rsp != sp || rkey != key {
		d.dropRef(sp, key, ref)
		return nil, false
	}
	return val, true
}

func (d *DiskTier) dropRef(sp Space, key string, ref recordRef) {
	d.readErrs.Add(1)
	d.mu.Lock()
	if cur, ok := d.index[sp][key]; ok && cur == ref {
		delete(d.index[sp], key)
	}
	d.mu.Unlock()
}

// Get returns the stored value for key, verifying its checksum. Safe on a
// nil tier (always a miss).
func (d *DiskTier) Get(sp Space, key string) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	val, ok := d.load(sp, key)
	if ok {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return val, ok
}

// Put queues a record for the background writer; it never blocks. Returns
// false when the record was dropped (tier closed, value beyond the record
// size bound, or queue full). Safe on a nil tier.
func (d *DiskTier) Put(sp Space, key string, val []byte) bool {
	if d == nil {
		return false
	}
	if payloadMin+len(key)+len(val) > maxRecordSize {
		d.dropped.Add(1)
		return false
	}
	d.closeMu.Lock()
	defer d.closeMu.Unlock()
	if d.closed {
		return false
	}
	select {
	case d.writeCh <- diskRecord{sp: sp, key: key, val: val}:
		return true
	default:
		d.dropped.Add(1)
		return false
	}
}

// writer is the single background appender: it writes each queued record,
// coalesces whatever arrived meanwhile, then fsyncs once per batch.
func (d *DiskTier) writer() {
	defer close(d.writerD)
	for {
		rec, ok := <-d.writeCh
		if !ok {
			d.f.Sync()
			return
		}
		d.append(rec)
	drain:
		for {
			select {
			case more, ok := <-d.writeCh:
				if !ok {
					d.f.Sync()
					return
				}
				d.append(more)
			default:
				break drain
			}
		}
		d.f.Sync()
	}
}

// append writes one record at the current end offset and publishes it in
// the index only after the write succeeded, so readers can never chase an
// offset that was not fully written.
func (d *DiskTier) append(rec diskRecord) {
	payload := make([]byte, payloadMin+len(rec.key)+len(rec.val))
	payload[0] = byte(rec.sp)
	binary.LittleEndian.PutUint32(payload[1:payloadMin], uint32(len(rec.key)))
	copy(payload[payloadMin:], rec.key)
	copy(payload[payloadMin+len(rec.key):], rec.val)
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeader:], payload)
	off := d.end.Load()
	if _, err := d.f.WriteAt(buf, off); err != nil {
		d.dropped.Add(1)
		return
	}
	d.end.Store(off + int64(len(buf)))
	d.writes.Add(1)
	d.mu.Lock()
	d.index[rec.sp][rec.key] = recordRef{off: off, n: len(buf)}
	d.mu.Unlock()
}

// Range calls fn for every live record of one keyspace (the last write per
// key, checksum-verified; order unspecified) until fn returns false. Used
// to rebuild derived state — the server's warm-start index — at startup.
// Safe on a nil tier.
func (d *DiskTier) Range(sp Space, fn func(key string, val []byte) bool) {
	if d == nil {
		return
	}
	d.mu.RLock()
	keys := make([]string, 0, len(d.index[sp]))
	for k := range d.index[sp] {
		keys = append(keys, k)
	}
	d.mu.RUnlock()
	for _, k := range keys {
		if v, ok := d.load(sp, k); ok {
			if !fn(k, v) {
				return
			}
		}
	}
}

// Len returns the number of live records in one keyspace.
func (d *DiskTier) Len(sp Space) int {
	if d == nil {
		return 0
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.index[sp])
}

// Path returns the log file path (for logs and tests).
func (d *DiskTier) Path() string {
	if d == nil {
		return ""
	}
	return d.path
}

// Stats returns the tier's accounting. Safe on a nil tier.
func (d *DiskTier) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	n := 0
	d.mu.RLock()
	for i := range d.index {
		n += len(d.index[i])
	}
	d.mu.RUnlock()
	return DiskStats{
		Records:   n,
		Replayed:  d.replayed.Load(),
		Truncated: d.truncated.Load(),
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Writes:    d.writes.Load(),
		Dropped:   d.dropped.Load(),
		ReadErrs:  d.readErrs.Load(),
		Imported:  d.imported.Load(),
	}
}

// Close stops the writer, flushes every queued record to disk, fsyncs and
// closes the log. Idempotent; safe on a nil tier.
func (d *DiskTier) Close() error {
	if d == nil {
		return nil
	}
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		return nil
	}
	d.closed = true
	close(d.writeCh)
	d.closeMu.Unlock()
	<-d.writerD
	return d.f.Close()
}

// diskCodec binds a keyspace to a tier with its value encoding.
type diskCodec struct {
	tier *DiskTier
	enc  func(val any) ([]byte, bool)
	dec  func(b []byte) (any, bool)
}

// AttachDisk backs one keyspace with a disk tier: misses consult the tier
// (decoded records are promoted into the memory tier without recomputing)
// and cacheable results are queued to it write-behind. enc may decline a
// value (second result false) to keep it memory-only; dec may decline a
// record it cannot parse, which falls back to compute. Call before the
// cache is used concurrently (like Observe); safe on a nil Cache.
func (c *Cache) AttachDisk(sp Space, d *DiskTier, enc func(val any) ([]byte, bool), dec func(b []byte) (any, bool)) {
	if c == nil || d == nil || enc == nil || dec == nil {
		return
	}
	c.spaces[sp].disk = &diskCodec{tier: d, enc: enc, dec: dec}
}
