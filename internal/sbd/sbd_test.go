package sbd

import (
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// offWords is comfortably above the default on-chip limit.
const offWords = 1024 * 1024

// fanInSpec models the BTPC hot body shape: nReads independent off-chip
// reads feeding a chain of tail on-chip accesses.
func fanInSpec(t *testing.T, nReads, tailLen int, iters uint64) *spec.Spec {
	t.Helper()
	b := spec.NewBuilder("fanin")
	b.Group("big", offWords, 8)
	b.Group("small", 256, 8)
	b.Loop("hot", iters)
	reads := make([]int, nReads)
	for i := range reads {
		reads[i] = b.Read("big", 1)
	}
	prev := b.Read("small", 1, reads...)
	for i := 1; i < tailLen; i++ {
		prev = b.Read("small", 1, prev)
	}
	return b.MustBuild()
}

func groupsMap(s *spec.Spec) map[string]spec.BasicGroup {
	m := make(map[string]spec.BasicGroup)
	for _, g := range s.Groups {
		m[g.Name] = g
	}
	return m
}

func TestWeightedCPDurations(t *testing.T) {
	s := fanInSpec(t, 4, 5, 1)
	// Off-chip read (2 cycles) then 5-cycle on-chip chain.
	if cp := WeightedCP(&s.Loops[0], groupsMap(s), Params{}); cp != 7 {
		t.Fatalf("weighted CP = %d, want 7", cp)
	}
}

func TestBalanceRespectsDepsAndBudget(t *testing.T) {
	s := fanInSpec(t, 5, 8, 1)
	l := &s.Loops[0]
	g := groupsMap(s)
	p := Params{}
	p.normalize()
	for _, budget := range []int{WeightedCP(l, g, p), 14, 18, 25} {
		sc, err := BalanceLoop(l, g, budget, p)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for _, a := range l.Accesses {
			st := sc.Start[a.ID]
			d := p.Duration(g[a.Group])
			if st < 0 || st+d > budget {
				t.Fatalf("budget %d: access %d at %d dur %d outside budget", budget, a.ID, st, d)
			}
			for _, dep := range a.Deps {
				dd := p.Duration(g[l.Accesses[dep].Group])
				if sc.Start[dep]+dd > st {
					t.Fatalf("budget %d: access %d (start %d) begins before dep %d finishes (%d)",
						budget, a.ID, st, dep, sc.Start[dep]+dd)
				}
			}
		}
	}
}

func TestBalanceBudgetBelowCPFails(t *testing.T) {
	s := fanInSpec(t, 4, 5, 1)
	l := &s.Loops[0]
	g := groupsMap(s)
	if _, err := BalanceLoop(l, g, 6, Params{}); err == nil {
		t.Fatal("budget below weighted CP accepted")
	}
}

func TestTightBudgetForcesOffChipOverlap(t *testing.T) {
	// 5 independent 2-cycle off-chip reads must finish before a 10-cycle
	// tail. At the critical-path budget (12) the reads overlap each other;
	// with enough slack they serialize and the big array needs one port.
	s := fanInSpec(t, 5, 10, 1)
	l := &s.Loops[0]
	g := groupsMap(s)
	p := Params{}
	p.normalize()

	tight, err := BalanceLoop(l, g, 12, p)
	if err != nil {
		t.Fatal(err)
	}
	tightPorts := RequiredPorts(PatternsOf(s, []*LoopSchedule{tight}, p))
	if tightPorts["big"] < 2 {
		t.Fatalf("tight budget: big needs %d ports, want >= 2", tightPorts["big"])
	}

	loose, err := BalanceLoop(l, g, 22, p)
	if err != nil {
		t.Fatal(err)
	}
	loosePorts := RequiredPorts(PatternsOf(s, []*LoopSchedule{loose}, p))
	if loosePorts["big"] != 1 {
		t.Fatalf("loose budget: big needs %d ports, want 1", loosePorts["big"])
	}
	if loose.Cost >= tight.Cost {
		t.Fatalf("loose cost %.1f not below tight cost %.1f", loose.Cost, tight.Cost)
	}
}

func TestCostWeightedByIterations(t *testing.T) {
	s1 := fanInSpec(t, 5, 10, 1)
	s2 := fanInSpec(t, 5, 10, 1000)
	g := groupsMap(s1)
	p := Params{}
	a, err := BalanceLoop(&s1.Loops[0], g, 12, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BalanceLoop(&s2.Loops[0], g, 12, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.WeightedCost < 900*a.WeightedCost || b.WeightedCost > 1100*a.WeightedCost {
		t.Fatalf("iteration weighting broken: %v vs %v", a.WeightedCost, b.WeightedCost)
	}
	// The structural part is iteration-independent by design.
	if a.StructuralCost != b.StructuralCost {
		t.Fatalf("structural cost depends on iterations: %v vs %v",
			a.StructuralCost, b.StructuralCost)
	}
	if a.Cost != a.WeightedCost+a.StructuralCost {
		t.Fatal("Cost != WeightedCost + StructuralCost")
	}
}

func TestEmptyLoop(t *testing.T) {
	l := &spec.Loop{Name: "empty", Iterations: 5}
	sc, err := BalanceLoop(l, nil, 3, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cost != 0 || len(sc.Start) != 0 {
		t.Fatalf("empty loop schedule = %+v", sc)
	}
}

func TestPatternsMergeAndWeights(t *testing.T) {
	b := spec.NewBuilder("pat")
	b.Group("a", 64, 8).Group("b", 64, 8)
	b.Loop("l", 100)
	b.Read("a", 1)
	b.Read("b", 1)
	s := b.MustBuild()
	g := groupsMap(s)
	p := Params{}
	p.normalize()
	// Budget 1 forces both accesses into the same (only) cycle.
	sc, err := BalanceLoop(&s.Loops[0], g, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	pats := PatternsOf(s, []*LoopSchedule{sc}, p)
	if len(pats) != 1 {
		t.Fatalf("%d patterns, want 1", len(pats))
	}
	if pats[0].Weight != 100 || pats[0].Access["a"] != 1 || pats[0].Access["b"] != 1 {
		t.Fatalf("pattern = %+v", pats[0])
	}
}

func TestRequiredPorts(t *testing.T) {
	pats := []Pattern{
		{Access: map[string]int{"a": 2, "b": 1}, Weight: 10},
		{Access: map[string]int{"a": 1, "c": 3}, Weight: 5},
	}
	ports := RequiredPorts(pats)
	if ports["a"] != 2 || ports["b"] != 1 || ports["c"] != 3 {
		t.Fatalf("ports = %v", ports)
	}
}

func TestDistributeInfeasible(t *testing.T) {
	s := fanInSpec(t, 4, 5, 1000)
	// Weighted MACP = 7 * 1000.
	if _, err := Distribute(s, 6999, Params{}); err == nil {
		t.Fatal("budget below MACP accepted")
	}
	if _, err := Distribute(s, 7000, Params{}); err != nil {
		t.Fatalf("budget at MACP rejected: %v", err)
	}
}

func TestDistributeSpendsWhereItHelps(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	// Generous budget: the hot loop should be relaxed until conflict-free.
	d, err := Distribute(s, 40_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost != 0 {
		t.Fatalf("generous budget left cost %.1f, want 0", d.Cost)
	}
	if d.Used > d.TotalBudget {
		t.Fatalf("used %d exceeds budget %d", d.Used, d.TotalBudget)
	}
	if d.ExtraCycles() != d.TotalBudget-d.Used {
		t.Fatal("ExtraCycles inconsistent")
	}
	// Tight budget: cost must be higher.
	dt, err := Distribute(s, 12_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if dt.Cost <= d.Cost {
		t.Fatalf("tight budget cost %.1f not above generous %.1f", dt.Cost, d.Cost)
	}
}

func TestDistributeCostMonotoneInBudget(t *testing.T) {
	s := fanInSpec(t, 5, 10, 100)
	prev := -1.0
	for _, b := range []uint64{1200, 1400, 1600, 2000, 2600} {
		d, err := Distribute(s, b, Params{})
		if err != nil {
			t.Fatalf("budget %d: %v", b, err)
		}
		if prev >= 0 && d.Cost > prev+1e-9 {
			t.Fatalf("cost increased with budget: %.2f -> %.2f at %d", prev, d.Cost, b)
		}
		prev = d.Cost
	}
}

func TestDistributeUsedQuantizedByIterations(t *testing.T) {
	// Two loops with different iteration counts: budget commitments move in
	// whole-loop quanta (the paper's ~300k jumps).
	b := spec.NewBuilder("quanta")
	b.Group("big", offWords, 8)
	b.Group("small", 256, 8)
	b.Loop("hot", 300_000)
	r1 := b.Read("big", 1)
	r2 := b.Read("big", 1)
	b.Read("small", 1, r1, r2)
	b.Loop("cold", 1000)
	c1 := b.Read("big", 1)
	b.Read("small", 1, c1)
	s := b.MustBuild()

	d, err := Distribute(s, 3_000_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Used must decompose into hot*300000 + cold*1000 with integer budgets.
	var hot, cold uint64
	for _, l := range d.Loops {
		switch l.Loop {
		case "hot":
			hot = uint64(l.Budget)
		case "cold":
			cold = uint64(l.Budget)
		}
	}
	if d.Used != hot*300_000+cold*1000 {
		t.Fatalf("used %d != %d*300000 + %d*1000", d.Used, hot, cold)
	}
}

func TestPrunePatterns(t *testing.T) {
	pats := []Pattern{
		{Access: map[string]int{"a": 1}, Weight: 5},
		{Access: map[string]int{"a": 1, "b": 1}, Weight: 3},
		{Access: map[string]int{"a": 2}, Weight: 1},
		{Access: map[string]int{"a": 1}, Weight: 9}, // duplicate of first
	}
	out := PrunePatterns(pats)
	if len(out) != 2 {
		t.Fatalf("pruned to %d patterns, want 2: %v", len(out), out)
	}
	// Port requirements must be identical before and after pruning.
	before := RequiredPorts(pats)
	after := RequiredPorts(out)
	for g, p := range before {
		if after[g] != p {
			t.Fatalf("pruning changed ports for %s: %d -> %d", g, p, after[g])
		}
	}
}

func TestDurationModel(t *testing.T) {
	p := Params{}
	p.normalize()
	on := spec.BasicGroup{Name: "s", Words: 256, Bits: 8}
	off := spec.BasicGroup{Name: "b", Words: offWords, Bits: 8}
	if p.Duration(on) != 1 {
		t.Fatalf("on-chip duration = %d", p.Duration(on))
	}
	if p.Duration(off) != 2 {
		t.Fatalf("off-chip duration = %d", p.Duration(off))
	}
}

func TestPenaltiesOrdering(t *testing.T) {
	p := Params{}
	p.normalize()
	small := spec.BasicGroup{Name: "s", Words: 256, Bits: 8}
	big := spec.BasicGroup{Name: "b", Words: offWords, Bits: 8}
	if p.selfPenalty(big) <= p.selfPenalty(small) {
		t.Fatal("off-chip self conflict must cost more than on-chip")
	}
	if p.pairPenalty(small, big) != 0 {
		t.Fatal("cross-kind pair conflict should be free")
	}
	if p.pairPenalty(small, small) <= 0 || p.pairPenalty(big, big) <= 0 {
		t.Fatal("same-kind pair conflicts must cost something")
	}
}

// bruteForceBalance enumerates every dependence-feasible schedule of a tiny
// loop body and returns the minimal total cost (weighted + structural).
func bruteForceBalance(t *testing.T, l *spec.Loop, groups map[string]spec.BasicGroup, budget int, p Params) float64 {
	t.Helper()
	p.normalize()
	n := len(l.Accesses)
	dur := make([]int, n)
	for i, a := range l.Accesses {
		dur[i] = p.Duration(groups[a.Group])
	}
	starts := make([]int, n)
	best := -1.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			s := newScheduler(l, groups, budget, p, nil)
			for id, st := range starts {
				s.place(id, st)
			}
			total := s.cost*float64(l.Iterations) + s.structuralCost()
			if best < 0 || total < best {
				best = total
			}
			return
		}
		lo := 0
		for _, d := range l.Accesses[i].Deps {
			if f := starts[d] + dur[d]; f > lo {
				lo = f
			}
		}
		for c := lo; c+dur[i] <= budget; c++ {
			starts[i] = c
			rec(i + 1)
		}
	}
	// Accesses must be enumerated in an order where deps precede
	// dependents; builder IDs are already topological.
	rec(0)
	if best < 0 {
		t.Fatal("brute force found no feasible schedule")
	}
	return best
}

func TestBalanceNearOptimalOnTinyBodies(t *testing.T) {
	cases := []func(*spec.Builder){
		func(b *spec.Builder) { // two same-group reads + chain
			r1 := b.Read("on", 1)
			r2 := b.Read("on", 1)
			b.Read("on2", 1, r1, r2)
		},
		func(b *spec.Builder) { // off-chip fan-in
			r1 := b.Read("off", 1)
			r2 := b.Read("off", 1)
			x := b.Read("on", 1, r1, r2)
			b.Read("on", 1, x)
		},
		func(b *spec.Builder) { // independent mix
			b.Read("on", 1)
			b.Read("on2", 1)
			b.Read("off", 1)
			b.Read("on", 1)
		},
	}
	for ci, build := range cases {
		b := spec.NewBuilder("tiny")
		b.Group("on", 128, 8).Group("on2", 256, 16).Group("off", offWords, 8)
		b.Loop("l", 50)
		build(b)
		s := b.MustBuild()
		g := groupsMap(s)
		p := Params{}
		p.normalize()
		l := &s.Loops[0]
		for extra := 0; extra <= 3; extra++ {
			budget := WeightedCP(l, g, p) + extra
			got, err := BalanceLoop(l, g, budget, p)
			if err != nil {
				t.Fatalf("case %d budget %d: %v", ci, budget, err)
			}
			want := bruteForceBalance(t, l, g, budget, p)
			if got.Cost < want-1e-6 {
				t.Fatalf("case %d budget %d: balancer %.2f below brute force %.2f (accounting bug)",
					ci, budget, got.Cost, want)
			}
			if want > 0 && got.Cost > want*1.5+1e-6 {
				t.Fatalf("case %d budget %d: balancer %.2f more than 1.5x optimum %.2f",
					ci, budget, got.Cost, want)
			}
			if want == 0 && got.Cost != 0 {
				t.Fatalf("case %d budget %d: optimum is conflict-free but balancer found %.2f",
					ci, budget, got.Cost)
			}
		}
	}
}

func TestPipelinedAllowsBudgetBelowCP(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	l := &s.Loops[0]
	g := groupsMap(s)
	linear := Params{}
	linear.normalize()
	cp := WeightedCP(l, g, linear)

	// Linear scheduling rejects budgets below the critical path…
	if _, err := BalanceLoop(l, g, cp-3, linear); err == nil {
		t.Fatal("linear balance accepted budget below CP")
	}
	// …modulo scheduling accepts them (iterations overlap).
	pipe := Params{Pipelined: true}
	pipe.normalize()
	sc, err := BalanceLoop(l, g, cp-3, pipe)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range l.Accesses {
		st := sc.Start[a.ID]
		if st < 0 {
			t.Fatalf("access %d unplaced", a.ID)
		}
		for _, dep := range a.Deps {
			if sc.Start[dep]+pipe.Duration(g[l.Accesses[dep].Group]) > st {
				t.Fatalf("pipelined schedule violates dependence %d -> %d", dep, a.ID)
			}
		}
	}
}

func TestPipelinedTightIIForcesOffChipPorts(t *testing.T) {
	// The Table 3 extension: pushing the initiation interval well below
	// the body's serial off-chip demand forces off-chip overlap — the
	// paper's off-chip cost jump at the tightest budget.
	s := fanInSpec(t, 5, 10, 1000)
	l := &s.Loops[0]
	g := groupsMap(s)
	pipe := Params{Pipelined: true}
	pipe.normalize()

	// 5 off-chip reads × 2 cycles = 10 busy cycles; II = 6 cannot host
	// them on one port.
	sc, err := BalanceLoop(l, g, 6, pipe)
	if err != nil {
		t.Fatal(err)
	}
	ports := RequiredPorts(PatternsOf(s, []*LoopSchedule{sc}, pipe))
	if ports["big"] < 2 {
		t.Fatalf("II 6 with 10 off-chip busy cycles: big needs %d ports, want >= 2", ports["big"])
	}
	// A relaxed II serializes them again.
	sc2, err := BalanceLoop(l, g, 22, pipe)
	if err != nil {
		t.Fatal(err)
	}
	ports2 := RequiredPorts(PatternsOf(s, []*LoopSchedule{sc2}, pipe))
	if ports2["big"] != 1 {
		t.Fatalf("relaxed II: big needs %d ports, want 1", ports2["big"])
	}
}

func TestPipelinedPatternAccounting(t *testing.T) {
	// Σ multiplicities × weight over the modulo patterns still equals the
	// total busy cycles per frame.
	s := fanInSpec(t, 3, 4, 10)
	l := &s.Loops[0]
	g := groupsMap(s)
	pipe := Params{Pipelined: true}
	pipe.normalize()
	sc, err := BalanceLoop(l, g, 5, pipe)
	if err != nil {
		t.Fatal(err)
	}
	var busy int
	for _, a := range l.Accesses {
		busy += pipe.Duration(g[a.Group])
	}
	var acc uint64
	for _, pt := range PatternsOf(s, []*LoopSchedule{sc}, pipe) {
		for _, k := range pt.Access {
			acc += uint64(k) * pt.Weight
		}
	}
	if acc != uint64(busy)*l.Iterations {
		t.Fatalf("pattern accounting %d != busy %d × iters %d", acc, busy, l.Iterations)
	}
}

func TestPipelinedDistributeBelowMACP(t *testing.T) {
	s := fanInSpec(t, 4, 5, 1000)
	// Weighted MACP = 7000; a linear distribute rejects 6000, a pipelined
	// one accepts it (at a conflict price).
	if _, err := Distribute(s, 6000, Params{}); err == nil {
		t.Fatal("linear distribute accepted budget below MACP")
	}
	d, err := Distribute(s, 6000, Params{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Used > 6000 {
		t.Fatalf("pipelined distribute overran: %d", d.Used)
	}
	// Tighter budgets cost more.
	d2, err := Distribute(s, 4000, Params{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Cost < d.Cost {
		t.Fatalf("tighter pipelined budget got cheaper: %.1f vs %.1f", d2.Cost, d.Cost)
	}
}

// Property: for random DAGs and feasible budgets, balanced schedules are
// always dependence- and budget-valid, and patterns account for every
// access-cycle.
func TestQuickScheduleValidity(t *testing.T) {
	f := func(edges []uint16, sizes []bool, extra uint8) bool {
		n := 8
		b := spec.NewBuilder("q")
		b.Group("on", 128, 8)
		b.Group("off", offWords, 8)
		depsOf := make([][]int, n)
		for _, e := range edges {
			from := int(e) % n
			to := int(e>>4) % n
			if from < to {
				depsOf[to] = append(depsOf[to], from)
			}
		}
		b.Loop("l", 3)
		for i := 0; i < n; i++ {
			grp := "on"
			if i < len(sizes) && sizes[i] {
				grp = "off"
			}
			b.Read(grp, 1, depsOf[i]...)
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		g := groupsMap(s)
		p := Params{}
		p.normalize()
		l := &s.Loops[0]
		budget := WeightedCP(l, g, p) + int(extra)%6
		sc, err := BalanceLoop(l, g, budget, p)
		if err != nil {
			return false
		}
		total := 0
		for _, a := range l.Accesses {
			st := sc.Start[a.ID]
			d := p.Duration(g[a.Group])
			if st < 0 || st+d > budget {
				return false
			}
			for _, dep := range a.Deps {
				if sc.Start[dep]+p.Duration(g[l.Accesses[dep].Group]) > st {
					return false
				}
			}
			total += d
		}
		// Pattern accounting: Σ multiplicities × weight = Σ durations × iters.
		var acc uint64
		for _, pt := range PatternsOf(s, []*LoopSchedule{sc}, p) {
			for _, k := range pt.Access {
				acc += uint64(k) * pt.Weight
			}
		}
		return acc == uint64(total)*l.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
