package sbd

import (
	"context"
	"testing"
	"time"
)

// TestDistributeContextCanceled: an already-canceled context must still
// produce a feasible distribution — every loop scheduled at its minimum
// budget — flagged Degraded, without errors.
func TestDistributeContextCanceled(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := DistributeContext(ctx, s, 40_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded {
		t.Fatal("canceled distribution not flagged Degraded")
	}
	if len(d.Loops) != len(s.Loops) {
		t.Fatalf("%d loop schedules for %d loops", len(d.Loops), len(s.Loops))
	}
	if d.Used > d.TotalBudget {
		t.Fatalf("used %d exceeds budget %d", d.Used, d.TotalBudget)
	}
	for _, ls := range d.Loops {
		if ls == nil || len(ls.Start) == 0 {
			t.Fatalf("loop %v has no schedule", ls)
		}
	}
	// Full exploration with the same generous budget reaches cost 0
	// (TestDistributeSpendsWhereItHelps); the degraded result may be worse
	// but must never be better than the optimum.
	full, err := Distribute(s, 40_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost < full.Cost {
		t.Fatalf("degraded cost %.1f below full exploration cost %.1f", d.Cost, full.Cost)
	}
}

// TestDistributeContextCanceledStillInfeasible: cancellation must not mask
// real infeasibility — a budget below the weighted MACP errors either way.
func TestDistributeContextCanceledStillInfeasible(t *testing.T) {
	s := fanInSpec(t, 4, 5, 1000) // weighted MACP = 7 * 1000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DistributeContext(ctx, s, 6999, Params{}); err == nil {
		t.Fatal("budget below MACP accepted under canceled context")
	}
}

// TestDistributeContextIsFast: the ~100ms acceptance bound at the sbd layer.
func TestDistributeContextIsFast(t *testing.T) {
	s := fanInSpec(t, 8, 30, 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := DistributeContext(ctx, s, 5_000_000, Params{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("canceled Distribute took %v, want < 100ms", el)
	}
}

// TestBalanceLoopContextCanceled: a canceled context still yields a
// complete, feasible single-loop schedule (the first greedy pass always
// runs; only the improvement passes are skipped).
func TestBalanceLoopContextCanceled(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := &s.Loops[0]
	ls, err := BalanceLoopContext(ctx, l, groupsMap(s), len(l.Accesses)+4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Start) != len(l.Accesses) {
		t.Fatalf("schedule covers %d of %d accesses", len(ls.Start), len(l.Accesses))
	}
	for id, st := range ls.Start {
		if st < 0 || st >= ls.Budget {
			t.Fatalf("access %d starts at cycle %d outside budget %d", id, st, ls.Budget)
		}
	}
}
