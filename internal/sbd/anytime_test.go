package sbd

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/memo"
)

// TestDistributeContextCanceled: an already-canceled context must still
// produce a feasible distribution — every loop scheduled at its minimum
// budget — flagged Degraded, without errors.
func TestDistributeContextCanceled(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := DistributeContext(ctx, s, 40_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded {
		t.Fatal("canceled distribution not flagged Degraded")
	}
	if len(d.Loops) != len(s.Loops) {
		t.Fatalf("%d loop schedules for %d loops", len(d.Loops), len(s.Loops))
	}
	if d.Used > d.TotalBudget {
		t.Fatalf("used %d exceeds budget %d", d.Used, d.TotalBudget)
	}
	for _, ls := range d.Loops {
		if ls == nil || len(ls.Start) == 0 {
			t.Fatalf("loop %v has no schedule", ls)
		}
	}
	// Full exploration with the same generous budget reaches cost 0
	// (TestDistributeSpendsWhereItHelps); the degraded result may be worse
	// but must never be better than the optimum.
	full, err := Distribute(s, 40_000, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost < full.Cost {
		t.Fatalf("degraded cost %.1f below full exploration cost %.1f", d.Cost, full.Cost)
	}
}

// TestDistributeContextCanceledStillInfeasible: cancellation must not mask
// real infeasibility — a budget below the weighted MACP errors either way.
func TestDistributeContextCanceledStillInfeasible(t *testing.T) {
	s := fanInSpec(t, 4, 5, 1000) // weighted MACP = 7 * 1000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DistributeContext(ctx, s, 6999, Params{}); err == nil {
		t.Fatal("budget below MACP accepted under canceled context")
	}
}

// TestDistributeContextIsFast: the ~100ms acceptance bound at the sbd layer.
func TestDistributeContextIsFast(t *testing.T) {
	s := fanInSpec(t, 8, 30, 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := DistributeContext(ctx, s, 5_000_000, Params{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("canceled Distribute took %v, want < 100ms", el)
	}
}

// TestDegradedScheduleDoesNotPoisonSession: a deadline-degraded
// distribution computed on a shared session cache must not leak its
// best-effort schedules into the cache — a later full-budget distribution
// on the same session must match a fresh, uncached one exactly.
func TestDegradedScheduleDoesNotPoisonSession(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	session := memo.New()

	// 1. Tight-deadline exploration on the shared session (context already
	// expired: every committed schedule skips its improvement passes).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	degraded, err := DistributeContext(ctx, s, 40_000, Params{Memo: session})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded {
		t.Fatal("tight-deadline distribution not flagged Degraded")
	}
	anyCut := false
	for _, ls := range degraded.Loops {
		anyCut = anyCut || ls.Degraded
	}
	if !anyCut {
		t.Fatal("no committed schedule carries the Degraded flag under a dead context")
	}

	// 2. Full-budget exploration on the SAME session.
	warm, err := Distribute(s, 40_000, Params{Memo: session})
	if err != nil {
		t.Fatal(err)
	}

	// 3. Reference: the same exploration with no cache at all.
	plain, err := Distribute(s, 40_000, Params{})
	if err != nil {
		t.Fatal(err)
	}

	if warm.Degraded {
		t.Fatal("full-budget run flagged Degraded")
	}
	if warm.Used != plain.Used || warm.Cost != plain.Cost {
		t.Fatalf("session poisoned: warm used=%d cost=%.1f, plain used=%d cost=%.1f",
			warm.Used, warm.Cost, plain.Used, plain.Cost)
	}
	if !reflect.DeepEqual(warm.Patterns, plain.Patterns) {
		t.Fatalf("session poisoned: patterns differ\nwarm:  %v\nplain: %v", warm.Patterns, plain.Patterns)
	}
	for i := range warm.Loops {
		w, p := warm.Loops[i], plain.Loops[i]
		if w.Budget != p.Budget || w.Cost != p.Cost || !reflect.DeepEqual(w.Start, p.Start) || w.Degraded {
			t.Fatalf("session poisoned: loop %d schedule differs (or is degraded): warm %+v plain %+v", i, w, p)
		}
	}
}

// TestDegradedScheduleNotStored: the schedule keyspace must record no entry
// for a curve point computed under an expired context.
func TestDegradedScheduleNotStored(t *testing.T) {
	s := fanInSpec(t, 3, 6, 500)
	session := memo.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DistributeContext(ctx, s, 20_000, Params{Memo: session}); err != nil {
		t.Fatal(err)
	}
	if st := session.Stats(memo.Schedule); st.Entries != 0 {
		t.Fatalf("degraded run left %d schedule entries in the session cache", st.Entries)
	}
}

// TestBalanceLoopContextCanceled: a canceled context still yields a
// complete, feasible single-loop schedule (the first greedy pass always
// runs; only the improvement passes are skipped).
func TestBalanceLoopContextCanceled(t *testing.T) {
	s := fanInSpec(t, 5, 10, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := &s.Loops[0]
	ls, err := BalanceLoopContext(ctx, l, groupsMap(s), len(l.Accesses)+4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Start) != len(l.Accesses) {
		t.Fatalf("schedule covers %d of %d accesses", len(ls.Start), len(l.Accesses))
	}
	for id, st := range ls.Start {
		if st < 0 || st >= ls.Budget {
			t.Fatalf("access %d starts at cycle %d outside budget %d", id, st, ls.Budget)
		}
	}
}
