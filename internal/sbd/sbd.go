// Package sbd implements the storage cycle budget distribution step (§4.5):
// deciding, for every loop body, in which storage cycle each memory access
// executes, such that the real-time cycle budget is met with the cheapest
// possible memory bandwidth.
//
// The package follows the published flow-graph balancing technique
// (Wuytack et al., "Minimizing the required memory bandwidth in VLSI system
// realizations") extended — as the paper's prototype tool was — to loops:
//
//   - Within one loop body, every access gets a cycle inside its ASAP/ALAP
//     window. Accesses to large (off-chip) arrays occupy several cycles.
//     Accesses that overlap in time create conflicts: same-group overlaps
//     force multiport memories, cross-group overlaps force the groups into
//     different memories (or more ports). Balancing searches for the
//     schedule with the cheapest conflict structure.
//   - Across loops, the frame-level storage cycle budget is distributed:
//     every loop body has a conflict-cost-versus-budget curve, and a
//     marginal-gain allocator spends the global budget where it buys the
//     largest cost reduction. Because giving a body one extra cycle costs
//     (iterations) cycles of global budget, budget changes come in
//     whole-loop quanta — the paper's ~300k-cycle jumps in Table 3.
//
// The output is the set of conflict patterns (which groups are accessed
// simultaneously, how often), which constrains the memory allocation and
// assignment step.
package sbd

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/dfg"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/scratch"
	"repro/internal/spec"
)

// Params configures the balancer and the cost model it optimizes.
type Params struct {
	// OnChipMaxWords separates on-chip from off-chip groups for the access
	// duration and penalty models. Default 64Ki.
	OnChipMaxWords int64
	// OffChipCycles is the duration of one off-chip access in storage
	// cycles (an EDO DRAM access spans multiple 20 MHz cycles). Default 2.
	OffChipCycles int
	// Passes bounds the local-search improvement passes. Default 4.
	Passes int
	// StructuralWeight scales the iteration-independent conflict term (see
	// StructuralWeight constant). Negative disables it; zero selects the
	// default.
	StructuralWeight float64
	// Obs is the parent telemetry span Distribute and BalanceLoop attach
	// their spans and counters to; nil disables instrumentation at
	// near-zero cost.
	Obs *obs.Span
	// Progress, when non-nil, is told which stage the exploration is in
	// (the serving layer's live-introspection side channel). Write-only:
	// results are identical with or without it.
	Progress *obs.Progress
	// Memo is the exploration session's cross-variant cache: loop
	// schedules and conflict-pattern derivations are memoized by canonical
	// fingerprints, so variants that leave a loop untouched re-use its
	// balanced schedule instead of re-scheduling. Nil disables caching.
	Memo *memo.Cache
	// Pipelined enables software pipelining (modulo scheduling): the
	// per-iteration budget becomes an initiation interval, successive
	// iterations overlap, and occupancy wraps around the interval. This
	// extension lets the budget drop below the dependence critical path —
	// the regime where the paper's Table 3 shows the off-chip organization
	// getting more expensive at the tightest budget.
	Pipelined bool
}

func (p *Params) normalize() {
	if p.OnChipMaxWords == 0 {
		p.OnChipMaxWords = 64 * 1024
	}
	if p.OffChipCycles == 0 {
		p.OffChipCycles = 2
	}
	if p.Passes == 0 {
		p.Passes = 4
	}
	if p.StructuralWeight == 0 {
		p.StructuralWeight = StructuralWeight
	} else if p.StructuralWeight < 0 {
		p.StructuralWeight = 0
	}
}

// Duration returns the number of storage cycles one access to g occupies.
func (p Params) Duration(g spec.BasicGroup) int {
	if g.Words > p.OnChipMaxWords {
		return p.OffChipCycles
	}
	return 1
}

// offChip reports whether g lives off-chip under these parameters.
func (p Params) offChip(g spec.BasicGroup) bool { return g.Words > p.OnChipMaxWords }

// proxy is the conflict-cost size proxy of a group: conflicts on bigger
// arrays are costlier to resolve (bigger memories, pricier extra ports).
func proxy(g spec.BasicGroup) float64 { return math.Sqrt(float64(g.BitSize())) }

// selfPenalty prices one unit of same-group overlap (each overlapping
// access beyond the first, per body execution).
func (p Params) selfPenalty(g spec.BasicGroup) float64 {
	if p.offChip(g) {
		return 20 * proxy(g)
	}
	return proxy(g)
}

// pairPenalty prices one co-scheduled pair of distinct groups of the same
// kind (it restricts assignment freedom). Cross-kind overlap is free: an
// on-chip and an off-chip access never compete for a memory.
func (p Params) pairPenalty(g, h spec.BasicGroup) float64 {
	if p.offChip(g) != p.offChip(h) {
		return 0
	}
	base := 0.05 * (proxy(g) + proxy(h)) / 2
	if p.offChip(g) {
		base *= 4 // parallel off-chip buses are expensive
	}
	return base
}

// Pattern is one distinct parallel-access situation: the multiset of groups
// accessed in the same storage cycle, and how many times per frame that
// cycle executes.
type Pattern struct {
	Access map[string]int // group -> simultaneous accesses
	Weight uint64         // executions per frame
}

// key returns a canonical identity for merging.
func (pt Pattern) key() string {
	k, _ := appendPatternKey(nil, pt.Access, nil)
	return string(k)
}

// sortStrings is an in-place insertion sort. The hot key builders sort a
// handful of group names per call; sort.Strings would box the slice into an
// interface and allocate on every call, which this avoids.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// appendPatternKey appends the canonical identity of an access multiset
// ("name:count;" in sorted name order) to dst. names is a reusable scratch
// slice for the sort; both are returned grown so callers can recycle their
// backing across calls.
func appendPatternKey(dst []byte, acc map[string]int, names []string) ([]byte, []string) {
	names = names[:0]
	for n := range acc {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		dst = append(dst, n...)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(acc[n]), 10)
		dst = append(dst, ';')
	}
	return dst, names
}

// appendLoopFingerprint appends a canonical identity of everything a loop's
// balanced schedule depends on: the loop name and iteration count, the
// access structure in slice order (ID, group, branch, dependences), the
// cost-relevant properties of every referenced group (words, bits, and the
// on/off-chip classification that sets durations and penalties), and the
// normalized balancer parameters. Loops with equal fingerprints balance to
// identical schedules at equal budgets, so the session cache's schedule
// keyspace is keyed by fingerprint plus budget. The on/off-chip threshold
// itself is deliberately absent: it only acts through the per-group
// classification, so budget points that move the threshold without
// reclassifying any referenced group still hit.
//
// The byte layout reproduces the historical fmt-based format exactly, so
// disk-tier caches written by earlier builds stay addressable. names is a
// reusable scratch slice (returned grown, like dst).
func appendLoopFingerprint(dst []byte, l *spec.Loop, groups map[string]spec.BasicGroup, p Params, names []string) ([]byte, []string) {
	dst = strconv.AppendQuote(dst, l.Name)
	dst = append(dst, " it="...)
	dst = strconv.AppendUint(dst, l.Iterations, 10)
	dst = append(dst, " oc="...)
	dst = strconv.AppendInt(dst, int64(p.OffChipCycles), 10)
	dst = append(dst, " ps="...)
	dst = strconv.AppendInt(dst, int64(p.Passes), 10)
	dst = append(dst, " sw="...)
	dst = strconv.AppendFloat(dst, p.StructuralWeight, 'g', -1, 64)
	dst = append(dst, " pl="...)
	dst = strconv.AppendBool(dst, p.Pipelined)
	names = names[:0]
	for i := range l.Accesses {
		a := &l.Accesses[i]
		known := false
		for _, n := range names {
			if n == a.Group {
				known = true
				break
			}
		}
		if !known {
			names = append(names, a.Group)
		}
		dst = append(dst, '|')
		dst = strconv.AppendInt(dst, int64(a.ID), 10)
		dst = append(dst, ':')
		dst = strconv.AppendQuote(dst, a.Group)
		dst = append(dst, ';')
		dst = strconv.AppendQuote(dst, a.Branch)
		dst = append(dst, ';')
		dst = append(dst, '[') // %v of []int
		for j, d := range a.Deps {
			if j > 0 {
				dst = append(dst, ' ')
			}
			dst = strconv.AppendInt(dst, int64(d), 10)
		}
		dst = append(dst, ']')
	}
	for _, n := range names {
		g := groups[n]
		dst = append(dst, "|g"...)
		dst = strconv.AppendInt(dst, g.Words, 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(g.Bits), 10)
		dst = append(dst, ',')
		dst = strconv.AppendBool(dst, p.offChip(g))
	}
	return dst, names
}

// loopFingerprint is the string form of appendLoopFingerprint, for callers
// off the hot path.
func loopFingerprint(l *spec.Loop, groups map[string]spec.BasicGroup, p Params) string {
	b, _ := appendLoopFingerprint(nil, l, groups, p, nil)
	return string(b)
}

// appendStarts canonically encodes a schedule's start cycles. It makes the
// pattern-derivation keyspace safe for hand-built schedules too: the cache
// key then pins the exact schedule, not just the problem that produced it.
func appendStarts(dst []byte, start []int) []byte {
	for _, v := range start {
		dst = strconv.AppendInt(dst, int64(v), 10)
		dst = append(dst, ',')
	}
	return dst
}

// appendPatternsFP appends a canonical identity of a conflict-pattern
// sequence: every pattern's sorted access multiset plus its weight, in
// sequence order (PatternsOf emits patterns in canonical sorted order, so
// pipeline-produced sets are order-stable; keeping the order in the
// fingerprint makes the cached result byte-identical to the uncached one
// even for callers that pass patterns in a different order).
func appendPatternsFP(dst []byte, pats []Pattern, names []string) ([]byte, []string) {
	for i := range pats {
		dst, names = appendPatternKey(dst, pats[i].Access, names)
		dst = append(dst, '@')
		dst = strconv.AppendUint(dst, pats[i].Weight, 10)
		dst = append(dst, '|')
	}
	return dst, names
}

// FingerprintPatterns is the string form of appendPatternsFP.
func FingerprintPatterns(pats []Pattern) string {
	b, _ := appendPatternsFP(nil, pats, nil)
	return string(b)
}

// StructuralWeight converts a schedule's structural conflict severity (the
// multiplicities it forces, regardless of how often the loop runs) into
// cost units comparable with the iteration-weighted occurrence cost. It is
// what makes the budget distributor de-conflict rarely-executed loops too:
// a memory's port count is the maximum over *all* loops, however cold.
const StructuralWeight = 200_000

// LoopSchedule is the balanced schedule of one loop body.
type LoopSchedule struct {
	Loop   string
	Budget int   // per-iteration storage cycle budget
	Start  []int // access ID -> start cycle
	// WeightedCost is the occurrence conflict cost × loop iterations;
	// StructuralCost prices the worst per-group multiplicity the schedule
	// forces, independent of iterations. Cost is their sum.
	WeightedCost   float64
	StructuralCost float64
	Cost           float64
	// Degraded is true when cancellation stopped the improvement passes
	// before they converged (or before their pass budget ran out): the
	// schedule is complete and feasible but possibly costlier than the one a
	// full run finds. A degraded schedule must never enter the cross-variant
	// session cache — a later full-budget run sharing the session would be
	// poisoned by it.
	Degraded bool
}

// groupsOf indexes the spec's groups by name.
func groupsOf(s *spec.Spec) map[string]spec.BasicGroup {
	m := make(map[string]spec.BasicGroup, len(s.Groups))
	for _, g := range s.Groups {
		m[g.Name] = g
	}
	return m
}

// scheduler is the working state for balancing one loop body. In linear
// mode the occupancy table spans the budget; in pipelined (modulo) mode it
// spans one initiation interval and accesses wrap around it.
//
// The inner loop (trialCost during placement and local search) runs millions
// of times per exploration sweep, so the working state is fully dense: the
// loop's distinct groups and branch tags are enumerated once at
// construction, the occupancy table is a flat counter array indexed by
// (cycle, branch, group), and the conflict penalties are precomputed into
// per-group and pairwise tables. No map is touched while scheduling — not
// even at construction: group and branch tags resolve by linear scan over
// the (few) distinct names, and all dense working state is carved from a
// pooled scratch arena, so building and discarding a scheduler allocates
// only the start slice that outlives it in the returned LoopSchedule.
type scheduler struct {
	l      *spec.Loop
	groups map[string]spec.BasicGroup
	p      Params
	ar     *scratch.Arena
	budget int   // linear budget, or the initiation interval when pipelined
	dur    []int // per access
	start  []int // per access, -1 = unplaced (heap: escapes via LoopSchedule)
	order  []int // one topological order, shared by windows and placement
	cost   float64

	succ    []int // successor lists in CSR form: succ[succOff[i]:succOff[i+1]]
	succOff []int

	ng, nb     int       // distinct groups / branch tags (slot 0 = common)
	gnames     []string  // gid -> group name, in first-appearance order
	gid, bid   []int     // per access -> group / branch index
	self       []float64 // per gid: same-group overlap penalty
	structW    []float64 // per gid: self[gid] × StructuralWeight
	pair       []float64 // gid × gid (row stride ng): distinct-pair penalty
	cnt        []int     // occupancy counters, [cycle][bid][gid] flattened
	act        []int     // nonzero-group count per [cycle][bid]
	merged     []int     // scratch: common ⊎ branch pattern, len ng
	structured []int     // scratch for structuralCost, len ng
}

// succs returns the successor IDs of access id.
func (s *scheduler) succs(id int) []int {
	return s.succ[s.succOff[id] : s.succOff[id+1] : s.succOff[id+1]]
}

// newScheduler builds the dense working state on the given arena (nil falls
// back to plain allocation, for tests).
func newScheduler(l *spec.Loop, groups map[string]spec.BasicGroup, budget int, p Params, ar *scratch.Arena) *scheduler {
	n := len(l.Accesses)
	s := &scheduler{
		l: l, groups: groups, p: p, ar: ar, budget: budget,
		dur:   ar.Ints(n),
		start: make([]int, n),
		gid:   ar.Ints(n),
		bid:   ar.Ints(n),
		nb:    1,
	}
	s.order = dfg.TopoOrderScratch(l, ar)
	// Successor lists, CSR: count per node, prefix-sum, fill. The fill
	// visits accesses in slice order, so each node's successors appear in
	// the same order the old per-node append produced.
	edges := 0
	for i := range l.Accesses {
		edges += len(l.Accesses[i].Deps)
	}
	s.succOff = ar.Ints(n + 1)
	s.succ = ar.Ints(edges)
	cur := ar.Ints(n)
	for i := range l.Accesses {
		for _, d := range l.Accesses[i].Deps {
			cur[d]++
		}
	}
	sum := 0
	for i := 0; i < n; i++ {
		s.succOff[i] = sum
		sum += cur[i]
		cur[i] = s.succOff[i]
	}
	s.succOff[n] = sum
	s.gnames = ar.Strings(n)[:0]
	bnames := ar.Strings(n + 1)[:0]
	bnames = append(bnames, "")
	for i := range l.Accesses {
		a := &l.Accesses[i]
		s.dur[i] = p.Duration(groups[a.Group])
		s.start[i] = -1
		for _, d := range a.Deps {
			s.succ[cur[d]] = a.ID
			cur[d]++
		}
		gi := -1
		for j, gn := range s.gnames {
			if gn == a.Group {
				gi = j
				break
			}
		}
		if gi < 0 {
			gi = len(s.gnames)
			s.gnames = append(s.gnames, a.Group)
		}
		s.gid[i] = gi
		bi := -1
		for j, bn := range bnames {
			if bn == a.Branch {
				bi = j
				break
			}
		}
		if bi < 0 {
			bi = len(bnames)
			bnames = append(bnames, a.Branch)
		}
		s.bid[i] = bi
	}
	s.nb = len(bnames)
	s.ng = len(s.gnames)
	s.self = ar.Float64s(s.ng)
	s.structW = ar.Float64s(s.ng)
	s.pair = ar.Float64s(s.ng * s.ng)
	for i, gn := range s.gnames {
		g := groups[gn]
		s.self[i] = p.selfPenalty(g)
		s.structW[i] = s.self[i] * p.StructuralWeight
	}
	for i := 0; i < s.ng; i++ {
		for j := i + 1; j < s.ng; j++ {
			v := p.pairPenalty(groups[s.gnames[i]], groups[s.gnames[j]])
			s.pair[i*s.ng+j], s.pair[j*s.ng+i] = v, v
		}
	}
	s.cnt = ar.Ints(budget * s.nb * s.ng)
	s.act = ar.Ints(budget * s.nb)
	s.merged = ar.Ints(s.ng)
	s.structured = ar.Ints(s.ng)
	return s
}

// patternCost prices one effective access pattern (counts per gid).
// Same-group overlap is priced superlinearly: every extra port on a memory
// costs more than the previous one, so the balancer prefers two cycles with
// doubled accesses over one cycle with quadrupled accesses.
func (s *scheduler) patternCost(cnt []int) float64 {
	var c float64
	for i, k := range cnt {
		if k == 0 {
			continue
		}
		if k > 1 {
			c += float64((k-1)*(k-1)) * s.self[i]
		}
		row := s.pair[i*s.ng : (i+1)*s.ng]
		for j := i + 1; j < len(cnt); j++ {
			if cnt[j] != 0 {
				c += row[j]
			}
		}
	}
	return c
}

// cycleCost prices one cycle: the worst case over its branch scenarios.
// Accesses under different branch tags are mutually exclusive, so the
// effective pattern is the common part plus one branch (common-only is
// pointwise-dominated whenever any branch is active).
func (s *scheduler) cycleCost(slot int) float64 {
	base := slot * s.nb * s.ng
	common := s.cnt[base : base+s.ng]
	worst := 0.0
	anyBranch := false
	for b := 1; b < s.nb; b++ {
		if s.act[slot*s.nb+b] == 0 {
			continue
		}
		anyBranch = true
		br := s.cnt[base+b*s.ng : base+(b+1)*s.ng]
		for g := range s.merged {
			s.merged[g] = common[g] + br[g]
		}
		if c := s.patternCost(s.merged); c > worst {
			worst = c
		}
	}
	if !anyBranch {
		if s.act[slot*s.nb] == 0 {
			return 0
		}
		return s.patternCost(common)
	}
	return worst
}

// slot maps an absolute cycle to an occupancy slot: identity in linear
// mode, modulo the initiation interval when pipelined.
func (s *scheduler) slot(k int) int {
	if s.p.Pipelined {
		return k % s.budget
	}
	return k
}

// place puts access id at cycle c, updating occupancy and cost.
func (s *scheduler) place(id, c int) {
	g, b := s.gid[id], s.bid[id]
	for k := c; k < c+s.dur[id]; k++ {
		slot := s.slot(k)
		s.cost -= s.cycleCost(slot)
		i := (slot*s.nb+b)*s.ng + g
		if s.cnt[i] == 0 {
			s.act[slot*s.nb+b]++
		}
		s.cnt[i]++
		s.cost += s.cycleCost(slot)
	}
	s.start[id] = c
}

// unplace removes access id from the schedule.
func (s *scheduler) unplace(id int) {
	g, b := s.gid[id], s.bid[id]
	c := s.start[id]
	for k := c; k < c+s.dur[id]; k++ {
		slot := s.slot(k)
		s.cost -= s.cycleCost(slot)
		i := (slot*s.nb+b)*s.ng + g
		if s.cnt[i]--; s.cnt[i] == 0 {
			s.act[slot*s.nb+b]--
		}
		s.cost += s.cycleCost(slot)
	}
	s.start[id] = -1
}

// trialCost returns the cost after hypothetically placing id at c.
func (s *scheduler) trialCost(id, c int) float64 {
	s.place(id, c)
	v := s.cost
	s.unplace(id)
	return v
}

// window returns the feasible start range of id given the current positions
// of its placed neighbours (deps must finish first, successors must be
// startable after).
func (s *scheduler) window(id int, asap, alap []int) (lo, hi int) {
	lo, hi = asap[id], alap[id]
	for _, d := range s.l.Accesses[id].Deps {
		if s.start[d] >= 0 && s.start[d]+s.dur[d] > lo {
			lo = s.start[d] + s.dur[d]
		}
	}
	for _, sc := range s.succs(id) {
		if s.start[sc] >= 0 && s.start[sc]-s.dur[id] < hi {
			hi = s.start[sc] - s.dur[id]
		}
	}
	return lo, hi
}

// pipelinedWindows computes the start windows for modulo scheduling: ASAP
// from the dependences, one initiation interval of slack for each access.
func (s *scheduler) pipelinedWindows() (asap, alap []int) {
	n := len(s.l.Accesses)
	asap = s.ar.Ints(n)
	alap = s.ar.Ints(n)
	for _, id := range s.order {
		st := 0
		for _, d := range s.l.Accesses[id].Deps {
			if f := asap[d] + s.dur[d]; f > st {
				st = f
			}
		}
		asap[id] = st
		alap[id] = st + s.budget - 1
	}
	return asap, alap
}

// asapAlap computes duration-weighted start windows; returns an error when
// the budget is below the duration-weighted critical path.
func (s *scheduler) asapAlap() (asap, alap []int, err error) {
	n := len(s.l.Accesses)
	asap = s.ar.Ints(n)
	alap = s.ar.Ints(n)
	for _, id := range s.order {
		st := 0
		for _, d := range s.l.Accesses[id].Deps {
			if f := asap[d] + s.dur[d]; f > st {
				st = f
			}
		}
		asap[id] = st
	}
	for i := n - 1; i >= 0; i-- {
		id := s.order[i]
		la := s.budget - s.dur[id]
		for _, sc := range s.succs(id) {
			if v := alap[sc] - s.dur[id]; v < la {
				la = v
			}
		}
		alap[id] = la
		if la < asap[id] {
			return nil, nil, fmt.Errorf("sbd: loop %q: budget %d below weighted critical path",
				s.l.Name, s.budget)
		}
	}
	return asap, alap, nil
}

// WeightedCP returns the duration-weighted critical path of the loop body:
// its minimum feasible per-iteration budget.
func WeightedCP(l *spec.Loop, groups map[string]spec.BasicGroup, p Params) int {
	p.normalize()
	ar := scratch.Get()
	defer scratch.Put(ar)
	return weightedCP(l, groups, p, ar)
}

// weightedCP is WeightedCP on a caller-owned arena with p already
// normalized.
func weightedCP(l *spec.Loop, groups map[string]spec.BasicGroup, p Params, ar *scratch.Arena) int {
	longest := 0
	finish := ar.Ints(len(l.Accesses))
	for _, id := range dfg.TopoOrderScratch(l, ar) {
		st := 0
		for _, d := range l.Accesses[id].Deps {
			if finish[d] > st {
				st = finish[d]
			}
		}
		finish[id] = st + p.Duration(groups[l.Accesses[id].Group])
		if finish[id] > longest {
			longest = finish[id]
		}
	}
	return longest
}

// BalanceLoop schedules one loop body within the given per-iteration budget
// (the initiation interval when pipelining is enabled) and returns the
// schedule with its conflict cost (already weighted by the loop's iteration
// count).
func BalanceLoop(l *spec.Loop, groups map[string]spec.BasicGroup, budget int, p Params) (*LoopSchedule, error) {
	return BalanceLoopContext(context.Background(), l, groups, budget, p)
}

// BalanceLoopContext is BalanceLoop with cancellation support: when ctx is
// done, the local-search improvement passes stop early (checked once per
// pass) and the current schedule — always complete and feasible after the
// initial placement — is returned.
func BalanceLoopContext(ctx context.Context, l *spec.Loop, groups map[string]spec.BasicGroup, budget int, p Params) (*LoopSchedule, error) {
	p.normalize()
	if len(l.Accesses) == 0 {
		return &LoopSchedule{Loop: l.Name, Budget: budget}, nil
	}
	if budget < 1 {
		return nil, fmt.Errorf("sbd: loop %q: budget %d out of range", l.Name, budget)
	}
	ar := scratch.Get()
	defer scratch.Put(ar)
	s := newScheduler(l, groups, budget, p, ar)
	var asap, alap []int
	var err error
	if p.Pipelined {
		// Modulo scheduling: dependences define the earliest starts, each
		// access gets one initiation interval of slack, and occupancy wraps.
		asap, alap = s.pipelinedWindows()
	} else {
		asap, alap, err = s.asapAlap()
		if err != nil {
			return nil, err
		}
	}
	// Initial placement: topological order, cheapest feasible cycle
	// (earliest on ties keeps the schedule compact and deterministic).
	for _, id := range s.order {
		lo, hi := s.window(id, asap, alap)
		bestC, bestV := lo, math.Inf(1)
		for c := lo; c <= hi; c++ {
			if v := s.trialCost(id, c); v < bestV-1e-12 {
				bestC, bestV = c, v
			}
		}
		s.place(id, bestC)
	}
	// Local search: move single accesses to cheaper cycles until fixpoint.
	// The initial placement is already a complete feasible schedule, so the
	// improvement passes can stop at any pass boundary under cancellation.
	done := ctx.Done()
	passes, moves := 0, 0
	degraded := false
	for pass := 0; pass < p.Passes; pass++ {
		if done != nil {
			select {
			case <-done:
				degraded = true
			default:
			}
		}
		if degraded {
			// Stopped before convergence (or before the pass budget ran out
			// deterministically): the schedule is valid but best-effort.
			break
		}
		passes++
		improved := false
		for id := range l.Accesses {
			cur := s.start[id]
			s.unplace(id)
			lo, hi := s.window(id, asap, alap)
			bestC, bestV := cur, s.trialCost(id, cur)
			for c := lo; c <= hi; c++ {
				if c == cur {
					continue
				}
				if v := s.trialCost(id, c); v < bestV-1e-9 {
					bestC, bestV = c, v
				}
			}
			s.place(id, bestC)
			if bestC != cur {
				improved = true
				moves++
			}
		}
		if !improved {
			break
		}
	}
	if o := p.Obs.Observer(); o != nil {
		o.Counter("sbd.balance_calls").Add(1)
		o.Counter("sbd.balance_passes").Add(int64(passes))
		o.Counter("sbd.balance_moves").Add(int64(moves))
	}
	weighted := s.cost * float64(l.Iterations)
	structural := s.structuralCost()
	return &LoopSchedule{
		Loop:           l.Name,
		Budget:         budget,
		Start:          s.start,
		WeightedCost:   weighted,
		StructuralCost: structural,
		Cost:           weighted + structural,
		Degraded:       degraded,
	}, nil
}

// structuralCost prices the worst same-group multiplicity each group
// suffers anywhere in the schedule (superlinearly, like patternCost).
func (s *scheduler) structuralCost() float64 {
	maxMult := s.structured
	for g := range maxMult {
		maxMult[g] = 0
	}
	for slot := 0; slot < s.budget; slot++ {
		base := slot * s.nb * s.ng
		common := s.cnt[base : base+s.ng]
		anyBranch := false
		for b := 1; b < s.nb; b++ {
			if s.act[slot*s.nb+b] == 0 {
				continue
			}
			anyBranch = true
			br := s.cnt[base+b*s.ng : base+(b+1)*s.ng]
			for g := range maxMult {
				if k := common[g] + br[g]; k > maxMult[g] {
					maxMult[g] = k
				}
			}
		}
		if !anyBranch {
			for g := range maxMult {
				if common[g] > maxMult[g] {
					maxMult[g] = common[g]
				}
			}
		}
	}
	var c float64
	for g, k := range maxMult {
		if k > 1 {
			c += float64((k-1)*(k-1)) * s.structW[g]
		}
	}
	return c
}

// loopPatterns derives the conflict-pattern contribution of one committed
// loop schedule, merged and sorted by canonical key. The result is shared
// through the session cache, so callers must treat it as immutable.
//
// The occupancy is accumulated in a dense (cycle, branch, group) counter
// table on a pooled arena — the map-of-maps per cycle this replaces was one
// of the largest allocation sites of an exploration. A cycle's effective
// access pattern is the common (unconditional) part plus one branch:
// accesses under different branch tags are mutually exclusive, and the
// common-only pattern is pointwise-dominated whenever any branch is active.
// Only the distinct output patterns materialize maps, and those are fresh
// heap values safe to share through the cache.
func loopPatterns(l *spec.Loop, sc *LoopSchedule, groups map[string]spec.BasicGroup, p Params) []Pattern {
	ar := scratch.Get()
	defer scratch.Put(ar)
	n := len(l.Accesses)
	// Enumerate the distinct group and branch names (slot 0 = common).
	gnames := ar.Strings(n)[:0]
	bnames := ar.Strings(n + 1)[:0]
	bnames = append(bnames, "")
	gid := ar.Ints(n)
	bid := ar.Ints(n)
	for i := range l.Accesses {
		a := &l.Accesses[i]
		gi := -1
		for j, gn := range gnames {
			if gn == a.Group {
				gi = j
				break
			}
		}
		if gi < 0 {
			gi = len(gnames)
			gnames = append(gnames, a.Group)
		}
		gid[i] = gi
		bi := -1
		for j, bn := range bnames {
			if bn == a.Branch {
				bi = j
				break
			}
		}
		if bi < 0 {
			bi = len(bnames)
			bnames = append(bnames, a.Branch)
		}
		bid[i] = bi
	}
	ng, nb := len(gnames), len(bnames)
	cnt := ar.Ints(sc.Budget * nb * ng)
	for i := range l.Accesses {
		a := &l.Accesses[i]
		d := p.Duration(groups[a.Group])
		for k := sc.Start[a.ID]; k < sc.Start[a.ID]+d; k++ {
			ki := k
			if p.Pipelined {
				ki = k % sc.Budget
			}
			cnt[(ki*nb+bid[i])*ng+gid[i]]++
		}
	}
	// gids in sorted-name order, so the canonical "name:count;" keys come
	// out identical to sorting each pattern's names.
	sortedGid := ar.Ints(ng)
	for i := range sortedGid {
		sortedGid[i] = i
	}
	for i := 1; i < ng; i++ {
		for j := i; j > 0 && gnames[sortedGid[j]] < gnames[sortedGid[j-1]]; j-- {
			sortedGid[j], sortedGid[j-1] = sortedGid[j-1], sortedGid[j]
		}
	}
	merged := ar.Ints(ng)
	keyBuf := ar.Buf(256)
	byKey := make(map[string]*Pattern)
	emit := func(pat []int) {
		keyBuf = keyBuf[:0]
		nz := 0
		for _, gi := range sortedGid {
			if pat[gi] == 0 {
				continue
			}
			nz++
			keyBuf = append(keyBuf, gnames[gi]...)
			keyBuf = append(keyBuf, ':')
			keyBuf = strconv.AppendInt(keyBuf, int64(pat[gi]), 10)
			keyBuf = append(keyBuf, ';')
		}
		if nz == 0 {
			return
		}
		if ex := byKey[string(keyBuf)]; ex != nil {
			ex.Weight += l.Iterations
			return
		}
		cp := Pattern{Access: make(map[string]int, nz), Weight: l.Iterations}
		for gi, c := range pat {
			if c != 0 {
				cp.Access[gnames[gi]] = c
			}
		}
		byKey[string(keyBuf)] = &cp
	}
	for slot := 0; slot < sc.Budget; slot++ {
		base := slot * nb * ng
		common := cnt[base : base+ng]
		anyBranch := false
		for b := 1; b < nb; b++ {
			br := cnt[base+b*ng : base+(b+1)*ng]
			active := false
			for _, v := range br {
				if v != 0 {
					active = true
					break
				}
			}
			if !active {
				continue
			}
			anyBranch = true
			for g := range merged {
				merged[g] = common[g] + br[g]
			}
			emit(merged)
		}
		if !anyBranch {
			emit(common)
		}
	}
	return sortedPatterns(byKey)
}

// sortedPatterns flattens a merge map into the canonical sorted order.
func sortedPatterns(byKey map[string]*Pattern) []Pattern {
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Pattern, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// PatternsOf derives the merged conflict patterns of a set of schedules.
// With a session cache attached (p.Memo), each loop's contribution is
// memoized by its structural fingerprint, budget, and exact start cycles,
// so re-deriving the patterns of an unchanged loop costs a lookup.
func PatternsOf(s *spec.Spec, scheds []*LoopSchedule, p Params) []Pattern {
	p.normalize()
	ar := scratch.Get()
	defer scratch.Put(ar)
	return patternsOf(s, scheds, groupsOf(s), p, ar)
}

// patternsOf is PatternsOf on caller-owned groups and arena (p already
// normalized): the distributor calls it with the state it already built.
// All fingerprint and merge keys are assembled in reusable arena buffers
// and looked up bytewise, so a fully cached derivation allocates only the
// merged output.
func patternsOf(s *spec.Spec, scheds []*LoopSchedule, groups map[string]spec.BasicGroup, p Params, ar *scratch.Arena) []Pattern {
	byKey := make(map[string]*Pattern)
	kb := ar.Buf(1024)
	names := ar.Strings(16)[:0]
	for _, sc := range scheds {
		var l *spec.Loop
		for i := range s.Loops {
			if s.Loops[i].Name == sc.Loop {
				l = &s.Loops[i]
				break
			}
		}
		if l == nil || len(l.Accesses) == 0 {
			continue
		}
		var lp []Pattern
		if p.Memo != nil {
			kb, names = appendLoopFingerprint(kb[:0], l, groups, p, names)
			kb = append(kb, '#')
			kb = strconv.AppendInt(kb, int64(sc.Budget), 10)
			kb = append(kb, '#')
			kb = appendStarts(kb, sc.Start)
			lp = p.Memo.DoKey(memo.LoopPatterns, kb, func() (any, bool) {
				return loopPatterns(l, sc, groups, p), true
			}).([]Pattern)
		} else {
			lp = loopPatterns(l, sc, groups, p)
		}
		for i := range lp {
			pt := &lp[i]
			kb, names = appendPatternKey(kb[:0], pt.Access, names)
			if ex := byKey[string(kb)]; ex != nil {
				ex.Weight += pt.Weight
			} else {
				cp := Pattern{Access: make(map[string]int, len(pt.Access)), Weight: pt.Weight}
				for g, c := range pt.Access {
					cp.Access[g] = c
				}
				byKey[string(kb)] = &cp
			}
		}
	}
	return sortedPatterns(byKey)
}

// PrunePatterns removes patterns dominated by another pattern (every
// group's multiplicity ≤ the other's). Dominated patterns never determine a
// memory's port requirement, so dropping them loses nothing for the
// allocation step while shrinking its constraint set dramatically.
func PrunePatterns(pats []Pattern) []Pattern {
	dominatedBy := func(a, b Pattern) bool { // a ≤ b pointwise
		for g, k := range a.Access {
			if b.Access[g] < k {
				return false
			}
		}
		return true
	}
	var out []Pattern
	for i, a := range pats {
		dominated := false
		for j, b := range pats {
			if i == j {
				continue
			}
			if dominatedBy(a, b) && (!dominatedBy(b, a) || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// PrunePatternsCached is PrunePatterns through the session cache, keyed by
// the pattern multiset. The evaluation pipeline prunes the same
// distribution's patterns once per assignment sweep point; with the cache
// every repeat costs one fingerprint and a lookup. The returned slice is
// shared and must be treated as immutable. Safe with a nil cache.
func PrunePatternsCached(c *memo.Cache, pats []Pattern) []Pattern {
	if c == nil {
		return PrunePatterns(pats)
	}
	ar := scratch.Get()
	defer scratch.Put(ar)
	kb, _ := appendPatternsFP(ar.Buf(1024), pats, ar.Strings(16)[:0])
	return c.DoKey(memo.PrunedPatterns, kb, func() (any, bool) {
		return PrunePatterns(pats), true
	}).([]Pattern)
}

// RequiredPortsCached is RequiredPorts through the session cache, keyed by
// the pattern multiset. The returned map is shared and must be treated as
// immutable. Safe with a nil cache.
func RequiredPortsCached(c *memo.Cache, pats []Pattern) map[string]int {
	if c == nil {
		return RequiredPorts(pats)
	}
	ar := scratch.Get()
	defer scratch.Put(ar)
	kb, _ := appendPatternsFP(ar.Buf(1024), pats, ar.Strings(16)[:0])
	return c.DoKey(memo.Ports, kb, func() (any, bool) {
		return RequiredPorts(pats), true
	}).(map[string]int)
}

// RequiredPorts returns, per group, the maximum simultaneity the schedule
// imposes on it: the minimum port count of whatever memory it lands in.
func RequiredPorts(patterns []Pattern) map[string]int {
	ports := make(map[string]int)
	for _, pt := range patterns {
		for g, k := range pt.Access {
			if k > ports[g] {
				ports[g] = k
			}
		}
	}
	return ports
}

// Distribution is the result of distributing the frame budget over loops.
type Distribution struct {
	TotalBudget uint64 // the budget that was offered
	Used        uint64 // Σ budget_l × iterations_l actually committed
	Loops       []*LoopSchedule
	Patterns    []Pattern
	Cost        float64 // Σ weighted conflict costs
	// Degraded is true when a deadline or cancellation cut the exploration
	// short: the distribution is valid and feasible (every loop meets its
	// committed budget) but profitable budget moves may have been skipped.
	Degraded bool
}

// ExtraCycles returns the cycles left over for data-path scheduling — the
// quantity the paper's Table 3 reports ("extra cycles for data-path").
func (d *Distribution) ExtraCycles() uint64 { return d.TotalBudget - d.Used }

// Distribute allocates the global storage cycle budget over the loop bodies
// and balances each, minimizing total conflict cost. It fails if the budget
// is below the specification's duration-weighted MACP (then only loop
// transformations can help, §4.2).
func Distribute(s *spec.Spec, totalBudget uint64, p Params) (*Distribution, error) {
	return DistributeContext(context.Background(), s, totalBudget, p)
}

// DistributeContext is Distribute with deadline and cancellation support.
// The distribution is *anytime*: every loop's minimum-budget schedule is
// always built (so a feasible problem always yields a feasible result), and
// when ctx expires the remaining curve points and budget moves are skipped
// with Degraded=true. Real infeasibility (budget below the weighted MACP)
// still errors regardless of the context.
func DistributeContext(ctx context.Context, s *spec.Spec, totalBudget uint64, p Params) (*Distribution, error) {
	p.normalize()
	sp := p.Obs.Child("sbd.distribute")
	defer sp.End()
	p.Progress.SetStage("sbd")
	sp.SetInt("budget", int64(totalBudget))
	groups := groupsOf(s)
	ar := scratch.Get()
	defer scratch.Put(ar)

	type curve struct {
		loop   *spec.Loop
		fp     []byte          // schedule-cache fingerprint (when p.Memo is set)
		min    int             // weighted critical path
		max    int             // budget beyond which cost is zero anyway
		scheds []*LoopSchedule // index: budget - min
		chosen int             // index into scheds
	}
	curves := make([]*curve, 0, len(s.Loops))
	fpNames := ar.Strings(16)[:0]
	var minTotal uint64
	for i := range s.Loops {
		l := &s.Loops[i]
		if len(l.Accesses) == 0 {
			continue
		}
		cv := &curve{loop: l, min: weightedCP(l, groups, p, ar)}
		if p.Memo != nil {
			cv.fp, fpNames = appendLoopFingerprint(ar.Buf(512), l, groups, p, fpNames)
		}
		if p.Pipelined {
			// Modulo scheduling: the initiation interval may drop below the
			// critical path, down to the longest single access.
			cv.min = 1
			for _, a := range l.Accesses {
				if d := p.Duration(groups[a.Group]); d > cv.min {
					cv.min = d
				}
			}
		}
		// Past Σ durations the trivially serial schedule is conflict-free.
		sumDur := 0
		for _, a := range l.Accesses {
			sumDur += p.Duration(groups[a.Group])
		}
		cv.max = sumDur
		if cv.max < cv.min {
			cv.max = cv.min
		}
		minTotal += uint64(cv.min) * l.Iterations
		curves = append(curves, cv)
	}
	if minTotal > totalBudget {
		return nil, fmt.Errorf(
			"sbd: budget %d below weighted MACP %d; apply loop transformations first",
			totalBudget, minTotal)
	}
	done := ctx.Done()
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	degraded := false
	// balance resolves one curve point, through the session cache when one
	// is attached. A fully converged result is deterministic and cached; one
	// degraded by cancellation (improvement passes cut short, reported by
	// the schedule's own Degraded flag) is returned but not cached, so later
	// callers with a live context redo it properly — a degraded schedule
	// entering the session cache would poison every later full-budget run
	// sharing the session. Deterministic infeasibility errors are cached
	// too. Concurrent sweep points requesting the same curve share one
	// computation (singleflight).
	type schedResult struct {
		sc  *LoopSchedule
		err error
	}
	kb := ar.Buf(1024)
	balance := func(cv *curve, b int) (*LoopSchedule, error) {
		if p.Memo == nil {
			return BalanceLoopContext(ctx, cv.loop, groups, b, p)
		}
		kb = append(kb[:0], cv.fp...)
		kb = append(kb, '#')
		kb = strconv.AppendInt(kb, int64(b), 10)
		r := p.Memo.DoKey(memo.Schedule, kb, func() (any, bool) {
			sc, err := BalanceLoopContext(ctx, cv.loop, groups, b, p)
			return schedResult{sc, err}, err != nil || !sc.Degraded
		}).(schedResult)
		return r.sc, r.err
	}
	// Build cost curves lazily up to max, then monotonize: a schedule found
	// at a smaller budget is valid (and committed) at any larger one. The
	// minimum-budget point is always built — it is what keeps a degraded
	// distribution feasible — so cancellation only trims the looser points.
	for _, cv := range curves {
		for b := cv.min; b <= cv.max; b++ {
			if b > cv.min && canceled() {
				degraded = true
				break
			}
			sc, err := balance(cv, b)
			if err != nil {
				return nil, err
			}
			cv.scheds = append(cv.scheds, sc)
			if sc.Cost == 0 {
				cv.max = b // no point in exploring looser budgets
				break
			}
		}
		for j := 1; j < len(cv.scheds); j++ {
			if cv.scheds[j].Cost >= cv.scheds[j-1].Cost {
				cv.scheds[j] = cv.scheds[j-1]
			}
		}
	}
	remaining := totalBudget - minTotal
	// Marginal-gain allocation with look-ahead (the cost curves need not be
	// convex): repeatedly advance the loop whose next profitable curve
	// point buys the largest cost reduction per global cycle spent.
	for {
		best, bestJ := -1, 0
		bestRatio := 0.0
		for i, cv := range curves {
			for j := cv.chosen + 1; j < len(cv.scheds); j++ {
				spend := uint64(j-cv.chosen) * cv.loop.Iterations
				if spend > remaining {
					break
				}
				gain := cv.scheds[cv.chosen].Cost - cv.scheds[j].Cost
				if gain <= 0 {
					continue
				}
				ratio := gain / float64(spend)
				if ratio > bestRatio+1e-12 {
					best, bestJ, bestRatio = i, j, ratio
				}
			}
		}
		if best < 0 {
			break
		}
		if canceled() {
			degraded = true // a profitable move existed but was skipped
			break
		}
		remaining -= uint64(bestJ-curves[best].chosen) * curves[best].loop.Iterations
		curves[best].chosen = bestJ
	}

	// A committed schedule that was itself cut short degrades the whole
	// distribution, even when every curve point and budget move ran: a
	// single-point curve under a dead context commits its (best-effort)
	// minimum schedule without tripping the sweep-level checks above.
	d := &Distribution{TotalBudget: totalBudget}
	for _, cv := range curves {
		sc := cv.scheds[cv.chosen]
		if sc.Degraded {
			degraded = true
		}
		d.Loops = append(d.Loops, sc)
		d.Used += uint64(sc.Budget) * cv.loop.Iterations
		d.Cost += sc.Cost
	}
	d.Degraded = degraded
	d.Patterns = patternsOf(s, d.Loops, groups, p, ar)
	if sp != nil {
		points := 0
		for _, cv := range curves {
			points += len(cv.scheds)
		}
		sp.SetInt("loops", int64(len(curves)))
		sp.SetInt("curve_points", int64(points))
		sp.SetInt("patterns", int64(len(d.Patterns)))
		sp.SetInt("conflict_groups", int64(len(RequiredPortsCached(p.Memo, d.Patterns))))
		sp.SetInt("used", int64(d.Used))
		sp.SetFloat("conflict_cost", d.Cost)
		sp.Observer().Counter(
			obs.Label("sbd.distributions", "pipelined", strconv.FormatBool(p.Pipelined))).Add(1)
		if degraded {
			sp.SetInt("degraded", 1)
			sp.Observer().Counter("sbd.deadline_fallbacks").Add(1)
		}
	}
	return d, nil
}
