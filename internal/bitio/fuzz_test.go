package bitio

import (
	"testing"
)

// FuzzBitioRoundTrip interprets the fuzz input as a script of write
// operations, runs it through a Writer, and checks that a Reader over the
// produced bytes returns exactly the written values — the MSB-first
// round-trip invariant the entropy coders depend on.
//
// Script encoding (one op per chunk, self-delimiting):
//   - byte%3 == 0: WriteBit of the byte's high bit
//   - byte%3 == 1: WriteBits of the next 8 bytes (LE value), width next%65
//   - byte%3 == 2: WriteUnary of next byte %64
func FuzzBitioRoundTrip(f *testing.F) {
	// Seeds shaped like the golden streams of the coder tests: single bits,
	// a wide field, a unary run, and a mixed script.
	f.Add([]byte{0x80, 0x00, 0x03})
	f.Add([]byte{0x01, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x21})
	f.Add([]byte{0x02, 0x0b})
	f.Add([]byte{0x80, 0x02, 0x05, 0x01, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0x40, 0x00})
	f.Fuzz(func(t *testing.T, script []byte) {
		type op struct {
			kind  int
			value uint64
			width uint
		}
		var ops []op
		w := NewWriter()
		for i := 0; i < len(script); {
			switch k := script[i] % 3; k {
			case 0:
				bit := int(script[i] >> 7)
				w.WriteBit(bit)
				ops = append(ops, op{kind: 0, value: uint64(bit)})
				i++
			case 1:
				if i+9 >= len(script) {
					i = len(script)
					break
				}
				var v uint64
				for j := 0; j < 8; j++ {
					v |= uint64(script[i+1+j]) << (8 * j)
				}
				n := uint(script[i+9]) % 65
				w.WriteBits(v, n)
				mask := ^uint64(0)
				if n < 64 {
					mask = (uint64(1) << n) - 1
				}
				ops = append(ops, op{kind: 1, value: v & mask, width: n})
				i += 10
			case 2:
				if i+1 >= len(script) {
					i = len(script)
					break
				}
				u := uint(script[i+1]) % 64
				w.WriteUnary(u)
				ops = append(ops, op{kind: 2, value: uint64(u)})
				i += 2
			}
		}

		bits := 0
		for _, o := range ops {
			switch o.kind {
			case 0:
				bits++
			case 1:
				bits += int(o.width)
			case 2:
				bits += int(o.value) + 1
			}
		}
		if w.Len() != bits {
			t.Fatalf("Len() = %d after writing %d bits", w.Len(), bits)
		}
		buf := w.Bytes()
		if want := (bits + 7) / 8; len(buf) != want {
			t.Fatalf("Bytes() length %d, want %d for %d bits", len(buf), want, bits)
		}

		r := NewReader(buf)
		for i, o := range ops {
			switch o.kind {
			case 0:
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("op %d: ReadBit: %v", i, err)
				}
				if uint64(b) != o.value {
					t.Fatalf("op %d: ReadBit = %d, want %d", i, b, o.value)
				}
			case 1:
				v, err := r.ReadBits(o.width)
				if err != nil {
					t.Fatalf("op %d: ReadBits(%d): %v", i, o.width, err)
				}
				if v != o.value {
					t.Fatalf("op %d: ReadBits(%d) = %#x, want %#x", i, o.width, v, o.value)
				}
			case 2:
				u, err := r.ReadUnary()
				if err != nil {
					t.Fatalf("op %d: ReadUnary: %v", i, err)
				}
				if uint64(u) != o.value {
					t.Fatalf("op %d: ReadUnary = %d, want %d", i, u, o.value)
				}
			}
		}
		if r.Pos() != bits {
			t.Fatalf("Pos() = %d after reading %d bits", r.Pos(), bits)
		}
		if rem := r.Remaining(); rem < 0 || rem > 7 {
			t.Fatalf("Remaining() = %d after full read, want 0..7 padding bits", rem)
		}
		// The zero padding must read as zeros, then cleanly EOF.
		for r.Remaining() > 0 {
			b, err := r.ReadBit()
			if err != nil {
				t.Fatalf("padding read: %v", err)
			}
			if b != 0 {
				t.Fatal("padding bit not zero")
			}
		}
		if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
			t.Fatalf("read past end = %v, want ErrUnexpectedEOF", err)
		}
	})
}
