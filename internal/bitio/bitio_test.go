package bitio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter()
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if got := w.Len(); got != len(bits) {
		t.Fatalf("Len = %d, want %d", got, len(bits))
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	got := w.Bytes()
	want := []byte{0b10110110}
	if !bytes.Equal(got, want) {
		t.Fatalf("Bytes = %08b, want %08b", got, want)
	}
}

func TestBytesPadsPartialByte(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	got := w.Bytes()
	want := []byte{0b10100000}
	if !bytes.Equal(got, want) {
		t.Fatalf("Bytes = %08b, want %08b", got, want)
	}
}

func TestBytesIsIdempotent(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xABC, 12)
	a := w.Bytes()
	b := w.Bytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated Bytes differ: %x vs %x", a, b)
	}
	// And writing after Bytes still works.
	w.WriteBits(0xD, 4)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Fatalf("after continued write got %#x, want 0xabcd", v)
	}
}

func TestReadBitsPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter()
	vals := []uint{0, 1, 2, 5, 13, 0, 31}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("unary %d: %v", i, err)
		}
		if got != want {
			t.Errorf("unary %d = %d, want %d", i, got, want)
		}
	}
}

func TestUnaryTruncated(t *testing.T) {
	w := NewWriter()
	for i := 0; i < 8; i++ {
		w.WriteBit(1) // ones with no terminator
	}
	r := NewReader(w.Bytes())
	if _, err := r.ReadUnary(); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(3)
	if err != nil || v != 5 {
		t.Fatalf("got %d,%v want 5,nil", v, err)
	}
}

func TestPosAndRemaining(t *testing.T) {
	r := NewReader([]byte{0xAA, 0xBB})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != 5 || r.Remaining() != 11 {
		t.Fatalf("Pos,Remaining = %d,%d want 5,11", r.Pos(), r.Remaining())
	}
}

func TestWriteBitsWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width > 64")
		}
	}()
	NewWriter().WriteBits(0, 65)
}

func TestZeroWidthWriteRead(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 0) // no-op
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
	r := NewReader(nil)
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Fatalf("ReadBits(0) = %d,%v want 0,nil", v, err)
	}
}

// Property: any sequence of (value,width) fields round-trips.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter()
		type field struct {
			v     uint64
			width uint
		}
		var fields []field
		for i := 0; i < n; i++ {
			width := uint(widths[i] % 65)
			v := vals[i]
			if width < 64 {
				v &= (1 << width) - 1
			}
			fields = append(fields, field{v, width})
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, fl := range fields {
			got, err := r.ReadBits(fl.width)
			if err != nil || got != fl.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: 64-bit values round-trip exactly.
func TestQuick64BitRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter()
		w.WriteBits(v, 64)
		r := NewReader(w.Bytes())
		got, err := r.ReadBits(64)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
