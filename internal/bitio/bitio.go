// Package bitio provides bit-granular readers and writers on top of byte
// buffers. It is the transport substrate for the entropy coders in the BTPC
// demonstrator application: adaptive Huffman codes are variable-length bit
// strings, and escape-coded residuals are written as fixed-width fields.
//
// Bits are packed MSB-first within each byte, which keeps the on-the-wire
// format independent of host endianness and makes hexdumps readable.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read requires more bits than remain.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// Writer accumulates bits MSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // number of bits currently in cur (0..7)
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(int((v >> uint(i)) & 1))
	}
}

// WriteUnary appends v as a unary code: v ones followed by a zero.
func (w *Writer) WriteUnary(v uint) {
	for i := uint(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes returns the written stream padded with zero bits to a byte boundary.
// The Writer remains usable; Bytes may be called repeatedly.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // absolute bit position
}

// NewReader returns a Reader over buf. The caller must not mutate buf while
// the Reader is in use.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit (0 or 1).
func (r *Reader) ReadBit() (int, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrUnexpectedEOF
	}
	shift := uint(7 - (r.pos & 7))
	r.pos++
	return int((r.buf[byteIdx] >> shift) & 1), nil
}

// ReadBits returns the next n bits as the low bits of a uint64,
// most significant bit first. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d out of range", n))
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary reads a unary code (count of ones before the terminating zero).
func (r *Reader) ReadUnary() (uint, error) {
	var v uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// Pos returns the current absolute bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }
