// ATM network application: the DTSE papers' other classic domain (the
// methodology was extended "to the network component (e.g. ATM) application
// domain", citing Slock et al.'s ATM exploration). This example builds a
// pruned specification of a shared-buffer ATM switch — cell FIFOs, a
// routing table, per-VC accounting — and uses the memory organization
// feedback to compare two buffer organizations and to sweep the cycle
// budget.
//
//	go run ./examples/atm
package main

import (
	"fmt"
	"log"

	dtse "repro"
)

// buildSwitch describes a 16-port shared-buffer switch processing cells.
// Each cell: header lookup in the routing table, VC accounting
// read-modify-write, payload enqueue (12 words of 32 bit) and dequeue.
func buildSwitch(name string, sharedBuffer bool) *dtse.Spec {
	const (
		cellsPerFrame = 400_000 // ~OC-3 line rate over one exploration frame
		payloadWords  = 12      // 48-byte payload as 32-bit words
	)
	b := dtse.NewSpec(name)
	if sharedBuffer {
		b.Group("cellbuf", 128*1024, 32) // one shared pool
	} else {
		// Partitioned per port group: four quarter-size pools.
		for i := 0; i < 4; i++ {
			b.Group(fmt.Sprintf("cellbuf%d", i), 32*1024, 32)
		}
	}
	b.Group("route", 4096, 14) // VPI/VCI -> output port + new header
	b.Group("vcacct", 4096, 20)
	b.Group("freelist", 8192, 13)

	enqueue := func(pool string) {
		r := b.Read("route", 1)
		a := b.Read("vcacct", 1, r)
		b.Write("vcacct", 1, a)
		f := b.Read("freelist", 1, r)
		prev := f
		for w := 0; w < payloadWords; w++ {
			prev = b.Write(pool, 1, prev)
		}
	}
	dequeue := func(pool string) {
		f := b.Read("freelist", 1)
		prev := f
		for w := 0; w < payloadWords; w++ {
			prev = b.Read(pool, 1, prev)
		}
		b.Write("freelist", 1, prev)
	}

	if sharedBuffer {
		b.Loop("enqueue", cellsPerFrame)
		enqueue("cellbuf")
		b.Loop("dequeue", cellsPerFrame)
		dequeue("cellbuf")
	} else {
		// Traffic spreads over the four pools; the pools are alternative
		// targets per cell (branch-tagged: a cell lands in exactly one).
		b.Loop("enqueue", cellsPerFrame)
		r := b.Read("route", 1)
		a := b.Read("vcacct", 1, r)
		b.Write("vcacct", 1, a)
		f := b.Read("freelist", 1, r)
		for i := 0; i < 4; i++ {
			b.Branch(fmt.Sprintf("pool%d", i))
			prev := f
			for w := 0; w < payloadWords; w++ {
				prev = b.Write(fmt.Sprintf("cellbuf%d", i), 0.25, prev)
			}
			b.Branch("")
		}
		b.Loop("dequeue", cellsPerFrame)
		f2 := b.Read("freelist", 1)
		for i := 0; i < 4; i++ {
			b.Branch(fmt.Sprintf("pool%d", i))
			prev := f2
			for w := 0; w < payloadWords; w++ {
				prev = b.Read(fmt.Sprintf("cellbuf%d", i), 0.25, prev)
			}
			b.Branch("")
		}
		b.Write("freelist", 1, f2)
	}
	return b.MustBuild()
}

func main() {
	ep := dtse.DefaultParams()
	// Cell buffers are large SRAM pools: allow them on chip.
	tech := *ep.Tech
	tech.OnChipMaxWords = 192 * 1024
	tech.SRAM.MaxWords = 192 * 1024
	tech.FramePeriod = 0.4 // 400k cells over 0.4 s
	ep.Tech = &tech
	ep.SBD.OnChipMaxWords = tech.OnChipMaxWords
	ep.Assign.OnChipMaxWords = tech.OnChipMaxWords
	ep.OnChipCount = 4

	const budgetPerCell = 34 // storage cycles per cell (enqueue + dequeue)
	budget := uint64(budgetPerCell) * 400_000

	fmt.Println("ATM shared-buffer switch: memory organization feedback")
	for _, cfg := range []struct {
		label  string
		shared bool
	}{
		{"one shared 128K cell pool", true},
		{"four partitioned 32K pools", false},
	} {
		s := buildSwitch(cfg.label, cfg.shared)
		v, err := dtse.Explore(s, budget, ep)
		if err != nil {
			log.Fatalf("%s: %v", cfg.label, err)
		}
		fmt.Printf("\n%-28s area %7.1f mm²  on-chip %7.1f mW  off-chip %5.1f mW  spare cycles %d\n",
			cfg.label, v.Cost.OnChipArea, v.Cost.OnChipPower, v.Cost.OffChipPower,
			v.Dist.ExtraCycles())
		for _, bind := range v.Asgn.OnChip {
			fmt.Printf("   %-6s %7d x %2d bit %d-port: %v\n",
				bind.Mem.Name, bind.Mem.Words, bind.Mem.Bits, bind.Mem.Ports, bind.Groups)
		}
	}

	// Budget sweep on the partitioned variant: the cost of going faster.
	// When the budget drops below the memory access critical path, the
	// paper's §4.2 step kicks in: loop/data-flow transformations (here:
	// rebalancing the payload accumulation chains) shorten the MACP, and
	// the exploration continues.
	fmt.Println("\ncycle budget sweep (partitioned pools):")
	s := buildSwitch("partitioned", false)
	for _, frac := range []float64{1.0, 0.9, 0.8, 0.7, 0.6} {
		bgt := uint64(float64(budget) * frac)
		cand := s
		note := ""
		v, err := dtse.Explore(cand, bgt, ep)
		if err != nil {
			transformed, tlog, terr := dtse.ReduceMACP(s, bgt)
			if terr != nil {
				fmt.Printf("  %3.0f%% budget: infeasible even after transformations (%v)\n",
					100*frac, terr)
				continue
			}
			cand = transformed
			note = fmt.Sprintf("  [after %d loop transformations]", len(tlog))
			v, err = dtse.Explore(cand, bgt, ep)
			if err != nil {
				fmt.Printf("  %3.0f%% budget: infeasible (%v)\n", 100*frac, err)
				continue
			}
		}
		fmt.Printf("  %3.0f%% budget: area %7.1f mm², power %7.1f mW%s\n",
			100*frac, v.Cost.OnChipArea, v.Cost.TotalPower(), note)
	}
}
