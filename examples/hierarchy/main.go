// Data-reuse exploration on a 2-D convolution workload: run the real
// (instrumented) kernel, capture the input-array read trace, derive miss
// ratios for candidate copy layers from the exact LRU reuse profile, and
// compare the resulting memory organizations — the paper's §4.4 flow on a
// different application.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	dtse "repro"
	"repro/internal/trace"
)

const (
	w, h = 320, 240
	k    = 5 // 5x5 convolution kernel
)

// runConvolution executes an instrumented 5x5 convolution and returns the
// recorder with counts and the input-array read trace.
func runConvolution() *trace.Recorder {
	rec := trace.NewRecorder()
	rec.EnableAddressTrace("in")
	in := trace.NewArray2D(rec, "in", w, h)
	out := trace.NewArray2D(rec, "out", w, h)
	coef := trace.NewArray1D(rec, "coef", k*k)

	rec.Push("input")
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			in.Set(x, y, int32((x*7+y*13)&0xFF))
		}
	}
	rec.Pop()
	rec.Push("conv")
	for y := k / 2; y < h-k/2; y++ {
		for x := k / 2; x < w-k/2; x++ {
			var acc int32
			for dy := -k / 2; dy <= k/2; dy++ {
				for dx := -k / 2; dx <= k/2; dx++ {
					acc += in.Get(x+dx, y+dy) * coef.Get((dy+k/2)*k+dx+k/2)
				}
			}
			out.Set(x, y, acc>>8)
		}
	}
	rec.Pop()
	return rec
}

// buildSpec writes the pruned convolution specification with the profiled
// per-iteration counts.
func buildSpec(rec *trace.Recorder) *dtse.Spec {
	iters := uint64((w - k + 1) * (h - k + 1))
	b := dtse.NewSpec("conv5x5")
	b.Group("in", w*h, 8)
	b.Group("out", w*h, 16)
	b.Group("coef", k*k, 12)

	b.Loop("input", w*h)
	b.Write("in", 1)

	b.Loop("conv", iters)
	reads := float64(rec.ArrayScope("in", "conv").Reads) / float64(iters)
	// The designer prunes the 25-deep unrolled kernel to a handful of
	// representative parallel read sites plus the accumulation chain.
	const sites = 5
	var deps []int
	for i := 0; i < sites; i++ {
		deps = append(deps, b.Read("in", reads/sites))
	}
	c := b.Read("coef", float64(rec.ArrayScope("coef", "conv").Reads)/float64(iters), deps...)
	b.Write("out", 1, c)
	return b.MustBuild()
}

func main() {
	rec := runConvolution()
	s := buildSpec(rec)
	prof := dtse.AnalyzeReuse(rec.Addresses("in"))

	fmt.Printf("5x5 convolution on %dx%d: %d accesses profiled\n", w, h, rec.TotalAccesses())
	fmt.Println("input-array LRU miss ratio by candidate layer size:")
	for _, size := range []int64{k, k * k, 2 * w, k * w, 8 * w} {
		fmt.Printf("  %6d words: %5.1f%%\n", size, 100*prof.MissRatio(size))
	}

	ep := dtse.DefaultParams()
	techCopy := *ep.Tech
	techCopy.OnChipMaxWords = 16 * 1024 // frames live off-chip at this scale
	techCopy.FramePeriod = float64(w*h) / 1e6
	ep.Tech = &techCopy
	ep.SBD.OnChipMaxWords = techCopy.OnChipMaxWords
	ep.Assign.OnChipMaxWords = techCopy.OnChipMaxWords

	budget := uint64(30 * w * h)
	options := []struct {
		label  string
		layers []dtse.Layer
	}{
		{"no hierarchy", nil},
		{"window registers (25 words)", []dtse.Layer{{Name: "win", Words: k * k}}},
		{"line buffer (5 rows)", []dtse.Layer{{Name: "lines", Words: k * w}}},
		{"window + line buffer", []dtse.Layer{{Name: "win", Words: k * k}, {Name: "lines", Words: k * w}}},
	}
	fmt.Printf("\n%-30s %10s %10s %10s\n", "hierarchy", "area mm²", "on-chip mW", "off-chip mW")
	for _, opt := range options {
		hplan, err := dtse.PlanHierarchy("in", opt.layers, prof)
		if err != nil {
			log.Fatal(err)
		}
		applied, err := dtse.ApplyHierarchy(s, hplan, 8)
		if err != nil {
			log.Fatal(err)
		}
		v, err := dtse.Explore(applied, budget, ep)
		if err != nil {
			log.Fatalf("%s: %v", opt.label, err)
		}
		fmt.Printf("%-30s %10.1f %10.1f %10.1f\n",
			opt.label, v.Cost.OnChipArea, v.Cost.OnChipPower, v.Cost.OffChipPower)
	}
	fmt.Println("\n(line buffers capture the vertical reuse a register window cannot,")
	fmt.Println(" at the price of on-chip area — the same trade-off as the paper's Table 2)")
}
