// Quickstart: describe a small pruned application and get accurate memory
// organization feedback from the physical memory management stage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dtse "repro"
)

func main() {
	// A toy video filter: one large frame buffer read per pixel, a small
	// coefficient table read three times per pixel, and a frame write.
	const w, h = 352, 288 // CIF
	b := dtse.NewSpec("quickstart")
	b.Group("frame", w*h, 8)
	b.Group("coef", 64, 12)
	b.Group("acc", 256, 20)

	b.Loop("pixel", w*h)
	f := b.Read("frame", 1)
	c1 := b.Read("coef", 1)
	c2 := b.Read("coef", 1, c1)
	c3 := b.Read("coef", 1, c2)
	a := b.Read("acc", 1, f, c3)
	b.Write("acc", 1, a)
	b.Write("frame", 1, a)

	s, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Real-time constraint: 12 storage cycles per pixel.
	budget := uint64(12 * w * h)
	v, err := dtse.Explore(s, budget, dtse.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("specification %q: %d basic groups, %d accesses/frame\n",
		s.Name, len(s.Groups), s.TotalAccesses())
	fmt.Printf("cycle budget %d, committed %d (%d spare for the data-path)\n",
		budget, v.Dist.Used, v.Dist.ExtraCycles())
	fmt.Printf("memory organization cost: %.2f mm² on-chip area, %.2f mW on-chip, %.2f mW off-chip\n",
		v.Cost.OnChipArea, v.Cost.OnChipPower, v.Cost.OffChipPower)
	for _, bind := range v.Asgn.OnChip {
		fmt.Printf("  %-6s %6d x %2d bit %d-port: %v\n",
			bind.Mem.Name, bind.Mem.Words, bind.Mem.Bits, bind.Mem.Ports, bind.Groups)
	}
	for _, bind := range v.Asgn.OffChip {
		fmt.Printf("  %-22s %d-port: %v\n", bind.Mem.Name, bind.Mem.Ports, bind.Groups)
	}
}
