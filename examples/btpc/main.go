// BTPC demonstrator walkthrough: compress and verify an image with the
// paper's application, profile its memory accesses, and run the complete
// stepwise feedback methodology to regenerate the paper's tables.
//
//	go run ./examples/btpc [-size 256]
package main

import (
	"flag"
	"fmt"
	"log"

	dtse "repro"
)

func main() {
	size := flag.Int("size", 256, "image side length (1024 = the paper's constraint size)")
	flag.Parse()

	// 1. The application itself: lossless compression round trip.
	src := dtse.SyntheticImage(*size, *size, 7)
	data, stats, err := dtse.EncodeBTPC(src, dtse.CodecParams{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	back, err := dtse.DecodeBTPC(data, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !src.Equal(back) {
		log.Fatal("lossless round trip failed")
	}
	fmt.Printf("BTPC lossless: %dx%d -> %d bytes (%.3f bpp), round trip OK\n",
		*size, *size, len(data), stats.BitsPerPixel())

	// Lossy operating points.
	for _, q := range []int{4, 16} {
		ld, _, err := dtse.EncodeBTPC(src, dtse.CodecParams{Quant: q}, nil)
		if err != nil {
			log.Fatal(err)
		}
		lb, err := dtse.DecodeBTPC(ld, nil)
		if err != nil {
			log.Fatal(err)
		}
		mse, _ := src.MSE(lb)
		fmt.Printf("BTPC lossy q=%-2d: %d bytes (%.3f bpp), MSE %.1f\n",
			q, len(ld), float64(len(ld)*8)/float64(*size**size), mse)
	}

	// 2. Profiling: the instrumented encoder yields the access counts the
	// exploration runs on.
	rec := dtse.NewRecorder()
	if _, _, err := dtse.EncodeBTPC(src, dtse.CodecParams{}, rec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nProfiled %d memory accesses across %d basic groups; dominant arrays:\n",
		rec.TotalAccesses(), len(rec.Arrays()))
	for _, name := range []string{"image", "pyr", "ridge"} {
		c := rec.Array(name)
		fmt.Printf("  %-6s %9d reads %9d writes\n", name, c.Reads, c.Writes)
	}

	// 3. The methodology: every step of the paper, with the accurate cost
	// feedback driving the decisions.
	res, err := dtse.ReproduceBTPC(dtse.DemoConfig{Size: *size})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Table1().Render())
	fmt.Println(res.Table2().Render())
	fmt.Println(res.Table3().Render())
	fmt.Println(res.Table4().Render())
	fmt.Printf("decisions: %s -> %s -> spare %d cycles -> %s\n",
		res.StructChoice.Label, res.HierChoice.Label,
		res.BudgetChoice.Extra, res.AllocChoice.Label)
}
