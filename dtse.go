// Package dtse is the public facade of the reproduction of "Global
// Multimedia System Design Exploration using Accurate Memory Organization
// Feedback" (Vandecappelle, Miranda, Brockmeyer, Catthoor, Verkest — DAC
// 1999): the IMEC Data Transfer and Storage Exploration (DTSE) feedback
// methodology, its physical-memory-management substrate, and the BTPC image
// coder demonstrator.
//
// # For your own application
//
// Describe the pruned application with a SpecBuilder (basic groups, loop
// bodies, accesses with dependences and profiled counts), then run the
// physical memory management stage:
//
//	b := dtse.NewSpec("myapp")
//	b.Group("frame", 640*480, 8)
//	b.Loop("body", 640*480)
//	r := b.Read("frame", 1)
//	b.Write("frame", 1, r)
//	s := b.MustBuild()
//	v, err := dtse.Explore(s, 20*640*480, dtse.DefaultParams())
//	// v.Cost has the on-chip area / on-chip power / off-chip power triple.
//
// Transformations (basic group structuring, custom memory hierarchies) are
// available through Compact, Merge, AnalyzeReuse, PlanHierarchy and
// ApplyHierarchy; profiling support lives in NewRecorder and the
// instrumented arrays.
//
// # Reproducing the paper
//
// ReproduceBTPC runs the complete stepwise methodology on the profiled BTPC
// demonstrator and returns every explored alternative plus the regenerated
// tables and figures (see also cmd/dtse).
//
// # Serving
//
// NewServer wraps one exploration session (shared evaluation cache, shared
// worker pool, shared telemetry) in an HTTP API with request deduplication,
// bounded admission, per-request deadlines, and graceful draining — see
// Server, ServeOptions, and the cmd/dtsed daemon.
package dtse

import (
	"context"
	"io"

	"repro/internal/assign"
	"repro/internal/bgstruct"
	"repro/internal/btpc"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/inplace"
	"repro/internal/looptrafo"
	"repro/internal/memlib"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/reuse"
	"repro/internal/sbd"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Specification model.
type (
	// Spec is a pruned application specification (§4.1 of the paper).
	Spec = spec.Spec
	// SpecBuilder assembles a Spec.
	SpecBuilder = spec.Builder
	// BasicGroup is an atomic unit of storage and assignment.
	BasicGroup = spec.BasicGroup
	// Access is one memory access site in a loop body.
	Access = spec.Access
	// Loop is one flattened loop body.
	Loop = spec.Loop
)

// Physical memory management.
type (
	// Tech bundles the on-chip and off-chip technology models.
	Tech = memlib.Tech
	// Memory is one allocated memory instance.
	Memory = memlib.Memory
	// Cost is the on-chip-area / on-chip-power / off-chip-power triple.
	Cost = assign.Cost
	// Assignment is a complete memory organization.
	Assignment = assign.Assignment
	// Distribution is a storage-cycle-budget distribution result.
	Distribution = sbd.Distribution
	// Pattern is one parallel-access conflict pattern.
	Pattern = sbd.Pattern
)

// Exploration driver.
type (
	// EvalParams bundles tool parameters for one exploration session.
	EvalParams = core.EvalParams
	// Variant is one evaluated design alternative.
	Variant = core.Variant
	// Results is the full output of the BTPC methodology run.
	Results = core.Results
	// DemoConfig configures the BTPC demonstrator.
	DemoConfig = core.DemoConfig
	// ParetoPoint is one cost point for Pareto filtering.
	ParetoPoint = pareto.Point
)

// Profiling and reuse analysis.
type (
	// Recorder counts memory accesses per array and scope.
	Recorder = trace.Recorder
	// ReuseProfile is the LRU reuse-distance histogram of a read trace.
	ReuseProfile = reuse.Profile
	// Layer is one candidate copy layer of a memory hierarchy.
	Layer = reuse.Layer
	// Hierarchy is a planned memory hierarchy for one array.
	Hierarchy = reuse.Hierarchy
)

// Exploration telemetry.
type (
	// Observer is the root of one telemetry session; nil disables all
	// instrumentation (set EvalParams.Obs to enable it for an exploration).
	Observer = obs.Observer
	// Span is one timed region of the exploration span tree.
	Span = obs.Span
	// SpanRecord is one finished span as delivered to sinks.
	SpanRecord = obs.SpanRecord
	// Sink receives finished spans and the final counter snapshot.
	Sink = obs.Sink
	// SpanCollector is an in-memory sink for tests and benchmarks.
	SpanCollector = obs.Collector
)

// NewObserver returns a telemetry observer emitting into the given sinks.
func NewObserver(sinks ...Sink) *Observer { return obs.New(sinks...) }

// NewJSONLSink returns a sink writing one JSON object per line to w.
func NewJSONLSink(w io.Writer) Sink { return obs.NewJSONL(w) }

// NewCollectorSink returns an in-memory span collector.
func NewCollectorSink() *SpanCollector { return obs.NewCollector() }

// SpanStats renders the per-step summary table of a collected span set.
func SpanStats(recs []*SpanRecord) string { return obs.StatsTable(recs) }

// Image substrate and demonstrator codec.
type (
	// Image is an 8-bit grayscale image.
	Image = img.Gray
	// CodecParams configures the BTPC coder.
	CodecParams = btpc.Params
	// CodecStats summarizes one BTPC encode.
	CodecStats = btpc.Stats
)

// NewSpec starts a pruned-specification builder.
func NewSpec(name string) *SpecBuilder { return spec.NewBuilder(name) }

// NewRecorder returns an access-count recorder for profiling.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// DefaultTech returns the calibrated memory technology models.
func DefaultTech() *Tech { return memlib.Default() }

// DefaultParams returns the calibrated tool parameters.
func DefaultParams() EvalParams { return core.DefaultEvalParams() }

// Explore runs the physical memory management stage (storage cycle budget
// distribution, then memory allocation and assignment) on any pruned
// specification, returning the evaluated organization with its accurate
// cost feedback.
func Explore(s *Spec, cycleBudget uint64, ep EvalParams) (*Variant, error) {
	return core.Evaluate(s, cycleBudget, s.Name, ep)
}

// ExploreContext is Explore with deadline and cancellation support. The
// exploration is *anytime*: when ctx expires or is canceled, each stage
// returns its best result found so far (the assignment falls back to its
// greedy incumbent, flagged with Assignment.Optimal=false) instead of an
// error, so a feasible specification always yields a valid organization.
func ExploreContext(ctx context.Context, s *Spec, cycleBudget uint64, ep EvalParams) (*Variant, error) {
	return core.EvaluateContext(ctx, s, cycleBudget, s.Name, ep)
}

// Compact applies basic group compaction (§4.3): factor words packed into
// one wider word.
func Compact(s *Spec, group string, factor int) (*Spec, error) {
	return bgstruct.Compact(s, group, factor)
}

// Merge applies basic group merging (§4.3): two equal-length arrays become
// one array of records.
func Merge(s *Spec, a, b, merged string) (*Spec, error) {
	return bgstruct.Merge(s, a, b, merged)
}

// AnalyzeReuse computes the LRU reuse profile of a read address trace.
func AnalyzeReuse(addrs []int32) *ReuseProfile { return reuse.Analyze(addrs) }

// PlanHierarchy derives a memory hierarchy (with trace-driven miss ratios)
// for the array from candidate copy layers, innermost first.
func PlanHierarchy(array string, layers []Layer, prof *ReuseProfile) (*Hierarchy, error) {
	return reuse.Plan(array, layers, prof)
}

// ApplyHierarchy rewrites a specification for the hierarchy (§4.4).
func ApplyHierarchy(s *Spec, h *Hierarchy, bits int) (*Spec, error) {
	return reuse.Apply(s, h, bits)
}

// ParetoFront filters design points to the Pareto-optimal subset.
func ParetoFront(points []ParetoPoint) []ParetoPoint { return pareto.Front(points) }

// ReproduceBTPC runs the paper's complete stepwise feedback methodology on
// the BTPC demonstrator: profile, prune, structure (Table 1), hierarchy
// (Table 2, Figure 3), cycle budget (Table 3), allocation (Table 4).
func ReproduceBTPC(cfg DemoConfig) (*Results, error) {
	return core.RunAll(cfg, core.DefaultEvalParams())
}

// ReproduceBTPCContext is ReproduceBTPC with deadline and cancellation
// support: when ctx expires the remaining exploration degrades to
// best-effort results (sweeps keep their reference rows, searches return
// incumbents flagged non-optimal) and a complete Results is still returned.
func ReproduceBTPCContext(ctx context.Context, cfg DemoConfig) (*Results, error) {
	return core.RunAllContext(ctx, cfg, core.DefaultEvalParams())
}

// ReproduceBTPCObserved is ReproduceBTPC with exploration telemetry: spans
// and counters are recorded into the observer's sinks (see NewObserver).
func ReproduceBTPCObserved(cfg DemoConfig, o *Observer) (*Results, error) {
	return ReproduceBTPCObservedContext(context.Background(), cfg, o)
}

// ReproduceBTPCObservedContext combines telemetry with deadline and
// cancellation support: the obs counters (assign.deadline_fallbacks,
// assign.cancel_points, sbd.deadline_fallbacks, assign.result{optimal=...})
// record where the budget went when a run degrades.
func ReproduceBTPCObservedContext(ctx context.Context, cfg DemoConfig, o *Observer) (*Results, error) {
	ep := core.DefaultEvalParams()
	ep.Obs = o
	return core.RunAllContext(ctx, cfg, ep)
}

// Demonstrator is a profiled BTPC application with its pruned spec.
type Demonstrator = core.Demonstrator

// EncoderDemonstrator profiles the BTPC encoder and derives its pruned
// specification (the paper's design target).
func EncoderDemonstrator(cfg DemoConfig) (*Demonstrator, error) {
	return core.BuildDemonstrator(cfg)
}

// DecoderDemonstrator profiles the BTPC decoder — the system's other half,
// explored as an extension beyond the paper's encoder-only scope.
func DecoderDemonstrator(cfg DemoConfig) (*Demonstrator, error) {
	return core.BuildDecoderDemonstrator(cfg)
}

// EncodeBTPC compresses an image with the demonstrator coder, optionally
// profiling memory accesses into rec.
func EncodeBTPC(src *Image, p CodecParams, rec *Recorder) ([]byte, *CodecStats, error) {
	return btpc.Encode(src, p, rec)
}

// DecodeBTPC reconstructs an image from an EncodeBTPC stream.
func DecodeBTPC(data []byte, rec *Recorder) (*Image, error) {
	return btpc.Decode(data, rec)
}

// DecodeBTPCProgressive reconstructs an approximation from a pyramid
// prefix: levels below stopLevel are filled by prediction alone
// (progressive transmission; stopLevel 0 equals DecodeBTPC).
func DecodeBTPCProgressive(data []byte, stopLevel int, rec *Recorder) (*Image, error) {
	return btpc.DecodeProgressive(data, stopLevel, rec)
}

// SyntheticImage builds a deterministic test image with the structures the
// BTPC predictor distinguishes.
func SyntheticImage(w, h int, seed uint64) *Image { return img.Synthetic(w, h, seed) }

// --- Loop and data-flow transformations (§4.2) ---

// TreeifyChain rebalances an associative accumulation chain into a
// logarithmic-depth tree, shortening the memory access critical path.
func TreeifyChain(s *Spec, loop, group string) (*Spec, error) {
	return looptrafo.ChainTreeify(s, loop, group)
}

// SplitLoop splits a loop body at a dependence-closed frontier.
func SplitLoop(s *Spec, loop string, firstHalf []int) (*Spec, error) {
	return looptrafo.SplitLoop(s, loop, firstHalf)
}

// FuseLoops fuses two equal-iteration loops into one body.
func FuseLoops(s *Spec, a, b, fused string) (*Spec, error) {
	return looptrafo.FuseLoops(s, a, b, fused)
}

// ReduceMACP applies chain rebalancing until the unit MACP fits the target
// (the paper's §4.2 escape hatch when the constraint is violated).
func ReduceMACP(s *Spec, target uint64) (*Spec, []string, error) {
	return looptrafo.ReduceMACP(s, target)
}

// --- Specification persistence ---

// WriteSpecJSON serializes a specification (indented JSON).
func WriteSpecJSON(s *Spec, w io.Writer) error { return s.WriteJSON(w) }

// ReadSpecJSON parses and validates a specification.
func ReadSpecJSON(r io.Reader) (*Spec, error) { return spec.ReadJSON(r) }

// --- In-place mapping (the deferred stage, as an extension) ---

// LifetimeReport renders the basic-group lifetime analysis and the
// storage-sharing opportunities of a specification.
func LifetimeReport(s *Spec) string { return inplace.Report(s) }

// --- Workload generators ---

// WorkloadContext is the real-time setting of a generated workload.
type WorkloadContext = workloads.Context

// MotionEstimationWorkload builds a full-search block-matching spec.
func MotionEstimationWorkload(w, h, block, searchRange int) (*Spec, WorkloadContext, error) {
	return workloads.MotionEstimation(w, h, block, searchRange)
}

// WaveletWorkload builds an in-place lifting wavelet spec.
func WaveletWorkload(w, h, levels int) (*Spec, WorkloadContext, error) {
	return workloads.Wavelet(w, h, levels)
}

// FIRWorkload builds an n-sample, T-tap FIR filter spec.
func FIRWorkload(samples, taps int) (*Spec, WorkloadContext, error) {
	return workloads.FIRFilter(samples, taps)
}
