package dtse

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/spec"
)

// Serving: exploration as a long-running service. A Server owns one
// exploration session — a shared cross-variant evaluation cache, a shared
// bounded worker pool, and a shared telemetry observer — and answers
// POST /v1/explore requests against it, so repeated and concurrent
// explorations of the same design points are paid for once.
//
// Endpoints:
//
//	POST /v1/explore            run the physical memory management stage on
//	                            a spec (or the full BTPC methodology in demo
//	                            mode); with Accept: text/event-stream the
//	                            response is an SSE stream of progress events
//	                            ending in the result (GET with ?request=
//	                            works too, for EventSource clients)
//	POST /v1/explore/batch      N explore requests under one admission slot,
//	                            sharing the session cache and worker pool;
//	                            per-item status/degraded/trace-id results
//	GET  /healthz               liveness ("ok", or 503 while draining)
//	GET  /metrics               Prometheus text exposition (or the JSON
//	                            snapshot when Accept prefers application/json)
//	GET  /metrics.json          JSON snapshot of counters, gauges, histogram
//	                            summaries, and latencies
//	GET  /debug/explorations    in-flight request registry: stage, elapsed,
//	                            search nodes, incumbent cost, bound gap
//	GET  /debug/flightrecorder  last N slow/degraded/errored requests with
//	                            their span trees and counter deltas
//
// Every response carries an X-Trace-Id header naming the request's root
// span in the telemetry stream. Response bodies are deterministic functions
// of the request body alone, so identical requests are deduplicated through
// the session cache: concurrent duplicates singleflight one exploration,
// later duplicates are answered from memory. A response computed under an
// expired deadline (degraded, best-effort) is never cached.

// ServeOptions configures a Server. The zero value is usable: GOMAXPROCS
// concurrent explorations, a queue twice that deep, no default deadline.
type ServeOptions struct {
	// MaxConcurrent bounds the explorations running at once; further
	// requests queue. <= 0 means GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the requests waiting for an exploration slot; beyond
	// it the server answers 429 with a Retry-After hint. <= 0 means
	// 2 x MaxConcurrent.
	MaxQueue int
	// DefaultTimeout is the per-request exploration deadline applied when
	// the request does not set timeout_ms. 0 means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines (and, when set, also the
	// no-deadline case). 0 means no cap.
	MaxTimeout time.Duration
	// Workers is the width of the session's shared worker pool. <= 0 means
	// GOMAXPROCS. Results are identical at any width.
	Workers int
	// Obs is the telemetry session shared by all requests; nil disables
	// instrumentation (the /metrics endpoint then reports only server
	// gauges).
	Obs *obs.Observer
	// NoCache disables the session cache: every request recomputes.
	// Responses are byte-identical either way.
	NoCache bool
	// CacheBytes caps each session-cache keyspace at this many bytes;
	// entries beyond it are evicted CLOCK-wise. <= 0 leaves the cache
	// unbounded (the pre-bound behaviour).
	CacheBytes int64
	// Disk is an optional disk-backed second cache tier (memo.OpenDiskTier):
	// completed request responses are persisted write-behind and survive
	// restarts, answered as disk-tier hits by a fresh process. The caller
	// owns the tier and must Close it after shutdown. Ignored with NoCache.
	Disk *memo.DiskTier
	// NoWarmStart disables nearest-neighbour incumbent seeding: by default
	// a spec exploration's branch-and-bound starts from the best cached
	// neighbour assignment (re-priced, so completed results are unchanged —
	// the search just starts with a tighter bound).
	NoWarmStart bool
	// FlightRecorder bounds the flight-recorder ring: the last N slow,
	// degraded, or errored requests kept with their span trees and counter
	// deltas for /debug/flightrecorder. 0 means 64; negative disables the
	// recorder.
	FlightRecorder int
	// SlowRequest records completed requests at least this slow in the
	// flight recorder even when they were neither degraded nor errored.
	// 0 disables the slow criterion.
	SlowRequest time.Duration
}

// Server is a shared exploration session behind an HTTP API. Create with
// NewServer, mount Handler on an http.Server, and use BeginDrain/Abort for
// graceful shutdown (see cmd/dtsed for the full wiring).
type Server struct {
	opts    ServeOptions
	obs     *obs.Observer
	memo    *memo.Cache
	workers *pool.Pool
	mux     *http.ServeMux
	warm    *warmIndex // nearest-neighbour seeds; nil when disabled
	cluster *clusterState // nil outside cluster mode (see cluster_server.go)

	// baseCtx parents every request context; Abort cancels it, degrading
	// all in-flight explorations to their anytime best-effort results.
	baseCtx context.Context
	abort   context.CancelFunc

	sem      chan struct{} // exploration slots (MaxConcurrent)
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	requests  atomic.Int64
	responses [6]atomic.Int64 // by status class 0xx..5xx
	nextTrace atomic.Uint64
	runID     string

	lat latencyRing
	// reqHist is the request-latency histogram behind
	// dtse_request_duration_seconds. Owned by the server (not the observer)
	// so /metrics has latency data even with Obs == nil.
	reqHist *obs.Histogram

	flight *flightRecorder // nil when disabled

	liveMu sync.Mutex
	live   map[string]*liveEntry // in-flight explorations by trace id
}

// NewServer builds a Server with its session state. The caller owns opts.Obs
// and its sinks (flush/close them after shutdown).
func NewServer(opts ServeOptions) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 2 * opts.MaxConcurrent
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		obs:     opts.Obs,
		workers: pool.New(opts.Workers),
		baseCtx: ctx,
		abort:   cancel,
		sem:     make(chan struct{}, opts.MaxConcurrent),
		runID:   fmt.Sprintf("%x", time.Now().UnixNano()),
		reqHist: obs.NewHistogram(),
		live:    make(map[string]*liveEntry),
	}
	if !opts.NoCache {
		s.memo = memo.New()
		if opts.CacheBytes > 0 {
			for sp := memo.Space(0); sp <= memo.Requests; sp++ {
				s.memo.Bound(sp, opts.CacheBytes)
			}
		}
		if opts.Disk != nil {
			s.memo.AttachDisk(memo.Requests, opts.Disk, encodeServed, decodeServed)
		}
	}
	if !opts.NoWarmStart {
		s.warm = newWarmIndex()
		if opts.Disk != nil {
			// Restart semantics: warm starts survive the process — rebuild
			// the neighbour index from the persisted responses, which carry
			// each winning organization's group->memory bindings.
			opts.Disk.Range(memo.Requests, func(key string, val []byte) bool {
				canon, ok := canonOfKey(key)
				if !ok {
					return true
				}
				v, ok := decodeServed(val)
				if !ok {
					return true
				}
				var env exploreResponse
				if json.Unmarshal(v.(*servedResponse).body, &env) != nil {
					return true
				}
				if a := seedFromWire(env.Variant); a != nil {
					s.warm.record(canon, a)
				}
				return true
			})
		}
	}
	// Opt-in duration histograms: wired here, at construction, before any
	// concurrent use. Library callers that build their own cache/pool stay
	// on the zero-cost path.
	s.memo.Observe(s.obs)
	s.workers.Observe(s.obs)
	if opts.FlightRecorder >= 0 {
		n := opts.FlightRecorder
		if n == 0 {
			n = 64
		}
		s.flight = newFlightRecorder(n)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/explore", s.handleExplore)
	s.mux.HandleFunc("/v1/explore/batch", s.handleExploreBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/debug/explorations", s.handleExplorations)
	s.mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	// Cluster-internal endpoints; 404 until JoinCluster.
	s.mux.HandleFunc("/v1/internal/incumbent", s.handleIncumbent)
	s.mux.HandleFunc("/v1/internal/subtree", s.handleSubtree)
	s.mux.HandleFunc("/v1/internal/join", s.handleClusterJoin)
	s.mux.HandleFunc("/v1/internal/gossip", s.handleClusterGossip)
	s.mux.HandleFunc("/v1/internal/handoff", s.handleHandoff)
	return s
}

// Handler returns the Server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain marks the server draining: /healthz turns 503 (so load
// balancers stop routing here) and new explorations are refused, while
// in-flight explorations run to completion. Pair with http.Server.Shutdown,
// which waits for them.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Abort cancels every in-flight exploration's context. The explorations
// degrade to their anytime best-effort results and the handlers still
// return complete responses — this is the drain-deadline escalation, not a
// hard kill.
func (s *Server) Abort() { s.abort() }

// Inflight reports the explorations currently running or queued.
func (s *Server) Inflight() int64 { return s.inflight.Load() + s.queued.Load() }

// --- request wire format ---

// exploreRequest is the POST /v1/explore body. Exactly one of spec (with
// budget) or demo must be set.
type exploreRequest struct {
	// Spec is a pruned application specification in the internal/spec JSON
	// format; Budget is its storage cycle budget per frame (required with
	// Spec).
	Spec   json.RawMessage `json:"spec,omitempty"`
	Budget uint64          `json:"budget,omitempty"`

	// Demo selects the built-in BTPC methodology run instead; the response
	// then carries the regenerated tables and figures.
	Demo *demoRequest `json:"demo,omitempty"`

	// TimeoutMS bounds this exploration; on expiry the response degrades to
	// best-effort (optimal=false / degraded=true) instead of erroring. 0
	// uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Params are the spec-mode tool knobs (ignored in demo mode, which uses
	// the calibrated defaults so its output matches cmd/dtse exactly).
	Params *paramsRequest `json:"params,omitempty"`
}

type demoRequest struct {
	Size  int    `json:"size,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	Quant int    `json:"quant,omitempty"`
}

// paramsRequest mirrors the cmd/specexplore flags.
type paramsRequest struct {
	OnChip       int     `json:"onchip,omitempty"`
	Threshold    *int64  `json:"threshold,omitempty"`
	Frame        float64 `json:"frame,omitempty"`
	InPlace      bool    `json:"inplace,omitempty"`
	Interconnect bool    `json:"interconnect,omitempty"`
}

// exploreResponse is the POST /v1/explore success body: variant for spec
// mode, results for demo mode.
type exploreResponse struct {
	Variant *core.VariantWire `json:"variant,omitempty"`
	Results *core.ResultsWire `json:"results,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// parsedRequest is a validated explore request with its spec decoded and
// its deduplication key derived.
type parsedRequest struct {
	req   *exploreRequest
	spec  *spec.Spec // spec mode only
	key   string     // canonical dedup key (deadline excluded)
	canon string     // canonical spec JSON (spec mode): the warm-start fingerprint
	mode  string     // "spec" or "demo", for introspection
	label string     // spec name or demo size, for introspection
	peer  string     // serving cluster node, when routed here by a peer
}

const maxRequestBody = 8 << 20

// parseExplore decodes and validates the request body. Error strings are
// client-facing.
func parseExplore(body io.Reader) (*parsedRequest, error) {
	dec := json.NewDecoder(io.LimitReader(body, maxRequestBody))
	dec.DisallowUnknownFields()
	req := &exploreRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("invalid request body: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("invalid request body: trailing data after the JSON object")
	}
	if (req.Spec == nil) == (req.Demo == nil) {
		return nil, fmt.Errorf("exactly one of spec or demo must be set")
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d out of range (must be >= 0)", req.TimeoutMS)
	}
	p := &parsedRequest{req: req}
	if req.Demo != nil {
		d := req.Demo
		if req.Budget != 0 || req.Params != nil {
			return nil, fmt.Errorf("budget and params apply to spec mode only")
		}
		if d.Size < 0 || d.Size > 4096 {
			return nil, fmt.Errorf("demo.size %d out of range [0, 4096]", d.Size)
		}
		if d.Quant < 0 {
			return nil, fmt.Errorf("demo.quant %d out of range (must be >= 0)", d.Quant)
		}
		p.key = fmt.Sprintf("demo|%d|%d|%d", d.Size, d.Seed, d.Quant)
		p.mode = "demo"
		p.label = fmt.Sprintf("size=%d", d.Size)
		return p, nil
	}
	if req.Budget == 0 {
		return nil, fmt.Errorf("budget is required with spec")
	}
	sp, err := spec.ReadJSON(bytes.NewReader(req.Spec))
	if err != nil {
		return nil, fmt.Errorf("invalid spec: %v", err)
	}
	p.spec = sp
	onchip, threshold, frame, inplace, interconnect, err := specParams(req.Params)
	if err != nil {
		return nil, err
	}
	// The key pins every input that shapes the response — the spec in its
	// canonical serialization (request-side whitespace and field order must
	// not defeat deduplication), the budget, and the tool knobs. The
	// deadline is deliberately excluded: only completed explorations are
	// cached, and a completed result is valid under any deadline.
	var canon bytes.Buffer
	if err := sp.WriteJSON(&canon); err != nil {
		return nil, fmt.Errorf("invalid spec: %v", err)
	}
	p.key = fmt.Sprintf("spec|%d|%d|%d|%g|%t|%t|%s",
		req.Budget, onchip, threshold, frame, inplace, interconnect, canon.String())
	p.canon = canon.String()
	p.mode = "spec"
	p.label = sp.Name
	return p, nil
}

// specParams resolves the spec-mode knobs to their cmd/specexplore
// defaults and validates them.
func specParams(pr *paramsRequest) (onchip int, threshold int64, frame float64, inplace, interconnect bool, err error) {
	onchip, threshold, frame = 4, 64*1024, 1.0
	if pr == nil {
		return
	}
	if pr.OnChip != 0 {
		onchip = pr.OnChip
	}
	if pr.Threshold != nil {
		threshold = *pr.Threshold
	}
	if pr.Frame != 0 {
		frame = pr.Frame
	}
	inplace, interconnect = pr.InPlace, pr.Interconnect
	switch {
	case onchip < 1:
		err = fmt.Errorf("params.onchip %d out of range (must be >= 1)", onchip)
	case threshold < 0:
		err = fmt.Errorf("params.threshold %d out of range (must be >= 0)", threshold)
	case frame <= 0:
		err = fmt.Errorf("params.frame %g out of range (must be > 0)", frame)
	}
	return
}

// --- handlers ---

// servedResponse is the cached unit of the Requests keyspace: the exact
// status and body bytes of one deterministic response. degraded marks a
// best-effort response computed under an expired deadline or abort; such
// responses are never cached, so cached entries are never degraded.
// volatile marks a completed response whose content still depends on
// session history — a warm-started search that exhausted its node budget
// returns the best incumbent, which the seed may have improved — so it,
// too, is served once and never cached.
type servedResponse struct {
	status   int
	body     []byte
	degraded bool
	volatile bool
}

// CacheBytes implements memo.Sized: the retained footprint of a cached
// response is its body plus the struct.
func (r *servedResponse) CacheBytes() int { return len(r.body) + 64 }

// encodeServed/decodeServed are the Requests keyspace's disk codec:
// [4B status][body]. Only clean 200s are persisted — degraded and volatile
// responses never reach the encoder via the cacheability rule, but the
// guard stands on its own.
func encodeServed(v any) ([]byte, bool) {
	r, ok := v.(*servedResponse)
	if !ok || r.status != http.StatusOK || r.degraded || r.volatile {
		return nil, false
	}
	b := make([]byte, 4+len(r.body))
	binary.LittleEndian.PutUint32(b, uint32(r.status))
	copy(b[4:], r.body)
	return b, true
}

func decodeServed(b []byte) (any, bool) {
	if len(b) < 4 || int(binary.LittleEndian.Uint32(b)) != http.StatusOK {
		return nil, false
	}
	return &servedResponse{status: http.StatusOK, body: b[4:]}, true
}

// canonOfKey recovers the canonical spec JSON from a Requests dedup key
// (its eighth |-separated field; the seven leading knob fields never
// contain a pipe).
func canonOfKey(key string) (string, bool) {
	if !strings.HasPrefix(key, "spec|") {
		return "", false
	}
	parts := strings.SplitN(key, "|", 8)
	if len(parts) != 8 {
		return "", false
	}
	return parts[7], true
}

// seedFromWire flattens a variant's on-chip bindings into the warm-start
// seed form: group name -> memory slot.
func seedFromWire(v *core.VariantWire) map[string]int {
	if v == nil || len(v.OnChip) == 0 {
		return nil
	}
	m := make(map[string]int)
	for i := range v.OnChip {
		for _, g := range v.OnChip[i].Groups {
			m[g] = i
		}
	}
	return m
}

// warmIndex maps canonical spec fingerprints to their best-known on-chip
// assignment, for seeding the branch-and-bound of neighbouring requests.
// Bounded FIFO (warmIndexCap entries): this is a hint store, not a cache —
// a dropped or stale entry only costs the tighter initial bound, never
// correctness, because every seed is re-priced on the problem it seeds.
type warmIndex struct {
	mu    sync.Mutex
	seeds map[string]map[string]int
	order []string
	// owns, when set (cluster mode), is the live shard predicate: the index
	// refuses to record or serve seeds for fingerprints this node does not
	// own right now, so a ring change (peer ejected or rejoined) can never
	// leak another shard's neighbourhood into this node's seeding. Entries
	// recorded while owned are kept but go silent when ownership moves away,
	// and wake up if it moves back.
	owns func(canon string) bool
}

const (
	warmIndexCap = 512
	// warmMinPrefix is the minimum shared fingerprint prefix for a
	// non-exact neighbour match. Purely an efficiency filter: an unrelated
	// seed would be rejected (or strictly improve the incumbent) anyway.
	warmMinPrefix = 8
)

func newWarmIndex() *warmIndex {
	return &warmIndex{seeds: make(map[string]map[string]int)}
}

// record stores (or refreshes) the seed for one fingerprint. The assign
// map is stored as-is and must never be mutated afterwards.
// setOwns installs the shard-ownership predicate (cluster mode).
func (wi *warmIndex) setOwns(owns func(canon string) bool) {
	if wi == nil {
		return
	}
	wi.mu.Lock()
	wi.owns = owns
	wi.mu.Unlock()
}

func (wi *warmIndex) record(canon string, assign map[string]int) {
	if wi == nil || canon == "" || len(assign) == 0 {
		return
	}
	wi.mu.Lock()
	defer wi.mu.Unlock()
	if wi.owns != nil && !wi.owns(canon) {
		return
	}
	if _, ok := wi.seeds[canon]; !ok {
		if len(wi.order) >= warmIndexCap {
			delete(wi.seeds, wi.order[0])
			wi.order = wi.order[1:]
		}
		wi.order = append(wi.order, canon)
	}
	wi.seeds[canon] = assign
}

// lookup returns the nearest neighbour's seed: the exact fingerprint when
// recorded, else the recorded fingerprint sharing the longest common
// prefix (earliest recorded wins ties, so the choice is deterministic for
// a given index state). Nil when nothing is close enough.
func (wi *warmIndex) lookup(canon string) map[string]int {
	if wi == nil {
		return nil
	}
	wi.mu.Lock()
	defer wi.mu.Unlock()
	if wi.owns != nil && !wi.owns(canon) {
		// Not our shard: serving a neighbour here would seed searches from a
		// fingerprint whose traffic (and index freshness) lives on a peer.
		return nil
	}
	if a, ok := wi.seeds[canon]; ok {
		return a
	}
	bestLen := warmMinPrefix - 1
	var best map[string]int
	for _, c := range wi.order {
		if wi.owns != nil && !wi.owns(c) {
			continue
		}
		if l := commonPrefixLen(c, canon); l > bestLen {
			bestLen, best = l, wi.seeds[c]
		}
	}
	return best
}

// rangeSeeds calls fn for every recorded seed until fn returns false — the
// exporting side of a shard handoff. The assign maps are shared and must
// not be mutated. No ownership filter here: the handoff caller applies its
// own moved-range predicate, which is about the *new* ring, not ours.
func (wi *warmIndex) rangeSeeds(fn func(canon string, assign map[string]int) bool) {
	if wi == nil {
		return
	}
	wi.mu.Lock()
	canons := append([]string(nil), wi.order...)
	assigns := make([]map[string]int, len(canons))
	for i, c := range canons {
		assigns[i] = wi.seeds[c]
	}
	wi.mu.Unlock()
	for i := range canons {
		if assigns[i] == nil {
			continue
		}
		if !fn(canons[i], assigns[i]) {
			return
		}
	}
}

func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	// The trace id is assigned before any early exit, so every response —
	// including 405, 400, 429, and 503 — is correlatable with telemetry and
	// flight-recorder entries. A cluster-internal request adopts the
	// forwarding node's trace id instead, so a routed request is one trace
	// end to end (the marker gates adoption: external clients cannot pick
	// their own ids).
	internal := s.cluster != nil && isInternal(r)
	tid := fmt.Sprintf("%s-%06d", s.runID, s.nextTrace.Add(1))
	if internal {
		if t := r.Header.Get("X-Trace-Id"); t != "" {
			tid = t
		}
	}
	w.Header().Set("X-Trace-Id", tid)
	sse := wantsSSE(r)
	if r.Method != http.MethodPost && !(r.Method == http.MethodGet && sse) {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed,
			"POST only (GET is accepted with Accept: text/event-stream and ?request=)")
		return
	}
	s.requests.Add(1)
	s.obs.Counter("server.requests").Add(1)
	start := time.Now()
	defer func() {
		us := time.Since(start).Microseconds()
		s.lat.record(us)
		s.reqHist.ObserveUS(us)
	}()

	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body := io.Reader(r.Body)
	if r.Method == http.MethodGet {
		// EventSource clients cannot POST; they pass the request JSON in the
		// query string instead.
		q := r.URL.Query().Get("request")
		if q == "" {
			s.obs.Counter("server.bad_requests").Add(1)
			s.writeError(w, http.StatusBadRequest, "GET requires the request JSON in ?request=")
			return
		}
		body = strings.NewReader(q)
	}
	// In cluster mode the raw body is buffered so the request can be
	// forwarded byte-for-byte to its ring owner. SSE streams stay local
	// (progress events do not proxy usefully), and internal requests are
	// served where they land — forwarding is one hop, never a loop.
	var raw []byte
	if s.cluster != nil && !internal && !sse && r.Method == http.MethodPost {
		var err error
		raw, err = io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
		if err != nil {
			s.obs.Counter("server.bad_requests").Add(1)
			s.writeError(w, http.StatusBadRequest, "read error: "+err.Error())
			return
		}
		body = bytes.NewReader(raw)
	}
	p, err := parseExplore(body)
	if err != nil {
		s.obs.Counter("server.bad_requests").Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if internal {
		p.peer = s.cluster.router.Self()
	}
	if raw != nil {
		if resp, served := s.routeExplore(r.Context(), p, raw, tid); served {
			s.writeResponse(w, resp)
			return
		}
	}

	// The exploration context: canceled by client disconnect, by Abort, and
	// by the effective per-request deadline.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if d := s.effectiveTimeout(p.req.TimeoutMS); d > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, d)
		defer tcancel()
	}

	release, ok := s.admit(ctx)
	if !ok {
		s.obs.Counter("server.rejected_overload").Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		s.writeError(w, http.StatusTooManyRequests, "exploration queue is full")
		return
	}
	defer release()

	prog := s.registerLive(tid, p)
	defer s.unregisterLive(tid)
	if sse {
		s.serveSSE(ctx, w, r, p, tid, prog)
		return
	}
	s.writeResponse(w, s.runExploration(ctx, p, tid, prog))
}

// --- batched serving ---

// batchRequest is the POST /v1/explore/batch body: up to maxBatchItems
// explore requests evaluated against the same session state — one admission
// slot, one evaluation cache, one worker pool — so throughput clients
// amortize per-request setup across items.
type batchRequest struct {
	Items []json.RawMessage `json:"items"`
}

// batchItem is one item's outcome. Status and body are exactly what a
// standalone POST /v1/explore of the item would have returned (per-item
// dedup through the same Requests keyspace included); degraded mirrors the
// item's own deadline semantics, and trace_id names the item's root span.
type batchItem struct {
	Index    int             `json:"index"`
	Status   int             `json:"status"`
	Degraded bool            `json:"degraded,omitempty"`
	TraceID  string          `json:"trace_id"`
	Body     json.RawMessage `json:"body"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
}

// maxBatchItems bounds one batch request. A larger sweep should be split:
// each batch holds one exploration slot for its whole duration.
const maxBatchItems = 64

// handleExploreBatch runs N explorations under one admission slot, fanned
// out on the shared session worker pool. Per-item failures (bad item JSON,
// infeasible spec, expired per-item deadline) land in that item's result;
// the envelope itself fails only on malformed batch JSON or overload. The
// envelope is never cached — each item deduplicates individually, so a
// batch overlapping earlier traffic gets per-item cache hits.
func (s *Server) handleExploreBatch(w http.ResponseWriter, r *http.Request) {
	internal := s.cluster != nil && isInternal(r)
	tid := fmt.Sprintf("%s-%06d", s.runID, s.nextTrace.Add(1))
	if internal {
		if t := r.Header.Get("X-Trace-Id"); t != "" {
			tid = t
		}
	}
	w.Header().Set("X-Trace-Id", tid)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.requests.Add(1)
	s.obs.Counter("server.requests").Add(1)
	s.obs.Counter("server.batch_requests").Add(1)
	start := time.Now()
	defer func() {
		us := time.Since(start).Microseconds()
		s.lat.record(us)
		s.reqHist.ObserveUS(us)
	}()

	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var breq batchRequest
	if err := dec.Decode(&breq); err != nil {
		s.obs.Counter("server.bad_requests").Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid batch body: %v", err))
		return
	}
	n := len(breq.Items)
	if n == 0 {
		s.obs.Counter("server.bad_requests").Add(1)
		s.writeError(w, http.StatusBadRequest, "items must not be empty")
		return
	}
	if n > maxBatchItems {
		s.obs.Counter("server.bad_requests").Add(1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d items exceed the batch limit %d", n, maxBatchItems))
		return
	}
	// Parse every item up front: an invalid item becomes its own 400 result
	// without costing the valid ones anything.
	parsed := make([]*parsedRequest, n)
	parseErrs := make([]error, n)
	for i, raw := range breq.Items {
		parsed[i], parseErrs[i] = parseExplore(bytes.NewReader(raw))
		if internal && parsed[i] != nil {
			parsed[i].peer = s.cluster.router.Self()
		}
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	// A cluster-internal sub-batch is already accounted by the admission
	// slot its origin node holds for the whole batch; admitting it here too
	// could deadlock two fronts cross-forwarding sub-batches while their
	// slots wait on each other. Work stays bounded: one internal batch per
	// origin slot, cluster-wide.
	if !internal {
		release, ok := s.admit(ctx)
		if !ok {
			s.obs.Counter("server.rejected_overload").Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			s.writeError(w, http.StatusTooManyRequests, "exploration queue is full")
			return
		}
		defer release()
	}

	results := make([]*servedResponse, n)
	tids := make([]string, n)
	runLocal := func(i int) {
		tids[i] = fmt.Sprintf("%s.%d", tid, i)
		if parseErrs[i] != nil {
			s.obs.Counter("server.bad_requests").Add(1)
			results[i] = errResponse(http.StatusBadRequest, parseErrs[i])
			return
		}
		ictx, icancel := ctx, context.CancelFunc(nil)
		if d := s.effectiveTimeout(parsed[i].req.TimeoutMS); d > 0 {
			ictx, icancel = context.WithTimeout(ctx, d)
		}
		prog := s.registerLive(tids[i], parsed[i])
		results[i] = s.runExploration(ictx, parsed[i], tids[i], prog)
		s.unregisterLive(tids[i])
		if icancel != nil {
			icancel()
		}
	}
	// Cluster mode: items owned by live peers go out as sub-batches (trace
	// ids "<tid>.p<seq>"), concurrently with the locally-owned items. A
	// failed sub-batch leaves its items nil; the second local pass below
	// recomputes them, so peer failures cost latency, never item failures.
	remoteIdx := make([]bool, n)
	var remoteWG sync.WaitGroup
	if s.cluster != nil && !internal {
		remote := s.planBatch(parsed, parseErrs)
		owners := make([]string, 0, len(remote))
		for owner := range remote {
			owners = append(owners, owner)
		}
		sort.Strings(owners)
		for seq, owner := range owners {
			idxs := remote[owner]
			for _, i := range idxs {
				remoteIdx[i] = true
			}
			subTid := fmt.Sprintf("%s.p%d", tid, seq+1)
			remoteWG.Add(1)
			go func(owner string, idxs []int, subTid string) {
				defer remoteWG.Done()
				s.forwardBatchGroup(ctx, owner, idxs, breq.Items, subTid, results, tids)
			}(owner, idxs, subTid)
		}
	}
	s.workers.ForEach(ctx, n, func(i int) {
		if remoteIdx[i] {
			return
		}
		runLocal(i)
	})
	remoteWG.Wait()
	s.workers.ForEach(ctx, n, func(i int) {
		if remoteIdx[i] && results[i] == nil {
			runLocal(i)
		}
	})
	s.obs.Counter("server.batch_items").Add(int64(n))

	// ForEach stops launching items once ctx is done (client disconnect or
	// server drain mid-batch), leaving the unlaunched tail nil. Give those
	// items a defined 503 result so the envelope below never dereferences a
	// nil response.
	for i := range results {
		if results[i] == nil {
			tids[i] = fmt.Sprintf("%s.%d", tid, i)
			results[i] = errResponse(http.StatusServiceUnavailable,
				errors.New("canceled before start"))
		}
	}

	env := batchResponse{Items: make([]batchItem, n)}
	for i, res := range results {
		env.Items[i] = batchItem{
			Index:    i,
			Status:   res.status,
			Degraded: res.degraded,
			TraceID:  tids[i],
			Body:     json.RawMessage(bytes.TrimRight(res.body, "\n")),
		}
	}
	body, err := json.Marshal(env)
	if err != nil {
		s.writeResponse(w, errResponse(http.StatusInternalServerError, err))
		return
	}
	s.writeResponse(w, &servedResponse{status: http.StatusOK, body: append(body, '\n')})
}

// runExploration runs one admitted exploration under its telemetry span,
// capturing the span subtree and counter deltas when the flight recorder
// might want them.
func (s *Server) runExploration(ctx context.Context, p *parsedRequest, tid string, prog *obs.Progress) *servedResponse {
	start := time.Now()
	sp := s.obs.Start("serve.explore")
	sp.SetStr("trace_id", tid)
	if p.peer != "" {
		sp.SetStr("peer", p.peer)
	}
	var capture *obs.Collector
	var before obs.Snapshot
	if s.flight != nil {
		capture = s.obs.CaptureSubtree(sp)
		before = s.obs.Snapshot()
	}
	resp := s.dedup(ctx, p, tid, sp, prog)
	sp.SetInt("status", int64(resp.status))
	sp.End()
	if s.flight != nil {
		s.obs.ReleaseSubtree(sp)
		s.maybeRecordFlight(tid, p, resp, start, capture, before, prog)
	}
	return resp
}

// maybeRecordFlight adds the finished request to the flight recorder when
// it errored, degraded, or exceeded the slow threshold.
func (s *Server) maybeRecordFlight(tid string, p *parsedRequest, resp *servedResponse,
	start time.Time, capture *obs.Collector, before obs.Snapshot, prog *obs.Progress) {
	dur := time.Since(start)
	var reason string
	switch {
	case resp.status >= 400:
		reason = "error"
	case resp.degraded:
		reason = "degraded"
	case s.opts.SlowRequest > 0 && dur >= s.opts.SlowRequest:
		reason = "slow"
	default:
		return
	}
	e := &FlightEntry{
		TraceID:    tid,
		Start:      start,
		Reason:     reason,
		Status:     resp.status,
		DurationMS: float64(dur.Microseconds()) / 1e3,
		Mode:       p.mode,
		Label:      p.label,
		Degraded:   resp.degraded,
		Search:     prog.Snapshot(),
	}
	if capture != nil {
		e.Spans = capture.Records()
		after := s.obs.Snapshot()
		e.Counters = deltaCounters(before.Counters, after.Counters)
		e.Gauges = after.Gauges
	}
	s.flight.add(e)
}

// dedup answers the request through the Requests keyspace: identical
// in-flight requests share one exploration, identical later requests are
// answered from the session. A compute cut short by its deadline (or by
// Abort) publishes uncacheable, so it is returned only to the request that
// ran it — concurrent duplicates with live deadlines take over and
// recompute rather than inherit a degraded response.
func (s *Server) dedup(ctx context.Context, p *parsedRequest, tid string, sp *obs.Span, prog *obs.Progress) *servedResponse {
	hit := true
	prog.SetStage("dedup")
	v := s.memo.Do(memo.Requests, p.key, func() (any, bool) {
		hit = false
		resp := s.explore(ctx, p, tid, sp, prog)
		cacheable := resp.status == http.StatusOK && ctx.Err() == nil && !resp.volatile
		return resp, cacheable
	})
	if hit {
		s.obs.Counter("server.dedup_hits").Add(1)
		sp.SetStr("dedup", "hit")
	}
	return v.(*servedResponse)
}

// explore runs the exploration and serializes the response. The body is a
// deterministic function of the parsed request (trace IDs and timing live
// in headers and telemetry only), which is what makes caching sound.
func (s *Server) explore(ctx context.Context, p *parsedRequest, tid string, sp *obs.Span, prog *obs.Progress) *servedResponse {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.obs.Gauge("server.inflight").Set(s.inflight.Load())

	ep := core.DefaultEvalParams()
	ep.Obs = s.obs
	ep.Span = sp
	ep.Memo = s.memo
	ep.Workers = s.workers
	ep.Progress = prog

	env := &exploreResponse{}
	volatile := false
	if p.req.Demo != nil {
		d := p.req.Demo
		res, err := core.RunAllContext(ctx, core.DemoConfig{Size: d.Size, Seed: d.Seed, Quant: d.Quant}, ep)
		if err != nil {
			return errResponse(http.StatusUnprocessableEntity, err)
		}
		wire, err := res.Wire()
		if err != nil {
			return errResponse(http.StatusInternalServerError, err)
		}
		env.Results = wire
	} else {
		onchip, threshold, frame, inplace, interconnect, _ := specParams(p.req.Params)
		tech := *ep.Tech
		tech.OnChipMaxWords = threshold
		tech.FramePeriod = frame
		if interconnect {
			tech.Bus = tech.WithInterconnect().Bus
		}
		ep.Tech = &tech
		ep.SBD.OnChipMaxWords = threshold
		ep.Assign.OnChipMaxWords = threshold
		ep.Assign.InPlace = inplace
		ep.OnChipCount = onchip
		// Warm start: seed the branch-and-bound incumbent from the nearest
		// cached neighbour. The seed is re-priced inside the search, so a
		// completed exploration returns byte-identical results — only the
		// initial bound tightens.
		seeded := false
		if s.warm != nil {
			if seed := s.warm.lookup(p.canon); seed != nil {
				ep.Assign.Seed = seed
				seeded = true
				s.obs.Counter("server.warm_seeds").Add(1)
			}
		}
		if s.cluster != nil {
			s.clusterizeAssign(&ep, p, tid, onchip, threshold, frame, inplace, interconnect)
		}
		v, err := core.EvaluateContext(ctx, p.spec, p.req.Budget, p.spec.Name, ep)
		if err != nil {
			return errResponse(http.StatusUnprocessableEntity, err)
		}
		env.Variant = v.Wire()
		// A seeded search that was cut short (node budget) returns its best
		// incumbent, which the seed may have improved — a valid anytime
		// answer, but dependent on session history, so it must not be cached.
		// Cross-node incumbent sharing has the same shape: a cut-short search
		// may return a bound a peer published, so in cluster mode non-optimal
		// spec responses are volatile too.
		volatile = (seeded || s.cluster != nil) && !env.Variant.Optimal
		if s.warm != nil && ctx.Err() == nil {
			s.warm.record(p.canon, seedFromWire(env.Variant))
		}
	}
	body, err := json.Marshal(env)
	if err != nil {
		return errResponse(http.StatusInternalServerError, err)
	}
	// Degraded mirrors the cacheability rule: a 200 computed under a dead
	// context is the anytime best-effort answer, not the full exploration.
	return &servedResponse{status: http.StatusOK, body: append(body, '\n'), degraded: ctx.Err() != nil, volatile: volatile}
}

func errResponse(status int, err error) *servedResponse {
	body, _ := json.Marshal(errorResponse{Error: err.Error()})
	return &servedResponse{status: status, body: append(body, '\n')}
}

// effectiveTimeout resolves the request deadline: the request's own when
// set, else the server default — both clamped by MaxTimeout.
func (s *Server) effectiveTimeout(requestMS int64) time.Duration {
	d := s.opts.DefaultTimeout
	if requestMS > 0 {
		d = time.Duration(requestMS) * time.Millisecond
	}
	if s.opts.MaxTimeout > 0 && (d <= 0 || d > s.opts.MaxTimeout) {
		d = s.opts.MaxTimeout
	}
	return d
}

// retryAfterSeconds maps queue depth to the 429 Retry-After hint. The
// queue drains maxConcurrent slots per typical request duration, so a
// rejected request's wait is ceil((queued+1)/maxConcurrent) such waves —
// a loaded server tells clients to back off longer instead of inviting a
// thundering retry herd after a flat interval.
func retryAfterSeconds(queued, maxConcurrent int, typical time.Duration) int {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if queued < 0 {
		queued = 0
	}
	if typical <= 0 {
		typical = time.Second
	}
	waves := (queued + maxConcurrent) / maxConcurrent // ceil((queued+1)/maxConcurrent)
	secs := int(math.Ceil(float64(waves) * typical.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryAfter derives the live Retry-After hint: the observed p50 request
// duration when there is one, else the configured default deadline, else
// one second.
func (s *Server) retryAfter() int {
	typical := time.Duration(s.reqHist.Snapshot().P50US) * time.Microsecond
	if typical <= 0 {
		typical = s.opts.DefaultTimeout
	}
	return retryAfterSeconds(int(s.queued.Load()), s.opts.MaxConcurrent, typical)
}

// admit acquires an exploration slot, queueing up to MaxQueue requests.
// It fails (→ 429) when the queue is full, or when ctx dies while queued.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if q := s.queued.Add(1); q > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	s.obs.Counter("server.queued").Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

func (s *Server) writeResponse(w http.ResponseWriter, resp *servedResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	w.Write(resp.body)
	s.countStatus(resp.status)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeResponse(w, &servedResponse{
		status: status,
		body:   append(mustMarshal(errorResponse{Error: msg}), '\n'),
	})
}

func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // marshaling our own plain structs cannot fail
	}
	return b
}

func (s *Server) countStatus(status int) {
	if c := status / 100; c >= 0 && c < len(s.responses) {
		s.responses[c].Add(1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// metricsResponse is the GET /metrics.json body: the server's own gauges
// and latency percentiles, the telemetry counter/gauge/histogram snapshot,
// and the session cache accounting.
type metricsResponse struct {
	Server serverMetrics         `json:"server"`
	Obs    obs.Snapshot          `json:"obs"`
	Memo   map[string]memo.Stats `json:"memo,omitempty"`
	Disk   *memo.DiskStats       `json:"disk,omitempty"`
}

type serverMetrics struct {
	Inflight     int64 `json:"inflight"`
	Queued       int64 `json:"queued"`
	Requests     int64 `json:"requests_total"`
	OK           int64 `json:"responses_2xx"`
	ClientErrors int64 `json:"responses_4xx"`
	ServerErrors int64 `json:"responses_5xx"`
	// The latency ring percentiles are the bounded-window fallback view;
	// LatencyHist is the lifetime histogram behind
	// dtse_request_duration_seconds.
	LatencyCount int64                 `json:"latency_count"`
	LatencyP50US int64                 `json:"latency_p50_us"`
	LatencyP99US int64                 `json:"latency_p99_us"`
	LatencyHist  obs.HistogramSnapshot `json:"latency_hist"`
	Flights      int                   `json:"flight_entries"`
	Open         int                   `json:"open_explorations"`
	Draining     bool                  `json:"draining"`
}

// handleMetrics content-negotiates the exposition: Prometheus text by
// default, the JSON snapshot when the client asks for application/json
// (also always available at /metrics.json).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	s.handleMetricsProm(w, r)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	n, p50, p99 := s.lat.percentiles()
	m := metricsResponse{
		Server: serverMetrics{
			Inflight:     s.inflight.Load(),
			Queued:       s.queued.Load(),
			Requests:     s.requests.Load(),
			OK:           s.responses[2].Load(),
			ClientErrors: s.responses[4].Load(),
			ServerErrors: s.responses[5].Load(),
			LatencyCount: n,
			LatencyP50US: p50,
			LatencyP99US: p99,
			LatencyHist:  s.reqHist.Snapshot(),
			Open:         s.openExplorations(),
			Draining:     s.draining.Load(),
		},
		Obs: s.obs.Snapshot(),
	}
	if s.flight != nil {
		m.Server.Flights = s.flight.size()
	}
	if s.memo != nil {
		m.Memo = make(map[string]memo.Stats)
		for _, sp := range []memo.Space{memo.Schedule, memo.LoopPatterns, memo.PrunedPatterns, memo.Ports, memo.Requests} {
			m.Memo[sp.String()] = s.memo.Stats(sp)
		}
	}
	if s.opts.Disk != nil {
		ds := s.opts.Disk.Stats()
		m.Disk = &ds
	}
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// latencyRing keeps the last latencySamples request latencies for the
// /metrics percentiles — a bounded window, so a long-running daemon reports
// recent behaviour rather than its lifetime average.
const latencySamples = 1024

type latencyRing struct {
	mu  sync.Mutex
	buf [latencySamples]int64
	n   atomic.Int64
}

func (l *latencyRing) record(us int64) {
	i := l.n.Add(1) - 1
	l.mu.Lock()
	l.buf[i%latencySamples] = us
	l.mu.Unlock()
}

// percentiles returns the sample count and the p50/p99 of the current
// window (zeros when empty).
func (l *latencyRing) percentiles() (n, p50, p99 int64) {
	n = l.n.Load()
	if n == 0 {
		return 0, 0, 0
	}
	k := n
	if k > latencySamples {
		k = latencySamples
	}
	window := make([]int64, k)
	l.mu.Lock()
	copy(window, l.buf[:k])
	l.mu.Unlock()
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	// Nearest-rank percentile: the smallest sample with at least p·k samples
	// at or below it, i.e. window[ceil(p·k)-1]. The old floor(p·(k-1)) form
	// under-reported at small counts — with two samples it returned the
	// minimum as the p99.
	idx := func(p float64) int64 {
		i := int(math.Ceil(p*float64(k))) - 1
		if i < 0 {
			i = 0
		}
		if i >= int(k) {
			i = int(k) - 1
		}
		return window[i]
	}
	return n, idx(0.50), idx(0.99)
}
