package dtse

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/memo"
	"repro/internal/obs"
)

// randomWarmSpec builds a random pruned spec (JSON-serialized) with enough
// groups and conflict structure that the assignment search is non-trivial,
// plus a workable cycle budget. Deterministic per seed.
func randomWarmSpec(t *testing.T, seed int64) ([]byte, uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewSpec(fmt.Sprintf("warm%d", seed))
	n := 5 + rng.Intn(4)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
		b.Group(names[i], int64(64<<uint(rng.Intn(5))), 2+2*rng.Intn(12))
	}
	b.Loop("l", uint64(20_000+rng.Intn(50_000)))
	for _, name := range names {
		b.Read(name, float64(1+rng.Intn(3)))
		if rng.Intn(2) == 0 {
			b.Write(name, float64(1+rng.Intn(2)))
		}
	}
	s := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteSpecJSON(s, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), 2 * s.TotalAccesses()
}

// TestWarmStartMatchesCold is the server-level warm-start equivalence pin:
// a warm server (its index seeded by earlier requests on neighbouring
// budget points) must answer every request byte-identically to a cold
// server (warm starts disabled) given the same request sequence — and the
// telemetry must show that seeds actually flowed (server.warm_seeds) and
// actually tightened an incumbent (assign.incumbent_seeded), so the test
// cannot pass vacuously with the warm path dead.
func TestWarmStartMatchesCold(t *testing.T) {
	var warmSeeds, engaged int64
	usable := 0
	for seed := int64(0); seed < 6; seed++ {
		specJSON, budget := randomWarmSpec(t, seed)
		// Neighbouring budget points on the same spec: the canonical spec
		// fingerprint matches exactly, so request 2 and 3 find request 1's
		// organization in the warm index.
		bodies := []string{
			specBody(specJSON, budget, ""),
			specBody(specJSON, budget*2, ""),
			specBody(specJSON, budget+budget/2, `"params": {"onchip": 3}`),
		}

		coldObs, warmObs := obs.New(), obs.New()
		cold := NewServer(ServeOptions{NoWarmStart: true, Obs: coldObs})
		warm := NewServer(ServeOptions{Obs: warmObs})
		tsCold := httptest.NewServer(cold.Handler())
		tsWarm := httptest.NewServer(warm.Handler())

		ok := true
		for i, body := range bodies {
			respC, bodyC := postExplore(t, tsCold, body)
			respW, bodyW := postExplore(t, tsWarm, body)
			if respC.StatusCode != respW.StatusCode {
				t.Fatalf("seed %d req %d: status diverged cold=%d warm=%d", seed, i, respC.StatusCode, respW.StatusCode)
			}
			if respC.StatusCode != http.StatusOK {
				ok = false // infeasible random instance: both servers agree, skip it
				break
			}
			if !bytes.Equal(bodyC, bodyW) {
				t.Fatalf("seed %d req %d: warmed response differs from cold\ncold: %s\nwarm: %s",
					seed, i, bodyC, bodyW)
			}
		}
		tsCold.Close()
		tsWarm.Close()
		if !ok {
			continue
		}
		usable++
		wc := warmObs.Counters()
		warmSeeds += wc["server.warm_seeds"]
		engaged += wc["assign.incumbent_seeded"]
		if cc := coldObs.Counters(); cc["server.warm_seeds"] != 0 {
			t.Fatalf("seed %d: NoWarmStart server still supplied %d seeds", seed, cc["server.warm_seeds"])
		}
	}
	if usable == 0 {
		t.Fatal("every random instance was infeasible; nothing was tested")
	}
	if warmSeeds == 0 {
		t.Fatal("the warm index never supplied a seed to a later request")
	}
	if engaged == 0 {
		t.Fatal("assign.incumbent_seeded never fired: no seed ever tightened an incumbent")
	}
}

// TestWarmIndexRebuiltFromDisk: a server restarted over the same disk tier
// re-seeds its warm index from the recovered responses — the first request
// of the new process on a *neighbouring* budget point (a disk miss) still
// gets a warm seed.
func TestWarmIndexRebuiltFromDisk(t *testing.T) {
	specJSON, budget := randomWarmSpec(t, 1)
	dir := t.TempDir()

	d1, err := memo.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(ServeOptions{Disk: d1})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := postExplore(t, ts1, specBody(specJSON, budget, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("populate: status %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := memo.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	warmObs := obs.New()
	srv2 := NewServer(ServeOptions{Disk: d2, Obs: warmObs})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// A budget the daemon has never seen: no disk hit possible, but the spec
	// fingerprint matches the rebuilt index entry.
	resp2, body2 := postExplore(t, ts2, specBody(specJSON, budget*2, ""))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("neighbour: status %d: %s", resp2.StatusCode, body2)
	}
	if wc := warmObs.Counters(); wc["server.warm_seeds"] == 0 {
		t.Fatalf("restarted server supplied no warm seed from the rebuilt index (%v)", wc)
	}
}
