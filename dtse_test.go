package dtse

import (
	"strings"
	"testing"
)

// buildVideoSpec is a small but non-trivial spec used across the facade
// tests: a frame-differencing workload with one big frame pair and small
// state tables.
func buildVideoSpec(t testing.TB) *Spec {
	t.Helper()
	const w, h = 176, 144 // QCIF
	b := NewSpec("viddiff")
	b.Group("cur", w*h, 8)
	b.Group("ref", w*h, 8)
	b.Group("diffstat", 256, 16)
	b.Group("thresh", 16, 8)

	b.Loop("input", w*h)
	b.Write("cur", 1)

	b.Loop("diff", w*h)
	c := b.Read("cur", 1)
	r := b.Read("ref", 1)
	tr := b.Read("thresh", 1)
	s := b.Read("diffstat", 1, c, r, tr)
	b.Write("diffstat", 1, s)
	b.Write("ref", 1, c, r)

	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestFacadeExplore(t *testing.T) {
	sp := buildVideoSpec(t)
	ep := DefaultParams()
	tech := *ep.Tech
	tech.OnChipMaxWords = 8 * 1024
	tech.FramePeriod = float64(176*144) / 1e6
	ep.Tech = &tech
	ep.SBD.OnChipMaxWords = tech.OnChipMaxWords
	ep.Assign.OnChipMaxWords = tech.OnChipMaxWords
	ep.OnChipCount = 2

	v, err := Explore(sp, uint64(18*176*144), ep)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cost.OnChipArea <= 0 || v.Cost.OffChipPower <= 0 {
		t.Fatalf("degenerate cost: %+v", v.Cost)
	}
	// cur and ref must be off-chip; the state tables on-chip.
	if !strings.Contains(v.Asgn.GroupMem["cur"], "offchip") {
		t.Fatalf("cur mapped to %q, want off-chip", v.Asgn.GroupMem["cur"])
	}
	if !strings.Contains(v.Asgn.GroupMem["diffstat"], "sram") {
		t.Fatalf("diffstat mapped to %q, want on-chip", v.Asgn.GroupMem["diffstat"])
	}
	if v.Dist.Used > uint64(18*176*144) {
		t.Fatal("distribution overran the budget")
	}
}

func TestFacadeTransformsCompose(t *testing.T) {
	sp := buildVideoSpec(t)
	// Merge the two frames into a record (cur, ref are co-indexed in the
	// diff loop via their counts, not sites, so accesses just retarget).
	m, err := Merge(sp, "cur", "ref", "frames")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Group("frames"); !ok {
		t.Fatal("merged group missing")
	}
	// Then compact the small threshold table.
	c, err := Compact(m, "thresh", 2)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Group("thresh")
	if g.Bits != 16 || g.Words != 8 {
		t.Fatalf("compacted thresh = %+v", g)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHierarchyFlow(t *testing.T) {
	// Synthetic cyclic trace over 32 addresses.
	var addrs []int32
	for rep := 0; rep < 64; rep++ {
		for a := int32(0); a < 32; a++ {
			addrs = append(addrs, a)
		}
	}
	prof := AnalyzeReuse(addrs)
	h, err := PlanHierarchy("cur", []Layer{{Name: "win", Words: 48}}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if h.MissRatios[0] > 0.05 {
		t.Fatalf("48-word buffer on a 32-cyclic trace should mostly hit: %v", h.MissRatios)
	}
	sp := buildVideoSpec(t)
	applied, err := ApplyHierarchy(sp, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := applied.Group("win"); !ok {
		t.Fatal("hierarchy layer not added")
	}
}

func TestFacadeCodecRoundTrip(t *testing.T) {
	src := SyntheticImage(96, 64, 5)
	data, stats, err := EncodeBTPC(src, CodecParams{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsPerPixel() <= 0 {
		t.Fatal("no bits produced")
	}
	got, err := DecodeBTPC(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Equal(got) {
		t.Fatal("facade round trip failed")
	}
}

func TestFacadeRecorder(t *testing.T) {
	rec := NewRecorder()
	src := SyntheticImage(48, 48, 2)
	if _, _, err := EncodeBTPC(src, CodecParams{}, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Arrays()) != 18 {
		t.Fatalf("%d profiled arrays, want 18", len(rec.Arrays()))
	}
}

func TestFacadeParetoFront(t *testing.T) {
	pts := []ParetoPoint{
		{Label: "a", Area: 1, Power: 9},
		{Label: "b", Area: 9, Power: 1},
		{Label: "c", Area: 9, Power: 9},
	}
	f := ParetoFront(pts)
	if len(f) != 2 {
		t.Fatalf("front = %v", f)
	}
}

func TestFacadeReproduceBTPCSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full methodology run skipped in -short mode")
	}
	res, err := ReproduceBTPC(DemoConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Structuring) != 3 || len(res.Hierarchy) != 4 {
		t.Fatal("incomplete exploration")
	}
	if res.Final == nil {
		t.Fatal("no final organization")
	}
	// The regenerated tables must render.
	for _, s := range []string{
		res.Table1().Render(), res.Table2().Render(),
		res.Table3().Render(), res.Table4().Render(),
	} {
		if !strings.Contains(s, "mm2") {
			t.Fatal("table rendering broken")
		}
	}
}

func TestFacadeLoopTransformations(t *testing.T) {
	b := NewSpec("acc")
	b.Group("g", 128, 20)
	b.Loop("l", 100)
	prev := b.Read("g", 1)
	for i := 0; i < 7; i++ {
		prev = b.Read("g", 1, prev)
	}
	s := b.MustBuild()
	out, err := TreeifyChain(s, "l", "g")
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("treeify changed totals")
	}
	reduced, log, err := ReduceMACP(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 || reduced.Validate() != nil {
		t.Fatalf("ReduceMACP: log %v", log)
	}
	split, err := SplitLoop(s, "l", []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Loops) != 2 {
		t.Fatal("split did not split")
	}
	fused, err := FuseLoops(split, "l.a", "l.b", "l")
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Loops) != 1 {
		t.Fatal("fusion did not fuse")
	}
}

func TestFacadeSpecJSON(t *testing.T) {
	s := buildVideoSpec(t)
	var buf strings.Builder
	if err := WriteSpecJSON(s, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpecJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalAccesses() != s.TotalAccesses() {
		t.Fatal("JSON round trip changed totals")
	}
}

func TestFacadeLifetimeReport(t *testing.T) {
	s := buildVideoSpec(t)
	if !strings.Contains(LifetimeReport(s), "cur") {
		t.Fatal("lifetime report missing arrays")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, mk := range []func() (*Spec, WorkloadContext, error){
		func() (*Spec, WorkloadContext, error) { return MotionEstimationWorkload(64, 64, 16, 3) },
		func() (*Spec, WorkloadContext, error) { return WaveletWorkload(128, 128, 2) },
		func() (*Spec, WorkloadContext, error) { return FIRWorkload(1000, 32) },
	} {
		s, ctx, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if ctx.CycleBudget == 0 || ctx.FramePeriod <= 0 {
			t.Fatalf("degenerate context %+v", ctx)
		}
	}
}

func TestFacadeProgressiveDecode(t *testing.T) {
	src := SyntheticImage(64, 64, 8)
	data, stats, err := EncodeBTPC(src, CodecParams{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := DecodeBTPCProgressive(data, stats.TopLevel/2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.W != 64 || coarse.H != 64 {
		t.Fatal("progressive decode wrong size")
	}
	mse, _ := src.MSE(coarse)
	if mse == 0 {
		t.Fatal("half-pyramid decode should not be exact")
	}
}

func TestDefaultTechIsUsable(t *testing.T) {
	tech := DefaultTech()
	m := Memory{Name: "x", Kind: 0, Words: 1024, Bits: 8, Ports: 1}
	if _, err := tech.Area(m); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeObservedExplore checks the telemetry surface of the facade: an
// Explore with EvalParams.Obs set records an evaluate span with its engine
// children into the collector sink, and SpanStats renders them.
func TestFacadeObservedExplore(t *testing.T) {
	sp := buildVideoSpec(t)
	c := NewCollectorSink()
	o := NewObserver(c)
	ep := DefaultParams()
	ep.Obs = o
	if _, err := Explore(sp, 20*176*144, ep); err != nil {
		t.Fatal(err)
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(c.Find("evaluate")); n != 1 {
		t.Fatalf("got %d evaluate spans, want 1", n)
	}
	if len(c.Find("sbd.distribute")) == 0 || len(c.Find("assign")) == 0 {
		t.Fatal("engine spans missing from the trace")
	}
	if c.Counters()["core.evaluations"] != 1 {
		t.Fatalf("core.evaluations = %d, want 1", c.Counters()["core.evaluations"])
	}
	out := SpanStats(c.Records())
	if !strings.Contains(out, "total (evaluate)") {
		t.Fatalf("SpanStats output missing the evaluate root:\n%s", out)
	}
}
