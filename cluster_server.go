package dtse

// Cluster mode: scale-out serving over a consistent-hash ring. Every node
// runs the same code with the same member list; any node accepts any
// request. A request whose canonical fingerprint hashes to a peer is
// forwarded there (with hedged retries down the ring walk, see
// internal/cluster), so each node's session cache, disk tier, and warm
// index stay hot for its shard of the keyspace. When the owner is down or
// slow the request falls through to the next ring member, and when no peer
// can answer the receiving node serves it locally — a dead cluster
// degrades to N independent single nodes, never to failed requests.
//
// Two internal endpoints make the cluster more than a router:
//
//	POST /v1/internal/incumbent   best-effort cross-node incumbent costs
//	                              (cluster.Board); loss-tolerant, monotone
//	POST /v1/internal/subtree     one contiguous branch-and-bound prefix
//	                              range of a distributed search
//	                              (assign.SolveSubtree)
//
// Both are marked internal by header and are never re-forwarded, so no
// request loops are possible. Determinism: completed searches return
// byte-identical bodies at any node count — shared incumbents prune with
// strict > only, and the distributed merge is ordered by (cost bits,
// canonical subproblem index), both independent of which node computed
// what (see internal/assign/subtree.go).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/assign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/memlib"
	"repro/internal/memo"
	"repro/internal/sbd"
	"repro/internal/spec"
)

// clusterInternalHeader marks node-to-node requests. A request carrying it
// is served locally no matter who owns the key — forwarding is one hop,
// never a loop — and its X-Trace-Id is adopted so a routed request is one
// trace end to end.
const clusterInternalHeader = "X-Dtse-Internal"

// ClusterOptions configures JoinCluster.
type ClusterOptions struct {
	// Self is this node's advertised base URL (scheme://host:port); peers
	// must be able to reach it.
	Self string
	// Peers are the other members' base URLs. Every node must be
	// configured with the same member set (self ∪ peers), or the ring
	// views disagree and requests bounce (correct — internal requests are
	// served where they land — but wasteful).
	Peers []string
	// HedgeDelay is the hedge floor: a forwarded request slower than
	// max(HedgeDelay, peer p99) gets a hedge against the next ring node.
	// 0 means the internal/cluster default (50ms).
	HedgeDelay time.Duration
	// EjectAfter consecutive peer failures eject it from the ring walk
	// for EjectFor; zero values use the internal/cluster defaults.
	EjectAfter int
	EjectFor   time.Duration
	// SubtreeMinGroups gates branch-and-bound subtree distribution: a
	// search over fewer groups is too small to amortize a network hop.
	// 0 means defaultSubtreeMinGroups; negative disables distribution.
	SubtreeMinGroups int
	// Seeds are member URLs to contact via /v1/internal/join after the
	// listener is up (JoinSeeds). Unlike Peers they need not be the full
	// member set — the handshake returns the seed's membership digest and
	// gossip converges the rest. A node may start with no Peers and only
	// Seeds.
	Seeds []string
	// GossipInterval is the membership gossip/probe period. 0 means
	// defaultGossipInterval; negative disables the loop (membership then
	// only changes via explicit join/leave handshakes — mostly for tests).
	GossipInterval time.Duration
	// SuspicionTimeout is how long a member stays suspect (unreachable by
	// gossip) before it is confirmed dead and removed from the ring. 0
	// means defaultSuspicionTimeout.
	SuspicionTimeout time.Duration
}

const (
	defaultSubtreeMinGroups  = 10
	defaultGossipInterval    = time.Second
	defaultSuspicionTimeout  = 10 * time.Second
	gossipRequestTimeout     = 2 * time.Second
	handoffRequestTimeout    = 30 * time.Second
	tombstoneTTLPerSuspicion = 30 // tombstone TTL = 30 × suspicion timeout
)

// clusterState is the per-server cluster runtime.
type clusterState struct {
	router    *cluster.Router
	board     *cluster.Board
	bcast     chan boardUpdate
	minGroups int // <0 disables subtree distribution

	// Dynamic membership: the SWIM-lite table feeding the ring, and the
	// mutex serializing ring swaps + handoff launches against each other.
	members     *cluster.Membership
	gossipEvery time.Duration // <0: loop disabled
	suspectFor  time.Duration
	topoMu      sync.Mutex
	handoffs    sync.WaitGroup // in-flight outbound handoff streams
}

type boardUpdate struct {
	key  string
	bits uint64
}

// JoinCluster puts the server in cluster mode. Call once, after NewServer
// and before serving traffic.
func (s *Server) JoinCluster(opts ClusterOptions) error {
	if s.cluster != nil {
		return errors.New("cluster: already joined")
	}
	router, err := cluster.New(cluster.Config{
		Self:       opts.Self,
		Peers:      opts.Peers,
		HedgeDelay: opts.HedgeDelay,
		EjectAfter: opts.EjectAfter,
		EjectFor:   opts.EjectFor,
		Obs:        s.obs,
	})
	if err != nil {
		return err
	}
	cs := &clusterState{router: router, bcast: make(chan boardUpdate, 256)}
	switch {
	case opts.SubtreeMinGroups < 0:
		cs.minGroups = -1
	case opts.SubtreeMinGroups == 0:
		cs.minGroups = defaultSubtreeMinGroups
	default:
		cs.minGroups = opts.SubtreeMinGroups
	}
	// Membership starts as the static config (Peers ∪ Seeds) and evolves
	// from there via join handshakes, gossip digests, and suspicion expiry.
	cs.members = cluster.NewMembership(opts.Self, append(append([]string{}, opts.Peers...), opts.Seeds...))
	cs.gossipEvery = opts.GossipInterval
	if cs.gossipEvery == 0 {
		cs.gossipEvery = defaultGossipInterval
	}
	cs.suspectFor = opts.SuspicionTimeout
	if cs.suspectFor <= 0 {
		cs.suspectFor = defaultSuspicionTimeout
	}
	// The broadcast hook must never block the search hot path: improvements
	// beyond the channel's buffer are dropped (the board is a hint store —
	// a lost bound only costs pruning power).
	cs.board = cluster.NewBoard(0, func(key string, bits uint64) {
		select {
		case cs.bcast <- boardUpdate{key, bits}:
		default:
			s.obs.Counter("cluster.incumbent_dropped").Add(1)
		}
	})
	s.cluster = cs
	// Shard discipline for warm starts: a node must never seed from a
	// fingerprint it does not own right now, or a ring change would leak
	// another shard's neighbours into this node's index (and keep serving
	// them after rebalancing).
	if s.warm != nil {
		s.warm.setOwns(func(canon string) bool {
			return router.Owns(memo.Fingerprint64(canon))
		})
	}
	// Align the ring with the initial membership view (Peers ∪ Seeds): a
	// seed is a member we trust to exist before the first handshake.
	router.SetMembers(cs.members.Alive())
	go s.broadcastLoop()
	if cs.gossipEvery > 0 {
		go s.gossipLoop()
	}
	return nil
}

// routeKey is the consistent-hash routing fingerprint. Spec requests hash
// the canonical spec JSON alone — not the full dedup key — so budget and
// knob variants of one spec co-locate on the node whose warm index knows
// that spec's neighbourhood. Demo requests have no canon and hash the
// dedup key.
func routeKey(p *parsedRequest) uint64 {
	if p.mode == "spec" {
		return memo.Fingerprint64(p.canon)
	}
	return memo.Fingerprint64(p.key)
}

// internalHeaders builds the header set for one forwarded request.
func internalHeaders(tid string) http.Header {
	h := make(http.Header, 3)
	h.Set("Content-Type", "application/json")
	h.Set(clusterInternalHeader, "1")
	if tid != "" {
		h.Set("X-Trace-Id", tid)
	}
	return h
}

// isInternal reports whether the request came from a cluster peer.
func isInternal(r *http.Request) bool { return r.Header.Get(clusterInternalHeader) != "" }

// routeExplore forwards the request to its ring owner when that is a live
// peer. served=false means the caller runs it locally: we own the key, or
// no peer could answer (fallback).
func (s *Server) routeExplore(ctx context.Context, p *parsedRequest, raw []byte, tid string) (resp *servedResponse, served bool) {
	cs := s.cluster
	key := routeKey(p)
	if cs.router.Owns(key) {
		s.obs.Counter("cluster.local").Add(1)
		return nil, false
	}
	start := time.Now()
	sp := s.obs.Start("serve.forward")
	sp.SetStr("trace_id", tid)
	fctx := ctx
	if d := s.effectiveTimeout(p.req.TimeoutMS); d > 0 {
		// Give the peer its full deadline plus slack for the hop; the peer
		// applies the real deadline itself and answers anytime-best-effort.
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, d+5*time.Second)
		defer cancel()
	}
	res, ok := cs.router.Forward(fctx, key, http.MethodPost, "/v1/explore", raw, internalHeaders(tid))
	if !ok {
		sp.SetStr("outcome", "fallback_local")
		sp.End()
		s.obs.Counter("cluster.fallback_local").Add(1)
		return nil, false
	}
	sp.SetStr("peer", res.Peer)
	if res.Hedged {
		sp.SetInt("hedged", 1)
	}
	sp.SetInt("status", int64(res.Status))
	sp.End()
	s.obs.Counter("cluster.routed").Add(1)
	if s.flight != nil {
		dur := time.Since(start)
		reason := ""
		switch {
		case res.Status >= 400:
			reason = "error"
		case s.opts.SlowRequest > 0 && dur >= s.opts.SlowRequest:
			reason = "slow"
		}
		if reason != "" {
			s.flight.add(&FlightEntry{
				TraceID:    tid,
				Start:      start,
				Reason:     reason,
				Status:     res.Status,
				DurationMS: float64(dur.Microseconds()) / 1e3,
				Mode:       p.mode,
				Label:      p.label,
				Peer:       res.Peer,
			})
		}
	}
	return &servedResponse{status: res.Status, body: res.Body}, true
}

// planBatch groups a batch's items by preferred remote owner. Items this
// node owns (or whose owners are all down) stay local and are not in the
// map.
func (s *Server) planBatch(parsed []*parsedRequest, errs []error) map[string][]int {
	var remote map[string][]int
	for i, p := range parsed {
		if errs[i] != nil || p == nil {
			continue
		}
		key := routeKey(p)
		if s.cluster.router.Owns(key) {
			continue
		}
		owner, ok := s.cluster.router.PreferredPeer(key)
		if !ok {
			continue
		}
		if remote == nil {
			remote = make(map[string][]int)
		}
		remote[owner] = append(remote[owner], i)
	}
	return remote
}

// forwardBatchGroup sends one owner's items as a sub-batch. On any failure
// it leaves the items' results nil — the caller's second local pass picks
// them up, so a mid-batch peer death costs latency, never failed items.
func (s *Server) forwardBatchGroup(ctx context.Context, peerID string, idxs []int,
	items []json.RawMessage, subTid string, results []*servedResponse, tids []string) {
	sub := batchRequest{Items: make([]json.RawMessage, len(idxs))}
	for j, i := range idxs {
		sub.Items[j] = items[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return
	}
	res, ok := s.cluster.router.ForwardAny(ctx, peerID, http.MethodPost, "/v1/explore/batch", body, internalHeaders(subTid))
	if !ok || res.Status != http.StatusOK {
		s.obs.Counter("cluster.fallback_local").Add(1)
		return
	}
	var env batchResponse
	if json.Unmarshal(res.Body, &env) != nil || len(env.Items) != len(idxs) {
		s.obs.Counter("cluster.fallback_local").Add(1)
		return
	}
	s.obs.Counter("cluster.routed").Add(1)
	s.obs.Counter("cluster.routed_items").Add(int64(len(idxs)))
	for j, i := range idxs {
		it := env.Items[j]
		b := append([]byte(nil), it.Body...)
		results[i] = &servedResponse{status: it.Status, body: append(b, '\n'), degraded: it.Degraded}
		tids[i] = it.TraceID
	}
}

// --- incumbent exchange ---

// incumbentWire is the POST /v1/internal/incumbent body. Bits is the cost's
// math.Float64bits as a decimal string: a uint64 above 2^53 silently loses
// precision as a JSON number.
type incumbentWire struct {
	Key  string `json:"key"`
	Bits string `json:"bits"`
}

func (s *Server) handleIncumbent(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var u incumbentWire
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&u); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid incumbent body: "+err.Error())
		return
	}
	bits, err := strconv.ParseUint(u.Bits, 10, 64)
	if err != nil || u.Key == "" {
		s.writeError(w, http.StatusBadRequest, "invalid incumbent key/bits")
		return
	}
	if s.cluster.board.Merge(u.Key, bits) {
		s.obs.Counter("cluster.incumbent_merged").Add(1)
	}
	w.WriteHeader(http.StatusNoContent)
	s.countStatus(http.StatusNoContent)
}

// broadcastLoop fans local incumbent improvements out to the alive peers.
// Strictly best-effort: short per-peer timeout, errors ignored — the board
// protocol tolerates arbitrary loss.
func (s *Server) broadcastLoop() {
	cs := s.cluster
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case u := <-cs.bcast:
			body, err := json.Marshal(incumbentWire{Key: u.key, Bits: strconv.FormatUint(u.bits, 10)})
			if err != nil {
				continue
			}
			for _, peer := range cs.router.AlivePeers() {
				pctx, cancel := context.WithTimeout(s.baseCtx, 500*time.Millisecond)
				req, err := http.NewRequestWithContext(pctx, http.MethodPost,
					peer.ID()+"/v1/internal/incumbent", bytes.NewReader(body))
				if err == nil {
					req.Header = internalHeaders("")
					if resp, err := cs.router.Client().Do(req); err == nil {
						io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
						resp.Body.Close()
					}
				}
				cancel()
			}
			s.obs.Counter("cluster.incumbent_broadcast").Add(1)
		}
	}
}

// --- subtree distribution ---

// subtreeWire is the POST /v1/internal/subtree body: the problem identity
// (spec + knobs + patterns) plus the assign.SubtreeJob and the prefix
// range. SeedBits crosses as a decimal string for the same uint64-in-JSON
// reason as incumbentWire.Bits.
type subtreeWire struct {
	Spec        json.RawMessage `json:"spec"`
	Params      *paramsRequest  `json:"params,omitempty"`
	Patterns    []patternWire   `json:"patterns"`
	OnChipCount int             `json:"onchip_count"`
	Depth       int             `json:"depth"`
	NumPrefixes int             `json:"num_prefixes"`
	SeedBits    string          `json:"seed_bits"`
	NodeBudget  int             `json:"node_budget"`
	ShareKey    string          `json:"share_key,omitempty"`
	From        int             `json:"from"`
	To          int             `json:"to"`
}

type patternWire struct {
	Access map[string]int `json:"access"`
	Weight uint64         `json:"weight"`
}

type subtreeResultWire struct {
	Found    bool   `json:"found"`
	CostBits string `json:"cost_bits"`
	BestSub  int    `json:"best_sub"`
	Assign   []int  `json:"assign,omitempty"`
	Nodes    int64  `json:"nodes"`
	Optimal  bool   `json:"optimal"`
}

func (rw *subtreeResultWire) toResult() (assign.SubtreeResult, error) {
	bits, err := strconv.ParseUint(rw.CostBits, 10, 64)
	if err != nil {
		return assign.SubtreeResult{}, fmt.Errorf("invalid cost_bits: %v", err)
	}
	return assign.SubtreeResult{
		Found:    rw.Found,
		CostBits: bits,
		BestSub:  rw.BestSub,
		Assign:   rw.Assign,
		Nodes:    rw.Nodes,
		Optimal:  rw.Optimal,
	}, nil
}

// subtreeTech rebuilds the evaluation technology exactly as Server.explore
// does, so both sides of a distributed search price identically.
func subtreeTech(threshold int64, frame float64, interconnect bool) *memlib.Tech {
	tech := *memlib.Default()
	tech.OnChipMaxWords = threshold
	tech.FramePeriod = frame
	if interconnect {
		tech.Bus = tech.WithInterconnect().Bus
	}
	return &tech
}

// handleSubtree solves one prefix range of a peer's distributed search.
// It deliberately takes no admission slot: the caller is already holding
// its own slot on its node, and gating here could deadlock a cluster whose
// slots are all held by distributing searches. Work is bounded by the
// job's node budget instead.
func (s *Server) handleSubtree(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	tid := r.Header.Get("X-Trace-Id")
	if tid == "" {
		tid = fmt.Sprintf("%s-%06d", s.runID, s.nextTrace.Add(1))
	}
	w.Header().Set("X-Trace-Id", tid)
	var wire subtreeWire
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody)).Decode(&wire); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid subtree body: "+err.Error())
		return
	}
	sp2, err := spec.ReadJSON(bytes.NewReader(wire.Spec))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid subtree spec: "+err.Error())
		return
	}
	_, threshold, frame, inplace, interconnect, err := specParams(wire.Params)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	seedBits, err := strconv.ParseUint(wire.SeedBits, 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid seed_bits: "+err.Error())
		return
	}
	pats := make([]sbd.Pattern, len(wire.Patterns))
	for i, pw := range wire.Patterns {
		pats[i] = sbd.Pattern{Access: pw.Access, Weight: pw.Weight}
	}
	job := assign.SubtreeJob{
		OnChipCount: wire.OnChipCount,
		Depth:       wire.Depth,
		NumPrefixes: wire.NumPrefixes,
		SeedBits:    seedBits,
		NodeBudget:  wire.NodeBudget,
		ShareKey:    wire.ShareKey,
	}
	p := assign.Params{
		OnChipMaxWords: threshold,
		InPlace:        inplace,
		Workers:        s.workers,
		Share:          s.cluster.board,
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	span := s.obs.Start("serve.subtree")
	span.SetStr("trace_id", tid)
	span.SetStr("peer", s.cluster.router.Self())
	res, err := assign.SolveSubtree(ctx, sp2, pats, subtreeTech(threshold, frame, interconnect), p, job, wire.From, wire.To)
	if err != nil {
		span.SetInt("status", http.StatusUnprocessableEntity)
		span.End()
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	span.SetInt("nodes", res.Nodes)
	span.SetInt("status", http.StatusOK)
	span.End()
	s.obs.Counter("cluster.subtree_served").Add(1)
	body := mustMarshal(subtreeResultWire{
		Found:    res.Found,
		CostBits: strconv.FormatUint(res.CostBits, 10),
		BestSub:  res.BestSub,
		Assign:   res.Assign,
		Nodes:    res.Nodes,
		Optimal:  res.Optimal,
	})
	s.writeResponse(w, &servedResponse{status: http.StatusOK, body: append(body, '\n')})
}

// clusterizeAssign wires cross-node incumbent sharing and subtree
// distribution into a spec exploration's assign parameters. Demo
// explorations stay local-only: their many small sub-searches would lose
// more to network hops than they gain, and keeping them out of the
// exchange keeps their cacheability rule unchanged.
func (s *Server) clusterizeAssign(ep *core.EvalParams, p *parsedRequest, tid string,
	onchip int, threshold int64, frame float64, inplace, interconnect bool) {
	cs := s.cluster
	ep.Assign.Share = cs.board
	ep.Assign.ShareKey = p.key
	if cs.minGroups < 0 {
		return
	}
	ep.Assign.DistributeWidth = len(cs.router.Members())
	wireParams := &paramsRequest{OnChip: onchip, Threshold: &threshold, Frame: frame, InPlace: inplace, Interconnect: interconnect}
	// The local-fallback params mirror what EvaluateContext hands
	// AssignContext, minus telemetry (a fallback range solve attaches no
	// span) and minus Distribute (a subtree never re-distributes).
	fallback := assign.Params{
		OnChipMaxWords: threshold,
		InPlace:        inplace,
		Workers:        s.workers,
		Share:          cs.board,
	}
	ep.Assign.Distribute = s.distributorFor(wireParams, fallback, tid)
}

// distributorFor builds the assign.DistributeFunc for one exploration:
// split the prefix frontier into contiguous ranges, one per cluster
// member, solve our own range locally while peers solve theirs, and merge.
// Any peer failure is recomputed locally, so distribution can slow a
// search down but never lose a range.
func (s *Server) distributorFor(wireParams *paramsRequest, fallback assign.Params, tid string) assign.DistributeFunc {
	cs := s.cluster
	return func(ctx context.Context, sp2 *spec.Spec, pats []sbd.Pattern, job assign.SubtreeJob) ([]assign.SubtreeResult, bool) {
		if len(sp2.Groups) < cs.minGroups {
			return nil, false
		}
		peers := cs.router.AlivePeers()
		if len(peers) == 0 {
			return nil, false
		}
		nodes := len(peers) + 1
		if job.NumPrefixes < nodes {
			return nil, false
		}
		var specBuf bytes.Buffer
		if sp2.WriteJSON(&specBuf) != nil {
			return nil, false
		}
		pw := make([]patternWire, len(pats))
		for i, pt := range pats {
			pw[i] = patternWire{Access: pt.Access, Weight: pt.Weight}
		}
		tech := subtreeTech(fallback.OnChipMaxWords, wireParams.Frame, wireParams.Interconnect)
		type rng struct{ from, to int }
		rngs := make([]rng, nodes)
		per, rem, at := job.NumPrefixes/nodes, job.NumPrefixes%nodes, 0
		for i := range rngs {
			sz := per
			if i < rem {
				sz++
			}
			rngs[i] = rng{at, at + sz}
			at += sz
		}
		results := make([]assign.SubtreeResult, nodes)
		okFlags := make([]bool, nodes)
		solveLocal := func(i int) {
			res, err := assign.SolveSubtree(ctx, sp2, pats, tech, fallback, job, rngs[i].from, rngs[i].to)
			if err == nil {
				results[i], okFlags[i] = res, true
			}
		}
		var wg sync.WaitGroup
		for i := 1; i < nodes; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wire := subtreeWire{
					Spec:        specBuf.Bytes(),
					Params:      wireParams,
					Patterns:    pw,
					OnChipCount: job.OnChipCount,
					Depth:       job.Depth,
					NumPrefixes: job.NumPrefixes,
					SeedBits:    strconv.FormatUint(job.SeedBits, 10),
					NodeBudget:  job.NodeBudget,
					ShareKey:    job.ShareKey,
					From:        rngs[i].from,
					To:          rngs[i].to,
				}
				body, err := json.Marshal(wire)
				if err != nil {
					solveLocal(i)
					return
				}
				peer := peers[(i-1)%len(peers)]
				res, ok := cs.router.ForwardAny(ctx, peer.ID(), http.MethodPost, "/v1/internal/subtree", body, internalHeaders(tid))
				if !ok || res.Status != http.StatusOK {
					s.obs.Counter("cluster.subtree_fallback").Add(1)
					solveLocal(i)
					return
				}
				var rw subtreeResultWire
				if json.Unmarshal(res.Body, &rw) != nil {
					solveLocal(i)
					return
				}
				sr, err := rw.toResult()
				if err != nil {
					solveLocal(i)
					return
				}
				results[i], okFlags[i] = sr, true
				s.obs.Counter("cluster.subtree_routed").Add(1)
			}(i)
		}
		solveLocal(0)
		wg.Wait()
		for _, ok := range okFlags {
			if !ok {
				return nil, false
			}
		}
		return results, true
	}
}
