package dtse

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memo"
)

var updateGolden = flag.Bool("update", false, "rewrite the exposition golden files")

// TestMetricsPromGolden pins the Prometheus exposition of a fresh server —
// every family present, every sample zero — against a golden file. A fresh
// server is fully deterministic (the opt-in memo/pool histograms register
// eagerly at construction), so the golden is byte-exact: any change to
// metric names, types, bucket bounds, or ordering shows up as a diff here.
func TestMetricsPromGolden(t *testing.T) {
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The dtse_go_* runtime samples are read live at scrape time (heap bytes,
	// GC state) and cannot be deterministic even on a fresh server; mask their
	// values so the golden still pins the family names, types, and ordering.
	got = goRuntimeSampleRE.ReplaceAll(got, []byte("$1 0"))

	golden := filepath.Join("testdata", "metrics_fresh.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition differs from golden %s (rerun with -update if intentional):\n%s",
			golden, diffLines(want, got))
	}
}

// goRuntimeSampleRE matches a dtse_go_* sample line's value (TYPE lines
// don't match: they don't end in a value after a name token).
var goRuntimeSampleRE = regexp.MustCompile(`(?m)^(dtse_go_[a-zA-Z0-9_]+) \S+$`)

// diffLines renders a small line diff, enough to see which family moved.
func diffLines(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	var b strings.Builder
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&b, "line %d:\n  want %q\n  got  %q\n", i+1, wl, gl)
		}
	}
	if b.Len() == 0 {
		return "(no line diff; length mismatch?)"
	}
	return b.String()
}

// TestMetricsPromStableNames scrapes after real traffic and checks the
// metric-name contract: the families dashboards depend on exist, and every
// family matches the naming convention.
func TestMetricsPromStableNames(t *testing.T) {
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, body := postExplore(t, ts, `{"demo": {"size": 64}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic request failed: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)

	families := map[string]string{} // name -> type
	for _, line := range strings.Split(string(text), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 4 {
			t.Fatalf("malformed TYPE line %q", line)
		}
		families[parts[2]] = parts[3]
	}

	required := map[string]string{
		"dtse_http_requests_total":        "counter",
		"dtse_http_responses_total":       "counter",
		"dtse_http_inflight":              "gauge",
		"dtse_http_queued":                "gauge",
		"dtse_http_draining":              "gauge",
		"dtse_explorations_open":          "gauge",
		"dtse_flightrecorder_recorded_total": "counter",
		"dtse_flightrecorder_entries":     "gauge",
		"dtse_request_duration_seconds":   "histogram",
		"dtse_memo_hits_total":            "counter",
		"dtse_memo_misses_total":          "counter",
		"dtse_memo_inflight_waits_total":  "counter",
		"dtse_memo_contended_total":       "counter",
		"dtse_memo_entries":               "gauge",
		"dtse_memo_lookup_seconds":        "histogram",
		"dtse_pool_task_seconds":          "histogram",
		"dtse_stage_duration_seconds":     "histogram",
		"dtse_server_requests_total":      "counter",
		"dtse_go_heap_alloc_bytes":        "gauge",
		"dtse_go_mallocs_total":           "counter",
		"dtse_go_gc_cycles_total":         "counter",
		"dtse_go_gc_last_pause_seconds":   "gauge",
	}
	for name, typ := range required {
		if got, ok := families[name]; !ok {
			t.Errorf("required family %s missing", name)
		} else if got != typ {
			t.Errorf("family %s has type %s, want %s", name, got, typ)
		}
	}
	nameRE := regexp.MustCompile(`^dtse_[a-zA-Z0-9_:]+$`)
	for name := range families {
		if !nameRE.MatchString(name) {
			t.Errorf("family %q violates the naming convention", name)
		}
	}
	// The demo's exploration must have populated the stage histograms.
	if !bytes.Contains(text, []byte(`dtse_stage_duration_seconds_count{stage="serve.explore"} 1`)) {
		t.Errorf("serve.explore stage histogram not recorded:\n%s", text)
	}
}

// promHistogram is one parsed histogram series of an exposition scrape.
type promHistogram struct {
	buckets []int64 // in exposition order, +Inf last
	count   int64
	sumSec  float64
}

func parseRequestDuration(t *testing.T, text string) promHistogram {
	t.Helper()
	var h promHistogram
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "dtse_request_duration_seconds_bucket"):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			h.buckets = append(h.buckets, v)
		case strings.HasPrefix(line, "dtse_request_duration_seconds_sum"):
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			h.sumSec = v
		case strings.HasPrefix(line, "dtse_request_duration_seconds_count"):
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			h.count = v
		}
	}
	if len(h.buckets) == 0 {
		t.Fatalf("no request_duration buckets in scrape:\n%s", text)
	}
	return h
}

// TestMetricsPromConcurrentScrapes runs an 8-client exploration burst with
// /metrics scraped throughout, asserting every scrape is internally
// consistent (cumulative buckets monotone, +Inf bucket equals the count)
// and that counts are monotone across scrapes. Run with -race.
func TestMetricsPromConcurrentScrapes(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastCount int64
		for {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				scrapeErr <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			h := parseRequestDuration(t, string(body))
			prev := int64(0)
			for i, c := range h.buckets {
				if c < prev {
					scrapeErr <- fmt.Errorf("bucket %d count %d below predecessor %d", i, c, prev)
					return
				}
				prev = c
			}
			if inf := h.buckets[len(h.buckets)-1]; inf != h.count {
				scrapeErr <- fmt.Errorf("+Inf bucket %d != count %d", inf, h.count)
				return
			}
			if h.count < lastCount {
				scrapeErr <- fmt.Errorf("count regressed across scrapes: %d -> %d", lastCount, h.count)
				return
			}
			lastCount = h.count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var clients sync.WaitGroup
	for i := 0; i < n; i++ {
		clients.Add(1)
		go func(i int) {
			defer clients.Done()
			// Distinct budgets defeat deduplication: all explorations run.
			resp, body := postExploreRaw(ts.URL, specBody(specJSON, budget+uint64(i), ""))
			if resp == nil || resp.StatusCode != http.StatusOK {
				t.Errorf("client %d failed: %s", i, body)
			}
		}(i)
	}
	clients.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	// After the burst, the lifetime histogram covers all n requests.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if h := parseRequestDuration(t, string(body)); h.count < n {
		t.Errorf("final request_duration count %d, want >= %d", h.count, n)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var e sseEvent
		for _, line := range strings.Split(block, "\n") {
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				e.event = v
			}
			if v, ok := strings.CutPrefix(line, "data: "); ok {
				e.data = v
			}
		}
		if e.event == "" {
			t.Fatalf("SSE block without event line: %q", block)
		}
		events = append(events, e)
	}
	return events
}

// TestSSEExplore: a POST with Accept: text/event-stream streams progress
// events and ends with a result event whose data is byte-identical to the
// plain-POST response body. The GET form (?request=) serves EventSource
// clients the same way.
func TestSSEExplore(t *testing.T) {
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"demo": {"size": 64}}`
	_, plain := postExplore(t, ts, body)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/explore", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("SSE response missing X-Trace-Id")
	}
	stream, _ := io.ReadAll(resp.Body)
	events := parseSSE(t, string(stream))
	if len(events) < 2 {
		t.Fatalf("only %d SSE events, want at least progress + result:\n%s", len(events), stream)
	}
	if events[0].event != "progress" {
		t.Errorf("first event %q, want progress", events[0].event)
	}
	var prog struct {
		TraceID string `json:"trace_id"`
		Mode    string `json:"mode"`
	}
	if err := json.Unmarshal([]byte(events[0].data), &prog); err != nil {
		t.Fatalf("progress event not JSON: %v\n%s", err, events[0].data)
	}
	if prog.TraceID == "" || prog.Mode != "demo" {
		t.Errorf("progress event wrong: %+v", prog)
	}
	last := events[len(events)-1]
	if last.event != "result" {
		t.Fatalf("final event %q, want result", last.event)
	}
	if last.data != strings.TrimRight(string(plain), "\n") {
		t.Errorf("result data differs from plain POST body:\nsse:   %.120s\nplain: %.120s", last.data, plain)
	}

	// GET + ?request= serves EventSource clients; the result is the same.
	getURL := ts.URL + "/v1/explore?request=" + url.QueryEscape(body)
	req, _ = http.NewRequest(http.MethodGet, getURL, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET SSE status %d", resp.StatusCode)
	}
	stream, _ = io.ReadAll(resp.Body)
	events = parseSSE(t, string(stream))
	last = events[len(events)-1]
	if last.event != "result" || last.data != strings.TrimRight(string(plain), "\n") {
		t.Errorf("GET SSE result differs from plain POST body")
	}

	// GET without the SSE accept header stays 405, and GET SSE without
	// ?request= is a 400 — both carry a trace id.
	resp, err = http.Get(ts.URL + "/v1/explore")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("X-Trace-Id") == "" {
		t.Errorf("plain GET: status %d, trace %q; want 405 with trace id",
			resp.StatusCode, resp.Header.Get("X-Trace-Id"))
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/explore", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get("X-Trace-Id") == "" {
		t.Errorf("GET SSE without ?request=: status %d, trace %q; want 400 with trace id",
			resp.StatusCode, resp.Header.Get("X-Trace-Id"))
	}
}

// TestSSECancelMidExploration: a client that disconnects mid-stream cancels
// its exploration; the server drains and the degraded result is not cached,
// so a later identical request recomputes.
func TestSSECancelMidExploration(t *testing.T) {
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"demo": {"size": 256}}`
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/explore", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first progress event to know the exploration was admitted,
	// then hang up.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The canceled exploration degrades and drains.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("exploration never drained after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The degraded result must not have been cached: the rerun is a second
	// miss, and its response is complete (not degraded).
	resp2, respBody := postExplore(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rerun failed: %d %s", resp2.StatusCode, respBody)
	}
	var env struct {
		Results struct {
			Final struct {
				Degraded bool `json:"degraded"`
			} `json:"final"`
		} `json:"results"`
	}
	if err := json.Unmarshal(respBody, &env); err != nil {
		t.Fatal(err)
	}
	if env.Results.Final.Degraded {
		t.Error("rerun after cancellation served the degraded result")
	}
	if st := srv.memo.Stats(memo.Requests); st.Misses < 2 {
		t.Errorf("request keyspace misses = %d, want >= 2 (canceled result must not be cached)", st.Misses)
	}
}

// TestExplorationsRegistry: an in-flight exploration is visible at
// /debug/explorations with its trace id and progress, and disappears once
// it completes.
func TestExplorationsRegistry(t *testing.T) {
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postExploreRaw(ts.URL, `{"demo": {"size": 256}}`)
	}()

	type listing struct {
		Count        int `json:"count"`
		Explorations []struct {
			TraceID   string  `json:"trace_id"`
			Mode      string  `json:"mode"`
			Label     string  `json:"label"`
			ElapsedMS float64 `json:"elapsed_ms"`
			Stage     string  `json:"stage"`
			Nodes     int64   `json:"nodes"`
		} `json:"explorations"`
	}
	fetch := func() listing {
		resp, err := http.Get(ts.URL + "/debug/explorations")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var l listing
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			t.Fatal(err)
		}
		return l
	}

	deadline := time.Now().Add(30 * time.Second)
	var seen listing
	for {
		seen = fetch()
		if seen.Count == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight exploration never appeared in /debug/explorations")
		}
		time.Sleep(2 * time.Millisecond)
	}
	e := seen.Explorations[0]
	if e.TraceID == "" || e.Mode != "demo" || e.Label != "size=256" {
		t.Errorf("registry entry wrong: %+v", e)
	}
	if e.ElapsedMS < 0 {
		t.Errorf("negative elapsed: %v", e.ElapsedMS)
	}

	srv.Abort() // finish fast
	<-done
	if after := fetch(); after.Count != 0 {
		t.Errorf("registry still holds %d entries after completion", after.Count)
	}
}

// TestFlightRecorderDegraded: a request degraded by a dead context is fully
// reconstructable from /debug/flightrecorder — reason, status, search
// position, and the span tree.
func TestFlightRecorderDegraded(t *testing.T) {
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Abort first: every subsequent exploration runs under a dead context
	// and deterministically degrades to its anytime result.
	srv.Abort()
	resp, body := postExplore(t, ts, `{"demo": {"size": 64}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", resp.StatusCode, body)
	}
	tid := resp.Header.Get("X-Trace-Id")

	fr, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	var dump struct {
		Capacity int            `json:"capacity"`
		Recorded int64          `json:"recorded_total"`
		Entries  []*FlightEntry `json:"entries"`
	}
	if err := json.NewDecoder(fr.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Capacity != 64 || dump.Recorded != 1 || len(dump.Entries) != 1 {
		t.Fatalf("flight recorder dump wrong: capacity=%d recorded=%d entries=%d",
			dump.Capacity, dump.Recorded, len(dump.Entries))
	}
	e := dump.Entries[0]
	if e.TraceID != tid {
		t.Errorf("entry trace %q != response trace %q", e.TraceID, tid)
	}
	if e.Reason != "degraded" || !e.Degraded || e.Status != http.StatusOK {
		t.Errorf("entry reason/degraded/status = %q/%v/%d, want degraded/true/200", e.Reason, e.Degraded, e.Status)
	}
	if e.Mode != "demo" || e.Label != "size=64" {
		t.Errorf("entry mode/label = %q/%q", e.Mode, e.Label)
	}
	if len(e.Spans) == 0 {
		t.Fatal("entry has no span tree")
	}
	found := false
	for _, sp := range e.Spans {
		if sp.Name == "serve.explore" {
			found = true
		}
	}
	if !found {
		t.Errorf("span tree misses the serve.explore root; got %d spans", len(e.Spans))
	}
	if e.Search.Stage == "" {
		t.Errorf("search snapshot has no stage: %+v", e.Search)
	}
	if e.DurationMS < 0 {
		t.Errorf("negative duration %v", e.DurationMS)
	}

	// A second, healthy request must not be recorded (no reason applies).
	srv2 := NewServer(ServeOptions{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if resp, body := postExplore(t, ts2, `{"demo": {"size": 64}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request failed: %d %s", resp.StatusCode, body)
	}
	if n := srv2.flight.size(); n != 0 {
		t.Errorf("healthy request was flight-recorded (%d entries)", n)
	}
}

// TestFlightRecorderSlowAndDisabled: the slow criterion records healthy
// requests above the threshold; FlightRecorder < 0 disables the recorder
// and its endpoint answers 404.
func TestFlightRecorderSlowAndDisabled(t *testing.T) {
	srv := NewServer(ServeOptions{SlowRequest: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, body := postExplore(t, ts, `{"demo": {"size": 64}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("request failed: %d %s", resp.StatusCode, body)
	}
	total, entries := srv.flight.dump()
	if total != 1 || len(entries) != 1 || entries[0].Reason != "slow" {
		t.Fatalf("slow request not recorded: total=%d entries=%+v", total, entries)
	}

	off := NewServer(ServeOptions{FlightRecorder: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := http.Get(tsOff.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled recorder endpoint: status %d, want 404", resp.StatusCode)
	}
}

// TestLatencyRingSmallCounts pins the nearest-rank percentiles at the small
// sample counts where the old floor(p*(k-1)) indexing under-reported.
func TestLatencyRingSmallCounts(t *testing.T) {
	cases := []struct {
		samples  []int64
		p50, p99 int64
	}{
		{[]int64{10}, 10, 10},
		{[]int64{10, 20}, 10, 20},
		{[]int64{10, 20, 30}, 20, 30},
		{[]int64{10, 20, 30, 40}, 20, 40},
		{[]int64{10, 20, 30, 40, 50}, 30, 50},
	}
	for _, c := range cases {
		var l latencyRing
		for _, s := range c.samples {
			l.record(s)
		}
		n, p50, p99 := l.percentiles()
		if n != int64(len(c.samples)) || p50 != c.p50 || p99 != c.p99 {
			t.Errorf("n=%d samples: got (n=%d, p50=%d, p99=%d), want (p50=%d, p99=%d)",
				len(c.samples), n, p50, p99, c.p50, c.p99)
		}
	}
	var empty latencyRing
	if n, p50, p99 := empty.percentiles(); n != 0 || p50 != 0 || p99 != 0 {
		t.Errorf("empty ring: %d/%d/%d", n, p50, p99)
	}
}

// TestHealthzContentType: the plain-text endpoints declare their type.
func TestHealthzContentType(t *testing.T) {
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("/healthz Content-Type = %q", ct)
	}

	// Content negotiation on /metrics: JSON when asked for.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics with Accept: application/json returned %q", ct)
	}
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Errorf("negotiated JSON metrics not decodable: %v", err)
	}
}
