package dtse

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/memo"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, *batchResponse, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/explore/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env batchResponse
	raw := json.RawMessage{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("batch envelope: %v", err)
		}
	}
	return resp, &env, raw
}

func batchBody(items ...string) string {
	return fmt.Sprintf(`{"items": [%s]}`, strings.Join(items, ", "))
}

// TestBatchExplore: a mixed batch returns per-item results byte-identical
// to standalone POSTs of the same requests, invalid items degrade to
// per-item 400s without failing the envelope, and every item carries its
// own trace id under the batch's.
func TestBatchExplore(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{Obs: NewObserver()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Standalone references first (they also warm the Requests keyspace:
	// the batch must answer them as per-item dedup hits).
	_, ref0 := postExplore(t, ts, specBody(specJSON, budget, ""))
	_, ref1 := postExplore(t, ts, `{"demo": {"size": 64}}`)
	hitsBefore := srv.memo.Stats(memo.Requests).Hits

	resp, env, _ := postBatch(t, ts, batchBody(
		specBody(specJSON, budget, ""),
		`{"demo": {"size": 64}}`,
		`{"budget": 1}`, // invalid: budget without spec
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	btid := resp.Header.Get("X-Trace-Id")
	if btid == "" {
		t.Fatal("batch response missing X-Trace-Id")
	}
	if len(env.Items) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(env.Items))
	}
	for i, want := range [][]byte{ref0, ref1} {
		it := env.Items[i]
		if it.Status != http.StatusOK || it.Degraded {
			t.Errorf("item %d: status %d degraded=%v", i, it.Status, it.Degraded)
		}
		if got := string(it.Body); got != strings.TrimRight(string(want), "\n") {
			t.Errorf("item %d body differs from standalone POST:\nbatch: %.120s\nsolo:  %.120s", i, got, want)
		}
		if it.Index != i || !strings.HasPrefix(it.TraceID, btid+".") {
			t.Errorf("item %d: index=%d trace=%q (batch trace %q)", i, it.Index, it.TraceID, btid)
		}
	}
	if it := env.Items[2]; it.Status != http.StatusBadRequest {
		t.Errorf("invalid item: status %d, want 400 (body %s)", it.Status, it.Body)
	}
	if hits := srv.memo.Stats(memo.Requests).Hits; hits < hitsBefore+2 {
		t.Errorf("Requests hits %d -> %d; batch items did not dedup against standalone results", hitsBefore, hits)
	}
}

// TestBatchExploreValidation pins the envelope-level failure modes.
func TestBatchExploreValidation(t *testing.T) {
	srv := NewServer(ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _, raw := postBatch(t, ts, `{"items": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d (%s)", resp.StatusCode, raw)
	}
	items := make([]string, maxBatchItems+1)
	for i := range items {
		items[i] = `{"demo": {"size": 64}}`
	}
	if resp, _, raw := postBatch(t, ts, batchBody(items...)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d (%s)", resp.StatusCode, raw)
	}
	if resp, _, _ := postBatch(t, ts, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/explore/batch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status %d, want 405", resp.StatusCode)
	}
}

// TestBatchExploreCanceledMidBatch: when the batch context dies before
// every item launched (client disconnect / server drain), ForEach leaves
// the unlaunched tail nil; the envelope must backfill those items with a
// defined 503 instead of panicking on a nil result. A pre-canceled request
// context exercises exactly that path: item 0 always runs, items 1+ are
// never launched.
func TestBatchExploreCanceledMidBatch(t *testing.T) {
	srv := NewServer(ServeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := batchBody(`{"demo": {"size": 64}}`, `{"demo": {"size": 64}}`, `{"demo": {"size": 64}}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/explore/batch", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d (%s)", rec.Code, rec.Body.Bytes())
	}
	var env batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("batch envelope: %v", err)
	}
	if len(env.Items) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(env.Items))
	}
	btid := rec.Header().Get("X-Trace-Id")
	for i, it := range env.Items {
		if it.TraceID != fmt.Sprintf("%s.%d", btid, i) {
			t.Errorf("item %d: trace %q (batch trace %q)", i, it.TraceID, btid)
		}
		if len(it.Body) == 0 {
			t.Errorf("item %d: empty body", i)
		}
	}
	// Items 1+ were never launched: they must carry the backfilled 503.
	for i := 1; i < 3; i++ {
		if env.Items[i].Status != http.StatusServiceUnavailable {
			t.Errorf("unlaunched item %d: status %d, want 503 (%s)", i, env.Items[i].Status, env.Items[i].Body)
		}
	}
}

// TestBatchExploreConcurrentSharedScratch is the scratch-aliasing race
// test: two concurrent batches share the server's one worker pool (and the
// arena pool underneath), with distinct budgets so nothing deduplicates
// and every item really evaluates. Under -race this fails if any pooled
// scratch is handed to two explorations at once; without -race it still
// checks each item's result against the standalone answer, which aliased
// scratch would corrupt.
func TestBatchExploreConcurrentSharedScratch(t *testing.T) {
	_, specJSON, budget := serviceSpec(t)
	srv := NewServer(ServeOptions{Obs: NewObserver(), NoCache: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const perBatch = 4
	body := func(base uint64) string {
		items := make([]string, perBatch)
		for i := range items {
			items[i] = specBody(specJSON, base+uint64(i), "")
		}
		return batchBody(items...)
	}
	type out struct {
		resp *http.Response
		env  *batchResponse
	}
	outs := make([]out, 2)
	var wg sync.WaitGroup
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			resp, env, _ := postBatch(t, ts, body(budget+uint64(16*b)))
			outs[b] = out{resp, env}
		}(b)
	}
	wg.Wait()

	for b, o := range outs {
		if o.resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", b, o.resp.StatusCode)
		}
		if len(o.env.Items) != perBatch {
			t.Fatalf("batch %d: %d items", b, len(o.env.Items))
		}
		for i, it := range o.env.Items {
			if it.Status != http.StatusOK {
				t.Errorf("batch %d item %d: status %d (%s)", b, i, it.Status, it.Body)
				continue
			}
			_, want := postExplore(t, ts, specBody(specJSON, budget+uint64(16*b)+uint64(i), ""))
			if string(it.Body) != strings.TrimRight(string(want), "\n") {
				t.Errorf("batch %d item %d: body differs from standalone evaluation", b, i)
			}
		}
	}
}
