package dtse

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/memo"
	"repro/internal/obs"
)

// Live exploration introspection: every admitted /v1/explore request is
// registered with a Progress the pipeline publishes into, readable while
// the request runs at GET /debug/explorations and streamed per-request
// over SSE. The registry is keyed by trace id, so a slow request spotted
// in the registry can be found again in traces and the flight recorder.

// liveEntry is one in-flight exploration.
type liveEntry struct {
	tid   string
	mode  string
	label string
	start time.Time
	prog  *obs.Progress
}

// registerLive adds the request to the in-flight registry and returns its
// Progress.
func (s *Server) registerLive(tid string, p *parsedRequest) *obs.Progress {
	prog := &obs.Progress{}
	prog.SetStage("admitted")
	s.liveMu.Lock()
	s.live[tid] = &liveEntry{tid: tid, mode: p.mode, label: p.label, start: time.Now(), prog: prog}
	s.liveMu.Unlock()
	return prog
}

func (s *Server) unregisterLive(tid string) {
	s.liveMu.Lock()
	delete(s.live, tid)
	s.liveMu.Unlock()
}

// openExplorations returns the registry size.
func (s *Server) openExplorations() int {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return len(s.live)
}

// liveWire is the JSON shape of one in-flight exploration, shared by
// /debug/explorations and the SSE progress events.
type liveWire struct {
	TraceID     string  `json:"trace_id"`
	Mode        string  `json:"mode"`
	Label       string  `json:"label,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	obs.ProgressSnapshot
}

func (e *liveEntry) wire() liveWire {
	elapsed := time.Since(e.start)
	w := liveWire{
		TraceID:          e.tid,
		Mode:             e.mode,
		Label:            e.label,
		ElapsedMS:        float64(elapsed.Microseconds()) / 1e3,
		ProgressSnapshot: e.prog.Snapshot(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		w.NodesPerSec = float64(w.Nodes) / sec
	}
	return w
}

// handleExplorations serves the in-flight registry, oldest request first.
func (s *Server) handleExplorations(w http.ResponseWriter, r *http.Request) {
	s.liveMu.Lock()
	entries := make([]*liveEntry, 0, len(s.live))
	for _, e := range s.live {
		entries = append(entries, e)
	}
	s.liveMu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].start.Equal(entries[j].start) {
			return entries[i].start.Before(entries[j].start)
		}
		return entries[i].tid < entries[j].tid
	})
	out := struct {
		Count        int        `json:"count"`
		Explorations []liveWire `json:"explorations"`
	}{Count: len(entries), Explorations: make([]liveWire, len(entries))}
	for i, e := range entries {
		out.Explorations[i] = e.wire()
	}
	writeJSON(w, out)
}

// handleFlightRecorder dumps the flight-recorder ring, newest entry first.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	total, entries := s.flight.dump()
	writeJSON(w, struct {
		Capacity int            `json:"capacity"`
		Recorded int64          `json:"recorded_total"`
		Entries  []*FlightEntry `json:"entries"`
	}{Capacity: len(s.flight.entries), Recorded: total, Entries: entries})
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// --- SSE progress streaming ---

// sseProgressInterval paces the progress events of one streamed request.
const sseProgressInterval = 150 * time.Millisecond

// wantsSSE reports whether the client asked for a progress stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// serveSSE streams one exploration: periodic "progress" events with the
// live introspection snapshot, then one "result" (or "error") event whose
// data is the exact response body a plain POST would have returned. Client
// disconnect cancels the exploration through ctx — it degrades to its
// anytime result (never cached), the stream just has no one left to read
// it.
func (s *Server) serveSSE(ctx context.Context, w http.ResponseWriter, r *http.Request,
	p *parsedRequest, tid string, prog *obs.Progress) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, "response writer does not support streaming")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	done := make(chan *servedResponse, 1)
	go func() { done <- s.runExploration(ctx, p, tid, prog) }()

	emit := func(event string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	progressData := func() []byte {
		s.liveMu.Lock()
		e := s.live[tid]
		s.liveMu.Unlock()
		if e == nil {
			return []byte("{}")
		}
		b, err := json.Marshal(e.wire())
		if err != nil {
			return []byte("{}")
		}
		return b
	}

	emit("progress", progressData())
	ticker := time.NewTicker(sseProgressInterval)
	defer ticker.Stop()
	for {
		select {
		case resp := <-done:
			event := "result"
			if resp.status != http.StatusOK {
				event = "error"
			}
			emit(event, bytes.TrimRight(resp.body, "\n"))
			// The responses-by-class accounting counts the exploration's
			// outcome; the HTTP status of the stream itself is always 200.
			s.countStatus(resp.status)
			return
		case <-ticker.C:
			emit("progress", progressData())
		}
	}
}

// --- Prometheus exposition ---

// handleMetricsProm writes the Prometheus text exposition: the server's
// HTTP-level families, the request-latency histogram, the authoritative
// per-keyspace memo stats, and everything the observer holds (counters,
// gauges, explicit histograms, per-stage duration histograms). Metric names
// are a stable contract pinned by the exposition tests.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	p := obs.NewProm(&b, "dtse")

	p.Counter("http.requests", s.requests.Load())
	for c := 2; c <= 5; c++ {
		p.Counter(obs.Label("http.responses", "class", fmt.Sprintf("%dxx", c)), s.responses[c].Load())
	}
	p.Gauge("http.inflight", s.inflight.Load())
	p.Gauge("http.queued", s.queued.Load())
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	p.Gauge("http.draining", draining)
	p.Gauge("explorations.open", int64(s.openExplorations()))
	if s.flight != nil {
		total, _ := s.flight.dump()
		p.Counter("flightrecorder.recorded", total)
		p.Gauge("flightrecorder.entries", int64(s.flight.size()))
	}
	if cs := s.cluster; cs != nil {
		p.Gauge("cluster.peers", int64(len(cs.router.Peers())))
		p.Gauge("cluster.peers_alive", int64(len(cs.router.AlivePeers())))
		p.Gauge("cluster.members", int64(len(cs.router.Members())))
		p.Gauge("cluster.incumbents", int64(cs.board.Len()))
	}
	p.HistogramSeries("request_duration", "", s.reqHist.Snapshot())

	if s.memo != nil {
		spaces := []memo.Space{memo.Schedule, memo.LoopPatterns, memo.PrunedPatterns, memo.Ports, memo.Requests}
		sort.Slice(spaces, func(i, j int) bool { return spaces[i].String() < spaces[j].String() })
		stats := make([]memo.Stats, len(spaces))
		for i, sp := range spaces {
			stats[i] = s.memo.Stats(sp)
		}
		// One family at a time: exposition requires a family's samples to be
		// consecutive, so the loops go metric-major, space-minor.
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.hits", "space", sp.String()), stats[i].Hits)
		}
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.misses", "space", sp.String()), stats[i].Misses)
		}
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.inflight_waits", "space", sp.String()), stats[i].InflightWaits)
		}
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.contended", "space", sp.String()), stats[i].Contended)
		}
		for i, sp := range spaces {
			p.Gauge(obs.Label("memo.entries", "space", sp.String()), int64(stats[i].Entries))
		}
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.evictions", "space", sp.String()), stats[i].Evictions)
		}
		for i, sp := range spaces {
			p.Gauge(obs.Label("memo.bytes_held", "space", sp.String()), stats[i].BytesHeld)
		}
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.disk_hits", "space", sp.String()), stats[i].DiskHits)
		}
		for i, sp := range spaces {
			p.Counter(obs.Label("memo.disk_writes", "space", sp.String()), stats[i].DiskWrites)
		}
	}
	if d := s.opts.Disk; d != nil {
		ds := d.Stats()
		p.Gauge("diskcache.records", int64(ds.Records))
		p.Counter("diskcache.replayed", ds.Replayed)
		p.Counter("diskcache.truncated_bytes", ds.Truncated)
		p.Counter("diskcache.hits", ds.Hits)
		p.Counter("diskcache.misses", ds.Misses)
		p.Counter("diskcache.writes", ds.Writes)
		p.Counter("diskcache.dropped", ds.Dropped)
		p.Counter("diskcache.read_errors", ds.ReadErrs)
	}

	// Go runtime families (dtse_go_*): allocation counters to pair with the
	// request counters (allocs per request without a profiler attached) and
	// the GC pressure gauges. Read at scrape time, so values are current.
	rt := obs.ReadRuntime()
	p.Gauge("go.heap_alloc_bytes", int64(rt.HeapAllocBytes))
	p.Gauge("go.heap_sys_bytes", int64(rt.HeapSysBytes))
	p.Counter("go.alloc_bytes", int64(rt.TotalAllocBytes))
	p.Counter("go.mallocs", int64(rt.Mallocs))
	p.Counter("go.gc_cycles", int64(rt.GCCycles))
	p.GaugeF("go.gc_last_pause_seconds", float64(rt.LastPauseNS)/1e9)
	p.GaugeF("go.gc_pause_total_seconds", float64(rt.PauseTotalNS)/1e9)
	p.Gauge("go.goroutines", int64(rt.Goroutines))

	// The observer's memo.* gauges (published by demo runs) duplicate the
	// authoritative live stats above, so they are skipped here; everything
	// else passes through.
	p.WriteObserver(s.obs, func(name string) bool { return strings.HasPrefix(name, "memo.") })

	if err := p.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}
