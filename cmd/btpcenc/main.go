// Command btpcenc compresses a binary PGM (P5) image with the BTPC coder.
//
// Usage:
//
//	btpcenc [-q quant] [-o out.btpc] [-stats] input.pgm
//
// With no input file a synthetic test image is encoded (useful for a quick
// smoke test: btpcenc -stats).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/btpc"
	"repro/internal/img"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("btpcenc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quant := fs.Int("q", 1, "quantization step (1 = lossless)")
	out := fs.String("o", "", "output file (default: input with .btpc suffix, or stdout for synthetic input)")
	stats := fs.Bool("stats", false, "print rate statistics to stderr")
	synth := fs.Int("synth", 512, "synthetic image size when no input file is given")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src *img.Gray
	var outName string
	switch fs.NArg() {
	case 0:
		src = img.Synthetic(*synth, *synth, 1)
		outName = *out
	case 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "btpcenc:", err)
			return 1
		}
		src, err = img.DecodePGM(data)
		if err != nil {
			fmt.Fprintln(stderr, "btpcenc:", err)
			return 1
		}
		outName = *out
		if outName == "" {
			outName = fs.Arg(0) + ".btpc"
		}
	default:
		fmt.Fprintf(stderr, "btpcenc: expected at most one input file, got %d\n", fs.NArg())
		fs.Usage()
		return 2
	}

	data, st, err := btpc.Encode(src, btpc.Params{Quant: *quant}, nil)
	if err != nil {
		fmt.Fprintln(stderr, "btpcenc:", err)
		return 1
	}
	if *stats {
		fmt.Fprintf(stderr, "%dx%d, %d levels, %d top pixels, %d bytes (%.3f bpp), %d escapes\n",
			st.W, st.H, st.TopLevel, st.TopPixels, len(data), st.BitsPerPixel(), st.Escapes)
		for ctx, n := range st.SymbolsPerCtx {
			fmt.Fprintf(stderr, "  context %d: %d symbols\n", ctx, n)
		}
	}
	if outName == "" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "btpcenc:", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(outName, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "btpcenc:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s (%d bytes)\n", outName, len(data))
	return 0
}
