// Command btpcenc compresses a binary PGM (P5) image with the BTPC coder.
//
// Usage:
//
//	btpcenc [-q quant] [-o out.btpc] [-stats] input.pgm
//
// With no input file a synthetic test image is encoded (useful for a quick
// smoke test: btpcenc -stats).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/btpc"
	"repro/internal/img"
)

func main() {
	quant := flag.Int("q", 1, "quantization step (1 = lossless)")
	out := flag.String("o", "", "output file (default: input with .btpc suffix, or stdout for synthetic input)")
	stats := flag.Bool("stats", false, "print rate statistics to stderr")
	synth := flag.Int("synth", 512, "synthetic image size when no input file is given")
	flag.Parse()

	var src *img.Gray
	var outName string
	switch flag.NArg() {
	case 0:
		src = img.Synthetic(*synth, *synth, 1)
		outName = *out
	case 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src, err = img.DecodePGM(data)
		if err != nil {
			fatal(err)
		}
		outName = *out
		if outName == "" {
			outName = flag.Arg(0) + ".btpc"
		}
	default:
		fatal(fmt.Errorf("expected at most one input file, got %d", flag.NArg()))
	}

	data, st, err := btpc.Encode(src, btpc.Params{Quant: *quant}, nil)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%dx%d, %d levels, %d top pixels, %d bytes (%.3f bpp), %d escapes\n",
			st.W, st.H, st.TopLevel, st.TopPixels, len(data), st.BitsPerPixel(), st.Escapes)
		for ctx, n := range st.SymbolsPerCtx {
			fmt.Fprintf(os.Stderr, "  context %d: %d symbols\n", ctx, n)
		}
	}
	if outName == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(outName, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", outName, len(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btpcenc:", err)
	os.Exit(1)
}
