package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/btpc"
	"repro/internal/img"
)

// TestEncodeFileRoundTrip drives run() end to end: a PGM on disk is
// encoded to a .btpc file that the library decoder reconstructs exactly
// (quant 1 is lossless).
func TestEncodeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := img.Synthetic(48, 32, 7)
	in := filepath.Join(dir, "in.pgm")
	if err := os.WriteFile(in, src.EncodePGM(), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{in}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(in + ".btpc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := btpc.Decode(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != src.W || got.H != src.H || !bytes.Equal(got.Pix, src.Pix) {
		t.Fatal("lossless encode round trip changed the image")
	}
}

// TestEncodeSyntheticToStdout: with no input file the encoder emits a
// synthetic image's stream on stdout, decodable by the library.
func TestEncodeSyntheticToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-synth", "32", "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	got, err := btpc.Decode(stdout.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := img.Synthetic(32, 32, 1)
	if got.W != 32 || got.H != 32 || !bytes.Equal(got.Pix, want.Pix) {
		t.Fatal("synthetic stream did not decode back to the synthetic image")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("bpp")) {
		t.Fatalf("-stats printed no rate line: %s", stderr.String())
	}
}

// TestEncodeUsageErrors: bad invocations exit 2, runtime failures exit 1.
func TestEncodeUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"a.pgm", "b.pgm"}, &stdout, &stderr); code != 2 {
		t.Fatalf("two inputs: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.pgm")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing input: exit %d, want 1", code)
	}
}
