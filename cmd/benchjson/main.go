// Command benchjson runs the performance-tracking benchmarks of the
// reproduction programmatically (via testing.Benchmark) and writes a
// machine-readable JSON report — the perf trajectory artifact (BENCH_N.json)
// CI uploads and future optimization PRs compare against.
//
// Usage:
//
//	benchjson [-size 256] [-bench regexp] [-out BENCH.json] [-baseline OLD.json]
//	          [-cpus 1,2,4,8] [-cluster]
//
// Each benchmark is run with and without the cross-variant evaluation cache
// where that distinction exists; the cached runs also record the session
// cache's hit/miss counters, so the report shows how much of each sweep was
// answered from the cache.
//
// -baseline embeds the previous report and annotates every matching result
// with vs_baseline percent deltas (ns/op, allocs/op, bytes/op), so the
// artifact states the regression or improvement directly instead of raw
// values only.
//
// -cluster runs the multi-node serving sweep: a single dtsed node versus a
// 3-node consistent-hash ring (in-process, so the comparison isolates the
// cache-capacity benefit of sharding), plus a leg that kills one node
// mid-run and requires zero failed requests. Results land under "cluster".
//
// -cpus runs the full exploration once per listed width — GOMAXPROCS and
// the session worker pool are both set to the width, mirroring `go test
// -cpu` — and embeds the resulting scaling curve (ns/op and speedup versus
// the 1-cpu point) in the report. The curve measures what the host actually
// provides: on a machine with fewer hardware CPUs than a listed width, the
// extra workers cannot speed anything up, which is why the report records
// hardware_cpus alongside.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/pool"
	"repro/internal/sbd"
)

// Result is one benchmark's measurements.
type Result struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Iterations  int    `json:"iterations"`
	// Headline cost metrics of the produced organization, so a perf
	// regression that changes results is caught by the same artifact.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Cache is the session cache accounting of the last iteration (cached
	// variants only).
	Cache map[string]CacheStats `json:"cache,omitempty"`
	// VsBaseline is the percent change of each measurement against the
	// same-named benchmark of the embedded baseline report (negative =
	// improvement). Present only when -baseline was given and the baseline
	// has a matching result.
	VsBaseline *Delta `json:"vs_baseline,omitempty"`
}

// Delta is a set of percent changes versus the baseline, each computed as
// 100*(new-old)/old.
type Delta struct {
	NsPct     float64 `json:"ns_per_op_pct"`
	AllocsPct float64 `json:"allocs_per_op_pct"`
	BytesPct  float64 `json:"bytes_per_op_pct"`
}

// CacheStats mirrors memo.Stats for the JSON report.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Waits     int64   `json:"inflight_waits"`
	Contended int64   `json:"contended"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// ScalingPoint is one width of the -cpus sweep.
type ScalingPoint struct {
	CPUs       int   `json:"cpus"` // GOMAXPROCS and worker pool width
	NsPerOp    int64 `json:"ns_per_op"`
	Iterations int   `json:"iterations"`
	// Speedup is ns/op of the sweep's 1-cpu point divided by this point's.
	Speedup float64 `json:"speedup_vs_1,omitempty"`
}

// Report is the full benchjson artifact.
type Report struct {
	Size int `json:"size"`
	// HardwareCPUs records what the measuring host actually had: a scaling
	// curve is only meaningful relative to the physical parallelism.
	HardwareCPUs int            `json:"hardware_cpus,omitempty"`
	Results      []Result       `json:"results"`
	Scaling      []ScalingPoint `json:"scaling,omitempty"`
	// Cluster is the -cluster multi-node serving sweep: single-node vs
	// 3-node-ring throughput on a cache-thrashing workload, plus the
	// peer-kill leg.
	Cluster []ClusterPoint `json:"cluster,omitempty"`
	// Baseline optionally embeds a previous report (the -baseline flag), so
	// one artifact carries the before/after comparison.
	Baseline *Report `json:"baseline,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func cacheStats(c *memo.Cache) map[string]CacheStats {
	if c == nil {
		return nil
	}
	out := make(map[string]CacheStats)
	for _, sp := range []memo.Space{memo.Schedule, memo.LoopPatterns, memo.PrunedPatterns, memo.Ports} {
		st := c.Stats(sp)
		if st.Hits+st.Misses == 0 {
			continue
		}
		out[sp.String()] = CacheStats{
			Hits: st.Hits, Misses: st.Misses, Waits: st.InflightWaits,
			Contended: st.Contended, Entries: st.Entries, HitRate: st.HitRate(),
		}
	}
	return out
}

// benchCase is one benchmark the emitter knows how to run.
type benchCase struct {
	name string
	run  func(size int) (testing.BenchmarkResult, map[string]float64, map[string]CacheStats, error)
}

// runAllBench runs the full methodology with or without the session cache.
func runAllBench(cached bool) func(int) (testing.BenchmarkResult, map[string]float64, map[string]CacheStats, error) {
	return func(size int) (testing.BenchmarkResult, map[string]float64, map[string]CacheStats, error) {
		var metrics map[string]float64
		var cstats map[string]CacheStats
		var innerErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ep := core.DefaultEvalParams()
				if !cached {
					ep.Memo = nil
				}
				res, err := core.RunAll(core.DemoConfig{Size: size}, ep)
				if err != nil {
					innerErr = err
					b.Fatal(err)
				}
				metrics = map[string]float64{
					"final_total_mw":     res.Final.Cost.TotalPower(),
					"final_onchip_mm2":   res.Final.Cost.OnChipArea,
					"budget_points":      float64(len(res.Budgets)),
					"allocation_points":  float64(len(res.Allocations)),
					"structuring_points": float64(len(res.Structuring)),
				}
				cstats = cacheStats(ep.Memo)
			}
		})
		return r, metrics, cstats, innerErr
	}
}

// budgetSweepBench runs the Table 3 budget sweep on a prebuilt demonstrator.
func budgetSweepBench(cached bool) func(int) (testing.BenchmarkResult, map[string]float64, map[string]CacheStats, error) {
	return func(size int) (testing.BenchmarkResult, map[string]float64, map[string]CacheStats, error) {
		ep := core.DefaultEvalParams()
		res, err := core.RunAll(core.DemoConfig{Size: size}, ep)
		if err != nil {
			return testing.BenchmarkResult{}, nil, nil, err
		}
		var metrics map[string]float64
		var cstats map[string]CacheStats
		var innerErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ep := core.DefaultEvalParams().ScaleTo(size)
				if !cached {
					ep.Memo = nil
				}
				pts, err := core.ExploreBudgets(res.HierChoice.Spec, res.Demo.CycleBudget, ep)
				if err != nil {
					innerErr = err
					b.Fatal(err)
				}
				metrics = map[string]float64{
					"budget_points":      float64(len(pts)),
					"tightest_onchip_mw": pts[len(pts)-1].Cost.OnChipPower,
				}
				cstats = cacheStats(ep.Memo)
			}
		})
		return r, metrics, cstats, innerErr
	}
}

// distributeBench runs one full storage-cycle-budget distribution.
func distributeBench(size int) (testing.BenchmarkResult, map[string]float64, map[string]CacheStats, error) {
	d, err := core.BuildDemonstrator(core.DemoConfig{Size: size})
	if err != nil {
		return testing.BenchmarkResult{}, nil, nil, err
	}
	ep := core.DefaultEvalParams().ScaleTo(size)
	var metrics map[string]float64
	var innerErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dist, err := sbd.Distribute(d.Spec, d.CycleBudget, ep.SBD)
			if err != nil {
				innerErr = err
				b.Fatal(err)
			}
			metrics = map[string]float64{"patterns": float64(len(dist.Patterns))}
		}
	})
	return r, metrics, nil, innerErr
}

// pctChange returns the percent change from old to new; zero when old is
// zero (no meaningful ratio to report).
func pctChange(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}

// attachDeltas fills each result's vs_baseline percent changes from the
// same-named benchmark of the embedded baseline, so the artifact reports
// the regression/improvement directly instead of raw values only.
func attachDeltas(rep *Report) {
	if rep.Baseline == nil {
		return
	}
	byName := make(map[string]Result, len(rep.Baseline.Results))
	for _, r := range rep.Baseline.Results {
		byName[r.Name] = r
	}
	for i := range rep.Results {
		old, ok := byName[rep.Results[i].Name]
		if !ok {
			continue
		}
		rep.Results[i].VsBaseline = &Delta{
			NsPct:     pctChange(old.NsPerOp, rep.Results[i].NsPerOp),
			AllocsPct: pctChange(old.AllocsPerOp, rep.Results[i].AllocsPerOp),
			BytesPct:  pctChange(old.BytesPerOp, rep.Results[i].BytesPerOp),
		}
	}
}

// parseCPUList parses the -cpus value, a comma-separated list of widths
// like "1,2,4,8". An empty string means no scaling sweep.
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return nil, fmt.Errorf("-cpus %q: %v", s, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("-cpus %q: width %d out of range (must be >= 1)", s, n)
		}
		out = append(out, n)
	}
	return out, nil
}

// scalingSweep benchmarks the full exploration once per width, with both
// GOMAXPROCS and the session worker pool set to the width (the same thing
// `go test -cpu` would do), and computes each point's speedup against the
// 1-cpu point (or the first listed width if 1 is absent).
func scalingSweep(size int, cpus []int, stderr io.Writer) ([]ScalingPoint, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	pts := make([]ScalingPoint, 0, len(cpus))
	for _, width := range cpus {
		runtime.GOMAXPROCS(width)
		fmt.Fprintf(stderr, "running Explore scaling point (size %d, cpus %d)...\n", size, width)
		var innerErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ep := core.DefaultEvalParams()
				ep.Workers = pool.New(width)
				if _, err := core.RunAll(core.DemoConfig{Size: size}, ep); err != nil {
					innerErr = err
					b.Fatal(err)
				}
			}
		})
		if innerErr != nil {
			return nil, fmt.Errorf("scaling cpus=%d: %w", width, innerErr)
		}
		pts = append(pts, ScalingPoint{CPUs: width, NsPerOp: r.NsPerOp(), Iterations: r.N})
		fmt.Fprintf(stderr, "  cpus=%d: %d ns/op\n", width, r.NsPerOp())
	}
	base := pts[0].NsPerOp
	for _, p := range pts {
		if p.CPUs == 1 {
			base = p.NsPerOp
			break
		}
	}
	for i := range pts {
		if pts[i].NsPerOp > 0 {
			pts[i].Speedup = float64(base) / float64(pts[i].NsPerOp)
		}
	}
	return pts, nil
}

func cases() []benchCase {
	return []benchCase{
		{"Explore", runAllBench(true)},
		{"ExploreUncached", runAllBench(false)},
		{"BudgetSweep", budgetSweepBench(true)},
		{"BudgetSweepUncached", budgetSweepBench(false)},
		{"Distribute", distributeBench},
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	size := fs.Int("size", 256, "demonstrator image side length")
	benchRe := fs.String("bench", ".", "regexp selecting which benchmarks to run")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	baseline := fs.String("baseline", "", "embed this previous report as the before/after baseline")
	cpusFlag := fs.String("cpus", "", "comma-separated pool widths for a scaling sweep of the full exploration (e.g. 1,2,4,8)")
	clusterFlag := fs.Bool("cluster", false, "run the in-process multi-node serving sweep (single vs 3-node ring, with a peer-kill leg)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *size < 2 {
		fmt.Fprintf(stderr, "benchjson: -size %d out of range (must be >= 2)\n", *size)
		fs.Usage()
		return 2
	}
	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: -bench %q: %v\n", *benchRe, err)
		fs.Usage()
		return 2
	}
	cpus, err := parseCPUList(*cpusFlag)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		fs.Usage()
		return 2
	}

	rep := Report{Size: *size, HardwareCPUs: runtime.NumCPU()}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(stderr, "benchjson: -baseline %s: %v\n", *baseline, err)
			return 1
		}
		base.Baseline = nil // one level of history is enough
		rep.Baseline = &base
	}
	for _, c := range cases() {
		if !re.MatchString(c.name) {
			continue
		}
		fmt.Fprintf(stderr, "running %s (size %d)...\n", c.name, *size)
		r, metrics, cstats, err := c.run(*size)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %s: %v\n", c.name, err)
			return 1
		}
		rep.Results = append(rep.Results, Result{
			Name:        c.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Metrics:     metrics,
			Cache:       cstats,
		})
		fmt.Fprintf(stderr, "  %s: %d ns/op, %d allocs/op\n", c.name, r.NsPerOp(), r.AllocsPerOp())
	}
	if len(rep.Results) == 0 && len(cpus) == 0 && !*clusterFlag {
		fmt.Fprintf(stderr, "benchjson: -bench %q matched no benchmarks\n", *benchRe)
		return 2
	}
	if len(cpus) > 0 {
		pts, err := scalingSweep(*size, cpus, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		rep.Scaling = pts
	}
	if *clusterFlag {
		pts, err := clusterSweep(stderr)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		rep.Cluster = pts
	}

	attachDeltas(&rep)
	for _, r := range rep.Results {
		if d := r.VsBaseline; d != nil {
			fmt.Fprintf(stderr, "  %s vs baseline: ns/op %+.1f%%, allocs/op %+.1f%%, bytes/op %+.1f%%\n",
				r.Name, d.NsPct, d.AllocsPct, d.BytesPct)
		}
	}

	w := stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		fmt.Fprintf(stderr, "(report written to %s)\n", *out)
	}
	return 0
}
