package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunEmitsReport: a tiny Distribute-only run must produce valid JSON
// with the measurement fields filled in.
func TestRunEmitsReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-size", "32", "-bench", "^Distribute$", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rep.Size != 32 || len(rep.Results) != 1 {
		t.Fatalf("report = %+v, want size 32 with 1 result", rep)
	}
	r := rep.Results[0]
	if r.Name != "Distribute" || r.NsPerOp <= 0 || r.Iterations <= 0 {
		t.Fatalf("result = %+v, want positive measurements for Distribute", r)
	}
	if r.Metrics["patterns"] <= 0 {
		t.Fatalf("result metrics = %v, want a positive pattern count", r.Metrics)
	}
}

// TestRunCachedReportsCacheStats: the cached budget sweep must include the
// session cache accounting.
func TestRunCachedReportsCacheStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-size", "32", "-bench", "^BudgetSweep$"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	var rep Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(rep.Results) != 1 {
		t.Fatalf("want 1 result, got %+v", rep.Results)
	}
	cs, ok := rep.Results[0].Cache["schedule"]
	if !ok || cs.Hits+cs.Misses == 0 {
		t.Fatalf("cached sweep missing schedule cache stats: %+v", rep.Results[0].Cache)
	}
}

// TestRunBaseline: -baseline embeds the previous report so one artifact
// carries the before/after comparison, and deeper history is trimmed.
func TestRunBaseline(t *testing.T) {
	old := filepath.Join(t.TempDir(), "old.json")
	prev := Report{
		Size:     32,
		Results:  []Result{{Name: "Distribute", NsPerOp: 123456, Iterations: 1}},
		Baseline: &Report{Size: 16},
	}
	data, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(old, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-size", "32", "-bench", "^Distribute$", "-baseline", old}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	var rep Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Baseline == nil || len(rep.Baseline.Results) != 1 || rep.Baseline.Results[0].NsPerOp != 123456 {
		t.Fatalf("baseline not embedded: %+v", rep.Baseline)
	}
	if rep.Baseline.Baseline != nil {
		t.Fatal("baseline history not trimmed to one level")
	}
	if len(rep.Results) != 1 || rep.Results[0].VsBaseline == nil {
		t.Fatalf("results missing vs_baseline deltas: %+v", rep.Results)
	}
	d := rep.Results[0].VsBaseline
	wantNs := 100 * float64(rep.Results[0].NsPerOp-123456) / 123456
	if d.NsPct != wantNs {
		t.Errorf("ns delta = %v, want %v", d.NsPct, wantNs)
	}
	// The synthetic baseline had zero allocs/bytes: no meaningful ratio.
	if d.AllocsPct != 0 || d.BytesPct != 0 {
		t.Errorf("zero-baseline deltas = %+v, want 0", d)
	}
	if !strings.Contains(stderr.String(), "vs baseline:") {
		t.Errorf("stderr missing delta line:\n%s", stderr.String())
	}

	for _, bad := range [][]string{
		{"-bench", "^Distribute$", "-baseline", filepath.Join(t.TempDir(), "missing.json")},
		{"-bench", "^Distribute$", "-baseline", old + "x"},
	} {
		var so, se bytes.Buffer
		if code := run(bad, &so, &se); code != 1 {
			t.Errorf("run(%v) = %d, want 1 (stderr: %s)", bad, code, se.String())
		}
	}
	garbled := filepath.Join(t.TempDir(), "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var so, se bytes.Buffer
	if code := run([]string{"-bench", "^Distribute$", "-baseline", garbled}, &so, &se); code != 1 {
		t.Errorf("garbled baseline: run = %d, want 1 (stderr: %s)", code, se.String())
	}
}

// TestAttachDeltas: percent deltas attach only to results the baseline
// also measured, computed as 100*(new-old)/old per measurement.
func TestAttachDeltas(t *testing.T) {
	rep := Report{
		Results: []Result{
			{Name: "Explore", NsPerOp: 150, AllocsPerOp: 50, BytesPerOp: 300},
			{Name: "NewBench", NsPerOp: 10},
		},
		Baseline: &Report{Results: []Result{
			{Name: "Explore", NsPerOp: 100, AllocsPerOp: 200, BytesPerOp: 400},
		}},
	}
	attachDeltas(&rep)
	d := rep.Results[0].VsBaseline
	if d == nil || d.NsPct != 50 || d.AllocsPct != -75 || d.BytesPct != -25 {
		t.Fatalf("Explore deltas = %+v, want +50/-75/-25", d)
	}
	if rep.Results[1].VsBaseline != nil {
		t.Fatalf("NewBench has no baseline counterpart, got %+v", rep.Results[1].VsBaseline)
	}
	noBase := Report{Results: []Result{{Name: "Explore", NsPerOp: 1}}}
	attachDeltas(&noBase)
	if noBase.Results[0].VsBaseline != nil {
		t.Fatal("deltas attached without a baseline")
	}
}

// TestParseCPUList: the -cpus parser accepts comma-separated positive
// widths and rejects everything else.
func TestParseCPUList(t *testing.T) {
	got, err := parseCPUList("1, 2,4,8")
	if err != nil || len(got) != 4 || got[0] != 1 || got[3] != 8 {
		t.Fatalf("parseCPUList = %v, %v", got, err)
	}
	if got, err := parseCPUList(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"0", "1,-2", "1,x", "1,,2"} {
		if _, err := parseCPUList(bad); err == nil {
			t.Errorf("parseCPUList(%q) = nil error, want error", bad)
		}
	}
}

// TestRunCPUSweep: -cpus embeds a scaling curve with a speedup anchored at
// the 1-cpu point, alongside the host's hardware CPU count.
func TestRunCPUSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-size", "32", "-bench", "^Distribute$", "-cpus", "1,2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	var rep Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.HardwareCPUs < 1 {
		t.Fatalf("hardware_cpus = %d, want >= 1", rep.HardwareCPUs)
	}
	if len(rep.Scaling) != 2 {
		t.Fatalf("scaling = %+v, want 2 points", rep.Scaling)
	}
	for i, want := range []int{1, 2} {
		p := rep.Scaling[i]
		if p.CPUs != want || p.NsPerOp <= 0 || p.Iterations <= 0 || p.Speedup <= 0 {
			t.Fatalf("scaling[%d] = %+v, want cpus=%d with positive measurements", i, p, want)
		}
	}
	if rep.Scaling[0].Speedup != 1.0 {
		t.Fatalf("1-cpu speedup = %v, want exactly 1.0", rep.Scaling[0].Speedup)
	}
}

// TestRunFlagErrors: invalid flags exit 2.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-size", "1"},
		{"-bench", "("},
		{"-bench", "NoSuchBenchmark"},
		{"-nosuchflag"},
		{"-cpus", "0"},
		{"-cpus", "1,nope"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestRunBadOutPath: an unwritable -out path is an I/O failure (exit 1),
// reported after the benchmarks ran.
func TestRunBadOutPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-size", "32", "-bench", "^Distribute$", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x.json")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "benchjson:") {
		t.Fatalf("stderr missing error prefix:\n%s", stderr.String())
	}
}
