package main

// The -cluster sweep measures what the multi-node serving layer buys on one
// machine: three in-process dtsed nodes joined into a consistent-hash ring,
// each with a deliberately small session-cache cap, against a single node
// with the same cap. The workload cycles a fixed set of distinct spec
// requests, so the single node's bounded cache thrashes (cyclic access over
// a set larger than capacity defeats CLOCK eviction) while the ring
// partitions the same set into per-node shards that fit — the cache-capacity
// form of scale-out, which is the one an in-process sweep on a small host
// can demonstrate honestly (the nodes share the same CPUs, so compute
// parallelism is not measurable here; cache capacity is).
//
// The third leg kills one node's listener mid-run and keeps driving the
// survivors: health-gated ejection and ring-walk failover must absorb the
// loss with zero failed requests.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dtse "repro"
)

// ClusterPoint is one leg of the -cluster serving sweep.
type ClusterPoint struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Requests int    `json:"requests"`
	// Failed counts non-200 responses and transport errors; the acceptance
	// bar for every leg — the peer-kill leg included — is zero.
	Failed     int     `json:"failed_requests"`
	PeerKilled bool    `json:"peer_killed,omitempty"`
	WallMS     int64   `json:"wall_ms"`
	ReqPerSec  float64 `json:"req_per_sec"`
	// SpeedupVsSingle is this leg's req/s over the single-node leg's.
	SpeedupVsSingle float64 `json:"speedup_vs_single,omitempty"`
}

const (
	// clusterSpecs distinct requests cycled clusterRounds times by
	// clusterClients concurrent clients.
	clusterSpecs   = 30
	clusterRounds  = 8
	clusterClients = 4
	// clusterBatchItems is the /v1/explore/batch size the drivers post.
	clusterBatchItems = 8
	// clusterCacheBytes caps each node's session-cache keyspaces. A cached
	// response retains ~3KB (body + dedup key), so the full working set
	// (~30 entries at ~3.5KB ≈ 105KB, accessed cyclically — the pattern CLOCK eviction
	// cannot hold) overflows one node, while a ring shard (even a skewed
	// 47% one, ~49KB) fits. That window is the experiment: the ring turns
	// one thrashing cache into three fitting ones.
	clusterCacheBytes = 56 << 10
	// clusterHedge keeps cold-start hedging out of the throughput
	// measurement: with no latency history every p99 estimate is the
	// floor, and a floor below the cache-miss latency would duplicate
	// every miss. Failover on transport errors (the peer-kill leg) does
	// not wait for this.
	clusterHedge = 2 * time.Second
)

// clusterWorkload builds the fixed spec-request set. Deterministic seeds:
// every leg sees byte-identical bodies.
func clusterWorkload() ([]string, error) {
	bodies := make([]string, 0, clusterSpecs)
	for seed := 0; seed < clusterSpecs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		b := dtse.NewSpec(fmt.Sprintf("cw%d", seed))
		// Enough groups that the assignment search is real work: a cache
		// miss must cost visibly more than a cached answer for capacity
		// sharding to show up in throughput.
		names := make([]string, 12+rng.Intn(3))
		for i := range names {
			names[i] = fmt.Sprintf("g%d", i)
			b.Group(names[i], int64(128<<uint(rng.Intn(4))), 4+2*rng.Intn(6))
		}
		b.Loop("body", 2048+uint64(rng.Intn(2048)))
		for _, name := range names {
			b.Read(name, float64(1+rng.Intn(2)))
			if rng.Intn(2) == 0 {
				b.Write(name, 1)
			}
		}
		s, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("workload spec %d: %w", seed, err)
		}
		var buf strings.Builder
		if err := dtse.WriteSpecJSON(s, &buf); err != nil {
			return nil, err
		}
		// The budget must be generous enough for every search to complete
		// optimally: in cluster mode a cut-short (non-optimal) result is
		// volatile — cross-node bounds make it history-dependent — so it
		// would never be cached and the sweep would measure recompute on
		// every leg.
		bodies = append(bodies, fmt.Sprintf(`{"spec": %s, "budget": 20000000}`, buf.String()))
	}
	return bodies, nil
}

// clusterNodes builds n servers behind in-process listeners and, for n > 1,
// joins them into one ring. Returns the servers, their URLs, and a stop
// function index (stop(i) kills node i's listener and aborts it).
func clusterNodes(n int) ([]*dtse.Server, []string, func(i int), func(), error) {
	servers := make([]*dtse.Server, n)
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		servers[i] = dtse.NewServer(dtse.ServeOptions{
			MaxConcurrent: 2,
			MaxQueue:      256,
			CacheBytes:    clusterCacheBytes,
		})
		https[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = https[i].URL
	}
	if n > 1 {
		for i := 0; i < n; i++ {
			var peers []string
			for j := 0; j < n; j++ {
				if j != i {
					peers = append(peers, urls[j])
				}
			}
			err := servers[i].JoinCluster(dtse.ClusterOptions{
				Self:       urls[i],
				Peers:      peers,
				HedgeDelay: clusterHedge,
			})
			if err != nil {
				return nil, nil, nil, nil, err
			}
		}
	}
	stopped := make([]bool, n)
	stop := func(i int) {
		if !stopped[i] {
			stopped[i] = true
			https[i].CloseClientConnections()
			https[i].Close()
			servers[i].Abort()
		}
	}
	closeAll := func() {
		for i := 0; i < n; i++ {
			stop(i)
		}
	}
	return servers, urls, stop, closeAll, nil
}

// driveCluster posts the workload as /v1/explore/batch requests of
// clusterBatchItems consecutive items, round-robin across fronts with
// clusterClients concurrent clients; kill, when non-nil, runs once halfway
// through. Returns per-item failures and wall time. Batches are the shape
// the routing layer is built for: the front groups items by ring owner and
// forwards one sub-batch per peer, so sharding costs one hop per group
// rather than one per item.
func driveCluster(fronts []string, bodies []string, kill func()) (int, time.Duration, error) {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clusterClients}}
	var batches []string
	for at := 0; at < clusterRounds*len(bodies); at += clusterBatchItems {
		items := make([]string, 0, clusterBatchItems)
		for j := 0; j < clusterBatchItems; j++ {
			items = append(items, bodies[(at+j)%len(bodies)])
		}
		batches = append(batches, `{"items": [`+strings.Join(items, ", ")+`]}`)
	}
	var next, failed atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clusterClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batches) {
					return
				}
				if kill != nil && i == len(batches)/2 {
					killOnce.Do(kill)
				}
				front := fronts[i%len(fronts)]
				resp, err := client.Post(front+"/v1/explore/batch", "application/json", strings.NewReader(batches[i]))
				if err != nil {
					failed.Add(clusterBatchItems)
					continue
				}
				var env struct {
					Items []struct {
						Status int `json:"status"`
					} `json:"items"`
				}
				err = json.NewDecoder(resp.Body).Decode(&env)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || len(env.Items) != clusterBatchItems {
					failed.Add(clusterBatchItems)
					continue
				}
				for _, it := range env.Items {
					if it.Status != http.StatusOK {
						failed.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	return int(failed.Load()), time.Since(start), nil
}

// requestCacheLine reports a node's Requests-keyspace behaviour after a
// leg — the evidence that the single node thrashed while the shards fit.
func requestCacheLine(url string) string {
	req, err := http.NewRequest(http.MethodGet, url+"/metrics.json", nil)
	if err != nil {
		return err.Error()
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err.Error()
	}
	defer resp.Body.Close()
	var m struct {
		Memo map[string]struct {
			Hits, Misses, Evictions int64
			Entries                 int64
			BytesHeld               int64
		} `json:"memo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return err.Error()
	}
	r := m.Memo["requests"]
	return fmt.Sprintf("requests cache: %d hits, %d misses, %d evictions, %d entries (%d bytes held)",
		r.Hits, r.Misses, r.Evictions, r.Entries, r.BytesHeld)
}

// clusterSweep runs the three legs and computes speedups against the
// single-node leg.
func clusterSweep(stderr io.Writer) ([]ClusterPoint, error) {
	bodies, err := clusterWorkload()
	if err != nil {
		return nil, err
	}
	total := clusterRounds * len(bodies)

	type leg struct {
		name  string
		nodes int
		kill  bool
	}
	legs := []leg{
		{"single", 1, false},
		{"cluster3", 3, false},
		{"cluster3_peer_kill", 3, true},
	}
	var pts []ClusterPoint
	for _, l := range legs {
		_, urls, stop, closeAll, err := clusterNodes(l.nodes)
		if err != nil {
			return nil, err
		}
		fronts := urls
		var kill func()
		if l.kill {
			// Drive the survivors only; the killed node's keys must fail
			// over via ejection without a single lost request.
			fronts = urls[:2]
			kill = func() {
				fmt.Fprintln(stderr, "  killing node 2 mid-run...")
				stop(2)
			}
		}
		fmt.Fprintf(stderr, "running cluster leg %s (%d node(s), %d requests)...\n", l.name, l.nodes, total)
		failed, wall, err := driveCluster(fronts, bodies, kill)
		if err == nil {
			for i, u := range fronts {
				fmt.Fprintf(stderr, "  node %d %s\n", i, requestCacheLine(u))
			}
		}
		closeAll()
		if err != nil {
			return nil, err
		}
		pt := ClusterPoint{
			Name: l.name, Nodes: l.nodes, Requests: total, Failed: failed,
			PeerKilled: l.kill, WallMS: wall.Milliseconds(),
			ReqPerSec: float64(total) / wall.Seconds(),
		}
		fmt.Fprintf(stderr, "  %s: %.1f req/s, %d failed, %s\n", l.name, pt.ReqPerSec, failed, wall.Round(time.Millisecond))
		pts = append(pts, pt)
	}
	base := pts[0].ReqPerSec
	for i := range pts[1:] {
		if base > 0 {
			pts[i+1].SpeedupVsSingle = pts[i+1].ReqPerSec / base
		}
	}
	return pts, nil
}
