// Command dtse runs the full system-level design exploration of the paper
// on the BTPC demonstrator and prints the regenerated tables and figures.
//
// Usage:
//
//	dtse [-size 1024] [-seed 1] [-quant 1] [-table N] [-figure N]
//	     [-timeout 30s] [-trace out.jsonl] [-stats] [-pprof addr]
//	     [-cache on|off] [-cache-dir DIR] [-workers N]
//
// With -cache-dir, the completed run's output is persisted to an
// append-only log in DIR; an identical later invocation replays it
// byte-for-byte without exploring (noted on stderr). Degraded runs are
// never stored.
//
// Without -table/-figure, everything is printed. -timeout bounds the whole
// exploration: when it expires (or the process receives SIGINT/SIGTERM) the
// run degrades to best-effort results — every sweep keeps its reference row
// and the branch-and-bound returns its incumbent, marked "(best-effort)" in
// the tables — instead of aborting. -trace records the exploration
// telemetry (span tree + counters) as JSON lines; -stats prints a per-step
// wall-time/allocation summary to stderr; -pprof serves net/http/pprof and
// the telemetry counters (expvar) on the given address for live profiling
// of long explorations.
package main

import (
	"bytes"
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/pool"
)

// validateSelection checks the -table/-figure selectors against the ranges
// the reproduction actually has (Tables 1-4, Figures 1-3); 0 means "all".
func validateSelection(table, figure int) error {
	if table < 0 || table > 4 {
		return fmt.Errorf("dtse: -table %d out of range (1-4, or 0 for all)", table)
	}
	if figure < 0 || figure > 3 {
		return fmt.Errorf("dtse: -figure %d out of range (1-3, or 0 for all)", figure)
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dtse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	size := fs.Int("size", 1024, "image side length (the paper's constraint is 1024)")
	seed := fs.Uint64("seed", 1, "synthetic image seed")
	quant := fs.Int("quant", 1, "BTPC quantizer (1 = lossless)")
	table := fs.Int("table", 0, "print only this table (1-4)")
	figure := fs.Int("figure", 0, "print only this figure (1-3)")
	verbose := fs.Bool("v", false, "print the profile and the final organization details")
	ablations := fs.Bool("ablations", false, "also run the modeling-decision ablations")
	inplaceF := fs.Bool("inplace", false, "also print the in-place mapping (lifetime) analysis")
	timeout := fs.Duration("timeout", 0, "bound the exploration; on expiry results degrade to best-effort (0 = none)")
	traceOut := fs.String("trace", "", "write the exploration telemetry (JSONL spans + counters) to this file")
	stats := fs.Bool("stats", false, "print the per-step telemetry summary to stderr")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar counters on this address (e.g. localhost:6060)")
	cache := fs.String("cache", "on", "cross-variant evaluation cache: on or off (results are identical either way)")
	cacheDir := fs.String("cache-dir", "", "persist completed results to an append-only log in this directory; identical later runs are answered from it")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool width for the parallel exploration (results are identical at any width)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cache != "on" && *cache != "off" {
		fmt.Fprintf(stderr, "dtse: -cache %q invalid (want on or off)\n", *cache)
		fs.Usage()
		return 2
	}
	if *workers < 1 {
		fmt.Fprintf(stderr, "dtse: -workers %d out of range (must be >= 1)\n", *workers)
		fs.Usage()
		return 2
	}

	if err := validateSelection(*table, *figure); err != nil {
		fmt.Fprintln(stderr, err)
		fs.Usage()
		return 2
	}
	if *timeout < 0 {
		fmt.Fprintf(stderr, "dtse: -timeout %v out of range (must be >= 0)\n", *timeout)
		fs.Usage()
		return 2
	}

	// Disk result cache: the key pins every flag that shapes stdout; a hit
	// replays the recorded bytes without exploring at all. Only completed
	// (non-degraded) runs are stored, so replayed output is always the
	// full-exploration output.
	var disk *memo.DiskTier
	var diskKey string
	var captured *bytes.Buffer
	if *cacheDir != "" {
		d, err := memo.OpenDiskTier(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "dtse:", err)
			return 1
		}
		defer d.Close()
		disk = d
		diskKey = fmt.Sprintf("dtse|1|%d|%d|%d|%d|%d|%t|%t|%t",
			*size, *seed, *quant, *table, *figure, *verbose, *ablations, *inplaceF)
		if body, ok := disk.Get(memo.Requests, diskKey); ok {
			stdout.Write(body)
			fmt.Fprintf(stderr, "(result served from %s)\n", disk.Path())
			return 0
		}
		captured = &bytes.Buffer{}
		stdout = io.MultiWriter(stdout, captured)
	}

	// Cancellation: SIGINT/SIGTERM always degrade the run gracefully; an
	// explicit -timeout adds a deadline on top.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Telemetry session: a JSONL sink when -trace is given, an in-memory
	// collector when -stats needs one, nothing (nil observer, zero overhead)
	// otherwise.
	var sinks []obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "dtse:", err)
			return 1
		}
		traceFile = f
		sinks = append(sinks, obs.NewJSONL(f))
	}
	var collector *obs.Collector
	if *stats {
		collector = obs.NewCollector()
		sinks = append(sinks, collector)
	}
	var observer *obs.Observer
	if len(sinks) > 0 || *pprofAddr != "" {
		observer = obs.New(sinks...)
	}
	if *pprofAddr != "" {
		expvar.Publish("dtse", expvar.Func(func() any { return observer.Counters() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(stderr, "dtse: pprof server:", err)
			}
		}()
		fmt.Fprintf(stderr, "(pprof and expvar counters on http://%s/debug/pprof/)\n", *pprofAddr)
	}

	ep := core.DefaultEvalParams()
	ep.Obs = observer
	if *cache == "off" {
		ep.Memo = nil
	}
	ep.Workers = pool.New(*workers)

	start := time.Now()
	res, err := core.RunAllContext(ctx, core.DemoConfig{Size: *size, Seed: *seed, Quant: *quant}, ep)
	if err != nil {
		fmt.Fprintln(stderr, "dtse:", err)
		return 1
	}
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "(deadline hit after %v: results are best-effort, not proven optimal)\n",
			time.Since(start).Round(time.Millisecond))
	}

	all := *table == 0 && *figure == 0
	if all || *figure == 1 {
		fmt.Fprintln(stdout, "Figure 1: Stepwise refinement methodology (explored tree)")
		fmt.Fprintln(stdout, res.Figure1())
	}
	if all || *figure == 2 {
		fmt.Fprintln(stdout, "Figure 2: Basic group (a) compaction and (b) merging")
		fmt.Fprintln(stdout, res.Figure2())
	}
	if all || *table == 1 {
		fmt.Fprintln(stdout, res.Table1().Render())
	}
	if all || *figure == 3 {
		fmt.Fprintln(stdout, "Figure 3:", res.HierPlan.Describe())
		fmt.Fprintln(stdout, res.Figure3())
	}
	if all || *table == 2 {
		fmt.Fprintln(stdout, res.Table2().Render())
	}
	if all || *table == 3 {
		fmt.Fprintln(stdout, res.Table3().Render())
	}
	if all || *table == 4 {
		fmt.Fprintln(stdout, res.Table4().Render())
	}
	if all {
		fmt.Fprintf(stdout, "MACP: unit %d cycles, duration-weighted %d cycles, budget %d (feasible: %v)\n",
			res.MACP.UnitMACP, res.MACP.WeightedMACP, res.MACP.CycleBudget, res.MACP.Feasible)
		fmt.Fprintf(stdout, "Decisions: %s -> %s -> extra %d cycles -> %s\n",
			res.StructChoice.Label, res.HierChoice.Label, res.BudgetChoice.Extra, res.AllocChoice.Label)
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nProfiled access counts:")
		fmt.Fprintln(stdout, res.Demo.Rec.Report())
		fmt.Fprintln(stdout, "Final memory organization:")
		for _, b := range res.Final.Asgn.OnChip {
			fmt.Fprintf(stdout, "  %-8s %8d x %2d bit, %d-port, %7.2f mm², %7.2f mW: %v\n",
				b.Mem.Name, b.Mem.Words, b.Mem.Bits, b.Mem.Ports, b.Area, b.Power, b.Groups)
		}
		for _, b := range res.Final.Asgn.OffChip {
			fmt.Fprintf(stdout, "  %-20s %8d x %2d bit, %d-port, %7.2f mW: %v\n",
				b.Mem.Name, b.Mem.Words, b.Mem.Bits, b.Mem.Ports, b.Power, b.Groups)
		}
	}
	if *inplaceF {
		fmt.Fprintln(stdout, "\nIn-place mapping analysis (lifetimes of the pruned spec):")
		fmt.Fprintln(stdout, core.InPlaceReport(res.Demo.Spec))
	}
	if *ablations {
		ep := core.DefaultEvalParams().ScaleTo(*size)
		fmt.Fprintln(stdout, "\nAblations (modeling decisions, see DESIGN.md):")
		printAbl := func(a *core.AblationResult) {
			fmt.Fprintf(stdout, "  %-38s", a.Name+":")
			if a.WithoutErr != nil {
				fmt.Fprintf(stdout, " with %7.1f mW; without: pipeline fails (%v)\n",
					a.With.Cost.TotalPower(), a.WithoutErr)
				return
			}
			fmt.Fprintf(stdout, " with %7.1f mW / %6.1f mm², without %7.1f mW / %6.1f mm²  (%s)\n",
				a.With.Cost.TotalPower(), a.With.Cost.OnChipArea,
				a.Without.Cost.TotalPower(), a.Without.Cost.OnChipArea, a.Note)
		}
		printAbl(core.AblationBranchExclusivity(res.Demo, ep))
		printAbl(core.AblationStructuralCost(res.Demo, ep))
		if a, err := core.AblationGreedyAssignment(res.Demo, ep, 8); err == nil {
			printAbl(a)
		}
		if a, err := core.AblationInPlace(res.Demo, ep); err == nil {
			printAbl(a)
		}
	}

	if err := observer.Flush(); err != nil {
		fmt.Fprintln(stderr, "dtse: telemetry flush:", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(stderr, "dtse:", err)
		}
		fmt.Fprintf(stderr, "(telemetry trace written to %s)\n", *traceOut)
	}
	if collector != nil {
		fmt.Fprintf(stderr, "\nExploration telemetry (per methodology step):\n%s", obs.StatsTable(collector.Records()))
		fmt.Fprintf(stderr, "\nStage latency histograms:\n%s", obs.HistTable(observer.Snapshot()))
	}
	if *stats {
		fmt.Fprintf(stderr, "\nEvaluation cache (-cache=%s):\n%s", *cache, ep.Memo.StatsString())
	}
	if disk != nil && ctx.Err() == nil {
		disk.Put(memo.Requests, diskKey, captured.Bytes())
		if err := disk.Close(); err != nil { // flush write-behind before exit
			fmt.Fprintln(stderr, "dtse:", err)
		}
	}
	fmt.Fprintf(stderr, "(exploration completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return 0
}
