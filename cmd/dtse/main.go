// Command dtse runs the full system-level design exploration of the paper
// on the BTPC demonstrator and prints the regenerated tables and figures.
//
// Usage:
//
//	dtse [-size 1024] [-seed 1] [-quant 1] [-table N] [-figure N]
//	     [-trace out.jsonl] [-stats] [-pprof addr]
//
// Without -table/-figure, everything is printed. -trace records the
// exploration telemetry (span tree + counters) as JSON lines; -stats prints
// a per-step wall-time/allocation summary to stderr; -pprof serves
// net/http/pprof and the telemetry counters (expvar) on the given address
// for live profiling of long explorations.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// validateSelection checks the -table/-figure selectors against the ranges
// the reproduction actually has (Tables 1-4, Figures 1-3); 0 means "all".
func validateSelection(table, figure int) error {
	if table < 0 || table > 4 {
		return fmt.Errorf("dtse: -table %d out of range (1-4, or 0 for all)", table)
	}
	if figure < 0 || figure > 3 {
		return fmt.Errorf("dtse: -figure %d out of range (1-3, or 0 for all)", figure)
	}
	return nil
}

func main() {
	size := flag.Int("size", 1024, "image side length (the paper's constraint is 1024)")
	seed := flag.Uint64("seed", 1, "synthetic image seed")
	quant := flag.Int("quant", 1, "BTPC quantizer (1 = lossless)")
	table := flag.Int("table", 0, "print only this table (1-4)")
	figure := flag.Int("figure", 0, "print only this figure (1-3)")
	verbose := flag.Bool("v", false, "print the profile and the final organization details")
	ablations := flag.Bool("ablations", false, "also run the modeling-decision ablations")
	inplaceF := flag.Bool("inplace", false, "also print the in-place mapping (lifetime) analysis")
	traceOut := flag.String("trace", "", "write the exploration telemetry (JSONL spans + counters) to this file")
	stats := flag.Bool("stats", false, "print the per-step telemetry summary to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar counters on this address (e.g. localhost:6060)")
	flag.Parse()

	if err := validateSelection(*table, *figure); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry session: a JSONL sink when -trace is given, an in-memory
	// collector when -stats needs one, nothing (nil observer, zero overhead)
	// otherwise.
	var sinks []obs.Sink
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtse:", err)
			os.Exit(1)
		}
		traceFile = f
		sinks = append(sinks, obs.NewJSONL(f))
	}
	var collector *obs.Collector
	if *stats {
		collector = obs.NewCollector()
		sinks = append(sinks, collector)
	}
	var observer *obs.Observer
	if len(sinks) > 0 || *pprofAddr != "" {
		observer = obs.New(sinks...)
	}
	if *pprofAddr != "" {
		expvar.Publish("dtse", expvar.Func(func() any { return observer.Counters() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dtse: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "(pprof and expvar counters on http://%s/debug/pprof/)\n", *pprofAddr)
	}

	ep := core.DefaultEvalParams()
	ep.Obs = observer

	start := time.Now()
	res, err := core.RunAll(core.DemoConfig{Size: *size, Seed: *seed, Quant: *quant}, ep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtse:", err)
		os.Exit(1)
	}

	all := *table == 0 && *figure == 0
	if all || *figure == 1 {
		fmt.Println("Figure 1: Stepwise refinement methodology (explored tree)")
		fmt.Println(res.Figure1())
	}
	if all || *figure == 2 {
		fmt.Println("Figure 2: Basic group (a) compaction and (b) merging")
		fmt.Println(res.Figure2())
	}
	if all || *table == 1 {
		fmt.Println(res.Table1().Render())
	}
	if all || *figure == 3 {
		fmt.Println("Figure 3:", res.HierPlan.Describe())
		fmt.Println(res.Figure3())
	}
	if all || *table == 2 {
		fmt.Println(res.Table2().Render())
	}
	if all || *table == 3 {
		fmt.Println(res.Table3().Render())
	}
	if all || *table == 4 {
		fmt.Println(res.Table4().Render())
	}
	if all {
		fmt.Printf("MACP: unit %d cycles, duration-weighted %d cycles, budget %d (feasible: %v)\n",
			res.MACP.UnitMACP, res.MACP.WeightedMACP, res.MACP.CycleBudget, res.MACP.Feasible)
		fmt.Printf("Decisions: %s -> %s -> extra %d cycles -> %s\n",
			res.StructChoice.Label, res.HierChoice.Label, res.BudgetChoice.Extra, res.AllocChoice.Label)
	}
	if *verbose {
		fmt.Println("\nProfiled access counts:")
		fmt.Println(res.Demo.Rec.Report())
		fmt.Println("Final memory organization:")
		for _, b := range res.Final.Asgn.OnChip {
			fmt.Printf("  %-8s %8d x %2d bit, %d-port, %7.2f mm², %7.2f mW: %v\n",
				b.Mem.Name, b.Mem.Words, b.Mem.Bits, b.Mem.Ports, b.Area, b.Power, b.Groups)
		}
		for _, b := range res.Final.Asgn.OffChip {
			fmt.Printf("  %-20s %8d x %2d bit, %d-port, %7.2f mW: %v\n",
				b.Mem.Name, b.Mem.Words, b.Mem.Bits, b.Mem.Ports, b.Power, b.Groups)
		}
	}
	if *inplaceF {
		fmt.Println("\nIn-place mapping analysis (lifetimes of the pruned spec):")
		fmt.Println(core.InPlaceReport(res.Demo.Spec))
	}
	if *ablations {
		ep := core.DefaultEvalParams().ScaleTo(*size)
		fmt.Println("\nAblations (modeling decisions, see DESIGN.md):")
		printAbl := func(a *core.AblationResult) {
			fmt.Printf("  %-38s", a.Name+":")
			if a.WithoutErr != nil {
				fmt.Printf(" with %7.1f mW; without: pipeline fails (%v)\n",
					a.With.Cost.TotalPower(), a.WithoutErr)
				return
			}
			fmt.Printf(" with %7.1f mW / %6.1f mm², without %7.1f mW / %6.1f mm²  (%s)\n",
				a.With.Cost.TotalPower(), a.With.Cost.OnChipArea,
				a.Without.Cost.TotalPower(), a.Without.Cost.OnChipArea, a.Note)
		}
		printAbl(core.AblationBranchExclusivity(res.Demo, ep))
		printAbl(core.AblationStructuralCost(res.Demo, ep))
		if a, err := core.AblationGreedyAssignment(res.Demo, ep, 8); err == nil {
			printAbl(a)
		}
		if a, err := core.AblationInPlace(res.Demo, ep); err == nil {
			printAbl(a)
		}
	}

	if err := observer.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dtse: telemetry flush:", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dtse:", err)
		}
		fmt.Fprintf(os.Stderr, "(telemetry trace written to %s)\n", *traceOut)
	}
	if collector != nil {
		fmt.Fprintf(os.Stderr, "\nExploration telemetry (per methodology step):\n%s", obs.StatsTable(collector.Records()))
	}
	fmt.Fprintf(os.Stderr, "(exploration completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
